# Local and CI entry points — .github/workflows/ci.yml invokes exactly
# these targets, so a green `make all` locally means a green CI run.

GO ?= go

.PHONY: all build test race bench bench-json lint fmt docs-check

all: build lint docs-check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke test that the benchmarks still
# compile and run, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Streaming-vs-materialised study benchmark at the paper's geometry,
# recorded as test2json events so the perf trajectory of the data plane
# accumulates across PRs (acceptance: streaming B/op >= 5x lower).
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkStudy(Streaming|Materialized)$$' \
		-benchmem -benchtime=3x -json . > BENCH_streaming.json
	@grep -o 'Benchmark[A-Za-z]*[ \t].*allocs/op' BENCH_streaming.json || true

lint:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi

fmt:
	gofmt -w .

# Fail if any *.md referenced from README or Go sources is missing.
docs-check:
	sh scripts/check-doc-links.sh
