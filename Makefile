# Local and CI entry points — .github/workflows/ci.yml invokes exactly
# these targets, so a green `make all` locally means a green CI run.

GO ?= go

.PHONY: all build test race bench bench-json lint fmt docs-check cover fuzz-smoke

all: build lint docs-check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke test that the benchmarks still
# compile and run, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Streaming-vs-materialised study benchmark at the paper's geometry,
# recorded as test2json events so the perf trajectory of the data plane
# accumulates across PRs (acceptance: streaming B/op >= 5x lower).
# BenchmarkStrategySweep does the same for the strategy lab's evaluator
# (acceptance: streaming B/op strictly below the materialised path).
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkStudy(Streaming|Materialized)$$' \
		-benchmem -benchtime=3x -json . > BENCH_streaming.json
	@grep -o 'Benchmark[A-Za-z]*[ \t].*allocs/op' BENCH_streaming.json || true
	$(GO) test -run '^$$' -bench '^BenchmarkStrategySweep$$' \
		-benchmem -benchtime=3x -json ./internal/partcomm > BENCH_strategies.json
	@grep -oE '[0-9]+ ns/op[^"]*allocs/op' BENCH_strategies.json || true

# Coverage profile + one-line summary, uploaded as a CI artifact so the
# trajectory accumulates across PRs.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1 | tee COVERAGE.txt

# 10-second coverage-guided smoke of the strategy-ordering laws; the
# saved corpus replays in plain `make test` as well.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzStrategyOrdering$$' -fuzztime 10s ./internal/partcomm

lint:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi

fmt:
	gofmt -w .

# Fail if any *.md referenced from README or Go sources is missing.
docs-check:
	sh scripts/check-doc-links.sh
