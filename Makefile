# Local and CI entry points — .github/workflows/ci.yml invokes exactly
# these targets, so a green `make all` locally means a green CI run.

GO ?= go

# Coverage floor enforced by `make cover` (total statement coverage; the
# repo sat at 78.7% when the floor was introduced and crossed 80% with
# the telemetry/admission/chaos suites — raise it as the trajectory
# climbs, never lower it).
COVER_FLOOR ?= 80.0

.PHONY: all build test race race-fleet test-chaos test-scenario test-scripts bench bench-json bench-gate bench-baseline profile lint fmt docs-check cover fuzz-smoke clean-store

all: build lint docs-check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The federation failover suite under the race detector, uncached: a
# fleet of in-process workers with one killed mid-sweep must deliver
# every cell exactly once. `make race` covers these too; this target
# re-runs them in isolation so CI records the failover proof explicitly.
race-fleet:
	$(GO) test -race -count=1 -run 'Fleet|Coordinator|Shard' ./internal/fleet ./internal/serve

# The chaos suite under the race detector, uncached: fleets with
# injected latency, mid-stream disconnects, stalls, capacity drain,
# armed stragglers (speculative re-dispatch must stay bit-identical),
# shedding workers (503 + Retry-After is busy, not dead), store
# corruption/concurrent writers and mid-sweep membership churn must
# still deliver every sweep cell bit-identical to single-node
# execution, and the telemetry observer must not perturb a single
# generated bit (the no-perturbation fingerprints in internal/cluster).
test-chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestCapacity|TestWeighted|TestSetCapacity|TestShed|TestPlain503|TestStore|TestJoin|TestLease|TestDynamic' ./internal/fleet
	$(GO) test -race -count=1 -run 'TestProgressSink' ./internal/cluster

# The scenario compiler suite, uncached: parser/compiler round-trips,
# the coverage-verifier property test (compiled campaigns cover exactly
# the declared cross-product), the golden compiled-campaign plan for
# examples/scenarios/quick.yaml (refresh after an intentional plan
# change with `go test ./internal/scenario -run Golden -update`), and
# the /v1/scenario + CLI + fleet federation paths end to end.
test-scenario:
	$(GO) test -count=1 ./internal/scenario
	$(GO) test -count=1 -run 'Scenario|DispatchStudy' ./internal/serve ./internal/fleet ./cmd/earlybird

# Drop the durable result store a local coordinator accumulated
# (override STORE_DIR to match your -store-dir).
STORE_DIR ?= .earlybird-store
clean-store:
	rm -rf $(STORE_DIR)

# Shell-level tests for the repo's scripts — today the bench gate's
# comparison verdicts (scripts/bench_gate_test.sh), in particular that a
# benchmark missing from the baseline fails loudly instead of sliding
# through ungated.
test-scripts:
	sh scripts/bench_gate_test.sh

# One iteration per benchmark: a smoke test that the benchmarks still
# compile and run, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Streaming-vs-materialised study benchmark at the paper's geometry,
# recorded as test2json events so the perf trajectory of the data plane
# accumulates across PRs (acceptance: streaming B/op >= 5x lower).
# BENCH_streaming.json is append-only: each run adds an entry, so the
# checked-in file is the benchmark trajectory across PRs (the README's
# trajectory table is read from it). BenchmarkStrategySweep does the
# same for the strategy lab's evaluator (acceptance: streaming B/op
# strictly below the materialised path), and BenchmarkFillDLB for the
# rebalancing fill loop (static vs LeWI throughput at paper geometry —
# the cost of the dynamic policy axis).
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkStudy(Streaming|Materialized)$$' \
		-benchmem -benchtime=3x -json . >> BENCH_streaming.json
	@grep -o 'Benchmark[A-Za-z]*[ \t].*allocs/op' BENCH_streaming.json || true
	$(GO) test -run '^$$' -bench '^BenchmarkStrategySweep$$' \
		-benchmem -benchtime=3x -json ./internal/partcomm > BENCH_strategies.json
	@grep -oE '[0-9]+ ns/op[^"]*allocs/op' BENCH_strategies.json || true
	$(GO) test -run '^$$' -bench '^BenchmarkFillDLB$$' \
		-benchmem -benchtime=3x -json ./internal/cluster > BENCH_dlb.json
	@grep -oE '[0-9]+ ns/op[^"]*allocs/op' BENCH_dlb.json || true

# Regression gate: re-run the gated benchmarks (BenchmarkStudyStreaming,
# BenchmarkFillDLB) and fail on a >10% ns/op regression against the
# checked-in BENCH_baseline.txt. Threshold and run count are
# overridable: BENCH_GATE_PCT=15 BENCH_GATE_COUNT=5 make bench-gate.
# benchstat, when installed, prints the delta table; the gate decision
# itself needs only awk. Refresh the baseline with `make bench-baseline`
# on the reference machine after an intentional perf change.
bench-gate:
	sh scripts/bench_gate.sh

bench-baseline:
	sh scripts/bench_baseline.sh

# CPU + allocation profile of the streaming-study hot path
# (BenchmarkStudyStreaming), summarised to the terminal; the raw
# profiles stay in profiles/ for `go tool pprof` exploration.
profile:
	@mkdir -p profiles
	$(GO) test -run '^$$' -bench 'BenchmarkStudyStreaming$$' -benchtime 5x \
		-cpuprofile profiles/cpu.prof -memprofile profiles/mem.prof \
		-o profiles/earlybird.test .
	$(GO) tool pprof -top -nodecount=15 profiles/earlybird.test profiles/cpu.prof
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space \
		profiles/earlybird.test profiles/mem.prof

# Coverage profile + one-line summary + per-package table, uploaded as
# CI artifacts so the trajectory accumulates across PRs. Fails when the
# total drops below COVER_FLOOR. The per-package table is the profile
# run's own output — the suite executes once.
cover:
	@$(GO) test -coverprofile=coverage.out ./... > COVERAGE_PACKAGES.txt; \
	status=$$?; cat COVERAGE_PACKAGES.txt; [ $$status -eq 0 ]
	$(GO) tool cover -func=coverage.out | tail -n 1 | tee COVERAGE.txt
	@total=$$(grep -oE '[0-9]+\.[0-9]+%' COVERAGE.txt | tr -d '%'); \
	awk -v total="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (total + 0 < floor + 0) { \
			printf "coverage %.1f%% is below the %.1f%% floor\n", total, floor; exit 1; \
		} \
		printf "coverage %.1f%% meets the %.1f%% floor\n", total, floor; \
	}'

# 10-second coverage-guided smoke of the strategy-ordering laws; the
# saved corpus replays in plain `make test` as well.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzStrategyOrdering$$' -fuzztime 10s ./internal/partcomm

lint:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi

fmt:
	gofmt -w .

# Fail if any *.md referenced from README or Go sources is missing.
docs-check:
	sh scripts/check-doc-links.sh
