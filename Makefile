# Local and CI entry points — .github/workflows/ci.yml invokes exactly
# these targets, so a green `make all` locally means a green CI run.

GO ?= go

.PHONY: all build test race bench lint fmt

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark: a smoke test that the benchmarks still
# compile and run, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

lint:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi

fmt:
	gofmt -w .
