package earlybird_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"earlybird"
)

// ExampleRunCampaign fans three study specs — one a deliberate duplicate
// — over the campaign engine. The duplicate is deduplicated to a single
// execution and served from the dataset cache; results come back in spec
// order, deterministically in the geometry's seed.
func ExampleRunCampaign() {
	quick := earlybird.QuickGeometry()
	results, err := earlybird.RunCampaign(earlybird.Campaign{
		Specs: []earlybird.CampaignSpec{
			{App: "minife", Geometry: quick},
			{App: "miniqmc", Geometry: quick},
			{App: "minife", Geometry: quick}, // duplicate: cache-served
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range results {
		fmt.Printf("%s cache=%v -> %s\n", r.Spec.App, r.CacheHit, r.Assessment.Recommendation)
	}
	// Output:
	// minife cache=false -> timeout-flush
	// miniqmc cache=false -> fine-grained-or-binned
	// minife cache=true -> timeout-flush
}

// ExampleServe runs the study service on a loopback port, asks it for a
// feasibility assessment over HTTP, and shuts it down gracefully —
// the embedded equivalent of running cmd/earlybirdd and curling it.
func ExampleServe() {
	srv := earlybird.NewServer(earlybird.ServeOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	quick := earlybird.QuickGeometry()
	body, _ := json.Marshal(map[string]any{"app": "miniqmc", "geometry": quick})
	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/feasibility",
		"application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println(err)
		return
	}
	var verdict struct {
		App        string `json:"app"`
		Assessment struct {
			Recommendation string `json:"recommendation"`
		} `json:"assessment"`
		Source string `json:"source"`
	}
	json.NewDecoder(resp.Body).Decode(&verdict)
	resp.Body.Close()
	fmt.Printf("%s -> %s (%s)\n", verdict.App, verdict.Assessment.Recommendation, verdict.Source)

	srv.Shutdown(context.Background())
	fmt.Println("drained:", <-done == http.ErrServerClosed)
	// Output:
	// miniqmc -> fine-grained-or-binned (executed)
	// drained: true
}
