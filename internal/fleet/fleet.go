// Package fleet federates sweep and strategy-grid execution across a
// set of remote earlybirdd workers — the scatter/gather layer above the
// study service.
//
// A Fleet is a worker registry (health-probed over /v1/healthz) plus a
// cell scheduler. Sweep cells are split into contiguous trial shards and
// dispatched over POST /v1/shard, which returns mergeable accumulator
// state rather than finished rows; the coordinator merges shard states
// and finalizes the row. Because the accumulators key their partials by
// absolute trial and finalize in a fixed order, the merged results are
// bit-identical to single-node execution for every moment-derived metric
// and the Table 1 row (the sketch-backed IQR statistics keep the
// sketch's documented rank-error bound) — see internal/analysis's
// partition-invariance property test.
//
// Scheduling is capacity-weighted rendezvous hashing on the cell's
// resolved engine.SpecKey: equal cells route to the same worker from
// any coordinator, so each worker's LRU dataset cache stays hot across
// repeated sweeps. Health probes read the capacity each worker reports
// in its /v1/healthz body (its live fill efficiency, from the telemetry
// layer) and scale that worker's rendezvous keys by it, so a degraded
// worker gracefully sheds new cells to the rest of the fleet instead of
// flipping between all-traffic and none. When every worker reports full
// capacity the weighted ranking is identical to the unweighted one.
//
// The health model distinguishes three worker states. A worker that
// times out or answers an unexplained 5xx is *dead*: it is demoted and
// its shard fails over to the next survivor, so a worker killed
// mid-sweep costs re-execution of its in-flight shards, never a lost or
// duplicated cell. A worker that sheds with 503 + Retry-After (adaptive
// admission refusing load it cannot serve well right now) is *busy*: it
// keeps its registry slot and ranking, is skipped for new dispatch until
// the Retry-After deadline passes, and is never demoted — a fleet under
// pressure must not eat itself. Everything else is *idle* and eligible.
//
// On top of the corrected health model the scheduler is speculative: a
// shard whose in-flight duration exceeds a quantile of completed-shard
// latencies (a mergeable stats.QuantileSketch fed by every successful
// request) is re-issued once to the next-ranked eligible worker, and the
// first result wins — the paper's early-bird insight applied to our own
// dispatch loop. Losing attempts run to completion so their health
// evidence (a straggler's eventual timeout) still lands; their results
// are discarded idempotently.
//
// Membership is dynamic when Options.Dynamic is set: workers register
// over POST /v1/fleet/join and hold a lease the coordinator's probe loop
// expires, so a worker that stops heartbeating deregisters itself by
// silence. Statically listed peers never expire. A Fleet may also carry
// a durable Store (Options.Store): merged cell results persist on disk
// keyed by the cell's SpecKey hash and are consulted before any
// dispatch, so a coordinator restart re-serves finished sweeps without
// touching a worker.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"earlybird/internal/fnv"
	"earlybird/internal/serve"
	"earlybird/internal/stats"
)

// Defaults for Options' zero values.
const (
	// DefaultProbeTimeout bounds one health probe.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultMaxInFlightPerWorker sizes the default Options.MaxInFlight:
	// the fleet-wide outstanding-request bound defaults to this many per
	// registered worker (so a coordinator over N peers keeps at most 2N
	// shard/strategy-cell requests in flight).
	DefaultMaxInFlightPerWorker = 2
	// DefaultDynamicInFlight sizes the in-flight bound for a dynamic
	// fleet that boots with no static peers (workers arrive by joining,
	// after the semaphore is sized).
	DefaultDynamicInFlight = 16
	// DefaultLeaseTTL is how long a dynamically joined worker stays
	// registered without renewing; its heartbeat should re-join at a
	// fraction of this.
	DefaultLeaseTTL = 15 * time.Second
	// DefaultSpeculationQuantile is the completed-shard latency quantile
	// an in-flight shard must exceed (times speculationLatencyFactor)
	// before it is speculatively re-dispatched.
	DefaultSpeculationQuantile = 0.95
)

// Speculation tuning: re-dispatch fires only after the latency sketch
// has seen speculationMinSamples completed requests, and only when the
// in-flight attempt has been out for more than speculationLatencyFactor
// times the configured quantile (floored at minSpeculationDelay so tiny
// shards never speculate on scheduling jitter). The dispatch loop
// re-checks every speculationPoll.
const (
	speculationMinSamples    = 8
	speculationLatencyFactor = 2.0
	minSpeculationDelay      = 50 * time.Millisecond
	speculationPoll          = 25 * time.Millisecond
)

// SplitPeers parses a comma-separated peer list (the -peers / -fleet
// flag format), dropping empty entries; New performs the per-URL
// validation.
func SplitPeers(csv string) []string {
	var peers []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// Options configures a Fleet.
type Options struct {
	// Peers are the workers' base URLs (e.g. http://host:8080). At least
	// one is required unless Dynamic is set; static peers never lease-
	// expire.
	Peers []string
	// Client is the HTTP client for shard and probe traffic; nil means a
	// client without an overall timeout (shard execution time is
	// geometry-dependent; use Client to impose one).
	Client *http.Client
	// ShardsPerCell splits each cell's trial space into up to this many
	// contiguous shards, spread over distinct workers when possible.
	// 0 means one shard per healthy worker (capped at the cell's trial
	// count); 1 pins whole cells to single workers for maximum dataset
	// cache locality.
	ShardsPerCell int
	// MaxInFlight bounds concurrently outstanding requests fleet-wide;
	// 0 means DefaultMaxInFlightPerWorker x len(Peers), or
	// DefaultDynamicInFlight for a dynamic fleet with no static peers.
	MaxInFlight int
	// ProbeTimeout bounds one health probe; 0 means DefaultProbeTimeout.
	ProbeTimeout time.Duration
	// Dynamic accepts workers at runtime through Join (the
	// /v1/fleet/join endpoint) and allows an empty initial Peers list.
	Dynamic bool
	// LeaseTTL is how long a joined worker stays registered without
	// renewing; 0 means DefaultLeaseTTL. Expired leases are evicted by
	// the StartProbes loop (or an explicit EvictExpired call).
	LeaseTTL time.Duration
	// Store, when non-nil, is the durable content-addressed result
	// store: merged cell rows persist under their SpecKey hash and are
	// consulted before dispatch, surviving coordinator restarts.
	Store *Store
	// SpeculationQuantile is the completed-shard latency quantile that
	// arms speculative re-dispatch; 0 means DefaultSpeculationQuantile,
	// negative disables speculation.
	SpeculationQuantile float64
}

// minCapacity floors a worker's scheduling weight: even a saturated
// worker keeps a sliver of new cells so its recovery is observable
// without waiting for a probe cycle.
const minCapacity = 0.05

// worker is one registry entry.
type worker struct {
	url     string
	urlHash uint64
	// healthy is the dead-or-alive axis: false only for workers that
	// failed (transport error, timeout, unexplained 5xx). Shedding does
	// NOT clear it — see busyUntil.
	healthy  atomic.Bool
	shards   atomic.Int64
	failures atomic.Int64
	// sheds counts 503 + Retry-After refusals from this worker's
	// adaptive admission; each one sets busyUntil instead of demoting.
	sheds atomic.Int64
	// busyUntil (unix nanos) is the Retry-After deadline of the last
	// shed: dispatch skips the worker until it passes, without touching
	// its health or registry slot. 0 means not busy.
	busyUntil atomic.Int64
	// leaseUntil (unix nanos) is the membership lease of a dynamically
	// joined worker; the probe loop evicts it once expired. 0 means a
	// static peer that never expires.
	leaseUntil atomic.Int64
	// capacityBits holds the float64 bits of the worker's live scheduling
	// weight in (0, 1], as last reported by its health probe; workers
	// start (and plain-"ok" healthz bodies stay) at 1.
	capacityBits atomic.Uint64
}

func (w *worker) capacity() float64 { return math.Float64frombits(w.capacityBits.Load()) }

func (w *worker) setCapacity(c float64) {
	if math.IsNaN(c) || c <= 0 || c > 1 {
		c = 1
	} else if c < minCapacity {
		c = minCapacity
	}
	w.capacityBits.Store(math.Float64bits(c))
}

// busyFor returns how much of the worker's Retry-After window remains at
// now; 0 means the worker is not (or no longer) busy.
func (w *worker) busyFor(now time.Time) time.Duration {
	until := w.busyUntil.Load()
	if until == 0 {
		return 0
	}
	if d := time.Unix(0, until).Sub(now); d > 0 {
		return d
	}
	return 0
}

func (w *worker) markBusy(until time.Time) { w.busyUntil.Store(until.UnixNano()) }

// newWorkerEntry builds a registry entry in the starting state: healthy,
// full capacity.
func newWorkerEntry(url string) *worker {
	w := &worker{url: url, urlHash: fnv.Str(fnv.Offset64, url)}
	w.healthy.Store(true)
	w.setCapacity(1)
	return w
}

// normalizeURL canonicalises one peer URL the way New registers it.
func normalizeURL(raw string) (string, error) {
	u := strings.TrimRight(strings.TrimSpace(raw), "/")
	if u == "" {
		return "", fmt.Errorf("fleet: empty peer URL")
	}
	if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		return "", fmt.Errorf("fleet: peer %q is not an http(s) URL", raw)
	}
	return u, nil
}

// Fleet is a federation coordinator. Create with New; safe for
// concurrent use. It implements serve.FleetDispatcher (and, when
// dynamic, serve.FleetMembership), so it can be plugged into a
// serve.Server (Options.Fleet) to make that server's /v1/sweep fan out
// transparently and its /v1/fleet/join accept workers.
type Fleet struct {
	opts     Options
	client   *http.Client
	leaseTTL time.Duration
	sem      chan struct{}
	store    *Store

	mu      sync.RWMutex
	workers []*worker

	cellsMerged      atomic.Int64
	cellsFailed      atomic.Int64
	shardsDispatched atomic.Int64
	failovers        atomic.Int64
	sheds            atomic.Int64
	speculations     atomic.Int64
	speculationWins  atomic.Int64
	storeHits        atomic.Int64
	storeMisses      atomic.Int64
	joins            atomic.Int64
	evictions        atomic.Int64

	lat latencyTracker
}

// New validates the options and returns a ready fleet. Workers start
// healthy; call Probe (or StartProbes) to verify them, and let failover
// demote the ones that misbehave.
func New(opts Options) (*Fleet, error) {
	if len(opts.Peers) == 0 && !opts.Dynamic {
		return nil, fmt.Errorf("fleet: at least one peer URL is required (or Dynamic for join-based membership)")
	}
	f := &Fleet{opts: opts, client: opts.Client, store: opts.Store}
	if f.client == nil {
		f.client = &http.Client{}
	}
	f.leaseTTL = opts.LeaseTTL
	if f.leaseTTL <= 0 {
		f.leaseTTL = DefaultLeaseTTL
	}
	seen := map[string]bool{}
	for _, raw := range opts.Peers {
		u, err := normalizeURL(raw)
		if err != nil {
			return nil, err
		}
		if seen[u] {
			return nil, fmt.Errorf("fleet: duplicate peer %q", u)
		}
		seen[u] = true
		f.workers = append(f.workers, newWorkerEntry(u))
	}
	inFlight := opts.MaxInFlight
	if inFlight <= 0 {
		inFlight = DefaultMaxInFlightPerWorker * len(f.workers)
	}
	if inFlight <= 0 {
		inFlight = DefaultDynamicInFlight
	}
	f.sem = make(chan struct{}, inFlight)
	return f, nil
}

// snapshotWorkers copies the registry slice (the entries stay shared).
func (f *Fleet) snapshotWorkers() []*worker {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]*worker(nil), f.workers...)
}

// Workers returns the registered peer URLs.
func (f *Fleet) Workers() []string {
	ws := f.snapshotWorkers()
	urls := make([]string, len(ws))
	for i, w := range ws {
		urls[i] = w.url
	}
	return urls
}

// Healthy returns how many workers are currently considered healthy
// (busy-but-alive workers count: shedding is not death).
func (f *Fleet) Healthy() int {
	n := 0
	for _, w := range f.snapshotWorkers() {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// Join registers (or renews) a worker at runtime and returns the lease
// it must renew within. Re-joining an existing worker renews its lease,
// restores its health and updates its advertised capacity; joining a
// statically configured peer refreshes it without making it expirable.
// Errors on invalid URLs and on fleets not configured as Dynamic.
func (f *Fleet) Join(rawURL string, capacity float64) (time.Duration, error) {
	if !f.opts.Dynamic {
		return 0, fmt.Errorf("fleet: not accepting joins (static membership; start the coordinator with dynamic membership enabled)")
	}
	u, err := normalizeURL(rawURL)
	if err != nil {
		return 0, err
	}
	lease := time.Now().Add(f.leaseTTL)
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, w := range f.workers {
		if w.url != u {
			continue
		}
		if w.leaseUntil.Load() != 0 {
			w.leaseUntil.Store(lease.UnixNano()) // static peers stay static
		}
		w.healthy.Store(true)
		if capacity > 0 {
			w.setCapacity(capacity)
		}
		f.joins.Add(1)
		return f.leaseTTL, nil
	}
	w := newWorkerEntry(u)
	if capacity > 0 {
		w.setCapacity(capacity)
	}
	w.leaseUntil.Store(lease.UnixNano())
	f.workers = append(f.workers, w)
	f.joins.Add(1)
	return f.leaseTTL, nil
}

// Leave deregisters a worker immediately (the graceful-shutdown
// counterpart of lease expiry). It reports whether the worker was
// registered. In-flight requests to it complete normally.
func (f *Fleet) Leave(rawURL string) bool {
	u, err := normalizeURL(rawURL)
	if err != nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, w := range f.workers {
		if w.url == u {
			f.workers = append(append([]*worker(nil), f.workers[:i]...), f.workers[i+1:]...)
			return true
		}
	}
	return false
}

// EvictExpired removes dynamically joined workers whose lease has
// expired at now, returning how many were evicted. The StartProbes loop
// calls it every tick.
func (f *Fleet) EvictExpired(now time.Time) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	kept := make([]*worker, 0, len(f.workers))
	evicted := 0
	for _, w := range f.workers {
		if until := w.leaseUntil.Load(); until != 0 && now.UnixNano() > until {
			evicted++
			continue
		}
		kept = append(kept, w)
	}
	if evicted > 0 {
		f.workers = kept
		f.evictions.Add(int64(evicted))
	}
	return evicted
}

// Probe health-checks every worker concurrently (GET /v1/healthz) and
// returns the healthy count. Probes both demote dead workers and revive
// recovered ones, and read the capacity each healthy worker advertises
// in its healthz body (falling back to full capacity for bodies that
// don't carry one).
func (f *Fleet) Probe(ctx context.Context) int {
	timeout := f.opts.ProbeTimeout
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	var wg sync.WaitGroup
	for _, w := range f.snapshotWorkers() {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.url+"/v1/healthz", nil)
			if err != nil {
				w.healthy.Store(false)
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				w.healthy.Store(false)
				return
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				w.healthy.Store(false)
				return
			}
			var hz struct {
				Capacity *float64 `json:"capacity"`
			}
			if json.Unmarshal(body, &hz) == nil && hz.Capacity != nil {
				w.setCapacity(*hz.Capacity)
			} else {
				w.setCapacity(1)
			}
			w.healthy.Store(true)
		}(w)
	}
	wg.Wait()
	return f.Healthy()
}

// StartProbes re-probes the fleet every interval until ctx is done — the
// coordinator daemon's liveness loop. Each tick also evicts workers
// whose membership lease has expired. It returns immediately.
func (f *Fleet) StartProbes(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				f.EvictExpired(time.Now())
				f.Probe(ctx)
			}
		}
	}()
}

// Snapshot implements serve.FleetDispatcher: the registry and traffic
// counters for /v1/stats. The coordinator-side cell counters
// (CellsDispatched, LocalFallbacks) are filled by the serve layer.
func (f *Fleet) Snapshot() serve.FleetSnapshot {
	snap := serve.FleetSnapshot{
		Healthy:          f.Healthy(),
		CellsMerged:      f.cellsMerged.Load(),
		CellsFailed:      f.cellsFailed.Load(),
		ShardsDispatched: f.shardsDispatched.Load(),
		Failovers:        f.failovers.Load(),
		Sheds:            f.sheds.Load(),
		Speculations:     f.speculations.Load(),
		SpeculationWins:  f.speculationWins.Load(),
		StoreHits:        f.storeHits.Load(),
		StoreMisses:      f.storeMisses.Load(),
		Joins:            f.joins.Load(),
		LeaseEvictions:   f.evictions.Load(),
	}
	now := time.Now()
	ws := f.snapshotWorkers()
	snap.Peers = len(ws)
	for _, w := range ws {
		wsnap := serve.FleetWorkerSnapshot{
			URL:      w.url,
			Healthy:  w.healthy.Load(),
			Capacity: w.capacity(),
			Shards:   w.shards.Load(),
			Failures: w.failures.Load(),
			Sheds:    w.sheds.Load(),
		}
		if d := w.busyFor(now); d > 0 {
			wsnap.Busy = true
			wsnap.BusyForSec = d.Seconds()
		}
		if until := w.leaseUntil.Load(); until != 0 {
			wsnap.LeaseSec = time.Unix(0, until).Sub(now).Seconds()
		}
		snap.Workers = append(snap.Workers, wsnap)
	}
	return snap
}

// rank orders the fleet's workers for one (cell, shard) pair by
// capacity-weighted rendezvous hashing: every coordinator computes the
// same ranking (given the same probe readings), the top eligible worker
// takes the shard, and the ranking itself is the failover order. Busy
// (shedding) workers keep their rank — eligibility is dispatch's
// concern, and a worker whose Retry-After lapses mid-cell re-enters
// exactly where the hash put it. Each worker's 64-bit rendezvous score
// is mapped to u in (0,1) and weighted as capacity / -ln(u) — the
// standard weighted-rendezvous key, under which a worker's share of the
// key space is proportional to its capacity. -ln(u) is strictly
// decreasing in u, so with equal capacities the weighted order equals
// the raw-score order and shard placement (hence dataset cache
// locality) is unchanged from the unweighted scheduler. Shard 0's
// ranking depends only on the cell key, so a one-shard cell lands on
// the same worker sweep after sweep while capacities are equal.
func (f *Fleet) rank(cellHash uint64, shard int) []*worker {
	type scored struct {
		w   *worker
		key float64
	}
	workers := f.snapshotWorkers()
	base := fnv.U64(fnv.U64(fnv.Offset64, cellHash), uint64(shard))
	ss := make([]scored, len(workers))
	for i, w := range workers {
		score := fnv.U64(base, w.urlHash)
		// u in (0,1): offset by 0.5 so u is never exactly 0 or 1.
		u := (float64(score) + 0.5) / float64(1<<63) / 2
		ss[i] = scored{w: w, key: w.capacity() / -math.Log(u)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].key != ss[j].key {
			return ss[i].key > ss[j].key
		}
		return ss[i].w.url < ss[j].w.url
	})
	ranked := make([]*worker, len(ss))
	for i, s := range ss {
		ranked[i] = s.w
	}
	return ranked
}

// errNotPlaced reports that every worker was tried or ineligible and
// none could take the request — the caller should fall back to local
// execution. The message carries the routing context (cell hash, shard)
// and each worker's health/busy state, so "nothing took it" is
// diagnosable instead of a bare nil-cause shrug.
type errNotPlaced struct {
	cell    uint64
	shard   int
	workers []string
	last    error
}

// notPlaced assembles an errNotPlaced with the current registry state.
// shard < 0 (with cell 0) means the caller had no routing context.
func (f *Fleet) notPlaced(cell uint64, shard int, last error) error {
	now := time.Now()
	ws := f.snapshotWorkers()
	states := make([]string, 0, len(ws))
	for _, w := range ws {
		st := "healthy"
		if !w.healthy.Load() {
			st = "unhealthy"
		}
		if d := w.busyFor(now); d > 0 {
			st += fmt.Sprintf(" busy(%s)", d.Round(time.Millisecond))
		}
		states = append(states, w.url+" "+st)
	}
	return errNotPlaced{cell: cell, shard: shard, workers: states, last: last}
}

func (e errNotPlaced) Error() string {
	var b strings.Builder
	b.WriteString("fleet: ")
	if e.shard >= 0 {
		fmt.Fprintf(&b, "cell %016x shard %d ", e.cell, e.shard)
	}
	b.WriteString("not placed on any worker")
	if e.last != nil {
		fmt.Fprintf(&b, " (last failure: %v)", e.last)
	}
	if len(e.workers) > 0 {
		fmt.Fprintf(&b, "; workers: %s", strings.Join(e.workers, ", "))
	} else {
		b.WriteString("; no workers registered")
	}
	return b.String()
}

// errCell is a non-retryable per-cell failure (the worker answered 4xx):
// the request itself is bad and would fail identically everywhere.
type errCell struct{ msg string }

func (e errCell) Error() string { return e.msg }

// errShed reports a worker's adaptive admission refusing the request
// with 503 + Retry-After: the worker is alive and explicitly told us
// when to come back. Dispatch marks it busy — never dead.
type errShed struct {
	retryAfter time.Duration
	msg        string
}

func (e errShed) Error() string {
	return fmt.Sprintf("worker shedding for %s: %s", e.retryAfter, e.msg)
}

// parseRetryAfter reads the delta-seconds form of a Retry-After header
// (what our admission layer emits). HTTP-date values are not recognised:
// without a parseable back-off the 503 stays an ordinary worker fault.
func parseRetryAfter(h string) (time.Duration, bool) {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0, false
	}
	if secs == 0 {
		secs = 1
	}
	return time.Duration(secs) * time.Second, true
}

// latencyTracker wraps the mergeable quantile sketch (not itself
// concurrency-safe) with the lock and sample counter the speculation
// trigger needs.
type latencyTracker struct {
	mu     sync.Mutex
	sketch *stats.QuantileSketch
	n      int64
}

func (l *latencyTracker) observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sketch == nil {
		l.sketch = stats.NewQuantileSketch(0)
	}
	l.sketch.Add(d.Seconds())
	l.n++
}

// threshold returns the elapsed in-flight duration beyond which a shard
// should speculate, or ok == false while too few requests have completed
// to estimate one.
func (l *latencyTracker) threshold(q float64) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n < speculationMinSamples {
		return 0, false
	}
	th := time.Duration(speculationLatencyFactor * l.sketch.Quantile(q) * float64(time.Second))
	if th < minSpeculationDelay {
		th = minSpeculationDelay
	}
	return th, true
}

// speculationQuantile resolves the configured quantile; ok == false
// means speculation is disabled.
func (f *Fleet) speculationQuantile() (float64, bool) {
	q := f.opts.SpeculationQuantile
	if q < 0 {
		return 0, false
	}
	if q == 0 {
		q = DefaultSpeculationQuantile
	}
	return q, true
}

// post sends one pre-marshalled JSON request under the in-flight bound
// and returns the raw 200 response body. Transport failures and
// unexplained 5xx answers are retryable (the worker is at fault); 4xx
// answers are not (the request is at fault); a 503 carrying a parseable
// Retry-After is an errShed — the worker is alive and busy, and the
// caller must not demote it.
func (f *Fleet) post(ctx context.Context, w *worker, path string, body []byte) (raw []byte, retryable bool, err error) {
	select {
	case f.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	defer func() { <-f.sem }()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	f.shardsDispatched.Add(1)
	resp, err := f.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err() // caller cancelled; not the worker's fault
		}
		return nil, true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, true, fmt.Errorf("reading %s response: %w", path, err)
		}
		return raw, false, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		var eb struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			return nil, false, errCell{msg: eb.Error}
		}
		return nil, false, errCell{msg: fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(msg))}
	case resp.StatusCode == http.StatusServiceUnavailable:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if ra, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
			var eb struct {
				Error string `json:"error"`
			}
			detail := string(bytes.TrimSpace(msg))
			if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
				detail = eb.Error
			}
			return nil, false, errShed{retryAfter: ra, msg: detail}
		}
		return nil, true, fmt.Errorf("worker answered %s: %s", resp.Status, bytes.TrimSpace(msg))
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, true, fmt.Errorf("worker answered %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

// attempt is one in-flight post's resolution, delivered on dispatch's
// results channel. Health bookkeeping (demotion, busy-marking, counters)
// happens inside the attempt goroutine before the send, so a losing
// attempt that resolves after the winner still lands its evidence.
type attempt struct {
	w           *worker
	raw         []byte
	err         error
	retryable   bool
	speculative bool
}

// dispatch tries one request against the (cell, shard) rendezvous
// ranking. The body is marshalled once and reused across every attempt.
// Eligible (healthy, not busy) workers are tried in rank order:
// retryable failures demote the worker and fail over to the next; sheds
// mark the worker busy until its Retry-After and move on without
// demoting; a 4xx or caller cancellation stops immediately. While an
// attempt is in flight and taking longer than the speculation threshold
// (a quantile over completed-request latencies), one backup attempt is
// issued to the next eligible worker and the first success wins — the
// loser runs to completion and is discarded. On success dispatch decodes
// the winner's body into out and returns the worker that answered.
func (f *Fleet) dispatch(ctx context.Context, cellHash uint64, shard int, path string, body, out any) (*worker, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	ranked := f.rank(cellHash, shard)

	results := make(chan attempt, len(ranked)+1)
	next, active := 0, 0
	// launch starts one attempt on the next eligible ranked worker,
	// reporting whether anyone was left to try.
	launch := func(speculative bool) bool {
		now := time.Now()
		for next < len(ranked) {
			w := ranked[next]
			next++
			if !w.healthy.Load() || w.busyFor(now) > 0 {
				continue
			}
			active++
			go func(w *worker) {
				start := time.Now()
				raw, retryable, err := f.post(ctx, w, path, buf)
				if err == nil {
					f.lat.observe(time.Since(start))
					results <- attempt{w: w, raw: raw, speculative: speculative}
					return
				}
				var shed errShed
				if errors.As(err, &shed) {
					w.markBusy(time.Now().Add(shed.retryAfter))
					w.sheds.Add(1)
					f.sheds.Add(1)
				} else if retryable {
					w.failures.Add(1)
					w.healthy.Store(false)
					f.failovers.Add(1)
				}
				results <- attempt{w: w, err: err, retryable: retryable, speculative: speculative}
			}(w)
			return true
		}
		return false
	}

	if !launch(false) {
		return nil, f.notPlaced(cellHash, shard, nil)
	}
	specQ, specEnabled := f.speculationQuantile()
	var specTick *time.Ticker
	var specC <-chan time.Time
	if specEnabled {
		specTick = time.NewTicker(speculationPoll)
		specC = specTick.C
		defer specTick.Stop()
	}
	started := time.Now()
	speculated := false
	var lastErr error
	for active > 0 {
		select {
		case a := <-results:
			active--
			if a.err == nil {
				if err := json.Unmarshal(a.raw, out); err != nil {
					// An undecodable 200 body is the worker's fault, like a
					// mid-stream disconnect: demote and fail over.
					a.w.failures.Add(1)
					a.w.healthy.Store(false)
					f.failovers.Add(1)
					lastErr = fmt.Errorf("decoding %s response: %w", path, err)
					break
				}
				a.w.shards.Add(1)
				if a.speculative {
					f.speculationWins.Add(1)
				}
				return a.w, nil
			}
			var shed errShed
			if !a.retryable && !errors.As(a.err, &shed) {
				return nil, a.err // errCell or ctx cancellation
			}
			lastErr = a.err
		case <-specC:
			if speculated {
				continue
			}
			if th, ok := f.lat.threshold(specQ); ok && time.Since(started) > th {
				if launch(true) {
					speculated = true
					f.speculations.Add(1)
				}
			}
			continue
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		// An attempt failed (retryable, shed, or undecodable): if nothing
		// else is still in flight, fail over to the next eligible worker.
		if active == 0 && !launch(false) {
			return nil, f.notPlaced(cellHash, shard, lastErr)
		}
	}
	return nil, f.notPlaced(cellHash, shard, lastErr)
}
