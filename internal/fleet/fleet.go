// Package fleet federates sweep and strategy-grid execution across a
// set of remote earlybirdd workers — the scatter/gather layer above the
// study service.
//
// A Fleet is a worker registry (health-probed over /v1/healthz) plus a
// cell scheduler. Sweep cells are split into contiguous trial shards and
// dispatched over POST /v1/shard, which returns mergeable accumulator
// state rather than finished rows; the coordinator merges shard states
// and finalizes the row. Because the accumulators key their partials by
// absolute trial and finalize in a fixed order, the merged results are
// bit-identical to single-node execution for every moment-derived metric
// and the Table 1 row (the sketch-backed IQR statistics keep the
// sketch's documented rank-error bound) — see internal/analysis's
// partition-invariance property test.
//
// Scheduling is capacity-weighted rendezvous hashing on the cell's
// resolved engine.SpecKey: equal cells route to the same worker from
// any coordinator, so each worker's LRU dataset cache stays hot across
// repeated sweeps. Health probes read the capacity each worker reports
// in its /v1/healthz body (its live fill efficiency, from the telemetry
// layer) and scale that worker's rendezvous keys by it, so a degraded
// worker gracefully sheds new cells to the rest of the fleet instead of
// flipping between all-traffic and none. When every worker reports full
// capacity the weighted ranking is identical to the unweighted one.
// Dispatch is bounded (MaxInFlight shard requests in flight fleet-wide)
// and fails over: a worker that times out or answers 5xx is marked
// unhealthy and its shard re-dispatched to the next survivor, so a
// worker killed mid-sweep costs re-execution of its in-flight shards,
// never a lost or duplicated cell.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"earlybird/internal/fnv"
	"earlybird/internal/serve"
)

// Defaults for Options' zero values.
const (
	// DefaultProbeTimeout bounds one health probe.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultMaxInFlightPerWorker sizes the default Options.MaxInFlight:
	// the fleet-wide outstanding-request bound defaults to this many per
	// registered worker (so a coordinator over N peers keeps at most 2N
	// shard/strategy-cell requests in flight).
	DefaultMaxInFlightPerWorker = 2
)

// SplitPeers parses a comma-separated peer list (the -peers / -fleet
// flag format), dropping empty entries; New performs the per-URL
// validation.
func SplitPeers(csv string) []string {
	var peers []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// Options configures a Fleet.
type Options struct {
	// Peers are the workers' base URLs (e.g. http://host:8080). At least
	// one is required.
	Peers []string
	// Client is the HTTP client for shard and probe traffic; nil means a
	// client without an overall timeout (shard execution time is
	// geometry-dependent; use Client to impose one).
	Client *http.Client
	// ShardsPerCell splits each cell's trial space into up to this many
	// contiguous shards, spread over distinct workers when possible.
	// 0 means one shard per healthy worker (capped at the cell's trial
	// count); 1 pins whole cells to single workers for maximum dataset
	// cache locality.
	ShardsPerCell int
	// MaxInFlight bounds concurrently outstanding requests fleet-wide;
	// 0 means DefaultMaxInFlightPerWorker x len(Peers).
	MaxInFlight int
	// ProbeTimeout bounds one health probe; 0 means DefaultProbeTimeout.
	ProbeTimeout time.Duration
}

// minCapacity floors a worker's scheduling weight: even a saturated
// worker keeps a sliver of new cells so its recovery is observable
// without waiting for a probe cycle.
const minCapacity = 0.05

// worker is one registry entry.
type worker struct {
	url      string
	urlHash  uint64
	healthy  atomic.Bool
	shards   atomic.Int64
	failures atomic.Int64
	// capacityBits holds the float64 bits of the worker's live scheduling
	// weight in (0, 1], as last reported by its health probe; workers
	// start (and plain-"ok" healthz bodies stay) at 1.
	capacityBits atomic.Uint64
}

func (w *worker) capacity() float64 { return math.Float64frombits(w.capacityBits.Load()) }

func (w *worker) setCapacity(c float64) {
	if math.IsNaN(c) || c <= 0 || c > 1 {
		c = 1
	} else if c < minCapacity {
		c = minCapacity
	}
	w.capacityBits.Store(math.Float64bits(c))
}

// Fleet is a federation coordinator. Create with New; safe for
// concurrent use. It implements serve.FleetDispatcher, so it can be
// plugged into a serve.Server (Options.Fleet) to make that server's
// /v1/sweep fan out transparently.
type Fleet struct {
	opts    Options
	client  *http.Client
	workers []*worker
	sem     chan struct{}

	cellsMerged      atomic.Int64
	cellsFailed      atomic.Int64
	shardsDispatched atomic.Int64
	failovers        atomic.Int64
}

// New validates the options and returns a ready fleet. Workers start
// healthy; call Probe (or StartProbes) to verify them, and let failover
// demote the ones that misbehave.
func New(opts Options) (*Fleet, error) {
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("fleet: at least one peer URL is required")
	}
	f := &Fleet{opts: opts, client: opts.Client}
	if f.client == nil {
		f.client = &http.Client{}
	}
	seen := map[string]bool{}
	for _, raw := range opts.Peers {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			return nil, fmt.Errorf("fleet: empty peer URL")
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("fleet: peer %q is not an http(s) URL", raw)
		}
		if seen[u] {
			return nil, fmt.Errorf("fleet: duplicate peer %q", u)
		}
		seen[u] = true
		w := &worker{url: u, urlHash: fnv.Str(fnv.Offset64, u)}
		w.healthy.Store(true)
		w.setCapacity(1)
		f.workers = append(f.workers, w)
	}
	inFlight := opts.MaxInFlight
	if inFlight <= 0 {
		inFlight = DefaultMaxInFlightPerWorker * len(f.workers)
	}
	f.sem = make(chan struct{}, inFlight)
	return f, nil
}

// Workers returns the registered peer URLs.
func (f *Fleet) Workers() []string {
	urls := make([]string, len(f.workers))
	for i, w := range f.workers {
		urls[i] = w.url
	}
	return urls
}

// Healthy returns how many workers are currently considered healthy.
func (f *Fleet) Healthy() int {
	n := 0
	for _, w := range f.workers {
		if w.healthy.Load() {
			n++
		}
	}
	return n
}

// Probe health-checks every worker concurrently (GET /v1/healthz) and
// returns the healthy count. Probes both demote dead workers and revive
// recovered ones, and read the capacity each healthy worker advertises
// in its healthz body (falling back to full capacity for bodies that
// don't carry one).
func (f *Fleet) Probe(ctx context.Context) int {
	timeout := f.opts.ProbeTimeout
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	var wg sync.WaitGroup
	for _, w := range f.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.url+"/v1/healthz", nil)
			if err != nil {
				w.healthy.Store(false)
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				w.healthy.Store(false)
				return
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				w.healthy.Store(false)
				return
			}
			var hz struct {
				Capacity *float64 `json:"capacity"`
			}
			if json.Unmarshal(body, &hz) == nil && hz.Capacity != nil {
				w.setCapacity(*hz.Capacity)
			} else {
				w.setCapacity(1)
			}
			w.healthy.Store(true)
		}(w)
	}
	wg.Wait()
	return f.Healthy()
}

// StartProbes re-probes the fleet every interval until ctx is done — the
// coordinator daemon's liveness loop. It returns immediately.
func (f *Fleet) StartProbes(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				f.Probe(ctx)
			}
		}
	}()
}

// Snapshot implements serve.FleetDispatcher: the registry and traffic
// counters for /v1/stats. The coordinator-side cell counters
// (CellsDispatched, LocalFallbacks) are filled by the serve layer.
func (f *Fleet) Snapshot() serve.FleetSnapshot {
	snap := serve.FleetSnapshot{
		Peers:            len(f.workers),
		Healthy:          f.Healthy(),
		CellsMerged:      f.cellsMerged.Load(),
		CellsFailed:      f.cellsFailed.Load(),
		ShardsDispatched: f.shardsDispatched.Load(),
		Failovers:        f.failovers.Load(),
	}
	for _, w := range f.workers {
		snap.Workers = append(snap.Workers, serve.FleetWorkerSnapshot{
			URL:      w.url,
			Healthy:  w.healthy.Load(),
			Capacity: w.capacity(),
			Shards:   w.shards.Load(),
			Failures: w.failures.Load(),
		})
	}
	return snap
}

// rank orders the fleet's workers for one (cell, shard) pair by
// capacity-weighted rendezvous hashing: every coordinator computes the
// same ranking (given the same probe readings), the top healthy worker
// takes the shard, and the ranking itself is the failover order. Each
// worker's 64-bit rendezvous score is mapped to u in (0,1) and weighted
// as capacity / -ln(u) — the standard weighted-rendezvous key, under
// which a worker's share of the key space is proportional to its
// capacity. -ln(u) is strictly decreasing in u, so with equal
// capacities the weighted order equals the raw-score order and shard
// placement (hence dataset cache locality) is unchanged from the
// unweighted scheduler. Shard 0's ranking depends only on the cell key,
// so a one-shard cell lands on the same worker sweep after sweep while
// capacities are equal.
func (f *Fleet) rank(cellHash uint64, shard int) []*worker {
	type scored struct {
		w   *worker
		key float64
	}
	base := fnv.U64(fnv.U64(fnv.Offset64, cellHash), uint64(shard))
	ss := make([]scored, len(f.workers))
	for i, w := range f.workers {
		score := fnv.U64(base, w.urlHash)
		// u in (0,1): offset by 0.5 so u is never exactly 0 or 1.
		u := (float64(score) + 0.5) / float64(1<<63) / 2
		ss[i] = scored{w: w, key: w.capacity() / -math.Log(u)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].key != ss[j].key {
			return ss[i].key > ss[j].key
		}
		return ss[i].w.url < ss[j].w.url
	})
	ranked := make([]*worker, len(ss))
	for i, s := range ss {
		ranked[i] = s.w
	}
	return ranked
}

// errNotPlaced reports that every worker was tried and none could take
// the request — the caller should fall back to local execution.
type errNotPlaced struct{ last error }

func (e errNotPlaced) Error() string {
	if e.last == nil {
		return "fleet: no healthy workers"
	}
	return fmt.Sprintf("fleet: no healthy workers (last failure: %v)", e.last)
}

// errCell is a non-retryable per-cell failure (the worker answered 4xx):
// the request itself is bad and would fail identically everywhere.
type errCell struct{ msg string }

func (e errCell) Error() string { return e.msg }

// post sends one JSON request under the in-flight bound and decodes the
// 200 response into out. Transport failures, 5xx answers and undecodable
// bodies are retryable (the worker is at fault); 4xx answers are not
// (the request is at fault).
func (f *Fleet) post(ctx context.Context, w *worker, path string, body, out any) (retryable bool, err error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return false, err
	}
	select {
	case f.sem <- struct{}{}:
	case <-ctx.Done():
		return false, ctx.Err()
	}
	defer func() { <-f.sem }()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+path, bytes.NewReader(buf))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	f.shardsDispatched.Add(1)
	resp, err := f.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err() // caller cancelled; not the worker's fault
		}
		return true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return true, fmt.Errorf("decoding %s response: %w", path, err)
		}
		return false, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		var eb struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			return false, errCell{msg: eb.Error}
		}
		return false, errCell{msg: fmt.Sprintf("%s: %s", resp.Status, bytes.TrimSpace(msg))}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return true, fmt.Errorf("worker answered %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
}

// dispatch tries one request against the (cell, shard) rendezvous
// ranking with failover: retryable failures demote the worker and move
// on; a 4xx stops immediately. On success it returns the worker that
// answered.
func (f *Fleet) dispatch(ctx context.Context, cellHash uint64, shard int, path string, body, out any) (*worker, error) {
	var lastErr error
	for _, w := range f.rank(cellHash, shard) {
		if !w.healthy.Load() {
			continue
		}
		retryable, err := f.post(ctx, w, path, body, out)
		if err == nil {
			w.shards.Add(1)
			return w, nil
		}
		if !retryable {
			return nil, err // errCell or ctx cancellation
		}
		w.failures.Add(1)
		w.healthy.Store(false)
		f.failovers.Add(1)
		lastErr = err
	}
	return nil, errNotPlaced{last: lastErr}
}
