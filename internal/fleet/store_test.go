// Durable result store tests: warm-restart re-serving without a single
// dispatch, corruption tolerance (every broken record is a logged miss,
// never a crash or a wrong answer), identity cross-checking, and
// atomic-rename safety under concurrent writers.

package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/serve"
	"earlybird/internal/wire"
)

// storeLog captures store warnings for assertions.
type storeLog struct {
	mu    sync.Mutex
	lines []string
}

func (l *storeLog) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *storeLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

func (l *storeLog) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ln := range l.lines {
		if strings.Contains(ln, sub) {
			return true
		}
	}
	return false
}

func TestOpenStoreValidation(t *testing.T) {
	if _, err := OpenStore("", nil); err == nil {
		t.Error("empty dir: expected error")
	}
	dir := t.TempDir()
	st, err := OpenStore(filepath.Join(dir, "nested", "store"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Errorf("fresh store Len = %d", st.Len())
	}
	if st.Dir() == "" {
		t.Error("Dir empty")
	}
}

// TestStoreWarmRestartServesWithoutDispatch is the durability acceptance
// test: a second coordinator sharing the store directory — whose only
// "worker" is long dead — re-serves the completed sweep entirely from
// disk, bit-identical, with its shard dispatch counter at exactly 0.
func TestStoreWarmRestartServesWithoutDispatch(t *testing.T) {
	dir := t.TempDir()
	st1, err := OpenStore(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	cold := newFleet(t, Options{Peers: []string{w1.URL, w2.URL}, Store: st1})

	req := serve.SweepRequest{
		Apps:       []string{"minife", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
		Alphas:     []float64{0.05, 0.01},
	}
	coldRows := collectSweep(t, cold, req)
	want := singleNodeRows(t, req)
	assertBitIdentical(t, coldRows, want)

	snap := cold.Snapshot()
	if snap.StoreMisses != 4 || snap.StoreHits != 0 {
		t.Fatalf("cold run store counters: %+v", snap)
	}
	if st1.Len() != 4 {
		t.Fatalf("store holds %d records, want 4", st1.Len())
	}

	// "Restart": a fresh coordinator, same directory, dead worker.
	deadTS := httptest.NewServer(http.NotFoundHandler())
	dead := deadTS.URL
	deadTS.Close()
	st2, err := OpenStore(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	warm := newFleet(t, Options{Peers: []string{dead}, Store: st2})
	warmRows := collectSweep(t, warm, req)
	assertBitIdentical(t, warmRows, want)
	for idx, rs := range warmRows {
		if !rs[0].StoreHit {
			t.Errorf("cell %d not marked as a store hit", idx)
		}
		if rs[0].Shards != 0 || len(rs[0].ShardWorkers) != 0 {
			t.Errorf("cell %d claims dispatch: %+v", idx, rs[0])
		}
	}
	wsnap := warm.Snapshot()
	if wsnap.ShardsDispatched != 0 {
		t.Fatalf("warm restart dispatched %d shards, want 0", wsnap.ShardsDispatched)
	}
	if wsnap.StoreHits != 4 || wsnap.StoreMisses != 0 {
		t.Fatalf("warm run store counters: %+v", wsnap)
	}
}

// TestStoreCorruptionTolerated: every way a record can rot on disk —
// truncation, bit flips, garbage, an empty file — is a logged miss, and
// the cell transparently recomputes and repairs the record.
func TestStoreCorruptionTolerated(t *testing.T) {
	dir := t.TempDir()
	lg := &storeLog{}
	st, err := OpenStore(dir, lg.logf)
	if err != nil {
		t.Fatal(err)
	}
	_, w1 := newWorker(t)
	f := newFleet(t, Options{Peers: []string{w1.URL}, Store: st})

	cell := serve.SweepCell{App: "minife", Geometry: fleetGeom(), Alpha: 0.05, LaggardThresholdSec: 0.001}
	row, ok := f.DispatchCell(context.Background(), cell)
	if !ok || row.Err != "" {
		t.Fatalf("seed dispatch failed: %+v", row)
	}
	key, err := cellKey(cell)
	if err != nil {
		t.Fatal(err)
	}
	path := st.path(key.StoreKey())
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.LoadCell(cell, key); !ok {
		t.Fatal("pristine record does not load")
	}

	corruptions := map[string][]byte{
		"empty":     {},
		"truncated": pristine[:len(pristine)/2],
		"garbage":   []byte("not a sealed record at all"),
		"flipped": func() []byte {
			b := append([]byte(nil), pristine...)
			b[len(b)/3] ^= 0xff
			return b
		}(),
		"too short": pristine[:4],
	}
	for name, data := range corruptions {
		before := lg.count()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.LoadCell(cell, key); ok {
			t.Errorf("%s: corrupt record served", name)
		}
		if lg.count() <= before {
			t.Errorf("%s: corruption was not logged", name)
		}
		// The sweep path recomputes and heals the record.
		row, ok := f.DispatchCell(context.Background(), cell)
		if !ok || row.Err != "" || row.StoreHit {
			t.Fatalf("%s: recompute failed: ok=%v row=%+v", name, ok, row)
		}
		if _, ok := st.LoadCell(cell, key); !ok {
			t.Errorf("%s: record not repaired after recompute", name)
		}
	}
	if !lg.contains("skipping corrupt entry") {
		t.Errorf("expected corruption warnings, got %v", lg.lines)
	}
}

// TestStoreRejectsMismatchedIdentity: a record renamed onto another
// cell's key (the on-disk shape of a hash collision) is refused by the
// embedded key hash / identity cross-check and logged.
func TestStoreRejectsMismatchedIdentity(t *testing.T) {
	dir := t.TempDir()
	lg := &storeLog{}
	st, err := OpenStore(dir, lg.logf)
	if err != nil {
		t.Fatal(err)
	}
	_, w1 := newWorker(t)
	f := newFleet(t, Options{Peers: []string{w1.URL}, Store: st})

	cellA := serve.SweepCell{App: "minife", Geometry: fleetGeom(), Alpha: 0.05, LaggardThresholdSec: 0.001}
	cellB := cellA
	cellB.Alpha = 0.01
	if row, ok := f.DispatchCell(context.Background(), cellA); !ok || row.Err != "" {
		t.Fatalf("seed dispatch failed: %+v", row)
	}
	keyA, _ := cellKey(cellA)
	keyB, _ := cellKey(cellB)
	if err := os.Rename(st.path(keyA.StoreKey()), st.path(keyB.StoreKey())); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.LoadCell(cellB, keyB); ok {
		t.Fatal("foreign record served for the wrong cell")
	}
	if !lg.contains("does not match") {
		t.Errorf("mismatch not logged: %v", lg.lines)
	}
}

// TestStoreConcurrentWriters hammers one key from two Store handles
// (two coordinator processes sharing a directory): every read must see
// a complete sealed record of one writer or a clean miss — never a torn
// mix, which the checksum would expose.
func TestStoreConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	lg := &storeLog{}
	stA, err := OpenStore(dir, lg.logf)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := OpenStore(dir, lg.logf)
	if err != nil {
		t.Fatal(err)
	}

	sealed := func(tag uint64) []byte {
		var w wire.Writer
		w.U32(storeMagic)
		w.U64(tag)
		for i := 0; i < 200; i++ {
			w.U64(tag * uint64(i+1))
		}
		return w.Seal()
	}
	wantA, wantB := string(sealed(1)), string(sealed(2))

	const key = "00deadbeef00cafe"
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, tag := stA, uint64(1)
			if i%2 == 1 {
				st, tag = stB, 2
			}
			payload := sealed(tag)
			for j := 0; j < 100; j++ {
				if err := st.put(key, payload); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				body, ok := stA.get(key)
				if !ok {
					continue // a get may race the very first rename; misses are legal
				}
				var w wire.Writer
				w.Buf = body
				got := string(w.Seal())
				if got != wantA && got != wantB {
					t.Error("torn read: body matches neither writer")
					return
				}
			}
		}()
	}
	wg.Wait()
	if lg.contains("corrupt") {
		t.Errorf("checksum failures under concurrent rename writes: %v", lg.lines)
	}
	body, ok := stA.get(key)
	if !ok {
		t.Fatal("final read missed")
	}
	var w wire.Writer
	w.Buf = body
	if got := string(w.Seal()); got != wantA && got != wantB {
		t.Error("final record torn")
	}
}
