package fleet

import (
	"context"
	"reflect"
	"testing"

	"earlybird/internal/engine"
	"earlybird/internal/scenario"
	"earlybird/internal/serve"
)

// TestDispatchStudyMatchesLocalExecution pins the scenario federation
// contract: a wire-expressible scenario cell dispatched whole to a
// fleet worker returns the same analysis — bit for bit — as running the
// identical resolved spec on a local engine. engine.RunSpec is
// deterministic and the wire spec carries every field post-resolution,
// so worker and coordinator compute the same study; JSON float encoding
// is shortest-round-trip, so nothing is lost in transit.
func TestDispatchStudyMatchesLocalExecution(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	f := newFleet(t, Options{Peers: []string{w1.URL, w2.URL}})
	ctx := context.Background()
	if got := f.Probe(ctx); got != 2 {
		t.Fatalf("healthy = %d, want 2", got)
	}

	spec, err := scenario.Parse([]byte(`
name: fleet-identity
sources: [minife, miniqmc]
geometries: [1x2x8x48]
fabrics: [omnipath, "flat:latency-us=2,gbs=10"]
`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile(scenario.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(); err != nil {
		t.Fatal(err)
	}

	eng := engine.New(0)
	dispatched := 0
	for _, cell := range c.Cells {
		resolved, err := cell.Spec.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		resp, ok := f.DispatchStudy(ctx, resolved.Key().Hash(), serve.WireStudySpec(resolved))
		if !ok {
			t.Fatalf("cell %d was not placed on any worker", cell.Index)
		}
		dispatched++
		local, err := eng.RunSpec(resolved)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Metrics, local.Metrics) {
			t.Errorf("cell %d metrics diverge:\nfleet: %+v\nlocal: %+v", cell.Index, resp.Metrics, local.Metrics)
		}
		if !reflect.DeepEqual(resp.Table1, local.Table1) {
			t.Errorf("cell %d table1 diverges:\nfleet: %+v\nlocal: %+v", cell.Index, resp.Table1, local.Table1)
		}
		if !reflect.DeepEqual(resp.Assessment, local.Assessment) {
			t.Errorf("cell %d assessment diverges:\nfleet: %+v\nlocal: %+v", cell.Index, resp.Assessment, local.Assessment)
		}
	}
	if dispatched != 4 {
		t.Fatalf("dispatched %d cells, want the full 2x2 grid", dispatched)
	}
}

// TestDispatchStudyNoWorkers pins the fallback contract: with no
// healthy worker the dispatch declines instead of erroring, so the
// caller runs the cell locally.
func TestDispatchStudyNoWorkers(t *testing.T) {
	f := newFleet(t, Options{Peers: []string{"http://127.0.0.1:1"}})
	f.snapshotWorkers()[0].healthy.Store(false)
	if _, ok := f.DispatchStudy(context.Background(), 42, serve.StudySpec{App: "minife"}); ok {
		t.Fatal("dispatch claimed placement with zero healthy workers")
	}
}
