// Scatter/gather execution: sweep cells shard across workers and merge
// by accumulator state; strategy cells dispatch whole and merge by
// concatenation.

package fleet

import (
	"context"
	"fmt"
	"sync"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/engine"
	"earlybird/internal/serve"
)

// shardRange is one contiguous trial range of a cell.
type shardRange struct{ lo, hi int }

// splitTrials partitions [0, trials) into k balanced contiguous ranges.
func splitTrials(trials, k int) []shardRange {
	if k > trials {
		k = trials
	}
	if k < 1 {
		k = 1
	}
	out := make([]shardRange, 0, k)
	for i := 0; i < k; i++ {
		lo := i * trials / k
		hi := (i + 1) * trials / k
		if lo < hi {
			out = append(out, shardRange{lo: lo, hi: hi})
		}
	}
	return out
}

// cellKey resolves a sweep cell to its engine.SpecKey — the scheduler's
// routing key and the durable store's content address. Equal cells
// (after defaulting) key equally on every coordinator.
func cellKey(cell serve.SweepCell) (engine.SpecKey, error) {
	sp := engine.Spec{
		App:                 cell.App,
		Geometry:            cell.Geometry,
		Alpha:               cell.Alpha,
		LaggardThresholdSec: cell.LaggardThresholdSec,
		DLB:                 cell.DLB,
	}
	resolved, err := sp.Resolve()
	if err != nil {
		return engine.SpecKey{}, err
	}
	return resolved.Key(), nil
}

// errorRow assembles a failed cell's row.
func errorRow(cell serve.SweepCell, err error) serve.SweepRow {
	return serve.SweepRow{
		Index:               cell.Index,
		App:                 cell.App,
		Geometry:            cell.Geometry,
		Alpha:               cell.Alpha,
		LaggardThresholdSec: cell.LaggardThresholdSec,
		DLB:                 cell.DLB,
		Err:                 err.Error(),
	}
}

// DispatchCell implements serve.FleetDispatcher: it shards one sweep
// cell across the fleet's workers and merges the shard states into the
// finished row. A configured durable store is consulted first — before
// even the health check, so a warm store answers with zero workers —
// and fed on every merged cell. ok == false means no healthy worker
// could take some shard — the caller (a coordinating server) should run
// the cell locally; per-cell request errors (unknown app, bad geometry)
// come back as error rows with ok == true, exactly as local execution
// would report them.
func (f *Fleet) DispatchCell(ctx context.Context, cell serve.SweepCell) (serve.SweepRow, bool) {
	if err := cell.Geometry.Validate(); err != nil {
		f.cellsFailed.Add(1)
		return errorRow(cell, err), true
	}
	key, err := cellKey(cell)
	if err != nil {
		f.cellsFailed.Add(1)
		return errorRow(cell, err), true
	}
	hash := key.Hash()
	if f.store != nil {
		if row, ok := f.store.LoadCell(cell, key); ok {
			f.storeHits.Add(1)
			return row, true
		}
		f.storeMisses.Add(1)
	}
	if f.Healthy() == 0 {
		return serve.SweepRow{}, false
	}

	shards := f.opts.ShardsPerCell
	if shards <= 0 {
		shards = f.Healthy()
	}
	ranges := splitTrials(cell.Geometry.Trials, shards)

	type shardOutcome struct {
		resp serve.ShardResponse
		from *worker
		err  error
	}
	outcomes := make([]shardOutcome, len(ranges))
	var wg sync.WaitGroup
	for i, rg := range ranges {
		wg.Add(1)
		go func(i int, rg shardRange) {
			defer wg.Done()
			req := serve.ShardRequest{
				App:        cell.App,
				Geometry:   &cell.Geometry,
				Alpha:      cell.Alpha,
				LaggardSec: cell.LaggardThresholdSec,
				TrialLo:    rg.lo,
				TrialHi:    rg.hi,
			}
			if !cell.DLB.IsStatic() {
				policy := cell.DLB
				req.DLB = &policy
			}
			outcomes[i].from, outcomes[i].err = f.dispatch(ctx, hash, i, "/v1/shard", req, &outcomes[i].resp)
		}(i, rg)
	}
	wg.Wait()

	macc := analysis.NewMetricsAccumulator(cell.App, cell.LaggardThresholdSec)
	tacc := analysis.NewTable1Accumulator(cell.App, cell.Alpha)
	row := serve.SweepRow{
		Index:               cell.Index,
		App:                 cell.App,
		Geometry:            cell.Geometry,
		Alpha:               cell.Alpha,
		LaggardThresholdSec: cell.LaggardThresholdSec,
		DLB:                 cell.DLB,
		Shards:              len(ranges),
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			if _, bad := o.err.(errCell); bad {
				// The request itself is invalid: report it as the cell's
				// error row, as local execution would.
				f.cellsFailed.Add(1)
				return errorRow(cell, o.err), true
			}
			if ctx.Err() != nil {
				// The caller cancelled (client gone, deadline hit):
				// report the cancellation rather than pretending the
				// fleet is unhealthy — and never hand the cell back for
				// a pointless full local execution.
				f.cellsFailed.Add(1)
				return errorRow(cell, ctx.Err()), true
			}
			// A shard could not be placed anywhere: hand the whole cell
			// back for local execution.
			return serve.SweepRow{}, false
		}
		decM := new(analysis.MetricsAccumulator)
		if err := decM.UnmarshalBinary(o.resp.MetricsState); err != nil {
			f.cellsFailed.Add(1)
			return errorRow(cell, fmt.Errorf("shard %d state: %w", i, err)), true
		}
		decT := new(analysis.Table1Accumulator)
		if err := decT.UnmarshalBinary(o.resp.Table1State); err != nil {
			f.cellsFailed.Add(1)
			return errorRow(cell, fmt.Errorf("shard %d table1 state: %w", i, err)), true
		}
		macc.Merge(decM)
		tacc.Merge(decT)
		row.DatasetCacheHit = row.DatasetCacheHit || o.resp.DatasetCacheHit
		row.Streamed = row.Streamed || o.resp.Streamed
		row.ShardWorkers = append(row.ShardWorkers, o.from.url)
	}
	if f.store != nil {
		// Persist the merged (pre-finalize) states: the codecs are
		// value-preserving, so a later load finalizes to a bit-identical
		// row. A store write failure only costs durability — log and move
		// on.
		mstate, merr := macc.MarshalBinary()
		tstate, terr := tacc.MarshalBinary()
		if merr == nil && terr == nil {
			if err := f.store.SaveCell(cell, key, mstate, tstate); err != nil {
				f.store.logf("fleet: store: saving cell %s failed: %v", key.StoreKey(), err)
			}
		}
	}
	row.Metrics = macc.Finalize()
	row.Table1 = tacc.Finalize()
	row.Recommendation = core.ClassifyMetrics(row.Metrics)
	f.cellsMerged.Add(1)
	return row, true
}

// Sweep runs a sweep request entirely on the fleet, emitting one row per
// cell in completion order — the client-side counterpart of a
// coordinator server's fanned-out /v1/sweep. Cells that cannot be placed
// (no healthy workers) emit error rows; emit is never called twice for
// one cell. The request-level error covers grid expansion only.
func (f *Fleet) Sweep(ctx context.Context, req serve.SweepRequest, emit func(serve.SweepRow)) error {
	cells, err := req.Cells()
	if err != nil {
		return err
	}
	var mu sync.Mutex
	f.eachCell(len(cells), func(i int) {
		row, ok := f.DispatchCell(ctx, cells[i])
		if !ok {
			f.cellsFailed.Add(1)
			row = errorRow(cells[i], f.notPlaced(0, -1, nil))
		}
		mu.Lock()
		emit(row)
		mu.Unlock()
	})
	return nil
}

// Strategies runs a strategy-grid request on the fleet: each (app,
// geometry) cell dispatches whole to its rendezvous worker over
// POST /v1/strategies (strategy rows are self-contained — no accumulator
// merge needed), with the same failover as sweep shards. Cells that
// cannot be placed emit error rows.
func (f *Fleet) Strategies(ctx context.Context, req serve.StrategiesRequest, emit func(serve.StrategyRow)) error {
	cells, err := req.Cells()
	if err != nil {
		return err
	}
	var mu sync.Mutex
	f.eachCell(len(cells), func(i int) {
		row := f.strategyCell(ctx, req, cells[i])
		mu.Lock()
		emit(row)
		mu.Unlock()
	})
	return nil
}

// strategyCell dispatches one strategy cell and restamps its index.
func (f *Fleet) strategyCell(ctx context.Context, req serve.StrategiesRequest, cell serve.StrategyCell) serve.StrategyRow {
	fail := func(err error) serve.StrategyRow {
		f.cellsFailed.Add(1)
		return serve.StrategyRow{Index: cell.Index, App: cell.App, Geometry: cell.Geometry, Err: err.Error()}
	}
	sp := engine.Spec{App: cell.App, Geometry: cell.Geometry, BytesPerPartition: req.BytesPerPartition}
	if req.DLB != nil {
		sp.DLB = *req.DLB
	}
	resolved, err := sp.Resolve()
	if err != nil {
		return fail(err)
	}

	single := req
	single.Apps = []string{cell.App}
	single.Geometries = []cluster.Config{cell.Geometry}
	single.GeometryNames = nil
	single.Stream = false
	single.Workers = 0
	var out serve.StrategiesResponse
	if _, err := f.dispatch(ctx, resolved.Key().Hash(), 0, "/v1/strategies", single, &out); err != nil {
		return fail(err)
	}
	if len(out.Rows) != 1 {
		return fail(fmt.Errorf("worker returned %d rows for one cell", len(out.Rows)))
	}
	row := out.Rows[0]
	row.Index = cell.Index
	if row.Err != "" {
		f.cellsFailed.Add(1)
	} else {
		f.cellsMerged.Add(1)
	}
	return row
}

// eachCell runs fn(i) for every cell across a bounded worker pool sized
// to the fleet's in-flight budget.
func (f *Fleet) eachCell(n int, fn func(int)) {
	workers := cap(f.sem)
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
