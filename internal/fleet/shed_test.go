// Regression tests for the 503 misclassification: a worker whose
// adaptive admission sheds with 503 + Retry-After is busy, not dead. It
// must keep its registry slot and ranking, never count as a failover,
// and re-enter dispatch the moment its Retry-After window lapses.

package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"earlybird/internal/cluster"
	"earlybird/internal/serve"
	"earlybird/internal/telemetry"
)

// shedTracker builds a synthetic in-flight study whose live efficiency
// (0.1) sits below any reasonable admission watermark and whose EWMA
// fill rate yields an ETA of ~1s — so the worker sheds with the
// smallest possible Retry-After and a test can wait it out.
func shedTracker(id string) *telemetry.Tracker {
	base := time.Unix(1700000000, 0)
	now := base
	tr := telemetry.NewWithClock(telemetry.StudyInfo{
		ID: id, App: "synthetic", Trials: 10, Ranks: 1, Iterations: 1, Workers: 1,
	}, func() time.Time { return now })
	for i := 0; i < 9; i++ {
		tr.ObserveFill(1, 100*time.Millisecond)
	}
	now = base.Add(9 * time.Second)
	tr.Snapshot() // prime the EWMA: 1 block/s over 9s -> 1 block left, ETA 1s
	return tr
}

// sheddingWorker starts a real worker whose adaptive admission is
// currently refusing all materialising work (efficiency 0.1 under a 0.5
// watermark). Finishing the returned tracker reopens admission.
func sheddingWorker(t *testing.T) (*serve.Server, *httptest.Server, *telemetry.Tracker) {
	t.Helper()
	s := serve.New(serve.Options{Workers: 4, AdmissionWatermark: 0.5})
	tr := shedTracker("shed-regression")
	s.Telemetry().Register(tr)
	if eff, live := s.Telemetry().Efficiency(); !live || eff >= 0.5 {
		t.Fatalf("synthetic efficiency = %v (live %v), want < 0.5", eff, live)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, tr
}

// TestShedWorkerNeverDemotedAndReRanked is the headline regression: the
// fleet's only worker sheds every shard with 503 + Retry-After. The
// cell cannot be placed — but the worker must stay healthy (busy, not
// demoted, no failover recorded), and once its admission reopens and
// the Retry-After window lapses it must take the very next dispatch.
func TestShedWorkerNeverDemotedAndReRanked(t *testing.T) {
	ws, wts, tr := sheddingWorker(t)
	f := newFleet(t, Options{Peers: []string{wts.URL}, ShardsPerCell: 1})

	cell := serve.SweepCell{App: "minife", Geometry: fleetGeom(), Alpha: 0.05, LaggardThresholdSec: 0.001}
	if _, ok := f.DispatchCell(context.Background(), cell); ok {
		t.Fatal("cell placed despite the only worker shedding")
	}

	snap := f.Snapshot()
	if snap.Sheds < 1 {
		t.Fatalf("fleet shed counter = %d, want >= 1", snap.Sheds)
	}
	if snap.Failovers != 0 {
		t.Fatalf("sheds recorded %d failovers, want 0 (shed is not death)", snap.Failovers)
	}
	w := snap.Workers[0]
	if !w.Healthy {
		t.Fatal("shedding worker was demoted")
	}
	if !w.Busy || w.BusyForSec <= 0 {
		t.Fatalf("shedding worker not marked busy: %+v", w)
	}
	if w.Sheds < 1 {
		t.Fatalf("worker shed counter = %d, want >= 1", w.Sheds)
	}
	if f.Healthy() != 1 {
		t.Fatalf("healthy = %d, want 1 (busy workers are alive)", f.Healthy())
	}

	// Reopen admission and wait out the Retry-After: the worker must
	// re-enter the ranking where the hash put it and serve the cell.
	ws.Telemetry().Finish(tr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		row, ok := f.DispatchCell(context.Background(), cell)
		if ok {
			if row.Err != "" {
				t.Fatalf("re-ranked dispatch errored: %s", row.Err)
			}
			if len(row.ShardWorkers) != 1 || row.ShardWorkers[0] != wts.URL {
				t.Fatalf("cell served by %v, want the recovered worker", row.ShardWorkers)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never re-entered the ranking after Retry-After elapsed")
		}
		time.Sleep(100 * time.Millisecond)
	}
	snap = f.Snapshot()
	if !snap.Workers[0].Healthy || snap.Failovers != 0 {
		t.Fatalf("recovery left bad state: %+v", snap)
	}
}

// TestShedFailsOverToPeersAndSurfacesStats: with a healthy peer
// alongside the shedding worker, every cell completes on the peer, no
// failover is recorded, and the coordinator's /v1/stats surfaces the
// shed counters.
func TestShedFailsOverToPeersAndSurfacesStats(t *testing.T) {
	_, wShed, _ := sheddingWorker(t)
	_, wOK := newWorker(t)
	f := newFleet(t, Options{Peers: []string{wShed.URL, wOK.URL}, ShardsPerCell: 1})

	req := serve.SweepRequest{
		Apps:       []string{"minife", "minimd", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
		Alphas:     []float64{0.05, 0.01},
	}
	rows := collectSweep(t, f, req)
	assertBitIdentical(t, rows, singleNodeRows(t, req))
	for idx, rs := range rows {
		if rs[0].ShardWorkers[0] != wOK.URL {
			t.Errorf("cell %d served by %v, want the healthy peer", idx, rs[0].ShardWorkers)
		}
	}

	// Placement is hash-driven, so the shedding worker may not have been
	// ranked first for any sweep cell yet; dispatch fresh cells (distinct
	// alphas, distinct hashes) until one routes to it and sheds.
	for i := 0; f.Snapshot().Sheds == 0; i++ {
		if i >= 50 {
			t.Fatal("no cell ever routed to the shedding worker")
		}
		cell := serve.SweepCell{App: "minife", Geometry: fleetGeom(), Alpha: 0.001 + float64(i)*0.0001, LaggardThresholdSec: 0.001}
		if row, ok := f.DispatchCell(context.Background(), cell); !ok || row.Err != "" {
			t.Fatalf("probe cell %d failed: ok=%v %+v", i, ok, row)
		}
	}

	snap := f.Snapshot()
	if snap.Failovers != 0 {
		t.Fatalf("%d failovers recorded, want 0 (sheds must not demote)", snap.Failovers)
	}
	for _, w := range snap.Workers {
		if !w.Healthy {
			t.Errorf("worker %s demoted", w.URL)
		}
	}

	// The coordinator's stats endpoint carries the new counters.
	coord := serve.New(serve.Options{Workers: 2, Fleet: f})
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)
	resp, err := http.Get(cts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Fleet == nil || stats.Fleet.Sheds < 1 {
		t.Fatalf("stats missing shed counter: %+v", stats.Fleet)
	}
	found := false
	for _, w := range stats.Fleet.Workers {
		if w.URL == wShed.URL && w.Sheds >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("per-worker shed counter missing: %+v", stats.Fleet.Workers)
	}
}

// TestPlain503StillDemotes pins the classification boundary: a 503
// WITHOUT a parseable Retry-After is an unexplained worker fault (what
// a stalled or misconfigured worker emits), and must keep demoting.
func TestPlain503StillDemotes(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no hint", http.StatusServiceUnavailable)
	}))
	t.Cleanup(broken.Close)
	f := newFleet(t, Options{Peers: []string{broken.URL}, ShardsPerCell: 1})

	cell := serve.SweepCell{App: "minife", Geometry: fleetGeom(), Alpha: 0.05, LaggardThresholdSec: 0.001}
	if _, ok := f.DispatchCell(context.Background(), cell); ok {
		t.Fatal("cell placed on a plain-503 worker")
	}
	snap := f.Snapshot()
	if snap.Sheds != 0 {
		t.Errorf("plain 503 counted as a shed: %+v", snap)
	}
	if snap.Failovers == 0 {
		t.Error("plain 503 did not count as a worker fault")
	}
	if snap.Workers[0].Healthy {
		t.Error("plain-503 worker was not demoted")
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, c := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"1", time.Second, true},
		{" 30 ", 30 * time.Second, true},
		{"0", time.Second, true}, // floored: an immediate retry hint still backs off
		{"", 0, false},
		{"-5", 0, false},
		{"soon", 0, false},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0, false}, // HTTP-date form unsupported
	} {
		got, ok := parseRetryAfter(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("parseRetryAfter(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestNotPlacedMessage pins the enriched errNotPlaced: cell hash, shard
// index and per-worker health/busy states, with sane degradations when
// routing context or workers are absent.
func TestNotPlacedMessage(t *testing.T) {
	f := newFleet(t, Options{Peers: []string{"http://a:1", "http://b:2"}})
	f.workers[0].healthy.Store(false)
	f.workers[1].markBusy(time.Now().Add(5 * time.Second))

	msg := f.notPlaced(0xabc, 2, nil).Error()
	for _, want := range []string{"cell 0000000000000abc", "shard 2", "http://a:1 unhealthy", "http://b:2 healthy busy("} {
		if !strings.Contains(msg, want) {
			t.Errorf("errNotPlaced missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "last failure") {
		t.Errorf("nil cause rendered: %s", msg)
	}

	withCause := f.notPlaced(1, 0, errShed{retryAfter: time.Second, msg: "busy"}).Error()
	if !strings.Contains(withCause, "last failure") {
		t.Errorf("cause missing: %s", withCause)
	}

	empty := newFleet(t, Options{Dynamic: true})
	noCtx := empty.notPlaced(0, -1, nil).Error()
	if !strings.Contains(noCtx, "no workers registered") || strings.Contains(noCtx, "shard") {
		t.Errorf("empty-registry message: %s", noCtx)
	}
}
