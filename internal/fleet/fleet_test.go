package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/serve"
)

// fleetGeom is small enough for fast tests, wide enough (4 trials) to
// shard across 3 workers, and keeps the 48-thread sets the analysis is
// calibrated for.
func fleetGeom() cluster.Config {
	return cluster.Config{Trials: 4, Ranks: 2, Iterations: 8, Threads: 48, Seed: 2}
}

// newWorker starts one in-process study service.
func newWorker(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(serve.Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// newFleet builds a fleet over the given worker URLs.
func newFleet(t *testing.T, opts Options) *Fleet {
	t.Helper()
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// collectSweep runs a fleet sweep and returns rows indexed by cell.
func collectSweep(t *testing.T, f *Fleet, req serve.SweepRequest) map[int][]serve.SweepRow {
	t.Helper()
	rows := map[int][]serve.SweepRow{}
	if err := f.Sweep(context.Background(), req, func(r serve.SweepRow) {
		rows[r.Index] = append(rows[r.Index], r)
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestNewValidation(t *testing.T) {
	cases := map[string]Options{
		"no peers":  {},
		"empty url": {Peers: []string{""}},
		"not http":  {Peers: []string{"worker-1:8080"}},
		"duplicate": {Peers: []string{"http://a:1", "http://a:1/"}},
	}
	for name, opts := range cases {
		if _, err := New(opts); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	f := newFleet(t, Options{Peers: []string{" http://a:1/ ", "http://b:2"}})
	if got := f.Workers(); got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Errorf("normalised peers %v", got)
	}
	if f.Healthy() != 2 {
		t.Errorf("fresh fleet healthy = %d, want 2 (optimistic)", f.Healthy())
	}
}

func TestSplitTrials(t *testing.T) {
	for _, c := range []struct {
		trials, k int
		want      []shardRange
	}{
		{4, 2, []shardRange{{0, 2}, {2, 4}}},
		{5, 3, []shardRange{{0, 1}, {1, 3}, {3, 5}}},
		{2, 5, []shardRange{{0, 1}, {1, 2}}}, // k capped at trials
		{3, 0, []shardRange{{0, 3}}},         // k floored at 1
	} {
		got := splitTrials(c.trials, c.k)
		if len(got) != len(c.want) {
			t.Fatalf("splitTrials(%d, %d) = %v, want %v", c.trials, c.k, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitTrials(%d, %d) = %v, want %v", c.trials, c.k, got, c.want)
			}
		}
	}
}

// TestRankDeterministicAndSpreading: the rendezvous ranking is stable
// for one key and spreads different keys across workers.
func TestRankDeterministicAndSpreading(t *testing.T) {
	f := newFleet(t, Options{Peers: []string{"http://a:1", "http://b:2", "http://c:3"}})
	a := f.rank(42, 0)
	b := f.rank(42, 0)
	for i := range a {
		if a[i].url != b[i].url {
			t.Fatal("ranking is not deterministic")
		}
	}
	first := map[string]int{}
	for h := uint64(0); h < 64; h++ {
		first[f.rank(h, 0)[0].url]++
	}
	if len(first) != 3 {
		t.Errorf("64 keys landed on %d workers, want all 3: %v", len(first), first)
	}
}

// TestProbe: live workers are healthy, dead ones are demoted, revived
// ones come back.
func TestProbe(t *testing.T) {
	_, live := newWorker(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()

	f := newFleet(t, Options{Peers: []string{live.URL, dead.URL}})
	if got := f.Probe(context.Background()); got != 1 {
		t.Fatalf("healthy = %d, want 1", got)
	}
	snap := f.Snapshot()
	if snap.Peers != 2 || snap.Healthy != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	for _, w := range snap.Workers {
		if w.URL == live.URL && !w.Healthy {
			t.Error("live worker marked unhealthy")
		}
		if w.URL == dead.URL && w.Healthy {
			t.Error("dead worker marked healthy")
		}
	}
}

// TestFleetSweepMatchesSingleNode is the end-to-end exactness guarantee:
// a sweep sharded across 3 in-process workers returns rows bit-identical
// to the same sweep on one node for every moment-derived metric and the
// Table 1 row.
func TestFleetSweepMatchesSingleNode(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	_, w3 := newWorker(t)
	f := newFleet(t, Options{Peers: []string{w1.URL, w2.URL, w3.URL}})

	req := serve.SweepRequest{
		Apps:       []string{"minife", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
		Alphas:     []float64{0.05, 0.01},
	}
	rows := collectSweep(t, f, req)

	// Reference: the identical request answered by a single fresh node.
	_, ref := newWorker(t)
	body, _ := json.Marshal(req)
	resp, err := http.Post(ref.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	want := map[int]serve.SweepRow{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r serve.SweepRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		want[r.Index] = r
	}
	if len(want) != 4 || len(rows) != 4 {
		t.Fatalf("cells: fleet %d, single-node %d, want 4", len(rows), len(want))
	}

	for idx, w := range want {
		got := rows[idx]
		if len(got) != 1 {
			t.Fatalf("cell %d emitted %d times", idx, len(got))
		}
		g := got[0]
		if g.Err != "" || w.Err != "" {
			t.Fatalf("cell %d errored: fleet %q single %q", idx, g.Err, w.Err)
		}
		if g.Shards < 2 {
			t.Errorf("cell %d used %d shards, want >= 2 (federated execution)", idx, g.Shards)
		}
		if g.Metrics.MeanMedianSec != w.Metrics.MeanMedianSec ||
			g.Metrics.LaggardFraction != w.Metrics.LaggardFraction ||
			g.Metrics.AvgReclaimableProcSec != w.Metrics.AvgReclaimableProcSec ||
			g.Metrics.IdleRatioProc != w.Metrics.IdleRatioProc ||
			g.Metrics.AvgReclaimableAppIterSec != w.Metrics.AvgReclaimableAppIterSec ||
			g.Metrics.IdleRatioAppIter != w.Metrics.IdleRatioAppIter {
			t.Errorf("cell %d metrics diverged:\nfleet  %+v\nsingle %+v", idx, g.Metrics, w.Metrics)
		}
		if g.Table1 != w.Table1 {
			t.Errorf("cell %d Table1 diverged: %+v vs %+v", idx, g.Table1, w.Table1)
		}
		if g.Recommendation != w.Recommendation {
			t.Errorf("cell %d recommendation %q vs %q", idx, g.Recommendation, w.Recommendation)
		}
	}

	snap := f.Snapshot()
	if snap.CellsMerged != 4 || snap.Failovers != 0 {
		t.Errorf("snapshot %+v", snap)
	}
}

// TestFleetSweepErrorRows: a request error (unknown app) comes back as
// an error row — once — exactly like local execution, without failover.
func TestFleetSweepErrorRows(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	f := newFleet(t, Options{Peers: []string{w1.URL, w2.URL}})

	rows := collectSweep(t, f, serve.SweepRequest{
		Apps:       []string{"minife", "nope"},
		Geometries: []cluster.Config{fleetGeom()},
	})
	if len(rows) != 2 {
		t.Fatalf("rows %d, want 2", len(rows))
	}
	if rows[0][0].Err != "" {
		t.Errorf("minife errored: %s", rows[0][0].Err)
	}
	if rows[1][0].Err == "" {
		t.Error("unknown app should produce an error row")
	}
	if snap := f.Snapshot(); snap.Failovers != 0 || snap.Healthy != 2 {
		t.Errorf("request errors must not demote workers: %+v", snap)
	}
}

// flakyWorker proxies a worker and kills it after its first successful
// shard: subsequent requests answer 502, simulating a process that died
// mid-sweep.
type flakyWorker struct {
	inner  http.Handler
	served atomic.Int64
}

func (fw *flakyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" || r.URL.Path == "/v1/strategies" {
		if fw.served.Add(1) > 1 {
			http.Error(w, "worker killed mid-sweep", http.StatusBadGateway)
			return
		}
	}
	fw.inner.ServeHTTP(w, r)
}

// TestFleetFailoverKilledWorker is the failover acceptance test: a fleet
// of 3 workers, one killed mid-sweep, must re-dispatch the dead worker's
// cells to the survivors and deliver every cell exactly once, error
// free. Run with -race in CI.
func TestFleetFailoverKilledWorker(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	sKill := serve.New(serve.Options{Workers: 4})
	flaky := &flakyWorker{inner: sKill.Handler()}
	w3 := httptest.NewServer(flaky)
	t.Cleanup(w3.Close)

	// Whole-cell shards (ShardsPerCell 1) pin each cell to one worker,
	// so the killed worker's remaining cells demonstrably re-dispatch.
	f := newFleet(t, Options{Peers: []string{w1.URL, w2.URL, w3.URL}, ShardsPerCell: 1})

	req := serve.SweepRequest{
		Apps:       []string{"minife", "minimd", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
		Alphas:     []float64{0.05, 0.02, 0.01},
	}
	cells, err := req.Cells()
	if err != nil {
		t.Fatal(err)
	}
	rows := collectSweep(t, f, req)

	if len(rows) != len(cells) {
		t.Fatalf("got %d cells, want %d", len(rows), len(cells))
	}
	for idx, rs := range rows {
		if len(rs) != 1 {
			t.Fatalf("cell %d delivered %d times, want exactly once", idx, len(rs))
		}
		if rs[0].Err != "" {
			t.Fatalf("cell %d errored after failover: %s", idx, rs[0].Err)
		}
	}
	snap := f.Snapshot()
	if flaky.served.Load() > 1 && snap.Failovers == 0 {
		t.Error("killed worker served traffic but no failover was recorded")
	}
	for _, w := range snap.Workers {
		if w.URL == w3.URL && flaky.served.Load() > 1 && w.Healthy {
			t.Error("killed worker still marked healthy")
		}
	}
	if snap.CellsMerged != int64(len(cells)) {
		t.Errorf("cells merged %d, want %d", snap.CellsMerged, len(cells))
	}
}

// TestCoordinatorNDJSONSweepWithKilledWorker drives the full coordinator
// path: a serve.Server with Options.Fleet streams /v1/sweep NDJSON while
// one of its 3 workers dies mid-sweep. The stream must complete with
// every cell exactly once and the stats endpoint must report the
// failover.
func TestCoordinatorNDJSONSweepWithKilledWorker(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	sKill := serve.New(serve.Options{Workers: 4})
	flaky := &flakyWorker{inner: sKill.Handler()}
	w3 := httptest.NewServer(flaky)
	t.Cleanup(w3.Close)

	f := newFleet(t, Options{Peers: []string{w1.URL, w2.URL, w3.URL}, ShardsPerCell: 1})
	coord := serve.New(serve.Options{Workers: 2, Fleet: f})
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)

	req := serve.SweepRequest{
		Apps:       []string{"minife", "minimd", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
		Alphas:     []float64{0.05, 0.01},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	seen := map[int]int{}
	var indices []int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row serve.SweepRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if row.Err != "" {
			t.Fatalf("cell %d errored: %s", row.Index, row.Err)
		}
		if len(row.ShardWorkers) == 0 {
			t.Errorf("cell %d was not federated", row.Index)
		}
		seen[row.Index]++
		indices = append(indices, row.Index)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Ints(indices)
	if len(seen) != 6 {
		t.Fatalf("stream delivered %d distinct cells (%v), want 6", len(seen), indices)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("cell %d delivered %d times", idx, n)
		}
	}

	// The stats endpoint reports the fleet section.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats serve.StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Fleet == nil {
		t.Fatal("stats missing fleet section")
	}
	if stats.Fleet.CellsDispatched != 6 {
		t.Errorf("cells dispatched %d, want 6", stats.Fleet.CellsDispatched)
	}
	if flaky.served.Load() > 1 && stats.Fleet.Failovers == 0 {
		t.Error("no failover recorded despite the killed worker")
	}
}

// TestCoordinatorLocalFallback: when every worker is dead, the
// coordinator runs cells itself — the sweep still completes, and the
// stats record the fallback.
func TestCoordinatorLocalFallback(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	f := newFleet(t, Options{Peers: []string{dead.URL}})
	f.Probe(context.Background()) // demotes the dead worker

	coord := serve.New(serve.Options{Workers: 2, Fleet: f})
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)

	body, _ := json.Marshal(serve.SweepRequest{
		Apps:       []string{"minife"},
		Geometries: []cluster.Config{fleetGeom()},
	})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	n := 0
	for sc.Scan() {
		var row serve.SweepRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatal(err)
		}
		if row.Err != "" {
			t.Fatalf("local fallback errored: %s", row.Err)
		}
		if row.Shards != 0 || len(row.ShardWorkers) != 0 {
			t.Errorf("fallback row claims federation: %+v", row)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("rows %d, want 1", n)
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats serve.StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Fleet == nil || stats.Fleet.LocalFallbacks != 1 {
		t.Fatalf("expected 1 local fallback, got %+v", stats.Fleet)
	}
}

// TestFleetStrategies: strategy cells dispatch whole to workers and the
// merged rows match a single node's /v1/strategies verbatim for the
// decision-relevant fields.
func TestFleetStrategies(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	f := newFleet(t, Options{Peers: []string{w1.URL, w2.URL}})

	req := serve.StrategiesRequest{
		Apps:       []string{"minife", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
	}
	rows := map[int]serve.StrategyRow{}
	if err := f.Strategies(context.Background(), req, func(r serve.StrategyRow) {
		if _, dup := rows[r.Index]; dup {
			t.Errorf("cell %d delivered twice", r.Index)
		}
		rows[r.Index] = r
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d, want 2", len(rows))
	}

	_, ref := newWorker(t)
	body, _ := json.Marshal(req)
	resp, err := http.Post(ref.URL+"/v1/strategies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var want serve.StrategiesResponse
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	for _, w := range want.Rows {
		g := rows[w.Index]
		if g.Err != "" || w.Err != "" {
			t.Fatalf("cell %d errored: fleet %q single %q", w.Index, g.Err, w.Err)
		}
		if g.Best != w.Best || g.BestFinishSec != w.BestFinishSec || len(g.Results) != len(w.Results) {
			t.Errorf("cell %d frontier diverged: %s/%v vs %s/%v", w.Index, g.Best, g.BestFinishSec, w.Best, w.BestFinishSec)
		}
	}
}
