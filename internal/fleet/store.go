// The durable content-addressed result store: merged sweep-cell results
// persist on disk keyed by the cell's resolved engine.SpecKey hash, so a
// coordinator restart (or a second coordinator sharing the directory)
// re-serves finished cells without dispatching a single shard. Records
// are the PR 5 accumulator wire codecs wrapped in a sealed (checksummed)
// envelope that also carries the cell's identity fields — a loader
// cross-checks them against the requesting cell, so even a SpecKey hash
// collision cannot serve the wrong result. Writes go through a temp file
// and os.Rename, so concurrent coordinators sharing a store directory
// can race freely: a reader sees either the complete old record or the
// complete new one, never a torn write. Any corrupt, truncated or
// foreign file is skipped with a logged warning and the cell simply
// recomputes.

package fleet

import (
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"

	"earlybird/internal/analysis"
	"earlybird/internal/core"
	"earlybird/internal/engine"
	"earlybird/internal/serve"
	"earlybird/internal/wire"
)

const (
	storeMagic   = 0x45425253 // "EBRS"
	storeVersion = 1
	storeExt     = ".cell"
)

// Store is an on-disk result store; open with OpenStore. Safe for
// concurrent use within and across processes (atomic rename writes).
type Store struct {
	dir  string
	logf func(format string, args ...any)
}

// OpenStore creates dir if needed and returns a store over it. logf
// receives corruption warnings; nil means the standard logger.
func OpenStore(dir string, logf func(format string, args ...any)) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("fleet: store directory required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: creating store: %w", err)
	}
	if logf == nil {
		logf = log.Printf
	}
	return &Store{dir: dir, logf: logf}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Len counts the records currently on disk (temp files excluded).
func (s *Store) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == storeExt {
			n++
		}
	}
	return n
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+storeExt) }

// put atomically publishes one sealed record under key: written to a
// unique temp file in the same directory, then renamed into place.
func (s *Store) put(key string, sealed []byte) error {
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(sealed); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.path(key))
}

// get reads and unseals key's record. ok == false on a plain miss and on
// any corruption, which is logged and treated as a miss — the store is a
// cache of recomputable results, never a single point of failure.
func (s *Store) get(key string) ([]byte, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.logf("fleet: store: skipping unreadable entry %s%s: %v", key, storeExt, err)
		}
		return nil, false
	}
	body, err := wire.Unseal(data)
	if err != nil {
		s.logf("fleet: store: skipping corrupt entry %s%s: %v", key, storeExt, err)
		return nil, false
	}
	return body, true
}

// cellIdentity folds the identity fields a record must match to serve a
// cell: everything the SpecKey hash covers that a sweep cell can express.
func appendCellIdentity(w *wire.Writer, cell serve.SweepCell) {
	w.Str(cell.App)
	w.U64(uint64(cell.Geometry.Trials))
	w.U64(uint64(cell.Geometry.Ranks))
	w.U64(uint64(cell.Geometry.Iterations))
	w.U64(uint64(cell.Geometry.Threads))
	w.U64(cell.Geometry.Seed)
	w.F64(cell.Alpha)
	w.F64(cell.LaggardThresholdSec)
	w.Str(cell.DLB.String())
}

// SaveCell persists one merged cell's accumulator states (marshalled
// before finalization) under the cell's store key.
func (s *Store) SaveCell(cell serve.SweepCell, key engine.SpecKey, metricsState, table1State []byte) error {
	var w wire.Writer
	w.U32(storeMagic)
	w.U8(storeVersion)
	w.U64(key.Hash())
	appendCellIdentity(&w, cell)
	w.Bytes(metricsState)
	w.Bytes(table1State)
	return s.put(key.StoreKey(), w.Seal())
}

// LoadCell looks a cell up by its store key and rebuilds the finished
// row from the persisted accumulator states. ok == false means miss (or
// a corrupt/mismatched record, logged and skipped): dispatch normally.
func (s *Store) LoadCell(cell serve.SweepCell, key engine.SpecKey) (serve.SweepRow, bool) {
	token := key.StoreKey()
	body, ok := s.get(token)
	if !ok {
		return serve.SweepRow{}, false
	}
	skip := func(why string, args ...any) (serve.SweepRow, bool) {
		s.logf("fleet: store: skipping entry %s%s: %s", token, storeExt, fmt.Sprintf(why, args...))
		return serve.SweepRow{}, false
	}
	r := wire.NewReader(body)
	if magic := r.U32(); magic != storeMagic {
		return skip("bad magic %08x", magic)
	}
	if v := r.U8(); v != storeVersion {
		return skip("unsupported version %d", v)
	}
	if h := r.U64(); h != key.Hash() {
		return skip("key hash %016x does not match %016x", h, key.Hash())
	}
	var want wire.Writer
	appendCellIdentity(&want, cell)
	var got wire.Writer
	got.Str(r.Str())
	got.U64(r.U64())
	got.U64(r.U64())
	got.U64(r.U64())
	got.U64(r.U64())
	got.U64(r.U64())
	got.F64(r.F64())
	got.F64(r.F64())
	got.Str(r.Str())
	metricsState := append([]byte(nil), r.Bytes()...)
	table1State := append([]byte(nil), r.Bytes()...)
	if err := r.Finish("store cell"); err != nil {
		return skip("%v", err)
	}
	if string(got.Buf) != string(want.Buf) {
		return skip("identity mismatch (hash collision or stale encoding)")
	}

	macc := new(analysis.MetricsAccumulator)
	if err := macc.UnmarshalBinary(metricsState); err != nil {
		return skip("metrics state: %v", err)
	}
	tacc := new(analysis.Table1Accumulator)
	if err := tacc.UnmarshalBinary(table1State); err != nil {
		return skip("table1 state: %v", err)
	}
	row := serve.SweepRow{
		Index:               cell.Index,
		App:                 cell.App,
		Geometry:            cell.Geometry,
		Alpha:               cell.Alpha,
		LaggardThresholdSec: cell.LaggardThresholdSec,
		DLB:                 cell.DLB,
		StoreHit:            true,
	}
	row.Metrics = macc.Finalize()
	row.Table1 = tacc.Finalize()
	row.Recommendation = core.ClassifyMetrics(row.Metrics)
	return row, true
}
