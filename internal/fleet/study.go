package fleet

import (
	"context"

	"earlybird/internal/serve"
)

// DispatchStudy implements serve.StudyDispatcher: one wire-expressible
// study (a scenario cell the compiler left as a bare app spec) is
// dispatched whole to its rendezvous worker over POST /v1/study, with
// the same failover and speculation as shard dispatch. The caller
// supplies the resolved spec's key hash, so equal cells route to the
// same worker from any coordinator and that worker's dataset cache (and
// the result cache in front of it) stays hot.
//
// The wire spec carries every field post-resolution and engine.RunSpec
// is deterministic, so the worker's response is bit-identical to what
// local execution of the same cell would produce. ok == false means the
// study could not be placed (no eligible worker, or the worker rejected
// the request) and the caller should run it locally — a rejection fails
// identically there, so no outcome is lost in the fallback.
func (f *Fleet) DispatchStudy(ctx context.Context, hash uint64, spec serve.StudySpec) (serve.StudyResponse, bool) {
	if f.Healthy() == 0 {
		return serve.StudyResponse{}, false
	}
	var out serve.StudyResponse
	if _, err := f.dispatch(ctx, hash, 0, "/v1/study", spec, &out); err != nil {
		return serve.StudyResponse{}, false
	}
	f.cellsMerged.Add(1)
	return out, true
}
