// Dynamic membership tests: join/leave/lease semantics on the Fleet
// itself, the coordinator's HTTP endpoints end to end, and lease-expiry
// eviction by the probe loop.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"earlybird/internal/cluster"
	"earlybird/internal/serve"
)

func TestJoinRequiresDynamic(t *testing.T) {
	f := newFleet(t, Options{Peers: []string{"http://a:1"}})
	if _, err := f.Join("http://b:2", 0); err == nil {
		t.Fatal("static fleet accepted a join")
	}
}

func TestJoinLeaveAndLeases(t *testing.T) {
	f := newFleet(t, Options{Peers: []string{"http://static:1"}, Dynamic: true, LeaseTTL: 100 * time.Millisecond})

	if _, err := f.Join("not-a-url", 0); err == nil {
		t.Error("invalid URL joined")
	}
	lease, err := f.Join("http://dyn:2", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if lease != 100*time.Millisecond {
		t.Errorf("lease = %v, want the configured TTL", lease)
	}
	if got := f.Workers(); len(got) != 2 || got[1] != "http://dyn:2" {
		t.Fatalf("workers after join: %v", got)
	}

	// Re-joining renews (a second lease deadline strictly later), revives
	// health, and updates capacity.
	for _, w := range f.snapshotWorkers() {
		if w.url == "http://dyn:2" {
			if w.capacity() != 0.8 {
				t.Errorf("joined capacity %v, want 0.8", w.capacity())
			}
			w.healthy.Store(false)
		}
	}
	first := f.snapshotWorkers()[1].leaseUntil.Load()
	time.Sleep(5 * time.Millisecond)
	if _, err := f.Join("http://dyn:2", 0); err != nil {
		t.Fatal(err)
	}
	dyn := f.snapshotWorkers()[1]
	if dyn.leaseUntil.Load() <= first {
		t.Error("re-join did not renew the lease")
	}
	if !dyn.healthy.Load() {
		t.Error("re-join did not revive the worker")
	}

	// Joining a static peer refreshes it without making it expirable.
	if _, err := f.Join("http://static:1", 0); err != nil {
		t.Fatal(err)
	}
	if f.snapshotWorkers()[0].leaseUntil.Load() != 0 {
		t.Error("static peer became lease-bound")
	}

	// Eviction removes only expired dynamic leases; static peers never go.
	if n := f.EvictExpired(time.Now()); n != 0 {
		t.Errorf("evicted %d before expiry", n)
	}
	if n := f.EvictExpired(time.Now().Add(time.Hour)); n != 1 {
		t.Errorf("evicted %d expired leases, want 1", n)
	}
	if got := f.Workers(); len(got) != 1 || got[0] != "http://static:1" {
		t.Fatalf("workers after eviction: %v", got)
	}
	if f.Snapshot().LeaseEvictions != 1 {
		t.Errorf("eviction counter %d", f.Snapshot().LeaseEvictions)
	}

	// Leave deregisters immediately and is idempotent.
	if _, err := f.Join("http://dyn:2", 0); err != nil {
		t.Fatal(err)
	}
	if !f.Leave("http://dyn:2/") {
		t.Error("leave of a registered worker returned false")
	}
	if f.Leave("http://dyn:2") {
		t.Error("second leave returned true")
	}
	if got := f.Workers(); len(got) != 1 {
		t.Fatalf("workers after leave: %v", got)
	}
}

func TestDynamicFleetBootsEmpty(t *testing.T) {
	f := newFleet(t, Options{Dynamic: true})
	if n := len(f.Workers()); n != 0 {
		t.Fatalf("empty dynamic fleet has %d workers", n)
	}
	if cap(f.sem) != DefaultDynamicInFlight {
		t.Errorf("in-flight bound %d, want %d", cap(f.sem), DefaultDynamicInFlight)
	}
	if _, ok := f.DispatchCell(context.Background(), serve.SweepCell{App: "minife", Geometry: fleetGeom(), Alpha: 0.05, LaggardThresholdSec: 0.001}); ok {
		t.Error("empty fleet placed a cell")
	}
}

// TestJoinEndpointsEndToEnd drives the full protocol over HTTP: a
// worker joins a dynamic coordinator, serves a federated sweep, then
// leaves and the coordinator falls back to local execution.
func TestJoinEndpointsEndToEnd(t *testing.T) {
	_, w1 := newWorker(t)
	f := newFleet(t, Options{Dynamic: true, LeaseTTL: 30 * time.Second})
	coord := serve.New(serve.Options{Workers: 2, Fleet: f})
	cts := httptest.NewServer(coord.Handler())
	t.Cleanup(cts.Close)

	postJSON := func(path string, body any) *http.Response {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(cts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Malformed joins.
	if resp := postJSON("/v1/fleet/join", serve.FleetJoinRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("join without url: %d, want 400", resp.StatusCode)
	}
	if resp := postJSON("/v1/fleet/join", serve.FleetJoinRequest{URL: "nope"}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("join with bad url: %d, want 422", resp.StatusCode)
	}

	// The worker joins and the sweep federates to it.
	resp := postJSON("/v1/fleet/join", serve.FleetJoinRequest{URL: w1.URL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join status %d", resp.StatusCode)
	}
	var jr serve.FleetJoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jr.LeaseSec != 30 || jr.Peers != 1 {
		t.Fatalf("join response %+v", jr)
	}

	req := serve.SweepRequest{Apps: []string{"minife"}, Geometries: []cluster.Config{fleetGeom()}}
	rows := sweepNDJSON(t, cts.URL, req)
	if len(rows) != 1 || rows[0].Err != "" {
		t.Fatalf("federated sweep rows: %+v", rows)
	}
	if len(rows[0].ShardWorkers) == 0 || rows[0].ShardWorkers[0] != w1.URL {
		t.Fatalf("cell not served by the joined worker: %+v", rows[0].ShardWorkers)
	}

	// Leave; the next sweep runs locally.
	resp = postJSON("/v1/fleet/leave", serve.FleetJoinRequest{URL: w1.URL})
	var lr serve.FleetLeaveResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !lr.Removed || lr.Peers != 0 {
		t.Fatalf("leave response %+v", lr)
	}
	rows = sweepNDJSON(t, cts.URL, req)
	if len(rows) != 1 || rows[0].Err != "" || len(rows[0].ShardWorkers) != 0 {
		t.Fatalf("post-leave sweep rows: %+v", rows)
	}

	// A static coordinator refuses the protocol outright.
	staticF := newFleet(t, Options{Peers: []string{w1.URL}})
	staticCoord := serve.New(serve.Options{Workers: 2, Fleet: staticF})
	sts := httptest.NewServer(staticCoord.Handler())
	t.Cleanup(sts.Close)
	buf, _ := json.Marshal(serve.FleetJoinRequest{URL: w1.URL})
	sresp, err := http.Post(sts.URL+"/v1/fleet/join", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("static fleet join: %d, want 422", sresp.StatusCode)
	}
}

// sweepNDJSON posts a sweep to a server and decodes the NDJSON rows.
func sweepNDJSON(t *testing.T, baseURL string, req serve.SweepRequest) []serve.SweepRow {
	t.Helper()
	buf, _ := json.Marshal(req)
	resp, err := http.Post(baseURL+"/v1/sweep", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []serve.SweepRow
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var r serve.SweepRow
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	return rows
}

// TestLeaseExpiryEvictsThroughProbeLoop: a joined worker that stops
// heartbeating is deregistered by the StartProbes tick.
func TestLeaseExpiryEvictsThroughProbeLoop(t *testing.T) {
	_, w1 := newWorker(t)
	f := newFleet(t, Options{Dynamic: true, LeaseTTL: 80 * time.Millisecond})
	if _, err := f.Join(w1.URL, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f.StartProbes(ctx, 20*time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for len(f.Workers()) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("expired lease never evicted by the probe loop")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if f.Snapshot().LeaseEvictions != 1 {
		t.Errorf("eviction counter %d, want 1", f.Snapshot().LeaseEvictions)
	}
}
