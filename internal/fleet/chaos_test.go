// Chaos suite for the fleet layer: workers with injected latency,
// stalls, mid-stream disconnects and degraded capacity advertisements.
// The invariants under every fault mix: each sweep cell is delivered
// exactly once, merged results stay bit-identical to single-node
// execution, and capacity-weighted scheduling drains new placements
// around a degraded worker instead of hammering it. Run under -race via
// `make test-chaos`.

package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"earlybird/internal/cluster"
	"earlybird/internal/fnv"
	"earlybird/internal/serve"
)

// chaosWorker wraps a worker with deterministic fault injection on the
// shard path: per-request latency cycling through latencies, and
// mid-stream disconnects for the first aborts requests (a partial JSON
// body is written, then the connection is severed).
type chaosWorker struct {
	inner     http.Handler
	latencies []time.Duration
	aborts    int64

	requests atomic.Int64
	aborted  atomic.Int64
}

func (cw *chaosWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/shard" {
		cw.inner.ServeHTTP(w, r)
		return
	}
	n := cw.requests.Add(1)
	if len(cw.latencies) > 0 {
		time.Sleep(cw.latencies[int(n)%len(cw.latencies)])
	}
	if cw.aborted.Load() < cw.aborts {
		cw.aborted.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"app":"mini`)) // mid-stream: valid prefix, then gone
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	cw.inner.ServeHTTP(w, r)
}

// stallingWorker never usefully answers the shard path: it holds the
// request open well past the fleet client's timeout — the worst
// failure mode, detectable only by timeout. The stall is bounded (not
// tied to the request context, whose cancellation the server may delay
// while the request body is unread) so the handler always returns and
// server shutdown never hangs.
type stallingWorker struct {
	inner    http.Handler
	stall    time.Duration
	requests atomic.Int64
}

func (sw *stallingWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/shard" {
		sw.inner.ServeHTTP(w, r)
		return
	}
	sw.requests.Add(1)
	select {
	case <-r.Context().Done():
	case <-time.After(sw.stall):
	}
	http.Error(w, "stalled", http.StatusServiceUnavailable)
}

// singleNodeRows answers req on one fresh worker — the bit-exactness
// reference.
func singleNodeRows(t *testing.T, req serve.SweepRequest) map[int]serve.SweepRow {
	t.Helper()
	_, ref := newWorker(t)
	body, _ := json.Marshal(req)
	resp, err := http.Post(ref.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	want := map[int]serve.SweepRow{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r serve.SweepRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		want[r.Index] = r
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// assertBitIdentical compares fleet rows against the single-node
// reference on every moment-derived metric, the Table 1 row and the
// recommendation.
func assertBitIdentical(t *testing.T, rows map[int][]serve.SweepRow, want map[int]serve.SweepRow) {
	t.Helper()
	if len(rows) != len(want) {
		t.Fatalf("cells: fleet %d, single-node %d", len(rows), len(want))
	}
	for idx, w := range want {
		rs := rows[idx]
		if len(rs) != 1 {
			t.Fatalf("cell %d delivered %d times, want exactly once", idx, len(rs))
		}
		g := rs[0]
		if g.Err != "" || w.Err != "" {
			t.Fatalf("cell %d errored: fleet %q single %q", idx, g.Err, w.Err)
		}
		if g.Metrics.MeanMedianSec != w.Metrics.MeanMedianSec ||
			g.Metrics.LaggardFraction != w.Metrics.LaggardFraction ||
			g.Metrics.AvgReclaimableProcSec != w.Metrics.AvgReclaimableProcSec ||
			g.Metrics.IdleRatioProc != w.Metrics.IdleRatioProc ||
			g.Metrics.AvgReclaimableAppIterSec != w.Metrics.AvgReclaimableAppIterSec ||
			g.Metrics.IdleRatioAppIter != w.Metrics.IdleRatioAppIter {
			t.Errorf("cell %d metrics diverged:\nfleet  %+v\nsingle %+v", idx, g.Metrics, w.Metrics)
		}
		if g.Table1 != w.Table1 {
			t.Errorf("cell %d Table1 diverged: %+v vs %+v", idx, g.Table1, w.Table1)
		}
		if g.Recommendation != w.Recommendation {
			t.Errorf("cell %d recommendation %q vs %q", idx, g.Recommendation, w.Recommendation)
		}
	}
}

// TestChaosSweepSurvivesLatencyAndDisconnects: a fleet whose workers
// suffer injected latency and mid-stream disconnects still delivers
// every cell exactly once, bit-identical to single-node execution, and
// records the failovers.
func TestChaosSweepSurvivesLatencyAndDisconnects(t *testing.T) {
	s1 := serve.New(serve.Options{Workers: 4})
	slow := &chaosWorker{inner: s1.Handler(), latencies: []time.Duration{
		0, 2 * time.Millisecond, 5 * time.Millisecond, time.Millisecond, 8 * time.Millisecond,
	}}
	w1 := httptest.NewServer(slow)
	t.Cleanup(w1.Close)

	_, w2 := newWorker(t)

	s3 := serve.New(serve.Options{Workers: 4})
	dropper := &chaosWorker{inner: s3.Handler(), aborts: 2}
	w3 := httptest.NewServer(dropper)
	t.Cleanup(w3.Close)

	f := newFleet(t, Options{Peers: []string{w1.URL, w2.URL, w3.URL}})
	req := serve.SweepRequest{
		Apps:       []string{"minife", "minimd", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
		Alphas:     []float64{0.05, 0.01},
	}
	rows := collectSweep(t, f, req)
	assertBitIdentical(t, rows, singleNodeRows(t, req))

	snap := f.Snapshot()
	if got := dropper.aborted.Load(); got > 0 && snap.Failovers == 0 {
		t.Errorf("%d mid-stream disconnects but no failover recorded", got)
	}
	if snap.CellsFailed != 0 {
		t.Errorf("%d cells failed under recoverable chaos", snap.CellsFailed)
	}
}

// TestChaosSweepSurvivesStalledWorker: a worker that accepts shard
// requests and never answers is cut off by the client timeout, demoted,
// and its work re-dispatched — the sweep completes exactly.
func TestChaosSweepSurvivesStalledWorker(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	s3 := serve.New(serve.Options{Workers: 4})
	stall := &stallingWorker{inner: s3.Handler(), stall: 2 * time.Second}
	w3 := httptest.NewServer(stall)
	t.Cleanup(w3.Close)

	f := newFleet(t, Options{
		Peers:  []string{w1.URL, w2.URL, w3.URL},
		Client: &http.Client{Timeout: 500 * time.Millisecond},
	})
	req := serve.SweepRequest{
		Apps:       []string{"minife", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
		Alphas:     []float64{0.05, 0.01},
	}
	rows := collectSweep(t, f, req)
	assertBitIdentical(t, rows, singleNodeRows(t, req))

	// With speculation, a backup's win can return the cell before the
	// stalled attempt hits the client timeout, so the demotion may land
	// shortly after the sweep completes — poll for it.
	if stall.requests.Load() > 0 {
		deadline := time.Now().Add(3 * time.Second)
		for {
			snap := f.Snapshot()
			demoted := snap.Failovers > 0
			for _, ws := range snap.Workers {
				if ws.URL == w3.URL && ws.Healthy {
					demoted = false
				}
			}
			if demoted {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("stalled worker absorbed requests but was never demoted: %+v", snap)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
}

// capacityOverride wraps a worker and rewrites its healthz body to
// advertise the given capacity — a degraded node as the probe sees it.
type capacityOverride struct {
	inner    http.Handler
	capacity float64
}

func (co *capacityOverride) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/healthz" {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","capacity":%g}`, co.capacity)
		return
	}
	co.inner.ServeHTTP(w, r)
}

// TestCapacityWeightedSchedulingDrains: after a probe reads one
// worker's degraded capacity, the rendezvous ranking routes new
// placements around it — the degraded worker wins far fewer keys than
// its healthy peers (its fair share scales with capacity), but not
// zero, and merged sweep results remain bit-identical regardless of
// the shifted placement.
func TestCapacityWeightedSchedulingDrains(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	s3 := serve.New(serve.Options{Workers: 4})
	degraded := &capacityOverride{inner: s3.Handler(), capacity: 0.05}
	w3 := httptest.NewServer(degraded)
	t.Cleanup(w3.Close)

	f := newFleet(t, Options{Peers: []string{w1.URL, w2.URL, w3.URL}})
	if got := f.Probe(context.Background()); got != 3 {
		t.Fatalf("healthy = %d, want 3 (degraded is slow, not down)", got)
	}
	for _, ws := range f.Snapshot().Workers {
		want := 1.0
		if ws.URL == w3.URL {
			want = 0.05
		}
		if ws.Capacity != want {
			t.Fatalf("worker %s capacity %v, want %v", ws.URL, ws.Capacity, want)
		}
	}

	// Placement statistics over many independent keys: the degraded
	// worker's first-rank share should be near its capacity fraction
	// 0.05/2.05 ~ 2.4%, and is asserted <= 10%; each healthy peer takes
	// roughly half of the rest.
	const keys = 400
	wins := map[string]int{}
	for h := uint64(0); h < keys; h++ {
		wins[f.rank(fnv.U64(fnv.Offset64, h), 0)[0].url]++
	}
	if got := wins[w3.URL]; got > keys/10 {
		t.Errorf("degraded worker won %d/%d keys, want <= %d", got, keys, keys/10)
	}
	if wins[w1.URL] < keys/4 || wins[w2.URL] < keys/4 {
		t.Errorf("healthy workers underloaded: %v", wins)
	}

	// The shifted placement must not change the answers.
	req := serve.SweepRequest{
		Apps:       []string{"minife", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
	}
	rows := collectSweep(t, f, req)
	assertBitIdentical(t, rows, singleNodeRows(t, req))
	if failed := f.Snapshot().CellsFailed; failed != 0 {
		t.Errorf("%d cells failed with a degraded-capacity worker", failed)
	}
}

// TestWeightedRankMatchesUnweightedAtFullCapacity pins the monotone-
// transform property the capacity weighting relies on: with every
// worker at full capacity, the weighted ranking is exactly the raw
// 64-bit rendezvous score order, so introducing capacity weighting
// changed no placement (and invalidated no worker's dataset cache) on
// a healthy fleet.
func TestWeightedRankMatchesUnweightedAtFullCapacity(t *testing.T) {
	f := newFleet(t, Options{Peers: []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}})
	for h := uint64(0); h < 256; h++ {
		for shard := 0; shard < 3; shard++ {
			base := fnv.U64(fnv.U64(fnv.Offset64, h), uint64(shard))
			type scored struct {
				url   string
				score uint64
			}
			raw := make([]scored, len(f.workers))
			for i, w := range f.workers {
				raw[i] = scored{url: w.url, score: fnv.U64(base, w.urlHash)}
			}
			sort.Slice(raw, func(i, j int) bool {
				if raw[i].score != raw[j].score {
					return raw[i].score > raw[j].score
				}
				return raw[i].url < raw[j].url
			})
			weighted := f.rank(h, shard)
			for i := range raw {
				if weighted[i].url != raw[i].url {
					t.Fatalf("key %d shard %d: weighted rank %d is %s, raw-score order says %s",
						h, shard, i, weighted[i].url, raw[i].url)
				}
			}
		}
	}
}

// armableStraggler wraps a worker whose shard path, once armed, holds
// every request for stall before answering normally — a straggler that
// is slow, not dead. The stall is bounded so server shutdown never
// hangs, and the handler still answers afterwards so losing speculative
// attempts complete successfully and must be discarded idempotently.
type armableStraggler struct {
	inner   http.Handler
	stall   time.Duration
	armed   atomic.Bool
	stalled atomic.Int64
}

func (as *armableStraggler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" && as.armed.Load() {
		as.stalled.Add(1)
		select {
		case <-r.Context().Done():
		case <-time.After(as.stall):
		}
	}
	as.inner.ServeHTTP(w, r)
}

// TestChaosSpeculationUnderStraggler is the speculative re-dispatch
// acceptance test: once the latency sketch is warm, a worker that turns
// into a straggler (shards held for ~1.2s against millisecond-scale
// peers) has its in-flight shards speculatively re-issued to the
// next-ranked worker; the first result wins, the sweep completes far
// inside the stall, every cell is delivered exactly once, the merged
// rows stay bit-identical to single-node execution, and the straggler
// — whose late answers are still successes — is never demoted.
func TestChaosSpeculationUnderStraggler(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	s3 := serve.New(serve.Options{Workers: 4})
	strag := &armableStraggler{inner: s3.Handler(), stall: 1200 * time.Millisecond}
	w3 := httptest.NewServer(strag)
	t.Cleanup(w3.Close)

	f := newFleet(t, Options{Peers: []string{w1.URL, w2.URL, w3.URL}, MaxInFlight: 16})

	// Phase 1 (straggler disarmed): warm the completed-shard latency
	// sketch past its minimum sample count so speculation can arm.
	warm := serve.SweepRequest{
		Apps:       []string{"minife", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
		Alphas:     []float64{0.05, 0.01},
	}
	assertBitIdentical(t, collectSweep(t, f, warm), singleNodeRows(t, warm))
	f.lat.mu.Lock()
	warmed := f.lat.n
	f.lat.mu.Unlock()
	if warmed < speculationMinSamples {
		t.Fatalf("latency sketch has %d samples after the warm sweep, want >= %d", warmed, speculationMinSamples)
	}

	// Phase 2: arm the straggler and sweep a fresh grid.
	strag.armed.Store(true)
	req := serve.SweepRequest{
		Apps:       []string{"minife", "minimd", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
		Alphas:     []float64{0.02, 0.03},
	}
	start := time.Now()
	rows := collectSweep(t, f, req)
	elapsed := time.Since(start)
	assertBitIdentical(t, rows, singleNodeRows(t, req))

	snap := f.Snapshot()
	if strag.stalled.Load() == 0 {
		t.Skip("rendezvous routed no shard to the straggler (legal placement); nothing to speculate on")
	}
	if snap.Speculations == 0 {
		t.Fatalf("straggler held %d shards but no speculation was issued (sweep took %s)", strag.stalled.Load(), elapsed)
	}
	if snap.SpeculationWins == 0 {
		t.Fatalf("%d speculations, none won against a %s stall", snap.Speculations, strag.stall)
	}
	if snap.Failovers != 0 {
		t.Errorf("%d failovers under pure straggling, want 0 (slow is not dead)", snap.Failovers)
	}
	for _, ws := range snap.Workers {
		if !ws.Healthy {
			t.Errorf("worker %s demoted; a straggler's late successes must not demote it", ws.URL)
		}
	}
}

// TestChaosMidSweepMembershipChurn: workers join and leave while a
// sweep is in flight on a dynamic fleet. Whatever the interleaving,
// every cell is delivered exactly once and the merged rows stay
// bit-identical to single-node execution.
func TestChaosMidSweepMembershipChurn(t *testing.T) {
	_, w1 := newWorker(t)
	_, w2 := newWorker(t)
	f := newFleet(t, Options{Peers: []string{w1.URL}, Dynamic: true, MaxInFlight: 4})

	req := serve.SweepRequest{
		Apps:       []string{"minife", "minimd", "miniqmc"},
		Geometries: []cluster.Config{fleetGeom()},
		Alphas:     []float64{0.05, 0.02, 0.01},
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(10 * time.Millisecond)
		if _, err := f.Join(w2.URL, 0); err != nil {
			t.Errorf("mid-sweep join: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
		f.Leave(w1.URL) // its in-flight shards complete; new ones route to w2
	}()
	rows := collectSweep(t, f, req)
	<-done
	assertBitIdentical(t, rows, singleNodeRows(t, req))
	if got := f.Workers(); len(got) != 1 || got[0] != w2.URL {
		t.Fatalf("registry after churn: %v", got)
	}
	if failed := f.Snapshot().CellsFailed; failed != 0 {
		t.Errorf("%d cells failed under membership churn", failed)
	}
}

// TestSetCapacityClamps pins the capacity sanitisation: garbage from a
// healthz body can never zero a worker out of the ranking or inflate
// it beyond full weight.
func TestSetCapacityClamps(t *testing.T) {
	w := &worker{}
	for _, c := range []struct{ in, want float64 }{
		{0.5, 0.5},
		{1, 1},
		{0, 1},  // absent/zero means full weight
		{-3, 1}, // nonsense resets to full
		{7, 1},  // > 1 resets to full
		{math.NaN(), 1},
		{0.001, minCapacity}, // floored
	} {
		w.setCapacity(c.in)
		if got := w.capacity(); got != c.want {
			t.Errorf("setCapacity(%v) -> %v, want %v", c.in, got, c.want)
		}
	}
}
