package core

import (
	"fmt"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/stats"
)

// StreamResult is the outcome of a streaming study: the Section 4.2
// scalar metrics, the Table 1 normality row, and application-level sample
// moments and quantiles — everything computed online while the samples
// were produced, none of it requiring the dataset to be held in memory.
// Live sample memory during the run is O(workers x threads); accumulator
// state is O(iterations).
//
// Exactness: Table1, the moments and all process-level metrics are
// exactly what the materialised pipeline computes; the iteration IQR
// statistics (IQRMeanSec, IQRMaxSec) and the percentile estimates of
// Summary carry the quantile sketch's documented tolerance (rank error
// ≲1%, a few percent of the IQR in value for these distributions).
type StreamResult struct {
	App      string
	Geometry cluster.Config
	// Metrics is the Section 4.2 row (IQR fields sketch-estimated).
	Metrics analysis.AppMetrics
	// Table1 is the process-iteration normality row (exact).
	Table1 analysis.Table1
	// Moments holds the application-level sample moments (exact).
	Moments stats.Moments
	// Quantiles sketches the application-level arrival distribution.
	Quantiles *stats.QuantileSketch
}

// Samples returns the total number of samples the study produced.
func (r *StreamResult) Samples() int64 { return r.Moments.N() }

// Summary assembles the application-level descriptive statistics from the
// streaming accumulators.
func (r *StreamResult) Summary() stats.Summary {
	return stats.StreamSummary(&r.Moments, r.Quantiles)
}

// String renders the headline streaming results.
func (r *StreamResult) String() string {
	return fmt.Sprintf("streamed %s: %d samples\n%v\n%v",
		r.App, r.Samples(), r.Metrics, r.Table1)
}

// streamObserver bundles the per-worker accumulators of a streaming
// study. Each fill worker owns one, so no locking is needed; the workers'
// observers merge after the run.
type streamObserver struct {
	metrics *analysis.MetricsAccumulator
	table1  *analysis.Table1Accumulator
	moments stats.Moments
	sketch  *stats.QuantileSketch
}

func (o *streamObserver) ObserveBlock(trial, rank, iter int, xs []float64) {
	o.metrics.ObserveBlock(trial, rank, iter, xs)
	if o.table1 != nil {
		o.table1.ObserveBlock(trial, rank, iter, xs)
	}
	if o.sketch != nil {
		o.moments.AddSlice(xs)
		o.sketch.AddSlice(xs)
	}
}

func (o *streamObserver) merge(other *streamObserver) {
	o.metrics.Merge(other.metrics)
	if o.table1 != nil {
		o.table1.Merge(other.table1)
	}
	if o.sketch != nil {
		o.moments.Merge(&other.moments)
		o.sketch.Merge(other.sketch)
	}
}

// streamRun executes the study online with per-worker observers and
// merges them.
func streamRun(opts Options, withTable1, withSummary bool) (*StreamResult, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	newObs := func() cluster.BlockObserver {
		o := &streamObserver{
			metrics: analysis.NewMetricsAccumulator(opts.Model.Name(), opts.LaggardThresholdSec),
		}
		if withTable1 {
			o.table1 = analysis.NewTable1Accumulator(opts.Model.Name(), opts.Alpha)
		}
		if withSummary {
			o.sketch = stats.NewQuantileSketch(0)
		}
		return o
	}
	observers, err := cluster.RunStreamObserved(opts.Model, opts.Geometry, opts.Policy.DLB, 0, nil, newObs, opts.Progress)
	if err != nil {
		return nil, err
	}
	root := observers[0].(*streamObserver)
	for _, o := range observers[1:] {
		root.merge(o.(*streamObserver))
	}
	res := &StreamResult{
		App:      opts.Model.Name(),
		Geometry: opts.Geometry,
		Metrics:  root.metrics.Finalize(),
	}
	if withTable1 {
		res.Table1 = root.table1.Finalize()
	}
	if withSummary {
		res.Moments = root.moments
		res.Quantiles = root.sketch
	}
	return res, nil
}

// StreamStudy runs the configured study in streaming mode: samples feed
// mergeable accumulators the moment they are produced and are then
// discarded, so studies at geometries far beyond the paper's (see
// cluster.HugeConfig) run in bounded memory. It computes the Section 4.2
// metrics, the Table 1 normality row and the application-level summary.
func StreamStudy(opts Options) (*StreamResult, error) {
	return streamRun(opts, true, true)
}

// StreamMetrics runs the configured study in streaming mode and computes
// only the Section 4.2 scalar metrics — the cheapest full-study analysis
// path, and the direct streaming counterpart of
// NewStudy(opts).Metrics().
func StreamMetrics(opts Options) (analysis.AppMetrics, error) {
	res, err := streamRun(opts, false, false)
	if err != nil {
		return analysis.AppMetrics{}, err
	}
	return res.Metrics, nil
}
