package core

import (
	"math"
	"testing"

	"earlybird/internal/cluster"
)

// approxEqual reports whether a and b agree within relative tolerance
// tol (absolute below 1e-12).
func approxEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d < 1e-12 {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// TestStreamStudyMatchesMaterialized: every streaming quantity must agree
// with the materialised pipeline — exactly for the process-level metrics,
// the app-iteration reclaimable/idle metrics, the Table 1 row and the
// moments; within the documented sketch tolerance (10% relative here, at
// a small geometry where per-iteration sketches see few samples) for the
// IQR statistics.
func TestStreamStudyMatchesMaterialized(t *testing.T) {
	for _, app := range []string{"minife", "minimd", "miniqmc"} {
		t.Run(app, func(t *testing.T) {
			opts := Options{App: app, Geometry: cluster.SmallConfig()}
			streamed, err := StreamStudy(opts)
			if err != nil {
				t.Fatal(err)
			}
			study, err := NewStudy(Options{App: app, Geometry: cluster.SmallConfig()})
			if err != nil {
				t.Fatal(err)
			}
			exact := study.Metrics()
			got := streamed.Metrics

			// Exact fields: identical up to float summation order.
			for _, c := range []struct {
				what      string
				got, want float64
			}{
				{"MeanMedianSec", got.MeanMedianSec, exact.MeanMedianSec},
				{"LaggardFraction", got.LaggardFraction, exact.LaggardFraction},
				{"AvgReclaimableProcSec", got.AvgReclaimableProcSec, exact.AvgReclaimableProcSec},
				{"IdleRatioProc", got.IdleRatioProc, exact.IdleRatioProc},
				{"AvgReclaimableAppIterSec", got.AvgReclaimableAppIterSec, exact.AvgReclaimableAppIterSec},
				{"IdleRatioAppIter", got.IdleRatioAppIter, exact.IdleRatioAppIter},
			} {
				if !approxEqual(c.got, c.want, 1e-9) {
					t.Errorf("%s: streaming %v vs exact %v", c.what, c.got, c.want)
				}
			}

			// Sketch-estimated fields: documented tolerance.
			if !approxEqual(got.IQRMeanSec, exact.IQRMeanSec, 0.10) {
				t.Errorf("IQRMeanSec: streaming %v vs exact %v (>10%%)", got.IQRMeanSec, exact.IQRMeanSec)
			}
			if !approxEqual(got.IQRMaxSec, exact.IQRMaxSec, 0.15) {
				t.Errorf("IQRMaxSec: streaming %v vs exact %v (>15%%)", got.IQRMaxSec, exact.IQRMaxSec)
			}

			// Table 1 is exact: the battery runs on identical blocks.
			wantT1 := study.Table1()
			if streamed.Table1 != wantT1 {
				t.Errorf("Table1: streaming %+v vs exact %+v", streamed.Table1, wantT1)
			}

			// Application-level moments are exact.
			samples := study.Dataset().AllSamples()
			sum := 0.0
			for _, x := range samples {
				sum += x
			}
			if !approxEqual(streamed.Moments.Mean(), sum/float64(len(samples)), 1e-9) {
				t.Errorf("moments mean %v vs exact %v", streamed.Moments.Mean(), sum/float64(len(samples)))
			}
			if streamed.Samples() != int64(len(samples)) {
				t.Errorf("streamed %d samples, want %d", streamed.Samples(), len(samples))
			}
		})
	}
}

// TestStudyMetricsStreamingMatchesMetrics: the cursor-based streaming
// path over an existing dataset must agree with the exact path the same
// way the online path does.
func TestStudyMetricsStreamingMatchesMetrics(t *testing.T) {
	study, err := NewStudy(Options{App: "minife", Geometry: cluster.SmallConfig()})
	if err != nil {
		t.Fatal(err)
	}
	exact := study.Metrics()
	streamed := study.MetricsStreaming()
	if !approxEqual(streamed.MeanMedianSec, exact.MeanMedianSec, 1e-9) ||
		!approxEqual(streamed.LaggardFraction, exact.LaggardFraction, 1e-9) ||
		!approxEqual(streamed.AvgReclaimableProcSec, exact.AvgReclaimableProcSec, 1e-9) {
		t.Fatalf("streaming %+v vs exact %+v", streamed, exact)
	}
	if !approxEqual(streamed.IQRMeanSec, exact.IQRMeanSec, 0.10) {
		t.Fatalf("IQRMeanSec: streaming %v vs exact %v", streamed.IQRMeanSec, exact.IQRMeanSec)
	}
	if got, want := study.Table1Streaming(), study.Table1(); got != want {
		t.Fatalf("Table1Streaming %+v vs Table1 %+v", got, want)
	}
}

// TestStreamMetricsDeterministic: like the materialised path, streaming
// results are a pure function of (model, geometry, seed).
func TestStreamMetricsDeterministic(t *testing.T) {
	opts := Options{App: "minimd", Geometry: cluster.Config{Trials: 2, Ranks: 3, Iterations: 30, Threads: 16, Seed: 5}}
	a, err := StreamMetrics(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StreamMetrics(Options{App: "minimd", Geometry: opts.Geometry})
	if err != nil {
		t.Fatal(err)
	}
	// Exact fields must match bit-for-bit across runs (per-(trial,rank,
	// iter) RNG streams make the sums scheduling-independent only up to
	// merge order, so compare with a tight tolerance).
	if !approxEqual(a.MeanMedianSec, b.MeanMedianSec, 1e-12) ||
		a.LaggardFraction != b.LaggardFraction ||
		!approxEqual(a.AvgReclaimableProcSec, b.AvgReclaimableProcSec, 1e-12) {
		t.Fatalf("streaming metrics not deterministic: %+v vs %+v", a, b)
	}
}

func TestStreamStudyRejectsBadOptions(t *testing.T) {
	if _, err := StreamStudy(Options{}); err == nil {
		t.Fatal("expected error for empty options")
	}
	if _, err := StreamMetrics(Options{App: "nosuch"}); err == nil {
		t.Fatal("expected error for unknown app")
	}
}
