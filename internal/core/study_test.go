package core

import (
	"bytes"
	"strings"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/network"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

var quickGeom = cluster.Config{Trials: 2, Ranks: 3, Iterations: 40, Threads: 48, Seed: 11}

func quickStudy(t *testing.T, app string) *Study {
	t.Helper()
	s, err := NewStudy(Options{App: app, Geometry: quickGeom})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStudyRunsAllApps(t *testing.T) {
	for _, app := range []string{"minife", "minimd", "miniqmc"} {
		s := quickStudy(t, app)
		if s.App() != app {
			t.Errorf("app = %q", s.App())
		}
		if s.Dataset().NumSamples() != quickGeom.Trials*quickGeom.Ranks*quickGeom.Iterations*quickGeom.Threads {
			t.Errorf("%s: wrong sample count", app)
		}
	}
}

func TestNewStudyOptionValidation(t *testing.T) {
	if _, err := NewStudy(Options{}); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := NewStudy(Options{App: "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := NewStudy(Options{App: "minife", Geometry: cluster.Config{Trials: -1, Ranks: 1, Iterations: 1, Threads: 1}}); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestNewStudyCustomModel(t *testing.T) {
	m := &workload.NormalModel{AppName: "custom", MedianSec: 5e-3, SigmaSec: 0.1e-3}
	s, err := NewStudy(Options{Model: m, Geometry: quickGeom})
	if err != nil {
		t.Fatal(err)
	}
	if s.App() != "custom" {
		t.Fatalf("app = %q", s.App())
	}
}

func TestFromDataset(t *testing.T) {
	d := trace.NewDataset("x", 1, 1, 2, 4)
	s, err := FromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.App() != "x" {
		t.Fatal("app")
	}
	if _, err := FromDataset(nil); err == nil {
		t.Error("nil dataset accepted")
	}
	bad := trace.NewDataset("y", 1, 1, 1, 1)
	bad.Times = nil
	if _, err := FromDataset(bad); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestStudyAnalysisSurface(t *testing.T) {
	s := quickStudy(t, "minife")
	m := s.Metrics()
	if m.MeanMedianSec < 25e-3 || m.MeanMedianSec > 28e-3 {
		t.Errorf("median %v", m.MeanMedianSec)
	}
	t1 := s.Table1()
	if t1.App != "minife" {
		t.Error("table1 app")
	}
	lg := s.Laggards()
	if lg.Total != quickGeom.Trials*quickGeom.Ranks*quickGeom.Iterations {
		t.Errorf("laggard total %d", lg.Total)
	}
	ps := s.Percentiles()
	if len(ps.Values) != quickGeom.Iterations {
		t.Errorf("percentile rows %d", len(ps.Values))
	}
	h := s.Histogram(10e-6)
	if h.Total != s.Dataset().NumSamples() {
		t.Errorf("histogram total %d", h.Total)
	}
}

func TestFeasibilityRecommendations(t *testing.T) {
	// The three applications should reproduce the paper's Section 5
	// classification.
	cases := map[string]Recommendation{
		"minife":  RecommendTimeoutFlush,
		"minimd":  RecommendSophisticated,
		"miniqmc": RecommendFineGrained,
	}
	for app, want := range cases {
		s := quickStudy(t, app)
		a := s.Feasibility(1<<20, network.OmniPath(), 1e-3)
		if a.Recommendation != want {
			t.Errorf("%s: recommendation %q, want %q (laggards %.3f, iqr/median %.4f)",
				app, a.Recommendation, want, a.LaggardFraction, a.IQRToMedian)
		}
		if len(a.Results) != 3 {
			t.Errorf("%s: %d strategy results", app, len(a.Results))
		}
		if a.PotentialOverlapSec <= 0 {
			t.Errorf("%s: potential overlap %v", app, a.PotentialOverlapSec)
		}
		if !strings.Contains(a.String(), app) {
			t.Errorf("%s: render missing app name", app)
		}
	}
}

func TestClassifyBoundaries(t *testing.T) {
	const eps = 1e-9
	cases := []struct {
		name                         string
		iqrToMedian, laggardFraction float64
		want                         Recommendation
	}{
		// The IQR/median cutoff is strict: exactly 0.05 does not count as
		// wide, just above it does — regardless of the laggard fraction.
		{"iqr-at-cutoff", IQRToMedianCutoff, 0, RecommendSophisticated},
		{"iqr-above-cutoff", IQRToMedianCutoff + eps, 0, RecommendFineGrained},
		{"iqr-dominates-laggards", IQRToMedianCutoff + eps, 1, RecommendFineGrained},
		// The laggard cutoff is also strict, and only consulted when the
		// distribution is not wide.
		{"laggards-at-cutoff", 0, LaggardFractionCutoff, RecommendSophisticated},
		{"laggards-above-cutoff", 0, LaggardFractionCutoff + eps, RecommendTimeoutFlush},
		{"laggards-below-iqr-at", IQRToMedianCutoff, LaggardFractionCutoff + eps, RecommendTimeoutFlush},
		{"both-zero", 0, 0, RecommendSophisticated},
		{"both-high", 1, 1, RecommendFineGrained},
	}
	for _, c := range cases {
		if got := Classify(c.iqrToMedian, c.laggardFraction); got != c.want {
			t.Errorf("%s: Classify(%v, %v) = %q, want %q",
				c.name, c.iqrToMedian, c.laggardFraction, got, c.want)
		}
	}
}

func TestFeasibilitySyntheticBoundaries(t *testing.T) {
	// Synthetic models pin each side of the classification: a wide normal
	// distribution (IQR/median ≈ 1.349*sigma/median ≈ 0.13) must classify
	// fine-grained; a tight distribution with a guaranteed 8 ms laggard
	// every iteration must classify timeout-flush; a tight distribution
	// with no laggards must fall through to sophisticated.
	run := func(m workload.Model) Assessment {
		s, err := NewStudy(Options{Model: m, Geometry: quickGeom})
		if err != nil {
			t.Fatal(err)
		}
		return s.Feasibility(1<<20, network.OmniPath(), 1e-3)
	}

	wide := run(&workload.NormalModel{AppName: "wide", MedianSec: 10e-3, SigmaSec: 1e-3})
	if wide.Recommendation != RecommendFineGrained {
		t.Errorf("wide: %q (iqr/median %.4f)", wide.Recommendation, wide.IQRToMedian)
	}
	if wide.IQRToMedian <= IQRToMedianCutoff {
		t.Errorf("wide: iqr/median %.4f not above cutoff", wide.IQRToMedian)
	}

	laggy := run(&workload.SingleLaggardModel{AppName: "laggy", MedianSec: 10e-3, JitterSec: 0.01e-3, LagSec: 8e-3})
	if laggy.Recommendation != RecommendTimeoutFlush {
		t.Errorf("laggy: %q (laggards %.3f, iqr/median %.4f)",
			laggy.Recommendation, laggy.LaggardFraction, laggy.IQRToMedian)
	}
	if laggy.LaggardFraction <= LaggardFractionCutoff {
		t.Errorf("laggy: laggard fraction %.3f not above cutoff", laggy.LaggardFraction)
	}

	tight := run(&workload.NormalModel{AppName: "tight", MedianSec: 10e-3, SigmaSec: 0.01e-3})
	if tight.Recommendation != RecommendSophisticated {
		t.Errorf("tight: %q (laggards %.3f, iqr/median %.4f)",
			tight.Recommendation, tight.LaggardFraction, tight.IQRToMedian)
	}
}

func TestFromDatasetWith(t *testing.T) {
	d := cluster.MustRun(workload.DefaultMiniFE(), quickGeom)
	loose, err := FromDatasetWith(d, Options{Alpha: 0.01, LaggardThresholdSec: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	defaults, err := FromDatasetWith(d, Options{App: "ignored", Model: workload.DefaultMiniMD()})
	if err != nil {
		t.Fatal(err)
	}
	if defaults.App() != "minife" {
		t.Errorf("App/Model overrode the dataset identity: %q", defaults.App())
	}
	// A 5 ms laggard rule must find no more laggards than the default 1 ms.
	if loose.Laggards().WithLaggard > defaults.Laggards().WithLaggard {
		t.Error("looser threshold found more laggards")
	}
	if loose.Table1() == defaults.Table1() {
		t.Error("alpha=0.01 produced the same Table1 row as the default")
	}
	if _, err := FromDatasetWith(nil, Options{}); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestFeasibilityOverlapOrdering(t *testing.T) {
	// MiniQMC's wide arrivals must yield much more fine-grained overlap
	// than MiniMD's tight ones (the paper's headline contrast).
	qmc := quickStudy(t, "miniqmc").Feasibility(1<<20, network.OmniPath(), 1e-3)
	md := quickStudy(t, "minimd").Feasibility(1<<20, network.OmniPath(), 1e-3)
	var qmcOverlap, mdOverlap float64
	for _, r := range qmc.Results {
		if r.Strategy == "finegrained" {
			qmcOverlap = r.MeanOverlapSec
		}
	}
	for _, r := range md.Results {
		if r.Strategy == "finegrained" {
			mdOverlap = r.MeanOverlapSec
		}
	}
	if qmcOverlap < 2*mdOverlap {
		t.Errorf("qmc overlap %v not ≫ md overlap %v", qmcOverlap, mdOverlap)
	}
}

func TestWriteSummary(t *testing.T) {
	s := quickStudy(t, "minimd")
	var buf bytes.Buffer
	s.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"minimd", "laggards:", "idle ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
