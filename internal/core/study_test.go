package core

import (
	"bytes"
	"strings"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/network"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

var quickGeom = cluster.Config{Trials: 2, Ranks: 3, Iterations: 40, Threads: 48, Seed: 11}

func quickStudy(t *testing.T, app string) *Study {
	t.Helper()
	s, err := NewStudy(Options{App: app, Geometry: quickGeom})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStudyRunsAllApps(t *testing.T) {
	for _, app := range []string{"minife", "minimd", "miniqmc"} {
		s := quickStudy(t, app)
		if s.App() != app {
			t.Errorf("app = %q", s.App())
		}
		if s.Dataset().NumSamples() != quickGeom.Trials*quickGeom.Ranks*quickGeom.Iterations*quickGeom.Threads {
			t.Errorf("%s: wrong sample count", app)
		}
	}
}

func TestNewStudyOptionValidation(t *testing.T) {
	if _, err := NewStudy(Options{}); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := NewStudy(Options{App: "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := NewStudy(Options{App: "minife", Geometry: cluster.Config{Trials: -1, Ranks: 1, Iterations: 1, Threads: 1}}); err == nil {
		t.Error("invalid geometry accepted")
	}
}

func TestNewStudyCustomModel(t *testing.T) {
	m := &workload.NormalModel{AppName: "custom", MedianSec: 5e-3, SigmaSec: 0.1e-3}
	s, err := NewStudy(Options{Model: m, Geometry: quickGeom})
	if err != nil {
		t.Fatal(err)
	}
	if s.App() != "custom" {
		t.Fatalf("app = %q", s.App())
	}
}

func TestFromDataset(t *testing.T) {
	d := trace.NewDataset("x", 1, 1, 2, 4)
	s, err := FromDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if s.App() != "x" {
		t.Fatal("app")
	}
	if _, err := FromDataset(nil); err == nil {
		t.Error("nil dataset accepted")
	}
	bad := trace.NewDataset("y", 1, 1, 1, 1)
	bad.Times = nil
	if _, err := FromDataset(bad); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestStudyAnalysisSurface(t *testing.T) {
	s := quickStudy(t, "minife")
	m := s.Metrics()
	if m.MeanMedianSec < 25e-3 || m.MeanMedianSec > 28e-3 {
		t.Errorf("median %v", m.MeanMedianSec)
	}
	t1 := s.Table1()
	if t1.App != "minife" {
		t.Error("table1 app")
	}
	lg := s.Laggards()
	if lg.Total != quickGeom.Trials*quickGeom.Ranks*quickGeom.Iterations {
		t.Errorf("laggard total %d", lg.Total)
	}
	ps := s.Percentiles()
	if len(ps.Values) != quickGeom.Iterations {
		t.Errorf("percentile rows %d", len(ps.Values))
	}
	h := s.Histogram(10e-6)
	if h.Total != s.Dataset().NumSamples() {
		t.Errorf("histogram total %d", h.Total)
	}
}

func TestFeasibilityRecommendations(t *testing.T) {
	// The three applications should reproduce the paper's Section 5
	// classification.
	cases := map[string]Recommendation{
		"minife":  RecommendTimeoutFlush,
		"minimd":  RecommendSophisticated,
		"miniqmc": RecommendFineGrained,
	}
	for app, want := range cases {
		s := quickStudy(t, app)
		a := s.Feasibility(1<<20, network.OmniPath(), 1e-3)
		if a.Recommendation != want {
			t.Errorf("%s: recommendation %q, want %q (laggards %.3f, iqr/median %.4f)",
				app, a.Recommendation, want, a.LaggardFraction, a.IQRToMedian)
		}
		if len(a.Results) != 3 {
			t.Errorf("%s: %d strategy results", app, len(a.Results))
		}
		if a.PotentialOverlapSec <= 0 {
			t.Errorf("%s: potential overlap %v", app, a.PotentialOverlapSec)
		}
		if !strings.Contains(a.String(), app) {
			t.Errorf("%s: render missing app name", app)
		}
	}
}

func TestFeasibilityOverlapOrdering(t *testing.T) {
	// MiniQMC's wide arrivals must yield much more fine-grained overlap
	// than MiniMD's tight ones (the paper's headline contrast).
	qmc := quickStudy(t, "miniqmc").Feasibility(1<<20, network.OmniPath(), 1e-3)
	md := quickStudy(t, "minimd").Feasibility(1<<20, network.OmniPath(), 1e-3)
	var qmcOverlap, mdOverlap float64
	for _, r := range qmc.Results {
		if r.Strategy == "finegrained" {
			qmcOverlap = r.MeanOverlapSec
		}
	}
	for _, r := range md.Results {
		if r.Strategy == "finegrained" {
			mdOverlap = r.MeanOverlapSec
		}
	}
	if qmcOverlap < 2*mdOverlap {
		t.Errorf("qmc overlap %v not ≫ md overlap %v", qmcOverlap, mdOverlap)
	}
}

func TestWriteSummary(t *testing.T) {
	s := quickStudy(t, "minimd")
	var buf bytes.Buffer
	s.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"minimd", "laggards:", "idle ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
