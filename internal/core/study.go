// Package core ties the substrates into the paper's methodology: run (or
// load) a thread-timing study of an application, analyse the arrival
// distributions at the three aggregation levels, and assess the
// feasibility of early-bird message delivery for that application.
//
// This is the library's primary public surface; the root earlybird
// package re-exports it.
package core

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/network"
	"earlybird/internal/partcomm"
	"earlybird/internal/stats"
	"earlybird/internal/stats/normality"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

// PolicySpec bundles every policy axis of a study in one value: the
// delivery-strategy set the feasibility assessment evaluates, the
// runtime rebalancing (DLB) policy the samples are generated under, and
// the two analysis thresholds. It is the unified policy surface shared
// by core.Options, the serve layer's request envelope and the facade;
// zero fields fill with the paper's defaults.
type PolicySpec struct {
	// Strategies is the delivery-strategy set Feasibility evaluates; nil
	// means the paper's three (bulk, fine-grained, binned at the
	// assessment's timeout). Stateful strategies are cloned per study,
	// so one PolicySpec may safely configure concurrent studies.
	Strategies []partcomm.Strategy
	// DLB selects the runtime rebalancing policy the dataset is
	// generated under; the zero value is the static thread layout.
	DLB dlb.Spec
	// Alpha is the normality significance level; zero means 5%.
	Alpha float64
	// LaggardThresholdSec is the laggard rule; zero means 1 ms.
	LaggardThresholdSec float64
}

// Options configures a study.
type Options struct {
	// App selects a built-in application model ("minife", "minimd",
	// "miniqmc") when Model is nil.
	App string
	// Model overrides App with a custom workload model.
	Model workload.Model
	// Geometry is the study size; zero value means the paper's
	// 10 x 8 x 200 x 48.
	Geometry cluster.Config
	// Policy bundles the study's policy axes. Zero fields inherit the
	// matching deprecated flat field below, then the paper defaults, so
	// both spellings keep working; on conflict Policy wins.
	Policy PolicySpec

	// Alpha is the normality significance level; zero means 5%.
	//
	// Deprecated: set Policy.Alpha. Kept as an adapter for pre-PolicySpec
	// callers.
	Alpha float64
	// LaggardThresholdSec is the laggard rule; zero means 1 ms.
	//
	// Deprecated: set Policy.LaggardThresholdSec.
	LaggardThresholdSec float64
	// Strategies overrides the delivery-strategy set Feasibility
	// evaluates; nil means the paper's three (bulk, fine-grained, binned
	// at the assessment's timeout).
	//
	// Deprecated: set Policy.Strategies.
	Strategies []partcomm.Strategy

	// Progress, when non-nil, receives live fill telemetry from the
	// study's generation (see cluster.ProgressSink and
	// internal/telemetry). It only ever observes counts and durations,
	// never samples, so attaching one cannot change any result.
	Progress cluster.ProgressSink
}

// fillPolicy merges the deprecated flat fields into Policy, applies the
// paper defaults, canonicalises the DLB spec and clones stateful
// strategies, then mirrors the resolved values back onto the flat
// fields so either spelling reads the same after resolution.
func (o *Options) fillPolicy() error {
	if o.Policy.Alpha == 0 {
		o.Policy.Alpha = o.Alpha
	}
	if o.Policy.LaggardThresholdSec == 0 {
		o.Policy.LaggardThresholdSec = o.LaggardThresholdSec
	}
	if o.Policy.Strategies == nil {
		o.Policy.Strategies = o.Strategies
	}
	if o.Policy.Alpha == 0 {
		o.Policy.Alpha = normality.DefaultAlpha
	}
	if o.Policy.LaggardThresholdSec == 0 {
		o.Policy.LaggardThresholdSec = analysis.DefaultLaggardThresholdSec
	}
	resolved, err := o.Policy.DLB.Resolve()
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	o.Policy.DLB = resolved
	// Stateful strategies (e.g. *partcomm.EWMABinned) must not be shared
	// across concurrent studies; cloning here makes one Options value
	// safe to reuse however the caller likes.
	o.Policy.Strategies = partcomm.CloneSet(o.Policy.Strategies)
	o.Alpha = o.Policy.Alpha
	o.LaggardThresholdSec = o.Policy.LaggardThresholdSec
	o.Strategies = o.Policy.Strategies
	return nil
}

func (o *Options) fill() error {
	if o.Model == nil {
		if o.App == "" {
			return errors.New("core: either App or Model must be set")
		}
		m, err := workload.ByName(o.App)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		o.Model = m
	}
	if o.Geometry == (cluster.Config{}) {
		o.Geometry = cluster.DefaultConfig()
	}
	return o.fillPolicy()
}

// Study is a collected thread-timing dataset plus the analysis
// configuration.
type Study struct {
	opts Options
	ds   *trace.Dataset
}

// NewStudy runs the configured study and returns it.
func NewStudy(opts Options) (*Study, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	ds, err := cluster.RunDLB(opts.Model, opts.Geometry, opts.Policy.DLB)
	if err != nil {
		return nil, err
	}
	return &Study{opts: opts, ds: ds}, nil
}

// FromDataset wraps an existing dataset (for example, read back from
// JSON) in a Study with default analysis parameters.
func FromDataset(ds *trace.Dataset) (*Study, error) {
	return FromDatasetWith(ds, Options{})
}

// FromDatasetWith wraps an existing dataset in a Study with explicit
// analysis parameters (zero values fill with the defaults). Options.App
// and Options.Model are ignored: the dataset already carries its
// application identity. The study does not copy or mutate ds, so a cached
// dataset may safely back many studies with different analysis options.
func FromDatasetWith(ds *trace.Dataset, opts Options) (*Study, error) {
	if ds == nil {
		return nil, errors.New("core: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	opts.App = ds.App
	opts.Model = nil
	if err := opts.fillPolicy(); err != nil {
		return nil, err
	}
	return &Study{opts: opts, ds: ds}, nil
}

// Dataset returns the underlying dataset.
func (s *Study) Dataset() *trace.Dataset { return s.ds }

// App returns the application name.
func (s *Study) App() string { return s.ds.App }

// Metrics computes the Section 4.2 scalar metrics.
func (s *Study) Metrics() analysis.AppMetrics {
	return analysis.ComputeMetrics(s.ds, s.opts.LaggardThresholdSec)
}

// MetricsStreaming computes the same scalars as Metrics in a single
// bounded-memory pass over the dataset's cursor: no per-level sample
// slices are materialised, at the cost of the iteration IQR statistics
// being sketch estimates (see analysis.ComputeMetricsStreaming). The
// exact path stays available as Metrics.
func (s *Study) MetricsStreaming() analysis.AppMetrics {
	return analysis.ComputeMetricsStreaming(s.ds.App, s.ds.Cursor(), s.opts.LaggardThresholdSec)
}

// Table1Streaming computes the Table 1 row via the dataset's cursor; the
// result is identical to Table1 (the normality battery always runs per
// complete process iteration) without materialising sample slices.
func (s *Study) Table1Streaming() analysis.Table1 {
	return analysis.Table1Streaming(s.ds.App, s.ds.Cursor(), s.opts.Alpha)
}

// Table1 computes the study's process-iteration normality row.
func (s *Study) Table1() analysis.Table1 {
	return analysis.Table1Row(s.ds, s.opts.Alpha)
}

// Laggards classifies the study's process iterations.
func (s *Study) Laggards() analysis.LaggardStats {
	return analysis.Laggards(s.ds, s.opts.LaggardThresholdSec)
}

// Percentiles computes the per-iteration percentile series (the paper's
// Figures 4/6/8).
func (s *Study) Percentiles() *analysis.PercentileSeries {
	return analysis.IterationPercentiles(s.ds, nil)
}

// Histogram builds the application-level arrival histogram with the
// given bin width in seconds (the paper's Figure 3 uses 10e-6).
func (s *Study) Histogram(binWidthSec float64) *stats.Histogram {
	return analysis.ApplicationHistogram(s.ds, binWidthSec)
}

// Recommendation classifies how an application should employ early-bird
// communication, following the paper's Section 5 discussion.
type Recommendation string

const (
	// RecommendTimeoutFlush suits applications whose reclaimable time
	// comes from laggards in a minority of iterations (MiniFE): transmit
	// accumulated data on a timeout so early threads ship while the
	// laggard computes.
	RecommendTimeoutFlush Recommendation = "timeout-flush"
	// RecommendFineGrained suits applications with persistently wide
	// arrival distributions (MiniQMC): both binning and fine-grained
	// early-bird transmission pay off.
	RecommendFineGrained Recommendation = "fine-grained-or-binned"
	// RecommendSophisticated flags applications with tight arrivals and
	// rare, high-magnitude laggards (MiniMD phase 2): a simple overlap
	// model is unlikely to succeed.
	RecommendSophisticated Recommendation = "sophisticated-approach-needed"
)

// Classification cutoffs for the Section 5 recommendation (see Classify).
const (
	// IQRToMedianCutoff is the IQR/median ratio above which the arrival
	// distribution counts as persistently wide (MiniQMC's is ~0.15).
	IQRToMedianCutoff = 0.05
	// LaggardFractionCutoff is the laggard-iteration fraction above which
	// reclaimable time counts as laggard-driven (MiniFE's is ~0.224).
	LaggardFractionCutoff = 0.10
)

// Classify maps the two feasibility discriminants onto a recommendation:
// a wide distribution (IQR/median strictly above IQRToMedianCutoff) calls
// for fine-grained or binned delivery; otherwise a laggard-driven profile
// (fraction strictly above LaggardFractionCutoff) calls for timeout
// flushing; tight arrivals with rare laggards need a sophisticated
// approach. Values exactly at a cutoff do not trigger it.
func Classify(iqrToMedian, laggardFraction float64) Recommendation {
	switch {
	case iqrToMedian > IQRToMedianCutoff:
		return RecommendFineGrained
	case laggardFraction > LaggardFractionCutoff:
		return RecommendTimeoutFlush
	default:
		return RecommendSophisticated
	}
}

// ClassifyMetrics applies the Section 5 cutoffs directly to a metrics
// row: the streaming counterpart of Feasibility's classification for
// paths that never materialise a dataset (the serve layer's sweep
// endpoint). It uses the base laggard fraction, without Feasibility's
// widened effective threshold, so verdicts near the laggard cutoff can
// differ from the full assessment for intrinsically wide-phase
// applications.
func ClassifyMetrics(m analysis.AppMetrics) Recommendation {
	return Classify(m.IQRToMedian(), m.LaggardFraction)
}

// Assessment is the early-bird feasibility verdict for one application.
type Assessment struct {
	App string `json:"app"`
	// PotentialOverlapSec is the mean per-thread idle time available for
	// overlap (reclaimable time / threads), the upper bound of Figure 2.
	PotentialOverlapSec float64 `json:"potential_overlap_sec"`
	// Results holds the delivery-strategy evaluation (bulk baseline,
	// fine-grained, binned).
	Results []partcomm.Result `json:"results"`
	// LaggardFraction and IQRToMedian feed the recommendation.
	LaggardFraction float64        `json:"laggard_fraction"`
	IQRToMedian     float64        `json:"iqr_to_median"`
	Recommendation  Recommendation `json:"recommendation"`
}

// Feasibility evaluates delivery strategies over the study's arrival
// data with one partition per thread of bytesPerPart bytes.
//
// The laggard fraction used for classification is computed with an
// effective threshold of max(LaggardThresholdSec, 3 x mean IQR) so that
// applications with intrinsically wide phases (MiniMD's initial
// iterations) are not classified as laggard-driven when the spread is
// symmetric rather than a straggling tail.
func (s *Study) Feasibility(bytesPerPart int, fabric network.Fabric, binTimeoutSec float64) Assessment {
	m := s.Metrics()
	effThreshold := s.opts.LaggardThresholdSec
	if t := 3 * m.IQRMeanSec; t > effThreshold {
		effThreshold = t
	}
	a := Assessment{
		App:                 s.ds.App,
		PotentialOverlapSec: m.AvgReclaimableProcSec / float64(s.ds.Threads),
		LaggardFraction:     analysis.Laggards(s.ds, effThreshold).Fraction,
	}
	a.IQRToMedian = m.IQRToMedian()
	strategies := s.opts.Policy.Strategies
	if strategies == nil {
		strategies = []partcomm.Strategy{
			partcomm.Bulk{},
			partcomm.FineGrained{},
			partcomm.Binned{TimeoutSec: binTimeoutSec},
		}
	}
	// Cursor path: identical numbers to the materialised Evaluate, one
	// sort per block, no per-iteration allocation.
	a.Results = partcomm.EvaluateStream(s.ds.Cursor(), bytesPerPart, fabric, strategies)
	a.Recommendation = Classify(a.IQRToMedian, a.LaggardFraction)
	return a
}

// StrategySweep evaluates a delivery-strategy grid over the study's
// arrivals on the cursor path and returns the per-strategy results plus
// the frontier (best finish time and overlap capture). nil strategies
// means the standard optimizer grid (partcomm.Grid) with the paper's
// binning timeouts and a laggard-aware policy tuned from this study's
// measured laggard statistics.
func (s *Study) StrategySweep(bytesPerPart int, fabric network.Fabric, strategies []partcomm.Strategy) partcomm.Sweep {
	if strategies == nil {
		lag := analysis.LaggardsStream(s.ds.Cursor(), s.opts.LaggardThresholdSec)
		strategies = partcomm.Grid(DefaultStrategyTimeoutsSec(), DefaultStrategyEWMAAlphas(), lag)
	}
	return partcomm.SweepCursor(s.ds.Cursor(), bytesPerPart, fabric, strategies)
}

// DefaultStrategyTimeoutsSec returns the binned-timeout axis of the
// standard strategy grid: the paper's 1 ms bracketed by quarters,
// halves and doubles.
func DefaultStrategyTimeoutsSec() []float64 {
	return []float64{0.25e-3, 0.5e-3, 1e-3, 2e-3}
}

// DefaultStrategyEWMAAlphas returns the EWMA smoothing axis of the
// standard strategy grid.
func DefaultStrategyEWMAAlphas() []float64 { return []float64{0.2} }

// String renders the assessment.
func (a Assessment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: potential overlap %.2f ms/thread, laggard iterations %.1f%%, IQR/median %.3f -> %s\n",
		a.App, 1e3*a.PotentialOverlapSec, 100*a.LaggardFraction, a.IQRToMedian, a.Recommendation)
	for _, r := range a.Results {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}

// WriteSummary renders the study's headline analysis to w.
func (s *Study) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "study %s: %d trials x %d ranks x %d iterations x %d threads\n",
		s.ds.App, s.ds.Trials, s.ds.Ranks, s.ds.Iterations, s.ds.Threads)
	fmt.Fprintln(w, s.Metrics())
	fmt.Fprintln(w, s.Table1())
	st := s.Laggards()
	fmt.Fprintf(w, "laggards: %d/%d process iterations (%.1f%%), mean magnitude %.2f ms\n",
		st.WithLaggard, st.Total, 100*st.Fraction, 1e3*st.MeanMagnitudeSec)
}
