package core

import (
	"reflect"
	"sync"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/network"
	"earlybird/internal/partcomm"
)

// TestPolicySpecAdapterEquivalence: the deprecated flat Options fields
// and the PolicySpec envelope must resolve to identical studies.
func TestPolicySpecAdapterEquivalence(t *testing.T) {
	legacy := Options{App: "minife", Geometry: cluster.SmallConfig(),
		Alpha: 0.01, LaggardThresholdSec: 2e-3}
	envelope := Options{App: "minife", Geometry: cluster.SmallConfig(),
		Policy: PolicySpec{Alpha: 0.01, LaggardThresholdSec: 2e-3}}

	if err := legacy.fill(); err != nil {
		t.Fatal(err)
	}
	if err := envelope.fill(); err != nil {
		t.Fatal(err)
	}
	if legacy.Policy.Alpha != envelope.Policy.Alpha ||
		legacy.Policy.LaggardThresholdSec != envelope.Policy.LaggardThresholdSec ||
		legacy.Policy.DLB != envelope.Policy.DLB {
		t.Fatalf("legacy resolved %+v, envelope %+v", legacy.Policy, envelope.Policy)
	}
	// Resolution mirrors the policy back onto the flat fields.
	if envelope.Alpha != 0.01 || legacy.Alpha != 0.01 {
		t.Fatalf("flat mirror broken: %v / %v", envelope.Alpha, legacy.Alpha)
	}

	// On conflict the envelope wins.
	both := Options{App: "minife", Alpha: 0.10, Policy: PolicySpec{Alpha: 0.01}}
	if err := both.fill(); err != nil {
		t.Fatal(err)
	}
	if both.Policy.Alpha != 0.01 || both.Alpha != 0.01 {
		t.Fatalf("conflict resolution: %+v", both)
	}
}

// TestPolicyDLBThreadsThroughStudy: a DLB policy set via PolicySpec
// changes the generated samples, and an invalid one errors.
func TestPolicyDLBThreadsThroughStudy(t *testing.T) {
	quick := cluster.SmallConfig()
	static, err := NewStudy(Options{App: "minife", Geometry: quick})
	if err != nil {
		t.Fatal(err)
	}
	lewi, err := NewStudy(Options{App: "minife", Geometry: quick,
		Policy: PolicySpec{DLB: dlb.Spec{Policy: dlb.PolicyLeWI}}})
	if err != nil {
		t.Fatal(err)
	}
	sm, lm := static.Metrics(), lewi.Metrics()
	if reflect.DeepEqual(sm, lm) {
		t.Fatal("lewi study produced identical metrics to static")
	}
	if _, err := NewStudy(Options{App: "minife", Geometry: quick,
		Policy: PolicySpec{DLB: dlb.Spec{Policy: "warp"}}}); err == nil {
		t.Fatal("invalid DLB policy accepted")
	}
	res, err := StreamStudy(Options{App: "minife", Geometry: quick,
		Policy: PolicySpec{DLB: dlb.Spec{Policy: dlb.PolicyLeWI}}})
	if err != nil {
		t.Fatal(err)
	}
	// Streaming accumulators merge in scheduling order, so allow float
	// noise — but the streamed result must track the lewi study, not the
	// static one.
	relDiff := func(a, b float64) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d / b
	}
	if relDiff(res.Metrics.MeanMedianSec, lm.MeanMedianSec) > 1e-9 {
		t.Fatalf("stream study ignored the DLB policy: %v vs %v",
			res.Metrics.MeanMedianSec, lm.MeanMedianSec)
	}
	if relDiff(res.Metrics.MeanMedianSec, sm.MeanMedianSec) < 1e-12 {
		t.Fatal("streamed lewi result matches static")
	}
}

// TestStrategiesClonedPerStudy: one Options value carrying a stateful
// strategy must be safe to reuse — every study gets its own clone, and
// concurrent feasibility evaluations neither race nor perturb each
// other's results.
func TestStrategiesClonedPerStudy(t *testing.T) {
	shared := &partcomm.EWMABinned{Alpha: 0.3}
	opts := Options{App: "minimd", Geometry: cluster.SmallConfig(),
		Policy: PolicySpec{Strategies: []partcomm.Strategy{partcomm.Bulk{}, shared}}}

	mk := func() *Study {
		s, err := NewStudy(opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	for _, s := range []*Study{a, b} {
		got := s.opts.Policy.Strategies[1]
		if got == partcomm.Strategy(shared) {
			t.Fatal("study shares the caller's stateful strategy instance")
		}
		if got.(*partcomm.EWMABinned).Alpha != 0.3 {
			t.Fatal("clone lost its parameters")
		}
	}
	if a.opts.Policy.Strategies[1] == b.opts.Policy.Strategies[1] {
		t.Fatal("two studies share one stateful strategy instance")
	}

	// Concurrent evaluations from one Options must agree with a serial
	// baseline (run with -race this also proves no data race).
	want := a.Feasibility(1<<20, network.OmniPath(), 1e-3)
	var wg sync.WaitGroup
	results := make([]Assessment, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = mk().Feasibility(1<<20, network.OmniPath(), 1e-3)
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("concurrent evaluation %d diverged", i)
		}
	}
}
