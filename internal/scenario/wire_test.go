package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestWireRoundTrip pins the -remote contract: Wire renders the JSON
// document form Parse reads back, with canonical axis strings, so a
// client-parsed scenario compiles to the same campaign server-side.
func TestWireRoundTrip(t *testing.T) {
	doc := []byte(`
name: round-trip
description: wire form
sources: [minife, miniqmc]
geometries: [2x4x10x8, 1x2x5x4@7]
noise: [none, "burst:rate=2,mean-ms=5,factor=3"]
dlb: [static, lewi]
fabrics: [omnipath, "hier:ranks-per-node=2,congestion=1.5"]
bin_timeouts_ms: [1, 0.5]
alpha: 0.01
laggard_ms: 2
part_bytes: 65536
`)
	spec, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := spec.Wire("")
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := Parse(wire)
	if err != nil {
		t.Fatalf("parsing wire form: %v\n%s", err, wire)
	}

	c1, err := spec.Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := spec2.Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Plan() != c2.Plan() {
		t.Errorf("wire round trip changed the campaign:\n--- original ---\n%s--- round-tripped ---\n%s", c1.Plan(), c2.Plan())
	}
	if _, err := c2.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestWireInlinesTracePaths pins that Wire reads path-backed trace
// sources (relative to the scenario's directory) into inline CSV — the
// only trace form /v1/scenario accepts.
func TestWireInlinesTracePaths(t *testing.T) {
	dir := t.TempDir()
	csv := testTrace(t, "captured", 2)
	if err := os.WriteFile(filepath.Join(dir, "cap.csv"), []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Name: "inline", Sources: []Source{{Trace: "cap.csv"}}}
	wire, err := spec.Wire(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec2.Sources) != 1 || spec2.Sources[0].CSV != csv || spec2.Sources[0].Trace != "" {
		t.Fatalf("wire form did not inline the trace: %+v", spec2.Sources)
	}

	spec.Sources[0].Trace = "missing.csv"
	if _, err := spec.Wire(dir); err == nil {
		t.Fatal("Wire accepted a missing trace file")
	}
}
