package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"earlybird/internal/cliopts"
	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/network"
	"earlybird/internal/noise"
)

// Source is one workload of a scenario: a built-in application model, a
// trace CSV on disk, or an inline trace CSV (the wire form — the service
// never reads server-side paths).
type Source struct {
	// App names a built-in application model (minife, minimd, miniqmc).
	App string `json:"app,omitempty"`
	// Trace is a path to a long-form CSV (trace.WriteCSV's format)
	// replayed as a pre-collected dataset.
	Trace string `json:"trace,omitempty"`
	// CSV is the trace content inline, for specs that travel over the
	// wire. Mutually exclusive with Trace.
	CSV string `json:"csv,omitempty"`
}

// IsApp reports whether the source is an application model.
func (s Source) IsApp() bool { return s.App != "" }

// key is the source's identity inside one scenario; index
// disambiguates inline CSVs, which have no name of their own.
func (s Source) key(index int) string {
	switch {
	case s.App != "":
		return "app:" + s.App
	case s.Trace != "":
		return "trace:" + s.Trace
	default:
		return fmt.Sprintf("trace:inline#%d", index)
	}
}

// validate checks the source declares exactly one backing.
func (s Source) validate() error {
	n := 0
	for _, set := range []bool{s.App != "", s.Trace != "", s.CSV != ""} {
		if set {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("scenario: source must set exactly one of app, trace or csv, got %+v", s)
	}
	return nil
}

// Spec is one parsed scenario: the declared sources and axes plus the
// scalar analysis knobs. Zero axes default at Compile time (one
// paper-geometry point, no noise, the Omni-Path fabric, the static
// policy, the 1 ms bin timeout), so the smallest useful scenario is a
// name and one source.
type Spec struct {
	Name        string
	Description string
	Sources     []Source
	// Geometries is the geometry grid (application sources only).
	Geometries []cluster.Config
	// Noise is the noise-model axis (application sources only).
	Noise []NoiseSpec
	// Fabrics is the interconnect axis; hierarchical entries flatten
	// per-geometry through network.Hierarchical.Effective.
	Fabrics []FabricSpec
	// DLB is the runtime-rebalancing axis (application sources only).
	DLB []dlb.Spec
	// BinTimeoutsSec is the binned delivery strategy's timeout axis.
	BinTimeoutsSec []float64
	// Alpha, LaggardThresholdSec and BytesPerPartition are scalar
	// analysis parameters shared by every cell; zero means the paper
	// defaults (engine.Spec fills them).
	Alpha               float64
	LaggardThresholdSec float64
	BytesPerPartition   int
}

// fnum renders a float the one canonical way axis entries use, so
// spelled-out defaults and shorthands land on identical strings.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// params parses "k1=v1,k2=v2" with every key drawn from allowed, which
// maps key -> required. Returns the present values.
func params(what, text string, allowed map[string]bool) (map[string]float64, error) {
	got := map[string]float64{}
	for _, part := range strings.Split(text, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		k = strings.TrimSpace(k)
		if !ok {
			return nil, fmt.Errorf("scenario: %s: parameter %q is not key=value", what, part)
		}
		if _, known := allowed[k]; !known {
			keys := make([]string, 0, len(allowed))
			for a := range allowed {
				keys = append(keys, a)
			}
			sort.Strings(keys)
			return nil, fmt.Errorf("scenario: %s: unknown parameter %q (want %s)", what, k, strings.Join(keys, ", "))
		}
		if _, dup := got[k]; dup {
			return nil, fmt.Errorf("scenario: %s: parameter %q given twice", what, k)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: parameter %q: bad number %q", what, k, v)
		}
		got[k] = f
	}
	for k, required := range allowed {
		if required {
			if _, ok := got[k]; !ok {
				return nil, fmt.Errorf("scenario: %s: missing required parameter %q", what, k)
			}
		}
	}
	return got, nil
}

// NoiseSpec is one parsed noise-axis entry. The zero value is "none".
type NoiseSpec struct {
	raw   string
	model noise.Model // nil for none
}

// IsNone reports whether the entry disables noise injection.
func (n NoiseSpec) IsNone() bool { return n.model == nil }

// Model returns the injector, nil for none.
func (n NoiseSpec) Model() noise.Model { return n.model }

// String renders the canonical form ParseNoise accepts.
func (n NoiseSpec) String() string {
	if n.raw == "" {
		return "none"
	}
	return n.raw
}

// ParseNoise reads a noise-axis entry:
//
//	none
//	burst:rate=R,mean-ms=M,factor=F        correlated bursts (noise.Burst)
//	daemon:period-ms=P,cost-us=C,affinity=A periodic daemon (noise.PeriodicDaemon)
//	interrupt:rate=R,cost-us=C             random interrupts (noise.RandomInterrupt)
//	slowdown:prob=P,factor=F               persistent slow core (noise.CoreSlowdown)
//
// The returned spec's String() is canonical: numerically equal entries
// render identically regardless of how they were spelled.
func ParseNoise(text string) (NoiseSpec, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "none" {
		return NoiseSpec{}, nil
	}
	kind, rest, _ := strings.Cut(text, ":")
	switch kind {
	case "burst":
		p, err := params("noise burst", rest, map[string]bool{"rate": true, "mean-ms": true, "factor": true})
		if err != nil {
			return NoiseSpec{}, err
		}
		m := noise.Burst{
			RatePerSec:   p["rate"],
			MeanDuration: time.Duration(p["mean-ms"] * float64(time.Millisecond)),
			Factor:       p["factor"],
		}
		if m.RatePerSec <= 0 || m.MeanDuration <= 0 || m.Factor <= 1 {
			return NoiseSpec{}, fmt.Errorf("scenario: noise %q needs rate > 0, mean-ms > 0, factor > 1", text)
		}
		return NoiseSpec{
			raw:   fmt.Sprintf("burst:rate=%s,mean-ms=%s,factor=%s", fnum(p["rate"]), fnum(p["mean-ms"]), fnum(p["factor"])),
			model: m,
		}, nil
	case "daemon":
		p, err := params("noise daemon", rest, map[string]bool{"period-ms": true, "cost-us": true, "affinity": true})
		if err != nil {
			return NoiseSpec{}, err
		}
		m := noise.PeriodicDaemon{
			Period:   time.Duration(p["period-ms"] * float64(time.Millisecond)),
			Cost:     time.Duration(p["cost-us"] * float64(time.Microsecond)),
			Affinity: p["affinity"],
		}
		if m.Period <= 0 || m.Cost <= 0 || m.Affinity <= 0 || m.Affinity > 1 {
			return NoiseSpec{}, fmt.Errorf("scenario: noise %q needs period-ms > 0, cost-us > 0, affinity in (0, 1]", text)
		}
		return NoiseSpec{
			raw:   fmt.Sprintf("daemon:period-ms=%s,cost-us=%s,affinity=%s", fnum(p["period-ms"]), fnum(p["cost-us"]), fnum(p["affinity"])),
			model: m,
		}, nil
	case "interrupt":
		p, err := params("noise interrupt", rest, map[string]bool{"rate": true, "cost-us": true})
		if err != nil {
			return NoiseSpec{}, err
		}
		m := noise.RandomInterrupt{
			Rate:     p["rate"],
			MeanCost: time.Duration(p["cost-us"] * float64(time.Microsecond)),
		}
		if m.Rate <= 0 || m.MeanCost <= 0 {
			return NoiseSpec{}, fmt.Errorf("scenario: noise %q needs rate > 0 and cost-us > 0", text)
		}
		return NoiseSpec{
			raw:   fmt.Sprintf("interrupt:rate=%s,cost-us=%s", fnum(p["rate"]), fnum(p["cost-us"])),
			model: m,
		}, nil
	case "slowdown":
		p, err := params("noise slowdown", rest, map[string]bool{"prob": true, "factor": true})
		if err != nil {
			return NoiseSpec{}, err
		}
		m := noise.CoreSlowdown{Prob: p["prob"], Factor: p["factor"]}
		if m.Prob <= 0 || m.Prob > 1 || m.Factor <= 1 {
			return NoiseSpec{}, fmt.Errorf("scenario: noise %q needs prob in (0, 1] and factor > 1", text)
		}
		return NoiseSpec{
			raw:   fmt.Sprintf("slowdown:prob=%s,factor=%s", fnum(p["prob"]), fnum(p["factor"])),
			model: m,
		}, nil
	default:
		return NoiseSpec{}, fmt.Errorf("scenario: unknown noise model %q (want none, burst, daemon, interrupt or slowdown)", kind)
	}
}

// FabricSpec is one parsed fabric-axis entry: a flat alpha-beta fabric
// or a two-level hierarchical one. The zero value is the paper's
// Omni-Path.
type FabricSpec struct {
	raw  string
	flat *network.Fabric
	hier *network.Hierarchical
}

// String renders the canonical form ParseFabric accepts.
func (f FabricSpec) String() string {
	if f.raw == "" {
		return "omnipath"
	}
	return f.raw
}

// Hierarchical reports whether the entry is a two-level fabric.
func (f FabricSpec) Hierarchical() bool { return f.hier != nil }

// Effective returns the alpha-beta fabric a study over ranks processes
// analyses under: flat entries return their parameters, hierarchical
// ones flatten through network.Hierarchical.Effective.
func (f FabricSpec) Effective(ranks int) network.Fabric {
	switch {
	case f.hier != nil:
		return f.hier.Effective(ranks)
	case f.flat != nil:
		return *f.flat
	default:
		return network.OmniPath()
	}
}

// Fabric defaults shared by ParseFabric: the flat default overhead
// matches the CLI's fabric flags; the intra-node defaults model a
// 50 GB/s shared-memory transport; the inter-node defaults are the
// paper's Omni-Path.
const (
	defaultFlatOverheadUs = 0.3
	defaultIntraLatencyUs = 0.2
	defaultIntraGBs       = 50
	defaultIntraOverhead  = 0.1
)

// ParseFabric reads a fabric-axis entry:
//
//	omnipath
//	flat:latency-us=L,gbs=B[,overhead-us=O]
//	hier:ranks-per-node=N[,congestion=C][,intra-latency-us=][,intra-gbs=]
//	     [,intra-overhead-us=][,inter-latency-us=][,inter-gbs=][,inter-overhead-us=]
//
// hier defaults: a 50 GB/s, 0.2 us intra-node level over the paper's
// Omni-Path inter-node parameters, congestion 1. The returned spec's
// String() is canonical with every parameter spelled out.
func ParseFabric(text string) (FabricSpec, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "omnipath" {
		return FabricSpec{}, nil
	}
	kind, rest, _ := strings.Cut(text, ":")
	switch kind {
	case "flat":
		p, err := params("fabric flat", rest, map[string]bool{"latency-us": true, "gbs": true, "overhead-us": false})
		if err != nil {
			return FabricSpec{}, err
		}
		overhead, ok := p["overhead-us"]
		if !ok {
			overhead = defaultFlatOverheadUs
		}
		f := network.Fabric{
			LatencySec:           p["latency-us"] * 1e-6,
			BandwidthBytesPerSec: p["gbs"] * 1e9,
			OverheadSec:          overhead * 1e-6,
		}
		if err := f.Validate(); err != nil {
			return FabricSpec{}, fmt.Errorf("scenario: fabric %q: %w", text, err)
		}
		return FabricSpec{
			raw:  fmt.Sprintf("flat:latency-us=%s,gbs=%s,overhead-us=%s", fnum(p["latency-us"]), fnum(p["gbs"]), fnum(overhead)),
			flat: &f,
		}, nil
	case "hier":
		p, err := params("fabric hier", rest, map[string]bool{
			"ranks-per-node": true, "congestion": false,
			"intra-latency-us": false, "intra-gbs": false, "intra-overhead-us": false,
			"inter-latency-us": false, "inter-gbs": false, "inter-overhead-us": false,
		})
		if err != nil {
			return FabricSpec{}, err
		}
		get := func(key string, def float64) float64 {
			if v, ok := p[key]; ok {
				return v
			}
			return def
		}
		omni := network.OmniPath()
		// Work in the spec's microsecond/GB units and render the canonical
		// string from those values: FormatFloat(-1) round-trips exactly, so
		// the canonical form is a parse fixed point (a seconds -> us back
		// conversion would not be).
		congestion := get("congestion", 1)
		intraLat := get("intra-latency-us", defaultIntraLatencyUs)
		intraGbs := get("intra-gbs", defaultIntraGBs)
		intraOvh := get("intra-overhead-us", defaultIntraOverhead)
		interLat := get("inter-latency-us", omni.LatencySec*1e6)
		interGbs := get("inter-gbs", omni.BandwidthBytesPerSec*1e-9)
		interOvh := get("inter-overhead-us", omni.OverheadSec*1e6)
		h := network.Hierarchical{
			Intra: network.Fabric{
				LatencySec:           intraLat * 1e-6,
				BandwidthBytesPerSec: intraGbs * 1e9,
				OverheadSec:          intraOvh * 1e-6,
			},
			Inter: network.Fabric{
				LatencySec:           interLat * 1e-6,
				BandwidthBytesPerSec: interGbs * 1e9,
				OverheadSec:          interOvh * 1e-6,
			},
			RanksPerNode: int(p["ranks-per-node"]),
			Congestion:   congestion,
		}
		if float64(h.RanksPerNode) != p["ranks-per-node"] {
			return FabricSpec{}, fmt.Errorf("scenario: fabric %q: ranks-per-node must be an integer", text)
		}
		if err := h.Validate(); err != nil {
			return FabricSpec{}, fmt.Errorf("scenario: fabric %q: %w", text, err)
		}
		return FabricSpec{
			raw: fmt.Sprintf("hier:ranks-per-node=%d,congestion=%s,intra-latency-us=%s,intra-gbs=%s,intra-overhead-us=%s,inter-latency-us=%s,inter-gbs=%s,inter-overhead-us=%s",
				h.RanksPerNode, fnum(congestion),
				fnum(intraLat), fnum(intraGbs), fnum(intraOvh),
				fnum(interLat), fnum(interGbs), fnum(interOvh)),
			hier: &h,
		}, nil
	default:
		return FabricSpec{}, fmt.Errorf("scenario: unknown fabric %q (want omnipath, flat:... or hier:...)", kind)
	}
}

// Validate checks the spec's declarations without compiling: every
// source well-formed and unique, no duplicate axis entries (an axis is a
// set — listing a cell twice would make "covers exactly the declared
// cross-product" ambiguous).
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if len(s.Sources) == 0 {
		return fmt.Errorf("scenario: spec needs at least one source")
	}
	seenSrc := map[string]bool{}
	for i, src := range s.Sources {
		if err := src.validate(); err != nil {
			return err
		}
		k := src.key(i)
		if src.CSV == "" && seenSrc[k] {
			return fmt.Errorf("scenario: duplicate source %s", k)
		}
		seenSrc[k] = true
	}
	checkDup := func(axis string, keys []string) error {
		seen := map[string]bool{}
		for _, k := range keys {
			if seen[k] {
				return fmt.Errorf("scenario: duplicate %s entry %q", axis, k)
			}
			seen[k] = true
		}
		return nil
	}
	geoms := make([]string, len(s.Geometries))
	for i, g := range s.Geometries {
		geoms[i] = cliopts.FormatGeometry(g)
	}
	if err := checkDup("geometry", geoms); err != nil {
		return err
	}
	noises := make([]string, len(s.Noise))
	for i, n := range s.Noise {
		noises[i] = n.String()
	}
	if err := checkDup("noise", noises); err != nil {
		return err
	}
	fabrics := make([]string, len(s.Fabrics))
	for i, f := range s.Fabrics {
		fabrics[i] = f.String()
	}
	if err := checkDup("fabric", fabrics); err != nil {
		return err
	}
	dlbs := make([]string, len(s.DLB))
	for i, d := range s.DLB {
		dlbs[i] = d.String()
	}
	if err := checkDup("dlb", dlbs); err != nil {
		return err
	}
	timeouts := make([]string, len(s.BinTimeoutsSec))
	for i, t := range s.BinTimeoutsSec {
		if t <= 0 {
			return fmt.Errorf("scenario: bin timeout %g ms must be positive", t*1e3)
		}
		timeouts[i] = fnum(t)
	}
	if err := checkDup("bin timeout", timeouts); err != nil {
		return err
	}
	if s.Alpha < 0 || s.Alpha >= 1 {
		return fmt.Errorf("scenario: alpha %g outside [0, 1)", s.Alpha)
	}
	if s.LaggardThresholdSec < 0 || s.BytesPerPartition < 0 {
		return fmt.Errorf("scenario: negative analysis parameter")
	}
	return nil
}
