package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"earlybird/internal/cliopts"
)

// Wire renders the spec as the JSON document form Parse reads back, with
// every path-backed trace source inlined (paths resolved relative to
// baseDir, the scenario file's directory) — the body a client POSTs to
// /v1/scenario, where server-side file paths are refused. Axis entries
// render as their canonical strings, so Parse(Wire(s)) decodes to the
// same spec with CSVs inlined.
func (s *Spec) Wire(baseDir string) ([]byte, error) {
	doc := map[string]any{"name": s.Name}
	if s.Description != "" {
		doc["description"] = s.Description
	}

	srcs := make([]any, 0, len(s.Sources))
	for _, src := range s.Sources {
		switch {
		case src.App != "":
			srcs = append(srcs, map[string]any{"app": src.App})
		case src.CSV != "":
			srcs = append(srcs, map[string]any{"csv": src.CSV})
		default:
			path := src.Trace
			if baseDir != "" && !filepath.IsAbs(path) {
				path = filepath.Join(baseDir, path)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("scenario: inlining trace source: %w", err)
			}
			srcs = append(srcs, map[string]any{"csv": string(data)})
		}
	}
	doc["sources"] = srcs

	if len(s.Geometries) > 0 {
		geoms := make([]string, len(s.Geometries))
		for i, g := range s.Geometries {
			geoms[i] = cliopts.FormatGeometry(g)
		}
		doc["geometries"] = geoms
	}
	if len(s.Noise) > 0 {
		entries := make([]string, len(s.Noise))
		for i, n := range s.Noise {
			entries[i] = n.String()
		}
		doc["noise"] = entries
	}
	if len(s.Fabrics) > 0 {
		entries := make([]string, len(s.Fabrics))
		for i, f := range s.Fabrics {
			entries[i] = f.String()
		}
		doc["fabrics"] = entries
	}
	if len(s.DLB) > 0 {
		entries := make([]string, len(s.DLB))
		for i, d := range s.DLB {
			entries[i] = d.String()
		}
		doc["dlb"] = entries
	}
	if len(s.BinTimeoutsSec) > 0 {
		entries := make([]string, len(s.BinTimeoutsSec))
		for i, t := range s.BinTimeoutsSec {
			entries[i] = fnum(t * 1e3)
		}
		doc["bin_timeouts_ms"] = entries
	}
	if s.Alpha != 0 {
		doc["alpha"] = fnum(s.Alpha)
	}
	if s.LaggardThresholdSec != 0 {
		doc["laggard_ms"] = fnum(s.LaggardThresholdSec * 1e3)
	}
	if s.BytesPerPartition != 0 {
		doc["part_bytes"] = fnum(float64(s.BytesPerPartition))
	}
	return json.Marshal(doc)
}
