package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// exampleDir is the checked-in example scenarios, relative to this
// package's directory (the test working directory).
const exampleDir = "../../examples/scenarios"

// TestExampleScenarioGolden compiles the checked-in example scenario and
// pins its campaign plan byte-for-byte: the compiler's expansion order
// is deterministic, so any drift in ordering, canonicalisation or the
// coverage contract shows up as a golden diff. Regenerate with
//
//	go test ./internal/scenario -run ExampleScenarioGolden -update
//
// after an intentional change. The test doubles as validation that the
// example in examples/scenarios/ stays parseable and verifiable.
func TestExampleScenarioGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(exampleDir, "quick.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile(CompileOptions{BaseDir: exampleDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(); err != nil {
		t.Fatal(err)
	}

	got := []byte(c.Plan())
	path := filepath.Join("testdata", "quick_plan.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("compiled plan diverged from %s.\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}
