package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLBasics(t *testing.T) {
	doc := `
# a scenario
name: demo
description: "quoted: with a colon"
sources:
  - app: minife
  - minimd        # bare scalar item
  - trace: runs/a.csv
geometries: [quick, 3x4x60x48@7]
noise:
  - none
  - burst:rate=2,mean-ms=5,factor=3
alpha: 0.01
`
	got, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":        "demo",
		"description": "quoted: with a colon",
		"sources": []any{
			map[string]any{"app": "minife"},
			"minimd",
			map[string]any{"trace": "runs/a.csv"},
		},
		"geometries": []any{"quick", "3x4x60x48@7"},
		"noise":      []any{"none", "burst:rate=2,mean-ms=5,factor=3"},
		"alpha":      "0.01",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestParseYAMLNestedSequenceItems(t *testing.T) {
	doc := `
items:
  - app: minife
    extra: "1"
  -
    app: minimd
`
	got, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"items": []any{
		map[string]any{"app": "minife", "extra": "1"},
		map[string]any{"app": "minimd"},
	}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestParseYAMLScalarShapes(t *testing.T) {
	// Axis-entry scalars contain colons without a space; they must stay
	// scalars, not become nested mappings.
	doc := `
fabrics:
  - flat:latency-us=1,gbs=12.5
  - "omnipath"
empty: []
quoted: 'single # not a comment'
`
	got, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"fabrics": []any{"flat:latency-us=1,gbs=12.5", "omnipath"},
		"empty":   []any{},
		"quoted":  "single # not a comment",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parse mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := map[string]string{
		"tab indent":         "name: x\n\tbad: y",
		"duplicate key":      "a: 1\na: 2",
		"bare text":          "just some text with no colon",
		"dash in mapping":    "a: 1\n- item",
		"deeper under value": "a: 1\n    b: 2",
		"empty doc":          "# only a comment\n",
	}
	for name, doc := range cases {
		if _, err := parseYAML([]byte(doc)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseDetectsJSON(t *testing.T) {
	spec, err := Parse([]byte(`  {"name": "j", "sources": [{"app": "minife"}], "alpha": 0.01}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "j" || len(spec.Sources) != 1 || spec.Sources[0].App != "minife" || spec.Alpha != 0.01 {
		t.Fatalf("JSON spec decoded wrong: %+v", spec)
	}
	if _, err := Parse([]byte(`{"name": "j", "sources": [{"app": "minife"}], "nope": 1}`)); err == nil || !strings.Contains(err.Error(), "unknown key") {
		t.Fatalf("unknown JSON key not rejected: %v", err)
	}
}

func TestParseYAMLAndJSONAgree(t *testing.T) {
	yaml := `
name: agree
sources:
  - app: minife
geometries: [quick]
noise: [none, "burst:rate=2,mean-ms=5,factor=3"]
dlb: [static, lewi]
bin_timeouts_ms: [1, 5]
alpha: 0.01
laggard_ms: 2
part_bytes: 65536
`
	jsonDoc := `{
  "name": "agree",
  "sources": [{"app": "minife"}],
  "geometries": ["quick"],
  "noise": ["none", "burst:rate=2,mean-ms=5,factor=3"],
  "dlb": ["static", "lewi"],
  "bin_timeouts_ms": [1, 5],
  "alpha": 0.01,
  "laggard_ms": 2,
  "part_bytes": 65536
}`
	a, err := Parse([]byte(yaml))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(jsonDoc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("YAML and JSON disagree:\nyaml %+v\njson %+v", a, b)
	}
}
