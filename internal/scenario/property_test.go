package scenario

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"earlybird/internal/cliopts"
	"earlybird/internal/dlb"
	"earlybird/internal/trace"
)

// propTraceCSV is a small valid trace shared by the random specs.
var propTraceCSV = func() string {
	d := trace.NewDataset("prop-trace", 1, 2, 3, 2)
	for trial := 0; trial < d.Trials; trial++ {
		for rank := 0; rank < d.Ranks; rank++ {
			for iter := 0; iter < d.Iterations; iter++ {
				for th := 0; th < d.Threads; th++ {
					d.Times[trial][rank][iter][th] = 0.001 * float64(1+rank+iter+th)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		panic(err)
	}
	return buf.String()
}()

// randomSpec draws a scenario from pools of valid axis entries. Axis
// subsets are drawn without replacement so the spec always validates;
// empty axes exercise the compiler's defaulting.
func randomSpec(t *testing.T, r *rand.Rand) *Spec {
	t.Helper()
	pick := func(pool []string, max int) []string {
		n := r.Intn(max + 1)
		idx := r.Perm(len(pool))
		out := make([]string, 0, n)
		for _, i := range idx[:min(n, len(pool))] {
			out = append(out, pool[i])
		}
		return out
	}
	s := &Spec{Name: fmt.Sprintf("prop-%d", r.Int())}

	apps := []string{"minife", "minimd", "miniqmc"}
	for _, i := range r.Perm(len(apps))[:1+r.Intn(len(apps))] {
		s.Sources = append(s.Sources, Source{App: apps[i]})
	}
	if r.Intn(2) == 0 {
		s.Sources = append(s.Sources, Source{CSV: propTraceCSV})
	}

	for _, g := range pick([]string{"quick", "2x4x10x8", "paper@7", "1x2x5x4"}, 3) {
		cfg, err := cliopts.ParseGeometry(g)
		if err != nil {
			t.Fatal(err)
		}
		s.Geometries = append(s.Geometries, cfg)
	}
	for _, n := range pick([]string{
		"none",
		"burst:rate=2,mean-ms=5,factor=3",
		"interrupt:rate=100,cost-us=50",
		"slowdown:prob=0.25,factor=2",
	}, 3) {
		ns, err := ParseNoise(n)
		if err != nil {
			t.Fatal(err)
		}
		s.Noise = append(s.Noise, ns)
	}
	for _, f := range pick([]string{
		"omnipath",
		"flat:latency-us=1,gbs=10",
		"hier:ranks-per-node=4,congestion=2",
		"hier:ranks-per-node=2",
	}, 3) {
		fs, err := ParseFabric(f)
		if err != nil {
			t.Fatal(err)
		}
		s.Fabrics = append(s.Fabrics, fs)
	}
	for _, d := range pick([]string{"static", "lewi", "drom"}, 2) {
		ds, err := dlb.Parse(d)
		if err != nil {
			t.Fatal(err)
		}
		s.DLB = append(s.DLB, ds)
	}
	for _, ms := range pick([]string{"1", "5", "0.5"}, 2) {
		var v float64
		fmt.Sscanf(ms, "%g", &v)
		s.BinTimeoutsSec = append(s.BinTimeoutsSec, v*1e-3)
	}
	return s
}

// expectedCells recomputes the cross-product size by the contract,
// independent of both the compiler and the verifier.
func expectedCells(s *Spec) int {
	or1 := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	apps, traces := 0, 0
	for _, src := range s.Sources {
		if src.IsApp() {
			apps++
		} else {
			traces++
		}
	}
	ft := or1(len(s.Fabrics)) * or1(len(s.BinTimeoutsSec))
	return apps*or1(len(s.Geometries))*or1(len(s.Noise))*or1(len(s.DLB))*ft + traces*ft
}

// TestVerifyProperty: every random spec compiles into a campaign the
// verifier accepts, with exactly the contract's cell count.
func TestVerifyProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 200; trial++ {
		s := randomSpec(t, r)
		c, err := s.Compile(CompileOptions{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nspec %+v", trial, err, s)
		}
		want := expectedCells(s)
		if len(c.Cells) != want {
			t.Fatalf("trial %d: %d cells, contract says %d", trial, len(c.Cells), want)
		}
		cov, err := c.Verify()
		if err != nil {
			t.Fatalf("trial %d: verify: %v", trial, err)
		}
		if cov.Cells != want {
			t.Fatalf("trial %d: coverage %d != %d", trial, cov.Cells, want)
		}
	}
}

// reindex restores the Index invariant after a structural mutation so
// Verify fails on coverage, not on bookkeeping.
func reindex(cells []Cell) []Cell {
	for i := range cells {
		cells[i].Index = i
	}
	return cells
}

// TestVerifyCatchesMutations: the verifier is not a rubber stamp — a
// campaign with a hole, a duplicate, or a cell whose engine spec drifted
// from its declared coordinates must fail.
func TestVerifyCatchesMutations(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	caught := map[string]int{}
	for trial := 0; trial < 100; trial++ {
		s := randomSpec(t, r)
		c, err := s.Compile(CompileOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Cells) == 0 {
			continue
		}
		i := r.Intn(len(c.Cells))
		mutants := map[string][]Cell{
			"hole":      reindex(append(append([]Cell{}, c.Cells[:i]...), c.Cells[i+1:]...)),
			"duplicate": reindex(append(append([]Cell{}, c.Cells...), c.Cells[i])),
		}
		// Drift: the spec no longer matches the declared coordinate.
		drift := append([]Cell{}, c.Cells...)
		drift[i].Spec.BinTimeoutSec += 1e-4
		mutants["drift"] = drift
		// Undeclared: a coordinate outside the cross-product.
		undeclared := append([]Cell{}, c.Cells...)
		undeclared[i].BinTimeoutSec = 0.123
		undeclared[i].Spec.BinTimeoutSec = 0.123
		mutants["undeclared"] = undeclared

		for name, cells := range mutants {
			m := &Compiled{Spec: s, Cells: cells}
			if _, err := m.Verify(); err == nil {
				t.Fatalf("trial %d: %s mutation passed verification", trial, name)
			}
			caught[name]++
		}
	}
	for _, name := range []string{"hole", "duplicate", "drift", "undeclared"} {
		if caught[name] == 0 {
			t.Errorf("mutation %s never exercised", name)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
