// Package scenario is the declarative front end of the study stack: a
// small spec (YAML or JSON) declaring what to study — workload or
// trace-replay sources, a geometry grid, noise models, network fabrics,
// DLB policies, delivery timeouts — compiled into the engine's campaign
// form, with a verifier proving the compiled campaign covers exactly the
// declared cross-product.
//
// The shape follows Mars 2.0 (see PAPERS.md): models are declared,
// verified, and compiled rather than hand-wired. A scenario is data, so
// the same file drives the CLI (earlybird -scenario), the service
// (POST /v1/scenario) and federated fleet execution, and the verifier —
// not the author — is what guarantees the campaign has no holes and no
// duplicates (the same ethos as the fleet's merge-exactness property
// tests).
//
// Coverage contract. The declared cross-product is per source kind:
//
//   - an application source crosses geometries x noise x dlb x
//     fabrics x bin timeouts;
//   - a trace-replay source is a pre-collected dataset, so the
//     geometry, noise and dlb axes do not apply: it crosses
//     fabrics x bin timeouts only.
//
// Verify recomputes that expected set from the spec by an independent
// enumeration and checks the compiled cells cover it bijectively,
// cross-checking each cell's engine spec (model name, geometry,
// flattened fabric, timeout, policy) against its declared coordinates.
package scenario
