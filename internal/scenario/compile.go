package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"earlybird/internal/cliopts"
	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/engine"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

// Cell is one compiled point of the campaign: the declared coordinates
// plus the engine spec they compile to. The coordinates are kept so the
// verifier (and the plan rendering) can cross-check the spec against
// what the scenario declared, not against the compiler's own arithmetic.
type Cell struct {
	// Index is the cell's position in Compiled.Cells and in the campaign.
	Index int
	// Source identifies the workload; SourceKey is its canonical name.
	Source    Source
	SourceKey string
	// Geometry is the declared geometry ("" for trace sources, which
	// carry their own shape).
	Geometry string
	// Noise is the canonical noise entry ("" for trace sources).
	Noise string
	// DLB is the canonical policy name ("" for trace sources).
	DLB string
	// Fabric is the canonical fabric entry.
	Fabric string
	// BinTimeoutSec is the declared delivery timeout.
	BinTimeoutSec float64
	// Spec is the compiled engine spec, unresolved (defaults left to
	// engine.Resolve so compiled specs coalesce with hand-written ones).
	Spec engine.Spec
}

// Compiled is the campaign a scenario compiles to.
type Compiled struct {
	Spec  *Spec
	Cells []Cell
}

// CompileOptions parameterises compilation. The zero value reads trace
// sources from the filesystem.
type CompileOptions struct {
	// LoadTrace loads a trace source's dataset. Nil means: parse
	// Source.CSV inline, else read Source.Trace from disk. The serve
	// layer substitutes a loader that rejects server-side paths.
	LoadTrace func(Source) (*trace.Dataset, error)
	// BaseDir anchors relative Source.Trace paths (the default loader
	// only); the CLI passes the scenario file's directory so a scenario
	// can name its trace relative to itself. Empty means the process's
	// working directory.
	BaseDir string
}

// loadTrace is the default loader.
func (opts CompileOptions) loadTrace(src Source) (*trace.Dataset, error) {
	if src.CSV != "" {
		return trace.ReadCSV(strings.NewReader(src.CSV))
	}
	path := src.Trace
	if opts.BaseDir != "" && !filepath.IsAbs(path) {
		path = filepath.Join(opts.BaseDir, path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: trace source: %w", err)
	}
	defer f.Close()
	ds, err := trace.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: trace source %s: %w", src.Trace, err)
	}
	return ds, nil
}

// axes returns the spec's axes with empty ones defaulted: one
// paper-geometry point, no noise, the Omni-Path fabric, the static
// policy, the paper's 1 ms delivery timeout.
func (s *Spec) axes() (geoms []cluster.Config, noises []NoiseSpec, dlbs []dlb.Spec, fabrics []FabricSpec, timeouts []float64) {
	geoms = s.Geometries
	if len(geoms) == 0 {
		geoms = []cluster.Config{cluster.DefaultConfig()}
	}
	noises = s.Noise
	if len(noises) == 0 {
		noises = []NoiseSpec{{}}
	}
	dlbs = s.DLB
	if len(dlbs) == 0 {
		dlbs = []dlb.Spec{{}}
	}
	fabrics = s.Fabrics
	if len(fabrics) == 0 {
		fabrics = []FabricSpec{{}}
	}
	timeouts = s.BinTimeoutsSec
	if len(timeouts) == 0 {
		timeouts = []float64{1e-3}
	}
	return
}

// Compile validates the spec and expands it into the campaign cells of
// the declared cross-product, in deterministic order: source-major, then
// geometry, noise, dlb, fabric, timeout. Application sources cross every
// axis; trace sources are pre-collected datasets, so they cross only
// fabrics x timeouts (see the package comment's coverage contract).
func (s *Spec) Compile(opts CompileOptions) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	load := opts.LoadTrace
	if load == nil {
		load = opts.loadTrace
	}
	geoms, noises, dlbs, fabrics, timeouts := s.axes()

	var cells []Cell
	add := func(c Cell) {
		c.Index = len(cells)
		cells = append(cells, c)
	}
	for si, src := range s.Sources {
		if src.IsApp() {
			if _, err := workload.ByName(src.App); err != nil {
				return nil, fmt.Errorf("scenario: source %s: %w", src.key(si), err)
			}
			for _, g := range geoms {
				for _, n := range noises {
					for _, d := range dlbs {
						for _, f := range fabrics {
							for _, t := range timeouts {
								sp := engine.Spec{
									Geometry:            g,
									Alpha:               s.Alpha,
									LaggardThresholdSec: s.LaggardThresholdSec,
									BytesPerPartition:   s.BytesPerPartition,
									Fabric:              f.Effective(g.Ranks),
									BinTimeoutSec:       t,
									DLB:                 d,
								}
								if n.IsNone() {
									// Bare app specs stay wire-expressible:
									// the fleet can dispatch them by name.
									sp.App = src.App
								} else {
									base, _ := workload.ByName(src.App)
									sp.Model = &workload.Noisy{
										Base:   base,
										Noise:  n.Model(),
										Suffix: "+" + n.String(),
									}
								}
								add(Cell{
									Source: src, SourceKey: src.key(si),
									Geometry: cliopts.FormatGeometry(g),
									Noise:    n.String(), DLB: d.String(),
									Fabric: f.String(), BinTimeoutSec: t,
									Spec: sp,
								})
							}
						}
					}
				}
			}
			continue
		}
		ds, err := load(src)
		if err != nil {
			return nil, err
		}
		for _, f := range fabrics {
			for _, t := range timeouts {
				add(Cell{
					Source: src, SourceKey: src.key(si),
					Fabric: f.String(), BinTimeoutSec: t,
					Spec: engine.Spec{
						Dataset:             ds,
						Alpha:               s.Alpha,
						LaggardThresholdSec: s.LaggardThresholdSec,
						BytesPerPartition:   s.BytesPerPartition,
						Fabric:              f.Effective(ds.Ranks),
						BinTimeoutSec:       t,
					},
				})
			}
		}
	}
	return &Compiled{Spec: s, Cells: cells}, nil
}

// EngineSpecs returns the cells' engine specs in campaign order.
func (c *Compiled) EngineSpecs() []engine.Spec {
	specs := make([]engine.Spec, len(c.Cells))
	for i, cell := range c.Cells {
		specs[i] = cell.Spec
	}
	return specs
}

// coord renders a cell's declared coordinates as the coverage key the
// verifier enumerates; "-" marks axes that do not apply to the source.
func (c Cell) coord() string {
	geom, noiseStr, dlbStr := c.Geometry, c.Noise, c.DLB
	if !c.Source.IsApp() {
		geom, noiseStr, dlbStr = "-", "-", "-"
	}
	return strings.Join([]string{
		c.SourceKey, geom, noiseStr, dlbStr, c.Fabric, fnum(c.BinTimeoutSec),
	}, " | ")
}

// Plan renders the compiled campaign as deterministic text: a header
// with the scenario name and cell count, then one line per cell in
// campaign order. It is the golden-file form and the -scenario-check
// output — stable across runs by construction, because the compiler's
// expansion order is deterministic.
func (c *Compiled) Plan() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d cells\n", c.Spec.Name, len(c.Cells))
	for _, cell := range c.Cells {
		fmt.Fprintf(&b, "%3d  %s\n", cell.Index, cell.coord())
	}
	return b.String()
}

// Summary condenses the campaign for logs: cell count plus per-axis
// cardinalities actually used.
func (c *Compiled) Summary() string {
	srcs := map[string]bool{}
	for _, cell := range c.Cells {
		srcs[cell.SourceKey] = true
	}
	names := make([]string, 0, len(srcs))
	for k := range srcs {
		names = append(names, k)
	}
	sort.Strings(names)
	return fmt.Sprintf("%d cells over %d sources (%s)", len(c.Cells), len(names), strings.Join(names, ", "))
}
