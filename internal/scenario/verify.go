package scenario

import (
	"fmt"
	"sort"
	"strings"

	"earlybird/internal/cliopts"
)

// Coverage is the verifier's accounting: the expected cross-product size
// per source plus the totals it checked.
type Coverage struct {
	// Cells is the number of compiled cells, equal to the expected
	// cross-product size when Verify succeeds.
	Cells int
	// Sources maps each source key to its expected cell count.
	Sources map[string]int
	// UniqueSpecs counts distinct engine SpecKeys across the campaign —
	// the number of executions after dedup. It can be smaller than Cells
	// when declared coordinates collapse (e.g. two fabrics whose
	// hierarchical flattening coincides at every declared geometry);
	// coverage of the declared product is still exact.
	UniqueSpecs int
}

// Verify proves the compiled campaign covers exactly the declared
// cross-product: every expected coordinate appears in exactly one cell
// (no holes, no duplicates, nothing undeclared), and each cell's engine
// spec matches its declared coordinates (right model name, geometry,
// flattened fabric, policy and timeout). The expected set is enumerated
// independently of the compiler — different loop nesting, coordinates
// recomputed from the spec — so a compiler bug cannot hide by erring
// identically on both sides of the comparison.
func (c *Compiled) Verify() (Coverage, error) {
	cov := Coverage{Sources: map[string]int{}}
	if c.Spec == nil {
		return cov, fmt.Errorf("scenario: compiled campaign has no spec")
	}
	if err := c.Spec.Validate(); err != nil {
		return cov, err
	}

	// Expected coordinates, enumerated axis-minor to cell-major's
	// opposite: timeouts outermost, sources innermost.
	geoms, noises, dlbs, fabrics, timeouts := c.Spec.axes()
	expected := map[string]bool{}
	addExpected := func(key string) error {
		if expected[key] {
			return fmt.Errorf("scenario: declared product self-collides on %s", key)
		}
		expected[key] = true
		return nil
	}
	for _, t := range timeouts {
		for _, f := range fabrics {
			for si, src := range c.Spec.Sources {
				if !src.IsApp() {
					key := strings.Join([]string{src.key(si), "-", "-", "-", f.String(), fnum(t)}, " | ")
					if err := addExpected(key); err != nil {
						return cov, err
					}
					cov.Sources[src.key(si)]++
					continue
				}
				for _, d := range dlbs {
					for _, n := range noises {
						for _, g := range geoms {
							key := strings.Join([]string{
								src.key(si), cliopts.FormatGeometry(g), n.String(), d.String(), f.String(), fnum(t),
							}, " | ")
							if err := addExpected(key); err != nil {
								return cov, err
							}
							cov.Sources[src.key(si)]++
						}
					}
				}
			}
		}
	}

	// Observed cells: each must claim exactly one expected coordinate,
	// and its engine spec must agree with that coordinate.
	seen := map[string]int{}
	unique := map[string]bool{}
	for i, cell := range c.Cells {
		if cell.Index != i {
			return cov, fmt.Errorf("scenario: cell %d carries index %d", i, cell.Index)
		}
		key := cell.coord()
		if prev, dup := seen[key]; dup {
			return cov, fmt.Errorf("scenario: cells %d and %d both cover %s", prev, i, key)
		}
		seen[key] = i
		if !expected[key] {
			return cov, fmt.Errorf("scenario: cell %d covers undeclared point %s", i, key)
		}
		if err := c.checkCell(cell); err != nil {
			return cov, fmt.Errorf("scenario: cell %d (%s): %w", i, key, err)
		}
		resolved, err := cell.Spec.Resolve()
		if err != nil {
			return cov, fmt.Errorf("scenario: cell %d (%s) does not resolve: %w", i, key, err)
		}
		unique[resolved.Key().StoreKey()] = true
	}
	if len(seen) != len(expected) {
		var missing []string
		for key := range expected {
			if _, ok := seen[key]; !ok {
				missing = append(missing, key)
			}
		}
		sort.Strings(missing)
		return cov, fmt.Errorf("scenario: %d declared points uncovered, first: %s", len(missing), missing[0])
	}
	cov.Cells = len(c.Cells)
	cov.UniqueSpecs = len(unique)
	return cov, nil
}

// checkCell cross-checks one cell's engine spec against its declared
// coordinates, recomputing each expectation from the declaration rather
// than trusting the compiler's arithmetic.
func (c *Compiled) checkCell(cell Cell) error {
	// Re-parse the declared fabric and timeout from their canonical
	// strings: the declaration of record is the coordinate, not the
	// FabricSpec the compiler happened to hold.
	fab, err := ParseFabric(cell.Fabric)
	if err != nil {
		return fmt.Errorf("fabric coordinate does not re-parse: %w", err)
	}
	if cell.Spec.BinTimeoutSec != cell.BinTimeoutSec {
		return fmt.Errorf("spec timeout %g != declared %g", cell.Spec.BinTimeoutSec, cell.BinTimeoutSec)
	}
	if cell.Spec.Alpha != c.Spec.Alpha || cell.Spec.LaggardThresholdSec != c.Spec.LaggardThresholdSec || cell.Spec.BytesPerPartition != c.Spec.BytesPerPartition {
		return fmt.Errorf("analysis parameters differ from the scenario's")
	}

	if !cell.Source.IsApp() {
		if cell.Spec.Dataset == nil {
			return fmt.Errorf("trace cell has no dataset")
		}
		if cell.Spec.Model != nil || cell.Spec.App != "" {
			return fmt.Errorf("trace cell also sets a model")
		}
		if want := fab.Effective(cell.Spec.Dataset.Ranks); cell.Spec.Fabric != want {
			return fmt.Errorf("fabric %+v != declared effective %+v", cell.Spec.Fabric, want)
		}
		if cell.Geometry != "" || cell.Noise != "" || cell.DLB != "" {
			return fmt.Errorf("trace cell declares app-only axes")
		}
		return nil
	}

	geom, err := cliopts.ParseGeometry(cell.Geometry)
	if err != nil {
		return fmt.Errorf("geometry coordinate does not re-parse: %w", err)
	}
	if cell.Spec.Geometry != geom {
		return fmt.Errorf("spec geometry %+v != declared %+v", cell.Spec.Geometry, geom)
	}
	if want := fab.Effective(geom.Ranks); cell.Spec.Fabric != want {
		return fmt.Errorf("fabric %+v != declared effective %+v", cell.Spec.Fabric, want)
	}
	noiseSpec, err := ParseNoise(cell.Noise)
	if err != nil {
		return fmt.Errorf("noise coordinate does not re-parse: %w", err)
	}
	if cell.Spec.DLB.String() != cell.DLB {
		return fmt.Errorf("spec policy %s != declared %s", cell.Spec.DLB.String(), cell.DLB)
	}
	if cell.Spec.Dataset != nil {
		return fmt.Errorf("app cell carries a dataset")
	}
	if noiseSpec.IsNone() {
		if cell.Spec.App != cell.Source.App || cell.Spec.Model != nil {
			return fmt.Errorf("noiseless app cell must name %q and stay wire-expressible", cell.Source.App)
		}
		return nil
	}
	// Noisy cells wrap the base model; the name encodes the noise
	// canonically so distinct parameterisations never share a cache key.
	if cell.Spec.Model == nil {
		return fmt.Errorf("noisy cell has no model")
	}
	want := cell.Source.App + "+" + noiseSpec.String()
	if got := cell.Spec.Model.Name(); got != want {
		return fmt.Errorf("model name %q != %q", got, want)
	}
	return nil
}
