package scenario

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/engine"
	"earlybird/internal/network"
	"earlybird/internal/trace"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// engineDefaultSpec is the fully defaulted study the serve layer would
// run for a bare app request.
func engineDefaultSpec(app string) (engine.Spec, error) {
	return engine.Spec{App: app}.Resolve()
}

func TestParseNoiseCanonical(t *testing.T) {
	// Reordered, re-spelled parameters land on one canonical string.
	a, err := ParseNoise("burst:factor=3.0,rate=2,mean-ms=5.0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseNoise("burst:rate=2,mean-ms=5,factor=3")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() || a.String() != "burst:rate=2,mean-ms=5,factor=3" {
		t.Fatalf("canonical forms differ: %q vs %q", a, b)
	}
	if n, err := ParseNoise("none"); err != nil || !n.IsNone() || n.String() != "none" {
		t.Fatalf("none: %v %v", n, err)
	}
	for _, bad := range []string{
		"burst:rate=2",                            // missing required params
		"burst:rate=0,mean-ms=5,factor=3",         // rate must be positive
		"burst:rate=2,mean-ms=5,factor=1",         // factor must exceed 1
		"burst:rate=2,mean-ms=5,factor=3,x=1",     // unknown param
		"daemon:period-ms=1,cost-us=1,affinity=2", // affinity > 1
		"gauss:sigma=1",                           // unknown model
	} {
		if _, err := ParseNoise(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseFabricCanonical(t *testing.T) {
	f, err := ParseFabric("hier:ranks-per-node=4,congestion=1.5")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Hierarchical() {
		t.Fatal("hier spec not hierarchical")
	}
	// The canonical form spells out every default; re-parsing it is a
	// fixed point.
	again, err := ParseFabric(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != f.String() {
		t.Fatalf("canonical form not a fixed point: %q -> %q", f, again)
	}
	// Flattening matches network.Hierarchical directly.
	want := network.Hierarchical{
		Intra:        network.Fabric{LatencySec: 0.2e-6, BandwidthBytesPerSec: 50e9, OverheadSec: 0.1e-6},
		Inter:        network.OmniPath(),
		RanksPerNode: 4,
		Congestion:   1.5,
	}
	if got := f.Effective(8); got != want.Effective(8) {
		t.Fatalf("effective fabric %+v != %+v", got, want.Effective(8))
	}
	// Flat entries and the default.
	flat, err := ParseFabric("flat:gbs=12.5,latency-us=1")
	if err != nil {
		t.Fatal(err)
	}
	if flat.String() != "flat:latency-us=1,gbs=12.5,overhead-us=0.3" {
		t.Fatalf("flat canonical = %q", flat)
	}
	if def, err := ParseFabric("omnipath"); err != nil || def.Effective(8) != network.OmniPath() {
		t.Fatalf("omnipath default wrong: %v %v", def, err)
	}
	for _, bad := range []string{
		"flat:latency-us=1",                    // missing bandwidth
		"flat:latency-us=-1,gbs=1",             // invalid fabric
		"hier:congestion=2",                    // missing ranks-per-node
		"hier:ranks-per-node=2.5",              // non-integer
		"hier:ranks-per-node=4,congestion=0.5", // congestion < 1
		"mesh:dim=3",                           // unknown kind
	} {
		if _, err := ParseFabric(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	app := Source{App: "minife"}
	mk := func(mut func(*Spec)) *Spec {
		s := &Spec{Name: "v", Sources: []Source{app}}
		mut(s)
		return s
	}
	burst, _ := ParseNoise("burst:rate=2,mean-ms=5,factor=3")
	cases := map[string]*Spec{
		"no name":    mk(func(s *Spec) { s.Name = "" }),
		"no sources": mk(func(s *Spec) { s.Sources = nil }),
		"two-backing source": mk(func(s *Spec) {
			s.Sources = []Source{{App: "minife", Trace: "x.csv"}}
		}),
		"duplicate source": mk(func(s *Spec) { s.Sources = []Source{app, app} }),
		"duplicate geometry": mk(func(s *Spec) {
			s.Geometries = []cluster.Config{cluster.SmallConfig(), cluster.SmallConfig()}
		}),
		"duplicate noise": mk(func(s *Spec) { s.Noise = []NoiseSpec{burst, burst} }),
		"duplicate dlb": mk(func(s *Spec) {
			s.DLB = []dlb.Spec{{Policy: "lewi"}, {Policy: "lewi"}}
		}),
		"nonpositive timeout": mk(func(s *Spec) { s.BinTimeoutsSec = []float64{0} }),
		"alpha out of range":  mk(func(s *Spec) { s.Alpha = 1 }),
		"negative laggard":    mk(func(s *Spec) { s.LaggardThresholdSec = -1 }),
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if err := mk(func(*Spec) {}).Validate(); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
}

// testTrace renders a small dataset as CSV for trace-source tests.
func testTrace(t *testing.T, app string, ranks int) string {
	t.Helper()
	d := trace.NewDataset(app, 1, ranks, 2, 2)
	for trial := 0; trial < d.Trials; trial++ {
		for rank := 0; rank < d.Ranks; rank++ {
			for iter := 0; iter < d.Iterations; iter++ {
				for th := 0; th < d.Threads; th++ {
					d.Times[trial][rank][iter][th] = 0.001 * float64(1+rank+th)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCompileCrossProduct(t *testing.T) {
	spec, err := Parse([]byte(`
name: cross
sources:
  - app: minife
  - app: minimd
geometries: [quick, 2x4x10x8]
noise: [none, "burst:rate=2,mean-ms=5,factor=3"]
dlb: [static, lewi]
fabrics: [omnipath, "hier:ranks-per-node=4,congestion=2"]
bin_timeouts_ms: [1, 5]
`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 apps x 2 geometries x 2 noise x 2 dlb x 2 fabrics x 2 timeouts.
	if len(c.Cells) != 64 {
		t.Fatalf("got %d cells, want 64", len(c.Cells))
	}
	cov, err := c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if cov.Cells != 64 || cov.Sources["app:minife"] != 32 || cov.Sources["app:minimd"] != 32 {
		t.Fatalf("coverage %+v", cov)
	}
	// Noiseless cells stay wire-expressible (App set, no Model); noisy
	// cells carry a wrapped model with the canonical suffix.
	for _, cell := range c.Cells {
		if cell.Noise == "none" {
			if cell.Spec.App == "" || cell.Spec.Model != nil {
				t.Fatalf("cell %d not wire-expressible: %+v", cell.Index, cell.Spec)
			}
		} else if cell.Spec.Model == nil || !strings.Contains(cell.Spec.Model.Name(), "+burst:") {
			t.Fatalf("cell %d missing noisy model", cell.Index)
		}
	}
}

func TestCompileTraceSource(t *testing.T) {
	csv := testTrace(t, "imported", 4)
	spec := &Spec{
		Name:    "replay",
		Sources: []Source{{CSV: csv}},
		// App-only axes are declared but must not multiply trace cells.
		Geometries:     []cluster.Config{cluster.SmallConfig()},
		Noise:          []NoiseSpec{{}},
		DLB:            []dlb.Spec{{}, {Policy: "lewi"}},
		BinTimeoutsSec: []float64{1e-3, 5e-3},
	}
	c, err := spec.Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 1 trace x 1 fabric x 2 timeouts: geometry/noise/dlb do not apply.
	if len(c.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(c.Cells))
	}
	for _, cell := range c.Cells {
		if cell.Spec.Dataset == nil || cell.Spec.Dataset.App != "imported" {
			t.Fatalf("cell %d has no dataset: %+v", cell.Index, cell.Spec)
		}
	}
	if _, err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCompileTraceFromDisk(t *testing.T) {
	csv := testTrace(t, "ondisk", 2)
	path := t.TempDir() + "/run.csv"
	if err := writeFile(path, csv); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Name: "disk", Sources: []Source{{Trace: path}}}
	c, err := spec.Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Cells) != 1 || c.Cells[0].Spec.Dataset == nil {
		t.Fatalf("disk trace compiled wrong: %+v", c.Cells)
	}
	if _, err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// Missing file is a compile error, not a panic downstream.
	spec.Sources[0].Trace = path + ".missing"
	if _, err := spec.Compile(CompileOptions{}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestCompileRejectsUnknownApp(t *testing.T) {
	spec := &Spec{Name: "x", Sources: []Source{{App: "not-an-app"}}}
	if _, err := spec.Compile(CompileOptions{}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestCompileDefaultsResolveLikeHandWrittenSpecs(t *testing.T) {
	// A minimal scenario's one cell must coalesce with the plain default
	// study: same resolved SpecKey, so /v1/scenario shares cache entries
	// with /v1/study.
	spec := &Spec{Name: "min", Sources: []Source{{App: "minife"}}}
	c, err := spec.Compile(CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Cells) != 1 {
		t.Fatalf("got %d cells", len(c.Cells))
	}
	got, err := c.Cells[0].Spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := engineDefaultSpec("minife")
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != want.Key() {
		t.Fatalf("minimal scenario cell does not coalesce with the default study:\n got %+v\nwant %+v", got, want)
	}
}
