package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"earlybird/internal/cliopts"
	"earlybird/internal/dlb"
)

// Parse reads a scenario document — JSON when the first significant
// byte is '{', the YAML subset otherwise — and decodes it strictly into
// a validated Spec. Unknown keys are errors: a typoed axis name must not
// silently shrink the cross-product.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var (
		root any
		err  error
	)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		var m map[string]any
		if err = dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("scenario: bad JSON: %w", err)
		}
		root = m
	} else {
		root, err = parseYAML(data)
		if err != nil {
			return nil, err
		}
	}
	m, ok := root.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: document must be a mapping at the top level")
	}
	return specFromMap(m)
}

// specKeys is the complete key set a scenario document may use.
var specKeys = map[string]bool{
	"name": true, "description": true, "sources": true,
	"geometries": true, "noise": true, "fabrics": true, "dlb": true,
	"bin_timeouts_ms": true, "alpha": true, "laggard_ms": true, "part_bytes": true,
}

// specFromMap decodes the parsed document into a Spec and validates it.
func specFromMap(m map[string]any) (*Spec, error) {
	for k := range m {
		if !specKeys[k] {
			keys := make([]string, 0, len(specKeys))
			for a := range specKeys {
				keys = append(keys, a)
			}
			sort.Strings(keys)
			return nil, fmt.Errorf("scenario: unknown key %q (want one of: %s)", k, keysJoin(keys))
		}
	}
	var s Spec
	var err error
	if s.Name, err = optString(m, "name"); err != nil {
		return nil, err
	}
	if s.Description, err = optString(m, "description"); err != nil {
		return nil, err
	}

	srcs, err := list(m, "sources")
	if err != nil {
		return nil, err
	}
	for i, raw := range srcs {
		src, err := sourceFromValue(i, raw)
		if err != nil {
			return nil, err
		}
		s.Sources = append(s.Sources, src)
	}

	if err := eachScalar(m, "geometries", func(text string) error {
		g, err := cliopts.ParseGeometry(text)
		if err != nil {
			return fmt.Errorf("scenario: geometries: %w", err)
		}
		s.Geometries = append(s.Geometries, g)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := eachScalar(m, "noise", func(text string) error {
		n, err := ParseNoise(text)
		if err != nil {
			return err
		}
		s.Noise = append(s.Noise, n)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := eachScalar(m, "fabrics", func(text string) error {
		f, err := ParseFabric(text)
		if err != nil {
			return err
		}
		s.Fabrics = append(s.Fabrics, f)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := eachScalar(m, "dlb", func(text string) error {
		d, err := dlb.Parse(text)
		if err != nil {
			return fmt.Errorf("scenario: dlb: %w", err)
		}
		s.DLB = append(s.DLB, d)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := eachScalar(m, "bin_timeouts_ms", func(text string) error {
		ms, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fmt.Errorf("scenario: bin_timeouts_ms: bad number %q", text)
		}
		s.BinTimeoutsSec = append(s.BinTimeoutsSec, ms*1e-3)
		return nil
	}); err != nil {
		return nil, err
	}

	if s.Alpha, err = optFloat(m, "alpha"); err != nil {
		return nil, err
	}
	laggardMS, err := optFloat(m, "laggard_ms")
	if err != nil {
		return nil, err
	}
	s.LaggardThresholdSec = laggardMS * 1e-3
	partBytes, err := optFloat(m, "part_bytes")
	if err != nil {
		return nil, err
	}
	s.BytesPerPartition = int(partBytes)
	if float64(s.BytesPerPartition) != partBytes {
		return nil, fmt.Errorf("scenario: part_bytes must be an integer, got %g", partBytes)
	}

	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// sourceFromValue decodes one sources[] item: a {app:|trace:|csv:}
// mapping, or a bare string shorthand meaning an app name.
func sourceFromValue(i int, raw any) (Source, error) {
	switch v := raw.(type) {
	case string:
		return Source{App: v}, nil
	case map[string]any:
		var src Source
		for k := range v {
			switch k {
			case "app", "trace", "csv":
			default:
				return Source{}, fmt.Errorf("scenario: sources[%d]: unknown key %q (want app, trace or csv)", i, k)
			}
		}
		var err error
		if src.App, err = optString(v, "app"); err != nil {
			return Source{}, err
		}
		if src.Trace, err = optString(v, "trace"); err != nil {
			return Source{}, err
		}
		if src.CSV, err = optString(v, "csv"); err != nil {
			return Source{}, err
		}
		return src, nil
	default:
		return Source{}, fmt.Errorf("scenario: sources[%d]: expected an app name or a mapping, got %T", i, raw)
	}
}

// list fetches an optional list-valued key.
func list(m map[string]any, key string) ([]any, error) {
	v, ok := m[key]
	if !ok || v == nil {
		return nil, nil
	}
	l, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("scenario: %s must be a list, got %T", key, v)
	}
	return l, nil
}

// eachScalar iterates an optional list of scalars as canonicalised
// strings (YAML scalars arrive as strings, JSON numbers as float64).
func eachScalar(m map[string]any, key string, fn func(string) error) error {
	l, err := list(m, key)
	if err != nil {
		return err
	}
	for i, raw := range l {
		text, err := scalarString(raw)
		if err != nil {
			return fmt.Errorf("scenario: %s[%d]: %w", key, i, err)
		}
		if err := fn(text); err != nil {
			return err
		}
	}
	return nil
}

// scalarString renders one scalar value as text.
func scalarString(v any) (string, error) {
	switch x := v.(type) {
	case string:
		return x, nil
	case float64:
		return fnum(x), nil
	case bool:
		return strconv.FormatBool(x), nil
	default:
		return "", fmt.Errorf("expected a scalar, got %T", v)
	}
}

// optString fetches an optional string-valued key.
func optString(m map[string]any, key string) (string, error) {
	v, ok := m[key]
	if !ok || v == nil {
		return "", nil
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("scenario: %s must be a string, got %T", key, v)
	}
	return s, nil
}

// optFloat fetches an optional numeric key (string in YAML, float64 in
// JSON).
func optFloat(m map[string]any, key string) (float64, error) {
	v, ok := m[key]
	if !ok || v == nil {
		return 0, nil
	}
	switch x := v.(type) {
	case float64:
		return x, nil
	case string:
		f, err := strconv.ParseFloat(x, 64)
		if err != nil {
			return 0, fmt.Errorf("scenario: %s: bad number %q", key, x)
		}
		return f, nil
	default:
		return 0, fmt.Errorf("scenario: %s must be a number, got %T", key, v)
	}
}

// keysJoin renders a sorted key list for error messages.
func keysJoin(keys []string) string {
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += k
	}
	return out
}
