package scenario

// A hand-rolled parser for the YAML subset scenario files use: nested
// mappings, block sequences, inline [a, b] flow lists, double- or
// single-quoted scalars and # comments. The container ships no YAML
// dependency and the subset a scenario needs is small enough that a
// strict, line-oriented parser is clearer than a vendored grammar —
// anything outside the subset fails loudly with a line number. JSON
// scenarios bypass this entirely (Parse detects them by first byte).

import (
	"fmt"
	"strings"
)

// yline is one significant line of the document.
type yline struct {
	indent int
	text   string
	num    int // 1-based line number, for errors
}

// yparser walks the significant lines recursively.
type yparser struct {
	lines []yline
	i     int
}

// parseYAML parses the scenario YAML subset into nested
// map[string]any / []any / string values.
func parseYAML(data []byte) (any, error) {
	lines, err := ylines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("scenario: empty document")
	}
	p := &yparser{lines: lines}
	v, err := p.block(0)
	if err != nil {
		return nil, err
	}
	if p.i < len(p.lines) {
		l := p.lines[p.i]
		return nil, fmt.Errorf("scenario: line %d: unexpected indentation", l.num)
	}
	return v, nil
}

// ylines splits the document into significant lines: comments stripped,
// blanks dropped, indentation measured (spaces only).
func ylines(doc string) ([]yline, error) {
	var out []yline
	for num, raw := range strings.Split(doc, "\n") {
		line := stripComment(raw)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		indent := 0
		for _, r := range line {
			if r == ' ' {
				indent++
				continue
			}
			if r == '\t' {
				return nil, fmt.Errorf("scenario: line %d: tab in indentation (use spaces)", num+1)
			}
			break
		}
		out = append(out, yline{indent: indent, text: trimmed, num: num + 1})
	}
	return out, nil
}

// stripComment removes a # comment that starts outside quotes at the
// beginning of the line or after whitespace.
func stripComment(line string) string {
	var quote rune
	for i, r := range line {
		switch {
		case quote != 0:
			if r == quote {
				quote = 0
			}
		case r == '"' || r == '\'':
			quote = r
		case r == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t'):
			return line[:i]
		}
	}
	return line
}

// block parses the mapping or sequence starting at the current line,
// whose indent must be >= min.
func (p *yparser) block(min int) (any, error) {
	if p.i >= len(p.lines) {
		return nil, fmt.Errorf("scenario: unexpected end of document")
	}
	first := p.lines[p.i]
	if first.indent < min {
		return nil, fmt.Errorf("scenario: line %d: expected a nested block", first.num)
	}
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.sequence(first.indent)
	}
	return p.mapping(first.indent)
}

// mapping parses consecutive "key: value" lines at exactly indent base.
func (p *yparser) mapping(base int) (map[string]any, error) {
	m := map[string]any{}
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent < base {
			break
		}
		if l.indent > base {
			return nil, fmt.Errorf("scenario: line %d: unexpected indentation", l.num)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("scenario: line %d: sequence item inside a mapping", l.num)
		}
		key, rest, ok := strings.Cut(l.text, ":")
		if !ok {
			return nil, fmt.Errorf("scenario: line %d: expected key: value", l.num)
		}
		key = strings.TrimSpace(unquote(key))
		if key == "" {
			return nil, fmt.Errorf("scenario: line %d: empty key", l.num)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("scenario: line %d: duplicate key %q", l.num, key)
		}
		rest = strings.TrimSpace(rest)
		p.i++
		if rest != "" {
			m[key] = scalar(rest)
			continue
		}
		// Block value: nested lines indented deeper; nothing means null.
		if p.i < len(p.lines) && p.lines[p.i].indent > base {
			v, err := p.block(base + 1)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

// sequence parses consecutive "- item" lines at exactly indent base.
func (p *yparser) sequence(base int) ([]any, error) {
	var seq []any
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent != base || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			if l.indent > base {
				return nil, fmt.Errorf("scenario: line %d: unexpected indentation", l.num)
			}
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// "-" alone: the item is the deeper-indented block below.
			p.i++
			v, err := p.block(base + 1)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		if _, _, isMap := cutMappingKey(rest); isMap {
			// "- key: value": the item is a mapping whose first entry sits
			// on the dash line. Reposition the line at the key's column so
			// the mapping parser picks it and any continuation lines up.
			restIndent := base + (len(l.text) - len(rest))
			p.lines[p.i] = yline{indent: restIndent, text: rest, num: l.num}
			v, err := p.mapping(restIndent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		p.i++
		seq = append(seq, scalar(rest))
	}
	return seq, nil
}

// cutMappingKey reports whether text starts a mapping entry ("key:" or
// "key: value") rather than being a plain scalar like "3x4x60x48" or a
// quoted string.
func cutMappingKey(text string) (key, rest string, ok bool) {
	if strings.HasPrefix(text, `"`) || strings.HasPrefix(text, "'") || strings.HasPrefix(text, "[") {
		return "", "", false
	}
	key, rest, found := strings.Cut(text, ":")
	if !found {
		return "", "", false
	}
	// A mapping key is a bare word; "flat:latency-us=..." is a scalar.
	if rest != "" && !strings.HasPrefix(rest, " ") {
		return "", "", false
	}
	return key, strings.TrimSpace(rest), true
}

// scalar interprets one scalar: an inline [a, b] list or a string
// (quotes stripped). Numbers stay strings — the spec decoder coerces.
func scalar(text string) any {
	if strings.HasPrefix(text, "[") && strings.HasSuffix(text, "]") {
		inner := strings.TrimSpace(text[1 : len(text)-1])
		if inner == "" {
			return []any{}
		}
		parts := splitFlow(inner)
		out := make([]any, len(parts))
		for i, part := range parts {
			out[i] = unquote(strings.TrimSpace(part))
		}
		return out
	}
	return unquote(text)
}

// splitFlow splits an inline list body on commas outside quotes.
func splitFlow(s string) []string {
	var (
		parts []string
		cur   strings.Builder
		quote rune
	)
	for _, r := range s {
		switch {
		case quote != 0:
			if r == quote {
				quote = 0
			}
			cur.WriteRune(r)
		case r == '"' || r == '\'':
			quote = r
			cur.WriteRune(r)
		case r == ',':
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	parts = append(parts, cur.String())
	return parts
}

// unquote strips one level of matching single or double quotes.
func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
