// Package wire is the little-endian binary codec under the mergeable
// accumulators' MarshalBinary/UnmarshalBinary implementations
// (internal/stats, internal/analysis). One shared implementation
// matters: the encodings travel between fleet workers and coordinators,
// so an endianness or bounds-handling fix must not land in one copy and
// miss another. Floats are encoded as exact bit patterns — decoding
// reproduces them bit-for-bit.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"earlybird/internal/fnv"
)

// Writer appends fixed-width little-endian values to Buf.
type Writer struct{ Buf []byte }

func (w *Writer) U8(v uint8)    { w.Buf = append(w.Buf, v) }
func (w *Writer) U32(v uint32)  { w.Buf = binary.LittleEndian.AppendUint32(w.Buf, v) }
func (w *Writer) U64(v uint64)  { w.Buf = binary.LittleEndian.AppendUint64(w.Buf, v) }
func (w *Writer) I64(v int64)   { w.U64(uint64(v)) }
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes b with a u32 length prefix.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.Buf = append(w.Buf, b...)
}

// Str writes s with a u32 length prefix.
func (w *Writer) Str(s string) { w.Bytes([]byte(s)) }

// Reader consumes what Writer produced, failing sticky on truncation:
// after the first error every read returns zero values and Finish
// reports the error.
type Reader struct {
	buf []byte
	err error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the sticky decode error, nil while decoding is healthy.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many undecoded bytes are left (0 after an
// error).
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf)
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("wire: truncated state (%d bytes left, need %d)", len(r.buf), n)
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I64() int64   { return int64(r.U64()) }
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads one length-prefixed byte slice, guarding against length
// prefixes that overrun the remaining input.
func (r *Reader) Bytes() []byte {
	n := r.U32()
	if r.err == nil && uint64(n) > uint64(len(r.buf)) {
		r.err = fmt.Errorf("wire: corrupt length prefix %d (%d bytes left)", n, len(r.buf))
		return nil
	}
	return r.take(int(n))
}

// Str reads one length-prefixed string.
func (r *Reader) Str() string { return string(r.Bytes()) }

// Finish returns the sticky decode error, or an error if trailing bytes
// remain after what should have been the complete encoding.
func (r *Reader) Finish(what string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after %s state", len(r.buf), what)
	}
	return nil
}

// Seal appends an FNV-1a checksum of everything written so far and
// returns the finished buffer. Durable encodings (the fleet's on-disk
// result store) end with it, so Unseal can reject bit rot and torn
// writes before any field decodes.
func (w *Writer) Seal() []byte {
	w.U64(fnv.Bytes(fnv.Offset64, w.Buf))
	return w.Buf
}

// Unseal verifies and strips a Seal checksum, returning the payload a
// Reader can decode. Any truncation or mutation of a sealed buffer
// fails here with a checksum mismatch.
func Unseal(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("wire: sealed payload too short (%d bytes)", len(data))
	}
	body := data[:len(data)-8]
	want := binary.LittleEndian.Uint64(data[len(data)-8:])
	if got := fnv.Bytes(fnv.Offset64, body); got != want {
		return nil, fmt.Errorf("wire: checksum mismatch (stored %016x, computed %016x)", want, got)
	}
	return body, nil
}
