package mpi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
			return nil
		}
		msg := c.Recv(0, 7)
		if string(msg.Data) != "hello" || msg.Src != 0 || msg.Tag != 7 {
			return fmt.Errorf("bad message %+v", msg)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("first"))
			c.Send(1, 2, []byte("second"))
			c.Send(1, 3, []byte("third"))
			return nil
		}
		// Receive in reverse tag order; the unexpected queue must buffer.
		if got := string(c.Recv(0, 3).Data); got != "third" {
			return fmt.Errorf("tag 3 = %q", got)
		}
		if got := string(c.Recv(0, 1).Data); got != "first" {
			return fmt.Errorf("tag 1 = %q", got)
		}
		if got := string(c.Recv(0, 2).Data); got != "second" {
			return fmt.Errorf("tag 2 = %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSameTagFIFOOrder(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 5, []byte{byte(i)})
			}
			return nil
		}
		for i := 0; i < n; i++ {
			if got := c.Recv(0, 5).Data[0]; got != byte(i) {
				return fmt.Errorf("message %d arrived as %d", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if _, ok := c.TryRecv(1, 9); ok {
				return fmt.Errorf("TryRecv matched before send")
			}
			c.Barrier() // let rank 1 send
			c.Barrier() // ensure send completed
			msg, ok := c.TryRecv(1, 9)
			if !ok || string(msg.Data) != "x" {
				return fmt.Errorf("TryRecv after send: ok=%v", ok)
			}
			return nil
		}
		c.Barrier()
		c.Send(0, 9, []byte("x"))
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecvBuffersMismatches(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			c.Send(0, 4, []byte("tag4"))
			c.Send(0, 6, []byte("tag6"))
		}
		c.Barrier() // both ranks: sends are buffered before Run returns
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Single-threaded follow-up on rank 0's endpoint.
	c := w.Comm(0)
	if _, ok := c.TryRecv(1, 5); ok {
		t.Fatal("matched nonexistent tag")
	}
	if msg, ok := c.TryRecv(1, 6); !ok || string(msg.Data) != "tag6" {
		t.Fatal("tag 6 not matched after buffering")
	}
	if msg, ok := c.TryRecv(1, 4); !ok || string(msg.Data) != "tag4" {
		t.Fatal("tag 4 lost from unexpected queue")
	}
}

func TestBarrierOrdering(t *testing.T) {
	w := NewWorld(8)
	counter := make(chan int, 64)
	err := w.Run(func(c *Comm) error {
		counter <- 1
		c.Barrier()
		// After the barrier all 8 pre-barrier marks must be visible.
		if len(counter) != 8 {
			return fmt.Errorf("rank %d: saw %d marks", c.Rank(), len(counter))
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		data := []byte{byte(c.Rank() * 10)}
		out := c.Gather(2, data)
		if c.Rank() != 2 {
			if out != nil {
				return fmt.Errorf("rank %d: non-root got data", c.Rank())
			}
			return nil
		}
		if len(out) != 4 {
			return fmt.Errorf("root got %d pieces", len(out))
		}
		for r, piece := range out {
			if !bytes.Equal(piece, []byte{byte(r * 10)}) {
				return fmt.Errorf("piece %d = %v", r, piece)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherRepeated(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		for round := 0; round < 20; round++ {
			out := c.Gather(0, []byte{byte(c.Rank()), byte(round)})
			if c.Rank() == 0 {
				for r, piece := range out {
					if piece[0] != byte(r) || piece[1] != byte(round) {
						return fmt.Errorf("round %d piece %d = %v", round, r, piece)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		for round := 0; round < 10; round++ {
			got := c.AllreduceSum(float64(c.Rank()) + float64(round))
			want := 10.0 + 5*float64(round) // sum 0..4 + 5*round
			if got != want {
				return fmt.Errorf("rank %d round %d: sum %v, want %v", c.Rank(), round, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidRanksPanic(t *testing.T) {
	w := NewWorld(2)
	for _, fn := range []func(){
		func() { w.Comm(2) },
		func() { w.Comm(-1) },
		func() { w.Comm(0).Send(5, 0, nil) },
		func() { NewWorld(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWorldSize(t *testing.T) {
	if NewWorld(8).Size() != 8 {
		t.Fatal("size")
	}
	w := NewWorld(3)
	if w.Comm(1).Size() != 3 || w.Comm(1).Rank() != 1 {
		t.Fatal("comm accessors")
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		var data []byte
		if c.Rank() == 2 {
			data = []byte("payload")
		}
		got := c.Bcast(2, data)
		if string(got) != "payload" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMax(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		for round := 0; round < 5; round++ {
			got := c.AllreduceMax(float64(c.Rank()*10 + round))
			want := float64(40 + round)
			if got != want {
				return fmt.Errorf("rank %d round %d: max %v, want %v", c.Rank(), round, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvRing(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		dst := (c.Rank() + 1) % c.Size()
		src := (c.Rank() + c.Size() - 1) % c.Size()
		msg := c.Sendrecv(dst, src, 9, []byte{byte(c.Rank())})
		if msg.Data[0] != byte(src) {
			return fmt.Errorf("rank %d received from %d, want %d", c.Rank(), msg.Data[0], src)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixedCollectivesInOrder(t *testing.T) {
	// Sum and Max collectives interleaved must not cross-contaminate.
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		s := c.AllreduceSum(1)
		m := c.AllreduceMax(float64(c.Rank()))
		s2 := c.AllreduceSum(2)
		if s != 3 || m != 2 || s2 != 6 {
			return fmt.Errorf("rank %d: s=%v m=%v s2=%v", c.Rank(), s, m, s2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
