// Package mpi is a small in-process message-passing substrate: a World of
// ranks connected by buffered channels, with tagged point-to-point
// send/receive (including out-of-order tag matching), barrier, gather and
// allreduce collectives.
//
// The paper uses MPI (OpenMPI 4.1.1) as the job substrate and as the
// transport that partitioned communication (internal/partcomm) targets.
// Rank-local thread timing is independent of the transport, so an
// in-process substrate preserves the studied behaviour while keeping the
// repository self-contained (see DESIGN.md).
package mpi

import (
	"fmt"
	"sync"
)

// Message is a tagged payload between ranks.
type Message struct {
	Src  int
	Tag  int
	Data []byte
}

// World is a set of ranks with all-to-all channels.
type World struct {
	size  int
	chans [][]chan Message // chans[src][dst]

	barrier *barrier

	gatherMu  sync.Mutex
	gatherBuf map[gatherKey][][]byte

	reduceMu  sync.Mutex
	reduceBuf map[uint64][]float64
}

// gatherKey identifies one gather operation: collectives are matched by
// call order (every rank's k-th gather pairs up), so buffers are keyed by
// a per-rank sequence number that all ranks advance in lockstep.
type gatherKey struct {
	root int
	seq  uint64
}

// chanCapacity bounds in-flight messages per (src, dst) pair. Partitioned
// sends are eager, so the capacity must comfortably exceed the partition
// count of one transfer.
const chanCapacity = 4096

// NewWorld creates a world of n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{size: n, barrier: newBarrier(n), gatherBuf: map[gatherKey][][]byte{}, reduceBuf: map[uint64][]float64{}}
	w.chans = make([][]chan Message, n)
	for s := 0; s < n; s++ {
		w.chans[s] = make([]chan Message, n)
		for d := 0; d < n; d++ {
			w.chans[s][d] = make(chan Message, chanCapacity)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns rank's communicator handle.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d outside world of %d", rank, w.size))
	}
	return &Comm{world: w, rank: rank, unexpected: make(map[key][]Message)}
}

// Run spawns one goroutine per rank executing body and waits for all of
// them; the first non-nil error is returned.
func (w *World) Run(body func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type key struct {
	src, tag int
}

// Comm is one rank's endpoint. A Comm must be used from a single
// goroutine (like an MPI rank); the World's channels provide the
// cross-rank synchronisation.
type Comm struct {
	world      *World
	rank       int
	unexpected map[key][]Message
	gatherSeq  uint64
	reduceSeq  uint64
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to dst with the given tag. It never blocks under the
// substrate's channel capacity; exceeding it (more than chanCapacity
// unconsumed messages to one peer) is a deadlock in the caller's protocol
// and panics rather than hanging silently.
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	msg := Message{Src: c.rank, Tag: tag, Data: data}
	select {
	case c.world.chans[c.rank][dst] <- msg:
	default:
		panic(fmt.Sprintf("mpi: send buffer full (%d messages) from %d to %d — protocol deadlock", chanCapacity, c.rank, dst))
	}
}

// Recv blocks until a message from src with the given tag arrives.
// Messages with other tags from the same source are buffered for later
// Recv calls (MPI's unexpected-message queue).
func (c *Comm) Recv(src, tag int) Message {
	k := key{src, tag}
	if q := c.unexpected[k]; len(q) > 0 {
		msg := q[0]
		c.unexpected[k] = q[1:]
		return msg
	}
	for {
		msg := <-c.world.chans[src][c.rank]
		if msg.Tag == tag {
			return msg
		}
		mk := key{src, msg.Tag}
		c.unexpected[mk] = append(c.unexpected[mk], msg)
	}
}

// TryRecv is a non-blocking Recv; ok reports whether a matching message
// was available.
func (c *Comm) TryRecv(src, tag int) (Message, bool) {
	k := key{src, tag}
	if q := c.unexpected[k]; len(q) > 0 {
		msg := q[0]
		c.unexpected[k] = q[1:]
		return msg, true
	}
	for {
		select {
		case msg := <-c.world.chans[src][c.rank]:
			if msg.Tag == tag {
				return msg, true
			}
			mk := key{src, msg.Tag}
			c.unexpected[mk] = append(c.unexpected[mk], msg)
		default:
			return Message{}, false
		}
	}
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.world.barrier.wait() }

// Gather collects each rank's data at root (returned slice indexed by
// rank at root; nil elsewhere). All ranks must call it.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	w := c.world
	k := gatherKey{root: root, seq: c.gatherSeq}
	c.gatherSeq++
	w.gatherMu.Lock()
	if w.gatherBuf[k] == nil {
		w.gatherBuf[k] = make([][]byte, w.size)
	}
	w.gatherBuf[k][c.rank] = data
	w.gatherMu.Unlock()
	c.Barrier()
	var out [][]byte
	if c.rank == root {
		w.gatherMu.Lock()
		out = w.gatherBuf[k]
		delete(w.gatherBuf, k)
		w.gatherMu.Unlock()
	}
	return out
}

// AllreduceSum returns the sum of every rank's contribution on all ranks.
func (c *Comm) AllreduceSum(x float64) float64 {
	w := c.world
	id := c.reduceSeq
	c.reduceSeq++
	w.reduceMu.Lock()
	w.reduceBuf[id] = append(w.reduceBuf[id], x)
	w.reduceMu.Unlock()
	c.Barrier()
	sum := 0.0
	w.reduceMu.Lock()
	for _, v := range w.reduceBuf[id] {
		sum += v
	}
	w.reduceMu.Unlock()
	c.Barrier()
	if c.rank == 0 {
		w.reduceMu.Lock()
		delete(w.reduceBuf, id)
		w.reduceMu.Unlock()
	}
	return sum
}

// Bcast distributes root's data to every rank (returned on all ranks).
// All ranks must call it; non-root input data is ignored.
func (c *Comm) Bcast(root int, data []byte) []byte {
	const bcastTag = -1 << 20
	if c.rank == root {
		for dst := 0; dst < c.world.size; dst++ {
			if dst != root {
				c.Send(dst, bcastTag, data)
			}
		}
		return data
	}
	return c.Recv(root, bcastTag).Data
}

// AllreduceMax returns the maximum of every rank's contribution on all
// ranks.
func (c *Comm) AllreduceMax(x float64) float64 {
	w := c.world
	id := c.reduceSeq
	c.reduceSeq++
	w.reduceMu.Lock()
	w.reduceBuf[id] = append(w.reduceBuf[id], x)
	w.reduceMu.Unlock()
	c.Barrier()
	max := x
	w.reduceMu.Lock()
	for _, v := range w.reduceBuf[id] {
		if v > max {
			max = v
		}
	}
	w.reduceMu.Unlock()
	c.Barrier()
	if c.rank == 0 {
		w.reduceMu.Lock()
		delete(w.reduceBuf, id)
		w.reduceMu.Unlock()
	}
	return max
}

// Sendrecv performs a combined send to dst and receive from src with the
// same tag, safe against the pairwise-exchange deadlock because Send is
// buffered.
func (c *Comm) Sendrecv(dst, src, tag int, data []byte) Message {
	c.Send(dst, tag, data)
	return c.Recv(src, tag)
}

// barrier is a reusable counter barrier for n parties.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
