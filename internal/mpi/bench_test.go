package mpi

import "testing"

func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(2)
	payload := make([]byte, 4096)
	done := make(chan struct{})
	go func() {
		c := w.Comm(1)
		for {
			msg := c.Recv(0, 1)
			if msg.Tag == 1 && len(msg.Data) == 0 {
				close(done)
				return
			}
			c.Send(0, 2, msg.Data)
		}
	}()
	c := w.Comm(0)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Send(1, 1, payload)
		c.Recv(1, 2)
	}
	b.StopTimer()
	c.Send(1, 1, nil)
	<-done
}

func BenchmarkBarrier8(b *testing.B) {
	w := NewWorld(8)
	iters := b.N
	b.ResetTimer()
	if err := w.Run(func(c *Comm) error {
		for i := 0; i < iters; i++ {
			c.Barrier()
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllreduceSum8(b *testing.B) {
	w := NewWorld(8)
	iters := b.N
	b.ResetTimer()
	if err := w.Run(func(c *Comm) error {
		for i := 0; i < iters; i++ {
			c.AllreduceSum(1)
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}
