package serve

import (
	"sync/atomic"
	"time"

	"earlybird/internal/telemetry"
)

// endpointStats aggregates one endpoint's traffic counters: scalar
// totals for /v1/stats plus a latency histogram for /metrics.
type endpointStats struct {
	requests  atomic.Int64
	errors    atomic.Int64
	latencyNs atomic.Int64
	latency   *telemetry.Histogram
}

func newEndpointStats() *endpointStats {
	return &endpointStats{latency: telemetry.NewHistogram(telemetry.DefaultLatencyBuckets())}
}

// record folds one finished request into the counters.
func (s *endpointStats) record(start time.Time, isError bool) {
	s.requests.Add(1)
	if isError {
		s.errors.Add(1)
	}
	elapsed := time.Since(start)
	s.latencyNs.Add(int64(elapsed))
	s.latency.Observe(elapsed.Seconds())
}

// EndpointSnapshot is one endpoint's row of the /v1/stats reply.
type EndpointSnapshot struct {
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
}

func (s *endpointStats) snapshot() EndpointSnapshot {
	n := s.requests.Load()
	snap := EndpointSnapshot{Requests: n, Errors: s.errors.Load()}
	if n > 0 {
		snap.MeanLatencyMs = float64(s.latencyNs.Load()) / float64(n) / 1e6
	}
	return snap
}

// StatsResponse is the /v1/stats reply: per-endpoint traffic, the study
// path's work-sharing breakdown, and the engine's cache state.
type StatsResponse struct {
	UptimeSec float64                     `json:"uptime_sec"`
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`

	// Study work-sharing: of the study-shaped requests answered
	// (study, feasibility, campaign entries), how many were served from
	// the result cache, attached to an in-flight execution, or executed.
	Study StudySourceStats `json:"study_sources"`

	// Strategies is the same breakdown for strategy-lab cells
	// (/v1/strategies), which coalesce on SpecKey plus grid hash in
	// their own result cache.
	Strategies StudySourceStats `json:"strategy_sources"`

	Engine EngineStats `json:"engine"`

	// Telemetry is the live progress layer: lifetime fill totals plus a
	// snapshot of every in-flight study (what /v1/progress streams).
	Telemetry TelemetryStats `json:"telemetry"`

	// Admission reports the adaptive-admission loop: the configured
	// watermark, the live efficiency signal it compares against, and how
	// many executions it has shed.
	Admission AdmissionStats `json:"admission"`

	// Fleet reports the federation layer's registry and traffic when the
	// server runs as a coordinator (Options.Fleet set); nil otherwise.
	Fleet *FleetSnapshot `json:"fleet,omitempty"`
}

// TelemetryStats is the /v1/stats telemetry section.
type TelemetryStats struct {
	StudiesStarted  int64   `json:"studies_started"`
	StudiesFinished int64   `json:"studies_finished"`
	ActiveStudies   int     `json:"active_studies"`
	Blocks          int64   `json:"blocks"`
	Samples         int64   `json:"samples"`
	BusySeconds     float64 `json:"busy_seconds"`
	LendEvents      int64   `json:"lend_events"`
	// Active is one live snapshot per in-flight study.
	Active []telemetry.Progress `json:"active,omitempty"`
}

// AdmissionStats is the /v1/stats admission section.
type AdmissionStats struct {
	// Watermark is the configured fill-efficiency watermark; 0 means
	// admission control is disabled.
	Watermark float64 `json:"watermark"`
	// Efficiency is the live aggregate fill efficiency; only meaningful
	// while SignalLive.
	Efficiency float64 `json:"live_fill_efficiency"`
	// SignalLive reports at least one study is in flight (without one
	// there is no signal and admission always admits).
	SignalLive bool `json:"signal_live"`
	// Sheds counts materialising executions refused with 503.
	Sheds int64 `json:"sheds"`
}

// FleetSnapshot is the /v1/stats fleet section: registry state plus the
// scatter/gather counters of federated sweep execution.
type FleetSnapshot struct {
	// Peers and Healthy count the registered and currently healthy
	// workers.
	Peers   int `json:"peers"`
	Healthy int `json:"healthy"`
	// CellsDispatched counts sweep cells answered by the fleet;
	// LocalFallbacks counts cells the fleet declined (no healthy worker)
	// that the coordinator ran itself. Both are coordinator-side.
	CellsDispatched int64 `json:"cells_dispatched"`
	LocalFallbacks  int64 `json:"local_fallbacks"`
	// CellsMerged / CellsFailed count cells whose shard responses merged
	// cleanly vs cells that errored after exhausting every worker.
	CellsMerged int64 `json:"cells_merged"`
	CellsFailed int64 `json:"cells_failed"`
	// ShardsDispatched counts requests sent to workers — sweep shards
	// and whole strategy cells, re-dispatches included; Failovers counts
	// re-dispatches caused by a worker failure.
	ShardsDispatched int64 `json:"shards_dispatched"`
	Failovers        int64 `json:"failovers"`
	// Sheds counts 503 + Retry-After refusals from worker adaptive
	// admission: the worker was marked busy until its Retry-After, never
	// demoted.
	Sheds int64 `json:"sheds"`
	// Speculations counts backup attempts issued for shards whose
	// in-flight duration crossed the speculation quantile;
	// SpeculationWins counts the backups that beat the original.
	Speculations    int64 `json:"speculations"`
	SpeculationWins int64 `json:"speculation_wins"`
	// StoreHits / StoreMisses count durable-store lookups (0/0 when no
	// store is configured): a hit serves the merged row from disk
	// without dispatching any shard.
	StoreHits   int64 `json:"store_hits"`
	StoreMisses int64 `json:"store_misses"`
	// Joins counts dynamic-membership registrations (first joins and
	// lease renewals); LeaseEvictions counts workers deregistered by
	// lease expiry.
	Joins          int64 `json:"joins"`
	LeaseEvictions int64 `json:"lease_evictions"`
	// Workers is the per-worker registry view.
	Workers []FleetWorkerSnapshot `json:"workers"`
}

// FleetWorkerSnapshot is one worker's row of the fleet section.
type FleetWorkerSnapshot struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Capacity is the live scheduling weight the last health probe read
	// from the worker (1 = full weight); rendezvous ranking scales by
	// it, so a degraded worker keeps only a sliver of new cells.
	Capacity float64 `json:"capacity"`
	// Shards counts shard requests this worker answered successfully;
	// Failures counts requests it failed (transport errors and 5xx).
	Shards   int64 `json:"shards"`
	Failures int64 `json:"failures"`
	// Sheds counts 503 + Retry-After refusals from this worker; while
	// Busy the scheduler skips it (for BusyForSec more seconds) without
	// demoting it.
	Sheds      int64   `json:"sheds"`
	Busy       bool    `json:"busy,omitempty"`
	BusyForSec float64 `json:"busy_for_sec,omitempty"`
	// LeaseSec is the remaining membership lease of a dynamically joined
	// worker (omitted for static peers, which never expire).
	LeaseSec float64 `json:"lease_sec,omitempty"`
}

// StudySourceStats counts study answers by source.
type StudySourceStats struct {
	ResultCacheHits int64 `json:"result_cache_hits"`
	Coalesced       int64 `json:"coalesced"`
	Executed        int64 `json:"executed"`
	// ResultCacheSize is the current LRU population.
	ResultCacheSize int `json:"result_cache_size"`
}

// EngineStats mirrors the engine's cache counters.
type EngineStats struct {
	Executions      int64 `json:"dataset_executions"`
	CachedDatasets  int   `json:"cached_datasets"`
	EvictedDatasets int64 `json:"evicted_datasets"`
	NestedViews     int64 `json:"nested_views"`
	Workers         int   `json:"workers"`
}

// sourceCounters tallies study answers by source, shared by the study,
// feasibility and campaign handlers.
type sourceCounters struct {
	lruHits   atomic.Int64
	coalesced atomic.Int64
	executed  atomic.Int64
}

func (c *sourceCounters) count(src Source) {
	switch src {
	case SourceResultCache:
		c.lruHits.Add(1)
	case SourceCoalesced:
		c.coalesced.Add(1)
	case SourceExecuted:
		c.executed.Add(1)
	}
}
