package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/telemetry"
)

// TestProgressStreamMonotone streams /v1/progress?id= for an in-flight
// study (a synthetic tracker fed live, so the schedule is controlled)
// and asserts every acceptance property of the stream: multiple NDJSON
// lines, monotone trial and block counts, ETA >= 0, efficiency in
// [0, 1], and a final line with done=true after which the stream ends.
func TestProgressStreamMonotone(t *testing.T) {
	s, ts := newTestServer(t)
	tr := telemetry.New(telemetry.StudyInfo{
		ID: "feedme", App: "minife",
		Trials: 4, Ranks: 5, Iterations: 10, Threads: 8, Workers: 2,
	})
	s.Telemetry().Register(tr)

	total := 4 * 5 * 10
	go func() {
		for fed := 0; fed < total; fed += 10 {
			for i := 0; i < 10; i++ {
				tr.ObserveFill(8, time.Millisecond)
			}
			time.Sleep(4 * time.Millisecond)
		}
		tr.ObserveLend(1)
		s.Telemetry().Finish(tr)
	}()

	resp, err := http.Get(ts.URL + "/v1/progress?id=feedme&interval_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var lines []telemetry.Progress
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var p telemetry.Progress
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d progress lines, want a live stream (>= 2)", len(lines))
	}
	for i, p := range lines {
		if p.ID != "feedme" || p.App != "minife" {
			t.Fatalf("line %d identifies %q/%q", i, p.ID, p.App)
		}
		if p.ETASec < 0 {
			t.Fatalf("line %d: negative ETA %v", i, p.ETASec)
		}
		if p.Efficiency < 0 || p.Efficiency > 1 {
			t.Fatalf("line %d: efficiency %v out of [0,1]", i, p.Efficiency)
		}
		if i == 0 {
			continue
		}
		if p.TrialsDone < lines[i-1].TrialsDone {
			t.Fatalf("trials_done went backwards at line %d: %d -> %d", i, lines[i-1].TrialsDone, p.TrialsDone)
		}
		if p.BlocksDone < lines[i-1].BlocksDone {
			t.Fatalf("blocks_done went backwards at line %d: %d -> %d", i, lines[i-1].BlocksDone, p.BlocksDone)
		}
	}
	last := lines[len(lines)-1]
	if !last.Done {
		t.Fatalf("stream ended without done=true: %+v", last)
	}
	if last.BlocksDone != int64(total) || last.TrialsDone != 4 {
		t.Fatalf("final line %d/%d blocks, %d trials; want %d blocks, 4 trials",
			last.BlocksDone, last.BlocksTotal, last.TrialsDone, total)
	}
	if last.LendEvents != 1 {
		t.Fatalf("final line lend events = %d, want 1", last.LendEvents)
	}
}

// TestProgressIDReachableAfterStudy runs a real study end to end and
// checks its deterministic progress ID resolves against /v1/progress —
// the completed ring answers with the frozen final snapshot.
func TestProgressIDReachableAfterStudy(t *testing.T) {
	_, ts := newTestServer(t)
	geom := testGeom()
	var study StudyResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: ptr(geom)}), &study)

	id := ProgressID("minife", geom, dlb.Spec{})
	resp, err := http.Get(ts.URL + "/v1/progress?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d for progress id %s", resp.StatusCode, id)
	}
	var p telemetry.Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	wantBlocks := int64(geom.Trials) * int64(geom.Ranks) * int64(geom.Iterations)
	if !p.Done || p.BlocksDone != wantBlocks || p.Samples != int64(geom.Samples()) {
		t.Fatalf("final snapshot %+v; want done with %d blocks, %d samples", p, wantBlocks, geom.Samples())
	}

	// An unknown ID is a 404, not an empty stream.
	resp2, err := http.Get(ts.URL + "/v1/progress?id=doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp2.StatusCode)
	}
}

// promSampleRe matches one exposition sample line: name, optional
// labels, and a value.
var promSampleRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*|[0-9.e+-]+)$`)

// scrapeMetrics fetches /metrics and validates it is structurally
// parseable Prometheus exposition text: correct content type, every
// sample line well formed, every sample's family declared by a TYPE
// line first, and histogram buckets cumulative and consistent with
// _count. It returns the raw scrape.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}

	var body strings.Builder
	typed := map[string]string{} // family -> type
	lastBucket := map[string]int64{}
	bucketCount := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		body.WriteString(line)
		body.WriteByte('\n')
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := typed[f[2]]; dup {
				t.Fatalf("family %s declared twice", f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Fatalf("unparseable sample line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f := strings.TrimSuffix(name, suffix); f != name && typed[f] == "histogram" {
				family = f
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("sample %q has no preceding TYPE declaration", line)
		}
		if typed[family] == "histogram" && strings.HasSuffix(name, "_bucket") {
			idx := strings.LastIndex(line, `le="`)
			if idx < 0 {
				t.Fatalf("bucket line without le label: %q", line)
			}
			series := line[:idx]
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < lastBucket[series] {
				t.Fatalf("histogram buckets not cumulative at %q", line)
			}
			lastBucket[series] = v
			if strings.Contains(line, `le="+Inf"`) {
				bucketCount[series] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(bucketCount) == 0 {
		t.Fatal("scrape contained no histogram buckets")
	}
	return body.String()
}

// TestMetricsPrometheusParseable exercises the server, scrapes
// /metrics, validates the exposition structurally and pins the
// documented families. When METRICS_SCRAPE_OUT is set (the CI artifact
// path) the scrape is also written there.
func TestMetricsPrometheusParseable(t *testing.T) {
	_, ts := newTestServer(t)
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: ptr(testGeom())}),
		&StudyResponse{})
	// A repeat gives the result cache a hit and the study endpoint a
	// second latency observation.
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: ptr(testGeom())}),
		&StudyResponse{})

	body := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"earlybird_uptime_seconds",
		`earlybird_http_requests_total{path="/v1/study"} 2`,
		`earlybird_http_request_duration_seconds_bucket{path="/v1/study",le="+Inf"} 2`,
		`earlybird_http_request_duration_seconds_count{path="/v1/study"} 2`,
		`earlybird_study_results_total{source="executed"} 1`,
		`earlybird_study_results_total{source="result_cache"} 1`,
		"earlybird_engine_dataset_executions_total 1",
		"earlybird_studies_started_total 1",
		"earlybird_studies_finished_total 1",
		"earlybird_fill_blocks_total 24",
		"earlybird_fill_samples_total 1152",
		"earlybird_fill_busy_seconds_total",
		"earlybird_dlb_lend_events_total 0",
		"earlybird_fill_efficiency ",
		"earlybird_fill_efficiency_live 0",
		"earlybird_admission_watermark 0",
		"earlybird_admission_sheds_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	if out := os.Getenv("METRICS_SCRAPE_OUT"); out != "" {
		if err := os.WriteFile(out, []byte(body), 0o644); err != nil {
			t.Fatalf("writing scrape artifact: %v", err)
		}
	}
}

// degradedClock returns a tracker whose measured efficiency is fixed:
// busy seconds over workers x elapsed.
func degradedTracker(id string, eff float64) *telemetry.Tracker {
	base := time.Unix(1700000000, 0)
	now := base
	tr := telemetry.NewWithClock(telemetry.StudyInfo{
		ID: id, App: "synthetic", Trials: 10, Ranks: 1, Iterations: 1, Workers: 1,
	}, func() time.Time { return now })
	now = base.Add(10 * time.Second)
	tr.ObserveFill(1, time.Duration(eff*10*float64(time.Second)))
	return tr
}

// TestAdmissionShedsUnderWatermark is the deterministic admission load
// test: a synthetic in-flight study pins the live efficiency below the
// watermark, new materialising studies are shed with 503 + Retry-After,
// cache hits and /v1/sweep stay served, and admission reopens the
// moment the degraded study finishes.
func TestAdmissionShedsUnderWatermark(t *testing.T) {
	s := New(Options{Workers: 2, AdmissionWatermark: 0.5})
	ts := newHTTPServer(t, s)

	warm := StudySpec{App: "minife", Geometry: ptr(testGeom())}
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", warm), &StudyResponse{})

	// Degraded in-flight study: efficiency 0.1 < watermark 0.5.
	tr := degradedTracker("degraded", 0.1)
	s.Telemetry().Register(tr)
	if eff, live := s.Telemetry().Efficiency(); !live || eff >= 0.5 {
		t.Fatalf("synthetic efficiency = %v (live %v), want < 0.5", eff, live)
	}

	// A new materialising study is shed.
	fresh := testGeom()
	fresh.Seed = 999
	resp := postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: ptr(fresh)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	var eb struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&eb) != nil || !strings.Contains(eb.Error, "admission shed") {
		t.Fatalf("error body %+v", eb)
	}
	if got := s.admissionSheds.Load(); got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}

	// The cached study is still served — admission gates execution, not
	// answers.
	var cached StudyResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", warm), &cached)
	if cached.Source != SourceResultCache {
		t.Fatalf("cached answer source %q", cached.Source)
	}

	// /v1/sweep is exempt (it is the bounded-memory path shed clients
	// are pointed at). The sweep cell was warmed above, so this also
	// cannot re-materialise.
	sweepResp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Apps: []string{"minife"}, Geometries: []cluster.Config{testGeom()}})
	defer sweepResp.Body.Close()
	if sweepResp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d under shed conditions", sweepResp.StatusCode)
	}

	// Finishing the degraded study removes the signal; admission reopens.
	s.Telemetry().Finish(tr)
	var after StudyResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: ptr(fresh)}), &after)
	if after.Source != SourceExecuted {
		t.Fatalf("post-recovery source %q, want executed", after.Source)
	}
	if got := s.admissionSheds.Load(); got != 1 {
		t.Fatalf("sheds = %d after recovery, want still 1", got)
	}
}

// TestStatsAndHealthzCarryTelemetry checks the enriched /v1/stats
// sections and the capacity-bearing healthz body.
func TestStatsAndHealthzCarryTelemetry(t *testing.T) {
	s := New(Options{Workers: 2, AdmissionWatermark: 0.25})
	ts := newHTTPServer(t, s)
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", StudySpec{App: "miniqmc", Geometry: ptr(testGeom())}), &StudyResponse{})

	var stats StatsResponse
	decodeInto(t, mustGet(t, ts.URL+"/v1/stats"), &stats)
	if stats.Telemetry.StudiesStarted != 1 || stats.Telemetry.StudiesFinished != 1 {
		t.Fatalf("telemetry stats %+v", stats.Telemetry)
	}
	if stats.Telemetry.Blocks != 24 || stats.Telemetry.Samples != 1152 {
		t.Fatalf("telemetry counters %d blocks / %d samples", stats.Telemetry.Blocks, stats.Telemetry.Samples)
	}
	if stats.Admission.Watermark != 0.25 || stats.Admission.SignalLive || stats.Admission.Sheds != 0 {
		t.Fatalf("admission stats %+v", stats.Admission)
	}

	var hz HealthzResponse
	decodeInto(t, mustGet(t, ts.URL+"/v1/healthz"), &hz)
	if hz.Status != "ok" || hz.ActiveStudies != 0 || hz.Capacity != 1 {
		t.Fatalf("idle healthz %+v", hz)
	}

	// A degraded in-flight study pulls the advertised capacity down to
	// its efficiency (floored at minWorkerCapacity).
	tr := degradedTracker("drag", 0.02)
	s.Telemetry().Register(tr)
	decodeInto(t, mustGet(t, ts.URL+"/v1/healthz"), &hz)
	if hz.ActiveStudies != 1 || hz.Capacity != minWorkerCapacity {
		t.Fatalf("degraded healthz %+v, want capacity floor %v", hz, minWorkerCapacity)
	}
	s.Telemetry().Finish(tr)
}

// TestObservabilityHandler: the standalone handler (the -metrics-addr
// listener) serves exactly the observability surface.
func TestObservabilityHandler(t *testing.T) {
	s, main := newTestServer(t)
	decodeInto(t, postJSON(t, main.URL+"/v1/study", StudySpec{App: "minife", Geometry: ptr(testGeom())}), &StudyResponse{})

	obs := httptest.NewServer(s.ObservabilityHandler())
	t.Cleanup(obs.Close)
	scrapeMetrics(t, obs.URL)
	var hz HealthzResponse
	decodeInto(t, mustGet(t, obs.URL+"/v1/healthz"), &hz)
	if hz.Status != "ok" {
		t.Fatalf("healthz %+v", hz)
	}
	resp := mustGet(t, obs.URL+"/v1/progress")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress status %d", resp.StatusCode)
	}
	// The observability surface must not expose the execution API.
	r2, err := http.Post(obs.URL+"/v1/study", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode == http.StatusOK {
		t.Fatal("observability listener served /v1/study")
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestProgressLiveHugeGeometryStudy drives the acceptance scenario
// end-to-end with no synthetic feeding: a real 76.8M-sample
// HugeGeometry sweep cell runs on the streaming fill while a second
// client polls /v1/progress?id= and must see live, strictly advancing
// trial/block counts before the study completes. Skipped in -short and
// under -race, like the example-level HugeGeometry test.
func TestProgressLiveHugeGeometryStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("76.8M-sample study skipped in -short")
	}
	if raceEnabled {
		t.Skip("76.8M-sample study skipped under -race")
	}
	s, ts := newTestServer(t)
	_ = s

	geom := cluster.HugeConfig()
	id := ProgressID("minife", geom, dlb.Spec{})

	sweepDone := make(chan error, 1)
	go func() {
		body := strings.NewReader(`{"apps":["minife"],"geometries":[` +
			`{"trials":10,"ranks":32,"iterations":5000,"threads":48,"seed":1}]}`)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", body)
		if err != nil {
			sweepDone <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
		}
		sweepDone <- sc.Err()
	}()

	// Poll until the tracker appears, then watch it advance. The study
	// takes seconds; distinct polls a few ms apart must observe
	// different monotone counts while done is still false.
	var live []telemetry.Progress
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/progress?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		var p telemetry.Progress
		decodeErr := json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			time.Sleep(5 * time.Millisecond)
			continue // not started yet
		}
		if resp.StatusCode != http.StatusOK || decodeErr != nil {
			t.Fatalf("progress poll: status %d, err %v", resp.StatusCode, decodeErr)
		}
		if !p.Done {
			live = append(live, p)
		}
		if p.Done || len(live) >= 5 {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := <-sweepDone; err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if len(live) < 2 {
		t.Fatalf("observed only %d live (not-done) snapshots of the huge study", len(live))
	}
	advanced := false
	for i := 1; i < len(live); i++ {
		if live[i].BlocksDone < live[i-1].BlocksDone || live[i].TrialsDone < live[i-1].TrialsDone {
			t.Fatalf("counts went backwards: %+v then %+v", live[i-1], live[i])
		}
		if live[i].BlocksDone > live[i-1].BlocksDone {
			advanced = true
		}
		if live[i].Efficiency < 0 || live[i].Efficiency > 1 {
			t.Fatalf("efficiency out of range: %+v", live[i])
		}
		if live[i].ETASec < 0 {
			t.Fatalf("negative ETA: %+v", live[i])
		}
	}
	if !advanced {
		t.Fatal("block count never advanced across live snapshots")
	}

	// After the sweep drains, the same id reports the frozen final
	// snapshot: done, every trial accounted for.
	resp := mustGet(t, ts.URL+"/v1/progress?id="+id)
	defer resp.Body.Close()
	var final telemetry.Progress
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	if !final.Done || final.TrialsDone != geom.Trials {
		t.Fatalf("final snapshot = %+v, want done with %d trials", final, geom.Trials)
	}
}
