// Live progress: the serve-side half of the TALP-style telemetry loop.
// Every dataset generation the engine runs for this server gets a
// telemetry.Tracker registered under a deterministic progress ID;
// GET /v1/progress streams a tracker's snapshots as NDJSON while the
// study is in flight. Coalesced and cache-served requests never create
// trackers — one generation, one tracker, exactly like one execution.

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/fnv"
	"earlybird/internal/telemetry"
)

// Progress stream pacing bounds: the snapshot interval is client-tunable
// via ?interval_ms= within [minProgressInterval, maxProgressInterval].
const (
	defaultProgressInterval = 250 * time.Millisecond
	minProgressInterval     = 10 * time.Millisecond
	maxProgressInterval     = 5 * time.Second
)

// ProgressID derives the deterministic progress identity of a study
// generation: an FNV-1a hash (hex) over the application name, the full
// geometry including the seed, and the canonical DLB policy — the same
// coordinates that key the engine's dataset cache. Clients that know
// what they asked for can compute the ID without waiting for a
// response; concurrent identical requests share it, exactly as they
// share the generation.
func ProgressID(app string, geom cluster.Config, policy dlb.Spec) string {
	if resolved, err := policy.Resolve(); err == nil {
		policy = resolved
	}
	h := fnv.Str(fnv.Offset64, app)
	h = fnv.U64(h, uint64(geom.Trials))
	h = fnv.U64(h, uint64(geom.Ranks))
	h = fnv.U64(h, uint64(geom.Iterations))
	h = fnv.U64(h, uint64(geom.Threads))
	h = fnv.U64(h, geom.Seed)
	h = policy.Hash(h)
	return fmt.Sprintf("%016x", h)
}

// generationProgress implements engine.ProgressFactory: it registers a
// tracker for the starting generation and retires it when the
// generation finishes.
func (s *Server) generationProgress(model string, geom cluster.Config, policy dlb.Spec) (cluster.ProgressSink, func()) {
	tr := s.newTracker(model, geom, policy)
	return tr, func() { s.tel.Finish(tr) }
}

// newTracker registers one live study tracker. The efficiency
// denominator is the server's worker budget: the capacity this server
// admits work against.
func (s *Server) newTracker(model string, geom cluster.Config, policy dlb.Spec) *telemetry.Tracker {
	tr := telemetry.New(telemetry.StudyInfo{
		ID:         ProgressID(model, geom, policy),
		App:        model,
		Trials:     geom.Trials,
		Ranks:      geom.Ranks,
		Iterations: geom.Iterations,
		Threads:    geom.Threads,
		Workers:    s.eng.Workers(),
	})
	s.tel.Register(tr)
	return tr
}

// Telemetry returns the server's live-telemetry registry — shared with
// Options.Telemetry when one was supplied.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// handleProgress serves GET /v1/progress. With ?id= it streams that
// study's snapshots as NDJSON — one line per interval, flushed
// immediately — until the study finishes (the final line has
// "done":true) or the client disconnects. Without an id it lists one
// snapshot per active study and closes.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	interval := defaultProgressInterval
	if raw := r.URL.Query().Get("interval_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad interval_ms %q: %v", raw, err))
			return
		}
		interval = time.Duration(ms) * time.Millisecond
		if interval < minProgressInterval {
			interval = minProgressInterval
		}
		if interval > maxProgressInterval {
			interval = maxProgressInterval
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	id := r.URL.Query().Get("id")
	if id == "" {
		for _, p := range s.tel.Active() {
			_ = enc.Encode(p)
		}
		flush()
		return
	}
	tr, ok := s.tel.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no active or recent study with progress id %q", id))
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		p := tr.Snapshot()
		if err := enc.Encode(p); err != nil {
			return
		}
		flush()
		if p.Done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
