package serve

import (
	"container/list"
	"sync"
)

// coalescer is the request-collapsing layer of the service: a bounded
// LRU cache of finished results in front of a singleflight table of
// in-flight executions, both keyed by a comparable request identity. A
// request first probes the cache, then either joins an identical
// in-flight execution or becomes the executor itself; executions that
// report themselves cacheable populate the cache on the way out.
//
// The study path keys on the resolved spec's engine.SpecKey; the
// strategy lab keys on SpecKey plus a strategy-grid hash. Both share
// this one implementation.
type coalescer[K comparable, V any] struct {
	mu       sync.Mutex
	inflight map[K]*flight[V]
	// LRU: entries maps keys to elements of order, whose front is the
	// most recently used. cap <= 0 disables result caching.
	cap     int
	entries map[K]*list.Element
	order   *list.List
}

// flight is one in-flight execution; joiners block on done.
type flight[V any] struct {
	done chan struct{}
	res  V
}

// lruItem is one cached result with its key for back-removal.
type lruItem[K comparable, V any] struct {
	key K
	res V
}

func newCoalescer[K comparable, V any](capacity int) *coalescer[K, V] {
	return &coalescer[K, V]{
		inflight: map[K]*flight[V]{},
		cap:      capacity,
		entries:  map[K]*list.Element{},
		order:    list.New(),
	}
}

// do returns the result for the key, along with how it was obtained. run
// is invoked at most once across all concurrent do calls with the same
// key; its result is fanned out to every joiner and — when run reports
// it cacheable — stored for later requests.
func (c *coalescer[K, V]) do(key K, run func() (V, bool)) (V, Source) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		res := el.Value.(*lruItem[K, V]).res
		c.mu.Unlock()
		return res, SourceResultCache
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.res, SourceCoalesced
	}
	f := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	res, cacheable := run()
	f.res = res

	c.mu.Lock()
	delete(c.inflight, key)
	if cacheable {
		c.addLocked(key, res)
	}
	c.mu.Unlock()
	close(f.done)
	return res, SourceExecuted
}

// addLocked inserts a finished result, evicting the least recently used
// entry past capacity. Callers must hold c.mu.
func (c *coalescer[K, V]) addLocked(key K, res V) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruItem[K, V]).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruItem[K, V]{key: key, res: res})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*lruItem[K, V]).key)
	}
}

// size returns the number of cached results.
func (c *coalescer[K, V]) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
