package serve

import (
	"container/list"
	"sync"

	"earlybird/internal/engine"
)

// coalescer is the request-collapsing layer of the service: a bounded
// LRU cache of finished study results in front of a singleflight table
// of in-flight executions, both keyed by the resolved spec's engine key.
// A request first probes the cache, then either joins an identical
// in-flight execution or becomes the executor itself; successful
// executions populate the cache on the way out.
type coalescer struct {
	mu       sync.Mutex
	inflight map[engine.SpecKey]*flight
	// LRU: entries maps keys to elements of order, whose front is the
	// most recently used. cap <= 0 disables result caching.
	cap     int
	entries map[engine.SpecKey]*list.Element
	order   *list.List
}

// flight is one in-flight execution; joiners block on done.
type flight struct {
	done chan struct{}
	res  engine.Result
}

// lruItem is one cached result with its key for back-removal.
type lruItem struct {
	key engine.SpecKey
	res engine.Result
}

func newCoalescer(capacity int) *coalescer {
	return &coalescer{
		inflight: map[engine.SpecKey]*flight{},
		cap:      capacity,
		entries:  map[engine.SpecKey]*list.Element{},
		order:    list.New(),
	}
}

// do returns the result for the resolved spec, along with how it was
// obtained. run is invoked at most once across all concurrent do calls
// with the same key; its result is fanned out to every joiner and, when
// error-free, cached for later requests.
func (c *coalescer) do(key engine.SpecKey, run func() engine.Result) (engine.Result, Source) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		res := el.Value.(*lruItem).res
		c.mu.Unlock()
		return res, SourceResultCache
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.res, SourceCoalesced
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.res = run()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.res.Err == nil {
		c.addLocked(key, f.res)
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, SourceExecuted
}

// addLocked inserts a finished result, evicting the least recently used
// entry past capacity. Callers must hold c.mu.
func (c *coalescer) addLocked(key engine.SpecKey, res engine.Result) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruItem).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruItem{key: key, res: res})
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*lruItem).key)
	}
}

// size returns the number of cached results.
func (c *coalescer) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
