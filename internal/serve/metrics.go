// GET /metrics: Prometheus exposition of the server's traffic counters,
// latency histograms, cache and engine state, live telemetry totals and
// the adaptive-admission loop — plus adaptive admission itself, which
// closes the telemetry loop: when the measured live fill efficiency
// drops below the configured watermark, new materialising executions
// are shed with 503 + Retry-After instead of admitted into the
// execution semaphore. Metric names are documented in DESIGN.md ("Live
// telemetry & adaptive admission").

package serve

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"earlybird/internal/telemetry"
)

// minWorkerCapacity floors the capacity a degraded server reports (and
// the weight a fleet coordinator will assign it): a struggling worker
// keeps a sliver of traffic so recovery is observable, but the
// rendezvous scheduler drains around it.
const minWorkerCapacity = 0.05

// shedError reports that adaptive admission refused a materialising
// execution; RetryAfter is the client's back-off hint (the smallest ETA
// among in-flight studies).
type shedError struct {
	Watermark  float64
	Efficiency float64
	RetryAfter time.Duration
}

func (e *shedError) Error() string {
	return fmt.Sprintf(
		"admission shed: live fill efficiency %.3f is below the %.3f watermark; retry in %ds",
		e.Efficiency, e.Watermark, retryAfterSeconds(e.RetryAfter))
}

// retryAfterSeconds renders a Retry-After duration, rounded up, >= 1.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// admit decides whether a new materialising execution may start. With
// no watermark configured, or no study in flight (no live signal), it
// always admits; otherwise it sheds while the aggregate live fill
// efficiency is below the watermark.
func (s *Server) admit() error {
	wm := s.opts.AdmissionWatermark
	if wm <= 0 {
		return nil
	}
	eff, live := s.tel.Efficiency()
	if !live || eff >= wm {
		return nil
	}
	s.admissionSheds.Add(1)
	retry := time.Second
	if eta, ok := s.tel.MinETA(); ok {
		retry = eta
	}
	if retry > time.Minute {
		retry = time.Minute
	}
	return &shedError{Watermark: wm, Efficiency: eff, RetryAfter: retry}
}

// writeStudyError renders a study-path failure: admission sheds become
// 503 + Retry-After, everything else stays 422.
func writeStudyError(w http.ResponseWriter, err error) {
	var shed *shedError
	if errors.As(err, &shed) {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(shed.RetryAfter)))
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, http.StatusUnprocessableEntity, err)
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := s.promWriter(w)
	_ = p.Err()
}

// promWriter renders every metric family to w and returns the writer
// (whose first error, if any, the caller may inspect).
func (s *Server) promWriter(w http.ResponseWriter) *telemetry.PromWriter {
	p := telemetry.NewPromWriter(w)

	p.Gauge("earlybird_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())

	paths := make([]string, 0, len(s.endpoints))
	for path := range s.endpoints {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	p.CounterVec("earlybird_http_requests_total", "Requests served, by endpoint.")
	for _, path := range paths {
		p.Sample("earlybird_http_requests_total", float64(s.endpoints[path].requests.Load()), "path", path)
	}
	p.CounterVec("earlybird_http_request_errors_total", "Requests answered with status >= 400, by endpoint.")
	for _, path := range paths {
		p.Sample("earlybird_http_request_errors_total", float64(s.endpoints[path].errors.Load()), "path", path)
	}
	p.HistogramVec("earlybird_http_request_duration_seconds", "Request latency, by endpoint.")
	for _, path := range paths {
		p.HistogramSample("earlybird_http_request_duration_seconds", s.endpoints[path].latency.Snapshot(), "path", path)
	}

	p.CounterVec("earlybird_study_results_total", "Study-shaped answers by source (result_cache, coalesced, executed).")
	p.Sample("earlybird_study_results_total", float64(s.sources.lruHits.Load()), "source", "result_cache")
	p.Sample("earlybird_study_results_total", float64(s.sources.coalesced.Load()), "source", "coalesced")
	p.Sample("earlybird_study_results_total", float64(s.sources.executed.Load()), "source", "executed")
	p.CounterVec("earlybird_strategy_results_total", "Strategy-lab cell answers by source.")
	p.Sample("earlybird_strategy_results_total", float64(s.stratSources.lruHits.Load()), "source", "result_cache")
	p.Sample("earlybird_strategy_results_total", float64(s.stratSources.coalesced.Load()), "source", "coalesced")
	p.Sample("earlybird_strategy_results_total", float64(s.stratSources.executed.Load()), "source", "executed")
	p.GaugeVec("earlybird_result_cache_entries", "LRU result cache population, by cache.")
	p.Sample("earlybird_result_cache_entries", float64(s.co.size()), "cache", "study")
	p.Sample("earlybird_result_cache_entries", float64(s.strat.size()), "cache", "strategies")

	p.Counter("earlybird_engine_dataset_executions_total", "Dataset generations actually run (cache hits excluded).", float64(s.eng.Executions()))
	p.Gauge("earlybird_engine_datasets_cached", "Datasets currently in the engine cache.", float64(s.eng.CachedDatasets()))
	p.Counter("earlybird_engine_datasets_evicted_total", "Datasets evicted by the cache bound.", float64(s.eng.EvictedDatasets()))
	p.Counter("earlybird_engine_nested_views_total", "Dataset generations that materialised the nested tensor view.", float64(s.eng.NestedViews()))
	p.Gauge("earlybird_engine_workers", "The server's execution worker budget.", float64(s.eng.Workers()))

	tot := s.tel.Totals()
	p.Gauge("earlybird_studies_active", "Studies currently filling.", float64(tot.ActiveStudies))
	p.Counter("earlybird_studies_started_total", "Tracked study generations started.", float64(tot.StudiesStarted))
	p.Counter("earlybird_studies_finished_total", "Tracked study generations finished.", float64(tot.StudiesFinished))
	p.Counter("earlybird_fill_blocks_total", "Process-iteration blocks produced.", float64(tot.Blocks))
	p.Counter("earlybird_fill_samples_total", "Samples produced.", float64(tot.Samples))
	p.Counter("earlybird_fill_busy_seconds_total", "Useful fill-worker time accumulated.", tot.BusySeconds)
	p.Counter("earlybird_dlb_lend_events_total", "DLB iteration boundaries observed on a lent allocation.", float64(tot.LendEvents))

	eff, live := s.tel.Efficiency()
	p.Gauge("earlybird_fill_efficiency", "Live aggregate parallel efficiency across in-flight studies (0 when idle).", eff)
	p.Gauge("earlybird_fill_efficiency_live", "1 while at least one study provides a live efficiency signal.", b2f(live))
	p.Gauge("earlybird_admission_watermark", "Configured fill-efficiency admission watermark (0 = admission disabled).", s.opts.AdmissionWatermark)
	p.Counter("earlybird_admission_sheds_total", "Materialising executions shed by adaptive admission.", float64(s.admissionSheds.Load()))

	if s.opts.Fleet != nil {
		snap := s.opts.Fleet.Snapshot()
		p.Gauge("earlybird_fleet_peers", "Registered fleet workers.", float64(snap.Peers))
		p.Gauge("earlybird_fleet_healthy", "Fleet workers currently healthy.", float64(snap.Healthy))
		p.Counter("earlybird_fleet_cells_dispatched_total", "Sweep cells answered by the fleet.", float64(s.fleetCells.Load()))
		p.Counter("earlybird_fleet_local_fallbacks_total", "Cells the fleet declined that ran locally.", float64(s.fleetFallbacks.Load()))
		p.Counter("earlybird_fleet_cells_merged_total", "Cells whose shard responses merged cleanly.", float64(snap.CellsMerged))
		p.Counter("earlybird_fleet_cells_failed_total", "Cells that errored after exhausting every worker.", float64(snap.CellsFailed))
		p.Counter("earlybird_fleet_shards_dispatched_total", "Shard and strategy-cell requests sent to workers.", float64(snap.ShardsDispatched))
		p.Counter("earlybird_fleet_failovers_total", "Re-dispatches caused by worker failures.", float64(snap.Failovers))
		p.Counter("earlybird_fleet_sheds_total", "503 + Retry-After refusals from worker adaptive admission (worker marked busy, not demoted).", float64(snap.Sheds))
		p.Counter("earlybird_fleet_speculations_total", "Speculative backup attempts issued for slow in-flight shards.", float64(snap.Speculations))
		p.Counter("earlybird_fleet_speculation_wins_total", "Speculative attempts that beat the original.", float64(snap.SpeculationWins))
		p.Counter("earlybird_fleet_store_hits_total", "Sweep cells served from the durable result store.", float64(snap.StoreHits))
		p.Counter("earlybird_fleet_store_misses_total", "Durable-store lookups that missed.", float64(snap.StoreMisses))
		p.Counter("earlybird_fleet_joins_total", "Dynamic-membership joins and lease renewals.", float64(snap.Joins))
		p.Counter("earlybird_fleet_lease_evictions_total", "Workers deregistered by membership lease expiry.", float64(snap.LeaseEvictions))
		p.GaugeVec("earlybird_fleet_worker_healthy", "1 while the worker is considered healthy, by worker URL.")
		for _, ws := range snap.Workers {
			p.Sample("earlybird_fleet_worker_healthy", b2f(ws.Healthy), "url", ws.URL)
		}
		p.GaugeVec("earlybird_fleet_worker_capacity", "Live capacity weight the scheduler assigns the worker (last probe).")
		for _, ws := range snap.Workers {
			p.Sample("earlybird_fleet_worker_capacity", ws.Capacity, "url", ws.URL)
		}
		p.CounterVec("earlybird_fleet_worker_shards_total", "Shard requests the worker answered successfully.")
		for _, ws := range snap.Workers {
			p.Sample("earlybird_fleet_worker_shards_total", float64(ws.Shards), "url", ws.URL)
		}
		p.CounterVec("earlybird_fleet_worker_failures_total", "Shard requests the worker failed.")
		for _, ws := range snap.Workers {
			p.Sample("earlybird_fleet_worker_failures_total", float64(ws.Failures), "url", ws.URL)
		}
		p.GaugeVec("earlybird_fleet_worker_busy", "1 while the worker is inside a shed Retry-After window (skipped, not demoted).")
		for _, ws := range snap.Workers {
			p.Sample("earlybird_fleet_worker_busy", b2f(ws.Busy), "url", ws.URL)
		}
		p.CounterVec("earlybird_fleet_worker_sheds_total", "503 + Retry-After refusals, by worker URL.")
		for _, ws := range snap.Workers {
			p.Sample("earlybird_fleet_worker_sheds_total", float64(ws.Sheds), "url", ws.URL)
		}
	}
	return p
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
