package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"earlybird/internal/trace"
)

// scenarioDoc is a two-cell scenario (one app source, two timeouts) in
// the JSON document form; the geometry matches testGeom so scenario
// cells land on the same spec keys as the plain study tests.
const scenarioDoc = `{
	"name": "serve-test",
	"sources": ["minife"],
	"geometries": ["1x2x12x48"],
	"bin_timeouts_ms": ["1", "2"]
}`

// testTraceCSV renders a small dataset with non-degenerate times as the
// long-form CSV an inline trace source carries.
func testTraceCSV(t *testing.T) string {
	t.Helper()
	ds := trace.NewDataset("captured", 1, 2, 3, 4)
	for _, trial := range ds.Times {
		for r, rank := range trial {
			for i, iter := range rank {
				for th := range iter {
					iter[th] = 1e-3 * float64(1+(r+i+th)%5)
				}
			}
		}
	}
	var b strings.Builder
	if err := ds.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func postScenario(t *testing.T, url string, req ScenarioRequest) *http.Response {
	t.Helper()
	return postJSON(t, url+"/v1/scenario", req)
}

func TestScenarioEndpointRunsCells(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postScenario(t, ts.URL, ScenarioRequest{Scenario: scenarioDoc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr ScenarioResponse
	decodeInto(t, resp, &sr)
	if sr.Name != "serve-test" || sr.Cells != 2 || sr.UniqueSpecs != 2 {
		t.Fatalf("header = %+v, want serve-test / 2 cells / 2 unique", sr)
	}
	if len(sr.Rows) != 2 || sr.Failed != 0 {
		t.Fatalf("rows %d failed %d", len(sr.Rows), sr.Failed)
	}
	for i, row := range sr.Rows {
		if row.Err != "" {
			t.Fatalf("row %d: %s", i, row.Err)
		}
		if row.Index != i || row.Workload != "app:minife" || row.Geometry != "1x2x12x48" {
			t.Errorf("row %d coordinates = %q %q (index %d)", i, row.Workload, row.Geometry, row.Index)
		}
		if row.Assessment.Recommendation == "" {
			t.Errorf("row %d has no assessment", i)
		}
	}
	// The two cells differ only in bin timeout, which does not change the
	// generated dataset: the engine's cache should serve the second cell.
	if !sr.Rows[0].DatasetCacheHit && !sr.Rows[1].DatasetCacheHit {
		t.Error("no cell reused the engine's dataset cache")
	}
}

func TestScenarioCheckMode(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postScenario(t, ts.URL, ScenarioRequest{Scenario: scenarioDoc, Check: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr ScenarioResponse
	decodeInto(t, resp, &sr)
	if len(sr.Rows) != 0 {
		t.Fatalf("check mode executed %d cells", len(sr.Rows))
	}
	if !strings.Contains(sr.Plan, "scenario serve-test: 2 cells") {
		t.Fatalf("plan = %q", sr.Plan)
	}
}

func TestScenarioStreamMode(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postScenario(t, ts.URL, ScenarioRequest{Scenario: scenarioDoc, Stream: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Scenario-Cells"); got != "2" {
		t.Fatalf("X-Scenario-Cells = %q", got)
	}
	seen := map[int]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row ScenarioRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		if row.Err != "" {
			t.Fatalf("row %d: %s", row.Index, row.Err)
		}
		seen[row.Index] = true
	}
	if len(seen) != 2 {
		t.Fatalf("streamed %d distinct rows, want 2", len(seen))
	}
}

func TestScenarioRejectsTracePaths(t *testing.T) {
	_, ts := newTestServer(t)
	doc := `{"name": "paths", "sources": [{"trace": "/etc/passwd"}]}`
	resp := postScenario(t, ts.URL, ScenarioRequest{Scenario: doc})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var eb errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "inline") {
		t.Fatalf("error %q does not point at inlining", eb.Error)
	}
}

func TestScenarioInlineTraceRuns(t *testing.T) {
	_, ts := newTestServer(t)
	doc, err := json.Marshal(map[string]any{
		"name":    "replay",
		"sources": []any{map[string]any{"csv": testTraceCSV(t)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := postScenario(t, ts.URL, ScenarioRequest{Scenario: string(doc)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr ScenarioResponse
	decodeInto(t, resp, &sr)
	if len(sr.Rows) != 1 || sr.Rows[0].Err != "" {
		t.Fatalf("rows = %+v", sr.Rows)
	}
	if sr.Rows[0].Workload != "trace:inline#0" {
		t.Fatalf("workload = %q", sr.Rows[0].Workload)
	}
	if sr.Rows[0].Assessment.App != "captured" {
		t.Fatalf("assessment app = %q, want the dataset's", sr.Rows[0].Assessment.App)
	}
}

func TestScenarioCoalescesWithStudy(t *testing.T) {
	_, ts := newTestServer(t)

	// Prime the result cache through /v1/study with the spec the
	// scenario's first cell compiles to.
	resp := postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: ptr(testGeom()), BinTimeoutSec: 1e-3})
	var prime StudyResponse
	decodeInto(t, resp, &prime)
	if prime.Source != SourceExecuted {
		t.Fatalf("priming study source = %q", prime.Source)
	}

	resp = postScenario(t, ts.URL, ScenarioRequest{Scenario: scenarioDoc})
	var sr ScenarioResponse
	decodeInto(t, resp, &sr)
	if len(sr.Rows) != 2 {
		t.Fatalf("rows = %d", len(sr.Rows))
	}
	if sr.Rows[0].Source != SourceResultCache {
		t.Fatalf("cell 0 source = %q: the scenario cell did not share the study's result cache entry", sr.Rows[0].Source)
	}
}

// fakeStudyFleet implements FleetDispatcher and the optional
// StudyDispatcher upgrade: it declines sweep cells and answers studies
// with a canned marker response, recording what it was offered.
type fakeStudyFleet struct {
	mu    sync.Mutex
	specs []StudySpec
}

func (f *fakeStudyFleet) DispatchCell(ctx context.Context, cell SweepCell) (SweepRow, bool) {
	return SweepRow{}, false
}

func (f *fakeStudyFleet) Snapshot() FleetSnapshot { return FleetSnapshot{} }

func (f *fakeStudyFleet) DispatchStudy(ctx context.Context, hash uint64, spec StudySpec) (StudyResponse, bool) {
	f.mu.Lock()
	f.specs = append(f.specs, spec)
	f.mu.Unlock()
	return StudyResponse{App: spec.App, Source: SourceExecuted}, true
}

func TestScenarioFederatesWireCellsOnly(t *testing.T) {
	fake := &fakeStudyFleet{}
	s := New(Options{Workers: 2, Fleet: fake})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	doc, err := json.Marshal(map[string]any{
		"name":       "mixed",
		"sources":    []any{"minife", map[string]any{"csv": testTraceCSV(t)}},
		"geometries": []any{"1x2x12x48"},
		"noise":      []any{"none", "slowdown:prob=0.5,factor=2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := postScenario(t, ts.URL, ScenarioRequest{Scenario: string(doc)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr ScenarioResponse
	decodeInto(t, resp, &sr)
	// 2 app cells (none + slowdown noise) + 1 trace cell. Only the
	// noise-free app cell is wire-expressible.
	if len(sr.Rows) != 3 || sr.Failed != 0 {
		t.Fatalf("rows %d failed %d", len(sr.Rows), sr.Failed)
	}
	for _, row := range sr.Rows {
		wantFederated := row.Workload == "app:minife" && row.Noise == "none"
		if row.Federated != wantFederated {
			t.Errorf("row %d (%s | %s): federated = %v, want %v", row.Index, row.Workload, row.Noise, row.Federated, wantFederated)
		}
	}
	if len(fake.specs) != 1 || fake.specs[0].App != "minife" {
		t.Fatalf("fleet was offered %+v, want exactly the bare minife cell", fake.specs)
	}
	if fake.specs[0].Geometry == nil || fake.specs[0].Policy == nil || fake.specs[0].Fabric == nil {
		t.Fatal("dispatched wire spec is not fully resolved")
	}
}
