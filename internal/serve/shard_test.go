package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/workload"
)

// shardGeomMulti is a multi-trial geometry small enough for fast tests
// but wide enough to shard three ways.
func shardGeomMulti() cluster.Config {
	return cluster.Config{Trials: 6, Ranks: 2, Iterations: 10, Threads: 48, Seed: 3}
}

// fetchShard posts one shard request and decodes the response.
func fetchShard(t *testing.T, url string, req ShardRequest) ShardResponse {
	t.Helper()
	resp := postJSON(t, url+"/v1/shard", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard [%d,%d): status %s", req.TrialLo, req.TrialHi, resp.Status)
	}
	var sr ShardResponse
	decodeInto(t, resp, &sr)
	return sr
}

// TestShardMergeBitIdenticalToSingleNode is the serve-level half of the
// federation exactness guarantee: accumulator states fetched for a
// partition of the trial space over HTTP — each generated independently
// through the trial-offset model — merge into results bit-identical to
// the single-node sweep row for every moment-derived metric and Table 1,
// and within the sketch's rank-error bound for the IQR statistics.
func TestShardMergeBitIdenticalToSingleNode(t *testing.T) {
	s, ts := newTestServer(t)
	geom := shardGeomMulti()
	cell := SweepCell{
		App: "minimd", Geometry: geom,
		Alpha: 0.05, LaggardThresholdSec: analysis.DefaultLaggardThresholdSec,
	}
	want := s.sweepCell(cell)
	if want.Err != "" {
		t.Fatal(want.Err)
	}

	// Three uneven shards covering [0, 6).
	ranges := [][2]int{{0, 1}, {1, 4}, {4, 6}}
	macc := analysis.NewMetricsAccumulator(cell.App, cell.LaggardThresholdSec)
	tacc := analysis.NewTable1Accumulator(cell.App, cell.Alpha)
	var blocks int64
	for _, rg := range ranges {
		sr := fetchShard(t, ts.URL, ShardRequest{
			App: cell.App, Geometry: &geom,
			Alpha: cell.Alpha, LaggardSec: cell.LaggardThresholdSec,
			TrialLo: rg[0], TrialHi: rg[1],
		})
		if wantBlocks := int64(rg[1]-rg[0]) * int64(geom.Ranks) * int64(geom.Iterations); sr.Blocks != wantBlocks {
			t.Fatalf("shard [%d,%d): %d blocks, want %d", rg[0], rg[1], sr.Blocks, wantBlocks)
		}
		decM := new(analysis.MetricsAccumulator)
		if err := decM.UnmarshalBinary(sr.MetricsState); err != nil {
			t.Fatal(err)
		}
		decT := new(analysis.Table1Accumulator)
		if err := decT.UnmarshalBinary(sr.Table1State); err != nil {
			t.Fatal(err)
		}
		macc.Merge(decM)
		tacc.Merge(decT)
		blocks += sr.Blocks
	}
	got := macc.Finalize()
	gotT1 := tacc.Finalize()

	if got.MeanMedianSec != want.Metrics.MeanMedianSec ||
		got.LaggardFraction != want.Metrics.LaggardFraction ||
		got.AvgReclaimableProcSec != want.Metrics.AvgReclaimableProcSec ||
		got.IdleRatioProc != want.Metrics.IdleRatioProc ||
		got.AvgReclaimableAppIterSec != want.Metrics.AvgReclaimableAppIterSec ||
		got.IdleRatioAppIter != want.Metrics.IdleRatioAppIter {
		t.Fatalf("merged shards not bit-identical to single node:\n got %+v\nwant %+v", got, want.Metrics)
	}
	if gotT1 != want.Table1 {
		t.Fatalf("merged Table1 %+v vs single node %+v", gotT1, want.Table1)
	}
	rel := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	if rel(got.IQRMeanSec, want.Metrics.IQRMeanSec) > 0.10 {
		t.Fatalf("IQRMeanSec merged %v vs single node %v", got.IQRMeanSec, want.Metrics.IQRMeanSec)
	}
	if blocks != int64(geom.Trials)*int64(geom.Ranks)*int64(geom.Iterations) {
		t.Fatalf("shards covered %d blocks, want the full trial space", blocks)
	}
	// The recommendation derived from merged metrics matches too.
	if core.ClassifyMetrics(got) != want.Recommendation {
		t.Fatalf("merged recommendation %q vs %q", core.ClassifyMetrics(got), want.Recommendation)
	}
}

// TestShardOffsetGenerationMatchesFullRun pins the trial-offset model:
// a shard generated as its own (hi-lo)-trial study must produce
// accumulator state identical to folding exactly those trials out of
// the full single-node dataset.
func TestShardOffsetGenerationMatchesFullRun(t *testing.T) {
	_, ts := newTestServer(t)
	geom := cluster.Config{Trials: 4, Ranks: 2, Iterations: 8, Threads: 48, Seed: 11}
	const lo, hi = 2, 4

	sr := fetchShard(t, ts.URL, ShardRequest{
		App: "miniqmc", Geometry: &geom, TrialLo: lo, TrialHi: hi,
	})
	viaWire := new(analysis.MetricsAccumulator)
	if err := viaWire.UnmarshalBinary(sr.MetricsState); err != nil {
		t.Fatal(err)
	}

	// Reference: the same trials folded from a full-geometry run.
	model, err := workload.ByName("miniqmc")
	if err != nil {
		t.Fatal(err)
	}
	col, err := cluster.RunColumnar(model, geom, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := analysis.NewMetricsAccumulator("miniqmc", analysis.DefaultLaggardThresholdSec)
	cur := col.Cursor()
	for cur.Next() {
		b := cur.Block()
		if b.Trial >= lo && b.Trial < hi {
			ref.ObserveBlock(b.Trial, b.Rank, b.Iter, b.Times)
		}
	}
	if got, want := viaWire.Finalize(), ref.Finalize(); got != want {
		t.Fatalf("offset shard diverged from full-run trials:\n got %+v\nwant %+v", got, want)
	}
}

// TestShardValidation: malformed shard requests are rejected before any
// execution.
func TestShardValidation(t *testing.T) {
	_, ts := newTestServer(t)
	geom := testGeom()
	cases := []struct {
		name string
		req  ShardRequest
		code int
	}{
		{"unknown app", ShardRequest{App: "nope", Geometry: &geom, TrialHi: 1}, http.StatusUnprocessableEntity},
		{"empty range", ShardRequest{App: "minife", Geometry: &geom, TrialLo: 1, TrialHi: 1}, http.StatusUnprocessableEntity},
		{"negative lo", ShardRequest{App: "minife", Geometry: &geom, TrialLo: -1, TrialHi: 1}, http.StatusUnprocessableEntity},
		{"hi past trials", ShardRequest{App: "minife", Geometry: &geom, TrialHi: geom.Trials + 1}, http.StatusUnprocessableEntity},
		{"geometry conflict", ShardRequest{App: "minife", Geometry: &geom, GeometryName: "quick", TrialHi: 1}, http.StatusUnprocessableEntity},
		{"bad geometry name", ShardRequest{App: "minife", GeometryName: "nope", TrialHi: 1}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/shard", c.req)
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %s, want %d", c.name, resp.Status, c.code)
		}
	}
}

// TestShardCacheKeying: a prefix shard (lo == 0) shares the engine's
// dataset cache with an ordinary study of the prefix geometry, while an
// offset shard generates its own entry — and repeating either shard hits
// the cache.
func TestShardCacheKeying(t *testing.T) {
	s, ts := newTestServer(t)
	geom := cluster.Config{Trials: 3, Ranks: 2, Iterations: 8, Threads: 48, Seed: 5}

	// Prefix shard [0, 2) generates the 2-trial prefix dataset.
	first := fetchShard(t, ts.URL, ShardRequest{App: "minife", Geometry: &geom, TrialHi: 2})
	if first.DatasetCacheHit {
		t.Error("first prefix shard should generate")
	}
	if got := s.Engine().Executions(); got != 1 {
		t.Fatalf("executions after prefix shard = %d, want 1", got)
	}
	// Repeat: served from cache.
	again := fetchShard(t, ts.URL, ShardRequest{App: "minife", Geometry: &geom, TrialHi: 2})
	if !again.DatasetCacheHit {
		t.Error("repeated prefix shard should hit the dataset cache")
	}
	// Offset shard [2, 3) is a distinct cache entry.
	off := fetchShard(t, ts.URL, ShardRequest{App: "minife", Geometry: &geom, TrialLo: 2, TrialHi: 3})
	if off.DatasetCacheHit {
		t.Error("offset shard should generate its own entry")
	}
	if got := s.Engine().Executions(); got != 2 {
		t.Fatalf("executions after offset shard = %d, want 2", got)
	}
	// The nested tensor view is never built on the shard path.
	if got := s.Engine().NestedViews(); got != 0 {
		t.Fatalf("shard path built %d nested views, want 0", got)
	}
}

// TestShardStreamedPathBitIdentical forces the over-the-cache-bound
// branch (trial-at-a-time, uncached) and pins the exactness contract
// there too: the streamed shard's state must merge bit-identically with
// a cursor-path reference, and repeating it must reproduce the same
// bytes (the trial-at-a-time fill is deterministic, unlike a
// multi-observer streaming fill).
func TestShardStreamedPathBitIdentical(t *testing.T) {
	// A server whose sweep cache bound is below any real geometry: every
	// shard takes the streamed branch.
	s := New(Options{Workers: 4, MaxCachedSweepSamples: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	geom := cluster.Config{Trials: 4, Ranks: 2, Iterations: 6, Threads: 48, Seed: 13}

	sr := fetchShard(t, ts.URL, ShardRequest{App: "minife", Geometry: &geom, TrialLo: 1, TrialHi: 3})
	if !sr.Streamed {
		t.Fatal("expected the streamed branch")
	}
	again := fetchShard(t, ts.URL, ShardRequest{App: "minife", Geometry: &geom, TrialLo: 1, TrialHi: 3})
	if string(sr.MetricsState) != string(again.MetricsState) {
		t.Fatal("streamed shard state is not deterministic across runs")
	}

	// Reference: the cached cursor path on a fresh default server.
	ref, refTS := newTestServer(t)
	_ = ref
	want := fetchShard(t, refTS.URL, ShardRequest{App: "minife", Geometry: &geom, TrialLo: 1, TrialHi: 3})
	if want.Streamed {
		t.Fatal("reference unexpectedly streamed")
	}
	if string(sr.MetricsState) != string(want.MetricsState) || string(sr.Table1State) != string(want.Table1State) {
		t.Fatal("streamed shard state diverges from the cursor path")
	}
}
