package serve

import (
	"fmt"
	"net/http"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/dlb"
	"earlybird/internal/stats/normality"
	"earlybird/internal/workload"
)

// SweepRequest describes a scenario grid: the cross product of
// applications, geometries, significance levels and laggard thresholds.
// Omitted axes default to one paper-default point, so {"apps":
// ["minife","miniqmc"]} is a two-cell sweep.
type SweepRequest struct {
	// Apps are the built-in application models to sweep.
	Apps []string `json:"apps"`
	// Geometries and GeometryNames together form the geometry axis; a
	// zero geometry entry means the paper's. Both empty means one
	// paper-geometry point.
	Geometries    []cluster.Config `json:"geometries,omitempty"`
	GeometryNames []string         `json:"geometry_names,omitempty"`
	// Alphas is the normality significance axis; empty means [0.05].
	Alphas []float64 `json:"alphas,omitempty"`
	// LaggardThresholdsSec is the laggard rule axis; empty means [1 ms].
	LaggardThresholdsSec []float64 `json:"laggard_thresholds_sec,omitempty"`
	// DLBs is the runtime rebalancing axis; empty means one point at the
	// server's default policy (static unless the server overrides it).
	DLBs []dlb.Spec `json:"dlbs,omitempty"`
	// Workers bounds how many cells run concurrently; omitted or <= 0
	// uses the engine's bound.
	Workers int `json:"workers,omitempty"`
}

// SweepRow is one NDJSON line of the /v1/sweep response: one grid cell's
// streaming analysis. Rows arrive in completion order; Index places the
// row in the request grid (app-major, then geometry, alpha, threshold).
type SweepRow struct {
	Index               int                 `json:"index"`
	App                 string              `json:"app"`
	Geometry            cluster.Config      `json:"geometry"`
	Alpha               float64             `json:"alpha"`
	LaggardThresholdSec float64             `json:"laggard_threshold_sec"`
	DLB                 dlb.Spec            `json:"dlb"`
	Metrics             analysis.AppMetrics `json:"metrics"`
	Table1              analysis.Table1     `json:"table1"`
	// Recommendation is the Section 5 verdict from the streaming
	// discriminants (core.ClassifyMetrics).
	Recommendation core.Recommendation `json:"recommendation"`
	// DatasetCacheHit reports the cell was answered from the engine's
	// columnar cache without a fresh generation.
	DatasetCacheHit bool `json:"dataset_cache_hit"`
	// Streamed reports the cell ran on the bounded-memory streaming fill
	// (geometry above the cache bound) instead of the cached cursor path.
	Streamed bool   `json:"streamed"`
	Err      string `json:"error,omitempty"`
	// Shards and ShardWorkers report federated execution: how many trial
	// shards the cell was split into and which workers computed them (in
	// shard order). Empty for locally computed rows.
	Shards       int      `json:"shards,omitempty"`
	ShardWorkers []string `json:"shard_workers,omitempty"`
	// StoreHit reports the row was served from the coordinator's durable
	// result store — no shard was dispatched or executed for it.
	StoreHit bool `json:"store_hit,omitempty"`
}

// SweepCell is one expanded cell of a sweep grid: the unit the sweep
// handler computes locally and the fleet scheduler dispatches to
// workers. Alpha, LaggardThresholdSec and DLB are fully resolved (no
// zero defaults left; the zero DLB is canonical static).
type SweepCell struct {
	Index               int            `json:"index"`
	App                 string         `json:"app"`
	Geometry            cluster.Config `json:"geometry"`
	Alpha               float64        `json:"alpha"`
	LaggardThresholdSec float64        `json:"laggard_threshold_sec"`
	DLB                 dlb.Spec       `json:"dlb"`
}

// Cells expands the request into its grid, in deterministic app-major
// order (then geometry, alpha, threshold, DLB policy) — the Index of
// each cell is its position in that order. DLB entries resolve to their
// canonical form, so spelled-out defaults occupy the same cell as their
// shorthand.
func (req SweepRequest) Cells() ([]SweepCell, error) {
	if len(req.Apps) == 0 {
		return nil, fmt.Errorf("sweep needs at least one app")
	}
	geoms := make([]cluster.Config, 0, len(req.Geometries)+len(req.GeometryNames))
	for _, g := range req.Geometries {
		geoms = append(geoms, defaultedGeometry(g))
	}
	for _, name := range req.GeometryNames {
		g, err := namedGeometry(name)
		if err != nil {
			return nil, err
		}
		geoms = append(geoms, g)
	}
	if len(geoms) == 0 {
		geoms = []cluster.Config{cluster.DefaultConfig()}
	}
	alphas := req.Alphas
	if len(alphas) == 0 {
		alphas = []float64{normality.DefaultAlpha}
	}
	laggards := req.LaggardThresholdsSec
	if len(laggards) == 0 {
		laggards = []float64{analysis.DefaultLaggardThresholdSec}
	}
	dlbs := make([]dlb.Spec, 0, len(req.DLBs))
	for _, d := range req.DLBs {
		resolved, err := d.Resolve()
		if err != nil {
			return nil, err
		}
		dlbs = append(dlbs, resolved)
	}
	if len(dlbs) == 0 {
		dlbs = []dlb.Spec{{}}
	}

	n := len(req.Apps) * len(geoms) * len(alphas) * len(laggards) * len(dlbs)
	if n > maxSweepCells {
		return nil, fmt.Errorf("sweep grid has %d cells, limit %d", n, maxSweepCells)
	}
	cells := make([]SweepCell, 0, n)
	for _, app := range req.Apps {
		for _, g := range geoms {
			for _, a := range alphas {
				for _, l := range laggards {
					for _, d := range dlbs {
						cells = append(cells, SweepCell{
							Index: len(cells), App: app, Geometry: g, Alpha: a, LaggardThresholdSec: l, DLB: d,
						})
					}
				}
			}
		}
	}
	return cells, nil
}

// sweepCell analyses one grid cell without ever building the nested
// tensor view: cached geometries read the engine's columnar store
// through fresh cursors; larger ones run the bounded-memory streaming
// fill and bypass the cache entirely.
func (s *Server) sweepCell(c SweepCell) SweepRow {
	row := SweepRow{
		Index:               c.Index,
		App:                 c.App,
		Geometry:            c.Geometry,
		Alpha:               c.Alpha,
		LaggardThresholdSec: c.LaggardThresholdSec,
		DLB:                 c.DLB,
	}
	if err := c.Geometry.Validate(); err != nil {
		row.Err = err.Error()
		return row
	}
	if c.Geometry.Samples() <= s.maxSweepSamples {
		model, err := workload.ByName(c.App)
		if err != nil {
			row.Err = err.Error()
			return row
		}
		col, hit, err := s.eng.ColumnarDLB(model, c.Geometry, c.DLB)
		if err != nil {
			row.Err = err.Error()
			return row
		}
		row.DatasetCacheHit = hit
		row.Metrics = analysis.ComputeMetricsStreaming(c.App, col.Cursor(), c.LaggardThresholdSec)
		row.Table1 = analysis.Table1Streaming(c.App, col.Cursor(), c.Alpha)
	} else {
		// The streaming fill bypasses the engine (and its progress
		// factory), so register the cell's live tracker here.
		tr := s.newTracker(c.App, c.Geometry, c.DLB)
		res, err := core.StreamStudy(core.Options{
			App:      c.App,
			Geometry: c.Geometry,
			Policy: core.PolicySpec{
				DLB:                 c.DLB,
				Alpha:               c.Alpha,
				LaggardThresholdSec: c.LaggardThresholdSec,
			},
			Progress: tr,
		})
		s.tel.Finish(tr)
		if err != nil {
			row.Err = err.Error()
			return row
		}
		row.Streamed = true
		row.Metrics = res.Metrics
		row.Table1 = res.Table1
	}
	row.Recommendation = core.ClassifyMetrics(row.Metrics)
	return row
}

// handleSweep streams the grid as NDJSON: one row per cell, written and
// flushed the moment the cell completes, so clients see results while
// the rest of the grid is still computing and the server never holds
// more than the in-flight cells' accumulator state. With a fleet
// configured (Options.Fleet), cells fan out to the fleet's workers
// transparently and only fall back to local execution when no healthy
// peer can take them.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.DLBs) == 0 {
		req.DLBs = []dlb.Spec{s.opts.DefaultDLB}
	}
	cells, err := req.Cells()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	emit := startNDJSON(w, "X-Sweep-Cells", len(cells))
	fanOut(len(cells), s.clampWorkers(req.Workers, len(cells)), func(i int) {
		if s.opts.Fleet != nil {
			if row, ok := s.opts.Fleet.DispatchCell(r.Context(), cells[i]); ok {
				s.fleetCells.Add(1)
				emit(row)
				return
			}
			s.fleetFallbacks.Add(1)
		}
		release := s.acquire()
		row := s.sweepCell(cells[i])
		release()
		emit(row)
	})
}
