package serve

import (
	"fmt"
	"net/http"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/dlb"
	"earlybird/internal/engine"
	"earlybird/internal/fnv"
	"earlybird/internal/network"
	"earlybird/internal/partcomm"
	"earlybird/internal/workload"
)

// StrategiesRequest describes one strategy-lab run: a grid of (app,
// geometry) cells, each evaluated against the same delivery-strategy
// grid — bulk and fine-grained anchors, binned delivery at every
// timeout, EWMA-predicted binning at every smoothing factor, the
// IQR-switching hybrid, and a laggard-aware policy tuned per cell from
// the measured laggard statistics. Omitted axes default to one
// paper-default point; omitted grid parameters default to the standard
// optimizer grid.
type StrategiesRequest struct {
	// Apps are the built-in application models to evaluate.
	Apps []string `json:"apps"`
	// Geometries and GeometryNames together form the geometry axis; a
	// zero geometry entry means the paper's. Both empty means one
	// paper-geometry point.
	Geometries    []cluster.Config `json:"geometries,omitempty"`
	GeometryNames []string         `json:"geometry_names,omitempty"`
	// BytesPerPartition sizes the partitions (one per thread); omitted
	// means 1 MiB.
	BytesPerPartition int `json:"bytes_per_partition,omitempty"`
	// Fabric overrides the interconnect model; omitted means the
	// paper's Omni-Path parameters.
	Fabric *network.Fabric `json:"fabric,omitempty"`
	// TimeoutsSec is the binned-delivery timeout axis; empty means the
	// standard grid (0.25, 0.5, 1, 2 ms).
	TimeoutsSec []float64 `json:"timeouts_sec,omitempty"`
	// EWMAAlphas is the EWMA-binning smoothing axis; empty means [0.2].
	EWMAAlphas []float64 `json:"ewma_alphas,omitempty"`
	// LaggardThresholdSec tunes the laggard statistics feeding the
	// laggard-aware strategy; omitted means the paper's 1 ms rule.
	LaggardThresholdSec float64 `json:"laggard_threshold_sec,omitempty"`
	// DLB is the runtime rebalancing policy every cell's dataset is
	// generated under; omitted means the server's default (static unless
	// the server overrides it).
	DLB *dlb.Spec `json:"dlb,omitempty"`
	// Stream switches the response to NDJSON: one StrategyRow per line,
	// written as each cell completes.
	Stream bool `json:"stream,omitempty"`
	// Workers bounds how many cells run concurrently; omitted or <= 0
	// uses the engine's bound.
	Workers int `json:"workers,omitempty"`
}

// StrategyRow is one (app, geometry) cell's outcome: the per-strategy
// results plus the frontier, computed entirely on the columnar cursor
// path.
type StrategyRow struct {
	Index             int            `json:"index"`
	App               string         `json:"app"`
	Geometry          cluster.Config `json:"geometry"`
	BytesPerPartition int            `json:"bytes_per_partition"`
	// DLB echoes the resolved rebalancing policy the cell's dataset was
	// generated under (zero value: static).
	DLB dlb.Spec `json:"dlb"`
	partcomm.Sweep
	// Source reports which layer answered: result-cache, coalesced or
	// executed (set on JSON and NDJSON rows alike).
	Source Source `json:"source,omitempty"`
	// DatasetCacheHit reports the evaluation read an engine-cached
	// columnar store rather than generating one (meaningful for
	// executed rows).
	DatasetCacheHit bool   `json:"dataset_cache_hit"`
	Err             string `json:"error,omitempty"`
}

// StrategiesResponse is the JSON-mode /v1/strategies reply: one row per
// cell, in grid order. Per-cell failures carry an error string; the
// other rows are still valid.
type StrategiesResponse struct {
	Rows   []StrategyRow `json:"rows"`
	Failed int           `json:"failed"`
}

// strategyCellKey identifies one cell's fully resolved evaluation for
// coalescing: the engine spec key (app, geometry, partition size,
// fabric) plus a hash of the strategy grid.
type strategyCellKey struct {
	spec engine.SpecKey
	grid uint64
}

// stratConfig is the request's resolved, cell-invariant configuration.
type stratConfig struct {
	bytesPerPartition int
	fabric            network.Fabric
	timeoutsSec       []float64
	ewmaAlphas        []float64
	laggardThreshold  float64
	dlb               dlb.Spec
	gridHash          uint64
}

// StrategyCell is one expanded (app, geometry) cell of a strategies
// grid: the unit the handler evaluates locally and the fleet dispatches
// whole to workers (strategy cells are self-contained, so federation
// needs no accumulator plumbing — rows merge by concatenation).
type StrategyCell struct {
	Index    int            `json:"index"`
	App      string         `json:"app"`
	Geometry cluster.Config `json:"geometry"`
}

// resolve fills the request's defaults and hashes the strategy grid.
func (req StrategiesRequest) resolve() (stratConfig, error) {
	cfg := stratConfig{
		bytesPerPartition: req.BytesPerPartition,
		timeoutsSec:       req.TimeoutsSec,
		ewmaAlphas:        req.EWMAAlphas,
		laggardThreshold:  req.LaggardThresholdSec,
		fabric:            network.OmniPath(),
	}
	if cfg.bytesPerPartition == 0 {
		cfg.bytesPerPartition = 1 << 20
	}
	if cfg.bytesPerPartition < 0 {
		return cfg, fmt.Errorf("bytes_per_partition must be positive")
	}
	if req.Fabric != nil {
		if err := req.Fabric.Validate(); err != nil {
			return cfg, err
		}
		cfg.fabric = *req.Fabric
	}
	if len(cfg.timeoutsSec) == 0 {
		cfg.timeoutsSec = core.DefaultStrategyTimeoutsSec()
	}
	for _, t := range cfg.timeoutsSec {
		if t <= 0 {
			return cfg, fmt.Errorf("timeouts_sec entries must be positive, got %g", t)
		}
	}
	if len(cfg.ewmaAlphas) == 0 {
		cfg.ewmaAlphas = core.DefaultStrategyEWMAAlphas()
	}
	for _, a := range cfg.ewmaAlphas {
		if a <= 0 || a > 1 {
			return cfg, fmt.Errorf("ewma_alphas entries must be in (0, 1], got %g", a)
		}
	}
	if cfg.laggardThreshold == 0 {
		cfg.laggardThreshold = analysis.DefaultLaggardThresholdSec
	}
	if cfg.laggardThreshold < 0 {
		return cfg, fmt.Errorf("laggard_threshold_sec must be positive")
	}
	if req.DLB != nil {
		resolved, err := req.DLB.Resolve()
		if err != nil {
			return cfg, err
		}
		cfg.dlb = resolved
	}
	cfg.gridHash = cfg.hash()
	return cfg, nil
}

// hash folds the strategy-grid parameters into an FNV-1a value — the
// grid half of the coalescing key. (The app/geometry/partition/fabric
// half lives in the engine SpecKey.)
func (cfg stratConfig) hash() uint64 {
	h := fnv.U64(fnv.Offset64, uint64(len(cfg.timeoutsSec)))
	for _, t := range cfg.timeoutsSec {
		h = fnv.F64(h, t)
	}
	h = fnv.U64(h, uint64(len(cfg.ewmaAlphas)))
	for _, a := range cfg.ewmaAlphas {
		h = fnv.F64(h, a)
	}
	return fnv.F64(h, cfg.laggardThreshold)
}

// Cells expands the request into its (app, geometry) grid, in
// deterministic app-major order.
func (req StrategiesRequest) Cells() ([]StrategyCell, error) {
	if len(req.Apps) == 0 {
		return nil, fmt.Errorf("strategies request needs at least one app")
	}
	geoms := make([]cluster.Config, 0, len(req.Geometries)+len(req.GeometryNames))
	for _, g := range req.Geometries {
		geoms = append(geoms, defaultedGeometry(g))
	}
	for _, name := range req.GeometryNames {
		g, err := namedGeometry(name)
		if err != nil {
			return nil, err
		}
		geoms = append(geoms, g)
	}
	if len(geoms) == 0 {
		geoms = []cluster.Config{cluster.DefaultConfig()}
	}
	n := len(req.Apps) * len(geoms)
	if n > maxSweepCells {
		return nil, fmt.Errorf("strategy grid has %d cells, limit %d", n, maxSweepCells)
	}
	cells := make([]StrategyCell, 0, n)
	for _, app := range req.Apps {
		for _, g := range geoms {
			cells = append(cells, StrategyCell{Index: len(cells), App: app, Geometry: g})
		}
	}
	return cells, nil
}

// cellKey resolves one cell to its coalescing key. The engine spec
// carries app, geometry, partition size and fabric; analysis parameters
// that do not affect the strategy evaluation stay at their defaults so
// equal cells key equally.
func (s *Server) cellKey(c StrategyCell, cfg stratConfig) (strategyCellKey, error) {
	sp := engine.Spec{
		App:               c.App,
		Geometry:          c.Geometry,
		BytesPerPartition: cfg.bytesPerPartition,
		Fabric:            cfg.fabric,
		DLB:               cfg.dlb,
	}
	resolved, err := sp.Resolve()
	if err != nil {
		return strategyCellKey{}, err
	}
	return strategyCellKey{spec: resolved.Key(), grid: cfg.gridHash}, nil
}

// strategyCell evaluates one cell on the columnar cursor path: laggard
// statistics stream first (tuning the laggard-aware policy), then every
// strategy evaluates in a single cursor pass. The nested tensor view is
// never built.
func (s *Server) strategyCell(c StrategyCell, cfg stratConfig) StrategyRow {
	row := StrategyRow{
		Index:             c.Index,
		App:               c.App,
		Geometry:          c.Geometry,
		BytesPerPartition: cfg.bytesPerPartition,
		DLB:               cfg.dlb,
	}
	if err := c.Geometry.Validate(); err != nil {
		row.Err = err.Error()
		return row
	}
	if n := c.Geometry.Samples(); n > s.maxStudySamples {
		row.Err = fmt.Sprintf("geometry has %d samples, over the strategy-evaluation limit %d", n, s.maxStudySamples)
		return row
	}
	model, err := workload.ByName(c.App)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	col, hit, err := s.eng.ColumnarDLB(model, c.Geometry, cfg.dlb)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.DatasetCacheHit = hit
	lag := analysis.LaggardsStream(col.Cursor(), cfg.laggardThreshold)
	grid := partcomm.Grid(cfg.timeoutsSec, cfg.ewmaAlphas, lag)
	row.Sweep = partcomm.SweepCursor(col.Cursor(), cfg.bytesPerPartition, cfg.fabric, grid)
	return row
}

// runStrategyCell answers one cell through the coalescing stack: LRU
// result cache, then singleflight join, then execution under the
// server's worker semaphore.
func (s *Server) runStrategyCell(c StrategyCell, cfg stratConfig) StrategyRow {
	key, err := s.cellKey(c, cfg)
	if err != nil {
		return StrategyRow{Index: c.Index, App: c.App, Geometry: c.Geometry,
			BytesPerPartition: cfg.bytesPerPartition, DLB: cfg.dlb, Err: err.Error()}
	}
	row, src := s.strat.do(key, func() (StrategyRow, bool) {
		defer s.acquire()()
		r := s.strategyCell(c, cfg)
		return r, r.Err == ""
	})
	s.stratSources.count(src)
	// Cached and coalesced answers echo the original execution's row;
	// re-stamp the identity fields that belong to this request.
	row.Index = c.Index
	row.Source = src
	return row
}

// handleStrategies answers POST /v1/strategies: a JSON reply with every
// cell in grid order, or — with "stream": true — NDJSON rows written and
// flushed as cells complete.
func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	var req StrategiesRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.DLB == nil {
		d := s.opts.DefaultDLB
		req.DLB = &d
	}
	cfg, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cells, err := req.Cells()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	workers := s.clampWorkers(req.Workers, len(cells))
	if req.Stream {
		emit := startNDJSON(w, "X-Strategy-Cells", len(cells))
		fanOut(len(cells), workers, func(i int) {
			emit(s.runStrategyCell(cells[i], cfg))
		})
		return
	}

	rows := make([]StrategyRow, len(cells))
	fanOut(len(cells), workers, func(i int) {
		rows[i] = s.runStrategyCell(cells[i], cfg)
	})
	resp := StrategiesResponse{Rows: rows}
	for i := range rows {
		if rows[i].Err != "" {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
