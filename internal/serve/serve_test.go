package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"earlybird/internal/cluster"
	"earlybird/internal/engine"
)

// testGeom keeps service tests fast while preserving the 48-thread sets
// the analysis is calibrated for.
func testGeom() cluster.Config {
	return cluster.Config{Trials: 1, Ranks: 2, Iterations: 12, Threads: 48, Seed: 1}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func TestStudyCoalescingSingleExecution(t *testing.T) {
	s, ts := newTestServer(t)
	spec := StudySpec{App: "minife", Geometry: ptr(testGeom())}

	const n = 8
	var wg sync.WaitGroup
	responses := make([]StudyResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/study", spec)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// The acceptance criterion: N concurrent identical studies, one
	// engine execution.
	if got := s.Engine().Executions(); got != 1 {
		t.Errorf("engine executions = %d, want 1 for %d identical requests", got, n)
	}
	if got := s.sources.executed.Load(); got != 1 {
		t.Errorf("executed answers = %d, want 1", got)
	}
	if shared := s.sources.coalesced.Load() + s.sources.lruHits.Load(); shared != n-1 {
		t.Errorf("coalesced+cache answers = %d, want %d", shared, n-1)
	}
	// Every response carries the identical analysis.
	for i := 1; i < n; i++ {
		if responses[i].Metrics != responses[0].Metrics {
			t.Fatalf("response %d metrics diverged", i)
		}
		if responses[i].Assessment.Recommendation != responses[0].Assessment.Recommendation {
			t.Fatalf("response %d recommendation diverged", i)
		}
	}
}

func TestStudyResultCacheServesRepeat(t *testing.T) {
	_, ts := newTestServer(t)
	spec := StudySpec{App: "minimd", Geometry: ptr(testGeom())}

	var first, second StudyResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", spec), &first)
	if first.Source != SourceExecuted {
		t.Errorf("first source = %q, want executed", first.Source)
	}
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", spec), &second)
	if second.Source != SourceResultCache {
		t.Errorf("second source = %q, want result-cache", second.Source)
	}
	if first.Metrics != second.Metrics {
		t.Error("cached metrics diverged from executed metrics")
	}
	// Defaults were resolved: alpha filled, geometry echoed.
	if second.Alpha != 0.05 {
		t.Errorf("alpha = %v, want resolved default 0.05", second.Alpha)
	}
	if second.Geometry != testGeom() {
		t.Errorf("geometry echoed %+v, want %+v", second.Geometry, testGeom())
	}
}

func TestCampaignEndpointDedupsAndOrders(t *testing.T) {
	s, ts := newTestServer(t)
	g := ptr(testGeom())
	req := CampaignRequest{Specs: []StudySpec{
		{App: "minife", Geometry: g},
		{App: "miniqmc", Geometry: g},
		{App: "minife", Geometry: g}, // duplicate of 0
		{App: "nosuchapp"},           // per-spec failure
	}}

	var resp CampaignResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/campaign", req), &resp)

	if len(resp.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(resp.Results))
	}
	for i, e := range resp.Results {
		if e.Index != i {
			t.Errorf("result %d has index %d", i, e.Index)
		}
	}
	if resp.Failed != 1 || resp.Results[3].Err == "" {
		t.Errorf("failed = %d (entry err %q), want exactly the unknown app to fail",
			resp.Failed, resp.Results[3].Err)
	}
	if resp.Results[0].App != "minife" || resp.Results[1].App != "miniqmc" {
		t.Error("results not in spec order")
	}
	// The duplicate cost no second execution of the minife study.
	if got := s.Engine().Executions(); got != 2 {
		t.Errorf("engine executions = %d, want 2 (minife + miniqmc)", got)
	}
}

func TestFeasibilityEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var resp FeasibilityResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/feasibility", StudySpec{App: "miniqmc", Geometry: ptr(testGeom())}), &resp)
	if resp.App != "miniqmc" {
		t.Errorf("app = %q", resp.App)
	}
	if resp.Assessment.Recommendation == "" {
		t.Error("assessment has no recommendation")
	}
	if len(resp.Assessment.Results) != 3 {
		t.Errorf("got %d strategy results, want 3", len(resp.Assessment.Results))
	}
}

func TestSweepStreamsNDJSONWithoutMaterializing(t *testing.T) {
	s, ts := newTestServer(t)
	req := SweepRequest{
		Apps:       []string{"minife", "minimd", "miniqmc"},
		Geometries: []cluster.Config{testGeom()},
		Alphas:     []float64{0.05, 0.01},
	}

	resp := postJSON(t, ts.URL+"/v1/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}
	if cells := resp.Header.Get("X-Sweep-Cells"); cells != "6" {
		t.Errorf("X-Sweep-Cells = %q, want 6", cells)
	}
	// Streaming: the body is chunked, not a buffered Content-Length reply.
	if resp.ContentLength >= 0 {
		t.Errorf("response has Content-Length %d; want a streamed body", resp.ContentLength)
	}

	seen := map[int]SweepRow{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row SweepRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if row.Err != "" {
			t.Fatalf("cell %d failed: %s", row.Index, row.Err)
		}
		seen[row.Index] = row
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("got %d rows, want 6", len(seen))
	}
	for i := 0; i < 6; i++ {
		row, ok := seen[i]
		if !ok {
			t.Fatalf("missing row %d", i)
		}
		if row.Recommendation == "" {
			t.Errorf("row %d has no recommendation", i)
		}
		if row.Metrics.MeanMedianSec <= 0 {
			t.Errorf("row %d has empty metrics", i)
		}
	}

	// The acceptance criterion: the sweep ran entirely on the columnar
	// cursor path — no cached dataset ever grew its nested tensor view.
	if got := s.Engine().NestedViews(); got != 0 {
		t.Errorf("nested views = %d after sweep, want 0 (dataset materialised server-side)", got)
	}
	// Three apps at one geometry: three generations, the alpha axis
	// re-read them from cache.
	if got := s.Engine().Executions(); got != 3 {
		t.Errorf("engine executions = %d, want 3", got)
	}
}

// flushCounter proves each NDJSON row is flushed individually.
type flushCounter struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushCounter) Flush() {
	f.flushes++
	f.ResponseRecorder.Flush()
}

func TestSweepFlushesEveryRow(t *testing.T) {
	s := New(Options{Workers: 2})
	body, _ := json.Marshal(SweepRequest{
		Apps:       []string{"minife", "minimd"},
		Geometries: []cluster.Config{testGeom()},
	})
	req := httptest.NewRequest("POST", "/v1/sweep", bytes.NewReader(body))
	rec := &flushCounter{ResponseRecorder: httptest.NewRecorder()}
	s.Handler().ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	lines := strings.Count(rec.Body.String(), "\n")
	if lines != 2 {
		t.Fatalf("got %d rows, want 2", lines)
	}
	if rec.flushes < lines {
		t.Errorf("flushed %d times for %d rows; rows are being buffered, not streamed", rec.flushes, lines)
	}
}

func TestSweepLargeGeometryBypassesCache(t *testing.T) {
	// A cache bound below the test geometry forces the streaming-fill
	// path: the row must be marked streamed and the engine cache must
	// stay empty.
	s := New(Options{Workers: 2, MaxCachedSweepSamples: testGeom().Samples() - 1})
	body, _ := json.Marshal(SweepRequest{
		Apps:       []string{"minife"},
		Geometries: []cluster.Config{testGeom()},
	})
	req := httptest.NewRequest("POST", "/v1/sweep", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	var row SweepRow
	if err := json.Unmarshal(bytes.TrimSpace(rec.Body.Bytes()), &row); err != nil {
		t.Fatalf("bad row: %v", err)
	}
	if row.Err != "" {
		t.Fatal(row.Err)
	}
	if !row.Streamed {
		t.Error("over-bound geometry did not use the streaming fill")
	}
	if got := s.Engine().CachedDatasets(); got != 0 {
		t.Errorf("streaming-fill sweep cached %d datasets, want 0", got)
	}
	if row.Metrics.MeanMedianSec <= 0 || row.Recommendation == "" {
		t.Error("streamed row has empty analysis")
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	spec := StudySpec{App: "minife", Geometry: ptr(testGeom())}
	postJSON(t, ts.URL+"/v1/study", spec).Body.Close()
	postJSON(t, ts.URL+"/v1/study", spec).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	decodeInto(t, resp, &stats)

	ep, ok := stats.Endpoints["/v1/study"]
	if !ok {
		t.Fatalf("no /v1/study endpoint stats: %+v", stats.Endpoints)
	}
	if ep.Requests != 2 || ep.Errors != 0 {
		t.Errorf("study endpoint: %+v, want 2 requests 0 errors", ep)
	}
	if stats.Study.Executed != 1 || stats.Study.ResultCacheHits != 1 {
		t.Errorf("study sources: %+v, want 1 executed + 1 cache hit", stats.Study)
	}
	if stats.Engine.Executions != 1 || stats.Engine.CachedDatasets != 1 {
		t.Errorf("engine stats: %+v", stats.Engine)
	}
	if stats.Study.ResultCacheSize != 1 {
		t.Errorf("result cache size = %d, want 1", stats.Study.ResultCacheSize)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/study", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Unknown field (typo protection).
	resp, err = http.Post(ts.URL+"/v1/study", "application/json", strings.NewReader(`{"appp":"minife"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// Unknown app.
	resp = postJSON(t, ts.URL+"/v1/study", StudySpec{App: "nosuchapp"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown app: status %d, want 422", resp.StatusCode)
	}

	// Conflicting geometry fields.
	resp = postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: ptr(testGeom()), GeometryName: "quick"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("conflicting geometry: status %d, want 422", resp.StatusCode)
	}

	// Geometry over the study sample bound (the sweep path is the
	// documented escape hatch for large geometries).
	huge := cluster.Config{Trials: 1000, Ranks: 100, Iterations: 10000, Threads: 100, Seed: 1}
	resp = postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: &huge})
	var capErr errorResponse
	decodeInto(t, resp, &capErr)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("oversized study: status %d, want 422", resp.StatusCode)
	}
	if !strings.Contains(capErr.Error, "/v1/sweep") {
		t.Errorf("oversized study error %q does not point at /v1/sweep", capErr.Error)
	}

	// Oversized campaign batch.
	resp = postJSON(t, ts.URL+"/v1/campaign", CampaignRequest{Specs: make([]StudySpec, maxCampaignSpecs+1)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized campaign: status %d, want 400", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/study")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET study: status %d, want 405", resp.StatusCode)
	}

	// Empty campaign.
	resp = postJSON(t, ts.URL+"/v1/campaign", CampaignRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty campaign: status %d, want 400", resp.StatusCode)
	}

	// Oversized sweep grid.
	resp = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Apps:   []string{"minife"},
		Alphas: make([]float64, maxSweepCells+1),
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized sweep: status %d, want 400", resp.StatusCode)
	}
}

func TestGracefulShutdown(t *testing.T) {
	s := New(Options{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()

	url := "http://" + ln.Addr().String()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-served:
		if err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := http.Get(url + "/v1/healthz"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

func TestCoalescerJoinsInFlight(t *testing.T) {
	// Deterministic singleflight proof: the first caller blocks inside
	// run until every other caller has had time to join; exactly one
	// execution happens and everyone gets its result.
	co := newCoalescer[engine.SpecKey, engine.Result](8)
	key := mustKey(t, engine.Spec{App: "minife", Geometry: testGeom()})

	const n = 6
	started := make(chan struct{})
	release := make(chan struct{})
	var executions int
	var wg sync.WaitGroup
	sources := make([]Source, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, sources[0] = co.do(key, func() (engine.Result, bool) {
			close(started)
			<-release
			executions++
			return engine.Result{}, true
		})
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sources[i] = co.do(key, func() (engine.Result, bool) {
				t.Error("second execution ran")
				return engine.Result{}, true
			})
		}(i)
	}
	// Give the joiners time to attach to the flight, then release it.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if executions != 1 {
		t.Fatalf("executions = %d, want 1", executions)
	}
	if sources[0] != SourceExecuted {
		t.Errorf("first caller source = %q", sources[0])
	}
	for i := 1; i < n; i++ {
		if sources[i] != SourceCoalesced {
			t.Errorf("caller %d source = %q, want coalesced", i, sources[i])
		}
	}
	// And the finished flight landed in the result cache.
	if _, src := co.do(key, func() (engine.Result, bool) {
		t.Error("cached key re-executed")
		return engine.Result{}, true
	}); src != SourceResultCache {
		t.Errorf("post-flight source = %q, want result-cache", src)
	}
}

func TestCoalescerLRUEviction(t *testing.T) {
	co := newCoalescer[engine.SpecKey, engine.Result](2)
	keys := make([]engine.SpecKey, 3)
	for i := range keys {
		g := testGeom()
		g.Seed = uint64(i + 1)
		keys[i] = mustKey(t, engine.Spec{App: "minife", Geometry: g})
		co.do(keys[i], func() (engine.Result, bool) { return engine.Result{}, true })
	}
	if co.size() != 2 {
		t.Fatalf("cache size = %d, want 2", co.size())
	}
	// keys[0] was evicted; keys[1] and keys[2] remain.
	if _, src := co.do(keys[0], func() (engine.Result, bool) { return engine.Result{}, true }); src != SourceExecuted {
		t.Errorf("evicted key source = %q, want executed", src)
	}
	if _, src := co.do(keys[2], func() (engine.Result, bool) {
		t.Error("resident key re-executed")
		return engine.Result{}, true
	}); src != SourceResultCache {
		t.Errorf("resident key source = %q, want result-cache", src)
	}
}

func ptr[T any](v T) *T { return &v }

func mustKey(t *testing.T, sp engine.Spec) engine.SpecKey {
	t.Helper()
	resolved, err := sp.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return resolved.Key()
}
