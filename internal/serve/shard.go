// The /v1/shard endpoint: the worker half of federated sweep execution.
// A shard is one sweep cell restricted to a contiguous range of its
// trial space; the response carries the mergeable accumulator state —
// not finished rows — so a coordinator can combine shards from many
// workers into a result provably equal to single-node execution.
//
// Exactness contract: the workload models are deterministic functions of
// (root seed, absolute trial, rank, iteration), so a worker generating
// trials [lo, hi) of a geometry produces bit-identical samples to those
// trials of a full single-node run, observed in the same within-trial
// order by the cursor. The accumulators key their partials by absolute
// trial and finalize in ascending-trial order, which makes every
// moment-derived metric and the Table 1 row bit-identical under any
// trial partition; only the sketch-backed IQR statistics degrade to the
// sketch's documented rank-error bound.

package serve

import (
	"fmt"
	"net/http"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/rng"
	"earlybird/internal/stats/normality"
	"earlybird/internal/workload"
)

// ShardRequest asks for one cell's accumulator state over the trial
// range [TrialLo, TrialHi). Geometry fields resolve exactly like
// StudySpec's; Alpha and LaggardThresholdSec default to the paper's.
type ShardRequest struct {
	App string `json:"app"`
	// Geometry is the FULL cell geometry (its Trials is the whole trial
	// space, not the shard's size); mutually exclusive with GeometryName.
	Geometry     *cluster.Config `json:"geometry,omitempty"`
	GeometryName string          `json:"geometry_name,omitempty"`
	Alpha        float64         `json:"alpha,omitempty"`
	LaggardSec   float64         `json:"laggard_threshold_sec,omitempty"`
	// DLB is the cell's rebalancing policy; omitted means static. Shards
	// never apply a server default: the coordinator resolved the cell's
	// policy and the worker must execute exactly that. Rebalancing is
	// strictly per-trial, so the exactness contract survives any trial
	// partition under any policy.
	DLB     *dlb.Spec `json:"dlb,omitempty"`
	TrialLo int       `json:"trial_lo"`
	TrialHi int       `json:"trial_hi"`
}

// ShardResponse is one shard's accumulator state. MetricsState and
// Table1State are the binary encodings of analysis.MetricsAccumulator
// and analysis.Table1Accumulator (base64 on the JSON wire), keyed by
// absolute trial so shards merge in any order.
type ShardResponse struct {
	App                 string         `json:"app"`
	Geometry            cluster.Config `json:"geometry"`
	Alpha               float64        `json:"alpha"`
	LaggardThresholdSec float64        `json:"laggard_threshold_sec"`
	// DLB echoes the resolved rebalancing policy the shard ran under
	// (zero value: static).
	DLB     dlb.Spec `json:"dlb"`
	TrialLo int      `json:"trial_lo"`
	TrialHi int      `json:"trial_hi"`
	// Blocks is the number of process-iteration blocks observed:
	// (TrialHi-TrialLo) x ranks x iterations.
	Blocks       int64  `json:"blocks"`
	MetricsState []byte `json:"metrics_state"`
	Table1State  []byte `json:"table1_state"`
	// DatasetCacheHit reports the shard read an engine-cached columnar
	// store; Streamed reports it was over the sweep cache bound and ran
	// trial-at-a-time, uncached (memory bounded by one trial's tensor,
	// observation order still deterministic).
	DatasetCacheHit bool `json:"dataset_cache_hit"`
	Streamed        bool `json:"streamed"`
}

// trialShard offsets a workload model's trial axis: shard workers
// generate trials [lo, hi) of the full geometry by running a
// (hi-lo)-trial study whose trial t maps to absolute trial t+lo. The
// name carries the offset so the engine's dataset cache keys offset
// shards separately; a lo == 0 shard keeps the base name and therefore
// shares cache entries with ordinary studies of its prefix geometry.
type trialShard struct {
	workload.Model
	lo int
}

func (m trialShard) Name() string {
	return fmt.Sprintf("%s#t%d", m.Model.Name(), m.lo)
}

func (m trialShard) FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64) {
	m.Model.FillProcessIteration(root, trial+m.lo, rank, iter, out)
}

// resolveShard validates the request and fills defaults.
func (req ShardRequest) resolve() (ShardRequest, error) {
	if req.Geometry != nil && req.GeometryName != "" {
		return req, fmt.Errorf("geometry and geometry_name are mutually exclusive")
	}
	geom := cluster.DefaultConfig()
	if req.Geometry != nil {
		geom = defaultedGeometry(*req.Geometry)
	} else if req.GeometryName != "" {
		g, err := namedGeometry(req.GeometryName)
		if err != nil {
			return req, err
		}
		geom = g
	}
	if err := geom.Validate(); err != nil {
		return req, err
	}
	req.Geometry = &geom
	if req.Alpha == 0 {
		req.Alpha = normality.DefaultAlpha
	}
	if req.LaggardSec == 0 {
		req.LaggardSec = analysis.DefaultLaggardThresholdSec
	}
	if req.DLB != nil {
		resolved, err := req.DLB.Resolve()
		if err != nil {
			return req, err
		}
		req.DLB = &resolved
	}
	if req.TrialLo < 0 || req.TrialHi <= req.TrialLo || req.TrialHi > geom.Trials {
		return req, fmt.Errorf("trial range [%d, %d) outside the geometry's %d trials",
			req.TrialLo, req.TrialHi, geom.Trials)
	}
	return req, nil
}

// runShard computes one shard's accumulator state. Shards at or below
// the sweep cache bound read the engine's columnar cache through a
// deterministic cursor (hot for repeated cells routed to this worker);
// larger shards generate and fold one trial at a time, uncached — still
// through a columnar cursor, because the exactness contract demands a
// deterministic observation order per trial (a multi-observer RunStream
// would split a trial's ranks across workers scheduling-dependently and
// shift the low-order bits). Memory on that path is bounded by one
// trial's tensor, not the shard's.
func (s *Server) runShard(req ShardRequest) (ShardResponse, error) {
	geom := *req.Geometry
	var policy dlb.Spec
	if req.DLB != nil {
		policy = *req.DLB
	}
	resp := ShardResponse{
		App:                 req.App,
		Geometry:            geom,
		Alpha:               req.Alpha,
		LaggardThresholdSec: req.LaggardSec,
		DLB:                 policy,
		TrialLo:             req.TrialLo,
		TrialHi:             req.TrialHi,
	}
	base, err := workload.ByName(req.App)
	if err != nil {
		return resp, err
	}
	var model workload.Model = base
	if req.TrialLo > 0 {
		model = trialShard{Model: base, lo: req.TrialLo}
	}
	shardGeom := geom
	shardGeom.Trials = req.TrialHi - req.TrialLo

	macc := analysis.NewMetricsAccumulator(req.App, req.LaggardSec)
	tacc := analysis.NewTable1Accumulator(req.App, req.Alpha)
	if shardGeom.Samples() <= s.maxSweepSamples {
		col, hit, err := s.eng.ColumnarDLB(model, shardGeom, policy)
		if err != nil {
			return resp, err
		}
		resp.DatasetCacheHit = hit
		cur := col.Cursor()
		for cur.Next() {
			b := cur.Block()
			macc.ObserveBlock(b.Trial+req.TrialLo, b.Rank, b.Iter, b.Times)
			tacc.ObserveBlock(b.Trial+req.TrialLo, b.Rank, b.Iter, b.Times)
		}
	} else {
		oneTrial := geom
		oneTrial.Trials = 1
		for t := req.TrialLo; t < req.TrialHi; t++ {
			var m workload.Model = base
			if t > 0 {
				m = trialShard{Model: base, lo: t}
			}
			col, err := cluster.RunColumnarDLB(m, oneTrial, policy, 0)
			if err != nil {
				return resp, err
			}
			cur := col.Cursor()
			for cur.Next() {
				b := cur.Block()
				macc.ObserveBlock(t, b.Rank, b.Iter, b.Times)
				tacc.ObserveBlock(t, b.Rank, b.Iter, b.Times)
			}
		}
		resp.Streamed = true
	}
	resp.Blocks = macc.Blocks()
	if resp.MetricsState, err = macc.MarshalBinary(); err != nil {
		return resp, err
	}
	if resp.Table1State, err = tacc.MarshalBinary(); err != nil {
		return resp, err
	}
	return resp, nil
}

// handleShard answers POST /v1/shard: one cell's trial-range accumulator
// state, for a fleet coordinator to merge. Execution takes a slot of the
// server-wide semaphore like any other study-shaped work, and adaptive
// admission gates it the same way: a worker below its efficiency
// watermark sheds the shard with 503 + Retry-After, which the
// coordinator's scheduler reads as busy-until-deadline — never as death.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resolved, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if err := s.admit(); err != nil {
		writeStudyError(w, err)
		return
	}
	release := s.acquire()
	resp, err := s.runShard(resolved)
	release()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
