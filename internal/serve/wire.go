package serve

import (
	"fmt"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/dlb"
	"earlybird/internal/engine"
	"earlybird/internal/network"
)

// PolicySpec is the unified policy envelope shared by the /v1 study
// endpoints: the analysis and runtime knobs that used to travel as flat
// request fields, plus the DLB rebalancing policy that never had a flat
// form. Set fields win over their deprecated flat counterparts; omitted
// fields fall back to the flat field, then the server default, then the
// paper default.
type PolicySpec struct {
	// DLB selects the runtime rebalancing policy the dataset is
	// generated under; omitted means the server's default (static unless
	// the server was started with one).
	DLB *dlb.Spec `json:"dlb,omitempty"`
	// Alpha is the normality significance level; omitted means 5%.
	Alpha float64 `json:"alpha,omitempty"`
	// LaggardThresholdSec is the laggard rule; omitted means 1 ms.
	LaggardThresholdSec float64 `json:"laggard_threshold_sec,omitempty"`
	// BinTimeoutSec is the binned delivery strategy's flush timeout;
	// omitted means 1 ms.
	BinTimeoutSec float64 `json:"bin_timeout_sec,omitempty"`
}

// StudySpec is the wire form of engine.Spec: everything JSON-expressible
// about one study. Zero or omitted fields fill with the paper's defaults,
// exactly as engine.Spec does, so the empty object is a valid request for
// the paper-geometry MiniFE study once "app" is set.
type StudySpec struct {
	// App names a built-in application model: minife, minimd or miniqmc.
	App string `json:"app"`
	// Geometry sizes the study explicitly; mutually exclusive with
	// GeometryName. Omitted means the paper's 10x8x200x48, seed 1.
	Geometry *cluster.Config `json:"geometry,omitempty"`
	// GeometryName selects a named geometry: "paper", "quick" or "huge".
	GeometryName string `json:"geometry_name,omitempty"`
	// Policy is the unified policy envelope. Where both the envelope and
	// a deprecated flat field are set, the envelope wins.
	Policy *PolicySpec `json:"policy,omitempty"`
	// Alpha is the normality significance level; omitted means 5%.
	//
	// Deprecated: set Policy.Alpha. Kept so pre-envelope payloads decode
	// identically.
	Alpha float64 `json:"alpha,omitempty"`
	// LaggardThresholdSec is the laggard rule; omitted means 1 ms.
	//
	// Deprecated: set Policy.LaggardThresholdSec. Kept so pre-envelope
	// payloads decode identically.
	LaggardThresholdSec float64 `json:"laggard_threshold_sec,omitempty"`
	// BytesPerPartition sizes the feasibility partitions; omitted means
	// 1 MiB.
	BytesPerPartition int `json:"bytes_per_partition,omitempty"`
	// Fabric overrides the interconnect model; omitted means the paper's
	// Omni-Path parameters.
	Fabric *network.Fabric `json:"fabric,omitempty"`
	// BinTimeoutSec is the binned delivery strategy's flush timeout;
	// omitted means 1 ms.
	//
	// Deprecated: set Policy.BinTimeoutSec. Kept so pre-envelope
	// payloads decode identically.
	BinTimeoutSec float64 `json:"bin_timeout_sec,omitempty"`
}

// namedGeometry resolves a GeometryName.
func namedGeometry(name string) (cluster.Config, error) {
	switch name {
	case "", "paper":
		return cluster.DefaultConfig(), nil
	case "quick":
		return cluster.SmallConfig(), nil
	case "huge":
		return cluster.HugeConfig(), nil
	default:
		return cluster.Config{}, fmt.Errorf("unknown geometry name %q (want paper, quick or huge)", name)
	}
}

// toSpec converts the wire spec to an engine spec, resolving the named
// geometry if one was given.
func (w StudySpec) toSpec() (engine.Spec, error) {
	sp := engine.Spec{
		App:                 w.App,
		Alpha:               w.Alpha,
		LaggardThresholdSec: w.LaggardThresholdSec,
		BytesPerPartition:   w.BytesPerPartition,
		BinTimeoutSec:       w.BinTimeoutSec,
	}
	if w.Geometry != nil && w.GeometryName != "" {
		return sp, fmt.Errorf("geometry and geometry_name are mutually exclusive")
	}
	if w.Geometry != nil {
		sp.Geometry = *w.Geometry
	} else if w.GeometryName != "" {
		g, err := namedGeometry(w.GeometryName)
		if err != nil {
			return sp, err
		}
		sp.Geometry = g
	}
	if w.Fabric != nil {
		if err := w.Fabric.Validate(); err != nil {
			return sp, err
		}
		sp.Fabric = *w.Fabric
	}
	if p := w.Policy; p != nil {
		if p.DLB != nil {
			sp.DLB = *p.DLB
		}
		if p.Alpha != 0 {
			sp.Alpha = p.Alpha
		}
		if p.LaggardThresholdSec != 0 {
			sp.LaggardThresholdSec = p.LaggardThresholdSec
		}
		if p.BinTimeoutSec != 0 {
			sp.BinTimeoutSec = p.BinTimeoutSec
		}
	}
	return sp, nil
}

// Source labels how a study response was produced, from cheapest to most
// expensive.
type Source string

const (
	// SourceResultCache: the resolved spec was in the LRU result cache.
	SourceResultCache Source = "result-cache"
	// SourceCoalesced: the request attached to an identical in-flight
	// execution and shared its result.
	SourceCoalesced Source = "coalesced"
	// SourceExecuted: this request ran the analysis itself (the dataset
	// may still have come from the engine's cache — see DatasetCacheHit).
	SourceExecuted Source = "executed"
)

// StudyResponse is the /v1/study reply: the resolved spec's identity,
// the full analysis, and where the answer came from.
type StudyResponse struct {
	App      string         `json:"app"`
	Geometry cluster.Config `json:"geometry"`
	Alpha    float64        `json:"alpha"`
	// DLB echoes the resolved rebalancing policy the dataset was
	// generated under (zero value: static).
	DLB dlb.Spec `json:"dlb"`

	Metrics    analysis.AppMetrics `json:"metrics"`
	Table1     analysis.Table1     `json:"table1"`
	Assessment core.Assessment     `json:"assessment"`

	// Source reports which layer answered: result-cache, coalesced or
	// executed.
	Source Source `json:"source"`
	// DatasetCacheHit reports whether the dataset came from the engine's
	// cache rather than a fresh generation (only meaningful for executed
	// responses).
	DatasetCacheHit bool `json:"dataset_cache_hit"`
}

// CampaignRequest is the /v1/campaign body: a batch of wire specs plus
// an optional concurrency bound.
type CampaignRequest struct {
	Specs []StudySpec `json:"specs"`
	// Workers bounds how many studies run concurrently; omitted or <= 0
	// uses the engine's bound.
	Workers int `json:"workers,omitempty"`
}

// CampaignResponse is the /v1/campaign reply: one entry per spec, in
// spec order. Per-spec failures carry an error string and empty
// analysis; the other entries are still valid.
type CampaignResponse struct {
	Results []CampaignEntry `json:"results"`
	// Failed counts entries with errors.
	Failed int `json:"failed"`
}

// CampaignEntry is one spec's outcome within a campaign response.
type CampaignEntry struct {
	Index int `json:"index"`
	StudyResponse
	Err string `json:"error,omitempty"`
}

// FeasibilityResponse is the /v1/feasibility reply: the Section 5
// verdict without the full metrics payload.
type FeasibilityResponse struct {
	App        string          `json:"app"`
	Geometry   cluster.Config  `json:"geometry"`
	Assessment core.Assessment `json:"assessment"`
	Source     Source          `json:"source"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}
