// Package serve is the study service: an HTTP front end over the
// campaign engine that turns the reproduction into a trafficked system.
// It exposes JSON endpoints for single studies (/v1/study), batched
// campaigns (/v1/campaign), feasibility assessments (/v1/feasibility),
// scenario sweeps streamed as NDJSON (/v1/sweep) and the strategy lab's
// delivery-strategy optimizer (/v1/strategies, JSON or NDJSON), plus
// per-endpoint latency and hit-rate counters at /v1/stats and a
// /v1/healthz probe.
//
// Three layers of work-sharing sit between a request and a workload
// fill, so under heavy identical traffic the service does the expensive
// part exactly once:
//
//   - a bounded LRU result cache keyed by the resolved spec — a repeat
//     of a recently answered study is a map lookup;
//   - singleflight request coalescing — N concurrent identical studies
//     attach to one in-flight execution and share its result;
//   - the engine's content-addressed dataset cache (itself
//     single-flighted and LRU-bounded via engine.SetMaxDatasets) — two
//     different analyses of the same (model, geometry, seed) share one
//     generated dataset.
//
// The sweep endpoint fans a grid of (app x geometry x alpha x laggard
// threshold) cells onto the engine and writes one NDJSON row per cell as
// it completes. Rows are computed on the columnar cursor path
// (analysis.ComputeMetricsStreaming / Table1Streaming over
// engine.Columnar) so the nested tensor view is never built, and
// geometries larger than Options.MaxCachedSweepSamples bypass the
// dataset cache entirely via the streaming fill (core.StreamStudy), so
// huge geometries never materialise server-side in any form.
//
// The strategies endpoint sweeps a delivery-strategy grid — fixed and
// adaptive policies from internal/partcomm — over each (app, geometry)
// cell's columnar cursor and reports the frontier. Cells coalesce in
// their own result cache keyed by the resolved spec key plus a
// strategy-grid hash, so identical concurrent requests evaluate once
// while different grids still share the engine's dataset cache.
//
// Server shuts down gracefully: Shutdown stops accepting connections and
// drains in-flight requests. cmd/earlybirdd is the production binary;
// earlybird.Serve is the embeddable facade.
package serve
