// Serve-layer tests for the dynamic-membership endpoints (exercised
// here with fakes — serve cannot import fleet; the real end-to-end
// protocol is tested in internal/fleet) and for adaptive admission
// gating the shard path.

package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"
)

// fakeMemberFleet implements FleetDispatcher + FleetMembership.
type fakeMemberFleet struct {
	joined  []string
	left    []string
	joinErr error
}

func (f *fakeMemberFleet) DispatchCell(ctx context.Context, cell SweepCell) (SweepRow, bool) {
	return SweepRow{}, false
}

func (f *fakeMemberFleet) Snapshot() FleetSnapshot {
	return FleetSnapshot{Peers: len(f.joined) - len(f.left)}
}

func (f *fakeMemberFleet) Join(url string, capacity float64) (time.Duration, error) {
	if f.joinErr != nil {
		return 0, f.joinErr
	}
	f.joined = append(f.joined, url)
	return 42 * time.Second, nil
}

func (f *fakeMemberFleet) Leave(url string) bool {
	for _, u := range f.joined {
		if u == url {
			f.left = append(f.left, url)
			return true
		}
	}
	return false
}

// dispatchOnlyFleet implements FleetDispatcher but not FleetMembership.
type dispatchOnlyFleet struct{}

func (dispatchOnlyFleet) DispatchCell(ctx context.Context, cell SweepCell) (SweepRow, bool) {
	return SweepRow{}, false
}
func (dispatchOnlyFleet) Snapshot() FleetSnapshot { return FleetSnapshot{} }

func TestFleetJoinLeaveEndpoints(t *testing.T) {
	fake := &fakeMemberFleet{}
	s := New(Options{Workers: 1, Fleet: fake})
	ts := newHTTPServer(t, s)

	resp := postJSON(t, ts.URL+"/v1/fleet/join", FleetJoinRequest{URL: "http://w:1", Capacity: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join status %d", resp.StatusCode)
	}
	var jr FleetJoinResponse
	decodeInto(t, resp, &jr)
	if jr.LeaseSec != 42 || jr.Peers != 1 {
		t.Fatalf("join response %+v", jr)
	}
	if len(fake.joined) != 1 || fake.joined[0] != "http://w:1" {
		t.Fatalf("fleet saw joins %v", fake.joined)
	}

	resp = postJSON(t, ts.URL+"/v1/fleet/join", FleetJoinRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing url: %d, want 400", resp.StatusCode)
	}

	fake.joinErr = fmt.Errorf("not accepting joins")
	resp = postJSON(t, ts.URL+"/v1/fleet/join", FleetJoinRequest{URL: "http://w:2"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("join error: %d, want 422", resp.StatusCode)
	}
	fake.joinErr = nil

	resp = postJSON(t, ts.URL+"/v1/fleet/leave", FleetJoinRequest{URL: "http://w:1"})
	var lr FleetLeaveResponse
	decodeInto(t, resp, &lr)
	if !lr.Removed || lr.Peers != 0 {
		t.Fatalf("leave response %+v", lr)
	}
	resp = postJSON(t, ts.URL+"/v1/fleet/leave", FleetJoinRequest{URL: "http://gone:9"})
	var lr2 FleetLeaveResponse
	decodeInto(t, resp, &lr2)
	if lr2.Removed {
		t.Error("leave of an unknown worker reported removed")
	}
}

// TestFleetJoinWithoutMembership: servers with no fleet, or a fleet
// that cannot change membership, answer 404 — the endpoint does not
// exist for them.
func TestFleetJoinWithoutMembership(t *testing.T) {
	for name, opts := range map[string]Options{
		"no fleet":             {Workers: 1},
		"static-only dispatch": {Workers: 1, Fleet: dispatchOnlyFleet{}},
	} {
		s := New(opts)
		ts := newHTTPServer(t, s)
		for _, path := range []string{"/v1/fleet/join", "/v1/fleet/leave"} {
			resp := postJSON(t, ts.URL+path, FleetJoinRequest{URL: "http://w:1"})
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("%s %s: status %d, want 404", name, path, resp.StatusCode)
			}
		}
	}
}

// TestShardAdmissionSheds: adaptive admission gates /v1/shard like any
// other materialising execution — a worker under its watermark answers
// 503 + Retry-After (the signal the fleet scheduler reads as busy), and
// serves again the moment the degraded study finishes.
func TestShardAdmissionSheds(t *testing.T) {
	s := New(Options{Workers: 2, AdmissionWatermark: 0.5})
	ts := newHTTPServer(t, s)

	shard := ShardRequest{App: "minife", Geometry: ptr(testGeom()), TrialLo: 0, TrialHi: 1}

	tr := degradedTracker("shard-shed", 0.1)
	s.Telemetry().Register(tr)
	resp := postJSON(t, ts.URL+"/v1/shard", shard)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shard under watermark: status %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}

	// A malformed shard still fails 4xx, not 503: admission gates
	// execution, not validation.
	bad := postJSON(t, ts.URL+"/v1/shard", ShardRequest{App: "minife", Geometry: ptr(testGeom()), TrialLo: 5, TrialHi: 2})
	bad.Body.Close()
	if bad.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("invalid shard under shed: status %d, want 422", bad.StatusCode)
	}

	s.Telemetry().Finish(tr)
	ok := postJSON(t, ts.URL+"/v1/shard", shard)
	var sr ShardResponse
	decodeInto(t, ok, &sr)
	if len(sr.MetricsState) == 0 {
		t.Fatal("post-recovery shard carries no accumulator state")
	}
}
