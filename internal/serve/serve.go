package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/engine"
	"earlybird/internal/telemetry"
)

// Defaults for Options' zero values.
const (
	// DefaultMaxResults is the LRU result cache's default capacity.
	DefaultMaxResults = 256
	// DefaultMaxDatasets is the engine dataset cache's default bound.
	DefaultMaxDatasets = 64
	// DefaultMaxCachedSweepSamples is the geometry size (total samples)
	// above which sweep cells bypass the dataset cache and run on the
	// streaming fill: four paper geometries (~24 MiB columnar each).
	DefaultMaxCachedSweepSamples = 4 * 768000
	// DefaultMaxStudySamples is the largest geometry a materialising
	// study request (/v1/study, /v1/feasibility, /v1/campaign) accepts:
	// ten paper geometries (~60 MiB columnar). Larger analyses belong on
	// /v1/sweep, whose streaming path is bounded-memory at any size.
	DefaultMaxStudySamples = 10 * 768000
	// maxSweepCells bounds one sweep request's grid.
	maxSweepCells = 4096
	// maxCampaignSpecs bounds one campaign request's batch.
	maxCampaignSpecs = 4096
	// maxRequestBytes bounds a request body; the largest legitimate
	// bodies (a maxCampaignSpecs campaign with explicit geometries and
	// fabrics) stay well under it.
	maxRequestBytes = 8 << 20
)

// Options configures a Server. The zero value serves with one worker per
// CPU, a 256-entry result cache and a 64-dataset engine cache.
type Options struct {
	// Workers bounds concurrently executing studies; <= 0 means one per
	// usable CPU.
	Workers int
	// MaxResults bounds the LRU result cache; 0 means
	// DefaultMaxResults, negative disables result caching.
	MaxResults int
	// MaxDatasets bounds the engine's dataset cache (LRU eviction); 0
	// means DefaultMaxDatasets, negative leaves the cache unbounded.
	MaxDatasets int
	// MaxCachedSweepSamples is the largest geometry (by total samples) a
	// sweep cell will generate through the dataset cache; larger cells
	// use the bounded-memory streaming fill and are never stored. 0
	// means DefaultMaxCachedSweepSamples.
	MaxCachedSweepSamples int
	// MaxStudySamples is the largest geometry (by total samples) the
	// materialising study endpoints accept; larger requests are rejected
	// with a pointer to /v1/sweep. 0 means DefaultMaxStudySamples.
	MaxStudySamples int
	// DefaultDLB is the rebalancing policy applied to study, sweep and
	// strategies requests that leave their policy unset (the earlybirdd
	// -dlb flag). Requests that set one — including an explicit "static"
	// — keep it. Shard requests never default: a coordinator has already
	// resolved its cell's policy and the shard must execute it literally.
	DefaultDLB dlb.Spec
	// Engine, when non-nil, is used instead of a fresh engine — for
	// sharing a dataset cache with campaigns run outside the server.
	// Workers and MaxDatasets are ignored in that case.
	Engine *engine.Engine
	// Fleet, when non-nil, turns this server into a federation
	// coordinator: /v1/sweep cells are dispatched to the fleet's workers
	// (internal/fleet implements the interface) and only run locally when
	// no healthy peer can take them. /v1/stats gains a fleet section.
	Fleet FleetDispatcher
	// AdmissionWatermark enables adaptive admission: while the live
	// aggregate fill efficiency measured across in-flight studies is
	// below it, new materialising executions (/v1/study,
	// /v1/feasibility, campaign entries) are shed with
	// 503 + Retry-After instead of admitted into the execution
	// semaphore. Cache hits and coalesced joins are never shed, and
	// /v1/sweep — the bounded-memory path shed clients are pointed at —
	// is exempt. 0 (or negative) disables admission control.
	AdmissionWatermark float64
	// Telemetry, when non-nil, is the live-telemetry registry the server
	// feeds and reads; nil creates a fresh one. Supply one to share the
	// registry with out-of-band consumers (tests inject synthetic
	// trackers through it).
	Telemetry *telemetry.Registry
}

// FleetDispatcher federates sweep cells across remote workers. The serve
// package defines the interface (internal/fleet provides the
// implementation) so coordinator wiring never creates an import cycle.
type FleetDispatcher interface {
	// DispatchCell executes one cell on the fleet, returning the merged
	// row. ok == false means the fleet could not place the cell (no
	// healthy workers) and the caller should run it locally.
	DispatchCell(ctx context.Context, cell SweepCell) (row SweepRow, ok bool)
	// Snapshot reports the fleet's registry and traffic counters.
	Snapshot() FleetSnapshot
}

// Server is the study service: an http.Handler exposing the /v1 API over
// one campaign engine, plus a managed http.Server for ListenAndServe /
// Shutdown. Create with New; safe for concurrent use.
type Server struct {
	opts            Options
	eng             *engine.Engine
	co              *coalescer[engine.SpecKey, engine.Result]
	strat           *coalescer[strategyCellKey, StrategyRow]
	mux             *http.ServeMux
	start           time.Time
	endpoints       map[string]*endpointStats
	sources         sourceCounters
	stratSources    sourceCounters
	maxSweepSamples int
	maxStudySamples int
	httpSrv         *http.Server
	// sem bounds the server's concurrently executing studies and sweep
	// cells across all requests — the engine's Workers bound applied at
	// the service level. Coalesced joiners and cache hits take no slot.
	sem chan struct{}
	// fleetCells counts sweep cells answered by the fleet;
	// fleetFallbacks counts cells the fleet declined (no healthy
	// workers) that ran locally instead.
	fleetCells     atomic.Int64
	fleetFallbacks atomic.Int64
	// tel tracks in-flight study generations (the /v1/progress and
	// /metrics signal source); admissionSheds counts requests adaptive
	// admission refused.
	tel            *telemetry.Registry
	admissionSheds atomic.Int64
}

// New returns a ready-to-serve study service.
func New(opts Options) *Server {
	eng := opts.Engine
	if eng == nil {
		eng = engine.New(opts.Workers)
		maxDS := opts.MaxDatasets
		if maxDS == 0 {
			maxDS = DefaultMaxDatasets
		}
		if maxDS > 0 {
			eng.SetMaxDatasets(maxDS)
		}
	}
	maxResults := opts.MaxResults
	if maxResults == 0 {
		maxResults = DefaultMaxResults
	}
	maxSweep := opts.MaxCachedSweepSamples
	if maxSweep <= 0 {
		maxSweep = DefaultMaxCachedSweepSamples
	}
	maxStudy := opts.MaxStudySamples
	if maxStudy <= 0 {
		maxStudy = DefaultMaxStudySamples
	}
	tel := opts.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	s := &Server{
		opts:            opts,
		eng:             eng,
		co:              newCoalescer[engine.SpecKey, engine.Result](maxResults),
		strat:           newCoalescer[strategyCellKey, StrategyRow](maxResults),
		mux:             http.NewServeMux(),
		start:           time.Now(),
		endpoints:       map[string]*endpointStats{},
		maxSweepSamples: maxSweep,
		maxStudySamples: maxStudy,
		sem:             make(chan struct{}, eng.Workers()),
		tel:             tel,
	}
	// Every dataset generation this server triggers — directly or via a
	// shared engine — reports live progress into the registry. A shared
	// engine's previous factory is replaced; the last server wired wins.
	eng.SetProgress(s.generationProgress)
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.route("POST", "/v1/study", s.handleStudy)
	s.route("POST", "/v1/campaign", s.handleCampaign)
	s.route("POST", "/v1/feasibility", s.handleFeasibility)
	s.route("POST", "/v1/sweep", s.handleSweep)
	s.route("POST", "/v1/shard", s.handleShard)
	s.route("POST", "/v1/strategies", s.handleStrategies)
	s.route("POST", "/v1/scenario", s.handleScenario)
	s.route("POST", "/v1/fleet/join", s.handleFleetJoin)
	s.route("POST", "/v1/fleet/leave", s.handleFleetLeave)
	s.route("GET", "/v1/stats", s.handleStats)
	s.route("GET", "/v1/healthz", s.handleHealthz)
	s.route("GET", "/v1/progress", s.handleProgress)
	s.route("GET", "/metrics", s.handleMetrics)
	return s
}

// ObservabilityHandler returns a handler exposing only the read-only
// observability surface (GET /metrics, GET /v1/progress, GET
// /v1/healthz) — what cmd/earlybirdd serves on -metrics-addr so scrapes
// stay off the study listener.
func (s *Server) ObservabilityHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/progress", s.handleProgress)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// Engine returns the server's campaign engine, so callers can share its
// dataset cache or read its counters.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Handler returns the service's routing handler, for embedding the API
// in an existing server or an httptest harness.
func (s *Server) Handler() http.Handler { return s.mux }

// route registers one instrumented endpoint.
func (s *Server) route(method, path string, h http.HandlerFunc) {
	st := newEndpointStats()
	s.endpoints[path] = st
	s.mux.HandleFunc(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		st.record(start, sw.status >= 400)
	})
}

// statusWriter records the response status for the endpoint counters and
// forwards Flush for the NDJSON stream.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError renders the uniform error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeBody strictly decodes one JSON request body, bounded at
// maxRequestBytes.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// acquire takes one execution slot, bounding the server's concurrently
// executing studies/sweep cells across all requests.
func (s *Server) acquire() func() {
	s.sem <- struct{}{}
	return func() { <-s.sem }
}

// clampWorkers bounds one request's concurrency: the engine's worker
// count caps it, the job count floors it.
func (s *Server) clampWorkers(requested, jobs int) int {
	w := requested
	if w <= 0 || w > s.eng.Workers() {
		w = s.eng.Workers()
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// fanOut runs fn(i) for every i in [0, n) across workers goroutines and
// waits for all of them. The campaign, sweep and strategies handlers
// share it as their per-request worker pool.
func fanOut(n, workers int, fn func(int)) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// startNDJSON commits a streaming NDJSON response (with a cell-count
// header) and returns a serialised emit function: one row per line,
// flushed the moment it is written, safe to call from worker
// goroutines.
func startNDJSON(w http.ResponseWriter, cellsHeader string, cells int) func(any) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(cellsHeader, fmt.Sprint(cells))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return func(row any) {
		mu.Lock()
		defer mu.Unlock()
		_ = enc.Encode(row) // Encode terminates each row with '\n'
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// runStudy resolves one wire spec and answers it through the coalescing
// stack: LRU result cache, then singleflight join, then execution on the
// engine (whose dataset cache is a further sharing layer underneath).
func (s *Server) runStudy(wire StudySpec) (engine.Result, Source, error) {
	sp, err := wire.toSpec()
	if err != nil {
		return engine.Result{}, "", err
	}
	if wire.Policy == nil || wire.Policy.DLB == nil {
		sp.DLB = s.opts.DefaultDLB
	}
	resolved, err := sp.Resolve()
	if err != nil {
		return engine.Result{}, "", err
	}
	if n := resolved.Geometry.Samples(); n > s.maxStudySamples {
		return engine.Result{}, "", fmt.Errorf(
			"geometry has %d samples, over the study limit %d; use /v1/sweep, whose streaming path is bounded-memory at any size",
			n, s.maxStudySamples)
	}
	return s.runResolved(resolved)
}

// runResolved answers one already-resolved spec through the coalescing
// stack — the shared tail of /v1/study, /v1/feasibility, /v1/campaign
// and /v1/scenario cells. Dataset-backed specs coalesce too: their key
// includes the dataset's identity, so cells of one compiled scenario
// that collapse to the same study share a single execution.
func (s *Server) runResolved(resolved engine.Spec) (engine.Result, Source, error) {
	res, src := s.co.do(resolved.Key(), func() (engine.Result, bool) {
		// Adaptive admission gates the execution, not the lookup: cache
		// hits and joins to in-flight executions cost no fill capacity
		// and are always served.
		if err := s.admit(); err != nil {
			return engine.Result{Spec: resolved, Err: err}, false
		}
		defer s.acquire()()
		r, _ := s.eng.RunSpec(resolved)
		return r, r.Err == nil
	})
	s.sources.count(src)
	return res, src, res.Err
}

// studyResponse assembles the wire reply from an engine result.
func studyResponse(r engine.Result, src Source) StudyResponse {
	return StudyResponse{
		App:             r.Spec.App,
		Geometry:        r.Spec.Geometry,
		Alpha:           r.Spec.Alpha,
		DLB:             r.Spec.DLB,
		Metrics:         r.Metrics,
		Table1:          r.Table1,
		Assessment:      r.Assessment,
		Source:          src,
		DatasetCacheHit: r.CacheHit,
	}
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	var wire StudySpec
	if err := decodeBody(w, r, &wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, src, err := s.runStudy(wire)
	if err != nil {
		writeStudyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, studyResponse(res, src))
}

func (s *Server) handleFeasibility(w http.ResponseWriter, r *http.Request) {
	var wire StudySpec
	if err := decodeBody(w, r, &wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, src, err := s.runStudy(wire)
	if err != nil {
		writeStudyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, FeasibilityResponse{
		App:        res.Spec.App,
		Geometry:   res.Spec.Geometry,
		Assessment: res.Assessment,
		Source:     src,
	})
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign needs at least one spec"))
		return
	}
	if len(req.Specs) > maxCampaignSpecs {
		writeError(w, http.StatusBadRequest, fmt.Errorf("campaign has %d specs, limit %d", len(req.Specs), maxCampaignSpecs))
		return
	}

	resp := CampaignResponse{Results: make([]CampaignEntry, len(req.Specs))}
	fanOut(len(req.Specs), s.clampWorkers(req.Workers, len(req.Specs)), func(idx int) {
		entry := CampaignEntry{Index: idx}
		res, src, err := s.runStudy(req.Specs[idx])
		if err != nil {
			entry.Err = err.Error()
		} else {
			entry.StudyResponse = studyResponse(res, src)
		}
		resp.Results[idx] = entry
	})

	for i := range resp.Results {
		if resp.Results[i].Err != "" {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeSec: time.Since(s.start).Seconds(),
		Endpoints: make(map[string]EndpointSnapshot, len(s.endpoints)),
		Study: StudySourceStats{
			ResultCacheHits: s.sources.lruHits.Load(),
			Coalesced:       s.sources.coalesced.Load(),
			Executed:        s.sources.executed.Load(),
			ResultCacheSize: s.co.size(),
		},
		Strategies: StudySourceStats{
			ResultCacheHits: s.stratSources.lruHits.Load(),
			Coalesced:       s.stratSources.coalesced.Load(),
			Executed:        s.stratSources.executed.Load(),
			ResultCacheSize: s.strat.size(),
		},
		Engine: EngineStats{
			Executions:      s.eng.Executions(),
			CachedDatasets:  s.eng.CachedDatasets(),
			EvictedDatasets: s.eng.EvictedDatasets(),
			NestedViews:     s.eng.NestedViews(),
			Workers:         s.eng.Workers(),
		},
	}
	tot := s.tel.Totals()
	resp.Telemetry = TelemetryStats{
		StudiesStarted:  tot.StudiesStarted,
		StudiesFinished: tot.StudiesFinished,
		ActiveStudies:   tot.ActiveStudies,
		Blocks:          tot.Blocks,
		Samples:         tot.Samples,
		BusySeconds:     tot.BusySeconds,
		LendEvents:      tot.LendEvents,
		Active:          s.tel.Active(),
	}
	eff, live := s.tel.Efficiency()
	resp.Admission = AdmissionStats{
		Watermark:  s.opts.AdmissionWatermark,
		Efficiency: eff,
		SignalLive: live,
		Sheds:      s.admissionSheds.Load(),
	}
	for path, st := range s.endpoints {
		resp.Endpoints[path] = st.snapshot()
	}
	if s.opts.Fleet != nil {
		snap := s.opts.Fleet.Snapshot()
		snap.CellsDispatched = s.fleetCells.Load()
		snap.LocalFallbacks = s.fleetFallbacks.Load()
		resp.Fleet = &snap
	}
	writeJSON(w, http.StatusOK, resp)
}

// HealthzResponse is the /v1/healthz reply. Beyond liveness it carries
// the worker's live load signal: a fleet coordinator's probe loop reads
// Capacity and weights rendezvous scheduling with it, so cells drain
// around a degraded worker long before it goes binary-unhealthy.
type HealthzResponse struct {
	Status string `json:"status"`
	// ActiveStudies is the number of generations currently filling.
	ActiveStudies int `json:"active_studies"`
	// Efficiency is the live aggregate fill efficiency (0 when idle).
	Efficiency float64 `json:"efficiency"`
	// Capacity is the scheduling weight this worker advertises: 1 when
	// idle, otherwise its live efficiency floored at minWorkerCapacity.
	Capacity float64 `json:"capacity"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{Status: "ok", ActiveStudies: s.tel.ActiveCount(), Capacity: 1}
	if eff, live := s.tel.Efficiency(); live {
		resp.Efficiency = eff
		resp.Capacity = eff
		if resp.Capacity < minWorkerCapacity {
			resp.Capacity = minWorkerCapacity
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ListenAndServe listens on addr and serves until Shutdown (returning
// http.ErrServerClosed) or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	err = s.Serve(ln)
	ln.Close() // usually already closed by Shutdown; harmless otherwise
	return err
}

// Serve serves on an existing listener until Shutdown or error. A server
// that was already shut down returns http.ErrServerClosed immediately.
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests drain until they finish or ctx expires. Shutting
// down before Serve is safe and makes any later Serve return
// http.ErrServerClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}

// defaultedGeometry maps the zero geometry to the paper's, mirroring
// engine.Spec's defaulting for wire specs that omit the field.
func defaultedGeometry(g cluster.Config) cluster.Config {
	if g == (cluster.Config{}) {
		return cluster.DefaultConfig()
	}
	return g
}
