// Dynamic fleet membership: POST /v1/fleet/join registers (or renews) a
// worker with a coordinating server's fleet and returns the lease it
// must renew within; POST /v1/fleet/leave deregisters it immediately.
// The endpoints exist on every server but answer 404 unless the server
// carries a fleet whose implementation accepts membership changes (the
// optional FleetMembership interface, implemented by internal/fleet for
// dynamic fleets) — so pointing a worker's -join at a non-coordinator
// fails loudly instead of silently dropping heartbeats.

package serve

import (
	"fmt"
	"net/http"
	"time"
)

// FleetMembership is the optional dynamic-membership surface of a
// FleetDispatcher. The serve layer type-asserts Options.Fleet against
// it, so static fleets need no stub methods.
type FleetMembership interface {
	// Join registers or renews a worker and returns the lease duration
	// it must renew within.
	Join(url string, capacity float64) (time.Duration, error)
	// Leave deregisters a worker, reporting whether it was registered.
	Leave(url string) bool
}

// FleetJoinRequest is the /v1/fleet/join body: the worker's externally
// reachable base URL and (optionally) its advertised capacity.
type FleetJoinRequest struct {
	URL      string  `json:"url"`
	Capacity float64 `json:"capacity,omitempty"`
}

// FleetJoinResponse acknowledges a join: the lease the worker holds and
// the fleet's resulting peer count.
type FleetJoinResponse struct {
	LeaseSec float64 `json:"lease_sec"`
	Peers    int     `json:"peers"`
}

// FleetLeaveResponse acknowledges a leave.
type FleetLeaveResponse struct {
	Removed bool `json:"removed"`
	Peers   int  `json:"peers"`
}

// membership returns the fleet's membership surface, if it has one.
func (s *Server) membership() (FleetMembership, bool) {
	m, ok := s.opts.Fleet.(FleetMembership)
	return m, ok && s.opts.Fleet != nil
}

func (s *Server) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	m, ok := s.membership()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("this server does not coordinate a dynamic fleet"))
		return
	}
	var req FleetJoinRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.URL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("join needs the worker's base url"))
		return
	}
	lease, err := m.Join(req.URL, req.Capacity)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, FleetJoinResponse{
		LeaseSec: lease.Seconds(),
		Peers:    s.opts.Fleet.Snapshot().Peers,
	})
}

func (s *Server) handleFleetLeave(w http.ResponseWriter, r *http.Request) {
	m, ok := s.membership()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("this server does not coordinate a dynamic fleet"))
		return
	}
	var req FleetJoinRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.URL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("leave needs the worker's base url"))
		return
	}
	writeJSON(w, http.StatusOK, FleetLeaveResponse{
		Removed: m.Leave(req.URL),
		Peers:   s.opts.Fleet.Snapshot().Peers,
	})
}
