package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"earlybird/internal/cluster"
)

// defaultGridSize is the strategy count of the default grid: bulk and
// fine-grained anchors, four binned timeouts, one EWMA alpha, hybrid and
// laggard-aware.
const defaultGridSize = 2 + 4 + 1 + 2

func TestStrategiesCoalescingSingleExecution(t *testing.T) {
	s, ts := newTestServer(t)
	req := StrategiesRequest{Apps: []string{"minife"}, Geometries: []cluster.Config{testGeom()}}

	const n = 8
	var wg sync.WaitGroup
	responses := make([]StrategiesResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/strategies", req)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&responses[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// N identical concurrent requests: one dataset generation, one cell
	// evaluation; everyone else joined the flight or hit the cache.
	if got := s.Engine().Executions(); got != 1 {
		t.Errorf("engine executions = %d, want 1 for %d identical requests", got, n)
	}
	if got := s.stratSources.executed.Load(); got != 1 {
		t.Errorf("executed strategy cells = %d, want 1", got)
	}
	if shared := s.stratSources.coalesced.Load() + s.stratSources.lruHits.Load(); shared != n-1 {
		t.Errorf("coalesced+cache answers = %d, want %d", shared, n-1)
	}
	// The whole evaluation stayed on the cursor path.
	if got := s.Engine().NestedViews(); got != 0 {
		t.Errorf("nested views = %d, want 0 (strategy lab materialised the tensor)", got)
	}
	// Every response carries the identical sweep.
	for i := 0; i < n; i++ {
		if len(responses[i].Rows) != 1 || responses[i].Failed != 0 {
			t.Fatalf("response %d: %d rows, %d failed", i, len(responses[i].Rows), responses[i].Failed)
		}
		row := responses[i].Rows[0]
		if len(row.Results) != defaultGridSize {
			t.Fatalf("response %d has %d strategy results, want %d", i, len(row.Results), defaultGridSize)
		}
		if row.Best == "" || row.BestFinishSec <= 0 {
			t.Fatalf("response %d has empty frontier: %+v", i, row.Sweep)
		}
		if row.Best != responses[0].Rows[0].Best || row.BestFinishSec != responses[0].Rows[0].BestFinishSec {
			t.Fatalf("response %d frontier diverged", i)
		}
	}
}

func TestStrategiesResultCacheAndGridHash(t *testing.T) {
	s, ts := newTestServer(t)
	base := StrategiesRequest{Apps: []string{"minimd"}, Geometries: []cluster.Config{testGeom()}}

	var first, second, third StrategiesResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/strategies", base), &first)
	if src := first.Rows[0].Source; src != SourceExecuted {
		t.Errorf("first source = %q, want executed", src)
	}
	decodeInto(t, postJSON(t, ts.URL+"/v1/strategies", base), &second)
	if src := second.Rows[0].Source; src != SourceResultCache {
		t.Errorf("repeat source = %q, want result-cache", src)
	}
	if second.Rows[0].Best != first.Rows[0].Best || second.Rows[0].BestFinishSec != first.Rows[0].BestFinishSec {
		t.Error("cached frontier diverged from executed frontier")
	}

	// A different strategy grid is a different result-cache key — but the
	// same dataset: a second cell executes with zero new generations.
	narrowed := base
	narrowed.TimeoutsSec = []float64{1e-3}
	decodeInto(t, postJSON(t, ts.URL+"/v1/strategies", narrowed), &third)
	if src := third.Rows[0].Source; src != SourceExecuted {
		t.Errorf("new-grid source = %q, want executed", src)
	}
	if got := len(third.Rows[0].Results); got != 2+1+1+2 {
		t.Errorf("narrowed grid has %d results, want %d", got, 2+1+1+2)
	}
	if got := s.Engine().Executions(); got != 1 {
		t.Errorf("engine executions = %d, want 1 (both grids share the dataset)", got)
	}
	if !third.Rows[0].DatasetCacheHit {
		t.Error("new-grid cell did not report the dataset cache hit")
	}
}

func TestStrategiesNDJSONStreamsOnCursorPath(t *testing.T) {
	s, ts := newTestServer(t)
	req := StrategiesRequest{
		Apps:       []string{"minife", "minimd", "miniqmc"},
		Geometries: []cluster.Config{testGeom()},
		Stream:     true,
	}
	resp := postJSON(t, ts.URL+"/v1/strategies", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}
	if cells := resp.Header.Get("X-Strategy-Cells"); cells != "3" {
		t.Errorf("X-Strategy-Cells = %q, want 3", cells)
	}
	if resp.ContentLength >= 0 {
		t.Errorf("response has Content-Length %d; want a streamed body", resp.ContentLength)
	}

	seen := map[int]StrategyRow{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row StrategyRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if row.Err != "" {
			t.Fatalf("cell %d failed: %s", row.Index, row.Err)
		}
		seen[row.Index] = row
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("got %d rows, want 3", len(seen))
	}
	for i := 0; i < 3; i++ {
		row, ok := seen[i]
		if !ok {
			t.Fatalf("missing row %d", i)
		}
		if row.Best == "" || len(row.Results) != defaultGridSize {
			t.Errorf("row %d incomplete: best %q, %d results", i, row.Best, len(row.Results))
		}
		if row.Source != SourceExecuted {
			t.Errorf("row %d source = %q, want executed", i, row.Source)
		}
	}

	// The acceptance criterion: the whole sweep ran on the columnar
	// cursor path — no cell ever built the nested tensor view.
	if got := s.Engine().NestedViews(); got != 0 {
		t.Errorf("nested views = %d after strategy sweep, want 0", got)
	}
	if got := s.Engine().Executions(); got != 3 {
		t.Errorf("engine executions = %d, want 3", got)
	}
}

func TestStrategiesValidation(t *testing.T) {
	s, ts := newTestServer(t)

	// No apps.
	resp := postJSON(t, ts.URL+"/v1/strategies", StrategiesRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no apps: status %d, want 400", resp.StatusCode)
	}

	// Invalid grid axes.
	resp = postJSON(t, ts.URL+"/v1/strategies", StrategiesRequest{Apps: []string{"minife"}, TimeoutsSec: []float64{-1}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative timeout: status %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/strategies", StrategiesRequest{Apps: []string{"minife"}, EWMAAlphas: []float64{1.5}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("alpha out of range: status %d, want 400", resp.StatusCode)
	}

	// Unknown geometry name.
	resp = postJSON(t, ts.URL+"/v1/strategies", StrategiesRequest{Apps: []string{"minife"}, GeometryNames: []string{"galactic"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown geometry name: status %d, want 400", resp.StatusCode)
	}

	// Unknown app is a per-cell failure, mirroring /v1/sweep.
	var perCell StrategiesResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/strategies", StrategiesRequest{
		Apps: []string{"minife", "nosuchapp"}, Geometries: []cluster.Config{testGeom()},
	}), &perCell)
	if perCell.Failed != 1 || perCell.Rows[1].Err == "" || perCell.Rows[0].Err != "" {
		t.Errorf("unknown app: failed=%d rows=%+v, want exactly cell 1 to fail", perCell.Failed, perCell.Rows)
	}

	// Oversized geometry is a per-cell failure naming the limit.
	huge := cluster.Config{Trials: 1000, Ranks: 100, Iterations: 10000, Threads: 100, Seed: 1}
	var capResp StrategiesResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/strategies", StrategiesRequest{
		Apps: []string{"minife"}, Geometries: []cluster.Config{huge},
	}), &capResp)
	if capResp.Failed != 1 || !strings.Contains(capResp.Rows[0].Err, "limit") {
		t.Errorf("oversized geometry: %+v, want a limit error", capResp.Rows)
	}
	if got := s.Engine().Executions(); got != 1 {
		t.Errorf("engine executions = %d, want 1 (failures must not generate datasets)", got)
	}
}

// TestStrategiesShutdownMidStream: a graceful Shutdown issued while an
// NDJSON strategy stream is in flight drains the request — every cell's
// row arrives, the stream terminates cleanly, and Serve returns
// http.ErrServerClosed.
func TestStrategiesShutdownMidStream(t *testing.T) {
	s := New(Options{Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()

	// Six cells on one worker so the stream is still in flight when the
	// shutdown lands.
	g2 := testGeom()
	g2.Seed = 2
	req := StrategiesRequest{
		Apps:       []string{"minife", "minimd", "miniqmc"},
		Geometries: []cluster.Config{testGeom(), g2},
		Stream:     true,
		Workers:    1,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/strategies", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rows := 0
	shutdownErr := make(chan error, 1)
	var once sync.Once
	for sc.Scan() {
		var row StrategyRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line after %d rows: %v", rows, err)
		}
		if row.Err != "" {
			t.Fatalf("cell %d failed: %s", row.Index, row.Err)
		}
		rows++
		// First row in hand: shut the server down mid-stream.
		once.Do(func() {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				shutdownErr <- s.Shutdown(ctx)
			}()
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream did not close cleanly after %d rows: %v", rows, err)
	}
	if rows != 6 {
		t.Errorf("got %d rows, want all 6 (shutdown must drain the in-flight stream)", rows)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("shutdown: %v", err)
	}
	select {
	case err := <-served:
		if err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// And the drained stream still never materialised the tensor.
	if got := s.Engine().NestedViews(); got != 0 {
		t.Errorf("nested views = %d, want 0", got)
	}
}
