//go:build !race

package serve

// raceEnabled reports whether the race detector is compiled in; the
// in-flight HugeGeometry progress test skips under -race, where the
// 76.8M-sample fill is an order of magnitude slower.
const raceEnabled = false
