package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/engine"
)

// dlbGeom is a fast geometry with enough ranks that LeWI's laggard rule
// actually fires on minife (testGeom's two ranks are too balanced to
// cross the 1.25x factor).
func dlbGeom() cluster.Config {
	return cluster.Config{Trials: 1, Ranks: 4, Iterations: 12, Threads: 48, Seed: 1}
}

// strictDecode mirrors decodeBody's strictness for wire-level tests.
func strictDecode(t *testing.T, payload []byte, v any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", payload, err)
	}
}

// resolveWire decodes a raw study payload and resolves it to its engine
// spec key — the identity the coalescing stack executes on.
func resolveWire(t *testing.T, payload []byte) engine.SpecKey {
	t.Helper()
	var wire StudySpec
	strictDecode(t, payload, &wire)
	sp, err := wire.toSpec()
	if err != nil {
		t.Fatalf("%s: %v", payload, err)
	}
	resolved, err := sp.Resolve()
	if err != nil {
		t.Fatalf("%s: %v", payload, err)
	}
	return resolved.Key()
}

// TestPolicyEnvelopeAdapterEquivalence: a pre-envelope flat payload and
// its policy-envelope spelling must resolve to the same execution key —
// the deprecation adapter contract.
func TestPolicyEnvelopeAdapterEquivalence(t *testing.T) {
	legacy := []byte(`{"app":"minife","geometry_name":"quick",` +
		`"alpha":0.01,"laggard_threshold_sec":0.002,"bin_timeout_sec":0.0005}`)
	envelope := []byte(`{"app":"minife","geometry_name":"quick",` +
		`"policy":{"alpha":0.01,"laggard_threshold_sec":0.002,"bin_timeout_sec":0.0005}}`)
	if resolveWire(t, legacy) != resolveWire(t, envelope) {
		t.Fatal("legacy flat payload and policy envelope resolve to different keys")
	}

	// On conflict the envelope wins.
	both := []byte(`{"app":"minife","geometry_name":"quick","alpha":0.10,"policy":{"alpha":0.01}}`)
	wantEnvelope := []byte(`{"app":"minife","geometry_name":"quick","policy":{"alpha":0.01}}`)
	if resolveWire(t, both) != resolveWire(t, wantEnvelope) {
		t.Fatal("flat field overrode the policy envelope")
	}

	// A DLB policy in the envelope changes the key; an explicit static
	// one does not.
	static := resolveWire(t, []byte(`{"app":"minife","geometry_name":"quick"}`))
	explicitStatic := resolveWire(t,
		[]byte(`{"app":"minife","geometry_name":"quick","policy":{"dlb":{"policy":"static"}}}`))
	lewi := resolveWire(t,
		[]byte(`{"app":"minife","geometry_name":"quick","policy":{"dlb":{"policy":"lewi"}}}`))
	if static != explicitStatic {
		t.Fatal("explicit static policy resolves differently from the omitted one")
	}
	if static == lewi {
		t.Fatal("lewi policy shares the static execution key")
	}
}

// TestStudyPolicyEnvelope: /v1/study accepts the envelope end to end —
// the DLB policy reaches the runtime (different metrics), the response
// echoes the resolved policy, and invalid policies are rejected.
func TestStudyPolicyEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	geom := dlbGeom()

	var static, lewi StudyResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: &geom}), &static)
	resp := postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: &geom,
		Policy: &PolicySpec{DLB: &dlb.Spec{Policy: dlb.PolicyLeWI}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lewi study: status %s", resp.Status)
	}
	decodeInto(t, resp, &lewi)

	if static.DLB != (dlb.Spec{}) {
		t.Fatalf("static study echoed policy %+v", static.DLB)
	}
	if lewi.DLB.Policy != dlb.PolicyLeWI || lewi.DLB.LaggardFactor != dlb.DefaultLaggardFactor {
		t.Fatalf("lewi study echoed %+v, want the resolved lewi policy", lewi.DLB)
	}
	if reflect.DeepEqual(static.Metrics, lewi.Metrics) {
		t.Fatal("lewi study produced the static metrics; the policy never reached the runtime")
	}

	bad := postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: &geom,
		Policy: &PolicySpec{DLB: &dlb.Spec{Policy: "turbo"}}})
	bad.Body.Close()
	if bad.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid policy: status %s, want 422", bad.Status)
	}
}

// TestSweepDLBAxis: the sweep grid crosses the DLB axis like any other,
// rows echo their resolved policy, and the two policies produce
// different data.
func TestSweepDLBAxis(t *testing.T) {
	_, ts := newTestServer(t)
	geom := dlbGeom()
	resp := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Apps: []string{"minife"}, Geometries: []cluster.Config{geom},
		DLBs: []dlb.Spec{{}, {Policy: dlb.PolicyLeWI}},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	rows := map[string]SweepRow{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row SweepRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatal(err)
		}
		if row.Err != "" {
			t.Fatalf("row %d: %s", row.Index, row.Err)
		}
		rows[row.DLB.Name()] = row
	}
	if len(rows) != 2 {
		t.Fatalf("got %d distinct policies, want 2", len(rows))
	}
	if rows["lewi"].DLB.LaggardFactor != dlb.DefaultLaggardFactor {
		t.Fatalf("lewi row echoed %+v, want the resolved policy", rows["lewi"].DLB)
	}
	if rows["static"].Metrics == rows["lewi"].Metrics {
		t.Fatal("static and lewi sweep cells produced identical metrics")
	}
}

// TestServerDefaultDLB: a server started with a default policy applies
// it to requests that leave theirs unset; an explicit static envelope
// still overrides it.
func TestServerDefaultDLB(t *testing.T) {
	s := New(Options{Workers: 4, DefaultDLB: dlb.Spec{Policy: dlb.PolicyLeWI}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	geom := dlbGeom()

	var defaulted, explicit StudyResponse
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: &geom}), &defaulted)
	if defaulted.DLB.Policy != dlb.PolicyLeWI {
		t.Fatalf("server default not applied: %+v", defaulted.DLB)
	}
	decodeInto(t, postJSON(t, ts.URL+"/v1/study", StudySpec{App: "minife", Geometry: &geom,
		Policy: &PolicySpec{DLB: &dlb.Spec{Policy: dlb.PolicyStatic}}}), &explicit)
	if explicit.DLB != (dlb.Spec{}) {
		t.Fatalf("explicit static did not override the server default: %+v", explicit.DLB)
	}
	if reflect.DeepEqual(defaulted.Metrics, explicit.Metrics) {
		t.Fatal("defaulted and explicit-static studies produced identical metrics")
	}
}

// TestShardDLBMergeMatchesLocal: the federation exactness contract holds
// under rebalancing — per-trial balancer state means shard merges stay
// bit-identical to local execution for the moment-derived metrics.
func TestShardDLBMergeMatchesLocal(t *testing.T) {
	s, ts := newTestServer(t)
	geom := shardGeomMulti()
	policy, err := dlb.Spec{Policy: dlb.PolicyDROM, ReactionIters: 2}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cell := SweepCell{
		App: "minife", Geometry: geom,
		Alpha: 0.05, LaggardThresholdSec: analysis.DefaultLaggardThresholdSec,
		DLB: policy,
	}
	want := s.sweepCell(cell)
	if want.Err != "" {
		t.Fatal(want.Err)
	}

	macc := analysis.NewMetricsAccumulator(cell.App, cell.LaggardThresholdSec)
	for _, rg := range [][2]int{{0, 2}, {2, 6}} {
		sr := fetchShard(t, ts.URL, ShardRequest{
			App: cell.App, Geometry: &geom,
			Alpha: cell.Alpha, LaggardSec: cell.LaggardThresholdSec,
			DLB: &policy, TrialLo: rg[0], TrialHi: rg[1],
		})
		if sr.DLB != policy {
			t.Fatalf("shard echoed policy %+v, want %+v", sr.DLB, policy)
		}
		dec := new(analysis.MetricsAccumulator)
		if err := dec.UnmarshalBinary(sr.MetricsState); err != nil {
			t.Fatal(err)
		}
		macc.Merge(dec)
	}
	got := macc.Finalize()
	if got.MeanMedianSec != want.Metrics.MeanMedianSec ||
		got.LaggardFraction != want.Metrics.LaggardFraction ||
		got.IdleRatioProc != want.Metrics.IdleRatioProc {
		t.Fatalf("rebalanced shard merge diverged from local:\n got %+v\nwant %+v", got, want.Metrics)
	}
}

// TestStrategiesDLBPolicy: /v1/strategies evaluates its grid on the
// requested policy's dataset and keys its result cache per policy.
func TestStrategiesDLBPolicy(t *testing.T) {
	s, ts := newTestServer(t)
	geom := dlbGeom()

	run := func(policy *dlb.Spec) StrategiesResponse {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/strategies", StrategiesRequest{
			Apps: []string{"minife"}, Geometries: []cluster.Config{geom}, DLB: policy,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s", resp.Status)
		}
		var out StrategiesResponse
		decodeInto(t, resp, &out)
		if out.Failed != 0 {
			t.Fatalf("failed rows: %+v", out)
		}
		return out
	}

	static := run(nil)
	lewi := run(&dlb.Spec{Policy: dlb.PolicyLeWI})
	if lewi.Rows[0].DLB.Policy != dlb.PolicyLeWI {
		t.Fatalf("lewi row echoed %+v", lewi.Rows[0].DLB)
	}
	if lewi.Rows[0].Source != SourceExecuted {
		t.Fatalf("lewi cell source %q: a new policy must not share the static cell's cache entry", lewi.Rows[0].Source)
	}
	if reflect.DeepEqual(static.Rows[0].Results, lewi.Rows[0].Results) {
		t.Fatal("strategy results identical across policies")
	}
	if got := s.Engine().Executions(); got != 2 {
		t.Fatalf("executions = %d, want one per policy", got)
	}
}
