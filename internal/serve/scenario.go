package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"earlybird/internal/engine"
	"earlybird/internal/scenario"
	"earlybird/internal/trace"
)

// ScenarioRequest is the /v1/scenario body: a scenario document compiled
// and verified server-side, then executed as one coalesced campaign.
type ScenarioRequest struct {
	// Scenario is the scenario document, verbatim — the same YAML (or
	// JSON) text `earlybird -scenario` reads from disk. Trace sources
	// must inline their CSV (`csv:`): server-side file paths do not
	// travel over the wire.
	Scenario string `json:"scenario"`
	// Check compiles and verifies only: the response carries the campaign
	// plan and coverage accounting, and no cell executes.
	Check bool `json:"check,omitempty"`
	// Stream switches the response to NDJSON: one ScenarioRow per line,
	// written as each cell completes.
	Stream bool `json:"stream,omitempty"`
	// Workers bounds how many cells run concurrently; omitted or <= 0
	// uses the engine's bound.
	Workers int `json:"workers,omitempty"`
}

// ScenarioRow is one compiled cell's outcome: the cell's declared
// coordinates (canonical axis strings, so rows are self-describing)
// plus the full study analysis.
type ScenarioRow struct {
	Index int `json:"index"`
	// Workload is the cell's source key ("app:minife",
	// "trace:inline#0"); Geometry, Noise and DLB are empty for trace
	// sources, whose datasets carry their own shape.
	Workload      string  `json:"workload"`
	Geometry      string  `json:"geometry,omitempty"`
	Noise         string  `json:"noise,omitempty"`
	DLB           string  `json:"dlb,omitempty"`
	Fabric        string  `json:"fabric"`
	BinTimeoutSec float64 `json:"bin_timeout_sec"`

	StudyResponse
	// Federated reports the cell was dispatched whole to a fleet worker
	// rather than executed by this coordinator.
	Federated bool   `json:"federated,omitempty"`
	Err       string `json:"error,omitempty"`
}

// ScenarioResponse is the JSON-mode /v1/scenario reply.
type ScenarioResponse struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Cells and UniqueSpecs echo the verifier's coverage accounting:
	// declared cross-product size and distinct studies after dedup.
	Cells       int `json:"cells"`
	UniqueSpecs int `json:"unique_specs"`
	// Plan is the compiled campaign rendering (check mode only).
	Plan string `json:"plan,omitempty"`
	// Rows are the per-cell results in campaign order (empty in check
	// mode).
	Rows   []ScenarioRow `json:"rows,omitempty"`
	Failed int           `json:"failed,omitempty"`
}

// StudyDispatcher is the optional fleet upgrade for scenario federation:
// a dispatcher that can place one whole wire-expressible study on a
// worker. internal/fleet implements it; fleets that don't are simply
// never offered scenario cells.
type StudyDispatcher interface {
	// DispatchStudy executes one resolved wire spec on the fleet, routed
	// by the spec's key hash. ok == false means no healthy worker could
	// take it and the caller should run it locally.
	DispatchStudy(ctx context.Context, hash uint64, spec StudySpec) (StudyResponse, bool)
}

// compileScenario parses, compiles and verifies a wire scenario. The
// trace loader only accepts inline CSV: a path in a wire spec would read
// the server's filesystem.
func (s *Server) compileScenario(text string) (*scenario.Compiled, scenario.Coverage, error) {
	spec, err := scenario.Parse([]byte(text))
	if err != nil {
		return nil, scenario.Coverage{}, err
	}
	c, err := spec.Compile(scenario.CompileOptions{
		LoadTrace: func(src scenario.Source) (*trace.Dataset, error) {
			if src.CSV == "" {
				return nil, fmt.Errorf("trace source %q names a server-side path; inline the CSV in the \"csv\" field instead", src.Trace)
			}
			return trace.ReadCSV(strings.NewReader(src.CSV))
		},
	})
	if err != nil {
		return nil, scenario.Coverage{}, err
	}
	if len(c.Cells) > maxSweepCells {
		return nil, scenario.Coverage{}, fmt.Errorf("scenario compiles to %d cells, limit %d", len(c.Cells), maxSweepCells)
	}
	cov, err := c.Verify()
	if err != nil {
		// A verification failure here is a compiler bug, not a bad
		// request — but refusing to run an unproven campaign is the
		// endpoint's contract either way.
		return nil, scenario.Coverage{}, fmt.Errorf("compiled campaign failed verification: %w", err)
	}
	return c, cov, nil
}

// WireStudySpec renders a resolved engine spec as the /v1/study wire
// form, for dispatching a wire-expressible scenario cell whole to a
// fleet worker. Every field is post-resolution, so the worker resolves
// to the identical spec key and the result is bit-identical to local
// execution of the same cell. Shared by the coordinator server and the
// CLI's -fleet -scenario path.
func WireStudySpec(resolved engine.Spec) StudySpec {
	geom := resolved.Geometry
	fabric := resolved.Fabric
	d := resolved.DLB
	return StudySpec{
		App:               resolved.App,
		Geometry:          &geom,
		BytesPerPartition: resolved.BytesPerPartition,
		Fabric:            &fabric,
		Policy: &PolicySpec{
			DLB:                 &d,
			Alpha:               resolved.Alpha,
			LaggardThresholdSec: resolved.LaggardThresholdSec,
			BinTimeoutSec:       resolved.BinTimeoutSec,
		},
	}
}

// runScenarioCell answers one compiled cell: fleet dispatch for
// wire-expressible cells when a StudyDispatcher is configured, the local
// coalescing stack otherwise.
func (s *Server) runScenarioCell(ctx context.Context, cell scenario.Cell) ScenarioRow {
	row := ScenarioRow{
		Index:         cell.Index,
		Workload:      cell.SourceKey,
		Geometry:      cell.Geometry,
		Noise:         cell.Noise,
		DLB:           cell.DLB,
		Fabric:        cell.Fabric,
		BinTimeoutSec: cell.BinTimeoutSec,
	}
	resolved, err := cell.Spec.Resolve()
	if err != nil {
		row.Err = err.Error()
		return row
	}
	if n := resolved.Geometry.Samples(); resolved.Dataset == nil && n > s.maxStudySamples {
		row.Err = fmt.Sprintf("geometry has %d samples, over the study limit %d", n, s.maxStudySamples)
		return row
	}

	// Only bare app cells travel: datasets and noise-wrapped models are
	// not wire-expressible, so those always run at the coordinator. The
	// check reads the compiled (pre-resolution) spec — Resolve fills
	// Model in for bare apps too.
	wire := cell.Spec.Model == nil && cell.Spec.Dataset == nil && cell.Spec.App != ""
	if sd, ok := s.opts.Fleet.(StudyDispatcher); ok && wire {
		if resp, placed := sd.DispatchStudy(ctx, resolved.Key().Hash(), WireStudySpec(resolved)); placed {
			s.fleetCells.Add(1)
			row.StudyResponse = resp
			row.Federated = true
			return row
		}
		s.fleetFallbacks.Add(1)
	}

	res, src, err := s.runResolved(resolved)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.StudyResponse = studyResponse(res, src)
	return row
}

// handleScenario answers POST /v1/scenario: the scenario document is
// compiled and coverage-verified server-side, then — unless "check" is
// set — executed cell by cell through the same coalescing stack as
// /v1/study, with wire-expressible cells federated across the fleet
// when one is configured.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	var req ScenarioRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Scenario) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("scenario document is empty"))
		return
	}
	c, cov, err := s.compileScenario(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := ScenarioResponse{
		Name:        c.Spec.Name,
		Description: c.Spec.Description,
		Cells:       cov.Cells,
		UniqueSpecs: cov.UniqueSpecs,
	}
	if req.Check {
		resp.Plan = c.Plan()
		writeJSON(w, http.StatusOK, resp)
		return
	}

	workers := s.clampWorkers(req.Workers, len(c.Cells))
	if req.Stream {
		emit := startNDJSON(w, "X-Scenario-Cells", len(c.Cells))
		fanOut(len(c.Cells), workers, func(i int) {
			emit(s.runScenarioCell(r.Context(), c.Cells[i]))
		})
		return
	}
	resp.Rows = make([]ScenarioRow, len(c.Cells))
	fanOut(len(c.Cells), workers, func(i int) {
		resp.Rows[i] = s.runScenarioCell(r.Context(), c.Cells[i])
	})
	for i := range resp.Rows {
		if resp.Rows[i].Err != "" {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
