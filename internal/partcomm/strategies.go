package partcomm

import (
	"fmt"

	"earlybird/internal/network"
	"earlybird/internal/stats"
	"earlybird/internal/trace"
)

// Strategy is a message-delivery policy evaluated over one process
// iteration: given the sorted thread arrival times (seconds, one
// partition per thread) it returns the time at which the full buffer has
// been delivered over the fabric.
type Strategy interface {
	Name() string
	// FinishTime computes delivery completion. arrivals must be sorted
	// ascending; bytesPerPart is one partition's payload.
	FinishTime(arrivals []float64, bytesPerPart int, f network.Fabric) float64
}

// Bulk models the traditional BSP pattern: the whole buffer is sent as
// one message after the last thread arrives (the fork/join baseline the
// paper's Figure 1 contrasts against).
type Bulk struct{}

// Name implements Strategy.
func (Bulk) Name() string { return "bulk" }

// FinishTime implements Strategy.
func (Bulk) FinishTime(arrivals []float64, bytesPerPart int, f network.Fabric) float64 {
	if len(arrivals) == 0 {
		return 0
	}
	tmax := arrivals[len(arrivals)-1]
	return tmax + f.TransferTime(bytesPerPart*len(arrivals))
}

// FineGrained is per-partition early-bird delivery: every partition is
// injected the moment its thread arrives, serialising on the link.
type FineGrained struct{}

// Name implements Strategy.
func (FineGrained) Name() string { return "finegrained" }

// FinishTime implements Strategy.
func (FineGrained) FinishTime(arrivals []float64, bytesPerPart int, f network.Fabric) float64 {
	link := network.NewLink(f)
	done := 0.0
	for _, t := range arrivals {
		if d := link.Send(t, bytesPerPart); d > done {
			done = d
		}
	}
	return done
}

// Binned aggregates ready partitions and flushes them as one message per
// timeout window (the "binning model for aggregating data" of Section 5),
// plus a final flush when the last thread arrives.
type Binned struct {
	// TimeoutSec is the flush period (> 0).
	TimeoutSec float64
}

// Name implements Strategy.
func (b Binned) Name() string { return fmt.Sprintf("binned(%gus)", b.TimeoutSec*1e6) }

// FinishTime implements Strategy.
func (b Binned) FinishTime(arrivals []float64, bytesPerPart int, f network.Fabric) float64 {
	if len(arrivals) == 0 {
		return 0
	}
	if b.TimeoutSec <= 0 {
		return (Bulk{}).FinishTime(arrivals, bytesPerPart, f)
	}
	link := network.NewLink(f)
	done := 0.0
	i := 0
	tmax := arrivals[len(arrivals)-1]
	for flush := arrivals[0] + b.TimeoutSec; i < len(arrivals); flush += b.TimeoutSec {
		if flush > tmax {
			flush = tmax
		}
		count := 0
		for i+count < len(arrivals) && arrivals[i+count] <= flush {
			count++
		}
		if count > 0 {
			if d := link.Send(flush, bytesPerPart*count); d > done {
				done = d
			}
			i += count
		}
	}
	return done
}

// Result summarises one strategy over a dataset.
type Result struct {
	Strategy string `json:"strategy"`
	// MeanFinishSec is the mean delivery-completion time per process
	// iteration.
	MeanFinishSec float64 `json:"mean_finish_sec"`
	// MeanOverlapSec is the mean of (bulk finish - strategy finish): the
	// communication time recovered by early-bird delivery (the green
	// boxes of the paper's Figure 2).
	MeanOverlapSec float64 `json:"mean_overlap_sec"`
	// SpeedupVsBulk is mean bulk finish / mean strategy finish.
	SpeedupVsBulk float64 `json:"speedup_vs_bulk"`
	// OverlapCapture is MeanOverlapSec divided by the study's mean
	// idealised per-thread overlap (PotentialOverlap): the fraction of
	// the theoretically reclaimable idle time the strategy recovers.
	// Zero when the potential is zero. Values above 1 are possible —
	// pipelining partitions onto the link also shortens the transfer
	// itself, a gain the per-thread idle bound does not count.
	OverlapCapture float64 `json:"overlap_capture,omitempty"`
}

// Evaluate runs each strategy over every process iteration of the
// dataset, with one partition per thread of bytesPerPart bytes.
//
// Deprecated: Evaluate is a thin adapter over the cursor-native
// EvaluateStream — it no longer needs a materialised dataset beyond the
// cursor the view already carries. New code should call EvaluateStream
// (or StrategyAccumulator) on a trace.Cursor directly so no caller
// requires the nested view at all.
func Evaluate(d *trace.Dataset, bytesPerPart int, f network.Fabric, strategies []Strategy) []Result {
	return EvaluateStream(d.Cursor(), bytesPerPart, f, strategies)
}

// evaluateMaterialized is the pre-cursor implementation, retained as the
// independent reference the streaming-vs-exact agreement tests and the
// BenchmarkStrategySweep baseline compare against.
func evaluateMaterialized(d *trace.Dataset, bytesPerPart int, f network.Fabric, strategies []Strategy) []Result {
	for _, s := range strategies {
		if r, ok := s.(resettable); ok {
			r.Reset()
		}
	}
	results := make([]Result, len(strategies))
	bulkSum := 0.0
	finishSums := make([]float64, len(strategies))
	potentialSum := 0.0
	n := 0
	bulk := Bulk{}
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		arrivals := stats.Sorted(xs)
		bulkFinish := bulk.FinishTime(arrivals, bytesPerPart, f)
		bulkSum += bulkFinish
		potentialSum += PotentialOverlap(arrivals)
		for k, s := range strategies {
			finishSums[k] += s.FinishTime(arrivals, bytesPerPart, f)
		}
		n++
	})
	for k, s := range strategies {
		r := Result{Strategy: s.Name()}
		if n > 0 {
			r.MeanFinishSec = finishSums[k] / float64(n)
			meanBulk := bulkSum / float64(n)
			r.MeanOverlapSec = meanBulk - r.MeanFinishSec
			if r.MeanFinishSec > 0 {
				r.SpeedupVsBulk = meanBulk / r.MeanFinishSec
			}
			if potential := potentialSum / float64(n); potential > 0 {
				r.OverlapCapture = r.MeanOverlapSec / potential
			}
		}
		results[k] = r
	}
	return results
}

// PotentialOverlap returns, for one process iteration, the idealised
// transmission time available before the last thread arrives if every
// partition could be sent immediately on arrival with an infinitely fast
// link — an upper bound on early-bird benefit equal to the paper's
// reclaimable time divided by the thread count.
func PotentialOverlap(arrivals []float64) float64 {
	if len(arrivals) == 0 {
		return 0
	}
	tmax := stats.Max(arrivals)
	sum := 0.0
	for _, t := range arrivals {
		sum += tmax - t
	}
	return sum / float64(len(arrivals))
}

// String renders a result row in microseconds/milliseconds as
// appropriate.
func (r Result) String() string {
	return fmt.Sprintf("%-16s finish %8.3f ms  overlap %8.3f ms  speedup %5.3fx",
		r.Strategy, 1e3*r.MeanFinishSec, 1e3*r.MeanOverlapSec, r.SpeedupVsBulk)
}
