// Cursor-native strategy evaluation: the streaming counterpart of the
// materialised Evaluate path. A StrategyAccumulator folds one process
// iteration at a time — sorting the arrivals into a reused scratch
// buffer, never retaining the block — so delivery strategies evaluate
// straight off a trace.Cursor (or a cluster.RunStream observer) without
// the nested tensor view ever being built. The campaign engine's
// NestedViews counter stays at zero on this path.

package partcomm

import (
	"earlybird/internal/network"
	"earlybird/internal/sortx"
	"earlybird/internal/trace"
)

// StrategyAccumulator evaluates a fixed strategy set over process
// iterations one block at a time. Per-block work is exact — each block is
// a complete iteration when observed — so Finalize returns precisely what
// the materialised Evaluate path computes, in O(threads) live memory.
//
// An accumulator is not safe for concurrent use. Accumulators over
// stateless strategies are mergeable in any order; adaptive strategies
// (see adaptive.go) carry per-iteration state, so their results depend on
// observation order and should be driven from a single deterministic
// cursor rather than merged across parallel observers.
type StrategyAccumulator struct {
	strategies   []Strategy
	bytesPerPart int
	fabric       network.Fabric

	n            int
	bulkSum      float64
	finishSums   []float64
	potentialSum float64
	scratch      []float64
	bulk         Bulk
}

// resettable is implemented by adaptive strategies whose per-iteration
// state must clear before a new evaluation (EWMABinned). Every
// evaluation entry point resets such strategies up front, so repeated
// evaluations with the same strategy slice are deterministic.
type resettable interface{ Reset() }

// NewStrategyAccumulator returns an empty accumulator evaluating the
// given strategies with one partition per thread of bytesPerPart bytes.
// Adaptive strategies in the slice are Reset so the evaluation starts
// from a clean prediction state.
func NewStrategyAccumulator(strategies []Strategy, bytesPerPart int, f network.Fabric) *StrategyAccumulator {
	for _, s := range strategies {
		if r, ok := s.(resettable); ok {
			r.Reset()
		}
	}
	return &StrategyAccumulator{
		strategies:   strategies,
		bytesPerPart: bytesPerPart,
		fabric:       f,
		finishSums:   make([]float64, len(strategies)),
	}
}

// ObserveBlock implements cluster.BlockObserver: it folds one complete
// process iteration's thread samples into the evaluation. xs need not be
// sorted and is not retained.
func (a *StrategyAccumulator) ObserveBlock(trial, rank, iter int, xs []float64) {
	if len(xs) == 0 {
		return
	}
	a.scratch = append(a.scratch[:0], xs...)
	sortx.Sort(a.scratch)
	arrivals := a.scratch

	bulkFinish := a.bulk.FinishTime(arrivals, a.bytesPerPart, a.fabric)
	a.bulkSum += bulkFinish
	a.potentialSum += PotentialOverlap(arrivals)
	for k, s := range a.strategies {
		a.finishSums[k] += s.FinishTime(arrivals, a.bytesPerPart, a.fabric)
	}
	a.n++
}

// Merge folds another accumulator (same strategies, sizes and fabric)
// into this one. Only valid for stateless strategy sets: adaptive
// strategies make per-worker partitions order-dependent. o must not be
// used afterwards.
func (a *StrategyAccumulator) Merge(o *StrategyAccumulator) {
	if o == nil {
		return
	}
	a.n += o.n
	a.bulkSum += o.bulkSum
	a.potentialSum += o.potentialSum
	for k := range a.finishSums {
		a.finishSums[k] += o.finishSums[k]
	}
}

// Iterations returns how many process iterations have been observed.
func (a *StrategyAccumulator) Iterations() int { return a.n }

// PotentialOverlapSec returns the mean idealised per-thread overlap of
// the observed iterations (the upper bound of the paper's Figure 2).
func (a *StrategyAccumulator) PotentialOverlapSec() float64 {
	if a.n == 0 {
		return 0
	}
	return a.potentialSum / float64(a.n)
}

// Finalize computes one Result per strategy from the accumulated sums.
func (a *StrategyAccumulator) Finalize() []Result {
	results := make([]Result, len(a.strategies))
	potential := a.PotentialOverlapSec()
	for k, s := range a.strategies {
		r := Result{Strategy: s.Name()}
		if a.n > 0 {
			r.MeanFinishSec = a.finishSums[k] / float64(a.n)
			meanBulk := a.bulkSum / float64(a.n)
			r.MeanOverlapSec = meanBulk - r.MeanFinishSec
			if r.MeanFinishSec > 0 {
				r.SpeedupVsBulk = meanBulk / r.MeanFinishSec
			}
			if potential > 0 {
				r.OverlapCapture = r.MeanOverlapSec / potential
			}
		}
		results[k] = r
	}
	return results
}

// Sweep is the outcome of evaluating a strategy grid over one study: the
// per-strategy results plus the frontier — which strategy finishes
// earliest and how much of the idealised overlap it captures.
type Sweep struct {
	// Results holds one row per swept strategy, in grid order.
	Results []Result `json:"results"`
	// PotentialOverlapSec is the mean idealised per-thread overlap: the
	// denominator of every OverlapCapture.
	PotentialOverlapSec float64 `json:"potential_overlap_sec"`
	// Best names the strategy with the smallest mean finish time;
	// BestFinishSec, BestOverlapSec and BestCapture are its row's values.
	Best           string  `json:"best"`
	BestFinishSec  float64 `json:"best_finish_sec"`
	BestOverlapSec float64 `json:"best_overlap_sec"`
	BestCapture    float64 `json:"best_capture"`
}

// frontier fills the Best* fields from Results.
func (s *Sweep) frontier() {
	best := -1
	for i, r := range s.Results {
		if best < 0 || r.MeanFinishSec < s.Results[best].MeanFinishSec {
			best = i
		}
	}
	if best < 0 {
		return
	}
	s.Best = s.Results[best].Strategy
	s.BestFinishSec = s.Results[best].MeanFinishSec
	s.BestOverlapSec = s.Results[best].MeanOverlapSec
	s.BestCapture = s.Results[best].OverlapCapture
}

// SweepCursor evaluates every strategy over each process iteration
// yielded by the cursor — a single pass, one sort per block, no
// materialisation — and returns the results with the frontier computed.
func SweepCursor(cur *trace.Cursor, bytesPerPart int, f network.Fabric, strategies []Strategy) Sweep {
	acc := NewStrategyAccumulator(strategies, bytesPerPart, f)
	for cur.Next() {
		b := cur.Block()
		acc.ObserveBlock(b.Trial, b.Rank, b.Iter, b.Times)
	}
	sw := Sweep{
		Results:             acc.Finalize(),
		PotentialOverlapSec: acc.PotentialOverlapSec(),
	}
	sw.frontier()
	return sw
}

// EvaluateStream is the cursor-native counterpart of Evaluate: identical
// results, bounded memory, no nested view.
func EvaluateStream(cur *trace.Cursor, bytesPerPart int, f network.Fabric, strategies []Strategy) []Result {
	return SweepCursor(cur, bytesPerPart, f, strategies).Results
}
