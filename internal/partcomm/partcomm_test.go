package partcomm

import (
	"bytes"
	"fmt"
	"testing"

	"earlybird/internal/mpi"
	"earlybird/internal/network"
	"earlybird/internal/trace"
)

func TestPartitionedTransferDelivers(t *testing.T) {
	w := mpi.NewWorld(2)
	payload := make([]byte, 64*16)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	err := w.Run(func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			ps, err := NewSend(c, 1, 3, payload, 16)
			if err != nil {
				return err
			}
			// Threads finish out of order: mark ready in a scrambled order.
			for _, i := range []int{5, 0, 15, 3, 8, 1, 2, 7, 4, 6, 9, 12, 10, 11, 14, 13} {
				if err := ps.Pready(i); err != nil {
					return err
				}
			}
			if ps.Pending() != 0 {
				return fmt.Errorf("pending = %d", ps.Pending())
			}
			return nil
		}
		pr, err := NewRecv(c, 0, 3, len(payload), 16)
		if err != nil {
			return err
		}
		got := pr.Wait()
		if !bytes.Equal(got, payload) {
			return fmt.Errorf("payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParrivedPolling(t *testing.T) {
	w := mpi.NewWorld(2)
	payload := make([]byte, 4*8)
	err := w.Run(func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			ps, _ := NewSend(c, 1, 1, payload, 4)
			c.Barrier() // phase 1: nothing sent yet
			if err := ps.Pready(2); err != nil {
				return err
			}
			c.Barrier() // phase 2: partition 2 sent
			c.Barrier() // phase 3: receiver checked
			for _, i := range []int{0, 1, 3} {
				if err := ps.Pready(i); err != nil {
					return err
				}
			}
			return nil
		}
		pr, _ := NewRecv(c, 0, 1, len(payload), 4)
		c.Barrier()
		c.Barrier()
		if ok, _ := pr.Parrived(2); !ok {
			return fmt.Errorf("partition 2 should have arrived")
		}
		if ok, _ := pr.Parrived(0); ok {
			return fmt.Errorf("partition 0 should not have arrived")
		}
		if pr.ArrivedCount() != 1 {
			return fmt.Errorf("arrived count = %d", pr.ArrivedCount())
		}
		c.Barrier()
		pr.Wait()
		if pr.ArrivedCount() != 4 {
			return fmt.Errorf("final arrived count = %d", pr.ArrivedCount())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPreadyValidation(t *testing.T) {
	w := mpi.NewWorld(2)
	c := w.Comm(0)
	ps, err := NewSend(c, 1, 0, make([]byte, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Pready(4); err == nil {
		t.Error("out-of-range partition accepted")
	}
	if err := ps.Pready(-1); err == nil {
		t.Error("negative partition accepted")
	}
	if err := ps.Pready(1); err != nil {
		t.Fatal(err)
	}
	if err := ps.Pready(1); err == nil {
		t.Error("double Pready accepted")
	}
}

func TestNewSendRecvValidation(t *testing.T) {
	w := mpi.NewWorld(2)
	c := w.Comm(0)
	if _, err := NewSend(c, 1, 0, make([]byte, 10), 3); err == nil {
		t.Error("indivisible buffer accepted")
	}
	if _, err := NewSend(c, 1, 0, make([]byte, 8), 0); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := NewRecv(c, 1, 0, 10, 3); err == nil {
		t.Error("indivisible size accepted")
	}
	if _, err := NewRecv(c, 1, 0, 8, tagStride); err == nil {
		t.Error("huge partition count accepted")
	}
}

// tinyDataset builds a dataset with prescribed arrival patterns.
func tinyDataset(rows [][]float64) *trace.Dataset {
	d := trace.NewDataset("tiny", 1, 1, len(rows), len(rows[0]))
	for i, row := range rows {
		copy(d.Times[0][0][i], row)
	}
	return d
}

func TestBulkFinish(t *testing.T) {
	f := network.Fabric{LatencySec: 1e-6, BandwidthBytesPerSec: 1e9}
	arr := []float64{1e-3, 2e-3, 3e-3}
	// tmax 3ms + (1us + 3000/1e9=3us) = 3.004ms
	got := (Bulk{}).FinishTime(arr, 1000, f)
	want := 3e-3 + 4e-6
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("bulk = %v, want %v", got, want)
	}
}

func TestFineGrainedBeatsBulkOnSpreadArrivals(t *testing.T) {
	f := network.OmniPath()
	// Wide spread (MiniQMC-like): early-bird should finish earlier.
	arr := []float64{10e-3, 20e-3, 30e-3, 40e-3, 50e-3, 60e-3, 70e-3, 80e-3}
	const part = 1 << 20 // 1 MiB per partition: transfer matters
	bulk := (Bulk{}).FinishTime(arr, part, f)
	eb := (FineGrained{}).FinishTime(arr, part, f)
	if eb >= bulk {
		t.Fatalf("early-bird %v not faster than bulk %v on spread arrivals", eb, bulk)
	}
	// All but the last partition fit entirely before tmax, so the finish
	// should be close to tmax + one partition transfer.
	ideal := 80e-3 + f.TransferTime(part)
	if eb > ideal+1e-6 {
		t.Fatalf("early-bird %v worse than ideal %v", eb, ideal)
	}
}

func TestFineGrainedOnTightArrivalsNearBulk(t *testing.T) {
	f := network.OmniPath()
	// Tight arrivals (MiniMD phase 2-like): no room for overlap, and the
	// per-message overheads make fine-grained no better than bulk.
	arr := make([]float64, 48)
	for i := range arr {
		arr[i] = 24.74e-3 + float64(i)*1e-7
	}
	const part = 64 << 10
	bulk := (Bulk{}).FinishTime(arr, part, f)
	eb := (FineGrained{}).FinishTime(arr, part, f)
	// Overlap is bounded by the arrival spread (~5us) minus extra
	// per-message latencies; it must be tiny compared to the transfer.
	if bulk-eb > 1e-4*bulk+10e-6 {
		t.Fatalf("unexpected large overlap on tight arrivals: bulk %v eb %v", bulk, eb)
	}
}

func TestBinnedBetweenBulkAndFineGrained(t *testing.T) {
	f := network.OmniPath()
	arr := []float64{5e-3, 15e-3, 25e-3, 35e-3, 45e-3, 55e-3}
	const part = 1 << 20
	bulk := (Bulk{}).FinishTime(arr, part, f)
	eb := (FineGrained{}).FinishTime(arr, part, f)
	binned := (Binned{TimeoutSec: 10e-3}).FinishTime(arr, part, f)
	if binned > bulk+1e-9 {
		t.Fatalf("binned %v worse than bulk %v", binned, bulk)
	}
	if binned < eb-f.TransferTime(part) {
		t.Fatalf("binned %v implausibly better than fine-grained %v", binned, eb)
	}
}

func TestBinnedZeroTimeoutFallsBackToBulk(t *testing.T) {
	f := network.OmniPath()
	arr := []float64{1e-3, 2e-3}
	if (Binned{}).FinishTime(arr, 100, f) != (Bulk{}).FinishTime(arr, 100, f) {
		t.Fatal("zero timeout should behave like bulk")
	}
}

func TestStrategiesEmptyArrivals(t *testing.T) {
	f := network.OmniPath()
	for _, s := range []Strategy{Bulk{}, FineGrained{}, Binned{TimeoutSec: 1e-3}} {
		if got := s.FinishTime(nil, 100, f); got != 0 {
			t.Errorf("%s on empty arrivals = %v", s.Name(), got)
		}
	}
}

func TestEvaluateOrdering(t *testing.T) {
	// Laggard pattern (MiniFE-like): one thread 5ms late. Early-bird
	// should recover most of the transfer time of 47 partitions.
	rows := make([][]float64, 10)
	for i := range rows {
		row := make([]float64, 48)
		for j := range row {
			row[j] = 26.3e-3
		}
		row[47] = 31.3e-3
		rows[i] = row
	}
	d := tinyDataset(rows)
	f := network.OmniPath()
	const part = 1 << 20
	res := Evaluate(d, part, f, []Strategy{Bulk{}, FineGrained{}, Binned{TimeoutSec: 1e-3}})
	if res[0].Strategy != "bulk" {
		t.Fatalf("order: %+v", res)
	}
	if res[0].MeanOverlapSec < -1e-12 || res[0].MeanOverlapSec > 1e-12 {
		t.Errorf("bulk vs bulk overlap = %v", res[0].MeanOverlapSec)
	}
	if res[1].MeanOverlapSec <= 0 {
		t.Errorf("fine-grained overlap %v not positive with laggard", res[1].MeanOverlapSec)
	}
	if res[1].SpeedupVsBulk <= 1 {
		t.Errorf("fine-grained speedup %v <= 1", res[1].SpeedupVsBulk)
	}
	if res[2].MeanOverlapSec <= 0 {
		t.Errorf("binned overlap %v not positive with laggard", res[2].MeanOverlapSec)
	}
	for _, r := range res {
		if r.String() == "" {
			t.Error("empty render")
		}
	}
}

func TestPotentialOverlap(t *testing.T) {
	arr := []float64{1, 2, 3, 4}
	// Reclaimable = 6; / 4 threads = 1.5.
	if got := PotentialOverlap(arr); got != 1.5 {
		t.Fatalf("potential overlap = %v", got)
	}
	if PotentialOverlap(nil) != 0 {
		t.Fatal("empty arrivals should be 0")
	}
}

func TestBinnedNeverSlowerThanBulkProperty(t *testing.T) {
	f := network.OmniPath()
	patterns := [][]float64{
		{1e-3},
		{1e-3, 1e-3, 1e-3},
		{1e-3, 5e-3, 9e-3, 20e-3},
		{26.3e-3, 26.3e-3, 26.31e-3, 30e-3},
	}
	for _, arr := range patterns {
		for _, timeout := range []float64{0.1e-3, 1e-3, 10e-3} {
			bulk := (Bulk{}).FinishTime(arr, 4096, f)
			binned := (Binned{TimeoutSec: timeout}).FinishTime(arr, 4096, f)
			// Binning can add at most the extra per-message costs of its
			// flushes; with these sizes that is well under 2 * bulk's
			// message overhead per flush. It must never beat physics:
			// not earlier than the last arrival.
			if binned < arr[len(arr)-1] {
				t.Errorf("binned(%v) on %v finished %v before last arrival", timeout, arr, binned)
			}
			slack := float64(len(arr)) * (f.LatencySec + f.OverheadSec)
			if binned > bulk+slack {
				t.Errorf("binned(%v) on %v = %v far exceeds bulk %v", timeout, arr, binned, bulk)
			}
		}
	}
}
