package partcomm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"earlybird/internal/mpi"
	"earlybird/internal/network"
)

// Property: a partitioned transfer delivers the exact payload for any
// partition count and any ready-order permutation.
func TestPartitionedTransferPermutationProperty(t *testing.T) {
	check := func(rawParts uint8, rawPartSize uint8, perm []uint8) bool {
		parts := int(rawParts%15) + 1
		partSize := int(rawPartSize%64) + 1
		payload := make([]byte, parts*partSize)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		// Build a ready order from the permutation hints.
		order := make([]int, parts)
		for i := range order {
			order[i] = i
		}
		for i, p := range perm {
			j := int(p) % parts
			order[i%parts], order[j] = order[j], order[i%parts]
		}

		w := mpi.NewWorld(2)
		err := w.Run(func(c *mpi.Comm) error {
			if c.Rank() == 0 {
				ps, err := NewSend(c, 1, 2, payload, parts)
				if err != nil {
					return err
				}
				for _, i := range order {
					if err := ps.Pready(i); err != nil {
						return err
					}
				}
				return nil
			}
			pr, err := NewRecv(c, 0, 2, len(payload), parts)
			if err != nil {
				return err
			}
			if !bytes.Equal(pr.Wait(), payload) {
				return fmt.Errorf("payload mismatch")
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: for any arrival set and sizes, every strategy finishes no
// earlier than the last arrival and no earlier than one partition's
// transfer past the first arrival.
func TestStrategyPhysicalBoundsProperty(t *testing.T) {
	f := network.OmniPath()
	strategies := []Strategy{
		Bulk{}, FineGrained{}, Binned{TimeoutSec: 1e-3}, CountThreshold{K: 4},
		&EWMABinned{Alpha: 0.2}, Hybrid{}, LaggardAware{ThresholdSec: 1e-3},
	}
	check := func(raw []uint16, rawSize uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		arrivals := make([]float64, len(raw))
		for i, r := range raw {
			arrivals[i] = float64(r) * 1e-6 // 0..65ms
		}
		sortFloat64s(arrivals)
		size := int(rawSize)%(1<<20) + 1
		last := arrivals[len(arrivals)-1]
		minFinish := last + f.TransferTime(size) - 1e-12
		for _, s := range strategies {
			if got := s.FinishTime(arrivals, size, f); got < minFinish {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// FuzzStrategyOrdering checks the strategy lab's ordering laws on
// arbitrary arrival vectors (each input byte is one arrival in 250 us
// steps, so vectors span 0..64 ms — the scale of the measured studies):
//
//  1. On a bandwidth-only fabric (no per-message latency or overhead),
//     fine-grained delivery never finishes after bulk: by induction the
//     k-th partition completes no later than t_max + k x (b/beta), whose
//     last term is exactly the bulk finish. (With per-message cost the
//     law genuinely fails for clustered arrivals — n messages pay n
//     latencies — which is the whole point of the binning strategies.)
//  2. Binned delivery with an effectively infinite timeout degenerates
//     to a single flush when the last thread arrives: exactly bulk.
//  3. Hybrid picks bulk or fine-grained per iteration, so it is never
//     worse than the slower of its two modes.
//  4. Every strategy — adaptive ones included — respects the physical
//     floor: the last partition cannot complete before the last arrival
//     plus one partition's wire time.
//
// CI runs this for a 10s smoke (make fuzz-smoke) on top of the corpus
// replay that plain `go test` performs.
func FuzzStrategyOrdering(f *testing.F) {
	f.Add([]byte{0}, uint16(1))
	f.Add([]byte{0, 0, 0, 0}, uint16(4096))         // fully clustered arrivals
	f.Add([]byte{1, 2, 3, 250}, uint16(1<<15))      // one dominant laggard
	f.Add([]byte{10, 20, 30, 40, 50}, uint16(9999)) // even spread
	f.Fuzz(func(t *testing.T, raw []byte, rawSize uint16) {
		if len(raw) == 0 {
			return
		}
		if len(raw) > 96 {
			raw = raw[:96]
		}
		arrivals := make([]float64, len(raw))
		for i, b := range raw {
			arrivals[i] = float64(b) * 250e-6
		}
		sortFloat64s(arrivals)
		size := int(rawSize)%(1<<20) + 1
		tmax := arrivals[len(arrivals)-1]

		// 1: fine-grained <= bulk without per-message cost.
		bwOnly := network.Fabric{BandwidthBytesPerSec: 12.5e9}
		fineBW := FineGrained{}.FinishTime(arrivals, size, bwOnly)
		bulkBW := Bulk{}.FinishTime(arrivals, size, bwOnly)
		if fineBW > bulkBW*(1+1e-12)+1e-15 {
			t.Errorf("bandwidth-only: fine-grained %v > bulk %v (arrivals %v, size %d)",
				fineBW, bulkBW, arrivals, size)
		}

		// 2: binned(t -> inf) == bulk on the real fabric.
		fab := network.OmniPath()
		bulk := Bulk{}.FinishTime(arrivals, size, fab)
		if binInf := (Binned{TimeoutSec: 3600}).FinishTime(arrivals, size, fab); binInf != bulk {
			t.Errorf("binned(inf) %v != bulk %v (arrivals %v, size %d)", binInf, bulk, arrivals, size)
		}

		// 3: hybrid <= max(bulk, fine-grained), exactly.
		fine := FineGrained{}.FinishTime(arrivals, size, fab)
		worse := bulk
		if fine > worse {
			worse = fine
		}
		if hy := (Hybrid{}).FinishTime(arrivals, size, fab); hy > worse {
			t.Errorf("hybrid %v > max(bulk %v, fine %v)", hy, bulk, fine)
		}

		// 4: physical floor for every strategy, adaptive included.
		floor := tmax + fab.TransferTime(size) - 1e-12
		for _, s := range []Strategy{
			Bulk{}, FineGrained{}, Binned{TimeoutSec: 1e-3}, CountThreshold{K: 4},
			&EWMABinned{Alpha: 0.2}, Hybrid{}, LaggardAware{ThresholdSec: 1e-3},
		} {
			if got := s.FinishTime(arrivals, size, fab); got < floor {
				t.Errorf("%s finish %v below physical floor %v (arrivals %v, size %d)",
					s.Name(), got, floor, arrivals, size)
			}
		}
	})
}
