package partcomm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"earlybird/internal/mpi"
	"earlybird/internal/network"
)

// Property: a partitioned transfer delivers the exact payload for any
// partition count and any ready-order permutation.
func TestPartitionedTransferPermutationProperty(t *testing.T) {
	check := func(rawParts uint8, rawPartSize uint8, perm []uint8) bool {
		parts := int(rawParts%15) + 1
		partSize := int(rawPartSize%64) + 1
		payload := make([]byte, parts*partSize)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		// Build a ready order from the permutation hints.
		order := make([]int, parts)
		for i := range order {
			order[i] = i
		}
		for i, p := range perm {
			j := int(p) % parts
			order[i%parts], order[j] = order[j], order[i%parts]
		}

		w := mpi.NewWorld(2)
		err := w.Run(func(c *mpi.Comm) error {
			if c.Rank() == 0 {
				ps, err := NewSend(c, 1, 2, payload, parts)
				if err != nil {
					return err
				}
				for _, i := range order {
					if err := ps.Pready(i); err != nil {
						return err
					}
				}
				return nil
			}
			pr, err := NewRecv(c, 0, 2, len(payload), parts)
			if err != nil {
				return err
			}
			if !bytes.Equal(pr.Wait(), payload) {
				return fmt.Errorf("payload mismatch")
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: for any arrival set and sizes, every strategy finishes no
// earlier than the last arrival and no earlier than one partition's
// transfer past the first arrival.
func TestStrategyPhysicalBoundsProperty(t *testing.T) {
	f := network.OmniPath()
	strategies := []Strategy{Bulk{}, FineGrained{}, Binned{TimeoutSec: 1e-3}, CountThreshold{K: 4}}
	check := func(raw []uint16, rawSize uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		arrivals := make([]float64, len(raw))
		for i, r := range raw {
			arrivals[i] = float64(r) * 1e-6 // 0..65ms
		}
		sortFloat64s(arrivals)
		size := int(rawSize)%(1<<20) + 1
		last := arrivals[len(arrivals)-1]
		minFinish := last + f.TransferTime(size) - 1e-12
		for _, s := range strategies {
			if got := s.FinishTime(arrivals, size, f); got < minFinish {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
