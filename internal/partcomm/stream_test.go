package partcomm

import (
	"math"
	"sync"
	"testing"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/network"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

// paperColumnar generates the MiniFE study at the paper's full geometry
// once and shares it between the agreement test and the sweep benchmark.
var (
	paperOnce sync.Once
	paperCol  *trace.Columnar
)

func paperColumnar(tb testing.TB) *trace.Columnar {
	tb.Helper()
	paperOnce.Do(func() {
		model, err := workload.ByName("minife")
		if err != nil {
			panic(err)
		}
		col, err := cluster.RunColumnar(model, cluster.DefaultConfig(), 0)
		if err != nil {
			panic(err)
		}
		paperCol = col
	})
	return paperCol
}

// testGrid returns a fresh strategy grid covering every strategy family;
// adaptive strategies are stateful, so each evaluation path needs its
// own instances.
func testGrid() []Strategy {
	return []Strategy{
		Bulk{},
		FineGrained{},
		Binned{TimeoutSec: 1e-3},
		CountThreshold{K: 8},
		&EWMABinned{Alpha: 0.2},
		Hybrid{},
		LaggardAware{ThresholdSec: 1e-3},
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

// TestEvaluateStreamMatchesMaterializedPaperGeometry: at the paper's
// full geometry, the cursor-native evaluation must agree with the
// pre-cursor materialised implementation on every strategy — including
// the adaptive ones, which see iterations in the identical
// (trial, rank, iteration) order on both paths. This is the strategy
// lab's counterpart of PR 2's streaming-vs-exact agreement tests.
func TestEvaluateStreamMatchesMaterializedPaperGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("paper geometry in -short mode")
	}
	col := paperColumnar(t)
	f := network.OmniPath()
	const bytesPerPart = 1 << 20

	streamed := EvaluateStream(col.Cursor(), bytesPerPart, f, testGrid())
	exact := evaluateMaterialized(col.Dataset(), bytesPerPart, f, testGrid())

	if len(streamed) != len(exact) {
		t.Fatalf("streamed %d results, exact %d", len(streamed), len(exact))
	}
	for i := range streamed {
		if streamed[i].Strategy != exact[i].Strategy {
			t.Fatalf("result %d: strategy %q vs %q", i, streamed[i].Strategy, exact[i].Strategy)
		}
		for _, c := range []struct {
			what      string
			got, want float64
		}{
			{"MeanFinishSec", streamed[i].MeanFinishSec, exact[i].MeanFinishSec},
			{"MeanOverlapSec", streamed[i].MeanOverlapSec, exact[i].MeanOverlapSec},
			{"SpeedupVsBulk", streamed[i].SpeedupVsBulk, exact[i].SpeedupVsBulk},
			{"OverlapCapture", streamed[i].OverlapCapture, exact[i].OverlapCapture},
		} {
			if relDiff(c.got, c.want) > 1e-12 {
				t.Errorf("%s/%s: streaming %v vs exact %v", streamed[i].Strategy, c.what, c.got, c.want)
			}
		}
	}
}

// TestEvaluateAdapterMatchesStream: the deprecated materialised-signature
// Evaluate is a thin adapter and must return exactly the cursor path's
// results (Binned's Name stays stable for golden files).
func TestEvaluateAdapterMatchesStream(t *testing.T) {
	model, err := workload.ByName("minimd")
	if err != nil {
		t.Fatal(err)
	}
	col, err := cluster.RunColumnar(model, cluster.Config{Trials: 1, Ranks: 2, Iterations: 20, Threads: 48, Seed: 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	strategies := []Strategy{Bulk{}, FineGrained{}, Binned{TimeoutSec: 1e-3}}
	viaAdapter := Evaluate(col.Dataset(), 1<<20, network.OmniPath(), strategies)
	viaCursor := EvaluateStream(col.Cursor(), 1<<20, network.OmniPath(), strategies)
	for i := range viaAdapter {
		if viaAdapter[i] != viaCursor[i] {
			t.Errorf("result %d: adapter %+v vs cursor %+v", i, viaAdapter[i], viaCursor[i])
		}
	}
	if got := viaAdapter[2].Strategy; got != "binned(1000us)" {
		t.Errorf("Binned name changed: %q", got)
	}
}

// TestStrategyAccumulatorMerge: for stateless strategies, accumulators
// over disjoint block partitions merge to the sequential result.
func TestStrategyAccumulatorMerge(t *testing.T) {
	model, err := workload.ByName("miniqmc")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{Trials: 1, Ranks: 2, Iterations: 16, Threads: 48, Seed: 3}
	col, err := cluster.RunColumnar(model, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	strategies := func() []Strategy {
		return []Strategy{Bulk{}, FineGrained{}, Binned{TimeoutSec: 0.5e-3}}
	}
	f := network.OmniPath()

	seq := NewStrategyAccumulator(strategies(), 1<<18, f)
	a := NewStrategyAccumulator(strategies(), 1<<18, f)
	b := NewStrategyAccumulator(strategies(), 1<<18, f)
	i := 0
	for cur := col.Cursor(); cur.Next(); i++ {
		blk := cur.Block()
		seq.ObserveBlock(blk.Trial, blk.Rank, blk.Iter, blk.Times)
		if i%2 == 0 {
			a.ObserveBlock(blk.Trial, blk.Rank, blk.Iter, blk.Times)
		} else {
			b.ObserveBlock(blk.Trial, blk.Rank, blk.Iter, blk.Times)
		}
	}
	a.Merge(b)
	if a.Iterations() != seq.Iterations() {
		t.Fatalf("merged %d iterations, want %d", a.Iterations(), seq.Iterations())
	}
	got, want := a.Finalize(), seq.Finalize()
	for k := range want {
		if relDiff(got[k].MeanFinishSec, want[k].MeanFinishSec) > 1e-12 ||
			relDiff(got[k].MeanOverlapSec, want[k].MeanOverlapSec) > 1e-9 {
			t.Errorf("%s: merged %+v vs sequential %+v", want[k].Strategy, got[k], want[k])
		}
	}
	if relDiff(a.PotentialOverlapSec(), seq.PotentialOverlapSec()) > 1e-12 {
		t.Errorf("potential: merged %v vs sequential %v", a.PotentialOverlapSec(), seq.PotentialOverlapSec())
	}
}

// TestSweepFrontierPicksMinimumFinish: the frontier names the strategy
// with the smallest mean finish time and copies its row's values.
func TestSweepFrontierPicksMinimumFinish(t *testing.T) {
	col := smallSyntheticColumnar(t)
	sw := SweepCursor(col.Cursor(), 1<<20, network.OmniPath(), testGrid())
	if len(sw.Results) != len(testGrid()) {
		t.Fatalf("got %d results, want %d", len(sw.Results), len(testGrid()))
	}
	best := sw.Results[0]
	for _, r := range sw.Results[1:] {
		if r.MeanFinishSec < best.MeanFinishSec {
			best = r
		}
	}
	if sw.Best != best.Strategy || sw.BestFinishSec != best.MeanFinishSec {
		t.Errorf("frontier %q/%v, want %q/%v", sw.Best, sw.BestFinishSec, best.Strategy, best.MeanFinishSec)
	}
	if sw.BestOverlapSec != best.MeanOverlapSec || sw.BestCapture != best.OverlapCapture {
		t.Errorf("frontier row values diverged from best result")
	}
	if sw.PotentialOverlapSec <= 0 {
		t.Errorf("potential overlap = %v, want > 0", sw.PotentialOverlapSec)
	}
}

func smallSyntheticColumnar(t *testing.T) *trace.Columnar {
	t.Helper()
	model, err := workload.ByName("minife")
	if err != nil {
		t.Fatal(err)
	}
	col, err := cluster.RunColumnar(model, cluster.Config{Trials: 1, Ranks: 1, Iterations: 12, Threads: 48, Seed: 11}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// TestTuneLaggardAware: the tuned threshold is half the mean laggard
// magnitude, floored at the paper's 1 ms rule.
func TestTuneLaggardAware(t *testing.T) {
	if got := TuneLaggardAware(analysis.LaggardStats{MeanMagnitudeSec: 8e-3}); got.ThresholdSec != 4e-3 {
		t.Errorf("tuned threshold = %v, want 4ms", got.ThresholdSec)
	}
	if got := TuneLaggardAware(analysis.LaggardStats{MeanMagnitudeSec: 0.4e-3}); got.ThresholdSec != analysis.DefaultLaggardThresholdSec {
		t.Errorf("tuned threshold = %v, want the 1ms floor", got.ThresholdSec)
	}
	if got := TuneLaggardAware(analysis.LaggardStats{}); got.ThresholdSec != analysis.DefaultLaggardThresholdSec {
		t.Errorf("no-laggard tuning = %v, want the 1ms floor", got.ThresholdSec)
	}
}

// TestEWMABinnedDeterministicPerInstance: EWMABinned evaluations are
// deterministic — fresh instances agree, and because every evaluation
// entry point resets adaptive state up front, *reusing* one instance
// (as core.Options.Strategies does across repeated Feasibility calls)
// reproduces the identical result.
func TestEWMABinnedDeterministicPerInstance(t *testing.T) {
	col := smallSyntheticColumnar(t)
	f := network.OmniPath()
	run := func(e *EWMABinned) []Result {
		return EvaluateStream(col.Cursor(), 1<<20, f, []Strategy{e})
	}
	first := run(&EWMABinned{Alpha: 0.3})
	second := run(&EWMABinned{Alpha: 0.3})
	if first[0] != second[0] {
		t.Errorf("fresh instances diverged: %+v vs %+v", first[0], second[0])
	}
	e := &EWMABinned{Alpha: 0.3}
	run(e)
	if got := run(e); got[0] != first[0] {
		t.Errorf("reused instance diverged (state not reset): %+v vs %+v", got[0], first[0])
	}
}

// BenchmarkStrategySweep compares the cursor-native evaluator against
// the materialised reference at the paper's geometry: identical numbers,
// but the streaming path reuses one scratch buffer per accumulator while
// the materialised path allocates a sorted copy per process iteration.
// make bench-json records this as BENCH_strategies.json; the acceptance
// bar is streaming B/op strictly below materialised B/op.
func BenchmarkStrategySweep(b *testing.B) {
	col := paperColumnar(b)
	f := network.OmniPath()
	const bytesPerPart = 1 << 20

	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := EvaluateStream(col.Cursor(), bytesPerPart, f, testGrid())
			if len(res) == 0 {
				b.Fatal("empty results")
			}
		}
	})
	b.Run("materialized", func(b *testing.B) {
		ds := col.Dataset() // view built outside the timer, as the engine cache would
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := evaluateMaterialized(ds, bytesPerPart, f, testGrid())
			if len(res) == 0 {
				b.Fatal("empty results")
			}
		}
	})
}
