package partcomm

import (
	"fmt"

	"earlybird/internal/network"
)

// CountThreshold flushes accumulated ready partitions whenever at least
// K of them are pending, plus a final flush when the last thread
// arrives. It is the count-based dual of the Binned timeout strategy:
// instead of "ship whatever is ready every T", it is "ship as soon as K
// portions are worth a message" — an aggregation policy discussed for
// early-bird runtimes that amortises per-message cost without a timer.
type CountThreshold struct {
	// K is the flush threshold in partitions (>= 1).
	K int
}

// Name implements Strategy.
func (c CountThreshold) Name() string { return fmt.Sprintf("every%d", c.K) }

// FinishTime implements Strategy.
func (c CountThreshold) FinishTime(arrivals []float64, bytesPerPart int, f network.Fabric) float64 {
	if len(arrivals) == 0 {
		return 0
	}
	k := c.K
	if k < 1 {
		k = 1
	}
	link := network.NewLink(f)
	done := 0.0
	pending := 0
	for i, t := range arrivals {
		pending++
		last := i == len(arrivals)-1
		if pending >= k || last {
			// The flush happens when the triggering partition arrives.
			if d := link.Send(t, bytesPerPart*pending); d > done {
				done = d
			}
			pending = 0
		}
	}
	return done
}
