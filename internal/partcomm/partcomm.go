// Package partcomm implements partitioned point-to-point communication in
// the style of MPI 4.0 (Finepoints): a send buffer divided into
// partitions that individual threads mark ready, each partition eligible
// for transmission as soon as its producer finishes — the "early-bird"
// delivery the paper assesses.
//
// The package has two layers:
//
//   - an executable protocol over internal/mpi (PartitionedSend /
//     PartitionedRecv) exercising real buffers and message matching; and
//   - an analytical overlap simulator (strategies.go) that converts
//     measured thread-arrival times into transmission timelines over a
//     network.Fabric, quantifying the feasibility question of the paper's
//     Figures 1-2 and Section 5.
package partcomm

import (
	"fmt"

	"earlybird/internal/mpi"
)

// tagStride encodes (userTag, partition) into MPI tags; partition counts
// must stay below it.
const tagStride = 1 << 16

// PartitionedSend is the sender side of one partitioned transfer. Each
// partition is sent eagerly when Pready is called — the thread that
// finished its portion of the computation triggers transmission without
// waiting for the other threads (Figure 1 of the paper).
type PartitionedSend struct {
	comm       *mpi.Comm
	dst        int
	tag        int
	buf        []byte
	partitions int
	partSize   int
	ready      []bool
}

// NewSend prepares a partitioned send of buf to dst. The buffer is split
// into partitions contiguous, equal pieces (the paper's model: "each
// thread is assigned an equal, contiguous portion of the communication
// buffer"). len(buf) must be divisible by partitions.
func NewSend(comm *mpi.Comm, dst, tag int, buf []byte, partitions int) (*PartitionedSend, error) {
	if partitions < 1 || partitions >= tagStride {
		return nil, fmt.Errorf("partcomm: invalid partition count %d", partitions)
	}
	if len(buf)%partitions != 0 {
		return nil, fmt.Errorf("partcomm: buffer size %d not divisible by %d partitions", len(buf), partitions)
	}
	return &PartitionedSend{
		comm:       comm,
		dst:        dst,
		tag:        tag,
		buf:        buf,
		partitions: partitions,
		partSize:   len(buf) / partitions,
		ready:      make([]bool, partitions),
	}, nil
}

// Pready marks partition i complete and transmits it. Marking the same
// partition ready twice is an error (as in MPI_Pready).
func (s *PartitionedSend) Pready(i int) error {
	if i < 0 || i >= s.partitions {
		return fmt.Errorf("partcomm: partition %d outside [0, %d)", i, s.partitions)
	}
	if s.ready[i] {
		return fmt.Errorf("partcomm: partition %d already marked ready", i)
	}
	s.ready[i] = true
	chunk := s.buf[i*s.partSize : (i+1)*s.partSize]
	s.comm.Send(s.dst, s.tag*tagStride+i, chunk)
	return nil
}

// Pending returns the number of partitions not yet marked ready.
func (s *PartitionedSend) Pending() int {
	n := 0
	for _, r := range s.ready {
		if !r {
			n++
		}
	}
	return n
}

// PartitionedRecv is the receiver side of one partitioned transfer.
type PartitionedRecv struct {
	comm       *mpi.Comm
	src        int
	tag        int
	buf        []byte
	partitions int
	partSize   int
	arrived    []bool
}

// NewRecv prepares reception of a partitioned transfer of total size
// bytes from src.
func NewRecv(comm *mpi.Comm, src, tag, bytes, partitions int) (*PartitionedRecv, error) {
	if partitions < 1 || partitions >= tagStride {
		return nil, fmt.Errorf("partcomm: invalid partition count %d", partitions)
	}
	if bytes%partitions != 0 {
		return nil, fmt.Errorf("partcomm: size %d not divisible by %d partitions", bytes, partitions)
	}
	return &PartitionedRecv{
		comm:       comm,
		src:        src,
		tag:        tag,
		buf:        make([]byte, bytes),
		partitions: partitions,
		partSize:   bytes / partitions,
		arrived:    make([]bool, partitions),
	}, nil
}

// Parrived polls partition i (MPI_Parrived): it consumes any matching
// message without blocking and reports whether the partition has landed.
func (r *PartitionedRecv) Parrived(i int) (bool, error) {
	if i < 0 || i >= r.partitions {
		return false, fmt.Errorf("partcomm: partition %d outside [0, %d)", i, r.partitions)
	}
	if r.arrived[i] {
		return true, nil
	}
	msg, ok := r.comm.TryRecv(r.src, r.tag*tagStride+i)
	if !ok {
		return false, nil
	}
	r.accept(i, msg)
	return true, nil
}

// Wait blocks until every partition has arrived and returns the
// assembled buffer.
func (r *PartitionedRecv) Wait() []byte {
	for i := 0; i < r.partitions; i++ {
		if r.arrived[i] {
			continue
		}
		msg := r.comm.Recv(r.src, r.tag*tagStride+i)
		r.accept(i, msg)
	}
	return r.buf
}

func (r *PartitionedRecv) accept(i int, msg mpi.Message) {
	copy(r.buf[i*r.partSize:(i+1)*r.partSize], msg.Data)
	r.arrived[i] = true
}

// ArrivedCount returns how many partitions have landed so far.
func (r *PartitionedRecv) ArrivedCount() int {
	n := 0
	for _, a := range r.arrived {
		if a {
			n++
		}
	}
	return n
}
