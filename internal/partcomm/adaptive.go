// Adaptive delivery strategies: policies whose behaviour reacts to the
// measured arrival structure instead of a fixed parameter. They extend
// the paper's Section 5/6 discussion — given the thread-timing
// distributions of Section 4, *which* delivery policy makes early-bird
// delivery pay off — with three data-driven answers: predict the binning
// timeout from recent spread (EWMABinned), batch the laggard tail while
// shipping on-time partitions eagerly (LaggardAware), and switch
// bulk↔fine-grained per iteration on the observed IQR (Hybrid).

package partcomm

import (
	"fmt"

	"earlybird/internal/analysis"
	"earlybird/internal/network"
	"earlybird/internal/stats"
)

// DefaultEWMAMinTimeoutSec floors EWMABinned's predicted timeout: tight
// arrival distributions would otherwise drive the prediction towards
// zero, degenerating the binning loop into per-arrival flushes.
const DefaultEWMAMinTimeoutSec = 10e-6

// EWMABinned is timeout binning with a predicted timeout: each
// iteration flushes on the exponentially weighted moving average of the
// previously observed arrival IQRs, so the flush window tracks the
// application's spread instead of a fixed guess. The first iteration
// (no history yet) uses InitTimeoutSec.
//
// EWMABinned carries per-iteration state. The evaluation entry points
// (NewStrategyAccumulator, EvaluateStream, SweepCursor, Evaluate) Reset
// it up front, so repeated evaluations with one instance are
// deterministic; drive it from a single deterministic cursor and do not
// share one across goroutines or merged accumulators.
type EWMABinned struct {
	// Alpha is the smoothing factor in (0, 1]; higher tracks recent
	// iterations faster. Values outside the range clamp to 0.2.
	Alpha float64
	// InitTimeoutSec seeds the first iteration; <= 0 means 1 ms (the
	// paper's binning default).
	InitTimeoutSec float64
	// MinTimeoutSec floors the prediction; <= 0 means
	// DefaultEWMAMinTimeoutSec.
	MinTimeoutSec float64

	predicted float64
	seen      bool
}

// Name implements Strategy.
func (e *EWMABinned) Name() string { return fmt.Sprintf("ewma-binned(a=%g)", e.alpha()) }

func (e *EWMABinned) alpha() float64 {
	if e.Alpha <= 0 || e.Alpha > 1 {
		return 0.2
	}
	return e.Alpha
}

// FinishTime implements Strategy. It evaluates the current prediction,
// then folds this iteration's observed IQR into the EWMA for the next.
func (e *EWMABinned) FinishTime(arrivals []float64, bytesPerPart int, f network.Fabric) float64 {
	if len(arrivals) == 0 {
		return 0
	}
	floor := e.MinTimeoutSec
	if floor <= 0 {
		floor = DefaultEWMAMinTimeoutSec
	}
	timeout := e.predicted
	if !e.seen {
		timeout = e.InitTimeoutSec
		if timeout <= 0 {
			timeout = 1e-3
		}
	}
	if timeout < floor {
		timeout = floor
	}
	finish := Binned{TimeoutSec: timeout}.FinishTime(arrivals, bytesPerPart, f)

	iqr := stats.IQRSorted(arrivals)
	if !e.seen {
		e.predicted = iqr
		e.seen = true
	} else {
		a := e.alpha()
		e.predicted = a*iqr + (1-a)*e.predicted
	}
	return finish
}

// Reset clears the prediction state so the instance can evaluate a new
// study from scratch.
func (e *EWMABinned) Reset() {
	e.predicted = 0
	e.seen = false
}

// LaggardAware reorders delivery around the laggard rule: partitions
// arriving within ThresholdSec of the median thread are "on time" and
// ship fine-grained the moment they arrive (the link is idle while the
// laggard computes anyway), while the laggard tail is batched into one
// final message when the last thread arrives — so stragglers never pay
// per-message overhead on a link that has already drained.
type LaggardAware struct {
	// ThresholdSec separates on-time arrivals from laggards, measured
	// from the median arrival (the paper's Section 4.2.1 rule).
	ThresholdSec float64
}

// Name implements Strategy. The threshold renders in whole microseconds
// so tuned instances (TuneLaggardAware) keep stable, readable names.
func (l LaggardAware) Name() string {
	return fmt.Sprintf("laggard-aware(%.0fus)", l.ThresholdSec*1e6)
}

// FinishTime implements Strategy.
func (l LaggardAware) FinishTime(arrivals []float64, bytesPerPart int, f network.Fabric) float64 {
	n := len(arrivals)
	if n == 0 {
		return 0
	}
	cut := stats.PercentileSorted(arrivals, 50) + l.ThresholdSec
	tmax := arrivals[n-1]
	link := network.NewLink(f)
	done := 0.0
	late := 0
	for _, t := range arrivals {
		if t <= cut {
			if d := link.Send(t, bytesPerPart); d > done {
				done = d
			}
		} else {
			late++
		}
	}
	if late > 0 {
		if d := link.Send(tmax, bytesPerPart*late); d > done {
			done = d
		}
	}
	return done
}

// TuneLaggardAware derives a LaggardAware policy from measured laggard
// statistics (analysis.Laggards / analysis.LaggardsStream): the batching
// horizon is half the mean laggard magnitude — late enough that genuine
// stragglers land in the batched tail, early enough that the tail ships
// soon after the on-time cohort — floored at the paper's 1 ms rule when
// the study has no (or only marginal) laggards.
func TuneLaggardAware(st analysis.LaggardStats) LaggardAware {
	t := st.MeanMagnitudeSec / 2
	if t < analysis.DefaultLaggardThresholdSec {
		t = analysis.DefaultLaggardThresholdSec
	}
	return LaggardAware{ThresholdSec: t}
}

// Hybrid switches delivery mode per iteration on the observed arrival
// IQR: wide iterations (IQR above the cutoff) deliver fine-grained —
// the spread buys real overlap — and tight ones fall back to one bulk
// message, avoiding per-message overhead that early-bird delivery
// cannot recoup. By construction an iteration's finish time equals one
// of the two modes', so Hybrid is never worse than the slower of bulk
// and fine-grained on any iteration.
type Hybrid struct {
	// IQRCutoffSec is the mode switch; <= 0 means auto — the wire cost
	// of one partition, the point where shipping a partition early can
	// at least pay for its own message.
	IQRCutoffSec float64
}

// Name implements Strategy.
func (h Hybrid) Name() string {
	if h.IQRCutoffSec > 0 {
		return fmt.Sprintf("hybrid(%gus)", h.IQRCutoffSec*1e6)
	}
	return "hybrid(auto)"
}

// FinishTime implements Strategy.
func (h Hybrid) FinishTime(arrivals []float64, bytesPerPart int, f network.Fabric) float64 {
	if len(arrivals) == 0 {
		return 0
	}
	cut := h.IQRCutoffSec
	if cut <= 0 {
		cut = f.TransferTime(bytesPerPart)
	}
	if stats.IQRSorted(arrivals) > cut {
		return FineGrained{}.FinishTime(arrivals, bytesPerPart, f)
	}
	return Bulk{}.FinishTime(arrivals, bytesPerPart, f)
}

// Grid assembles the standard optimizer strategy set: the bulk and
// fine-grained anchors, one Binned per timeout, one EWMABinned per
// smoothing factor, the auto-cutoff Hybrid, and a LaggardAware policy
// tuned from the study's measured laggard statistics.
func Grid(timeoutsSec, ewmaAlphas []float64, lag analysis.LaggardStats) []Strategy {
	strategies := []Strategy{Bulk{}, FineGrained{}}
	for _, t := range timeoutsSec {
		strategies = append(strategies, Binned{TimeoutSec: t})
	}
	for _, a := range ewmaAlphas {
		strategies = append(strategies, &EWMABinned{Alpha: a})
	}
	strategies = append(strategies, Hybrid{}, TuneLaggardAware(lag))
	return strategies
}

// Cloner marks strategies that carry evaluation state and therefore
// must not be shared across concurrent evaluations. CloneStrategy
// returns a fresh instance with the same parameters and no accumulated
// state.
type Cloner interface {
	Strategy
	CloneStrategy() Strategy
}

// CloneStrategy implements Cloner: same parameters, fresh prediction
// state.
func (e *EWMABinned) CloneStrategy() Strategy {
	return &EWMABinned{Alpha: e.Alpha, InitTimeoutSec: e.InitTimeoutSec, MinTimeoutSec: e.MinTimeoutSec}
}

// CloneSet returns a strategy set safe to hand to a new evaluation
// running concurrently with others: stateful strategies (Cloner) are
// replaced by fresh clones, stateless values pass through unchanged,
// and nil stays nil. core.Options uses this so one shared Options value
// can configure any number of concurrent studies.
func CloneSet(set []Strategy) []Strategy {
	if set == nil {
		return nil
	}
	out := make([]Strategy, len(set))
	for i, s := range set {
		if c, ok := s.(Cloner); ok {
			out[i] = c.CloneStrategy()
		} else {
			out[i] = s
		}
	}
	return out
}
