package partcomm

import (
	"math"
	"testing"

	"earlybird/internal/network"
)

func TestCountThresholdName(t *testing.T) {
	if (CountThreshold{K: 8}).Name() != "every8" {
		t.Fatal("name")
	}
}

func TestCountThresholdKOneEqualsFineGrained(t *testing.T) {
	f := network.OmniPath()
	arr := []float64{1e-3, 5e-3, 9e-3, 20e-3, 21e-3}
	a := (CountThreshold{K: 1}).FinishTime(arr, 64<<10, f)
	b := (FineGrained{}).FinishTime(arr, 64<<10, f)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("K=1 %v != fine-grained %v", a, b)
	}
}

func TestCountThresholdKAllEqualsBulk(t *testing.T) {
	f := network.OmniPath()
	arr := []float64{1e-3, 5e-3, 9e-3, 20e-3}
	a := (CountThreshold{K: len(arr)}).FinishTime(arr, 64<<10, f)
	b := (Bulk{}).FinishTime(arr, 64<<10, f)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("K=n %v != bulk %v", a, b)
	}
}

func TestCountThresholdIntermediate(t *testing.T) {
	f := network.OmniPath()
	arr := []float64{10e-3, 20e-3, 30e-3, 40e-3, 50e-3, 60e-3, 70e-3, 80e-3}
	const part = 1 << 20
	bulk := (Bulk{}).FinishTime(arr, part, f)
	every2 := (CountThreshold{K: 2}).FinishTime(arr, part, f)
	if every2 >= bulk {
		t.Fatalf("every2 %v not better than bulk %v on spread arrivals", every2, bulk)
	}
	// Flush count: 4 messages of 2 partitions each.
	link := network.NewLink(f)
	_ = link
}

func TestCountThresholdInvalidKClamps(t *testing.T) {
	f := network.OmniPath()
	arr := []float64{1e-3, 2e-3}
	a := (CountThreshold{K: 0}).FinishTime(arr, 100, f)
	b := (CountThreshold{K: 1}).FinishTime(arr, 100, f)
	if a != b {
		t.Fatal("K<1 should clamp to 1")
	}
	if (CountThreshold{K: 3}).FinishTime(nil, 100, f) != 0 {
		t.Fatal("empty arrivals")
	}
}

func TestCountThresholdNeverBeatsPhysics(t *testing.T) {
	f := network.OmniPath()
	arr := []float64{26.3e-3, 26.31e-3, 26.32e-3, 30e-3}
	for k := 1; k <= 4; k++ {
		got := (CountThreshold{K: k}).FinishTime(arr, 4096, f)
		if got < arr[len(arr)-1] {
			t.Fatalf("K=%d finished %v before last arrival", k, got)
		}
	}
}
