// Package sortx provides a sorter specialized for the hot-path block
// sorts in this repo: ascending float64 slices whose length is almost
// always the thread count of a simulated rank (48 at paper geometry,
// bounded by a few hundred for any configured geometry).
//
// Strategy (single-socket Xeon, Go 1.24):
//
//   - n <= 32: unrolled Batcher odd-even merge networks (networks.go)
//     with branchless min/max compare-exchanges; bounds checks are
//     eliminated by the (*[N]float64) conversion.
//   - 33 <= n <= 128: network-sorted 32-wide chunks merged bottom-up
//     through a fixed stack buffer (sortMid). At n=48 (the paper's
//     thread count) this is a single branchless merge pass over a
//     network32 and a network16 run.
//   - n > 128: slices.Sort (pdqsort). Block sizes past 128 do not occur
//     in configured geometries.
//
// Every tier was chosen by the END-TO-END study benchmark, not the
// package microbenchmark, because the microbenchmark lies here: its
// loop re-sorts the same input every iteration, so the branch predictor
// memorizes every data-dependent comparison and branchy code looks
// ~2x faster than it runs on fresh data (branchy comparators: 44 ns at
// n16 in the microbenchmark vs a ~20% REGRESSION of the full streaming
// study; same story for insertion sort, whose inner loop is all
// data-dependent branches). Branchless min/max comparators pay a few
// extra instructions (Go's float64 builtins handle NaN/-0) but their
// cost is the same on fresh data as in the loop, and the streaming
// study dropped ~10% when they replaced insertion at n=48.
//
// Contract: elements must not be NaN. Compute-time samples in this repo
// are finite by construction (the workload models draw from bounded
// transforms of finite uniforms); with NaNs present the result order is
// unspecified, exactly as for sort.Float64s before Go 1.23.
package sortx

import "slices"

// networkMax is the largest n with an unrolled network; sortMid chunks
// by this width.
const networkMax = 32

// midMax is the largest n routed to the chunked network merge; above it
// pdqsort wins. See the package comment for the measured crossover.
const midMax = 128

// Sort sorts s ascending in place. It is a drop-in replacement for
// sort.Float64s / slices.Sort on NaN-free data, specialized for the
// small block sizes of the per-rank scratch buffers.
func Sort(s []float64) {
	n := len(s)
	switch {
	case n <= 1:
		return
	case n <= networkMax:
		networks[n](s)
	case n <= midMax:
		sortMid(s)
	default:
		slices.Sort(s)
	}
}

// sortMid sorts 33 <= n <= 128 elements: each 32-wide chunk is sorted
// by its network, then the sorted runs are merged bottom-up through a
// stack buffer. The buffer never escapes — mergeRuns does not retain
// its arguments — so the whole sort stays allocation-free.
func sortMid(s []float64) {
	n := len(s)
	for i := 0; i < n; i += networkMax {
		end := i + networkMax
		if end > n {
			end = n
		}
		if c := end - i; c > 1 {
			networks[c](s[i:end])
		}
	}
	var buf [midMax]float64
	src, dst := s, buf[:n]
	for width := networkMax; width < n; width *= 2 {
		for i := 0; i < n; i += 2 * width {
			mid := i + width
			if mid >= n {
				// Lone tail run: already sorted, carry it over.
				copy(dst[i:n], src[i:n])
				break
			}
			end := i + 2*width
			if end > n {
				end = n
			}
			MergeRuns(dst[i:end], src[i:mid], src[mid:end])
		}
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

// MergeRuns merges the sorted runs a and b into dst, which must have
// length len(a)+len(b) and not alias either run. The take direction is
// selected without a data-dependent branch (SETcc for the index
// advance, the min builtin for the value): the direction is a coin
// flip on real data, and a mispredict costs more than the select.
// Exported for the quantile sketch, which combines buffered sorted
// ingest runs pairwise before folding them into its centroid list.
func MergeRuns(dst, a, b []float64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		c := 0
		if av <= bv {
			c = 1
		}
		dst[k] = min(av, bv)
		k++
		i += c
		j += 1 - c
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// insertion is a straight insertion sort, kept as the reference point
// the network strategy is benchmarked against (BenchmarkSortInsertion).
func insertion(s []float64) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
