package sortx

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"
)

// TestNetworksMatchSlicesSort drives every generated network (and the
// chunked-merge + pdqsort tiers) through randomized and adversarial inputs,
// comparing against slices.Sort. This is the correctness proof for the
// generated comparator sequences in networks.go.
func TestNetworksMatchSlicesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for n := 0; n <= 260; n++ {
		trials := 200
		if n > 32 {
			trials = 40
		}
		for trial := 0; trial < trials; trial++ {
			got := make([]float64, n)
			for i := range got {
				switch trial % 4 {
				case 0:
					got[i] = rng.NormFloat64()
				case 1:
					got[i] = float64(rng.IntN(4)) // heavy duplicates
				case 2:
					got[i] = float64(n - i) // reverse sorted
				default:
					got[i] = float64(i) // already sorted
				}
			}
			want := slices.Clone(got)
			slices.Sort(want)
			Sort(got)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d trial=%d: Sort mismatch\n got %v\nwant %v", n, trial, got, want)
			}
		}
	}
}

func TestSortExtremes(t *testing.T) {
	in := []float64{math.Inf(1), -0, 0, math.Inf(-1), 1e-308, -1e308, 1e308}
	want := slices.Clone(in)
	slices.Sort(want)
	Sort(in)
	if !slices.Equal(in, want) {
		t.Fatalf("extremes: got %v want %v", in, want)
	}
}

// TestSortSubslice pins that Sort only touches s[:len(s)] even when the
// backing array is larger — the hot path hands it reused scratch
// prefixes.
func TestSortSubslice(t *testing.T) {
	backing := []float64{5, 4, 3, 2, 1, 99, 98}
	Sort(backing[:5])
	if !slices.Equal(backing, []float64{1, 2, 3, 4, 5, 99, 98}) {
		t.Fatalf("subslice sort touched the tail: %v", backing)
	}
}

func BenchmarkSort(b *testing.B) {
	for _, n := range []int{8, 16, 48, 128, 512} {
		src := make([]float64, n)
		rng := rand.New(rand.NewPCG(7, uint64(n)))
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		buf := make([]float64, n)
		b.Run(sizeName(n), func(b *testing.B) {
			for b.Loop() {
				copy(buf, src)
				Sort(buf)
			}
		})
	}
}

// TestSortMidAllocFree pins that the chunked-merge tier's stack buffer
// does not escape: the hot accumulators call Sort per block and rely on
// it being allocation-free.
func TestSortMidAllocFree(t *testing.T) {
	buf := make([]float64, 48)
	rng := rand.New(rand.NewPCG(3, 4))
	allocs := testing.AllocsPerRun(100, func() {
		for i := range buf {
			buf[i] = rng.NormFloat64()
		}
		Sort(buf)
	})
	if allocs != 0 {
		t.Fatalf("Sort(n=48) allocates %v times per call", allocs)
	}
}

// BenchmarkSortInsertion is the reference the network tiers are
// measured against (see the package comment's crossover numbers).
func BenchmarkSortInsertion(b *testing.B) {
	for _, n := range []int{16, 32, 48, 128} {
		src := make([]float64, n)
		rng := rand.New(rand.NewPCG(7, uint64(n)))
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		buf := make([]float64, n)
		b.Run(sizeName(n), func(b *testing.B) {
			for b.Loop() {
				copy(buf, src)
				insertion(buf)
			}
		})
	}
}

func sizeName(n int) string {
	const digits = "0123456789"
	if n == 0 {
		return "n0"
	}
	var out []byte
	for n > 0 {
		out = append([]byte{digits[n%10]}, out...)
		n /= 10
	}
	return "n" + string(out)
}
