package network

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTransferTimeComponents(t *testing.T) {
	f := Fabric{LatencySec: 1e-6, BandwidthBytesPerSec: 1e9, OverheadSec: 0.5e-6}
	// 1000 bytes: 1us + 0.5us + 1us = 2.5us.
	want := 2.5e-6
	if got := f.TransferTime(1000); math.Abs(got-want) > 1e-15 {
		t.Fatalf("transfer = %v, want %v", got, want)
	}
	// Zero and negative sizes cost latency + overhead only.
	if got := f.TransferTime(0); math.Abs(got-1.5e-6) > 1e-15 {
		t.Fatalf("zero-byte transfer = %v", got)
	}
	if f.TransferTime(-5) != f.TransferTime(0) {
		t.Fatal("negative size should clamp to zero")
	}
}

func TestOmniPathParameters(t *testing.T) {
	f := OmniPath()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// A 1 MiB message on 12.5 GB/s should take ~85us dominated by
	// bandwidth.
	got := f.TransferTime(1 << 20)
	if got < 80e-6 || got > 95e-6 {
		t.Fatalf("1MiB transfer = %v, want ~85us", got)
	}
}

func TestValidateRejectsBadFabrics(t *testing.T) {
	bad := []Fabric{
		{LatencySec: -1, BandwidthBytesPerSec: 1},
		{LatencySec: 0, BandwidthBytesPerSec: 0},
		{LatencySec: 0, BandwidthBytesPerSec: 1, OverheadSec: -1},
	}
	for _, f := range bad {
		if f.Validate() == nil {
			t.Errorf("fabric %+v should be invalid", f)
		}
	}
}

func TestLinkSerialisation(t *testing.T) {
	f := Fabric{LatencySec: 1e-6, BandwidthBytesPerSec: 1e9}
	l := NewLink(f)
	// Two messages ready at t=0: the second starts after the first.
	d1 := l.Send(0, 1000) // 0 + 1us + 1us = 2us
	d2 := l.Send(0, 1000) // starts at 2us -> 4us
	if math.Abs(d1-2e-6) > 1e-15 || math.Abs(d2-4e-6) > 1e-15 {
		t.Fatalf("d1=%v d2=%v", d1, d2)
	}
	// A message ready after the link idles starts at its ready time.
	d3 := l.Send(10e-6, 1000)
	if math.Abs(d3-12e-6) > 1e-15 {
		t.Fatalf("d3=%v", d3)
	}
	if l.BusyUntil() != d3 {
		t.Fatalf("busy=%v", l.BusyUntil())
	}
	msgs, bytes := l.Stats()
	if msgs != 3 || bytes != 3000 {
		t.Fatalf("stats %d/%d", msgs, bytes)
	}
	l.Reset()
	if l.BusyUntil() != 0 {
		t.Fatal("reset failed")
	}
}

func TestLinkCompletionMonotoneProperty(t *testing.T) {
	f := OmniPath()
	check := func(readies []float64, sizes []uint16) bool {
		l := NewLink(f)
		prev := 0.0
		for i, r := range readies {
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				r = 0
			}
			size := 0
			if i < len(sizes) {
				size = int(sizes[i])
			}
			done := l.Send(r, size)
			if done < prev || done < r {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
