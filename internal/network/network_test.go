package network

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTransferTimeComponents(t *testing.T) {
	f := Fabric{LatencySec: 1e-6, BandwidthBytesPerSec: 1e9, OverheadSec: 0.5e-6}
	// 1000 bytes: 1us + 0.5us + 1us = 2.5us.
	want := 2.5e-6
	if got := f.TransferTime(1000); math.Abs(got-want) > 1e-15 {
		t.Fatalf("transfer = %v, want %v", got, want)
	}
	// Zero and negative sizes cost latency + overhead only.
	if got := f.TransferTime(0); math.Abs(got-1.5e-6) > 1e-15 {
		t.Fatalf("zero-byte transfer = %v", got)
	}
	if f.TransferTime(-5) != f.TransferTime(0) {
		t.Fatal("negative size should clamp to zero")
	}
}

func TestOmniPathParameters(t *testing.T) {
	f := OmniPath()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// A 1 MiB message on 12.5 GB/s should take ~85us dominated by
	// bandwidth.
	got := f.TransferTime(1 << 20)
	if got < 80e-6 || got > 95e-6 {
		t.Fatalf("1MiB transfer = %v, want ~85us", got)
	}
}

func TestValidateRejectsBadFabrics(t *testing.T) {
	bad := []Fabric{
		{LatencySec: -1, BandwidthBytesPerSec: 1},
		{LatencySec: 0, BandwidthBytesPerSec: 0},
		{LatencySec: 0, BandwidthBytesPerSec: 1, OverheadSec: -1},
	}
	for _, f := range bad {
		if f.Validate() == nil {
			t.Errorf("fabric %+v should be invalid", f)
		}
	}
}

func TestLinkSerialisation(t *testing.T) {
	f := Fabric{LatencySec: 1e-6, BandwidthBytesPerSec: 1e9}
	l := NewLink(f)
	// Two messages ready at t=0: the second starts after the first.
	d1 := l.Send(0, 1000) // 0 + 1us + 1us = 2us
	d2 := l.Send(0, 1000) // starts at 2us -> 4us
	if math.Abs(d1-2e-6) > 1e-15 || math.Abs(d2-4e-6) > 1e-15 {
		t.Fatalf("d1=%v d2=%v", d1, d2)
	}
	// A message ready after the link idles starts at its ready time.
	d3 := l.Send(10e-6, 1000)
	if math.Abs(d3-12e-6) > 1e-15 {
		t.Fatalf("d3=%v", d3)
	}
	if l.BusyUntil() != d3 {
		t.Fatalf("busy=%v", l.BusyUntil())
	}
	msgs, bytes := l.Stats()
	if msgs != 3 || bytes != 3000 {
		t.Fatalf("stats %d/%d", msgs, bytes)
	}
	l.Reset()
	if l.BusyUntil() != 0 {
		t.Fatal("reset failed")
	}
}

func TestLinkCompletionMonotoneProperty(t *testing.T) {
	f := OmniPath()
	check := func(readies []float64, sizes []uint16) bool {
		l := NewLink(f)
		prev := 0.0
		for i, r := range readies {
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				r = 0
			}
			size := 0
			if i < len(sizes) {
				size = int(sizes[i])
			}
			done := l.Send(r, size)
			if done < prev || done < r {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// hier returns the two-level fabric the hierarchical tests share: a
// fast 50 GB/s intra-node level over the paper's Omni-Path inter-node
// level.
func hier(congestion float64) Hierarchical {
	return Hierarchical{
		Intra:        Fabric{LatencySec: 0.2e-6, BandwidthBytesPerSec: 50e9, OverheadSec: 0.1e-6},
		Inter:        OmniPath(),
		RanksPerNode: 4,
		Congestion:   congestion,
	}
}

func TestHierarchicalValidate(t *testing.T) {
	if err := hier(1.5).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Hierarchical{
		{Intra: OmniPath(), Inter: OmniPath(), RanksPerNode: 0},
		{Intra: OmniPath(), Inter: OmniPath(), RanksPerNode: 4, Congestion: 0.5},
		{Intra: Fabric{BandwidthBytesPerSec: -1}, Inter: OmniPath(), RanksPerNode: 4},
		{Intra: OmniPath(), Inter: Fabric{}, RanksPerNode: 4},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad hierarchy %d accepted: %+v", i, h)
		}
	}
}

func TestHierarchicalEffectiveBounds(t *testing.T) {
	h := hier(1.5)
	eff := h.Effective(8)
	if err := eff.Validate(); err != nil {
		t.Fatal(err)
	}
	// The blend lies strictly between the intra level and the congested
	// inter level on every parameter.
	congested := Fabric{
		LatencySec:           h.Inter.LatencySec * 1.5,
		BandwidthBytesPerSec: h.Inter.BandwidthBytesPerSec / 1.5,
		OverheadSec:          h.Inter.OverheadSec,
	}
	if eff.LatencySec <= h.Intra.LatencySec || eff.LatencySec >= congested.LatencySec {
		t.Errorf("latency %v outside (%v, %v)", eff.LatencySec, h.Intra.LatencySec, congested.LatencySec)
	}
	if eff.BandwidthBytesPerSec >= h.Intra.BandwidthBytesPerSec || eff.BandwidthBytesPerSec <= congested.BandwidthBytesPerSec {
		t.Errorf("bandwidth %v outside blend bounds", eff.BandwidthBytesPerSec)
	}
}

func TestHierarchicalEffectiveDegenerateCases(t *testing.T) {
	h := hier(2)
	// One rank: no communication peers cross a node boundary.
	if got := h.Effective(1); got != h.Intra {
		t.Errorf("single-rank effective = %+v, want intra", got)
	}
	// Everything on one node: still the intra fabric exactly.
	if got := h.Effective(3); got != h.Intra {
		t.Errorf("all-local effective = %+v, want intra", got)
	}
	// One rank per node (RanksPerNode 1): pure congested inter fabric.
	h1 := h
	h1.RanksPerNode = 1
	want := Fabric{
		LatencySec:           h.Inter.LatencySec * 2,
		BandwidthBytesPerSec: h.Inter.BandwidthBytesPerSec / 2,
		OverheadSec:          h.Inter.OverheadSec,
	}
	got := h1.Effective(8)
	if math.Abs(got.LatencySec-want.LatencySec) > 1e-18 ||
		math.Abs(got.BandwidthBytesPerSec-want.BandwidthBytesPerSec) > 1 ||
		math.Abs(got.OverheadSec-want.OverheadSec) > 1e-18 {
		t.Errorf("all-remote effective = %+v, want %+v", got, want)
	}
}

// TestHierarchicalCongestionMonotone: more congestion never makes the
// effective fabric faster.
func TestHierarchicalCongestionMonotone(t *testing.T) {
	prev := hier(1).Effective(8).TransferTime(1 << 20)
	for _, c := range []float64{1.5, 2, 4, 8} {
		cur := hier(c).Effective(8).TransferTime(1 << 20)
		if cur < prev {
			t.Fatalf("congestion %v made the fabric faster: %v < %v", c, cur, prev)
		}
		prev = cur
	}
}
