// Package network models the cluster interconnect with the Hockney
// alpha-beta cost model: transferring m bytes costs
// alpha + m/beta (+ a per-message software overhead), and a link
// serialises concurrent transfers.
//
// The paper's testbed uses Intel Omni-Path (100 Gb/s class); the
// early-bird overlap experiments (E12) use these parameters to convert
// the measured thread-arrival spreads into transmission timelines.
package network

import "fmt"

// Fabric is an alpha-beta interconnect parameterisation.
type Fabric struct {
	// LatencySec is the per-message wire latency (alpha).
	LatencySec float64
	// BandwidthBytesPerSec is the link bandwidth (beta).
	BandwidthBytesPerSec float64
	// OverheadSec is the per-message host software overhead (injection
	// cost), paid once per message regardless of size.
	OverheadSec float64
}

// OmniPath returns parameters representative of the paper's 100 Gb/s
// Intel Omni-Path fabric: ~1 microsecond latency, 12.5 GB/s, with a small
// per-message injection overhead.
func OmniPath() Fabric {
	return Fabric{
		LatencySec:           1.0e-6,
		BandwidthBytesPerSec: 12.5e9,
		OverheadSec:          0.3e-6,
	}
}

// Validate checks the parameters.
func (f Fabric) Validate() error {
	if f.LatencySec < 0 || f.BandwidthBytesPerSec <= 0 || f.OverheadSec < 0 {
		return fmt.Errorf("network: invalid fabric %+v", f)
	}
	return nil
}

// TransferTime returns the cost of one message of the given size.
func (f Fabric) TransferTime(bytes int) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return f.LatencySec + f.OverheadSec + float64(bytes)/f.BandwidthBytesPerSec
}

// Hierarchical is a two-level fabric: ranks on the same node talk over
// the Intra fabric (shared-memory or NVLink-class), ranks on different
// nodes over the Inter fabric, and the inter-node level carries a
// congestion factor modelling contention on the node's injection links
// when many ranks gather to one root at once.
//
// The analysis pipeline's cost model is a single alpha-beta Fabric (it
// is part of the engine's spec key and the wire format), so a
// hierarchical fabric is applied by flattening: Effective(ranks) returns
// the alpha-beta fabric an all-to-one gather over that many ranks
// experiences on average, weighting the intra- and inter-node parameters
// by the fraction of peers on the root's node. The scenario compiler
// compiles hierarchical fabric declarations through Effective, so two
// scenarios that declare the same topology resolve to the same spec key.
type Hierarchical struct {
	// Intra is the fabric between ranks sharing a node.
	Intra Fabric
	// Inter is the fabric between ranks on different nodes.
	Inter Fabric
	// RanksPerNode is the node size; ranks beyond it are remote.
	RanksPerNode int
	// Congestion >= 1 scales the inter-node cost: latency is multiplied
	// and bandwidth divided by it, modelling serialisation on the node's
	// injection links. 0 means uncongested (factor 1).
	Congestion float64
}

// Validate checks the topology and both levels.
func (h Hierarchical) Validate() error {
	if h.RanksPerNode < 1 {
		return fmt.Errorf("network: hierarchical fabric needs ranks_per_node >= 1, got %d", h.RanksPerNode)
	}
	if h.Congestion != 0 && h.Congestion < 1 {
		return fmt.Errorf("network: congestion factor %g < 1 would make contention a speedup", h.Congestion)
	}
	if err := h.Intra.Validate(); err != nil {
		return fmt.Errorf("intra level: %w", err)
	}
	if err := h.Inter.Validate(); err != nil {
		return fmt.Errorf("inter level: %w", err)
	}
	return nil
}

// congestion returns the effective factor (>= 1).
func (h Hierarchical) congestion() float64 {
	if h.Congestion < 1 {
		return 1
	}
	return h.Congestion
}

// Effective flattens the hierarchy for an all-to-one gather over ranks
// processes: a fraction w = (min(ranks, ranksPerNode) - 1) / (ranks - 1)
// of the root's peers are intra-node; the rest cross the congested
// inter-node level. Latencies and overheads mix arithmetically by that
// weight; bandwidths mix harmonically (a message's transfer time, not
// its rate, is what adds). A single-rank geometry sees the intra fabric.
func (h Hierarchical) Effective(ranks int) Fabric {
	c := h.congestion()
	inter := Fabric{
		LatencySec:           h.Inter.LatencySec * c,
		BandwidthBytesPerSec: h.Inter.BandwidthBytesPerSec / c,
		OverheadSec:          h.Inter.OverheadSec,
	}
	if ranks <= 1 {
		return h.Intra
	}
	local := h.RanksPerNode
	if local > ranks {
		local = ranks
	}
	w := float64(local-1) / float64(ranks-1)
	return Fabric{
		LatencySec:           w*h.Intra.LatencySec + (1-w)*inter.LatencySec,
		BandwidthBytesPerSec: 1 / (w/h.Intra.BandwidthBytesPerSec + (1-w)/inter.BandwidthBytesPerSec),
		OverheadSec:          w*h.Intra.OverheadSec + (1-w)*inter.OverheadSec,
	}
}

// Link is a serialising wire: transfers occupy it back-to-back. The zero
// value of busy means the link is free from time 0.
type Link struct {
	fabric Fabric
	busy   float64
	sent   int // messages pushed
	bytes  int // payload bytes pushed
}

// NewLink returns an idle link over the fabric.
func NewLink(f Fabric) *Link {
	return &Link{fabric: f}
}

// Send schedules a message of the given size that becomes ready at time
// ready (seconds) and returns its completion time. The link serialises:
// the message starts no earlier than the previous one finished.
func (l *Link) Send(ready float64, bytes int) (done float64) {
	start := ready
	if l.busy > start {
		start = l.busy
	}
	done = start + l.fabric.TransferTime(bytes)
	l.busy = done
	l.sent++
	l.bytes += bytes
	return done
}

// BusyUntil returns the time the link becomes free.
func (l *Link) BusyUntil() float64 { return l.busy }

// Stats returns the number of messages and payload bytes pushed.
func (l *Link) Stats() (messages, payloadBytes int) { return l.sent, l.bytes }

// Reset returns the link to idle at time 0.
func (l *Link) Reset() {
	l.busy = 0
	l.sent = 0
	l.bytes = 0
}
