// Package network models the cluster interconnect with the Hockney
// alpha-beta cost model: transferring m bytes costs
// alpha + m/beta (+ a per-message software overhead), and a link
// serialises concurrent transfers.
//
// The paper's testbed uses Intel Omni-Path (100 Gb/s class); the
// early-bird overlap experiments (E12) use these parameters to convert
// the measured thread-arrival spreads into transmission timelines.
package network

import "fmt"

// Fabric is an alpha-beta interconnect parameterisation.
type Fabric struct {
	// LatencySec is the per-message wire latency (alpha).
	LatencySec float64
	// BandwidthBytesPerSec is the link bandwidth (beta).
	BandwidthBytesPerSec float64
	// OverheadSec is the per-message host software overhead (injection
	// cost), paid once per message regardless of size.
	OverheadSec float64
}

// OmniPath returns parameters representative of the paper's 100 Gb/s
// Intel Omni-Path fabric: ~1 microsecond latency, 12.5 GB/s, with a small
// per-message injection overhead.
func OmniPath() Fabric {
	return Fabric{
		LatencySec:           1.0e-6,
		BandwidthBytesPerSec: 12.5e9,
		OverheadSec:          0.3e-6,
	}
}

// Validate checks the parameters.
func (f Fabric) Validate() error {
	if f.LatencySec < 0 || f.BandwidthBytesPerSec <= 0 || f.OverheadSec < 0 {
		return fmt.Errorf("network: invalid fabric %+v", f)
	}
	return nil
}

// TransferTime returns the cost of one message of the given size.
func (f Fabric) TransferTime(bytes int) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return f.LatencySec + f.OverheadSec + float64(bytes)/f.BandwidthBytesPerSec
}

// Link is a serialising wire: transfers occupy it back-to-back. The zero
// value of busy means the link is free from time 0.
type Link struct {
	fabric Fabric
	busy   float64
	sent   int // messages pushed
	bytes  int // payload bytes pushed
}

// NewLink returns an idle link over the fabric.
func NewLink(f Fabric) *Link {
	return &Link{fabric: f}
}

// Send schedules a message of the given size that becomes ready at time
// ready (seconds) and returns its completion time. The link serialises:
// the message starts no earlier than the previous one finished.
func (l *Link) Send(ready float64, bytes int) (done float64) {
	start := ready
	if l.busy > start {
		start = l.busy
	}
	done = start + l.fabric.TransferTime(bytes)
	l.busy = done
	l.sent++
	l.bytes += bytes
	return done
}

// BusyUntil returns the time the link becomes free.
func (l *Link) BusyUntil() float64 { return l.busy }

// Stats returns the number of messages and payload bytes pushed.
func (l *Link) Stats() (messages, payloadBytes int) { return l.sent, l.bytes }

// Reset returns the link to idle at time 0.
func (l *Link) Reset() {
	l.busy = 0
	l.sent = 0
	l.bytes = 0
}
