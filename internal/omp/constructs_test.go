package omp

import (
	"sync/atomic"
	"testing"
)

func TestCriticalMutualExclusion(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	counter := 0 // unsynchronised on purpose; Critical must protect it
	p.Parallel(func(tc *ThreadContext) {
		for i := 0; i < 500; i++ {
			tc.Critical("counter", func() {
				counter++
			})
		}
	})
	if counter != 8*500 {
		t.Fatalf("counter = %d, want %d (critical section leaked)", counter, 8*500)
	}
}

func TestCriticalNamesIndependent(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	release := make(chan struct{})
	var secondRan atomic.Bool
	p.Parallel(func(tc *ThreadContext) {
		if tc.ThreadNum() == 0 {
			tc.Critical("a", func() {
				<-release // hold "a" until the other critical ran
			})
			return
		}
		tc.Critical("b", func() {
			secondRan.Store(true)
		})
		close(release)
	})
	if !secondRan.Load() {
		t.Fatal("different critical names blocked each other")
	}
}

func TestSingleRunsExactlyOnce(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var runs, owners atomic.Int32
	p.Parallel(func(tc *ThreadContext) {
		for k := 0; k < 10; k++ {
			ran := tc.Single(func() {
				runs.Add(1)
			})
			if ran {
				owners.Add(1)
			}
			tc.Barrier()
		}
	})
	if runs.Load() != 10 {
		t.Fatalf("single bodies ran %d times, want 10", runs.Load())
	}
	if owners.Load() != 10 {
		t.Fatalf("owner count %d, want 10", owners.Load())
	}
}

func TestSinglePerRegionReset(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var runs atomic.Int32
	for r := 0; r < 5; r++ {
		p.Parallel(func(tc *ThreadContext) {
			tc.Single(func() { runs.Add(1) })
		})
	}
	if runs.Load() != 5 {
		t.Fatalf("single ran %d times across 5 regions", runs.Load())
	}
}

func TestMasterOnlyThreadZero(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var who atomic.Int32
	who.Store(-1)
	var rans atomic.Int32
	p.Parallel(func(tc *ThreadContext) {
		if tc.Master(func() { who.Store(int32(tc.ThreadNum())) }) {
			rans.Add(1)
		}
	})
	if who.Load() != 0 || rans.Load() != 1 {
		t.Fatalf("master ran on thread %d (%d times)", who.Load(), rans.Load())
	}
}

func TestReduceSum(t *testing.T) {
	p := NewPool(6)
	defer p.Close()
	var failed atomic.Bool
	p.Parallel(func(tc *ThreadContext) {
		// Two back-to-back reductions must not share accumulators.
		a := tc.ReduceSum(float64(tc.ThreadNum()))
		b := tc.ReduceSum(1)
		if a != 15 || b != 6 {
			failed.Store(true)
		}
	})
	if failed.Load() {
		t.Fatal("reduction produced wrong totals")
	}
}

func TestReduceSumManyRounds(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var failed atomic.Bool
	p.Parallel(func(tc *ThreadContext) {
		for round := 1; round <= 50; round++ {
			got := tc.ReduceSum(float64(round))
			if got != float64(4*round) {
				failed.Store(true)
			}
		}
	})
	if failed.Load() {
		t.Fatal("repeated reductions corrupted")
	}
}

func TestReduceSumAcrossRegions(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for r := 0; r < 10; r++ {
		var failed atomic.Bool
		p.Parallel(func(tc *ThreadContext) {
			if tc.ReduceSum(2) != 6 {
				failed.Store(true)
			}
		})
		if failed.Load() {
			t.Fatalf("region %d: reduction wrong", r)
		}
	}
}
