package omp

import "sync"

// Barrier is a reusable synchronisation barrier for a fixed party count,
// equivalent to "#pragma omp barrier" inside a parallel region. It uses
// generation counting so it can be waited on any number of times.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

// NewBarrier returns a barrier for n parties (n >= 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("omp: barrier party count must be >= 1")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until n parties have called Wait for the current generation,
// then releases them all and resets for the next generation.
func (b *Barrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Parties returns the number of parties the barrier synchronises.
func (b *Barrier) Parties() int { return b.n }
