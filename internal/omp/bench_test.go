package omp

import (
	"sync/atomic"
	"testing"
)

func BenchmarkParallelForkJoin(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(benchName("threads", n), func(b *testing.B) {
			p := NewPool(n)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Parallel(func(tc *ThreadContext) {})
			}
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(benchName("threads", n), func(b *testing.B) {
			p := NewPool(n)
			defer p.Close()
			b.ResetTimer()
			iters := b.N
			p.Parallel(func(tc *ThreadContext) {
				for i := 0; i < iters; i++ {
					tc.Barrier()
				}
			})
		})
	}
}

func BenchmarkParallelForSchedules(b *testing.B) {
	const n = 4096
	var sink atomic.Int64
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		b.Run(sched.String(), func(b *testing.B) {
			p := NewPool(4)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ParallelFor(n, sched, 16, func(j int) {
					sink.Add(int64(j & 1))
				})
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + string(rune('0'+n))
}
