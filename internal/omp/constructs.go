package omp

import "sync"

// This file adds the remaining OpenMP work-coordination constructs used
// by real proxy applications: critical sections, single/master regions
// and a scalar reduction. They are not needed by the paper's Listing 1
// instrumentation but complete the runtime for porting richer compute
// sections (MiniMD's neighbour rebuild runs under a critical section in
// some configurations, and reductions close most solver loops).

// constructState is lazily attached to a region.
type constructState struct {
	mu        sync.Mutex
	criticals map[string]*sync.Mutex
	singles   []*sync.Once

	redMu sync.Mutex
	// reductions are keyed by call-site sequence number so back-to-back
	// reductions never share an accumulator.
	reductions map[int]*redAcc
}

type redAcc struct {
	val     float64
	readers int
}

func (r *region) constructs() *constructState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cs == nil {
		r.cs = &constructState{criticals: map[string]*sync.Mutex{}, reductions: map[int]*redAcc{}}
	}
	return r.cs
}

// Critical executes fn under the named region-wide mutex, equivalent to
// "#pragma omp critical(name)". Different names lock independently.
func (tc *ThreadContext) Critical(name string, fn func()) {
	cs := tc.region.constructs()
	cs.mu.Lock()
	m := cs.criticals[name]
	if m == nil {
		m = &sync.Mutex{}
		cs.criticals[name] = m
	}
	cs.mu.Unlock()
	m.Lock()
	defer m.Unlock()
	fn()
}

// Single executes fn on exactly one thread of the team — whichever
// reaches the construct first — and reports whether this thread ran it.
// As with the runtime's loops there is no implied barrier (nowait
// semantics); call tc.Barrier() if the team must wait for the result.
func (tc *ThreadContext) Single(fn func()) bool {
	seq := tc.singleSeq
	tc.singleSeq++
	cs := tc.region.constructs()
	cs.mu.Lock()
	for len(cs.singles) <= seq {
		cs.singles = append(cs.singles, &sync.Once{})
	}
	once := cs.singles[seq]
	cs.mu.Unlock()
	ran := false
	once.Do(func() {
		fn()
		ran = true
	})
	return ran
}

// Master executes fn only on thread 0, "#pragma omp master" (no implied
// barrier). It reports whether this thread ran it.
func (tc *ThreadContext) Master(fn func()) bool {
	if tc.id != 0 {
		return false
	}
	fn()
	return true
}

// ReduceSum is a region-wide sum reduction: every thread contributes x
// once per call site, and after the implied barrier each thread receives
// the team-wide total (like "reduction(+:x)" at the end of a loop).
// Every thread of the team must call it the same number of times.
func (tc *ThreadContext) ReduceSum(x float64) float64 {
	seq := tc.reduceSeq
	tc.reduceSeq++
	cs := tc.region.constructs()
	cs.redMu.Lock()
	acc := cs.reductions[seq]
	if acc == nil {
		acc = &redAcc{}
		cs.reductions[seq] = acc
	}
	acc.val += x
	cs.redMu.Unlock()
	tc.Barrier() // all contributions are in
	cs.redMu.Lock()
	total := acc.val
	acc.readers++
	if acc.readers == tc.region.team {
		delete(cs.reductions, seq)
	}
	cs.redMu.Unlock()
	return total
}
