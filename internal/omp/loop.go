package omp

import "sync/atomic"

// loopState is the shared state of one work-sharing loop instance.
type loopState struct {
	n        int
	nthreads int
	sched    Schedule
	chunk    int
	next     atomic.Int64 // shared iteration cursor (dynamic, guided)
}

func newLoopState(n, nthreads int, sched Schedule, chunk int) *loopState {
	if chunk <= 0 {
		switch sched {
		case Static:
			chunk = 0 // block partition
		default:
			chunk = 1
		}
	}
	return &loopState{n: n, nthreads: nthreads, sched: sched, chunk: chunk}
}

func (ls *loopState) run(tid int, body func(i int)) {
	switch ls.sched {
	case Static:
		ls.runStatic(tid, body)
	case Dynamic:
		ls.runDynamic(body)
	case Guided:
		ls.runGuided(body)
	default:
		ls.runStatic(tid, body)
	}
}

// runStatic executes the thread's statically assigned iterations. With
// chunk == 0 the iteration space is divided into at most nthreads
// contiguous blocks whose sizes differ by at most one (OpenMP's default
// static schedule); with chunk > 0, chunks are assigned round-robin.
func (ls *loopState) runStatic(tid int, body func(i int)) {
	if ls.chunk == 0 {
		base := ls.n / ls.nthreads
		rem := ls.n % ls.nthreads
		start := tid * base
		if tid < rem {
			start += tid
		} else {
			start += rem
		}
		count := base
		if tid < rem {
			count++
		}
		for i := start; i < start+count; i++ {
			body(i)
		}
		return
	}
	for start := tid * ls.chunk; start < ls.n; start += ls.nthreads * ls.chunk {
		end := start + ls.chunk
		if end > ls.n {
			end = ls.n
		}
		for i := start; i < end; i++ {
			body(i)
		}
	}
}

// runDynamic pulls fixed-size chunks from the shared cursor until the
// iteration space is exhausted.
func (ls *loopState) runDynamic(body func(i int)) {
	for {
		start := int(ls.next.Add(int64(ls.chunk))) - ls.chunk
		if start >= ls.n {
			return
		}
		end := start + ls.chunk
		if end > ls.n {
			end = ls.n
		}
		for i := start; i < end; i++ {
			body(i)
		}
	}
}

// runGuided pulls exponentially shrinking chunks: each grab takes
// remaining/nthreads iterations, bounded below by the chunk size.
func (ls *loopState) runGuided(body func(i int)) {
	for {
		cur := int(ls.next.Load())
		if cur >= ls.n {
			return
		}
		grab := (ls.n - cur) / ls.nthreads
		if grab < ls.chunk {
			grab = ls.chunk
		}
		start := int(ls.next.Add(int64(grab))) - grab
		if start >= ls.n {
			return
		}
		end := start + grab
		if end > ls.n {
			end = ls.n
		}
		for i := start; i < end; i++ {
			body(i)
		}
	}
}
