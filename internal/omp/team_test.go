package omp

import (
	"sync/atomic"
	"testing"
)

// TestParallelTeamSubteam: a region forked on a subteam must see the
// subteam size everywhere — NumThreads, loop partitioning, barriers and
// reductions — while the pool's spare threads stay untouched.
func TestParallelTeamSubteam(t *testing.T) {
	p := NewPool(8)
	defer p.Close()

	var ran atomic.Int64
	var covered [40]atomic.Int64
	p.ParallelTeam(3, func(tc *ThreadContext) {
		ran.Add(1)
		if tc.NumThreads() != 3 {
			t.Errorf("NumThreads = %d, want 3", tc.NumThreads())
		}
		if tc.ThreadNum() >= 3 {
			t.Errorf("thread %d joined a team of 3", tc.ThreadNum())
		}
		tc.Barrier() // must not wait for the 5 idle pool threads
		tc.For(len(covered), Static, 0, func(i int) { covered[i].Add(1) })
		if got := tc.ReduceSum(1); got != 3 {
			t.Errorf("ReduceSum over subteam = %v, want 3", got)
		}
	})
	if ran.Load() != 3 {
		t.Fatalf("region ran on %d threads, want 3", ran.Load())
	}
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("iteration %d executed %d times", i, covered[i].Load())
		}
	}
}

// TestParallelTeamFullAndClamped: the full-size team behaves exactly
// like Parallel, and an oversized request clamps to the pool.
func TestParallelTeamFullAndClamped(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{4, 9} {
		var ran atomic.Int64
		p.ParallelTeam(n, func(tc *ThreadContext) {
			if tc.NumThreads() != 4 {
				t.Errorf("NumThreads = %d, want 4", tc.NumThreads())
			}
			ran.Add(1)
			tc.Barrier()
		})
		if ran.Load() != 4 {
			t.Fatalf("team %d: ran on %d threads", n, ran.Load())
		}
	}
}

// TestParallelTeamSequential: shrinking and growing the team across
// regions reuses the same pool safely.
func TestParallelTeamSequential(t *testing.T) {
	p := NewPool(6)
	defer p.Close()
	for _, n := range []int{6, 1, 3, 6, 2} {
		total := 0.0
		p.ParallelTeam(n, func(tc *ThreadContext) {
			s := tc.ReduceSum(float64(tc.ThreadNum()))
			if tc.Master(func() { total = s }) {
			}
		})
		want := float64(n*(n-1)) / 2
		if total != want {
			t.Fatalf("team %d: reduce sum %v, want %v", n, total, want)
		}
	}
}
