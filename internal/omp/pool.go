// Package omp is a small OpenMP-like fork/join runtime: a pool of
// persistent worker goroutines that execute parallel regions with
// work-sharing loops (static, dynamic and guided schedules), explicit
// barriers, and nowait semantics.
//
// It exists so that the paper's instrumentation pattern (Listing 1) can be
// reproduced verbatim in Go:
//
//	pool.Parallel(func(tc *omp.ThreadContext) {
//	    t := tc.ThreadNum()
//	    tc.Barrier()                    // #pragma omp barrier
//	    tStart[i][t] = clock.Now(t)     // clock_gettime(CLOCK_MONOTONIC, ...)
//	    tc.For(n, omp.Static, 0, func(j int) { /* work */ }) // for nowait
//	    tEnd[i][t] = clock.Now(t)
//	    tc.Barrier()                    // #pragma omp barrier
//	})
//
// Loops never include an implied barrier — they are all "nowait", matching
// the instrumentation's requirement that each thread's exit timestamp be
// taken immediately after its own share of the iterations.
package omp

import (
	"sync"
	"sync/atomic"
)

// Schedule selects a work-sharing loop schedule, mirroring OpenMP's
// schedule(static|dynamic|guided) clauses.
type Schedule int

const (
	// Static divides iterations into contiguous equal blocks, one per
	// thread (chunk == 0), or round-robins fixed chunks (chunk > 0).
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter on demand.
	Dynamic
	// Guided hands out exponentially shrinking chunks with a minimum
	// chunk size.
	Guided
)

// String returns the OpenMP clause name of the schedule.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "unknown"
	}
}

// Pool is a team of persistent worker goroutines, analogous to the OpenMP
// thread team of one process. A Pool must be closed when no longer needed.
type Pool struct {
	n       int
	tasks   []chan task
	wg      sync.WaitGroup // tracks worker goroutines for Close
	closed  atomic.Bool
	barrier *Barrier
}

type task struct {
	body func(tc *ThreadContext)
	reg  *region
	done *sync.WaitGroup
}

// NewPool starts a team of n worker goroutines (n >= 1).
func NewPool(n int) *Pool {
	if n < 1 {
		panic("omp: pool size must be >= 1")
	}
	p := &Pool{
		n:       n,
		tasks:   make([]chan task, n),
		barrier: NewBarrier(n),
	}
	for i := 0; i < n; i++ {
		p.tasks[i] = make(chan task)
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for t := range p.tasks[id] {
		tc := &ThreadContext{id: id, region: t.reg}
		t.body(tc)
		t.done.Done()
	}
}

// NumThreads returns the team size (omp_get_num_threads).
func (p *Pool) NumThreads() int { return p.n }

// Parallel runs body once on every thread of the team and returns when all
// threads have finished — a fork/join parallel region.
func (p *Pool) Parallel(body func(tc *ThreadContext)) {
	p.ParallelTeam(p.n, body)
}

// ParallelTeam runs a fork/join parallel region on a dynamically sized
// team of n threads (threads 0..n-1 of the pool), like a parallel region
// with a num_threads clause under a DLB runtime that has lent the
// remaining cores away: NumThreads, barriers, work-sharing loops and
// reductions all see the region's team size, not the pool's, so the same
// region body runs correctly at any ownership level. n is clamped to the
// pool size; n < 1 panics.
func (p *Pool) ParallelTeam(n int, body func(tc *ThreadContext)) {
	if p.closed.Load() {
		panic("omp: Parallel on closed pool")
	}
	if n < 1 {
		panic("omp: parallel team size must be >= 1")
	}
	if n > p.n {
		n = p.n
	}
	reg := &region{team: n, barrier: p.barrier}
	if n != p.n {
		reg.barrier = NewBarrier(n)
	}
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		p.tasks[i] <- task{body: body, reg: reg, done: &done}
	}
	done.Wait()
}

// ParallelFor is shorthand for a parallel region containing a single
// work-shared loop over [0, n).
func (p *Pool) ParallelFor(n int, sched Schedule, chunk int, body func(i int)) {
	p.Parallel(func(tc *ThreadContext) {
		tc.For(n, sched, chunk, body)
	})
}

// Close shuts the team down. The pool must not be used afterwards.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	for _, ch := range p.tasks {
		close(ch)
	}
	p.wg.Wait()
}

// region holds the per-parallel-region shared state: one loopState per
// textual work-sharing construct, identified by the order in which threads
// reach it (all threads of a region must execute the same sequence of
// work-sharing constructs, as in OpenMP).
type region struct {
	// team is the region's thread count — the pool size for Parallel,
	// possibly fewer for ParallelTeam — and barrier is sized to match.
	team    int
	barrier *Barrier

	mu    sync.Mutex
	loops []*loopState
	cs    *constructState
}

func (r *region) loop(seq, n, nthreads int, sched Schedule, chunk int) *loopState {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.loops) <= seq {
		r.loops = append(r.loops, nil)
	}
	if r.loops[seq] == nil {
		r.loops[seq] = newLoopState(n, nthreads, sched, chunk)
	}
	return r.loops[seq]
}

// ThreadContext is the per-thread view of a parallel region.
type ThreadContext struct {
	id        int
	region    *region
	loopSeq   int
	singleSeq int
	reduceSeq int
}

// ThreadNum returns this thread's id within the team (omp_get_thread_num).
func (tc *ThreadContext) ThreadNum() int { return tc.id }

// NumThreads returns the team size of the current region, which may be
// smaller than the pool when the region was forked with ParallelTeam.
func (tc *ThreadContext) NumThreads() int { return tc.region.team }

// Barrier blocks until every thread of the region's team has reached it.
func (tc *ThreadContext) Barrier() { tc.region.barrier.Wait() }

// For executes a work-shared loop over [0, n) with the given schedule.
// chunk <= 0 selects the schedule's default (block partition for static,
// 1 for dynamic and guided). The loop is always "nowait": the thread
// returns as soon as its own iterations are done.
func (tc *ThreadContext) For(n int, sched Schedule, chunk int, body func(i int)) {
	seq := tc.loopSeq
	tc.loopSeq++
	ls := tc.region.loop(seq, n, tc.region.team, sched, chunk)
	ls.run(tc.id, body)
}
