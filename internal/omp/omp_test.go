package omp

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelRunsOnEveryThread(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var seen [8]atomic.Int32
	p.Parallel(func(tc *ThreadContext) {
		seen[tc.ThreadNum()].Add(1)
	})
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Errorf("thread %d ran %d times, want 1", i, got)
		}
	}
}

func TestParallelJoins(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var counter atomic.Int64
	p.Parallel(func(tc *ThreadContext) {
		counter.Add(1)
	})
	if counter.Load() != 4 {
		t.Fatalf("Parallel returned before all threads finished: %d", counter.Load())
	}
}

func TestThreadNumAndNumThreads(t *testing.T) {
	p := NewPool(5)
	defer p.Close()
	if p.NumThreads() != 5 {
		t.Fatalf("NumThreads = %d", p.NumThreads())
	}
	var ids sync.Map
	p.Parallel(func(tc *ThreadContext) {
		if tc.NumThreads() != 5 {
			t.Errorf("tc.NumThreads = %d", tc.NumThreads())
		}
		ids.Store(tc.ThreadNum(), true)
	})
	count := 0
	ids.Range(func(_, _ any) bool { count++; return true })
	if count != 5 {
		t.Fatalf("saw %d distinct thread ids, want 5", count)
	}
}

// coverage checks that a schedule covers each iteration exactly once.
func coverage(t *testing.T, nthreads, n int, sched Schedule, chunk int) {
	t.Helper()
	p := NewPool(nthreads)
	defer p.Close()
	counts := make([]atomic.Int32, n)
	p.ParallelFor(n, sched, chunk, func(i int) {
		counts[i].Add(1)
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("%v/chunk=%d nthreads=%d n=%d: iteration %d executed %d times",
				sched, chunk, nthreads, n, i, got)
		}
	}
}

func TestScheduleCoverage(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, chunk := range []int{0, 1, 3, 7} {
			for _, n := range []int{0, 1, 13, 200} {
				coverage(t, 6, n, sched, chunk)
			}
		}
	}
}

func TestScheduleCoverageProperty(t *testing.T) {
	f := func(rawThreads, rawN, rawChunk uint8, rawSched uint8) bool {
		nthreads := int(rawThreads%8) + 1
		n := int(rawN) % 100
		chunk := int(rawChunk) % 5
		sched := Schedule(rawSched % 3)
		p := NewPool(nthreads)
		defer p.Close()
		counts := make([]atomic.Int32, n)
		p.ParallelFor(n, sched, chunk, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStaticBlockPartitionIsContiguous(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var mu sync.Mutex
	ranges := make(map[int][]int)
	p.Parallel(func(tc *ThreadContext) {
		tc.For(10, Static, 0, func(i int) {
			mu.Lock()
			ranges[tc.ThreadNum()] = append(ranges[tc.ThreadNum()], i)
			mu.Unlock()
		})
	})
	// 10 iterations over 4 threads: sizes 3,3,2,2 and contiguous.
	wantSizes := []int{3, 3, 2, 2}
	for tid, want := range wantSizes {
		got := ranges[tid]
		if len(got) != want {
			t.Fatalf("thread %d got %d iterations, want %d", tid, len(got), want)
		}
		for k := 1; k < len(got); k++ {
			if got[k] != got[k-1]+1 {
				t.Fatalf("thread %d iterations not contiguous: %v", tid, got)
			}
		}
	}
	if ranges[0][0] != 0 || ranges[3][len(ranges[3])-1] != 9 {
		t.Fatalf("partition bounds wrong: %v", ranges)
	}
}

func TestStaticChunkedRoundRobin(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var mu sync.Mutex
	owner := make([]int, 8)
	p.Parallel(func(tc *ThreadContext) {
		tc.For(8, Static, 2, func(i int) {
			mu.Lock()
			owner[i] = tc.ThreadNum()
			mu.Unlock()
		})
	})
	want := []int{0, 0, 1, 1, 0, 0, 1, 1}
	for i := range want {
		if owner[i] != want[i] {
			t.Fatalf("owner = %v, want %v", owner, want)
		}
	}
}

func TestBarrierSynchronises(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var before, after atomic.Int32
	p.Parallel(func(tc *ThreadContext) {
		before.Add(1)
		tc.Barrier()
		// After the barrier every thread must observe all 8 increments.
		if got := before.Load(); got != 8 {
			t.Errorf("after barrier: before = %d, want 8", got)
		}
		after.Add(1)
	})
	if after.Load() != 8 {
		t.Fatalf("after = %d", after.Load())
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const phases = 50
	var phase [phases]atomic.Int32
	p.Parallel(func(tc *ThreadContext) {
		for k := 0; k < phases; k++ {
			phase[k].Add(1)
			tc.Barrier()
			if got := phase[k].Load(); got != 4 {
				t.Errorf("phase %d: count %d, want 4", k, got)
			}
			tc.Barrier()
		}
	})
}

func TestStandaloneBarrier(t *testing.T) {
	b := NewBarrier(3)
	if b.Parties() != 3 {
		t.Fatalf("Parties = %d", b.Parties())
	}
	var wg sync.WaitGroup
	var hits atomic.Int32
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				b.Wait()
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	if hits.Load() != 300 {
		t.Fatalf("hits = %d", hits.Load())
	}
}

func TestNoWaitSemantics(t *testing.T) {
	// With a dynamic schedule and one deliberately slow iteration, fast
	// threads must exit the loop (and record their timestamps) before the
	// slow thread finishes — that is the essence of Listing 1's nowait.
	p := NewPool(4)
	defer p.Close()
	slowRelease := make(chan struct{})
	var fastDone atomic.Int32
	var sawEarlyExit atomic.Bool
	p.Parallel(func(tc *ThreadContext) {
		tc.For(4, Dynamic, 1, func(i int) {
			if i == 0 {
				// Laggard iteration: wait until all other threads have
				// exited their loop share.
				for fastDone.Load() < 3 {
				}
				<-slowRelease
			}
		})
		if n := fastDone.Add(1); n == 3 {
			// Three threads exited while the laggard still held iteration
			// 0 — nowait confirmed; release it.
			sawEarlyExit.Store(true)
			close(slowRelease)
		}
	})
	if !sawEarlyExit.Load() {
		t.Fatal("threads did not exit the loop before the laggard finished")
	}
}

func TestMultipleLoopsPerRegion(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var first, second atomic.Int64
	p.Parallel(func(tc *ThreadContext) {
		tc.For(100, Dynamic, 3, func(i int) { first.Add(1) })
		tc.Barrier()
		tc.For(50, Guided, 1, func(i int) { second.Add(1) })
	})
	if first.Load() != 100 || second.Load() != 50 {
		t.Fatalf("loop coverage: first=%d second=%d", first.Load(), second.Load())
	}
}

func TestPoolReusableAcrossRegions(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for r := 0; r < 20; r++ {
		var n atomic.Int32
		p.Parallel(func(tc *ThreadContext) { n.Add(1) })
		if n.Load() != 3 {
			t.Fatalf("region %d: %d threads", r, n.Load())
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestParallelAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Parallel(func(tc *ThreadContext) {})
}

func TestNewPoolInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(0)
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Error("schedule names wrong")
	}
	if Schedule(9).String() != "unknown" {
		t.Error("unknown schedule name")
	}
}
