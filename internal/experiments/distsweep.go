package experiments

import (
	"fmt"
	"io"

	"earlybird/internal/cluster"
	"earlybird/internal/partcomm"
	"earlybird/internal/workload"
)

// The distribution sweep reconstructs the synthetic-arrival baselines of
// the related work: Temucin et al. micro-benchmark partitioned
// communication under parameterised distributions (including normal),
// and the original Finepoints analysis assumes a single laggard thread.
// Sweeping those families through the same delivery-strategy simulator
// connects the paper's *measured* distributions to the literature's
// *assumed* ones: it shows where each assumption would over- or
// under-predict early-bird benefit relative to the real applications.

// DistPoint is one synthetic-distribution evaluation.
type DistPoint struct {
	// Label describes the distribution (family and parameter).
	Label string
	// ParamSec is the swept parameter (sigma, lag, or half-width).
	ParamSec float64
	// FineOverlapSec and BinnedOverlapSec are the strategies' mean
	// overlaps vs bulk; PotentialSec is the mean reclaimable time per
	// thread (the paper's idle metric); WindowSec is the mean arrival
	// window (max - min), the hard upper bound on hideable transfer time.
	FineOverlapSec   float64
	BinnedOverlapSec float64
	PotentialSec     float64
	WindowSec        float64
}

// DistSweepConfig parameterises the sweep.
type DistSweepConfig struct {
	// MedianSec centres every synthetic distribution (default: the
	// MiniMD-like 25 ms).
	MedianSec float64
	// Geometry for the synthetic studies (small by default).
	Geometry cluster.Config
	// NormalSigmas, LaggardLags and UniformHalfWidths select the swept
	// parameters (defaults provided).
	NormalSigmas      []float64
	LaggardLags       []float64
	UniformHalfWidths []float64
}

// DefaultDistSweep returns the default sweep configuration.
func DefaultDistSweep() DistSweepConfig {
	return DistSweepConfig{
		MedianSec: 25e-3,
		Geometry:  cluster.Config{Trials: 2, Ranks: 4, Iterations: 40, Threads: 48, Seed: 17},
		// Sigma from MiniMD-tight to MiniQMC-wide.
		NormalSigmas: []float64{0.1e-3, 1e-3, 3e-3, 6.7e-3},
		// Single-laggard magnitudes from sub-threshold to dominant.
		LaggardLags: []float64{0.5e-3, 2e-3, 8e-3, 25e-3},
		// Uniform widths bracketing MiniMD phase one.
		UniformHalfWidths: []float64{0.5e-3, 1e-3, 5e-3},
	}
}

// DistSweep evaluates the delivery strategies over each synthetic family
// and returns the points grouped by family name ("normal",
// "single-laggard", "uniform").
func (s *Suite) DistSweep(cfg DistSweepConfig) map[string][]DistPoint {
	if cfg.MedianSec == 0 {
		cfg = DefaultDistSweep()
	}
	strategies := []partcomm.Strategy{
		partcomm.FineGrained{},
		partcomm.Binned{TimeoutSec: s.cfg.BinTimeoutSec},
	}
	// Each parameterisation carries its label as the model name: the
	// engine's dataset cache is keyed by (name, geometry, seed), so
	// distinct sweep points get distinct cache entries while repeated
	// sweeps over one suite are served from cache.
	evalModel := func(m workload.Model, param float64, label string) DistPoint {
		d, _, err := s.eng.Dataset(m, cfg.Geometry)
		if err != nil {
			panic(fmt.Sprintf("experiments: distsweep %s: %v", label, err))
		}
		res := partcomm.Evaluate(d, s.cfg.BytesPerPartition, s.cfg.Fabric, strategies)
		potential, window := 0.0, 0.0
		n := 0
		d.EachProcessIteration(func(_, _, _ int, xs []float64) {
			potential += partcomm.PotentialOverlap(xs)
			min, max := xs[0], xs[0]
			for _, x := range xs {
				if x < min {
					min = x
				}
				if x > max {
					max = x
				}
			}
			window += max - min
			n++
		})
		if n > 0 {
			potential /= float64(n)
			window /= float64(n)
		}
		return DistPoint{
			Label:            label,
			ParamSec:         param,
			FineOverlapSec:   res[0].MeanOverlapSec,
			BinnedOverlapSec: res[1].MeanOverlapSec,
			PotentialSec:     potential,
			WindowSec:        window,
		}
	}

	// Model names are cache keys and carry the full-precision parameters;
	// the rounded human-readable labels are display-only (two sweep points
	// may round to the same label but must never share a dataset).
	out := map[string][]DistPoint{}
	for _, sigma := range cfg.NormalSigmas {
		name := fmt.Sprintf("normal(median=%g,sigma=%g)", cfg.MedianSec, sigma)
		m := &workload.NormalModel{AppName: name, MedianSec: cfg.MedianSec, SigmaSec: sigma}
		out["normal"] = append(out["normal"],
			evalModel(m, sigma, fmt.Sprintf("normal(sigma=%.2gms)", 1e3*sigma)))
	}
	for _, lag := range cfg.LaggardLags {
		name := fmt.Sprintf("laggard(median=%g,lag=%g)", cfg.MedianSec, lag)
		m := &workload.SingleLaggardModel{AppName: name, MedianSec: cfg.MedianSec, JitterSec: 0.05e-3, LagSec: lag}
		out["single-laggard"] = append(out["single-laggard"],
			evalModel(m, lag, fmt.Sprintf("laggard(+%.2gms)", 1e3*lag)))
	}
	for _, hw := range cfg.UniformHalfWidths {
		name := fmt.Sprintf("uniform(median=%g,hw=%g)", cfg.MedianSec, hw)
		m := &workload.UniformModel{AppName: name, MedianSec: cfg.MedianSec, HalfWidthSec: hw}
		out["uniform"] = append(out["uniform"],
			evalModel(m, hw, fmt.Sprintf("uniform(±%.2gms)", 1e3*hw)))
	}
	return out
}

// WriteDistSweepReport renders the sweep.
func (s *Suite) WriteDistSweepReport(w io.Writer, cfg DistSweepConfig) {
	sweep := s.DistSweep(cfg)
	fmt.Fprintln(w, "== D1: delivery-strategy overlap under the literature's synthetic arrival distributions ==")
	fmt.Fprintln(w, "(fine-grained / binned overlap vs bulk; potential = reclaimable bound per thread)")
	for _, family := range sortedKeys(sweep) {
		fmt.Fprintf(w, "%s:\n", family)
		for _, p := range sweep[family] {
			fmt.Fprintf(w, "  %-22s fine %8.3f ms  binned %8.3f ms  potential %8.3f ms  window %8.3f ms\n",
				p.Label, 1e3*p.FineOverlapSec, 1e3*p.BinnedOverlapSec, 1e3*p.PotentialSec, 1e3*p.WindowSec)
		}
	}
}
