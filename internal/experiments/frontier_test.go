package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// TestStrategyFrontierGoldenQuick pins the exact E14 rendering — the
// cmd/repro strategy-frontier table — at the quick geometry. The fill is
// a pure function of (model, geometry, seed) and the evaluation walks a
// deterministic cursor, so the table is byte-stable; regenerate with
//
//	go test ./internal/experiments -run StrategyFrontierGolden -update
//
// after an intentional change to the grid or the rendering.
func TestStrategyFrontierGoldenQuick(t *testing.T) {
	suite := NewSuite(Quick())
	var buf bytes.Buffer
	suite.WriteStrategyFrontier(&buf)

	path := filepath.Join("testdata", "e14_quick.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("E14 output diverged from %s.\n--- got ---\n%s--- want ---\n%s", path, buf.Bytes(), want)
	}

	// The experiment itself must stay on the cursor path: rendering the
	// frontier never builds the nested tensor view.
	if got := suite.Engine().NestedViews(); got != 0 {
		t.Errorf("nested views = %d after E14, want 0", got)
	}
}

// TestE14FrontierSanity checks the experiment's semantic floor at quick
// geometry: every app yields the full grid, a non-trivial potential, and
// a frontier that beats (or ties) the bulk baseline.
func TestE14FrontierSanity(t *testing.T) {
	suite := NewSuite(Quick())
	e14 := suite.E14StrategyFrontier()
	for _, app := range AppNames {
		sw, ok := e14[app]
		if !ok {
			t.Fatalf("no sweep for %s", app)
		}
		if len(sw.Results) != len(suite.E14StrategyTimeouts())+5 {
			t.Errorf("%s: %d results, want %d", app, len(sw.Results), len(suite.E14StrategyTimeouts())+5)
		}
		if sw.PotentialOverlapSec <= 0 {
			t.Errorf("%s: potential overlap %v, want > 0", app, sw.PotentialOverlapSec)
		}
		var bulk float64
		for _, r := range sw.Results {
			if r.Strategy == "bulk" {
				bulk = r.MeanFinishSec
			}
		}
		if bulk == 0 {
			t.Fatalf("%s: no bulk baseline in results", app)
		}
		if sw.BestFinishSec > bulk {
			t.Errorf("%s: frontier %v slower than bulk %v", app, sw.BestFinishSec, bulk)
		}
	}
}
