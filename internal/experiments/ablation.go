package experiments

import (
	"fmt"
	"io"
	"sort"

	"earlybird/internal/analysis"
	"earlybird/internal/omp"
	"earlybird/internal/partcomm"
	"earlybird/internal/stats"
)

// The ablations quantify the design choices DESIGN.md calls out: how the
// early-bird verdict depends on partition size (message cost vs arrival
// spread), on the binned strategy's flush timeout, on the laggard rule's
// threshold, and on the work-sharing schedule that shaped MiniFE's
// early-arrival distribution in the first place.

// SweepPoint is one point of a one-parameter ablation.
type SweepPoint struct {
	// Param is the swept value (bytes, seconds, ... depending on sweep).
	Param float64
	// OverlapSec is the fine-grained early-bird overlap vs bulk (A1/A2),
	// or the measured response for other sweeps.
	OverlapSec float64
	// Speedup is strategy speedup vs bulk where applicable.
	Speedup float64
}

// AblationPartitionSize sweeps bytes-per-partition and reports the
// fine-grained early-bird overlap per application. Small partitions are
// dominated by per-message cost (early-bird loses); large partitions by
// bandwidth (early-bird wins when arrivals spread beyond one transfer) —
// the crossover is the actionable output.
func (s *Suite) AblationPartitionSize(sizes []int) map[string][]SweepPoint {
	if len(sizes) == 0 {
		sizes = []int{1 << 10, 16 << 10, 256 << 10, 1 << 20, 4 << 20}
	}
	out := map[string][]SweepPoint{}
	for _, app := range AppNames {
		d := s.Dataset(app)
		points := make([]SweepPoint, 0, len(sizes))
		for _, size := range sizes {
			res := partcomm.Evaluate(d, size, s.cfg.Fabric, []partcomm.Strategy{partcomm.FineGrained{}})
			points = append(points, SweepPoint{
				Param:      float64(size),
				OverlapSec: res[0].MeanOverlapSec,
				Speedup:    res[0].SpeedupVsBulk,
			})
		}
		out[app] = points
	}
	return out
}

// AblationBinTimeout sweeps the binned strategy's flush timeout per
// application. Too-short timeouts pay per-flush message costs; too-long
// timeouts degenerate toward bulk.
func (s *Suite) AblationBinTimeout(timeouts []float64) map[string][]SweepPoint {
	if len(timeouts) == 0 {
		timeouts = []float64{0.1e-3, 0.5e-3, 1e-3, 2e-3, 5e-3, 10e-3}
	}
	out := map[string][]SweepPoint{}
	for _, app := range AppNames {
		d := s.Dataset(app)
		points := make([]SweepPoint, 0, len(timeouts))
		for _, to := range timeouts {
			res := partcomm.Evaluate(d, s.cfg.BytesPerPartition, s.cfg.Fabric,
				[]partcomm.Strategy{partcomm.Binned{TimeoutSec: to}})
			points = append(points, SweepPoint{
				Param:      to,
				OverlapSec: res[0].MeanOverlapSec,
				Speedup:    res[0].SpeedupVsBulk,
			})
		}
		out[app] = points
	}
	return out
}

// AblationLaggardThreshold sweeps the laggard rule's threshold and
// reports the laggard fraction per application — the sensitivity of the
// paper's "22.4% / 4.8%" observations to the 1 ms choice.
func (s *Suite) AblationLaggardThreshold(thresholds []float64) map[string][]SweepPoint {
	if len(thresholds) == 0 {
		thresholds = []float64{0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3}
	}
	out := map[string][]SweepPoint{}
	for _, app := range AppNames {
		d := s.Dataset(app)
		points := make([]SweepPoint, 0, len(thresholds))
		for _, th := range thresholds {
			st := analysis.Laggards(d, th)
			points = append(points, SweepPoint{Param: th, OverlapSec: st.Fraction})
		}
		out[app] = points
	}
	return out
}

// ScheduleAblationResult reports the arrival spread produced by one
// work-sharing schedule on a deliberately imbalanced loop.
type ScheduleAblationResult struct {
	Schedule  omp.Schedule
	IQRSec    float64
	RangeSec  float64
	MedianSec float64
}

// AblationSchedules evaluates each work-sharing schedule on an
// imbalanced loop whose iteration cost grows linearly (mimicking
// MiniFE's outer loop over problem-space planes) and reports the
// resulting thread-arrival spread. The execution is a deterministic
// discrete-event simulation of the schedule semantics (the same
// partitioning rules as internal/omp), so the result is host-independent:
// static block partitioning concentrates the expensive iterations on the
// last threads (wide arrivals), while dynamic and guided flatten them —
// the mechanism behind the paper's MiniFE early-arrival observation.
func AblationSchedules(threads, loopIters, workScale int) []ScheduleAblationResult {
	costSec := func(i int) float64 { return float64(i) * float64(workScale) * 1e-9 }
	results := make([]ScheduleAblationResult, 0, 3)
	for _, sched := range []omp.Schedule{omp.Static, omp.Dynamic, omp.Guided} {
		arrivals := simulateSchedule(sched, threads, loopIters, costSec)
		sorted := stats.Sorted(arrivals)
		results = append(results, ScheduleAblationResult{
			Schedule:  sched,
			IQRSec:    stats.IQRSorted(sorted),
			RangeSec:  sorted[len(sorted)-1] - sorted[0],
			MedianSec: stats.PercentileSorted(sorted, 50),
		})
	}
	return results
}

// simulateSchedule returns per-thread arrival times for a loop of n
// iterations with the given per-iteration cost, under the schedule's
// assignment rule. Dynamic and guided are simulated greedily: the next
// chunk goes to the thread that becomes free first, which is what an
// eager work-stealing runtime converges to.
func simulateSchedule(sched omp.Schedule, threads, n int, costSec func(int) float64) []float64 {
	arrival := make([]float64, threads)
	switch sched {
	case omp.Static:
		// Contiguous blocks differing in size by at most one.
		base, rem := n/threads, n%threads
		start := 0
		for t := 0; t < threads; t++ {
			count := base
			if t < rem {
				count++
			}
			for i := start; i < start+count; i++ {
				arrival[t] += costSec(i)
			}
			start += count
		}
	case omp.Dynamic:
		next := 0
		for next < n {
			t := earliest(arrival)
			arrival[t] += costSec(next)
			next++
		}
	case omp.Guided:
		next := 0
		for next < n {
			grab := (n - next) / threads
			if grab < 1 {
				grab = 1
			}
			t := earliest(arrival)
			for k := 0; k < grab; k++ {
				arrival[t] += costSec(next)
				next++
			}
		}
	}
	return arrival
}

// earliest returns the index of the smallest element.
func earliest(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// WriteAblationReport renders all ablations to w.
func (s *Suite) WriteAblationReport(w io.Writer) {
	_ = s.Warm() // fill the dataset cache concurrently before the sweeps
	fmt.Fprintln(w, "== A1: fine-grained early-bird overlap vs partition size ==")
	a1 := s.AblationPartitionSize(nil)
	for _, app := range sortedKeys(a1) {
		fmt.Fprintf(w, "%s:\n", app)
		for _, p := range a1[app] {
			fmt.Fprintf(w, "  %8.0f KiB -> overlap %8.3f ms, speedup %5.3fx\n",
				p.Param/1024, 1e3*p.OverlapSec, p.Speedup)
		}
	}

	fmt.Fprintln(w, "\n== A2: binned-delivery overlap vs flush timeout ==")
	a2 := s.AblationBinTimeout(nil)
	for _, app := range sortedKeys(a2) {
		fmt.Fprintf(w, "%s:\n", app)
		for _, p := range a2[app] {
			fmt.Fprintf(w, "  %6.2f ms timeout -> overlap %8.3f ms, speedup %5.3fx\n",
				1e3*p.Param, 1e3*p.OverlapSec, p.Speedup)
		}
	}

	fmt.Fprintln(w, "\n== A3: laggard fraction vs detection threshold ==")
	a3 := s.AblationLaggardThreshold(nil)
	for _, app := range sortedKeys(a3) {
		fmt.Fprintf(w, "%s:\n", app)
		for _, p := range a3[app] {
			fmt.Fprintf(w, "  threshold %5.2f ms -> laggard fraction %6.1f%%\n",
				1e3*p.Param, 100*p.OverlapSec)
		}
	}

	fmt.Fprintln(w, "\n== A4: schedule ablation (simulated imbalanced loop; arrival spread per schedule) ==")
	for _, r := range AblationSchedules(8, 256, 2000) {
		fmt.Fprintf(w, "  %-8s IQR %8.3f ms  range %8.3f ms  median %8.3f ms\n",
			r.Schedule, 1e3*r.IQRSec, 1e3*r.RangeSec, 1e3*r.MedianSec)
	}
}

func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
