package experiments

import (
	"fmt"
	"io"

	"earlybird/internal/stats/normality"
)

// paperTable1 records the paper's published Table 1 values (pass
// fractions) for side-by-side rendering.
var paperTable1 = map[string][3]float64{
	"minife":  {0.03, 0.01, 0.01}, // "<1%" rendered as 0.01
	"minimd":  {0.77, 0.74, 0.76},
	"miniqmc": {0.95, 0.96, 0.96},
}

// paperMetrics records the paper's Section 4.2 scalars: mean median (ms),
// laggard fraction, avg reclaimable time (ms), idle ratio.
var paperMetrics = map[string][4]float64{
	"minife":  {26.30, 0.224, 42.82, 0.1928},
	"minimd":  {24.74, 0.048, 17.61, 0.5012},
	"miniqmc": {60.91, -1, 708.03, 0.5033}, // no laggard rule applied to QMC
}

// WriteReport runs every experiment and renders a full paper-vs-measured
// report to w. It is the engine behind cmd/repro and EXPERIMENTS.md.
func (s *Suite) WriteReport(w io.Writer) {
	// Generate all three datasets concurrently up front; the experiments
	// below render serially from the engine's cache. A generation failure
	// surfaces as the same panic Dataset would raise.
	_ = s.Warm()
	cfg := s.cfg.Cluster
	fmt.Fprintf(w, "Reproduction report — %d trials x %d ranks x %d iterations x %d threads (%d samples/app)\n\n",
		cfg.Trials, cfg.Ranks, cfg.Iterations, cfg.Threads,
		cfg.Trials*cfg.Ranks*cfg.Iterations*cfg.Threads)

	fmt.Fprintln(w, "== E1: application-level normality (Section 4.1; paper: all reject) ==")
	e1 := s.E1AppLevelNormality()
	for _, app := range AppNames {
		res := e1[app]
		fmt.Fprintf(w, "%-8s", app)
		for _, t := range normality.Tests {
			fmt.Fprintf(w, "  %s reject=%v", t, res[t].RejectNormal)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\n== E2: application-iteration normality (paper: FE 0, MD 0, QMC 8 D'Agostino-only passes / 200) ==")
	e2 := s.E2AppIterationNormality()
	for _, app := range AppNames {
		sum := e2[app]
		fmt.Fprintf(w, "%-8s passes/200:", app)
		for _, t := range normality.Tests {
			fmt.Fprintf(w, "  %s %d", t, sum.Passed[t])
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\n== E3: Table 1 — process-iteration normality pass rates ==")
	fmt.Fprintf(w, "%-8s  %12s  %22s  %22s\n", "app", "D'Agostino", "Shapiro-Wilk", "Anderson-Darling")
	for _, row := range s.E3Table1() {
		paper := paperTable1[row.App]
		fmt.Fprintf(w, "%-8s", row.App)
		for _, t := range normality.Tests {
			fmt.Fprintf(w, "  %5.1f%% (paper %4.0f%%)", 100*row.PassRates[t], 100*paper[t])
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\n== E4: Figure 3 — application-level histograms (10us bins) ==")
	e4 := s.E4Fig3Histograms()
	for _, app := range AppNames {
		h := e4[app]
		fmt.Fprintf(w, "%s: peak at %.2f ms, %d samples\n", app, 1e3*h.Peak(), h.Total)
	}

	fmt.Fprintln(w, "\n== E5: Figure 4 — MiniFE percentiles ==")
	fe := s.E5Fig4MiniFEPercentiles()
	feMean, feMax := fe.IQRStats(0, len(fe.Values))
	fmt.Fprintf(w, "IQR mean %.2f ms (paper 0.18), max %.2f ms (paper 4.24); skew asymmetry %.3f ms (>0 = early arrivals dominate)\n",
		1e3*feMean, 1e3*feMax, 1e3*fe.SkewAsymmetry())

	fmt.Fprintln(w, "\n== E6: Figure 5 — MiniFE laggard classes (50us bins) ==")
	f5 := s.E6Fig5MiniFELaggards()
	fmt.Fprintf(w, "laggard iterations: %.1f%% (paper 22.4%%)\n", 100*f5.LaggardFraction)

	fmt.Fprintln(w, "\n== E7: Figure 6 — MiniMD two-phase percentiles ==")
	f6 := s.E7Fig6MiniMDPercentiles()
	fmt.Fprintf(w, "phase 1 (iters 1-%d): IQR mean %.2f ms (paper 0.93), max %.2f ms (paper 1.45)\n",
		f6.PhaseBoundary, 1e3*f6.Phase1IQRMean, 1e3*f6.Phase1IQRMax)
	fmt.Fprintf(w, "phase 2: IQR mean %.2f ms (paper 0.15), max %.2f ms (paper 7.43)\n",
		1e3*f6.Phase2IQRMean, 1e3*f6.Phase2IQRMax)

	fmt.Fprintln(w, "\n== E8: Figure 7 — MiniMD laggard classes ==")
	f7 := s.E8Fig7MiniMDLaggards()
	fmt.Fprintf(w, "phase-2 laggard iterations: %.1f%% (paper 4.8%%)\n", 100*f7.LaggardFraction)

	fmt.Fprintln(w, "\n== E9: Figure 8 — MiniQMC percentiles ==")
	qmc := s.E9Fig8MiniQMCPercentiles()
	qmcMean, qmcMax := qmc.IQRStats(0, len(qmc.Values))
	fmt.Fprintf(w, "IQR mean %.2f ms (paper 9.05), max %.2f ms (paper 15.61)\n", 1e3*qmcMean, 1e3*qmcMax)

	fmt.Fprintln(w, "\n== E10: Figure 9 — MiniQMC process-iteration histogram (1ms bins) ==")
	f9 := s.E10Fig9MiniQMCHistogram()
	fmt.Fprintf(w, "within-iteration spread: %d bins populated across %d samples\n", countNonZero(f9.Counts), f9.Total)

	fmt.Fprintln(w, "\n== E11: Section 4.2 scalar metrics ==")
	for _, app := range AppNames {
		m := s.E11Metrics()[app]
		p := paperMetrics[app]
		fmt.Fprintf(w, "%-8s mean median %.2f ms (paper %.2f)", app, 1e3*m.MeanMedianSec, p[0])
		if p[1] >= 0 {
			fmt.Fprintf(w, ", laggards %.1f%% (paper %.1f%%)", 100*m.LaggardFraction, 100*p[1])
		}
		fmt.Fprintf(w, ", reclaimable %.2f ms (paper %.2f)", 1e3*m.AvgReclaimableProcSec, p[2])
		fmt.Fprintf(w, ", idle ratio proc %.4f / app-iter %.4f (paper %.4f; see DESIGN.md on the metric's ambiguity)\n",
			m.IdleRatioProc, m.IdleRatioAppIter, p[3])
	}

	fmt.Fprintln(w, "\n== E12: early-bird overlap by delivery strategy (1 MiB/partition, Omni-Path model) ==")
	e12 := s.E12Overlap()
	for _, app := range AppNames {
		fmt.Fprintf(w, "%s:\n", app)
		for _, r := range e12[app] {
			fmt.Fprintf(w, "  %s\n", r)
		}
	}

	fmt.Fprintln(w)
	s.WriteStrategyFrontier(w)

	fmt.Fprintln(w)
	s.WriteDLBReport(w)
}

// WriteStrategyFrontier renders the E14 strategy-frontier table: every
// strategy of the standard grid per application, with the frontier
// (earliest mean finish and its overlap capture) called out. It is the
// renderer behind cmd/repro -exp strategies and the E14 golden test.
func (s *Suite) WriteStrategyFrontier(w io.Writer) {
	fmt.Fprintln(w, "== E14: strategy frontier — adaptive delivery strategies on the cursor path ==")
	e14 := s.E14StrategyFrontier()
	for _, app := range AppNames {
		sw := e14[app]
		fmt.Fprintf(w, "%s (potential overlap %.3f ms/thread):\n", app, 1e3*sw.PotentialOverlapSec)
		for _, r := range sw.Results {
			fmt.Fprintf(w, "  %-24s finish %8.3f ms  overlap %8.3f ms  speedup %5.3fx  capture %5.1f%%\n",
				r.Strategy, 1e3*r.MeanFinishSec, 1e3*r.MeanOverlapSec, r.SpeedupVsBulk, 100*r.OverlapCapture)
		}
		fmt.Fprintf(w, "  -> best %s: finish %.3f ms, captures %.1f%% of potential\n",
			sw.Best, 1e3*sw.BestFinishSec, 100*sw.BestCapture)
	}
}

func countNonZero(counts []int) int {
	n := 0
	for _, c := range counts {
		if c > 0 {
			n++
		}
	}
	return n
}
