package experiments

import (
	"bytes"
	"strings"
	"testing"

	"earlybird/internal/omp"
)

func TestAblationPartitionSizeMonotone(t *testing.T) {
	s := quickSuite()
	sweep := s.AblationPartitionSize([]int{4 << 10, 256 << 10, 4 << 20})
	for app, points := range sweep {
		if len(points) != 3 {
			t.Fatalf("%s: %d points", app, len(points))
		}
		// Early-bird overlap grows with partition size: bigger transfers
		// leave more to hide behind the arrival spread.
		if !(points[2].OverlapSec > points[0].OverlapSec) {
			t.Errorf("%s: overlap not increasing with size: %v", app, points)
		}
		// Tiny partitions: fine-grained pays 48 message costs vs 1, so
		// overlap can be slightly negative but must stay bounded by the
		// extra per-message latencies.
		if points[0].OverlapSec < -50e-6 {
			t.Errorf("%s: small-partition overlap %v too negative", app, points[0].OverlapSec)
		}
	}
}

func TestAblationBinTimeoutDegeneratesToBulk(t *testing.T) {
	s := quickSuite()
	sweep := s.AblationBinTimeout([]float64{0.2e-3, 50e-3})
	for app, points := range sweep {
		// A 50 ms timeout exceeds every arrival spread, so binned ==
		// one flush at tmax == bulk: overlap ~ 0.
		last := points[len(points)-1]
		if last.OverlapSec > 1e-4 || last.OverlapSec < -1e-4 {
			t.Errorf("%s: huge-timeout overlap %v, want ~0 (bulk)", app, last.OverlapSec)
		}
	}
	// QMC with a short timeout captures real overlap.
	if sweep["miniqmc"][0].OverlapSec < 1e-3 {
		t.Errorf("miniqmc short-timeout overlap %v too small", sweep["miniqmc"][0].OverlapSec)
	}
}

func TestAblationLaggardThresholdMonotone(t *testing.T) {
	s := quickSuite()
	sweep := s.AblationLaggardThreshold([]float64{0.25e-3, 1e-3, 4e-3})
	for app, points := range sweep {
		for i := 1; i < len(points); i++ {
			if points[i].OverlapSec > points[i-1].OverlapSec+1e-9 {
				t.Errorf("%s: laggard fraction not non-increasing in threshold: %v", app, points)
			}
		}
	}
	// At 1 ms the MiniFE fraction matches the paper's band.
	fe := sweep["minife"][1].OverlapSec
	if fe < 0.15 || fe > 0.30 {
		t.Errorf("minife fraction at 1ms = %v", fe)
	}
	// MiniQMC's wide normal spread trips any sub-10ms threshold.
	if qmc := sweep["miniqmc"][0].OverlapSec; qmc < 0.95 {
		t.Errorf("miniqmc fraction at 0.25ms = %v, want ~1", qmc)
	}
}

func TestAblationSchedulesFlattenImbalance(t *testing.T) {
	// Static on a triangular workload concentrates the expensive tail on
	// the last thread (block partition); dynamic and guided spread it.
	// The simulation is deterministic, so the claim is exact.
	results := AblationSchedules(4, 96, 4000)
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	byName := map[omp.Schedule]ScheduleAblationResult{}
	for _, r := range results {
		byName[r.Schedule] = r
		if r.MedianSec <= 0 {
			t.Fatalf("%v: non-positive median %v", r.Schedule, r.MedianSec)
		}
	}
	if byName[omp.Static].RangeSec < 5*byName[omp.Dynamic].RangeSec {
		t.Errorf("static range %v not ≫ dynamic range %v",
			byName[omp.Static].RangeSec, byName[omp.Dynamic].RangeSec)
	}
	if byName[omp.Static].RangeSec < 2*byName[omp.Guided].RangeSec {
		t.Errorf("static range %v not ≫ guided range %v",
			byName[omp.Static].RangeSec, byName[omp.Guided].RangeSec)
	}
	// Determinism.
	again := AblationSchedules(4, 96, 4000)
	for i := range again {
		if again[i] != results[i] {
			t.Fatal("schedule ablation not deterministic")
		}
	}
}

func TestWriteAblationReport(t *testing.T) {
	s := quickSuite()
	var buf bytes.Buffer
	s.WriteAblationReport(&buf)
	out := buf.String()
	for _, want := range []string{"A1", "A2", "A3", "A4", "KiB", "timeout", "threshold", "static", "dynamic", "guided"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}
