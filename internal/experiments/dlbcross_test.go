package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"earlybird/internal/dlb"
)

// TestDLBCrossGoldenQuick pins the exact E15 rendering — the cmd/repro
// -exp dlb table — at the quick geometry. Every (app, policy) fill is a
// pure function of (model, geometry, seed, policy) and the balancers are
// deterministic, so the table is byte-stable; regenerate with
//
//	go test ./internal/experiments -run DLBCrossGolden -update
//
// after an intentional change to the policies, the grid or the
// rendering.
func TestDLBCrossGoldenQuick(t *testing.T) {
	suite := NewSuite(Quick())
	var buf bytes.Buffer
	suite.WriteDLBReport(&buf)

	path := filepath.Join("testdata", "e15_quick.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("E15 output diverged from %s.\n--- got ---\n%s--- want ---\n%s", path, buf.Bytes(), want)
	}

	// The cross stays on the cursor path: no nested tensor views.
	if got := suite.Engine().NestedViews(); got != 0 {
		t.Errorf("nested views = %d after E15, want 0", got)
	}
}

// TestE15CrossSanity checks the experiment's semantic floor at quick
// geometry: the full (app x policy) grid is present, static cells match
// the E14 frontier exactly (same dataset, same grid), and each policy
// axis point carries its own dataset (distinct cache entries).
func TestE15CrossSanity(t *testing.T) {
	suite := NewSuite(Quick())
	cells := suite.E15DLBCross()
	policies := E15Policies()
	if len(cells) != len(AppNames)*len(policies) {
		t.Fatalf("%d cells, want %d", len(cells), len(AppNames)*len(policies))
	}

	e14 := suite.E14StrategyFrontier()
	seen := map[string]map[string]E15Cell{}
	for _, c := range cells {
		if c.Sweep.PotentialOverlapSec <= 0 {
			t.Errorf("%s/%s: potential overlap %v, want > 0", c.App, c.Policy.Name(), c.Sweep.PotentialOverlapSec)
		}
		if len(c.Sweep.Results) == 0 {
			t.Fatalf("%s/%s: empty sweep", c.App, c.Policy.Name())
		}
		if seen[c.App] == nil {
			seen[c.App] = map[string]E15Cell{}
		}
		seen[c.App][c.Policy.Name()] = c
	}
	for _, app := range AppNames {
		static, ok := seen[app][dlb.PolicyStatic]
		if !ok {
			t.Fatalf("%s: no static cell", app)
		}
		// The static column of E15 is E14 by construction.
		if static.Sweep.Best != e14[app].Best || static.Sweep.BestFinishSec != e14[app].BestFinishSec {
			t.Errorf("%s: static E15 cell diverges from E14 frontier: %v/%v vs %v/%v",
				app, static.Sweep.Best, static.Sweep.BestFinishSec, e14[app].Best, e14[app].BestFinishSec)
		}
	}
	// One dataset generation per (app, policy): the policies must not
	// share cache entries.
	if got, want := suite.Engine().Executions(), int64(len(AppNames)*len(policies)); got != want {
		t.Errorf("executions = %d, want %d (one per app x policy)", got, want)
	}
}
