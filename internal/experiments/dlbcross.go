// E15: delivery strategies x runtime rebalancing. The paper evaluates
// early-bird delivery under a fixed thread layout; the DLB library
// (LeWI, DROM) attacks the same imbalance from the other side, by moving
// threads instead of moving data earlier. E15 crosses the two axes to
// answer the question neither work asks alone: does early-bird delivery
// still pay once the runtime rebalances?

package experiments

import (
	"fmt"
	"io"

	"earlybird/internal/analysis"
	"earlybird/internal/dlb"
	"earlybird/internal/partcomm"
)

// E15Policies returns the rebalancing axis of the E15 cross: the
// paper's static layout plus LeWI and DROM at their default parameters,
// in canonical (resolved) form.
func E15Policies() []dlb.Spec {
	policies := []dlb.Spec{{}, {Policy: dlb.PolicyLeWI}, {Policy: dlb.PolicyDROM}}
	for i, p := range policies {
		resolved, err := p.Resolve()
		if err != nil {
			panic(err) // the built-in axis is always valid
		}
		policies[i] = resolved
	}
	return policies
}

// E15Cell is one (application, rebalancing policy) cell of the E15
// cross: the delivery-strategy sweep on that policy's dataset, plus the
// imbalance statistics the policy leaves behind.
type E15Cell struct {
	App    string
	Policy dlb.Spec
	// LaggardFraction and MeanMedianSec describe the rebalanced data the
	// strategies ran against: how much straggling the policy removed (or
	// introduced) before delivery strategies see the blocks.
	LaggardFraction float64
	MeanMedianSec   float64
	// Sweep is the full delivery-strategy evaluation on this cell.
	Sweep partcomm.Sweep
}

// E15DLBCross evaluates the standard delivery-strategy grid against
// datasets generated under every rebalancing policy — app-major, policy
// order as E15Policies — entirely on the columnar cursor path. Each
// (app, policy) dataset is a distinct engine cache entry, so repeated
// renders are cache-served.
func (s *Suite) E15DLBCross() []E15Cell {
	policies := E15Policies()
	cells := make([]E15Cell, 0, len(AppNames)*len(policies))
	for _, app := range AppNames {
		for _, policy := range policies {
			col, _, err := s.eng.ColumnarDLB(s.models[app], s.cfg.Cluster, policy)
			if err != nil {
				panic(fmt.Sprintf("experiments: %s under %s: %v", app, policy.Name(), err))
			}
			metrics := analysis.ComputeMetricsStreaming(app, col.Cursor(), s.cfg.LaggardThresholdSec)
			lag := analysis.LaggardsStream(col.Cursor(), s.cfg.LaggardThresholdSec)
			grid := partcomm.Grid(s.E14StrategyTimeouts(), []float64{0.2}, lag)
			cells = append(cells, E15Cell{
				App:             app,
				Policy:          policy,
				LaggardFraction: metrics.LaggardFraction,
				MeanMedianSec:   metrics.MeanMedianSec,
				Sweep:           partcomm.SweepCursor(col.Cursor(), s.cfg.BytesPerPartition, s.cfg.Fabric, grid),
			})
		}
	}
	return cells
}

// WriteDLBReport renders the E15 cross as a table — one row per (app,
// policy) cell with the residual imbalance and the strategy frontier —
// and closes with the headline comparison: the best strategy's speedup
// over bulk under each policy. It is the renderer behind cmd/repro
// -exp dlb and the E15 golden test.
func (s *Suite) WriteDLBReport(w io.Writer) {
	fmt.Fprintln(w, "== E15: delivery strategies x runtime rebalancing (LeWI/DROM) ==")
	cells := s.E15DLBCross()
	byApp := map[string][]E15Cell{}
	for _, c := range cells {
		byApp[c.App] = append(byApp[c.App], c)
	}
	for _, app := range AppNames {
		fmt.Fprintf(w, "%s:\n", app)
		fmt.Fprintf(w, "  %-8s  %-10s  %-12s  %-24s  %-12s  %s\n",
			"policy", "laggards", "median", "best strategy", "finish", "vs bulk")
		for _, c := range byApp[app] {
			best := bestResult(c.Sweep)
			fmt.Fprintf(w, "  %-8s  %8.1f%%  %9.3f ms  %-24s  %9.3f ms  %5.3fx\n",
				c.Policy.Name(), 100*c.LaggardFraction, 1e3*c.MeanMedianSec,
				c.Sweep.Best, 1e3*c.Sweep.BestFinishSec, best.SpeedupVsBulk)
		}
	}
	fmt.Fprintln(w, "verdict: early-bird delivery's payoff per rebalancing policy (best-strategy speedup over bulk):")
	for _, app := range AppNames {
		fmt.Fprintf(w, "  %-8s", app)
		for _, c := range byApp[app] {
			best := bestResult(c.Sweep)
			fmt.Fprintf(w, "  %s %5.3fx", c.Policy.Name(), best.SpeedupVsBulk)
		}
		fmt.Fprintln(w)
	}
}

// bestResult finds the frontier row of a sweep (the row Best names).
func bestResult(sw partcomm.Sweep) partcomm.Result {
	for _, r := range sw.Results {
		if r.Strategy == sw.Best {
			return r
		}
	}
	return partcomm.Result{}
}
