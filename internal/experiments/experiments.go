// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4) plus the early-bird feasibility analysis its
// discussion motivates (Section 5). Each experiment has a runner keyed by
// the DESIGN.md experiment index (E1-E13), shared dataset caching, and a
// text renderer used by cmd/repro and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/engine"
	"earlybird/internal/network"
	"earlybird/internal/partcomm"
	"earlybird/internal/stats"
	"earlybird/internal/stats/normality"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

// AppNames lists the studied applications in the paper's order.
var AppNames = []string{"minife", "minimd", "miniqmc"}

// Config parameterises a full reproduction run.
type Config struct {
	// Cluster is the study geometry (paper: 10 x 8 x 200 x 48).
	Cluster cluster.Config
	// Alpha is the significance level (paper: 5%).
	Alpha float64
	// LaggardThresholdSec is the laggard rule (paper: 1 ms).
	LaggardThresholdSec float64
	// BytesPerPartition sizes the early-bird experiments' partitions.
	BytesPerPartition int
	// Fabric is the interconnect model for the overlap experiments.
	Fabric network.Fabric
	// BinTimeoutSec is the timeout of the binned delivery strategy.
	BinTimeoutSec float64
	// DLB is the runtime rebalancing policy the suite's datasets are
	// generated under; the zero value is the paper's fixed (static)
	// thread layout. E15 crosses the delivery strategies against every
	// policy regardless of this base setting.
	DLB dlb.Spec
}

// Default returns the paper's configuration.
func Default() Config {
	return Config{
		Cluster:             cluster.DefaultConfig(),
		Alpha:               normality.DefaultAlpha,
		LaggardThresholdSec: analysis.DefaultLaggardThresholdSec,
		BytesPerPartition:   1 << 20, // 1 MiB per thread portion
		Fabric:              network.OmniPath(),
		BinTimeoutSec:       1e-3,
	}
}

// Quick returns a reduced configuration for fast smoke runs: same thread
// count, fewer trials/iterations.
func Quick() Config {
	c := Default()
	c.Cluster = cluster.Config{Trials: 3, Ranks: 4, Iterations: 60, Threads: 48, Seed: 1}
	return c
}

// Suite runs experiments over datasets generated and cached by a
// campaign engine: repeated requests for an application are served from
// the engine's content-addressed cache, and Warm fans the three
// applications out concurrently before a report renders.
type Suite struct {
	cfg    Config
	eng    *engine.Engine
	models map[string]workload.Model
}

// NewSuite returns a Suite over the three default application models on a
// private engine.
func NewSuite(cfg Config) *Suite {
	return NewSuiteOn(cfg, engine.New(0))
}

// NewSuiteOn returns a Suite running on a shared engine, so several
// suites (or a suite and ad-hoc campaigns) reuse one dataset cache.
func NewSuiteOn(cfg Config, eng *engine.Engine) *Suite {
	models := make(map[string]workload.Model, len(AppNames))
	for _, app := range AppNames {
		m, err := workload.ByName(app)
		if err != nil {
			panic(err) // AppNames lists only built-in apps
		}
		models[app] = m
	}
	return &Suite{cfg: cfg, eng: eng, models: models}
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// Engine returns the campaign engine backing the suite.
func (s *Suite) Engine() *engine.Engine { return s.eng }

// Model returns the workload model backing an application.
func (s *Suite) Model(app string) workload.Model {
	return s.models[app]
}

// Dataset returns the (engine-cached) dataset of one application.
func (s *Suite) Dataset(app string) *trace.Dataset {
	m, ok := s.models[app]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown app %q", app))
	}
	d, _, err := s.eng.DatasetDLB(m, s.cfg.Cluster, s.cfg.DLB)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", app, err))
	}
	return d
}

// Warm generates all three applications' datasets concurrently, so the
// serially rendered experiments that follow hit the engine's cache. It
// generates datasets only — no analysis — and is idempotent and cheap
// when the cache is already populated.
func (s *Suite) Warm() error {
	models := make([]workload.Model, 0, len(AppNames))
	for _, app := range AppNames {
		models = append(models, s.models[app])
	}
	return s.eng.PrefetchDLB(models, s.cfg.Cluster, s.cfg.DLB)
}

// E1AppLevelNormality tests the full application aggregation per app
// (paper: all three tests reject for all three applications).
func (s *Suite) E1AppLevelNormality() map[string][3]normality.Result {
	out := map[string][3]normality.Result{}
	for _, app := range AppNames {
		out[app] = analysis.ApplicationLevelNormality(s.Dataset(app), s.cfg.Alpha)
	}
	return out
}

// E2AppIterationNormality tests each application iteration (paper:
// MiniFE/MiniMD 0/200 pass; MiniQMC has eight iterations passing
// D'Agostino while failing the other two tests).
func (s *Suite) E2AppIterationNormality() map[string]*analysis.NormalitySummary {
	out := map[string]*analysis.NormalitySummary{}
	for _, app := range AppNames {
		out[app] = analysis.ApplicationIterationNormality(s.Dataset(app), s.cfg.Alpha)
	}
	return out
}

// E3Table1 computes the paper's Table 1 (process-iteration normality pass
// percentages).
func (s *Suite) E3Table1() []analysis.Table1 {
	rows := make([]analysis.Table1, 0, len(AppNames))
	for _, app := range AppNames {
		rows = append(rows, analysis.Table1Row(s.Dataset(app), s.cfg.Alpha))
	}
	return rows
}

// E4Fig3Histograms builds the application-level arrival histograms with
// the paper's 10 microsecond bins.
func (s *Suite) E4Fig3Histograms() map[string]*stats.Histogram {
	out := map[string]*stats.Histogram{}
	for _, app := range AppNames {
		out[app] = analysis.ApplicationHistogram(s.Dataset(app), analysis.Fig3BinWidthSec)
	}
	return out
}

// E5Fig4MiniFEPercentiles computes MiniFE's per-iteration percentile
// series (Figure 4).
func (s *Suite) E5Fig4MiniFEPercentiles() *analysis.PercentileSeries {
	return analysis.IterationPercentiles(s.Dataset("minife"), nil)
}

// Fig5Result holds the MiniFE laggard-class reproduction (Figure 5).
type Fig5Result struct {
	NoLaggard       *stats.Histogram
	WithLaggard     *stats.Histogram
	LaggardFraction float64
}

// E6Fig5MiniFELaggards finds representative process iterations with and
// without a laggard and the laggard fraction (paper: 22.4%).
func (s *Suite) E6Fig5MiniFELaggards() Fig5Result {
	d := s.Dataset("minife")
	st := analysis.Laggards(d, s.cfg.LaggardThresholdSec)
	lag, noLag := analysis.FindExampleIterations(d, s.cfg.LaggardThresholdSec, 0, d.Iterations)
	res := Fig5Result{LaggardFraction: st.Fraction}
	if noLag != nil {
		res.NoLaggard = analysis.ProcessIterationHistogram(d, noLag[0], noLag[1], noLag[2], analysis.Fig5BinWidthSec)
	}
	if lag != nil {
		res.WithLaggard = analysis.ProcessIterationHistogram(d, lag[0], lag[1], lag[2], analysis.Fig5BinWidthSec)
	}
	return res
}

// Fig6Result summarises MiniMD's two-phase percentile behaviour
// (Figure 6).
type Fig6Result struct {
	Series                      *analysis.PercentileSeries
	Phase1IQRMean, Phase1IQRMax float64
	Phase2IQRMean, Phase2IQRMax float64
	PhaseBoundary               int
}

// E7Fig6MiniMDPercentiles computes the series and its phase-wise IQR
// statistics (paper: phase 1 IQR avg 0.93 ms / max 1.45 ms; phase 2 avg
// 0.15 ms / max 7.43 ms).
func (s *Suite) E7Fig6MiniMDPercentiles() Fig6Result {
	md, _ := s.Model("minimd").(*workload.MiniMD)
	boundary := 19
	if md != nil {
		boundary = md.PhaseOneIters
	}
	series := analysis.IterationPercentiles(s.Dataset("minimd"), nil)
	r := Fig6Result{Series: series, PhaseBoundary: boundary}
	r.Phase1IQRMean, r.Phase1IQRMax = series.IQRStats(0, boundary)
	r.Phase2IQRMean, r.Phase2IQRMax = series.IQRStats(boundary, s.cfg.Cluster.Iterations)
	return r
}

// Fig7Result holds MiniMD's arrival-class histograms (Figure 7).
type Fig7Result struct {
	Phase1          *stats.Histogram
	NoLaggard       *stats.Histogram
	WithLaggard     *stats.Histogram
	LaggardFraction float64 // phase 2 only (paper: 4.8%)
}

// E8Fig7MiniMDLaggards reproduces Figure 7's three example histograms.
func (s *Suite) E8Fig7MiniMDLaggards() Fig7Result {
	d := s.Dataset("minimd")
	md, _ := s.Model("minimd").(*workload.MiniMD)
	boundary := 19
	if md != nil {
		boundary = md.PhaseOneIters
	}
	st := analysis.LaggardsInRange(d, s.cfg.LaggardThresholdSec, boundary, d.Iterations)
	res := Fig7Result{LaggardFraction: st.Fraction}
	res.Phase1 = analysis.ProcessIterationHistogram(d, 0, 0, boundary/2, analysis.Fig7aBinWidthSec)
	lag, noLag := analysis.FindExampleIterations(d, s.cfg.LaggardThresholdSec, boundary, d.Iterations)
	if noLag != nil {
		res.NoLaggard = analysis.ProcessIterationHistogram(d, noLag[0], noLag[1], noLag[2], analysis.Fig7bcBinWidthSec)
	}
	if lag != nil {
		res.WithLaggard = analysis.ProcessIterationHistogram(d, lag[0], lag[1], lag[2], analysis.Fig7bcBinWidthSec)
	}
	return res
}

// E9Fig8MiniQMCPercentiles computes MiniQMC's percentile series
// (Figure 8; paper: IQR mean 9.05 ms, max 15.61 ms).
func (s *Suite) E9Fig8MiniQMCPercentiles() *analysis.PercentileSeries {
	return analysis.IterationPercentiles(s.Dataset("miniqmc"), nil)
}

// E10Fig9MiniQMCHistogram renders one representative MiniQMC process
// iteration with 1 ms bins (Figure 9).
func (s *Suite) E10Fig9MiniQMCHistogram() *stats.Histogram {
	d := s.Dataset("miniqmc")
	return analysis.ProcessIterationHistogram(d, 0, 0, d.Iterations/2, analysis.Fig9BinWidthSec)
}

// E11Metrics computes the Section 4.2 scalar metrics per application.
func (s *Suite) E11Metrics() map[string]analysis.AppMetrics {
	out := map[string]analysis.AppMetrics{}
	for _, app := range AppNames {
		out[app] = analysis.ComputeMetrics(s.Dataset(app), s.cfg.LaggardThresholdSec)
	}
	return out
}

// E12Overlap evaluates the delivery strategies per application (the
// feasibility question of Figures 1-2 and Section 5).
func (s *Suite) E12Overlap() map[string][]partcomm.Result {
	strategies := []partcomm.Strategy{
		partcomm.Bulk{},
		partcomm.FineGrained{},
		partcomm.Binned{TimeoutSec: s.cfg.BinTimeoutSec},
	}
	out := map[string][]partcomm.Result{}
	for _, app := range AppNames {
		out[app] = partcomm.Evaluate(s.Dataset(app), s.cfg.BytesPerPartition, s.cfg.Fabric, strategies)
	}
	return out
}

// E14StrategyTimeouts returns the binned-timeout axis of the E14
// strategy grid: the configured timeout bracketed by quarters, halves
// and doubles.
func (s *Suite) E14StrategyTimeouts() []float64 {
	t := s.cfg.BinTimeoutSec
	return []float64{t / 4, t / 2, t, 2 * t}
}

// E14StrategyFrontier sweeps the standard delivery-strategy grid per
// application — bulk and fine-grained anchors, binned delivery across
// E14StrategyTimeouts, EWMA-predicted binning, the IQR-switching
// hybrid, and a laggard-aware policy tuned from each application's
// measured laggard statistics — entirely on the columnar cursor path:
// the engine's cached store is read through cursors and the nested
// tensor view is never built for this experiment.
func (s *Suite) E14StrategyFrontier() map[string]partcomm.Sweep {
	out := map[string]partcomm.Sweep{}
	for _, app := range AppNames {
		col, _, err := s.eng.ColumnarDLB(s.models[app], s.cfg.Cluster, s.cfg.DLB)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", app, err))
		}
		lag := analysis.LaggardsStream(col.Cursor(), s.cfg.LaggardThresholdSec)
		grid := partcomm.Grid(s.E14StrategyTimeouts(), []float64{0.2}, lag)
		out[app] = partcomm.SweepCursor(col.Cursor(), s.cfg.BytesPerPartition, s.cfg.Fabric, grid)
	}
	return out
}

// SortedApps returns the app names sorted (stable output order for
// rendering maps).
func SortedApps[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
