package experiments

import (
	"bytes"
	"strings"
	"testing"

	"earlybird/internal/engine"
	"earlybird/internal/stats/normality"
)

func quickSuite() *Suite { return NewSuite(Quick()) }

func TestDatasetCachingAndDeterminism(t *testing.T) {
	s := quickSuite()
	a := s.Dataset("minife")
	b := s.Dataset("minife")
	if a != b {
		t.Fatal("dataset not cached")
	}
	s2 := quickSuite()
	x, y := s.Dataset("minimd").AllSamples(), s2.Dataset("minimd").AllSamples()
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("suites with the same config disagree")
		}
	}
}

func TestWarmFillsEngineCache(t *testing.T) {
	s := quickSuite()
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := s.Engine().Executions(); got != int64(len(AppNames)) {
		t.Errorf("executions after Warm = %d, want %d", got, len(AppNames))
	}
	// Every per-app request and a second Warm are now cache hits.
	for _, app := range AppNames {
		s.Dataset(app)
	}
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := s.Engine().Executions(); got != int64(len(AppNames)) {
		t.Errorf("executions after reuse = %d, want %d", got, len(AppNames))
	}
}

func TestSuitesShareEngineCache(t *testing.T) {
	eng := engine.New(0)
	a := NewSuiteOn(Quick(), eng)
	b := NewSuiteOn(Quick(), eng)
	if a.Dataset("miniqmc") != b.Dataset("miniqmc") {
		t.Error("suites on one engine generated separate datasets")
	}
	if got := eng.Executions(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
}

func TestDatasetUnknownAppPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	quickSuite().Dataset("lulesh")
}

func TestE1AllReject(t *testing.T) {
	s := quickSuite()
	for app, res := range s.E1AppLevelNormality() {
		for _, r := range res {
			if !r.RejectNormal {
				t.Errorf("%s/%v: application level not rejected", app, r.Test)
			}
		}
	}
}

func TestE3Table1Shape(t *testing.T) {
	s := quickSuite()
	rows := s.E3Table1()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byApp := map[string][3]float64{}
	for _, r := range rows {
		byApp[r.App] = r.PassRates
	}
	// The qualitative Table 1 ordering: FE << MD < QMC for all tests.
	for _, test := range normality.Tests {
		fe, md, qmc := byApp["minife"][test], byApp["minimd"][test], byApp["miniqmc"][test]
		if !(fe < md && md < qmc) {
			t.Errorf("%v: pass rates not ordered FE(%v) < MD(%v) < QMC(%v)", test, fe, md, qmc)
		}
	}
}

func TestE4HistogramPeaks(t *testing.T) {
	s := quickSuite()
	h := s.E4Fig3Histograms()
	// Peaks must sit near the paper's mean medians (26.30/24.74/60.91 ms).
	peaks := map[string][2]float64{
		"minife":  {25e-3, 28e-3},
		"minimd":  {24e-3, 26e-3},
		"miniqmc": {50e-3, 70e-3},
	}
	for app, band := range peaks {
		p := h[app].Peak()
		if p < band[0] || p > band[1] {
			t.Errorf("%s: histogram peak %v outside [%v, %v]", app, p, band[0], band[1])
		}
	}
}

func TestE5E9PercentileSeries(t *testing.T) {
	s := quickSuite()
	fe := s.E5Fig4MiniFEPercentiles()
	if len(fe.Values) != s.Config().Cluster.Iterations {
		t.Fatal("fig4 rows")
	}
	if fe.SkewAsymmetry() <= 0 {
		t.Error("MiniFE should be early-arrival skewed")
	}
	qmc := s.E9Fig8MiniQMCPercentiles()
	qm, _ := qmc.IQRStats(0, len(qmc.Values))
	fm, _ := fe.IQRStats(0, len(fe.Values))
	if qm < 20*fm {
		t.Errorf("QMC IQR %v not ≫ FE IQR %v", qm, fm)
	}
}

func TestE6E8LaggardClasses(t *testing.T) {
	s := quickSuite()
	f5 := s.E6Fig5MiniFELaggards()
	if f5.LaggardFraction < 0.15 || f5.LaggardFraction > 0.30 {
		t.Errorf("MiniFE laggard fraction %v", f5.LaggardFraction)
	}
	if f5.NoLaggard == nil || f5.WithLaggard == nil {
		t.Fatal("missing example histograms")
	}
	if f5.NoLaggard.Width != 50e-6 {
		t.Error("fig5 bin width")
	}

	f7 := s.E8Fig7MiniMDLaggards()
	if f7.LaggardFraction < 0.02 || f7.LaggardFraction > 0.09 {
		t.Errorf("MiniMD phase-2 laggard fraction %v", f7.LaggardFraction)
	}
	if f7.Phase1 == nil || f7.NoLaggard == nil || f7.WithLaggard == nil {
		t.Fatal("missing fig7 histograms")
	}
	if f7.NoLaggard.Width != 10e-6 || f7.Phase1.Width != 50e-6 {
		t.Error("fig7 bin widths")
	}
}

func TestE7TwoPhases(t *testing.T) {
	s := quickSuite()
	f6 := s.E7Fig6MiniMDPercentiles()
	if f6.PhaseBoundary != 19 {
		t.Errorf("phase boundary %d", f6.PhaseBoundary)
	}
	if f6.Phase1IQRMean < 3*f6.Phase2IQRMean {
		t.Errorf("phase1 IQR %v not ≫ phase2 %v", f6.Phase1IQRMean, f6.Phase2IQRMean)
	}
}

func TestE10Fig9Spread(t *testing.T) {
	s := quickSuite()
	h := s.E10Fig9MiniQMCHistogram()
	if h.Total != 48 {
		t.Fatalf("fig9 samples %d", h.Total)
	}
	// The within-iteration spread should populate well over 10 of the
	// 1 ms bins (the paper's Figure 9 shows ~30 ms breadth).
	if n := countNonZero(h.Counts); n < 8 {
		t.Errorf("fig9 populated bins %d, want >= 8", n)
	}
}

func TestE11MetricsOrdering(t *testing.T) {
	s := quickSuite()
	m := s.E11Metrics()
	// Reclaimable time ordering: QMC >> FE > MD (paper: 708/42.8/17.6).
	if !(m["miniqmc"].AvgReclaimableProcSec > 10*m["minife"].AvgReclaimableProcSec) {
		t.Errorf("QMC reclaimable %v not ≫ FE %v",
			m["miniqmc"].AvgReclaimableProcSec, m["minife"].AvgReclaimableProcSec)
	}
	if !(m["minife"].AvgReclaimableProcSec > m["minimd"].AvgReclaimableProcSec) {
		t.Errorf("FE reclaimable %v not > MD %v",
			m["minife"].AvgReclaimableProcSec, m["minimd"].AvgReclaimableProcSec)
	}
}

func TestE12OverlapShape(t *testing.T) {
	s := quickSuite()
	res := s.E12Overlap()
	overlap := func(app, strategy string) float64 {
		for _, r := range res[app] {
			if r.Strategy == strategy {
				return r.MeanOverlapSec
			}
		}
		t.Fatalf("strategy %s missing for %s", strategy, app)
		return 0
	}
	// Fine-grained early-bird helps QMC most, MD least (Section 5).
	qmc, fe, md := overlap("miniqmc", "finegrained"), overlap("minife", "finegrained"), overlap("minimd", "finegrained")
	if !(qmc > fe && fe > md) {
		t.Errorf("fine-grained overlap not ordered QMC(%v) > FE(%v) > MD(%v)", qmc, fe, md)
	}
	// The bulk baseline always reports zero overlap against itself.
	for _, app := range AppNames {
		for _, r := range res[app] {
			if r.Strategy == "bulk" && (r.MeanOverlapSec > 1e-12 || r.MeanOverlapSec < -1e-12) {
				t.Errorf("%s: bulk self-overlap %v", app, r.MeanOverlapSec)
			}
		}
	}
}

func TestWriteReportMentionsEverything(t *testing.T) {
	s := quickSuite()
	var buf bytes.Buffer
	s.WriteReport(&buf)
	out := buf.String()
	for _, want := range []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12",
		"Table 1", "Figure 3", "Figure 9", "paper 22.4%", "paper 4.8%",
		"minife", "minimd", "miniqmc", "bulk", "finegrained", "binned",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSortedApps(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedApps(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("sorted = %v", got)
	}
}
