package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestDistSweepFamiliesPresent(t *testing.T) {
	s := quickSuite()
	sweep := s.DistSweep(DefaultDistSweep())
	for _, family := range []string{"normal", "single-laggard", "uniform"} {
		if len(sweep[family]) == 0 {
			t.Fatalf("family %s missing", family)
		}
	}
}

func TestDistSweepNormalOverlapGrowsWithSigma(t *testing.T) {
	s := quickSuite()
	sweep := s.DistSweep(DefaultDistSweep())
	pts := sweep["normal"]
	for i := 1; i < len(pts); i++ {
		if pts[i].FineOverlapSec < pts[i-1].FineOverlapSec {
			t.Errorf("fine overlap not monotone in sigma: %v then %v",
				pts[i-1].FineOverlapSec, pts[i].FineOverlapSec)
		}
		if pts[i].PotentialSec <= pts[i-1].PotentialSec {
			t.Errorf("potential not monotone in sigma")
		}
	}
}

func TestDistSweepLaggardMatchesFinepointsIntuition(t *testing.T) {
	// Under the single-laggard assumption, all but one partition can ship
	// while the laggard computes: the fine-grained overlap should approach
	// min(lag, transfer time of n-1 partitions) as the lag grows.
	s := quickSuite()
	sweep := s.DistSweep(DefaultDistSweep())
	pts := sweep["single-laggard"]
	last := pts[len(pts)-1] // +25 ms laggard
	f := s.Config().Fabric
	fullTransfer := f.TransferTime(s.Config().BytesPerPartition * 47)
	if last.FineOverlapSec < 0.8*fullTransfer {
		t.Errorf("dominant laggard overlap %v, want >= 80%% of the 47-partition transfer %v",
			last.FineOverlapSec, fullTransfer)
	}
	// Sub-threshold laggard (0.5 ms): overlap bounded by the lag itself.
	first := pts[0]
	if first.FineOverlapSec > 0.6e-3 {
		t.Errorf("tiny laggard yielded %v overlap, want <= lag", first.FineOverlapSec)
	}
}

func TestDistSweepWindowBoundsOverlap(t *testing.T) {
	// The achieved overlap is bounded by both the arrival window (the
	// link cannot hide more transfer time than exists before the last
	// arrival) and the transfer time of the n-1 early partitions.
	s := quickSuite()
	sweep := s.DistSweep(DefaultDistSweep())
	f := s.Config().Fabric
	fullTransfer := f.TransferTime(s.Config().BytesPerPartition * 47)
	for family, pts := range sweep {
		for _, p := range pts {
			if p.FineOverlapSec > p.WindowSec+1e-4 {
				t.Errorf("%s/%s: overlap %v exceeds arrival window %v",
					family, p.Label, p.FineOverlapSec, p.WindowSec)
			}
			if p.FineOverlapSec > fullTransfer+1e-4 {
				t.Errorf("%s/%s: overlap %v exceeds 47-partition transfer %v",
					family, p.Label, p.FineOverlapSec, fullTransfer)
			}
		}
	}
}

func TestWriteDistSweepReport(t *testing.T) {
	s := quickSuite()
	var buf bytes.Buffer
	s.WriteDistSweepReport(&buf, DefaultDistSweep())
	out := buf.String()
	for _, want := range []string{"D1", "normal", "single-laggard", "uniform", "potential"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
