package cliopts

import (
	"flag"
	"io"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
)

// newFlagSet returns a quiet FlagSet so expected parse errors don't spam
// test output.
func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestAppFlag(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
		err  bool
	}{
		{"unset", nil, "", false},
		{"minife", []string{"-app", "minife"}, "minife", false},
		{"minimd", []string{"-app", "minimd"}, "minimd", false},
		{"miniqmc", []string{"-app", "miniqmc"}, "miniqmc", false},
		{"unknown app", []string{"-app", "lulesh"}, "", true},
		{"empty app", []string{"-app", ""}, "", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := newFlagSet()
			app := App(fs)
			err := fs.Parse(tc.args)
			if tc.err {
				if err == nil {
					t.Fatalf("Parse(%v): expected error", tc.args)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if app.Name != tc.want {
				t.Errorf("app = %q, want %q", app.Name, tc.want)
			}
		})
	}
}

func TestGeometryFlag(t *testing.T) {
	cases := []struct {
		name string
		text string
		want cluster.Config
		err  bool
	}{
		{"paper", "paper", cluster.DefaultConfig(), false},
		{"quick", "quick", cluster.SmallConfig(), false},
		{"huge", "huge", cluster.HugeConfig(), false},
		{"explicit", "3x4x60x48", cluster.Config{Trials: 3, Ranks: 4, Iterations: 60, Threads: 48, Seed: 1}, false},
		{"explicit small", "1x2x8x16", cluster.Config{Trials: 1, Ranks: 2, Iterations: 8, Threads: 16, Seed: 1}, false},
		{"whitespace", " quick ", cluster.SmallConfig(), false},
		{"seeded paper", "paper@7", seeded(cluster.DefaultConfig(), 7), false},
		{"seeded quick", "quick@2", seeded(cluster.SmallConfig(), 2), false},
		{"seeded explicit", "3x4x60x48@9", cluster.Config{Trials: 3, Ranks: 4, Iterations: 60, Threads: 48, Seed: 9}, false},
		{"explicit default seed suffix", "3x4x60x48@1", cluster.Config{Trials: 3, Ranks: 4, Iterations: 60, Threads: 48, Seed: 1}, false},
		{"seeded whitespace", " paper @ 7 ", seeded(cluster.DefaultConfig(), 7), false},
		{"bad seed", "paper@x", cluster.Config{}, true},
		{"negative seed", "paper@-1", cluster.Config{}, true},
		{"empty seed", "paper@", cluster.Config{}, true},
		{"double seed", "paper@1@2", cluster.Config{}, true},
		{"too few dims", "3x4x60", cluster.Config{}, true},
		{"too many dims", "3x4x60x48x2", cluster.Config{}, true},
		{"non-numeric", "ax4x60x48", cluster.Config{}, true},
		{"zero dim", "0x4x60x48", cluster.Config{}, true},
		{"negative dim", "3x-4x60x48", cluster.Config{}, true},
		{"unknown name", "gigantic", cluster.Config{}, true},
		{"empty", "", cluster.Config{}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := newFlagSet()
			geom := Geometry(fs)
			err := fs.Parse([]string{"-geometry", tc.text})
			if tc.err {
				if err == nil {
					t.Fatalf("Parse(-geometry %q): expected error", tc.text)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !geom.IsSet {
				t.Error("IsSet = false after an explicit -geometry")
			}
			if geom.Config != tc.want {
				t.Errorf("geometry = %+v, want %+v", geom.Config, tc.want)
			}
			// The String/Parse round trip holds for every accepted value.
			back, err := ParseGeometry(geom.String())
			if err != nil {
				t.Fatalf("round trip of %q: %v", geom.String(), err)
			}
			if back != geom.Config {
				t.Errorf("round trip of %q = %+v, want %+v", geom.String(), back, geom.Config)
			}
		})
	}
	// Unset: zero config, IsSet false, empty String.
	fs := newFlagSet()
	geom := Geometry(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if geom.IsSet || geom.Config != (cluster.Config{}) || geom.String() != "" {
		t.Errorf("unset -geometry = %+v (set=%v, %q), want zero", geom.Config, geom.IsSet, geom.String())
	}
}

// seeded returns cfg with its seed replaced.
func seeded(cfg cluster.Config, seed uint64) cluster.Config {
	cfg.Seed = seed
	return cfg
}

func TestFormatGeometry(t *testing.T) {
	cases := map[string]cluster.Config{
		"paper":       cluster.DefaultConfig(),
		"quick":       cluster.SmallConfig(),
		"huge":        cluster.HugeConfig(),
		"2x4x10x48":   {Trials: 2, Ranks: 4, Iterations: 10, Threads: 48, Seed: 1},
		"paper@7":     seeded(cluster.DefaultConfig(), 7),
		"huge@3":      seeded(cluster.HugeConfig(), 3),
		"2x4x10x48@9": {Trials: 2, Ranks: 4, Iterations: 10, Threads: 48, Seed: 9},
	}
	for want, cfg := range cases {
		if got := FormatGeometry(cfg); got != want {
			t.Errorf("FormatGeometry(%+v) = %q, want %q", cfg, got, want)
		}
	}
}

// TestFormatGeometrySeedRoundTrip is the regression test for the
// seed-dropping bug: FormatGeometry matched the named shapes by full
// struct equality, so a paper-shaped config with a non-default seed fell
// through to the bare TxRxIxT form and ParseGeometry forced the seed
// back to 1. Every config — named shape or explicit, any seed — must now
// survive String() -> Set() unchanged.
func TestFormatGeometrySeedRoundTrip(t *testing.T) {
	cfgs := []cluster.Config{
		cluster.DefaultConfig(),
		seeded(cluster.DefaultConfig(), 7),
		seeded(cluster.SmallConfig(), 42),
		seeded(cluster.HugeConfig(), 2),
		{Trials: 2, Ranks: 4, Iterations: 10, Threads: 48, Seed: 1},
		{Trials: 2, Ranks: 4, Iterations: 10, Threads: 48, Seed: 12345},
	}
	for _, cfg := range cfgs {
		v := &GeometryValue{Config: cfg, IsSet: true}
		var back GeometryValue
		if err := back.Set(v.String()); err != nil {
			t.Fatalf("round trip of %+v via %q: %v", cfg, v.String(), err)
		}
		if back.Config != cfg {
			t.Errorf("round trip of %q = %+v, want %+v (seed dropped?)", v.String(), back.Config, cfg)
		}
	}
}

func TestDLBFlag(t *testing.T) {
	cases := []struct {
		name string
		text string
		want dlb.Spec
		err  bool
	}{
		{"static", "static", dlb.Spec{Policy: dlb.PolicyStatic}, false},
		{"lewi", "lewi", dlb.Spec{Policy: dlb.PolicyLeWI}, false},
		{"lewi params", "lewi:factor=1.5,lend=0.25",
			dlb.Spec{Policy: dlb.PolicyLeWI, LaggardFactor: 1.5, MaxLendFraction: 0.25}, false},
		{"drom", "drom", dlb.Spec{Policy: dlb.PolicyDROM}, false},
		{"drom reaction", "drom:reaction=2", dlb.Spec{Policy: dlb.PolicyDROM, ReactionIters: 2}, false},
		{"unknown policy", "nope", dlb.Spec{}, true},
		{"cross parameter", "lewi:reaction=3", dlb.Spec{}, true},
		{"drom with factor", "drom:factor=2", dlb.Spec{}, true},
		{"malformed parameter", "lewi:factor", dlb.Spec{}, true},
		{"bad number", "lewi:factor=abc", dlb.Spec{}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := newFlagSet()
			v := DLB(fs)
			err := fs.Parse([]string{"-dlb", tc.text})
			if tc.err {
				if err == nil {
					t.Fatalf("Parse(-dlb %q): expected error", tc.text)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !v.IsSet {
				t.Error("IsSet = false after an explicit -dlb")
			}
			if v.Spec != tc.want {
				t.Errorf("dlb = %+v, want %+v", v.Spec, tc.want)
			}
		})
	}
	// Unset: static, IsSet false — but String still renders "static" so
	// the flag's default reads correctly in -help output.
	fs := newFlagSet()
	v := DLB(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if v.IsSet || !v.Spec.IsStatic() || v.String() != "static" {
		t.Errorf("unset -dlb = %+v (set=%v, %q), want static", v.Spec, v.IsSet, v.String())
	}
}

// TestStrategiesFlag pins the shared -strategies switch registration.
func TestStrategiesFlag(t *testing.T) {
	fs := newFlagSet()
	s := Strategies(fs)
	if err := fs.Parse([]string{"-strategies"}); err != nil {
		t.Fatal(err)
	}
	if !*s {
		t.Error("-strategies did not set the switch")
	}
}

// TestSharedRegistration proves one FlagSet can carry the whole shared
// vocabulary at once — the shape every command uses.
func TestSharedRegistration(t *testing.T) {
	fs := newFlagSet()
	app, geom, policy, strategies := App(fs), Geometry(fs), DLB(fs), Strategies(fs)
	err := fs.Parse([]string{
		"-app", "minimd", "-geometry", "2x4x10x48", "-dlb", "drom:reaction=2", "-strategies"})
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "minimd" {
		t.Errorf("app = %q", app.Name)
	}
	if want := (cluster.Config{Trials: 2, Ranks: 4, Iterations: 10, Threads: 48, Seed: 1}); geom.Config != want {
		t.Errorf("geometry = %+v", geom.Config)
	}
	if want := (dlb.Spec{Policy: dlb.PolicyDROM, ReactionIters: 2}); policy.Spec != want {
		t.Errorf("dlb = %+v", policy.Spec)
	}
	if !*strategies {
		t.Error("strategies unset")
	}
}
