// Package cliopts is the shared flag vocabulary of the earlybird
// commands. cmd/earlybird, cmd/earlybirdd and cmd/repro register their
// -app, -geometry, -strategies and -dlb flags through these helpers, so
// each flag has one syntax, one usage string and one set of error
// messages everywhere — and bad values fail at flag-parse time instead
// of deep inside the command body.
package cliopts

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/workload"
)

// AppValue holds a validated -app selection; the empty Name means the
// flag was not set.
type AppValue struct {
	Name string
}

// String renders the current selection (flag.Value).
func (v *AppValue) String() string { return v.Name }

// Set validates the name against the workload registry at flag-parse
// time (flag.Value), so an unknown app fails before any work starts.
func (v *AppValue) Set(s string) error {
	if _, err := workload.ByName(s); err != nil {
		return err
	}
	v.Name = s
	return nil
}

// App registers the shared -app flag on fs.
func App(fs *flag.FlagSet) *AppValue {
	v := &AppValue{}
	fs.Var(v, "app", "built-in application (minife|minimd|miniqmc)")
	return v
}

// GeometryValue holds a -geometry selection. IsSet distinguishes an
// explicit choice from the command's default, so commands can detect
// conflicts with their legacy sizing flags (-quick, -trials, -iters).
type GeometryValue struct {
	Config cluster.Config
	IsSet  bool
}

// String renders the current selection in ParseGeometry's syntax
// (flag.Value); unset renders empty.
func (v *GeometryValue) String() string {
	if !v.IsSet {
		return ""
	}
	return FormatGeometry(v.Config)
}

// Set parses and validates the geometry at flag-parse time (flag.Value).
func (v *GeometryValue) Set(s string) error {
	cfg, err := ParseGeometry(s)
	if err != nil {
		return err
	}
	v.Config = cfg
	v.IsSet = true
	return nil
}

// Geometry registers the shared -geometry flag on fs.
func Geometry(fs *flag.FlagSet) *GeometryValue {
	v := &GeometryValue{}
	fs.Var(v, "geometry", "study geometry: paper | quick | huge | TRIALSxRANKSxITERSxTHREADS, with an optional @SEED suffix (e.g. 3x4x60x48, paper@7)")
	return v
}

// ParseGeometry reads the -geometry syntax: a named shape ("paper",
// "quick", "huge") or an explicit TRIALSxRANKSxITERSxTHREADS product
// like 3x4x60x48, optionally followed by @SEED ("paper@7",
// "3x4x60x48@2"). Without the suffix the seed is 1, the named shapes'
// default.
func ParseGeometry(text string) (cluster.Config, error) {
	text = strings.TrimSpace(text)
	seed := uint64(1)
	if base, suffix, ok := strings.Cut(text, "@"); ok {
		n, err := strconv.ParseUint(strings.TrimSpace(suffix), 10, 64)
		if err != nil {
			return cluster.Config{}, fmt.Errorf("cliopts: geometry %q: bad seed %q", text, suffix)
		}
		seed = n
		text = strings.TrimSpace(base)
	}
	var cfg cluster.Config
	switch text {
	case "paper":
		cfg = cluster.DefaultConfig()
	case "quick":
		cfg = cluster.SmallConfig()
	case "huge":
		cfg = cluster.HugeConfig()
	default:
		parts := strings.Split(text, "x")
		if len(parts) != 4 {
			return cluster.Config{}, fmt.Errorf("cliopts: geometry %q: want paper, quick, huge or TRIALSxRANKSxITERSxTHREADS, optionally @SEED", text)
		}
		dims := make([]int, 4)
		for i, p := range parts {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return cluster.Config{}, fmt.Errorf("cliopts: geometry %q: bad dimension %q", text, p)
			}
			dims[i] = n
		}
		cfg = cluster.Config{Trials: dims[0], Ranks: dims[1], Iterations: dims[2], Threads: dims[3]}
	}
	cfg.Seed = seed
	if err := cfg.Validate(); err != nil {
		return cluster.Config{}, err
	}
	return cfg, nil
}

// FormatGeometry renders cfg in ParseGeometry's syntax, preferring the
// named shapes where the dimensions apply and appending @SEED for
// non-default seeds — so a paper-shaped config with Seed 7 renders as
// "paper@7" and the seed survives the ParseGeometry round trip instead
// of being silently reset to 1.
func FormatGeometry(cfg cluster.Config) string {
	dims := cfg
	dims.Seed = 1
	var base string
	switch dims {
	case cluster.DefaultConfig():
		base = "paper"
	case cluster.SmallConfig():
		base = "quick"
	case cluster.HugeConfig():
		base = "huge"
	default:
		base = fmt.Sprintf("%dx%dx%dx%d", cfg.Trials, cfg.Ranks, cfg.Iterations, cfg.Threads)
	}
	if cfg.Seed != 1 {
		return fmt.Sprintf("%s@%d", base, cfg.Seed)
	}
	return base
}

// DLBValue holds a -dlb selection, parsed and validated by dlb.Parse at
// flag-parse time. The zero value is the static policy; IsSet
// distinguishes an explicit "static" from an absent flag (they resolve
// identically, but commands refuse explicit -dlb where it cannot apply,
// e.g. over a pre-collected dataset).
type DLBValue struct {
	Spec  dlb.Spec
	IsSet bool
}

// String renders the current policy in dlb.Parse's syntax (flag.Value).
func (v *DLBValue) String() string { return v.Spec.String() }

// Set parses and validates the policy at flag-parse time (flag.Value).
func (v *DLBValue) Set(s string) error {
	spec, err := dlb.Parse(s)
	if err != nil {
		return err
	}
	v.Spec = spec
	v.IsSet = true
	return nil
}

// DLB registers the shared -dlb flag on fs.
func DLB(fs *flag.FlagSet) *DLBValue {
	v := &DLBValue{}
	fs.Var(v, "dlb", "runtime rebalancing policy: static | lewi[:factor=F,lend=L] | drom[:reaction=N]")
	return v
}

// Strategies registers the shared -strategies switch on fs.
func Strategies(fs *flag.FlagSet) *bool {
	return fs.Bool("strategies", false, "sweep the full delivery-strategy grid (optimizer frontier) instead of the three-strategy assessment")
}
