package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestRealMonotonic(t *testing.T) {
	c := NewReal()
	prev := c.Now(0)
	for i := 0; i < 100; i++ {
		now := c.Now(0)
		if now < prev {
			t.Fatalf("real clock went backwards: %v < %v", now, prev)
		}
		prev = now
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	if v.Now(0) != 0 {
		t.Fatal("virtual clock should start at zero")
	}
	v.Advance(5 * time.Millisecond)
	if got := v.Now(3); got != 5*time.Millisecond {
		t.Fatalf("Now = %v, want 5ms", got)
	}
	v.Advance(-time.Second) // ignored
	if got := v.Now(0); got != 5*time.Millisecond {
		t.Fatalf("negative advance changed time to %v", got)
	}
	v.Set(3 * time.Millisecond) // earlier, ignored
	if got := v.Now(0); got != 5*time.Millisecond {
		t.Fatalf("backwards Set changed time to %v", got)
	}
	v.Set(9 * time.Millisecond)
	if got := v.Now(0); got != 9*time.Millisecond {
		t.Fatalf("Set = %v, want 9ms", got)
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := v.Now(0); got != 8000*time.Nanosecond {
		t.Fatalf("concurrent advance lost updates: %v", got)
	}
}

func TestSkewedOffsetsPerCore(t *testing.T) {
	v := NewVirtual()
	v.Set(time.Millisecond)
	s := NewSkewed(v, []time.Duration{0, 100 * time.Microsecond, -50 * time.Microsecond})
	if got := s.Now(0); got != time.Millisecond {
		t.Fatalf("core 0: %v", got)
	}
	if got := s.Now(1); got != time.Millisecond+100*time.Microsecond {
		t.Fatalf("core 1: %v", got)
	}
	if got := s.Now(2); got != time.Millisecond-50*time.Microsecond {
		t.Fatalf("core 2: %v", got)
	}
	// Wraparound and negative cores are tolerated.
	if got := s.Now(3); got != time.Millisecond {
		t.Fatalf("core 3 (wrap): %v", got)
	}
	_ = s.Now(-1)
}

func TestSkewedEmptyOffsets(t *testing.T) {
	v := NewVirtual()
	s := NewSkewed(v, nil)
	if got := s.Now(5); got != 0 {
		t.Fatalf("empty offsets should behave as zero skew, got %v", got)
	}
}

// The paper's core measurement claim (Section 3.1): elapsed time computed
// on a single core is invariant under per-core clock offsets.
func TestComputeTimeCancelsSkew(t *testing.T) {
	v := NewVirtual()
	skew := NewSkewed(v, []time.Duration{123 * time.Microsecond, -77 * time.Microsecond})
	for core := 0; core < 2; core++ {
		start := skew.Now(core)
		v.Advance(26300 * time.Microsecond) // one MiniFE-like region
		end := skew.Now(core)
		if elapsed := end - start; elapsed != 26300*time.Microsecond {
			t.Fatalf("core %d: elapsed %v, want 26.3ms", core, elapsed)
		}
	}
	// Raw cross-core comparison, by contrast, is off by the skew delta.
	a := skew.Now(0)
	b := skew.Now(1)
	if a == b {
		t.Fatal("expected cross-core readings to disagree under skew")
	}
}
