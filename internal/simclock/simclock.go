// Package simclock abstracts the per-core monotonic clock the paper's
// instrumentation is built on.
//
// The paper measures with clock_gettime(CLOCK_MONOTONIC), which POSIX only
// guarantees to be monotonic per core: without the tsc_reliable CPU
// synchronisation (absent on the paper's test platform), raw timestamps are
// not comparable across cores, sockets, or nodes. The paper's workaround is
// to derive "compute time" — the difference between a thread's region-exit
// and region-enter timestamps taken on the same core — which cancels any
// constant per-core offset.
//
// This package provides three clocks:
//
//   - Real: the host monotonic clock (same reading on every core), for live
//     kernel runs.
//   - Skewed: wraps another clock and adds a fixed per-core offset,
//     modelling unsynchronised TSCs. Tests use it to prove the compute-time
//     subtraction cancels skew (experiment E13).
//   - Virtual: fully controllable logical time for deterministic tests.
package simclock

import (
	"sync"
	"time"
)

// Clock returns the current reading of the monotonic clock as observed
// from the given core. Readings from the same core are non-decreasing;
// readings from different cores need not be mutually consistent.
type Clock interface {
	Now(core int) time.Duration
}

// Real reads the host's monotonic clock. All cores observe the same
// reading (Go's runtime already folds the per-CPU TSC into a single
// monotonic timeline).
type Real struct {
	base time.Time
}

// NewReal returns a Real clock whose origin is the moment of the call.
func NewReal() *Real { return &Real{base: time.Now()} }

// Now implements Clock.
func (r *Real) Now(core int) time.Duration { return time.Since(r.base) }

// Skewed wraps an inner clock and adds a constant per-core offset,
// emulating a platform without tsc_reliable.
type Skewed struct {
	inner   Clock
	offsets []time.Duration
}

// NewSkewed wraps inner with the given per-core offsets. Cores beyond
// len(offsets) wrap around.
func NewSkewed(inner Clock, offsets []time.Duration) *Skewed {
	if len(offsets) == 0 {
		offsets = []time.Duration{0}
	}
	return &Skewed{inner: inner, offsets: offsets}
}

// Now implements Clock.
func (s *Skewed) Now(core int) time.Duration {
	if core < 0 {
		core = -core
	}
	return s.inner.Now(core) + s.offsets[core%len(s.offsets)]
}

// Virtual is a logical clock advanced explicitly by the simulation.
// It is safe for concurrent use.
type Virtual struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtual returns a Virtual clock at time zero.
func NewVirtual() *Virtual { return &Virtual{} }

// Now implements Clock. Every core observes the same logical time.
func (v *Virtual) Now(core int) time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves logical time forward by d (d must be non-negative;
// negative advances are ignored to preserve monotonicity).
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.mu.Lock()
	v.now += d
	v.mu.Unlock()
}

// Set jumps logical time to t if t is later than the current time;
// earlier values are ignored to preserve monotonicity.
func (v *Virtual) Set(t time.Duration) {
	v.mu.Lock()
	if t > v.now {
		v.now = t
	}
	v.mu.Unlock()
}
