package miniapps

import (
	"math"

	"earlybird/internal/omp"
	"earlybird/internal/rng"
	"earlybird/internal/simclock"
	"earlybird/internal/trace"
)

// MiniMDApp is the molecular-dynamics proxy: atoms on a jittered cubic
// lattice with cell-list neighbour search, with the timed region being
// the Lennard-Jones force computation — "the most computationally
// intensive section" per Section 3.2 (the paper used a 128^3 compute
// volume).
type MiniMDApp struct {
	cells     int     // cells per dimension
	cellSize  float64 // box is cells*cellSize wide
	cutoff2   float64
	pos       [][3]float64
	force     [][3]float64
	cellStart []int32 // CSR-style cell index
	cellAtoms []int32
}

// NewMiniMD places atomsPerCell atoms in each of cells^3 cells with
// deterministic jitter from seed.
func NewMiniMD(cells, atomsPerCell int, seed uint64) *MiniMDApp {
	if cells < 1 || atomsPerCell < 1 {
		panic("miniapps: cells and atomsPerCell must be positive")
	}
	const cellSize = 1.0
	a := &MiniMDApp{
		cells:    cells,
		cellSize: cellSize,
		cutoff2:  cellSize * cellSize, // interact within one cell width
	}
	s := rng.New(seed)
	n := cells * cells * cells * atomsPerCell
	a.pos = make([][3]float64, 0, n)
	for k := 0; k < cells; k++ {
		for j := 0; j < cells; j++ {
			for i := 0; i < cells; i++ {
				for m := 0; m < atomsPerCell; m++ {
					a.pos = append(a.pos, [3]float64{
						(float64(i) + 0.15 + 0.7*s.Float64()) * cellSize,
						(float64(j) + 0.15 + 0.7*s.Float64()) * cellSize,
						(float64(k) + 0.15 + 0.7*s.Float64()) * cellSize,
					})
				}
			}
		}
	}
	a.force = make([][3]float64, len(a.pos))
	a.buildCells()
	return a
}

// buildCells bins atoms into cells (counting sort).
func (a *MiniMDApp) buildCells() {
	nc := a.cells * a.cells * a.cells
	counts := make([]int32, nc+1)
	cellOf := make([]int32, len(a.pos))
	for i, p := range a.pos {
		c := a.cellIndex(p)
		cellOf[i] = c
		counts[c+1]++
	}
	for c := 1; c <= nc; c++ {
		counts[c] += counts[c-1]
	}
	a.cellStart = counts
	a.cellAtoms = make([]int32, len(a.pos))
	cursor := make([]int32, nc)
	for i := range a.pos {
		c := cellOf[i]
		a.cellAtoms[a.cellStart[c]+cursor[c]] = int32(i)
		cursor[c]++
	}
}

func (a *MiniMDApp) cellIndex(p [3]float64) int32 {
	clampf := func(x float64) int {
		c := int(x / a.cellSize)
		if c < 0 {
			c = 0
		}
		if c >= a.cells {
			c = a.cells - 1
		}
		return c
	}
	return int32((clampf(p[2])*a.cells+clampf(p[1]))*a.cells + clampf(p[0]))
}

// Name implements App.
func (a *MiniMDApp) Name() string { return "minimd" }

// Atoms returns the atom count.
func (a *MiniMDApp) Atoms() int { return len(a.pos) }

// ljForce accumulates the Lennard-Jones force on atom i from atom j
// (one-sided; the loop visits both orderings as LAMMPS' half-neighbour
// optimisation is not the point here).
func (a *MiniMDApp) ljForce(i, j int32) (fx, fy, fz float64) {
	dx := a.pos[i][0] - a.pos[j][0]
	dy := a.pos[i][1] - a.pos[j][1]
	dz := a.pos[i][2] - a.pos[j][2]
	r2 := dx*dx + dy*dy + dz*dz
	if r2 >= a.cutoff2 || r2 == 0 {
		return 0, 0, 0
	}
	// Standard LJ with sigma=0.3, epsilon=1: F = 24 eps (2 (s/r)^12 - (s/r)^6) / r^2 * dr.
	const sigma2 = 0.09
	sr2 := sigma2 / r2
	sr6 := sr2 * sr2 * sr2
	f := 24 * (2*sr6*sr6 - sr6) / r2
	return f * dx, f * dy, f * dz
}

// computeForcesRange computes forces for the atoms of one cell.
func (a *MiniMDApp) computeForcesCell(c int) {
	cz := c / (a.cells * a.cells)
	cy := (c / a.cells) % a.cells
	cx := c % a.cells
	for s := a.cellStart[c]; s < a.cellStart[c+1]; s++ {
		i := a.cellAtoms[s]
		var fx, fy, fz float64
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny, nz := cx+dx, cy+dy, cz+dz
					if nx < 0 || nx >= a.cells || ny < 0 || ny >= a.cells || nz < 0 || nz >= a.cells {
						continue
					}
					nc := (nz*a.cells+ny)*a.cells + nx
					for t := a.cellStart[nc]; t < a.cellStart[nc+1]; t++ {
						j := a.cellAtoms[t]
						if j == i {
							continue
						}
						gx, gy, gz := a.ljForce(i, j)
						fx += gx
						fy += gy
						fz += gz
					}
				}
			}
		}
		a.force[i] = [3]float64{fx, fy, fz}
	}
}

// RunIteration implements App: one instrumented Lennard-Jones force
// sweep, work-shared over cells.
func (a *MiniMDApp) RunIteration(pool *omp.Pool, clock simclock.Clock, rec *trace.Recorder, iter int) {
	nc := a.cells * a.cells * a.cells
	instrumented(pool, clock, rec, iter, func(tc *omp.ThreadContext) {
		tc.For(nc, omp.Static, 0, func(c int) {
			a.computeForcesCell(c)
		})
	})
}

// TotalForce returns the component-wise sum of all forces; by Newton's
// third law it should vanish for a symmetric pair interaction.
func (a *MiniMDApp) TotalForce() [3]float64 {
	var sum [3]float64
	for _, f := range a.force {
		sum[0] += f[0]
		sum[1] += f[1]
		sum[2] += f[2]
	}
	return sum
}

// MaxForceNorm returns the largest per-atom force magnitude (sanity bound
// in tests).
func (a *MiniMDApp) MaxForceNorm() float64 {
	max := 0.0
	for _, f := range a.force {
		n := math.Sqrt(f[0]*f[0] + f[1]*f[1] + f[2]*f[2])
		if n > max {
			max = n
		}
	}
	return max
}

// ComputeForcesSerial runs the force sweep serially (reference for
// parallel-equivalence tests).
func (a *MiniMDApp) ComputeForcesSerial() {
	nc := a.cells * a.cells * a.cells
	for c := 0; c < nc; c++ {
		a.computeForcesCell(c)
	}
}

// Forces returns a copy of the force array.
func (a *MiniMDApp) Forces() [][3]float64 {
	out := make([][3]float64, len(a.force))
	copy(out, a.force)
	return out
}
