package miniapps

import (
	"math"
	"testing"

	"earlybird/internal/omp"
	"earlybird/internal/simclock"
)

func TestMiniFEMatVecCorrectness(t *testing.T) {
	// Interior rows of the stencil: 26 - 26 neighbours each contributing
	// -x. With x = all ones, y = 26 - (#neighbours). Verify against a
	// brute-force dense product on a small mesh.
	a := NewMiniFE(4, 3, 2)
	for i := range a.x {
		a.x[i] = 1
	}
	y := a.MatVec()
	n := a.Rows()
	if n != 24 {
		t.Fatalf("rows = %d", n)
	}
	// Dense reference.
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
	}
	for row := 0; row < n; row++ {
		for p := a.rowPtr[row]; p < a.rowPtr[row+1]; p++ {
			dense[row][a.colIdx[p]] += a.vals[p]
		}
	}
	for row := 0; row < n; row++ {
		want := 0.0
		for col := 0; col < n; col++ {
			want += dense[row][col]
		}
		if math.Abs(y[row]-want) > 1e-12 {
			t.Fatalf("row %d: y = %v, want %v", row, y[row], want)
		}
	}
}

func TestMiniFEDiagonalDominance(t *testing.T) {
	a := NewMiniFE(3, 3, 3)
	for row := 0; row < a.Rows(); row++ {
		var diag, off float64
		for p := a.rowPtr[row]; p < a.rowPtr[row+1]; p++ {
			if int(a.colIdx[p]) == row {
				diag += a.vals[p]
			} else {
				off += math.Abs(a.vals[p])
			}
		}
		if diag <= 0 || diag < off-26 {
			t.Fatalf("row %d: diag %v off %v", row, diag, off)
		}
	}
}

func TestMiniFEParallelMatchesSerial(t *testing.T) {
	serial := NewMiniFE(6, 6, 6)
	want := serial.MatVec()

	par := NewMiniFE(6, 6, 6)
	pool := omp.NewPool(4)
	defer pool.Close()
	clock := simclock.NewReal()
	rec := Run(par, pool, clock, 1)
	if rec.Iterations() != 1 {
		t.Fatal("recorder geometry")
	}
	for i := range want {
		if math.Abs(par.y[i]-want[i]) > 1e-12 {
			t.Fatalf("row %d: parallel %v, serial %v", i, par.y[i], want[i])
		}
	}
}

func TestMiniFERecordsPlausibleTimes(t *testing.T) {
	a := NewMiniFE(8, 8, 8)
	pool := omp.NewPool(3)
	defer pool.Close()
	rec := Run(a, pool, simclock.NewReal(), 2)
	for iter := 0; iter < 2; iter++ {
		for th := 0; th < 3; th++ {
			ct := rec.ComputeTime(iter, th)
			if ct <= 0 {
				t.Errorf("iter %d thread %d: compute time %v", iter, th, ct)
			}
		}
	}
}

func TestMiniMDNewtonsThirdLaw(t *testing.T) {
	a := NewMiniMD(4, 3, 11)
	a.ComputeForcesSerial()
	total := a.TotalForce()
	// The summed pair forces cancel (up to FP error scaled by magnitude).
	scale := a.MaxForceNorm() * float64(a.Atoms())
	if scale == 0 {
		t.Fatal("no forces computed")
	}
	for dim, f := range total {
		if math.Abs(f) > 1e-9*scale {
			t.Errorf("net force dim %d = %v (scale %v): momentum not conserved", dim, f, scale)
		}
	}
}

func TestMiniMDParallelMatchesSerial(t *testing.T) {
	ref := NewMiniMD(4, 2, 5)
	ref.ComputeForcesSerial()
	want := ref.Forces()

	par := NewMiniMD(4, 2, 5)
	pool := omp.NewPool(5)
	defer pool.Close()
	Run(par, pool, simclock.NewReal(), 1)
	got := par.Forces()
	for i := range want {
		for d := 0; d < 3; d++ {
			if math.Abs(got[i][d]-want[i][d]) > 1e-12 {
				t.Fatalf("atom %d dim %d: %v vs %v", i, d, got[i][d], want[i][d])
			}
		}
	}
}

func TestMiniMDDeterministicSetup(t *testing.T) {
	a := NewMiniMD(3, 2, 7)
	b := NewMiniMD(3, 2, 7)
	for i := range a.pos {
		if a.pos[i] != b.pos[i] {
			t.Fatal("same seed produced different configurations")
		}
	}
	c := NewMiniMD(3, 2, 8)
	if a.pos[0] == c.pos[0] {
		t.Fatal("different seeds produced identical configurations")
	}
}

func TestMiniMDCellBinningCoversAllAtoms(t *testing.T) {
	a := NewMiniMD(5, 4, 3)
	seen := make(map[int32]bool)
	nc := a.cells * a.cells * a.cells
	for c := 0; c < nc; c++ {
		for s := a.cellStart[c]; s < a.cellStart[c+1]; s++ {
			i := a.cellAtoms[s]
			if seen[i] {
				t.Fatalf("atom %d binned twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != a.Atoms() {
		t.Fatalf("binned %d atoms, want %d", len(seen), a.Atoms())
	}
}

func TestMiniQMCAcceptanceReasonable(t *testing.T) {
	a := NewMiniQMC(8, 200, 3)
	pool := omp.NewPool(4)
	defer pool.Close()
	Run(a, pool, simclock.NewReal(), 3)
	acc := a.Accepted()
	if len(acc) != 4 {
		t.Fatalf("acceptance counters = %d movers", len(acc))
	}
	totalSteps := 0.0
	totalAcc := 0.0
	for _, c := range acc {
		totalAcc += float64(c)
	}
	totalSteps = 4 * 3 * 200 // upper bound; per-mover steps vary ±50%
	rate := totalAcc / totalSteps
	if rate <= 0.05 || rate >= 1.0 {
		t.Errorf("acceptance rate %v implausible for Metropolis walk", rate)
	}
}

func TestMiniQMCMoverDeterminism(t *testing.T) {
	a := NewMiniQMC(6, 100, 9)
	x := a.runMover(2, 5, 100)
	y := a.runMover(2, 5, 100)
	if x != y {
		t.Fatal("same mover coordinates gave different acceptance counts")
	}
	z := a.runMover(3, 5, 100)
	w := a.runMover(2, 6, 100)
	if x == z && x == w {
		t.Fatal("distinct movers/iterations suspiciously identical")
	}
}

func TestRunStudyAssemblesDataset(t *testing.T) {
	pool := omp.NewPool(2)
	defer pool.Close()
	d := RunStudy(func(trial, rank int) App {
		return NewMiniQMC(4, 20, uint64(trial*10+rank))
	}, pool, simclock.NewReal(), 2, 2, 3)
	if d.App != "miniqmc" || d.Trials != 2 || d.Ranks != 2 || d.Iterations != 3 || d.Threads != 2 {
		t.Fatalf("dataset geometry %+v", d)
	}
	for _, x := range d.AllSamples() {
		if x <= 0 {
			t.Fatal("non-positive live sample")
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMiniFE(0, 1, 1) },
		func() { NewMiniMD(0, 1, 1) },
		func() { NewMiniQMC(0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid constructor args")
				}
			}()
			fn()
		}()
	}
}
