package miniapps

import (
	"earlybird/internal/omp"
	"earlybird/internal/simclock"
	"earlybird/internal/trace"
)

// MiniFEApp is the finite-element proxy: a 27-point-stencil sparse matrix
// in CSR format over an nx x ny x nz hexahedral mesh, with the timed
// region being the matrix-vector product y = A x — "the linear algebra
// function of highest order" per Section 3.2 (the paper ran 200^3 matrix
// elements per process).
type MiniFEApp struct {
	nx, ny, nz int
	rowPtr     []int32
	colIdx     []int32
	vals       []float64
	x, y       []float64
}

// NewMiniFE assembles the stencil matrix for the given mesh dimensions.
func NewMiniFE(nx, ny, nz int) *MiniFEApp {
	if nx < 1 || ny < 1 || nz < 1 {
		panic("miniapps: mesh dimensions must be positive")
	}
	n := nx * ny * nz
	a := &MiniFEApp{nx: nx, ny: ny, nz: nz}
	a.rowPtr = make([]int32, n+1)
	a.colIdx = make([]int32, 0, n*27)
	a.vals = make([]float64, 0, n*27)
	idx := func(i, j, k int) int32 { return int32((k*ny+j)*nx + i) }
	nnz := int32(0)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				row := idx(i, j, k)
				for dk := -1; dk <= 1; dk++ {
					for dj := -1; dj <= 1; dj++ {
						for di := -1; di <= 1; di++ {
							ii, jj, kk := i+di, j+dj, k+dk
							if ii < 0 || ii >= nx || jj < 0 || jj >= ny || kk < 0 || kk >= nz {
								continue
							}
							col := idx(ii, jj, kk)
							v := -1.0
							if col == row {
								v = 26.0 // diagonally dominant stencil
							}
							a.colIdx = append(a.colIdx, col)
							a.vals = append(a.vals, v)
							nnz++
						}
					}
				}
				a.rowPtr[row+1] = nnz
			}
		}
	}
	a.x = make([]float64, n)
	a.y = make([]float64, n)
	for i := range a.x {
		a.x[i] = 1.0 + float64(i%7)*0.125
	}
	return a
}

// Name implements App.
func (a *MiniFEApp) Name() string { return "minife" }

// Rows returns the matrix dimension.
func (a *MiniFEApp) Rows() int { return len(a.x) }

// RunIteration implements App: one instrumented mat-vec. Rows are shared
// dynamically in plane-sized chunks, mirroring MiniFE's outer loop over
// problem-space planes (the source of the paper's early arrivals).
func (a *MiniFEApp) RunIteration(pool *omp.Pool, clock simclock.Clock, rec *trace.Recorder, iter int) {
	planeRows := a.nx * a.ny
	instrumented(pool, clock, rec, iter, func(tc *omp.ThreadContext) {
		tc.For(a.nz, omp.Dynamic, 1, func(plane int) {
			lo := plane * planeRows
			hi := lo + planeRows
			for row := lo; row < hi; row++ {
				sum := 0.0
				for p := a.rowPtr[row]; p < a.rowPtr[row+1]; p++ {
					sum += a.vals[p] * a.x[a.colIdx[p]]
				}
				a.y[row] = sum
			}
		})
	})
}

// MatVec runs one un-instrumented product (for correctness tests) and
// returns the result vector.
func (a *MiniFEApp) MatVec() []float64 {
	for row := 0; row < len(a.y); row++ {
		sum := 0.0
		for p := a.rowPtr[row]; p < a.rowPtr[row+1]; p++ {
			sum += a.vals[p] * a.x[a.colIdx[p]]
		}
		a.y[row] = sum
	}
	out := make([]float64, len(a.y))
	copy(out, a.y)
	return out
}
