package miniapps

import (
	"math"

	"earlybird/internal/omp"
	"earlybird/internal/rng"
	"earlybird/internal/simclock"
	"earlybird/internal/trace"
)

// MiniQMCApp is the quantum Monte Carlo proxy: one "mover" per thread
// performs a Metropolis random walk of an electron configuration against
// a Gaussian-orbital trial wavefunction. The timed region is "the
// entirety of the computation for the individual threaded movers"
// (Section 3.2). Walk lengths are drawn per mover, giving the naturally
// wide arrival spread the paper observes for this class of application.
type MiniQMCApp struct {
	electrons int
	steps     int
	seed      uint64
	// acceptance counts per mover (observable for tests).
	accepted []int64
}

// NewMiniQMC configures movers with the given electron count and mean
// steps per iteration.
func NewMiniQMC(electrons, steps int, seed uint64) *MiniQMCApp {
	if electrons < 1 || steps < 1 {
		panic("miniapps: electrons and steps must be positive")
	}
	return &MiniQMCApp{electrons: electrons, steps: steps, seed: seed}
}

// Name implements App.
func (a *MiniQMCApp) Name() string { return "miniqmc" }

// psi evaluates a toy trial wavefunction: a product of Gaussian orbitals
// centred at lattice sites, plus a pair Jastrow factor.
func psi(conf [][3]float64) float64 {
	logPsi := 0.0
	for i, p := range conf {
		cx := float64(i % 3)
		cy := float64((i / 3) % 3)
		cz := float64(i / 9)
		dx, dy, dz := p[0]-cx, p[1]-cy, p[2]-cz
		logPsi -= 0.5 * (dx*dx + dy*dy + dz*dz)
	}
	for i := 0; i < len(conf); i++ {
		for j := i + 1; j < len(conf); j++ {
			dx := conf[i][0] - conf[j][0]
			dy := conf[i][1] - conf[j][1]
			dz := conf[i][2] - conf[j][2]
			r := math.Sqrt(dx*dx+dy*dy+dz*dz) + 1e-9
			logPsi += 0.5 * r / (1 + r) // simple Jastrow
		}
	}
	return logPsi
}

// runMover advances one mover's walk and returns the acceptance count.
func (a *MiniQMCApp) runMover(mover, iter, steps int) int64 {
	s := rng.New(a.seed).Child(uint64(mover), uint64(iter))
	conf := make([][3]float64, a.electrons)
	for i := range conf {
		conf[i] = [3]float64{s.Normal(float64(i%3), 0.3), s.Normal(float64((i/3)%3), 0.3), s.Normal(float64(i/9), 0.3)}
	}
	logPsi := psi(conf)
	var accepted int64
	for step := 0; step < steps; step++ {
		e := s.IntN(a.electrons)
		old := conf[e]
		conf[e][0] += s.Normal(0, 0.2)
		conf[e][1] += s.Normal(0, 0.2)
		conf[e][2] += s.Normal(0, 0.2)
		newLogPsi := psi(conf)
		// Metropolis on |psi|^2.
		if math.Log(s.Float64()+1e-300) < 2*(newLogPsi-logPsi) {
			logPsi = newLogPsi
			accepted++
		} else {
			conf[e] = old
		}
	}
	return accepted
}

// RunIteration implements App: each thread runs its own mover; walk
// lengths vary per mover and iteration (QMC branching), which is what
// spreads arrivals.
func (a *MiniQMCApp) RunIteration(pool *omp.Pool, clock simclock.Clock, rec *trace.Recorder, iter int) {
	n := pool.NumThreads()
	if a.accepted == nil {
		a.accepted = make([]int64, n)
	}
	instrumented(pool, clock, rec, iter, func(tc *omp.ThreadContext) {
		mover := tc.ThreadNum()
		// Per-mover step count: mean a.steps, spread +/-50%.
		s := rng.New(a.seed).Child(0xabcd, uint64(mover), uint64(iter))
		steps := int(float64(a.steps) * s.Uniform(0.5, 1.5))
		if steps < 1 {
			steps = 1
		}
		a.accepted[mover] += a.runMover(mover, iter, steps)
	})
}

// Accepted returns the per-mover acceptance counters.
func (a *MiniQMCApp) Accepted() []int64 { return a.accepted }
