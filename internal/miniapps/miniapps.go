// Package miniapps implements live, instrumented equivalents of the three
// proxy applications the paper profiles: MiniFE (unstructured-mesh finite
// elements; the timed region is the sparse matrix-vector product), MiniMD
// (molecular dynamics; the timed region is the Lennard-Jones forcing
// function) and MiniQMC (quantum Monte Carlo; the timed region is the
// threaded "movers").
//
// Each application executes real floating-point kernels on the omp
// runtime with the paper's Listing 1 instrumentation: a barrier, an enter
// timestamp, the work-shared loop with nowait, an exit timestamp, and a
// closing barrier. Live runs exercise the full measurement path (clock,
// recorder, fork/join) but inherit host noise; the calibrated models in
// internal/workload are the deterministic path used for the paper's
// figures.
package miniapps

import (
	"earlybird/internal/omp"
	"earlybird/internal/simclock"
	"earlybird/internal/trace"
)

// App is an instrumented proxy application.
type App interface {
	// Name identifies the application.
	Name() string
	// RunIteration executes one timed compute iteration on the pool,
	// recording per-thread enter/exit timestamps for iteration iter.
	RunIteration(pool *omp.Pool, clock simclock.Clock, rec *trace.Recorder, iter int)
}

// Run executes iters iterations of the app on a fresh recorder and
// returns it.
func Run(app App, pool *omp.Pool, clock simclock.Clock, iters int) *trace.Recorder {
	rec := trace.NewRecorder(clock, iters, pool.NumThreads())
	for i := 0; i < iters; i++ {
		app.RunIteration(pool, clock, rec, i)
	}
	return rec
}

// instrumented wraps a work-shared body with the Listing 1 pattern:
//
//	#pragma omp parallel {
//	    barrier; t_start[i][t] = now;
//	    #pragma omp for nowait { body }
//	    t_end[i][t] = now; barrier;
//	}
func instrumented(pool *omp.Pool, clock simclock.Clock, rec *trace.Recorder, iter int,
	body func(tc *omp.ThreadContext)) {
	pool.Parallel(func(tc *omp.ThreadContext) {
		t := tc.ThreadNum()
		tc.Barrier()
		rec.Enter(iter, t, t)
		body(tc)
		rec.Exit(iter, t, t)
		tc.Barrier()
	})
}

// RunStudy executes a full live study (trials x ranks, sequentially) and
// assembles a dataset. Every (trial, rank) gets a fresh application state
// from the factory, mirroring independent MPI processes.
func RunStudy(factory func(trial, rank int) App, pool *omp.Pool, clock simclock.Clock,
	trials, ranks, iters int) *trace.Dataset {
	var name string
	d := (*trace.Dataset)(nil)
	for trial := 0; trial < trials; trial++ {
		for rank := 0; rank < ranks; rank++ {
			app := factory(trial, rank)
			if d == nil {
				name = app.Name()
				d = trace.NewDataset(name, trials, ranks, iters, pool.NumThreads())
			}
			rec := Run(app, pool, clock, iters)
			d.SetFromRecorder(trial, rank, rec)
		}
	}
	return d
}
