package miniapps

import (
	"testing"

	"earlybird/internal/omp"
	"earlybird/internal/simclock"
)

func BenchmarkMiniFEMatVec(b *testing.B) {
	a := NewMiniFE(24, 24, 24)
	b.SetBytes(int64(a.Rows() * 27 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatVec()
	}
}

func BenchmarkMiniFEInstrumentedIteration(b *testing.B) {
	a := NewMiniFE(24, 24, 24)
	pool := omp.NewPool(2)
	defer pool.Close()
	clock := simclock.NewReal()
	rec := Run(a, pool, clock, 1)
	_ = rec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RunIteration(pool, clock, rec, 0)
	}
}

func BenchmarkMiniMDForceSweep(b *testing.B) {
	a := NewMiniMD(6, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ComputeForcesSerial()
	}
}

func BenchmarkMiniQMCMover(b *testing.B) {
	a := NewMiniQMC(16, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.runMover(0, i, 100)
	}
}
