package workload

import (
	"time"

	"earlybird/internal/noise"
	"earlybird/internal/rng"
)

// Noisy wraps a workload model with an OS-noise injector: every thread
// compute time produced by the base model is perturbed by the noise
// model, with deterministic per-(trial,rank,iter) noise streams.
//
// The paper attributes laggard threads partly to OS noise (Section 2,
// citing Morari et al.); wrapping a clean model with noise validates
// that the analysis pipeline attributes the injected interference the
// same way (see the failure-injection tests in this package and
// internal/experiments' ablations).
type Noisy struct {
	Base  Model
	Noise noise.Model
	// Suffix is appended to the base name (default "+noise").
	Suffix string
}

// Name implements Model.
func (n *Noisy) Name() string {
	suffix := n.Suffix
	if suffix == "" {
		suffix = "+noise"
	}
	return n.Base.Name() + suffix
}

// pathNoise tags the noise stream family.
const pathNoise uint64 = 4 << 20

// FillProcessIteration implements Model.
func (n *Noisy) FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64) {
	n.Base.FillProcessIteration(root, trial, rank, iter, out)
	if n.Noise == nil {
		return
	}
	if _, none := n.Noise.(noise.None); none {
		// noise.None draws nothing and perturbs nothing: skip the noise
		// stream derivation and the per-thread conversion loop so a
		// "+noise"-shaped study with the injector disabled costs the
		// same as the bare model.
		return
	}
	s := root.ChildInto(borrowStream(), pathNoise, uint64(trial), uint64(rank), uint64(iter))
	defer releaseStream(s)
	for i, sec := range out {
		d := n.Noise.Perturb(s, time.Duration(sec*float64(time.Second)))
		out[i] = d.Seconds()
	}
}
