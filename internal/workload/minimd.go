package workload

import "earlybird/internal/rng"

// MiniMD models the thread arrival behaviour of MiniMD's Lennard-Jones
// forcing function (Section 4.2.2 of the paper), which shows two distinct
// phases across application iterations:
//
//   - iterations 1-19 ("initial behaviour", Figure 7a): a significantly
//     wider, consistent distribution — application-iteration IQR averaging
//     0.93 ms with max 1.45 ms, per-iteration range just over 2 ms,
//     medians between 25 and 26 ms, few outliers;
//   - iterations 20-200: a very tight, normal distribution (IQR average
//     0.15 ms) around a mean median of 24.74 ms with sporadic laggards in
//     4.8% of process iterations (Figure 7c) of high magnitude relative
//     to the median, extremely few early arrivals, and IQR max 7.43 ms;
//   - process-iteration normality passes around 77%/74%/76% (Table 1);
//   - average reclaimable time 17.61 ms per process iteration.
type MiniMD struct {
	// PhaseOneIters is the length of the initial wide phase (paper: 19).
	PhaseOneIters int
	// PhaseOneMedianSec and PhaseOneSpreadSec parameterise phase one:
	// arrivals are uniform in median ± spread (range "just over 2 ms");
	// the spread is modulated per iteration by a lognormal with sigma
	// PhaseOneLogJitter (Figure 6's IQR max of 1.45 ms).
	PhaseOneMedianSec float64
	PhaseOneSpreadSec float64
	PhaseOneLogJitter float64
	// MedianSec is the phase-two nominal compute time (paper: 24.74 ms).
	MedianSec float64
	// SigmaSec is the phase-two normal spread (IQR 0.15 ms => ~0.111 ms).
	SigmaSec float64
	// IterJitterSec spreads per-process-iteration medians.
	IterJitterSec float64
	// RankRateSigma is the lognormal sigma of per-(trial,rank) speed.
	RankRateSigma float64
	// LaggardProb is the phase-two probability of a laggard process
	// iteration (paper: 0.048); the laggard is LaggardBaseSec +
	// Exp(LaggardTailSec) past the median.
	LaggardProb    float64
	LaggardBaseSec float64
	LaggardTailSec float64
	// StragglerProb contaminates a phase-two thread with a sub-laggard
	// delay Exp(StragglerSec); tuned so Table 1 passes land near 76%.
	StragglerProb float64
	StragglerSec  float64
	// DisturbProb/DisturbSec model the rare globally disturbed iterations
	// behind the 7.43 ms application-iteration IQR maximum.
	DisturbProb float64
	DisturbSec  float64
}

// DefaultMiniMD returns the calibration that reproduces the paper's
// MiniMD statistics.
func DefaultMiniMD() *MiniMD {
	return &MiniMD{
		PhaseOneIters:     19,
		PhaseOneMedianSec: 25.5e-3,
		PhaseOneSpreadSec: 0.92e-3,
		PhaseOneLogJitter: 0.13,
		MedianSec:         24.74e-3,
		SigmaSec:          0.100e-3,
		IterJitterSec:     0.04e-3,
		RankRateSigma:     0.002,
		LaggardProb:       0.040,
		LaggardBaseSec:    1.0e-3,
		LaggardTailSec:    1.5e-3,
		StragglerProb:     0.005,
		StragglerSec:      0.35e-3,
		DisturbProb:       0.010,
		DisturbSec:        5.2e-3,
	}
}

// Name implements Model.
func (m *MiniMD) Name() string { return "minimd" }

// FillProcessIteration implements Model.
func (m *MiniMD) FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64) {
	// tmp serves the transient rank/perturb derivations; s stays the
	// iteration stream throughout.
	s, tmp := borrowStream(), borrowStream()
	defer releaseStream(s)
	defer releaseStream(tmp)
	rate := rankStream(tmp, root, trial, rank).LogNormal(0, m.RankRateSigma)
	iterStream(s, root, trial, rank, iter)

	if iter < m.PhaseOneIters {
		// Initial phase: wide, flat-ish arrivals with no laggards.
		median := m.PhaseOneMedianSec*rate + s.Normal(0, m.IterJitterSec)
		spread := m.PhaseOneSpreadSec * perturbStream(tmp, root, iter).LogNormal(0, m.PhaseOneLogJitter)
		// Block-fused: one uniform per thread, bit-identical to the
		// historical median + Uniform(-spread, spread) loop.
		s.AddUniform(out, median, -spread, spread)
		return
	}

	disturbed := perturbStream(tmp, root, iter).Bernoulli(m.DisturbProb)

	median := m.MedianSec*rate + s.Normal(0, m.IterJitterSec)
	if disturbed {
		median += s.Exp(m.DisturbSec)
	}
	// Block-fused: normal draw plus, when StragglerProb > 0, a Bernoulli
	// gate per thread for the sub-millisecond stragglers — too small to
	// count as laggards under the paper's 1 ms rule, but enough to break
	// normality in a fraction of process iterations. Stream order and FP
	// expression tree match the historical scalar loop exactly.
	s.FillNormalStragglers(out, median, 0, m.SigmaSec, m.StragglerProb, m.StragglerSec)
	if s.Bernoulli(m.LaggardProb) {
		victim := s.IntN(len(out))
		out[victim] = median + m.LaggardBaseSec + s.Exp(m.LaggardTailSec)
	}
}
