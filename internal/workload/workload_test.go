package workload_test

import (
	"math"
	"testing"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/rng"
	"earlybird/internal/stats/normality"
	"earlybird/internal/workload"
)

// calCfg is large enough for stable rate estimates (1600 process
// iterations) while keeping the suite fast.
var calCfg = cluster.Config{Trials: 4, Ranks: 4, Iterations: 100, Threads: 48, Seed: 7}

func inBand(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if math.IsNaN(got) || got < lo || got > hi {
		t.Errorf("%s = %v, want in [%v, %v]", name, got, lo, hi)
	}
}

func TestModelsDeterministic(t *testing.T) {
	for _, m := range []workload.Model{
		workload.DefaultMiniFE(), workload.DefaultMiniMD(), workload.DefaultMiniQMC(),
	} {
		root := rng.New(3)
		a := make([]float64, 48)
		b := make([]float64, 48)
		m.FillProcessIteration(root, 1, 2, 3, a)
		m.FillProcessIteration(root, 1, 2, 3, b)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: refilling the same coordinates differed at %d", m.Name(), i)
				break
			}
		}
		m.FillProcessIteration(root, 1, 2, 4, b)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different iterations produced identical times", m.Name())
		}
	}
}

func TestModelNames(t *testing.T) {
	if workload.DefaultMiniFE().Name() != "minife" ||
		workload.DefaultMiniMD().Name() != "minimd" ||
		workload.DefaultMiniQMC().Name() != "miniqmc" {
		t.Fatal("unexpected model names")
	}
}

func TestMiniFECalibration(t *testing.T) {
	d := cluster.MustRun(workload.DefaultMiniFE(), calCfg)
	m := analysis.ComputeMetrics(d, analysis.DefaultLaggardThresholdSec)

	// Paper Section 4.2.1 targets.
	inBand(t, "mean median (s)", m.MeanMedianSec, 25.8e-3, 26.8e-3)         // 26.30 ms
	inBand(t, "laggard fraction", m.LaggardFraction, 0.18, 0.27)            // 22.4%
	inBand(t, "avg reclaimable (s)", m.AvgReclaimableProcSec, 34e-3, 52e-3) // 42.82 ms
	inBand(t, "IQR mean (s)", m.IQRMeanSec, 0.12e-3, 0.40e-3)               // 0.18 ms
	inBand(t, "IQR max (s)", m.IQRMaxSec, 0.8e-3, 8e-3)                     // 4.24 ms

	// Early arrival more common than late: positive percentile asymmetry.
	ps := analysis.IterationPercentiles(d, nil)
	if skew := ps.SkewAsymmetry(); skew <= 0 {
		t.Errorf("skew asymmetry = %v, want positive (early arrivals dominate)", skew)
	}

	// Table 1: MiniFE process iterations are almost never normal.
	t1 := analysis.Table1Row(d, normality.DefaultAlpha)
	inBand(t, "D'Agostino pass rate", t1.PassRates[normality.DAgostino], 0, 0.10)
	inBand(t, "Shapiro-Wilk pass rate", t1.PassRates[normality.ShapiroWilk], 0, 0.03)
	inBand(t, "Anderson-Darling pass rate", t1.PassRates[normality.AndersonDarling], 0, 0.04)
}

func TestMiniMDCalibration(t *testing.T) {
	md := workload.DefaultMiniMD()
	d := cluster.MustRun(md, calCfg)

	// Phase structure (Section 4.2.2): the first nineteen iterations are
	// much wider than the remainder.
	p1 := analysis.ComputeMetricsInRange(d, 1e-3, 0, md.PhaseOneIters)
	p2 := analysis.ComputeMetricsInRange(d, 1e-3, md.PhaseOneIters, calCfg.Iterations)
	inBand(t, "phase1 IQR mean (s)", p1.IQRMeanSec, 0.7e-3, 1.2e-3)   // 0.93 ms
	inBand(t, "phase1 IQR max (s)", p1.IQRMaxSec, 0.8e-3, 1.9e-3)     // 1.45 ms
	inBand(t, "phase2 IQR mean (s)", p2.IQRMeanSec, 0.10e-3, 0.35e-3) // 0.15 ms
	if p1.IQRMeanSec < 3*p2.IQRMeanSec {
		t.Errorf("phase1 IQR %v not much wider than phase2 %v", p1.IQRMeanSec, p2.IQRMeanSec)
	}
	inBand(t, "phase1 median (s)", p1.MeanMedianSec, 25e-3, 26e-3)
	inBand(t, "phase2 median (s)", p2.MeanMedianSec, 24.4e-3, 25.2e-3)     // 24.74 ms
	inBand(t, "phase2 laggard fraction", p2.LaggardFraction, 0.025, 0.085) // 4.8%
	// Phase 1 has no engineered laggards.
	if p1.LaggardFraction > 0.5 {
		t.Errorf("phase1 laggard fraction %v implausibly high", p1.LaggardFraction)
	}

	m := analysis.ComputeMetrics(d, analysis.DefaultLaggardThresholdSec)
	inBand(t, "avg reclaimable (s)", m.AvgReclaimableProcSec, 13e-3, 26e-3) // 17.61 ms

	t1 := analysis.Table1Row(d, normality.DefaultAlpha)
	inBand(t, "D'Agostino pass rate", t1.PassRates[normality.DAgostino], 0.65, 0.87)             // 77%
	inBand(t, "Shapiro-Wilk pass rate", t1.PassRates[normality.ShapiroWilk], 0.65, 0.88)         // 74%
	inBand(t, "Anderson-Darling pass rate", t1.PassRates[normality.AndersonDarling], 0.70, 0.92) // 76%
}

func TestMiniQMCCalibration(t *testing.T) {
	d := cluster.MustRun(workload.DefaultMiniQMC(), calCfg)
	m := analysis.ComputeMetrics(d, analysis.DefaultLaggardThresholdSec)

	inBand(t, "mean median (s)", m.MeanMedianSec, 59e-3, 63e-3)               // 60.91 ms
	inBand(t, "avg reclaimable (s)", m.AvgReclaimableProcSec, 600e-3, 800e-3) // 708.03 ms
	inBand(t, "IQR mean (s)", m.IQRMeanSec, 7.5e-3, 11e-3)                    // 9.05 ms
	inBand(t, "IQR max (s)", m.IQRMaxSec, 9e-3, 18e-3)                        // 15.61 ms

	// The breadth of arrivals exceeds 40 ms (Figure 8).
	ps := analysis.IterationPercentiles(d, []float64{1, 25, 50, 75, 99})
	p1 := ps.Column(1)
	p99 := ps.Column(99)
	wide := 0
	for i := range p1 {
		if p99[i]-p1[i] > 30e-3 {
			wide++
		}
	}
	if wide < len(p1)/2 {
		t.Errorf("only %d/%d iterations have >30ms arrival breadth", wide, len(p1))
	}

	// Table 1: most process iterations are normal.
	t1 := analysis.Table1Row(d, normality.DefaultAlpha)
	inBand(t, "D'Agostino pass rate", t1.PassRates[normality.DAgostino], 0.87, 0.99)
	inBand(t, "Shapiro-Wilk pass rate", t1.PassRates[normality.ShapiroWilk], 0.88, 0.99)
	inBand(t, "Anderson-Darling pass rate", t1.PassRates[normality.AndersonDarling], 0.90, 1.0)
}

// Application-iteration aggregation must reject normality almost always
// for all three applications (Section 4.1), with MiniQMC allowed a few
// D'Agostino passes.
func TestApplicationIterationRejection(t *testing.T) {
	for _, m := range []workload.Model{
		workload.DefaultMiniFE(), workload.DefaultMiniMD(), workload.DefaultMiniQMC(),
	} {
		d := cluster.MustRun(m, cluster.Config{Trials: 4, Ranks: 8, Iterations: 50, Threads: 48, Seed: 5})
		s := analysis.ApplicationIterationNormality(d, normality.DefaultAlpha)
		for _, test := range normality.Tests {
			// At this reduced geometry (1536 samples per iteration vs the
			// paper's 3840) the tests have less power; the full-geometry
			// check lives in internal/experiments.
			if rate := s.PassRate(test); rate > 0.20 {
				t.Errorf("%s/%v: app-iteration pass rate %.2f, want <= 0.20", m.Name(), test, rate)
			}
		}
	}
}

// The full application aggregation must reject for every app and test.
func TestApplicationLevelRejection(t *testing.T) {
	for _, m := range []workload.Model{
		workload.DefaultMiniFE(), workload.DefaultMiniMD(), workload.DefaultMiniQMC(),
	} {
		d := cluster.MustRun(m, cluster.SmallConfig())
		res := analysis.ApplicationLevelNormality(d, normality.DefaultAlpha)
		for _, r := range res {
			if !r.RejectNormal {
				t.Errorf("%s/%v: application-level aggregation not rejected", m.Name(), r.Test)
			}
		}
	}
}

func TestGenericNormalModel(t *testing.T) {
	m := &workload.NormalModel{AppName: "norm", MedianSec: 10e-3, SigmaSec: 1e-3}
	if m.Name() != "norm" {
		t.Fatal("name")
	}
	d := cluster.MustRun(m, cluster.Config{Trials: 2, Ranks: 2, Iterations: 50, Threads: 48, Seed: 2})
	t1 := analysis.Table1Row(d, normality.DefaultAlpha)
	for _, test := range normality.Tests {
		if t1.PassRates[test] < 0.85 {
			t.Errorf("%v: normal model pass rate %.2f too low", test, t1.PassRates[test])
		}
	}
}

func TestGenericUniformModelBounds(t *testing.T) {
	m := &workload.UniformModel{AppName: "uni", MedianSec: 5e-3, HalfWidthSec: 1e-3}
	root := rng.New(1)
	out := make([]float64, 256)
	m.FillProcessIteration(root, 0, 0, 0, out)
	for _, x := range out {
		if x < 4e-3 || x >= 6e-3 {
			t.Fatalf("uniform draw %v outside [4ms, 6ms)", x)
		}
	}
}

func TestSingleLaggardModel(t *testing.T) {
	m := &workload.SingleLaggardModel{AppName: "lag", MedianSec: 20e-3, JitterSec: 0.01e-3, LagSec: 5e-3}
	d := cluster.MustRun(m, cluster.Config{Trials: 1, Ranks: 2, Iterations: 40, Threads: 48, Seed: 3})
	st := analysis.Laggards(d, analysis.DefaultLaggardThresholdSec)
	if st.Fraction != 1 {
		t.Fatalf("single-laggard model laggard fraction = %v, want 1", st.Fraction)
	}
	if st.MeanMagnitudeSec < 4.5e-3 || st.MeanMagnitudeSec > 5.5e-3 {
		t.Fatalf("laggard magnitude = %v, want ~5ms", st.MeanMagnitudeSec)
	}
}

func TestFuncModelAdapter(t *testing.T) {
	m := &workload.Func{
		AppName: "fn",
		Fill: func(s *rng.Source, trial, rank, iter int, out []float64) {
			for i := range out {
				out[i] = float64(trial+rank+iter) + 1
			}
		},
	}
	root := rng.New(1)
	out := make([]float64, 4)
	m.FillProcessIteration(root, 1, 2, 3, out)
	for _, x := range out {
		if x != 7 {
			t.Fatalf("func model output %v, want 7", x)
		}
	}
	if m.Name() != "fn" {
		t.Fatal("name")
	}
}
