package workload

import "earlybird/internal/rng"

// The generic models below are building blocks for custom studies (see
// examples/custom-workload) and for validating the analysis pipeline
// against distributions with known properties — e.g. the single-laggard
// assumption of the original partitioned-communication paper (Grant et
// al.) or the normal-distribution sweep of Temucin et al.

// NormalModel draws every thread time from N(MedianSec, SigmaSec).
type NormalModel struct {
	AppName   string
	MedianSec float64
	SigmaSec  float64
}

// Name implements Model.
func (m *NormalModel) Name() string { return m.AppName }

// FillProcessIteration implements Model.
func (m *NormalModel) FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64) {
	s := iterStream(borrowStream(), root, trial, rank, iter)
	defer releaseStream(s)
	s.FillNormal(out, m.MedianSec, m.SigmaSec)
}

// UniformModel draws every thread time uniformly from
// [MedianSec-HalfWidthSec, MedianSec+HalfWidthSec).
type UniformModel struct {
	AppName      string
	MedianSec    float64
	HalfWidthSec float64
}

// Name implements Model.
func (m *UniformModel) Name() string { return m.AppName }

// FillProcessIteration implements Model.
func (m *UniformModel) FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64) {
	s := iterStream(borrowStream(), root, trial, rank, iter)
	defer releaseStream(s)
	s.FillUniform(out, m.MedianSec-m.HalfWidthSec, m.MedianSec+m.HalfWidthSec)
}

// SingleLaggardModel reproduces the analytical assumption of the original
// partitioned-communication work: every thread arrives at MedianSec except
// exactly one laggard per process iteration, LagSec later.
type SingleLaggardModel struct {
	AppName   string
	MedianSec float64
	JitterSec float64
	LagSec    float64
}

// Name implements Model.
func (m *SingleLaggardModel) Name() string { return m.AppName }

// FillProcessIteration implements Model.
func (m *SingleLaggardModel) FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64) {
	s := iterStream(borrowStream(), root, trial, rank, iter)
	defer releaseStream(s)
	s.FillNormal(out, m.MedianSec, m.JitterSec)
	out[s.IntN(len(out))] += m.LagSec
}

// Func adapts a plain function to the Model interface.
type Func struct {
	AppName string
	Fill    func(s *rng.Source, trial, rank, iter int, out []float64)
}

// Name implements Model.
func (m *Func) Name() string { return m.AppName }

// FillProcessIteration implements Model. The stream handed to Fill is a
// pooled scratch source, valid only for the duration of the call; Fill
// must not retain it.
func (m *Func) FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64) {
	s := iterStream(borrowStream(), root, trial, rank, iter)
	defer releaseStream(s)
	m.Fill(s, trial, rank, iter, out)
}
