package workload

import "earlybird/internal/rng"

// MiniFE models the thread arrival behaviour of MiniFE's matrix-vector
// product (Section 4.2.1 of the paper):
//
//   - mean median arrival time 26.30 ms, tight core distribution
//     (application-iteration IQR averaging 0.18 ms, max 4.24 ms);
//   - left-skewed arrivals: early arrival significantly more common than
//     late (5th/25th percentiles further from the median than 95th/75th),
//     attributed to distributing 200 planes over 48 threads;
//   - 22.4% of process iterations contain a laggard thread more than 1 ms
//     slower than the median (Figure 5b), the rest none (Figure 5a);
//   - process-iteration arrivals are almost never normal (Table 1:
//     <= 3% pass), because of the skew;
//   - average reclaimable time 42.82 ms per process iteration.
type MiniFE struct {
	// MedianSec is the nominal per-thread compute time (paper: 26.30 ms).
	MedianSec float64
	// IterJitterSec spreads each process-iteration's local median.
	IterJitterSec float64
	// RankRateSigma is the lognormal sigma of per-(trial,rank) speed
	// multipliers (cross-process spread seen at application level).
	RankRateSigma float64
	// EarlyTailSec is the mean of the exponential early-arrival tail
	// subtracted from every thread (the left skew).
	EarlyTailSec float64
	// ThreadJitterSec is symmetric per-thread noise.
	ThreadJitterSec float64
	// LaggardProb is the probability a process iteration contains a
	// laggard (paper: 0.224).
	LaggardProb float64
	// LaggardBaseSec + Exp(LaggardTailSec) is the laggard's extra delay
	// beyond the local median; the base keeps it past the paper's 1 ms
	// detection threshold.
	LaggardBaseSec float64
	LaggardTailSec float64
	// DisturbProb is the probability that an application iteration is
	// globally disturbed, widening that iteration's aggregated IQR
	// (Figure 4's IQR max of 4.24 ms); DisturbSec is the mean extra
	// spread.
	DisturbProb float64
	DisturbSec  float64
}

// DefaultMiniFE returns the calibration that reproduces the paper's
// MiniFE statistics.
func DefaultMiniFE() *MiniFE {
	return &MiniFE{
		MedianSec:       26.30e-3,
		IterJitterSec:   0.05e-3,
		RankRateSigma:   0.002,
		EarlyTailSec:    0.15e-3,
		ThreadJitterSec: 0.015e-3,
		LaggardProb:     0.218,
		LaggardBaseSec:  1.0e-3,
		LaggardTailSec:  2.3e-3,
		DisturbProb:     0.012,
		DisturbSec:      3.6e-3,
	}
}

// Name implements Model.
func (m *MiniFE) Name() string { return "minife" }

// FillProcessIteration implements Model.
func (m *MiniFE) FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64) {
	// One scratch stream serves all three derivations: each is fully
	// drawn before the next re-seed.
	s := borrowStream()
	defer releaseStream(s)
	rate := rankStream(s, root, trial, rank).LogNormal(0, m.RankRateSigma)

	disturbed := perturbStream(s, root, iter).Bernoulli(m.DisturbProb)

	iterStream(s, root, trial, rank, iter)
	median := m.MedianSec*rate + s.Normal(0, m.IterJitterSec)
	if disturbed {
		// A globally disturbed iteration spreads the per-process medians,
		// which widens the application-iteration IQR.
		median += s.Exp(m.DisturbSec)
	}
	// Block-fused fill: one exponential + one normal per thread, in the
	// same stream order and with the same FP expression tree as the
	// historical scalar loop (pinned by the cluster golden fingerprints).
	s.FillNormalMinusExp(out, median, m.EarlyTailSec, 0, m.ThreadJitterSec)
	if s.Bernoulli(m.LaggardProb) {
		victim := s.IntN(len(out))
		out[victim] = median + m.LaggardBaseSec + s.Exp(m.LaggardTailSec)
	}
}
