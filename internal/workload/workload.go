// Package workload provides stochastic per-thread compute-time models for
// the three proxy applications the paper studies, calibrated to every
// statistic the paper reports: per-application mean median arrival times,
// inter-quartile ranges, laggard fractions and magnitudes, skew direction,
// phase structure, and the Table 1 normality pass rates.
//
// The paper measured the real MiniFE, MiniMD and MiniQMC on the Manzano
// cluster; those binaries and that machine are not reproducible here, so
// the models replace them with distributions fitted to the published
// numbers (see DESIGN.md, "Substitutions"). The live compute kernels in
// internal/miniapps exercise the same instrumentation path with real work
// when host timing is acceptable.
package workload

import (
	"fmt"
	"sync"

	"earlybird/internal/rng"
)

// Model generates the per-thread compute times (in seconds) of one process
// iteration — the 48 samples (at the paper's geometry) of one rank's
// parallel region in one iteration of one trial.
//
// Implementations must be deterministic functions of (root, trial, rank,
// iter): filling the same coordinates twice yields identical times.
type Model interface {
	// Name identifies the application ("minife", "minimd", "miniqmc", ...).
	Name() string
	// FillProcessIteration writes len(out) thread compute times in seconds.
	FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64)
}

// ByName returns the default model of a built-in application. It is the
// single registry of built-in apps, shared by core.Options and the
// campaign engine's spec resolution.
func ByName(app string) (Model, error) {
	switch app {
	case "minife":
		return DefaultMiniFE(), nil
	case "minimd":
		return DefaultMiniMD(), nil
	case "miniqmc":
		return DefaultMiniQMC(), nil
	default:
		return nil, fmt.Errorf("workload: unknown app %q", app)
	}
}

// Path component tags keep derived stream families disjoint.
const (
	pathRankRate uint64 = 1 << 20 // per-(trial, rank) draws
	pathIterDist uint64 = 2 << 20 // per-(trial, rank, iter) draws
	pathPerturb  uint64 = 3 << 20 // study-level iteration perturbations
)

// streamPool recycles scratch streams for the fill hot path: a large
// study derives millions of per-iteration child streams, and re-seeding a
// pooled generator in place (rng.ChildInto) replaces three heap
// allocations per derivation with none. Borrowed streams are only valid
// until released; models must not let them escape FillProcessIteration.
var streamPool = sync.Pool{New: func() any { return rng.New(0) }}

func borrowStream() *rng.Source   { return streamPool.Get().(*rng.Source) }
func releaseStream(s *rng.Source) { streamPool.Put(s) }

// rankStream re-seeds dst to the deterministic stream for per-(trial,
// rank) draws.
func rankStream(dst, root *rng.Source, trial, rank int) *rng.Source {
	return root.ChildInto(dst, pathRankRate, uint64(trial), uint64(rank))
}

// iterStream re-seeds dst to the deterministic stream for per-(trial,
// rank, iter) draws.
func iterStream(dst, root *rng.Source, trial, rank, iter int) *rng.Source {
	return root.ChildInto(dst, pathIterDist, uint64(trial), uint64(rank), uint64(iter))
}

// perturbStream re-seeds dst to the deterministic stream for
// application-iteration level events shared by all ranks and trials
// (e.g. a globally disturbed iteration).
func perturbStream(dst, root *rng.Source, iter int) *rng.Source {
	return root.ChildInto(dst, pathPerturb, uint64(iter))
}
