package workload_test

import (
	"testing"
	"testing/quick"

	"earlybird/internal/rng"
	"earlybird/internal/workload"
)

// Property: every built-in model produces strictly positive, sub-second
// compute times at any coordinates — no parameterisation of the defaults
// can emit a nonsensical sample.
func TestModelsProducePlausibleTimesProperty(t *testing.T) {
	models := []workload.Model{
		workload.DefaultMiniFE(),
		workload.DefaultMiniMD(),
		workload.DefaultMiniQMC(),
	}
	check := func(seed uint64, trial, rank, iter uint8) bool {
		root := rng.New(seed)
		out := make([]float64, 48)
		for _, m := range models {
			m.FillProcessIteration(root, int(trial%16), int(rank%8), int(iter)%200, out)
			for _, x := range out {
				if x <= 0 || x >= 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: models are pure functions of (seed, coordinates) — two
// interleaved fills at different coordinates never perturb each other.
func TestModelsCoordinateIsolationProperty(t *testing.T) {
	m := workload.DefaultMiniQMC()
	check := func(seed uint64, a, b uint8) bool {
		root := rng.New(seed)
		first := make([]float64, 16)
		m.FillProcessIteration(root, 0, 0, int(a)%200, first)
		// Fill a different iteration in between.
		scratch := make([]float64, 16)
		m.FillProcessIteration(root, 1, 2, int(b)%200, scratch)
		again := make([]float64, 16)
		m.FillProcessIteration(root, 0, 0, int(a)%200, again)
		for i := range first {
			if first[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
