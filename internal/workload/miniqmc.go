package workload

import "earlybird/internal/rng"

// MiniQMC models the thread arrival behaviour of MiniQMC's movers
// (Section 4.2.3 of the paper):
//
//   - the widest arrival distribution of the three applications: the
//     per-thread times within a single process iteration are normally
//     distributed with a large spread, producing an application-iteration
//     IQR with mean 9.05 ms and max 15.61 ms and an arrival breadth of
//     more than 40 ms (Figure 9 shows the spread is within-iteration, not
//     an aggregation artefact);
//   - mean median arrival time 60.91 ms, little variation across
//     iterations (Figure 8);
//   - process-iteration arrivals normally distributed: 95-96% pass all
//     three Table 1 tests;
//   - at application-iteration aggregation, a mild right-skewed
//     per-process offset makes most iterations reject normality while a
//     handful pass D'Agostino only (Section 4.1);
//   - average reclaimable time 708.03 ms per process iteration.
type MiniQMC struct {
	// MedianSec is the nominal per-thread compute time (paper: 60.91 ms).
	MedianSec float64
	// SigmaSec is the within-process normal spread of thread times.
	SigmaSec float64
	// ThreadTailSec is the mean of a mild exponential right tail added to
	// every thread time. It is calibrated so its skew is statistically
	// invisible at n = 48 (process iterations keep passing normality,
	// Table 1) but detected at n = 3840 (application iterations reject,
	// Section 4.1) — reproducing the paper's aggregation-level contrast.
	ThreadTailSec float64
	// RankOffsetXm and RankOffsetAlpha parameterise a small
	// Pareto-distributed per-(trial,rank,iter) offset (minimum and
	// shape) modelling cross-process variation.
	RankOffsetXm    float64
	RankOffsetAlpha float64
	// SlowProb is the probability that a whole process iteration runs
	// SlowDeltaSec late (a transiently slow rank). The within-process
	// distribution stays exactly normal (Table 1 untouched) while the
	// application-iteration aggregation gains a secondary lump that the
	// normality tests reject — the paper's aggregation-level contrast.
	SlowProb     float64
	SlowDeltaSec float64
	// RankRateSigma is the lognormal sigma of per-(trial,rank) speed.
	RankRateSigma float64
	// IterJitterSec spreads per-process-iteration medians.
	IterJitterSec float64
	// SigmaLogJitter is the lognormal sigma of the per-process-iteration
	// spread multiplier; IterSigmaLogJitter modulates the spread of a
	// whole application iteration (all ranks and trials), producing the
	// occasional wider iterations behind Figure 8's IQR maximum of
	// 15.61 ms without breaking within-process normality.
	SigmaLogJitter     float64
	IterSigmaLogJitter float64
}

// DefaultMiniQMC returns the calibration that reproduces the paper's
// MiniQMC statistics.
func DefaultMiniQMC() *MiniQMC {
	return &MiniQMC{
		MedianSec:       60.0e-3,
		SigmaSec:        6.05e-3,
		ThreadTailSec:   1.8e-3,
		RankOffsetXm:    0.8e-3,
		RankOffsetAlpha: 2.5,
		RankRateSigma:   0.004,
		IterJitterSec:   0.5e-3,

		SigmaLogJitter:     0.08,
		IterSigmaLogJitter: 0.14,
		SlowProb:           0.07,
		SlowDeltaSec:       13e-3,
	}
}

// Name implements Model.
func (m *MiniQMC) Name() string { return "miniqmc" }

// FillProcessIteration implements Model.
func (m *MiniQMC) FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64) {
	// tmp serves the transient rank/perturb derivations; s stays the
	// iteration stream throughout.
	s, tmp := borrowStream(), borrowStream()
	defer releaseStream(s)
	defer releaseStream(tmp)
	rate := rankStream(tmp, root, trial, rank).LogNormal(0, m.RankRateSigma)
	iterStream(s, root, trial, rank, iter)
	offsetMean := m.RankOffsetXm * m.RankOffsetAlpha / (m.RankOffsetAlpha - 1)
	center := m.MedianSec*rate + s.Normal(0, m.IterJitterSec) +
		s.Pareto(m.RankOffsetXm, m.RankOffsetAlpha) - offsetMean
	if m.SlowProb > 0 && s.Bernoulli(m.SlowProb) {
		center += m.SlowDeltaSec
	}
	sigma := m.SigmaSec * s.LogNormal(0, m.SigmaLogJitter) *
		perturbStream(tmp, root, iter).LogNormal(0, m.IterSigmaLogJitter)
	// Block-fused: one normal + one exponential per thread with the
	// mean-compensated tail, in the same stream order and FP expression
	// tree as the historical scalar loop.
	s.FillNormalExpTail(out, center, 0, sigma, m.ThreadTailSec)
}
