package workload_test

import (
	"testing"
	"time"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/noise"
	"earlybird/internal/workload"
)

// Failure injection: a clean normal workload plus an injected core
// slowdown must be detected by the laggard pipeline at close to the
// injection rate — validating the paper's attribution of laggards to OS
// noise.
func TestNoiseInjectionDetectedAsLaggards(t *testing.T) {
	base := &workload.NormalModel{AppName: "clean", MedianSec: 20e-3, SigmaSec: 0.05e-3}
	cfg := cluster.Config{Trials: 2, Ranks: 4, Iterations: 100, Threads: 48, Seed: 21}

	// Baseline: essentially no laggards.
	clean := cluster.MustRun(base, cfg)
	if st := analysis.Laggards(clean, 1e-3); st.Fraction > 0.01 {
		t.Fatalf("clean workload already has %.1f%% laggards", 100*st.Fraction)
	}

	// Inject: each thread independently suffers a 1.2x slowdown with
	// probability p; a process iteration shows a laggard when at least
	// one of its 48 threads is hit (1.2x of 20ms = +4ms >> 1ms rule).
	const p = 0.01
	noisy := &workload.Noisy{
		Base:  base,
		Noise: noise.CoreSlowdown{Prob: p, Factor: 1.2},
	}
	if noisy.Name() != "clean+noise" {
		t.Fatalf("name = %q", noisy.Name())
	}
	d := cluster.MustRun(noisy, cfg)
	st := analysis.Laggards(d, 1e-3)
	// Expected iteration-level hit rate: 1-(1-p)^48 ~ 38%.
	want := 1 - pow(1-p, 48)
	if st.Fraction < want-0.08 || st.Fraction > want+0.08 {
		t.Errorf("laggard fraction %.3f, want ~%.3f from injected noise", st.Fraction, want)
	}
	// The injected magnitude (~4ms) should dominate the mean laggard
	// magnitude.
	if st.MeanMagnitudeSec < 2.5e-3 || st.MeanMagnitudeSec > 6e-3 {
		t.Errorf("mean laggard magnitude %.2f ms, want ~4 ms", 1e3*st.MeanMagnitudeSec)
	}
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// Periodic-daemon noise inflates every thread roughly uniformly, so it
// must NOT present as laggards — it shifts the distribution instead.
func TestDaemonNoiseShiftsWithoutLaggards(t *testing.T) {
	base := &workload.NormalModel{AppName: "clean", MedianSec: 20e-3, SigmaSec: 0.05e-3}
	noisy := &workload.Noisy{
		Base:   base,
		Noise:  noise.PeriodicDaemon{Period: 100 * time.Microsecond, Cost: 5 * time.Microsecond, Affinity: 1},
		Suffix: "+daemon",
	}
	cfg := cluster.Config{Trials: 1, Ranks: 2, Iterations: 60, Threads: 48, Seed: 5}
	clean := cluster.MustRun(base, cfg)
	d := cluster.MustRun(noisy, cfg)
	mClean := analysis.ComputeMetrics(clean, 1e-3)
	mNoisy := analysis.ComputeMetrics(d, 1e-3)
	// ~200 wakeups x 5us = ~1ms shift in the median.
	shift := mNoisy.MeanMedianSec - mClean.MeanMedianSec
	if shift < 0.5e-3 || shift > 1.6e-3 {
		t.Errorf("median shift %.3f ms, want ~1 ms", 1e3*shift)
	}
	if mNoisy.LaggardFraction > 0.05 {
		t.Errorf("daemon noise produced %.1f%% laggards; expected near none", 100*mNoisy.LaggardFraction)
	}
}

// Noise streams must be deterministic so noisy studies stay reproducible.
func TestNoisyDeterminism(t *testing.T) {
	noisy := &workload.Noisy{
		Base:  workload.DefaultMiniFE(),
		Noise: noise.RandomInterrupt{Rate: 100, MeanCost: 20 * time.Microsecond},
	}
	cfg := cluster.Config{Trials: 1, Ranks: 1, Iterations: 10, Threads: 16, Seed: 3}
	a := cluster.MustRun(noisy, cfg).AllSamples()
	b := cluster.MustRun(noisy, cfg).AllSamples()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("noisy model not deterministic")
		}
	}
}

func TestNoisyNilNoisePassthrough(t *testing.T) {
	base := &workload.NormalModel{AppName: "x", MedianSec: 1e-3, SigmaSec: 0}
	noisy := &workload.Noisy{Base: base}
	cfg := cluster.Config{Trials: 1, Ranks: 1, Iterations: 2, Threads: 4, Seed: 1}
	a := cluster.MustRun(base, cfg).AllSamples()
	b := cluster.MustRun(noisy, cfg).AllSamples()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nil noise changed samples")
		}
	}
}
