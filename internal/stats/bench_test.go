package stats

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

func benchData(n int) []float64 {
	r := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 26.3e-3 + 0.18e-3*r.NormFloat64()
	}
	return xs
}

func BenchmarkSummarize(b *testing.B) {
	for _, n := range []int{48, 3840, 768000} {
		xs := benchData(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Summarize(xs)
			}
		})
	}
}

func BenchmarkPercentile(b *testing.B) {
	xs := benchData(3840)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 95)
	}
}

func BenchmarkHistogram10usBins(b *testing.B) {
	xs := benchData(768000)
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewHistogram(xs, 10e-6)
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NormalQuantile(float64(i%1000+1) / 1002)
	}
}

func BenchmarkNormalCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NormalCDF(float64(i%13) - 6)
	}
}
