package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-2.5758293035489004, 0.005},
	}
	for _, c := range cases {
		approx(t, "Phi", NormalCDF(c.x), c.want, 1e-12)
	}
}

func TestNormalPDFKnownValues(t *testing.T) {
	approx(t, "phi(0)", NormalPDF(0), 0.3989422804014327, 1e-14)
	approx(t, "phi(1)", NormalPDF(1), 0.24197072451914337, 1e-14)
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
		{0.99, 2.3263478740408408},
		{1e-10, -6.361340902404056},
	}
	for _, c := range cases {
		approx(t, "quantile", NormalQuantile(c.p), c.want, 1e-9)
	}
}

func TestNormalQuantileEdgeCases(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("quantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("quantile outside [0,1] should be NaN")
	}
}

func TestNormalQuantileRoundTripProperty(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		if p < 1e-12 || p > 1-1e-12 {
			return true
		}
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChiSquaredSFKnownValues(t *testing.T) {
	// For k=2 the survival function is exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		approx(t, "chi2 sf k=2", ChiSquaredSF(x, 2), math.Exp(-x/2), 1e-10)
	}
	// chi2(1): P(X >= 3.841458820694124) = 0.05.
	approx(t, "chi2 sf k=1", ChiSquaredSF(3.841458820694124, 1), 0.05, 1e-8)
	// x <= 0 has SF 1.
	approx(t, "chi2 sf x=0", ChiSquaredSF(0, 3), 1, 0)
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	approx(t, "F(0)", e.At(0), 0, 0)
	approx(t, "F(1)", e.At(1), 0.25, 1e-12)
	approx(t, "F(2)", e.At(2), 0.75, 1e-12)
	approx(t, "F(3)", e.At(3), 1, 0)
	approx(t, "F(10)", e.At(10), 1, 0)
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	approx(t, "q(0.5)", e.Quantile(0.5), 2, 1e-12)
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.12, 0.19, 0.25, 0.31}, 0.1)
	if h.Total != 5 {
		t.Errorf("total = %d", h.Total)
	}
	// Bins: [0.1,0.2): 3 samples; [0.2,0.3): 1; [0.3,0.4): 1.
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	approx(t, "peak", h.Peak(), 0.15, 1e-9)
}

func TestHistogramAddExtends(t *testing.T) {
	h := NewHistogram([]float64{1}, 1)
	h.Add(5.5)
	if h.Total != 2 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
}

func TestHistogramConservesTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		h := NewHistogram(xs, 0.5)
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return sum == len(xs) && h.Total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramRenderAndCSV(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.0012, 0.002}, 0.0005)
	out := h.Render(20, 1e-3, "ms")
	if out == "" || out == "(empty histogram)\n" {
		t.Error("render produced no output")
	}
	csv := h.CSV(1e-3)
	if csv == "" {
		t.Error("csv produced no output")
	}
	empty := &Histogram{Width: 1}
	if got := empty.Render(10, 1, "s"); got != "(empty histogram)\n" {
		t.Errorf("empty render = %q", got)
	}
}
