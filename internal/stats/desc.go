// Exact descriptive statistics over materialised float64 samples; the
// streaming counterparts live in stream.go.

package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns NaN for an empty
// sample so that plotting pipelines can propagate missing data.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CentralMoment returns the k-th central sample moment (divided by n).
func CentralMoment(xs []float64, k int) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		sum += math.Pow(x-m, float64(k))
	}
	return sum / float64(len(xs))
}

// Skewness returns the sample skewness g1 = m3 / m2^(3/2), the moment
// estimator used by D'Agostino's test.
func Skewness(xs []float64) float64 {
	m2 := CentralMoment(xs, 2)
	m3 := CentralMoment(xs, 3)
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the (non-excess) sample kurtosis b2 = m4 / m2^2.
// A normal sample has b2 close to 3.
func Kurtosis(xs []float64) float64 {
	m2 := CentralMoment(xs, 2)
	m4 := CentralMoment(xs, 4)
	return m4 / (m2 * m2)
}

// Min returns the smallest element of xs.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest element of xs.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Sorted returns a sorted copy of xs.
func Sorted(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// PercentileSorted returns the p-th percentile (0 <= p <= 100) of an
// already-sorted sample using linear interpolation between closest ranks
// (the "linear" method used by NumPy and R type 7).
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	h := (p / 100) * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	v := sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
	if math.IsInf(v, 0) || math.IsNaN(v) {
		// The difference overflowed (inputs near ±MaxFloat64); the convex
		// combination form cannot overflow past the endpoints.
		v = sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	return v
}

// Percentile returns the p-th percentile of xs (unsorted input).
func Percentile(xs []float64, p float64) float64 {
	return PercentileSorted(Sorted(xs), p)
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// IQRSorted returns the inter-quartile range of a sorted sample.
func IQRSorted(sorted []float64) float64 {
	return PercentileSorted(sorted, 75) - PercentileSorted(sorted, 25)
}

// IQR returns the inter-quartile range of xs.
func IQR(xs []float64) float64 { return IQRSorted(Sorted(xs)) }

// Summary holds the descriptive statistics reported for a sample throughout
// the study.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min      float64
	P5       float64
	P25      float64
	Median   float64
	P75      float64
	P95      float64
	Max      float64
	IQR      float64
	Skewness float64
	Kurtosis float64
}

// Summarize computes a Summary for xs.
func Summarize(xs []float64) Summary {
	s := Sorted(xs)
	return Summary{
		N:        len(xs),
		Mean:     Mean(xs),
		StdDev:   StdDev(xs),
		Min:      Min(xs),
		P5:       PercentileSorted(s, 5),
		P25:      PercentileSorted(s, 25),
		Median:   PercentileSorted(s, 50),
		P75:      PercentileSorted(s, 75),
		P95:      PercentileSorted(s, 95),
		Max:      Max(xs),
		IQR:      IQRSorted(s),
		Skewness: Skewness(xs),
		Kurtosis: Kurtosis(xs),
	}
}
