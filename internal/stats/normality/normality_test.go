package normality

import (
	"math"
	"testing"

	"earlybird/internal/rng"
)

func normalSample(seed uint64, n int, mu, sigma float64) []float64 {
	s := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Normal(mu, sigma)
	}
	return xs
}

func expSample(seed uint64, n int, mean float64) []float64 {
	s := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.Exp(mean)
	}
	return xs
}

// rejectionRate runs the test on trials independent samples drawn by gen
// and returns the fraction rejected at 5%.
func rejectionRate(t *testing.T, test Test, trials, n int, gen func(seed uint64, n int) []float64) float64 {
	t.Helper()
	rejected := 0
	for i := 0; i < trials; i++ {
		r, err := Run(test, gen(uint64(i)+1, n), DefaultAlpha)
		if err != nil {
			t.Fatalf("%v on trial %d: %v", test, i, err)
		}
		if r.RejectNormal {
			rejected++
		}
	}
	return float64(rejected) / float64(trials)
}

// Under the null hypothesis, each test should reject close to alpha = 5%
// of truly normal samples. This is the property that drives the paper's
// Table 1 for MiniQMC (95-96% pass rates).
func TestSizeUnderNull(t *testing.T) {
	gen := func(seed uint64, n int) []float64 { return normalSample(seed, n, 26.3e-3, 0.1e-3) }
	for _, test := range Tests {
		rate := rejectionRate(t, test, 400, 48, gen)
		if rate > 0.10 {
			t.Errorf("%v: rejection rate %.3f under null, want <= 0.10", test, rate)
		}
		if rate < 0.005 {
			t.Errorf("%v: rejection rate %.3f under null suspiciously low", test, rate)
		}
	}
}

// Exponential data at n=48 should be rejected nearly always (power check);
// this is what makes the skewed MiniFE process iterations fail in Table 1.
func TestPowerAgainstExponential(t *testing.T) {
	gen := func(seed uint64, n int) []float64 { return expSample(seed, n, 1) }
	for _, test := range Tests {
		rate := rejectionRate(t, test, 200, 48, gen)
		if rate < 0.95 {
			t.Errorf("%v: rejection rate %.3f against exp(1), want >= 0.95", test, rate)
		}
	}
}

// A single large outlier among 48 normal points (the paper's laggard
// pattern, Figures 5b/7c) should trigger rejection by all three tests.
func TestPowerAgainstLaggardContamination(t *testing.T) {
	gen := func(seed uint64, n int) []float64 {
		xs := normalSample(seed, n, 24.74e-3, 0.111e-3)
		xs[n-1] = 24.74e-3 + 4e-3 // laggard 4 ms after the pack
		return xs
	}
	for _, test := range Tests {
		rate := rejectionRate(t, test, 100, 48, gen)
		if rate < 0.99 {
			t.Errorf("%v: rejection rate %.3f with laggard, want ~1", test, rate)
		}
	}
}

func TestShapiroWilkKnownVector(t *testing.T) {
	// Classic example (Shapiro & Wilk 1965 men's-weights data). The exact
	// 1965 table coefficients give W = 0.79999; Royston's AS R94
	// approximation used here (and by R/SciPy) gives W ~ 0.7888 with
	// p ~ 0.0089, still a clear rejection.
	x := []float64{148, 154, 158, 160, 161, 162, 166, 170, 182, 195, 236}
	r, err := ShapiroWilkTest(x, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Statistic-0.7932) > 0.012 {
		t.Errorf("W = %v, want ~0.789-0.800", r.Statistic)
	}
	if r.PValue < 0.004 || r.PValue > 0.02 {
		t.Errorf("p = %v, want ~0.0089", r.PValue)
	}
	if !r.RejectNormal {
		t.Error("should reject at 5%")
	}
}

func TestShapiroWilkNearNormalVector(t *testing.T) {
	// Symmetric, near-normal ordered sample should not be rejected.
	x := []float64{-2.1, -1.3, -0.9, -0.6, -0.3, -0.1, 0.1, 0.3, 0.6, 0.9, 1.3, 2.1}
	r, err := ShapiroWilkTest(x, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if r.RejectNormal {
		t.Errorf("rejected symmetric sample, W=%v p=%v", r.Statistic, r.PValue)
	}
	if r.Statistic < 0.9 || r.Statistic > 1 {
		t.Errorf("W = %v out of plausible range", r.Statistic)
	}
}

func TestShapiroWilkWBounds(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		r, err := ShapiroWilkTest(normalSample(seed, 48, 0, 1), DefaultAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if r.Statistic <= 0 || r.Statistic > 1 {
			t.Fatalf("W = %v outside (0, 1]", r.Statistic)
		}
	}
}

func TestShapiroWilkSmallN(t *testing.T) {
	// n = 3 exact branch.
	r, err := ShapiroWilkTest([]float64{1, 2, 10}, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if r.Statistic <= 0 || r.Statistic > 1 {
		t.Errorf("W = %v outside (0,1]", r.Statistic)
	}
	// n = 5 branch (single extreme coefficient).
	r5, err := ShapiroWilkTest([]float64{1, 2, 3, 4, 100}, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if !r5.RejectNormal {
		t.Errorf("n=5 with huge outlier should reject, W=%v p=%v", r5.Statistic, r5.PValue)
	}
}

func TestDAgostinoKnownBehavior(t *testing.T) {
	// Strongly skewed data: K² should be large, p tiny.
	x := expSample(7, 100, 1)
	r, err := DAgostinoK2(x, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if r.Statistic < 10 {
		t.Errorf("K² = %v for exp data, want large", r.Statistic)
	}
	if r.PValue > 0.01 {
		t.Errorf("p = %v for exp data, want tiny", r.PValue)
	}
}

func TestDAgostinoSymmetricHeavyTails(t *testing.T) {
	// Symmetric but heavy-tailed (Laplace-like): skewness Z small, kurtosis
	// Z large; the omnibus test should still reject.
	s := rng.New(11)
	xs := make([]float64, 500)
	for i := range xs {
		v := s.Exp(1)
		if s.Bernoulli(0.5) {
			v = -v
		}
		xs[i] = v
	}
	r, err := DAgostinoK2(xs, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if !r.RejectNormal {
		t.Errorf("failed to reject Laplace sample: K²=%v p=%v", r.Statistic, r.PValue)
	}
}

func TestAndersonDarlingStatisticRange(t *testing.T) {
	r, err := AndersonDarlingTest(normalSample(3, 200, 5, 2), DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if r.Statistic < 0 {
		t.Errorf("A²* = %v negative", r.Statistic)
	}
	if r.Statistic > 2 {
		t.Errorf("A²* = %v too large for normal data", r.Statistic)
	}
}

func TestAndersonDarlingCriticalValues(t *testing.T) {
	if v := criticalValueFor(0.05); v != 0.787 {
		t.Errorf("5%% critical value = %v, want 0.787", v)
	}
	if v := criticalValueFor(0.01); v != 1.092 {
		t.Errorf("1%% critical value = %v, want 1.092", v)
	}
	if v := criticalValueFor(0.15); v != 0.576 {
		t.Errorf("15%% critical value = %v, want 0.576", v)
	}
}

func TestErrorsOnDegenerateSamples(t *testing.T) {
	constant := make([]float64, 48)
	for i := range constant {
		constant[i] = 3.14
	}
	for _, test := range Tests {
		if _, err := Run(test, constant, DefaultAlpha); err == nil {
			t.Errorf("%v: expected error on constant sample", test)
		}
		if _, err := Run(test, []float64{1, 2}, DefaultAlpha); err == nil {
			t.Errorf("%v: expected error on tiny sample", test)
		}
	}
}

func TestBatteryDegenerateMarksRejected(t *testing.T) {
	out := Battery([]float64{1, 2}, DefaultAlpha)
	for _, r := range out {
		if r.Passed() {
			t.Errorf("%v: degenerate sample should count as rejected", r.Test)
		}
	}
}

func TestBatteryNormalSample(t *testing.T) {
	out := Battery(normalSample(12345, 48, 60.91e-3, 6.71e-3), DefaultAlpha)
	for _, r := range out {
		if r.N != 48 {
			t.Errorf("%v: N = %d", r.Test, r.N)
		}
		if r.PValue < 0 || r.PValue > 1 {
			t.Errorf("%v: p = %v outside [0,1]", r.Test, r.PValue)
		}
	}
}

func TestTestString(t *testing.T) {
	if DAgostino.String() != "D'Agostino" ||
		ShapiroWilk.String() != "Shapiro-Wilk" ||
		AndersonDarling.String() != "Anderson-Darling" {
		t.Error("unexpected test names")
	}
	if Test(99).String() == "" {
		t.Error("unknown test should still render")
	}
}

func TestLargeSampleRejectsMixture(t *testing.T) {
	// Application-level aggregation in the paper mixes many process
	// iterations with different medians; such mixtures must be rejected
	// even when each component is normal (Section 4.1).
	s := rng.New(99)
	xs := make([]float64, 20000)
	for i := range xs {
		mu := 26.3e-3
		if i%2 == 0 {
			mu = 25.1e-3
		}
		xs[i] = s.Normal(mu, 0.1e-3)
	}
	for _, test := range Tests {
		r, err := Run(test, xs, DefaultAlpha)
		if err != nil {
			t.Fatalf("%v: %v", test, err)
		}
		if !r.RejectNormal {
			t.Errorf("%v: failed to reject bimodal mixture", test)
		}
	}
}
