// Package normality implements the three normality tests the paper uses to
// classify thread-arrival distributions (Section 4.1): D'Agostino's K²
// omnibus test, the Shapiro-Wilk test (Royston's AS R94 algorithm), and the
// Anderson-Darling test with Stephens' case-3 small-sample adjustment
// (mean and variance estimated from the sample).
//
// Each test takes the null hypothesis that the sample is drawn from a
// normal distribution; the paper rejects at a 5% significance level.
package normality

import (
	"errors"
	"fmt"

	"earlybird/internal/sortx"
)

// DefaultAlpha is the significance level used throughout the paper.
const DefaultAlpha = 0.05

// Test identifies one of the three normality tests.
type Test int

const (
	// DAgostino is D'Agostino's K² omnibus test (skewness + kurtosis).
	DAgostino Test = iota
	// ShapiroWilk is the Shapiro-Wilk W test (Royston AS R94).
	ShapiroWilk
	// AndersonDarling is the Anderson-Darling A² test, case 3.
	AndersonDarling
	numTests
)

// Tests lists all three tests in the order the paper's Table 1 reports them.
var Tests = []Test{DAgostino, ShapiroWilk, AndersonDarling}

// Slug returns the test's machine-readable name, used as a JSON object
// key by the serve layer's wire format.
func (t Test) Slug() string {
	switch t {
	case DAgostino:
		return "dagostino"
	case ShapiroWilk:
		return "shapiro_wilk"
	case AndersonDarling:
		return "anderson_darling"
	default:
		return fmt.Sprintf("test_%d", int(t))
	}
}

// String returns the conventional test name.
func (t Test) String() string {
	switch t {
	case DAgostino:
		return "D'Agostino"
	case ShapiroWilk:
		return "Shapiro-Wilk"
	case AndersonDarling:
		return "Anderson-Darling"
	default:
		return fmt.Sprintf("Test(%d)", int(t))
	}
}

// Result is the outcome of a single normality test on a sample.
type Result struct {
	Test Test
	// Statistic is the raw test statistic (K², W, or the adjusted A²*).
	Statistic float64
	// PValue is the p-value where the test provides one. The
	// Anderson-Darling decision is made against Stephens' critical
	// values; its PValue is an interpolated approximation.
	PValue float64
	// RejectNormal reports whether the null hypothesis of normality is
	// rejected at the significance level the test was run with.
	RejectNormal bool
	// N is the sample size.
	N int
}

// Passed reports whether the sample "passed" the normality test, i.e. the
// test failed to reject the null hypothesis — the quantity Table 1 counts.
func (r Result) Passed() bool { return !r.RejectNormal }

// Errors shared by the tests.
var (
	ErrSampleTooSmall = errors.New("normality: sample too small")
	ErrConstantSample = errors.New("normality: sample has zero variance")
)

// Run dispatches to the requested test at significance alpha.
func Run(t Test, xs []float64, alpha float64) (Result, error) {
	switch t {
	case DAgostino:
		return DAgostinoK2(xs, alpha)
	case ShapiroWilk:
		return ShapiroWilkTest(xs, alpha)
	case AndersonDarling:
		return AndersonDarlingTest(xs, alpha)
	default:
		return Result{}, fmt.Errorf("normality: unknown test %d", int(t))
	}
}

// Battery runs all three tests at significance alpha and returns the
// results indexed by Test. A test that cannot run on the sample (for
// example, too few observations) contributes a zero Result with
// RejectNormal = true, matching the paper's treatment of degenerate sets.
//
// The sample is sorted once and the sorted copy shared by Shapiro-Wilk
// and Anderson-Darling (historically each test sorted its own copy);
// D'Agostino is moment-based and consumes the sample in its original
// order, so every statistic is bit-identical to the per-test entry
// points.
func Battery(xs []float64, alpha float64) [3]Result {
	return BatteryScratch(xs, nil, alpha)
}

// BatteryScratch is Battery with a caller-provided scratch buffer for
// the sorted copy, for hot paths that run the battery once per block
// (internal/analysis' Table1Accumulator): when cap(scratch) >= len(xs)
// no allocation happens. scratch may be nil; its contents are
// overwritten.
func BatteryScratch(xs, scratch []float64, alpha float64) [3]Result {
	n := len(xs)
	if cap(scratch) < n {
		scratch = make([]float64, n)
	}
	scratch = scratch[:n]
	copy(scratch, xs)
	sortx.Sort(scratch)

	var out [3]Result
	for _, t := range Tests {
		var (
			r   Result
			err error
		)
		switch t {
		case ShapiroWilk:
			r, err = ShapiroWilkSorted(scratch, alpha)
		case AndersonDarling:
			r, err = AndersonDarlingSorted(scratch, alpha)
		default:
			r, err = Run(t, xs, alpha)
		}
		if err != nil {
			r = Result{Test: t, RejectNormal: true, N: n}
		}
		out[t] = r
	}
	return out
}
