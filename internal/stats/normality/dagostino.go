package normality

import (
	"math"

	"earlybird/internal/stats"
)

// skewnessZ transforms the sample skewness into an approximately standard
// normal statistic using D'Agostino's (1970) transformation.
func skewnessZ(xs []float64) float64 {
	n := float64(len(xs))
	g1 := stats.Skewness(xs)
	y := g1 * math.Sqrt((n+1)*(n+3)/(6*(n-2)))
	beta2 := 3 * (n*n + 27*n - 70) * (n + 1) * (n + 3) /
		((n - 2) * (n + 5) * (n + 7) * (n + 9))
	w2 := -1 + math.Sqrt(2*(beta2-1))
	delta := 1 / math.Sqrt(math.Log(math.Sqrt(w2)))
	alpha := math.Sqrt(2 / (w2 - 1))
	if y == 0 {
		return 0
	}
	return delta * math.Log(y/alpha+math.Sqrt((y/alpha)*(y/alpha)+1))
}

// kurtosisZ transforms the sample kurtosis into an approximately standard
// normal statistic using the Anscombe-Glynn (1983) transformation.
func kurtosisZ(xs []float64) float64 {
	n := float64(len(xs))
	b2 := stats.Kurtosis(xs)
	meanB2 := 3 * (n - 1) / (n + 1)
	varB2 := 24 * n * (n - 2) * (n - 3) / ((n + 1) * (n + 1) * (n + 3) * (n + 5))
	x := (b2 - meanB2) / math.Sqrt(varB2)
	sqrtBeta1 := 6 * (n*n - 5*n + 2) / ((n + 7) * (n + 9)) *
		math.Sqrt(6*(n+3)*(n+5)/(n*(n-2)*(n-3)))
	a := 6 + 8/sqrtBeta1*(2/sqrtBeta1+math.Sqrt(1+4/(sqrtBeta1*sqrtBeta1)))
	num := 1 - 2/a
	den := 1 + x*math.Sqrt(2/(a-4))
	// den can be non-positive for extreme platykurtic samples; the cube
	// root of a negative ratio is handled by Cbrt.
	term := math.Cbrt(num / den)
	return ((1 - 2/(9*a)) - term) / math.Sqrt(2/(9*a))
}

// DAgostinoK2 performs D'Agostino's K² omnibus normality test, which
// combines the skewness and kurtosis z-statistics into K² = Z1² + Z2²,
// distributed approximately chi-squared with 2 degrees of freedom under
// the null hypothesis of normality.
//
// The test requires n >= 20 for the kurtosis approximation to hold
// (D'Agostino, Belanger & D'Agostino 1990); the paper's smallest sets
// are n = 48.
func DAgostinoK2(xs []float64, alpha float64) (Result, error) {
	if len(xs) < 20 {
		return Result{}, ErrSampleTooSmall
	}
	if stats.Min(xs) == stats.Max(xs) {
		return Result{}, ErrConstantSample
	}
	z1 := skewnessZ(xs)
	z2 := kurtosisZ(xs)
	k2 := z1*z1 + z2*z2
	p := stats.ChiSquaredSF(k2, 2)
	return Result{
		Test:         DAgostino,
		Statistic:    k2,
		PValue:       p,
		RejectNormal: p < alpha,
		N:            len(xs),
	}, nil
}
