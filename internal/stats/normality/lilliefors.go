package normality

import (
	"math"

	"earlybird/internal/sortx"
	"earlybird/internal/stats"
)

// LillieforsTest performs the Kolmogorov-Smirnov test of composite
// normality with mean and variance estimated from the sample (the
// Lilliefors correction). Like JarqueBeraTest it extends the paper's
// battery rather than belonging to it; the EDF statistic makes it a
// useful cross-check on Anderson-Darling, which weights the tails more
// heavily.
//
// The decision uses the Dallal-Wilkinson (1986) approximation of the
// Lilliefors distribution, accurate for n >= 5.
func LillieforsTest(xs []float64, alpha float64) (Result, error) {
	n := len(xs)
	if n < 5 {
		return Result{}, ErrSampleTooSmall
	}
	x := make([]float64, n)
	copy(x, xs)
	sortx.Sort(x)
	return LillieforsSorted(x, alpha)
}

// LillieforsSorted is LillieforsTest on an already-sorted sample: x
// must be ascending and is not modified. The statistic is bit-identical
// to LillieforsTest on the unsorted sample.
func LillieforsSorted(x []float64, alpha float64) (Result, error) {
	n := len(x)
	if n < 5 {
		return Result{}, ErrSampleTooSmall
	}
	if x[0] == x[n-1] {
		return Result{}, ErrConstantSample
	}
	mean := stats.Mean(x)
	sd := stats.StdDev(x)

	// D = sup |F_n(x) - Phi(z)| over the sample points, checking both
	// sides of each step of the empirical CDF.
	d := 0.0
	nf := float64(n)
	for i, xi := range x {
		z := (xi - mean) / sd
		cdf := stats.NormalCDF(z)
		upper := float64(i+1)/nf - cdf
		lower := cdf - float64(i)/nf
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}

	p := lillieforsPValue(d, n)
	return Result{
		Test:         Test(numTests), // outside the primary battery
		Statistic:    d,
		PValue:       p,
		RejectNormal: p < alpha,
		N:            n,
	}, nil
}

// lillieforsPValue implements the Dallal-Wilkinson approximation. For
// p-values outside (0.001, 0.10) — where the approximation was fitted —
// the value is clamped toward the informative end, which is sufficient
// for fixed-level decisions.
func lillieforsPValue(d float64, n int) float64 {
	nf := float64(n)
	if n > 100 {
		// Dallal-Wilkinson rescaling for large n.
		d *= math.Pow(nf/100, 0.49)
		nf = 100
	}
	p := math.Exp(-7.01256*d*d*(nf+2.78019) +
		2.99587*d*math.Sqrt(nf+2.78019) -
		0.122119 + 0.974598/math.Sqrt(nf) + 1.67997/nf)
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}
