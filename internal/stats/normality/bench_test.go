package normality

import (
	"fmt"
	"testing"
)

// The three sample sizes of the paper's aggregation levels: process
// iteration (48), application iteration (3840), application (768000 is
// too slow for a default bench sweep; 76800 preserves the scaling
// picture).
var benchSizes = []int{48, 3840, 76800}

func benchSamples(n int) []float64 {
	return normalSample(42, n, 26.3e-3, 0.18e-3)
}

func BenchmarkDAgostino(b *testing.B) {
	for _, n := range benchSizes {
		xs := benchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := DAgostinoK2(xs, DefaultAlpha); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkShapiroWilk(b *testing.B) {
	for _, n := range benchSizes {
		xs := benchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ShapiroWilkTest(xs, DefaultAlpha); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAndersonDarling(b *testing.B) {
	for _, n := range benchSizes {
		xs := benchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := AndersonDarlingTest(xs, DefaultAlpha); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkJarqueBera(b *testing.B) {
	for _, n := range benchSizes {
		xs := benchSamples(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := JarqueBeraTest(xs, DefaultAlpha); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBattery measures a full Table 1 cell: all three tests on one
// 48-thread process iteration.
func BenchmarkBattery(b *testing.B) {
	xs := benchSamples(48)
	for i := 0; i < b.N; i++ {
		Battery(xs, DefaultAlpha)
	}
}
