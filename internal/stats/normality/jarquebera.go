package normality

import (
	"earlybird/internal/stats"
)

// JarqueBeraTest performs the Jarque-Bera normality test:
// JB = n/6 (g1² + (b2-3)²/4), asymptotically chi-squared with 2 degrees
// of freedom under normality.
//
// It is not one of the paper's three tests (Tests) but is provided as an
// extension: it is the cheapest of the moment-based tests and is used by
// the large-sample sanity sweeps, where the chi-squared approximation is
// excellent.
func JarqueBeraTest(xs []float64, alpha float64) (Result, error) {
	n := len(xs)
	// The chi-squared approximation is poor below a few hundred samples;
	// require a moderate floor and leave small-sample work to the three
	// primary tests.
	if n < 30 {
		return Result{}, ErrSampleTooSmall
	}
	if stats.Min(xs) == stats.Max(xs) {
		return Result{}, ErrConstantSample
	}
	g1 := stats.Skewness(xs)
	b2 := stats.Kurtosis(xs)
	jb := float64(n) / 6 * (g1*g1 + (b2-3)*(b2-3)/4)
	p := stats.ChiSquaredSF(jb, 2)
	return Result{
		Test:         Test(numTests), // outside the primary battery
		Statistic:    jb,
		PValue:       p,
		RejectNormal: p < alpha,
		N:            n,
	}, nil
}
