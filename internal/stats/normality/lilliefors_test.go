package normality

import "testing"

func TestLillieforsSizeUnderNull(t *testing.T) {
	rejected := 0
	const trials = 300
	for i := uint64(1); i <= trials; i++ {
		r, err := LillieforsTest(normalSample(i, 48, 26.3e-3, 0.2e-3), DefaultAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if r.RejectNormal {
			rejected++
		}
	}
	rate := float64(rejected) / trials
	if rate > 0.10 {
		t.Errorf("Lilliefors rejection rate %v under null, want <= 0.10", rate)
	}
	if rate < 0.002 {
		t.Errorf("Lilliefors rejection rate %v suspiciously low", rate)
	}
}

func TestLillieforsPowerAgainstExponential(t *testing.T) {
	rejected := 0
	const trials = 100
	for i := uint64(1); i <= trials; i++ {
		r, err := LillieforsTest(expSample(i, 100, 1), DefaultAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if r.RejectNormal {
			rejected++
		}
	}
	if rejected < 95 {
		t.Errorf("Lilliefors rejected %d/100 exponential samples, want >= 95", rejected)
	}
}

func TestLillieforsLargeSample(t *testing.T) {
	// The n > 100 rescaling path.
	r, err := LillieforsTest(normalSample(3, 5000, 0, 1), DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if r.PValue < 0 || r.PValue > 1 {
		t.Fatalf("p = %v", r.PValue)
	}
	skewed, err := LillieforsTest(expSample(3, 5000, 1), DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if !skewed.RejectNormal {
		t.Error("large exponential sample not rejected")
	}
}

func TestLillieforsDegenerate(t *testing.T) {
	if _, err := LillieforsTest([]float64{1, 2}, DefaultAlpha); err == nil {
		t.Error("tiny sample accepted")
	}
	constant := []float64{2, 2, 2, 2, 2, 2}
	if _, err := LillieforsTest(constant, DefaultAlpha); err == nil {
		t.Error("constant sample accepted")
	}
}

func TestLillieforsStatisticBounds(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		r, err := LillieforsTest(normalSample(seed, 64, 10, 2), DefaultAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if r.Statistic <= 0 || r.Statistic >= 1 {
			t.Fatalf("D = %v outside (0,1)", r.Statistic)
		}
	}
}
