package normality

import (
	"math"

	"earlybird/internal/sortx"
	"earlybird/internal/stats"
)

// adCriticalSig and adCriticalVal are Stephens' (1974) significance levels
// and critical values for the Anderson-Darling statistic when testing
// normality with both mean and variance estimated from the sample
// ("case 3"), applied to the small-sample-adjusted statistic A²*.
var (
	adCriticalSig = []float64{0.15, 0.10, 0.05, 0.025, 0.01}
	adCriticalVal = []float64{0.576, 0.656, 0.787, 0.918, 1.092}
)

// AndersonDarlingTest performs the Anderson-Darling test of composite
// normality. The statistic is adjusted for sample size with
// A²* = A² (1 + 0.75/n + 2.25/n²) and compared against Stephens' case-3
// critical values. The paper reports results for a significance level of
// 5%; other levels snap to the nearest tabulated level at or below alpha.
func AndersonDarlingTest(xs []float64, alpha float64) (Result, error) {
	n := len(xs)
	if n < 8 {
		// Below n=8 the case-3 adjustment is unreliable (scipy uses the
		// same floor for its normality table).
		return Result{}, ErrSampleTooSmall
	}
	x := make([]float64, n)
	copy(x, xs)
	sortx.Sort(x)
	return AndersonDarlingSorted(x, alpha)
}

// AndersonDarlingSorted is AndersonDarlingTest on an already-sorted
// sample: x must be ascending and is not modified. The statistic is
// bit-identical to AndersonDarlingTest on the unsorted sample.
func AndersonDarlingSorted(x []float64, alpha float64) (Result, error) {
	n := len(x)
	if n < 8 {
		return Result{}, ErrSampleTooSmall
	}
	if x[0] == x[n-1] {
		return Result{}, ErrConstantSample
	}
	mean := stats.Mean(x)
	sd := stats.StdDev(x)

	nf := float64(n)
	sum := 0.0
	for i := 0; i < n; i++ {
		zi := (x[i] - mean) / sd
		zrev := (x[n-1-i] - mean) / sd
		// ln Phi(z_i) + ln(1 - Phi(z_{n+1-i})); compute both in log space
		// via Erfc to stay finite deep in the tails.
		lcdf := logNormalCDF(zi)
		lsf := logNormalCDF(-zrev) // 1 - Phi(z) = Phi(-z)
		sum += (2*float64(i+1) - 1) * (lcdf + lsf)
	}
	a2 := -nf - sum/nf
	a2star := a2 * (1 + 0.75/nf + 2.25/(nf*nf))

	crit := criticalValueFor(alpha)
	return Result{
		Test:         AndersonDarling,
		Statistic:    a2star,
		PValue:       adPValue(a2star),
		RejectNormal: a2star > crit,
		N:            n,
	}, nil
}

// criticalValueFor returns the Stephens case-3 critical value for the
// tabulated significance level closest to alpha (exact for the paper's 5%).
func criticalValueFor(alpha float64) float64 {
	best := 0
	bestDist := math.Abs(adCriticalSig[0] - alpha)
	for i, sig := range adCriticalSig {
		if d := math.Abs(sig - alpha); d < bestDist {
			best, bestDist = i, d
		}
	}
	return adCriticalVal[best]
}

// adPValue approximates the p-value of the adjusted statistic using the
// piecewise formulas of D'Agostino & Stephens (1986), Table 4.9.
func adPValue(a2 float64) float64 {
	switch {
	case a2 >= 0.6:
		return math.Exp(1.2937 - 5.709*a2 + 0.0186*a2*a2)
	case a2 >= 0.34:
		return math.Exp(0.9177 - 4.279*a2 - 1.38*a2*a2)
	case a2 >= 0.2:
		return 1 - math.Exp(-8.318+42.796*a2-59.938*a2*a2)
	default:
		return 1 - math.Exp(-13.436+101.14*a2-223.73*a2*a2)
	}
}

// logNormalCDF returns ln Phi(x) computed stably for large negative x.
func logNormalCDF(x float64) float64 {
	// Phi(x) = erfc(-x/sqrt2)/2. Erfc underflows around x < -38; switch
	// to the asymptotic expansion of the tail there.
	if x > -37 {
		return math.Log(0.5 * math.Erfc(-x/math.Sqrt2))
	}
	// ln Phi(x) ~ -x²/2 - ln(-x) - ln(2π)/2 for x -> -inf.
	return -x*x/2 - math.Log(-x) - 0.5*math.Log(2*math.Pi)
}
