package normality

import "testing"

func TestJarqueBeraSizeUnderNull(t *testing.T) {
	rejected := 0
	const trials = 300
	for i := uint64(1); i <= trials; i++ {
		r, err := JarqueBeraTest(normalSample(i, 500, 0, 1), DefaultAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if r.RejectNormal {
			rejected++
		}
	}
	rate := float64(rejected) / trials
	if rate > 0.10 {
		t.Errorf("JB rejection rate %v under null, want <= 0.10", rate)
	}
}

func TestJarqueBeraPowerAgainstExponential(t *testing.T) {
	rejected := 0
	const trials = 100
	for i := uint64(1); i <= trials; i++ {
		r, err := JarqueBeraTest(expSample(i, 200, 1), DefaultAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if r.RejectNormal {
			rejected++
		}
	}
	if rejected < 99 {
		t.Errorf("JB rejected only %d/100 exponential samples", rejected)
	}
}

func TestJarqueBeraDegenerate(t *testing.T) {
	if _, err := JarqueBeraTest([]float64{1, 2, 3}, DefaultAlpha); err == nil {
		t.Error("tiny sample accepted")
	}
	constant := make([]float64, 100)
	if _, err := JarqueBeraTest(constant, DefaultAlpha); err == nil {
		t.Error("constant sample accepted")
	}
}

// JB agrees with D'Agostino on large clear-cut samples (both are
// moment-based chi-squared omnibus tests).
func TestJarqueBeraAgreesWithDAgostino(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		normal := normalSample(seed, 2000, 5, 2)
		jb, err1 := JarqueBeraTest(normal, DefaultAlpha)
		da, err2 := DAgostinoK2(normal, DefaultAlpha)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		// Disagreement possible only near the boundary; require
		// agreement when both p-values are decisive.
		if (jb.PValue > 0.2) != (da.PValue > 0.2) && (jb.PValue < 0.01) != (da.PValue < 0.01) {
			t.Errorf("seed %d: JB p=%v vs D'Ag p=%v", seed, jb.PValue, da.PValue)
		}
		skewed := expSample(seed, 2000, 1)
		jb2, _ := JarqueBeraTest(skewed, DefaultAlpha)
		da2, _ := DAgostinoK2(skewed, DefaultAlpha)
		if !jb2.RejectNormal || !da2.RejectNormal {
			t.Errorf("seed %d: decisive skew not rejected by both", seed)
		}
	}
}
