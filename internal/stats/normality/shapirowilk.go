package normality

import (
	"math"
	"sync"

	"earlybird/internal/sortx"
	"earlybird/internal/stats"
)

// ShapiroWilkTest performs the Shapiro-Wilk W test for normality using
// Royston's 1995 algorithm (AS R94), the same algorithm used by R's
// shapiro.test and SciPy. Valid for 3 <= n <= 5000; for larger samples the
// statistic is still computed but, as in SciPy, the p-value approximation
// degrades gracefully (the paper applies the test to samples up to
// n = 768000 at the application aggregation level, where the verdict —
// reject — is far from the boundary).
func ShapiroWilkTest(xs []float64, alpha float64) (Result, error) {
	n := len(xs)
	if n < 3 {
		return Result{}, ErrSampleTooSmall
	}
	x := make([]float64, n)
	copy(x, xs)
	sortx.Sort(x)
	return ShapiroWilkSorted(x, alpha)
}

// ShapiroWilkSorted is ShapiroWilkTest on an already-sorted sample:
// x must be ascending and is not modified. Callers that sort once and
// fan the sorted data across several tests (see Battery) avoid the
// per-test copy + sort this way; the statistic is bit-identical to
// ShapiroWilkTest on the unsorted sample.
func ShapiroWilkSorted(x []float64, alpha float64) (Result, error) {
	n := len(x)
	if n < 3 {
		return Result{}, ErrSampleTooSmall
	}
	if x[0] == x[n-1] {
		return Result{}, ErrConstantSample
	}

	w := swStatistic(x)
	p := swPValue(w, n)
	return Result{
		Test:         ShapiroWilk,
		Statistic:    w,
		PValue:       p,
		RejectNormal: p < alpha,
		N:            n,
	}, nil
}

// swWeights computes the Royston-approximated coefficients a_i for the
// ordered sample of size n. Only the first half is returned; the second
// half is the antisymmetric reflection a_{n+1-i} = -a_i.
func swWeights(n int) []float64 {
	half := n / 2
	m := make([]float64, half)
	ssq := 0.0
	for i := 0; i < half; i++ {
		// Blom-like scores m_i = Phi^-1((i - 0.375)/(n + 0.25)) for the
		// lower half (i counted from 1). For odd n the middle score is
		// exactly zero and contributes nothing, so it is omitted.
		mi := stats.NormalQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
		m[i] = mi
		ssq += 2 * mi * mi // symmetric contribution of upper half
	}
	rsn := 1 / math.Sqrt(float64(n))

	a := make([]float64, half)
	if n == 3 {
		a[0] = -math.Sqrt(0.5)
		return a
	}
	// Royston polynomial corrections to the normalised scores for the two
	// most extreme coefficients (only one for n <= 5). The derivation works
	// with the positive upper-tail weight a_n = c_n + poly(u); the returned
	// lower-half weights are its antisymmetric reflection (negative).
	c1 := []float64{0, 0.221157, -0.147981, -2.071190, 4.434685, -2.706056}
	c2 := []float64{0, 0.042981, -0.293762, -1.752461, 5.682633, -3.582633}
	mN := m[0] // most extreme (negative) lower score, m_1 = -m_n
	an := -mN/math.Sqrt(ssq) + poly(c1, rsn)

	if n > 5 {
		an1 := -m[1]/math.Sqrt(ssq) + poly(c2, rsn)
		phi := (ssq - 2*mN*mN - 2*m[1]*m[1]) / (1 - 2*an*an - 2*an1*an1)
		a[0] = -an
		a[1] = -an1
		for i := 2; i < half; i++ {
			a[i] = m[i] / math.Sqrt(phi)
		}
	} else {
		phi := (ssq - 2*mN*mN) / (1 - 2*an*an)
		a[0] = -an
		for i := 1; i < half; i++ {
			a[i] = m[i] / math.Sqrt(phi)
		}
	}
	return a
}

// poly evaluates c[0] + c[1]*x + c[2]*x^2 + ... .
func poly(c []float64, x float64) float64 {
	sum := 0.0
	for i := len(c) - 1; i >= 0; i-- {
		sum = sum*x + c[i]
	}
	return sum
}

// swWeightCache memoizes swWeights by sample size: a streaming study
// runs the battery on millions of equally-sized blocks, and the weight
// vector — half-sample NormalQuantile evaluations plus Royston
// corrections — is a pure function of n. The cached slice is computed
// by the same code and never written after insertion, so results are
// bit-identical and concurrent per-worker batteries can share it.
var swWeightCache sync.Map // int -> []float64

func swWeightsCached(n int) []float64 {
	if a, ok := swWeightCache.Load(n); ok {
		return a.([]float64)
	}
	a, _ := swWeightCache.LoadOrStore(n, swWeights(n))
	return a.([]float64)
}

// swStatistic computes W for the sorted sample x.
func swStatistic(x []float64) float64 {
	n := len(x)
	a := swWeightsCached(n)
	num := 0.0
	for i, ai := range a {
		// a_i is negative for the lower half; pair with the reflected
		// upper-half coefficient -a_i.
		num += ai * (x[i] - x[n-1-i])
	}
	mean := stats.Mean(x)
	den := 0.0
	for _, xi := range x {
		den += (xi - mean) * (xi - mean)
	}
	return num * num / den
}

// swPValue converts W to a p-value with Royston's normalising
// transformations.
func swPValue(w float64, n int) float64 {
	if w >= 1 {
		return 1
	}
	nf := float64(n)
	switch {
	case n == 3:
		// Exact small-sample distribution.
		const pi6, stqr = 1.90985931710274, 1.04719755119660 // 6/pi, asin(sqrt(3/4))
		p := pi6 * (math.Asin(math.Sqrt(w)) - stqr)
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	case n <= 11:
		gamma := -2.273 + 0.459*nf
		wv := -math.Log(gamma - math.Log(1-w))
		mu := 0.5440 - 0.39978*nf + 0.025054*nf*nf - 0.0006714*nf*nf*nf
		sigma := math.Exp(1.3822 - 0.77857*nf + 0.062767*nf*nf - 0.0020322*nf*nf*nf)
		z := (wv - mu) / sigma
		return 1 - stats.NormalCDF(z)
	default:
		g := math.Log(nf)
		wv := math.Log(1 - w)
		mu := -1.5861 - 0.31082*g - 0.083751*g*g + 0.0038915*g*g*g
		sigma := math.Exp(-0.4803 - 0.082676*g + 0.0030302*g*g)
		z := (wv - mu) / sigma
		return 1 - stats.NormalCDF(z)
	}
}
