package stats

import (
	"math"
	"math/rand"
	"testing"
)

// relDiff returns |a-b| / max(|a|, |b|, 1e-300).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-300 {
		return d
	}
	return d / scale
}

// streamCases generates the sample families the property tests run over:
// tight normal (arrival-like), uniform, lognormal (heavy right tail) and a
// laggard mixture resembling the paper's process iterations.
func streamCases(r *rand.Rand, n int) map[string][]float64 {
	normal := make([]float64, n)
	uniform := make([]float64, n)
	lognormal := make([]float64, n)
	mixture := make([]float64, n)
	for i := 0; i < n; i++ {
		normal[i] = 26.3e-3 + 0.18e-3*r.NormFloat64()
		uniform[i] = 10e-3 + 20e-3*r.Float64()
		lognormal[i] = math.Exp(-3.6 + 0.4*r.NormFloat64())
		mixture[i] = 24.7e-3 + 0.1e-3*r.NormFloat64()
		if r.Float64() < 0.05 {
			mixture[i] += 1e-3 + r.ExpFloat64()*2e-3
		}
	}
	return map[string][]float64{
		"normal":    normal,
		"uniform":   uniform,
		"lognormal": lognormal,
		"mixture":   mixture,
	}
}

// TestMomentsMatchesExact: the streaming Moments accumulator must agree
// with the exact two-pass statistics within floating-point rounding
// (documented tolerance: 1e-9 relative).
func TestMomentsMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for name, xs := range streamCases(r, 20000) {
		t.Run(name, func(t *testing.T) {
			var m Moments
			m.AddSlice(xs)
			checks := []struct {
				what      string
				got, want float64
			}{
				{"mean", m.Mean(), Mean(xs)},
				{"variance", m.Variance(), Variance(xs)},
				{"stddev", m.StdDev(), StdDev(xs)},
				{"skewness", m.Skewness(), Skewness(xs)},
				{"kurtosis", m.Kurtosis(), Kurtosis(xs)},
				{"min", m.Min(), Min(xs)},
				{"max", m.Max(), Max(xs)},
			}
			if m.N() != int64(len(xs)) {
				t.Fatalf("N = %d, want %d", m.N(), len(xs))
			}
			for _, c := range checks {
				if relDiff(c.got, c.want) > 1e-9 {
					t.Errorf("%s: streaming %v vs exact %v (rel %g)", c.what, c.got, c.want, relDiff(c.got, c.want))
				}
			}
		})
	}
}

// TestMomentsMergeMatchesSequential: merging per-shard accumulators must
// agree with one sequential pass — the property the parallel fill relies
// on.
func TestMomentsMergeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for name, xs := range streamCases(r, 12000) {
		t.Run(name, func(t *testing.T) {
			var whole Moments
			whole.AddSlice(xs)
			var merged Moments
			for i := 0; i < len(xs); i += 1700 { // uneven shards
				end := i + 1700
				if end > len(xs) {
					end = len(xs)
				}
				var shard Moments
				shard.AddSlice(xs[i:end])
				merged.Merge(&shard)
			}
			if merged.N() != whole.N() {
				t.Fatalf("merged N = %d, want %d", merged.N(), whole.N())
			}
			for _, c := range []struct {
				what      string
				got, want float64
			}{
				{"mean", merged.Mean(), whole.Mean()},
				{"variance", merged.Variance(), whole.Variance()},
				{"skewness", merged.Skewness(), whole.Skewness()},
				{"kurtosis", merged.Kurtosis(), whole.Kurtosis()},
				{"min", merged.Min(), whole.Min()},
				{"max", merged.Max(), whole.Max()},
			} {
				if relDiff(c.got, c.want) > 1e-8 {
					t.Errorf("%s: merged %v vs sequential %v", c.what, c.got, c.want)
				}
			}
		})
	}
}

func TestMomentsEmptyAndDegenerate(t *testing.T) {
	var m Moments
	if !math.IsNaN(m.Mean()) || !math.IsNaN(m.Variance()) || !math.IsNaN(m.Min()) || !math.IsNaN(m.Max()) {
		t.Fatal("empty accumulator should report NaN")
	}
	m.Add(3)
	if m.Mean() != 3 || m.Min() != 3 || m.Max() != 3 {
		t.Fatal("single observation mishandled")
	}
	if !math.IsNaN(m.Variance()) {
		t.Fatal("variance of n=1 should be NaN")
	}
	var other Moments
	other.Merge(&m)
	if other.Mean() != 3 || other.N() != 1 {
		t.Fatal("merge into empty lost state")
	}
}

// empiricalRank returns the fraction of the sorted sample <= v.
func empiricalRank(sorted []float64, v float64) float64 {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return float64(lo) / float64(len(sorted))
}

// TestQuantileSketchMatchesExact checks the documented guarantees at the
// default compression: rank error of the estimate at most 1.5% at the
// quartiles and median and 2% at the 5th/95th percentiles, and — where
// the density is smooth (every family's quartiles) — value agreement
// within 2% of the sample IQR.
func TestQuantileSketchMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for name, xs := range streamCases(r, 20000) {
		t.Run(name, func(t *testing.T) {
			q := NewQuantileSketch(0)
			q.AddSlice(xs)
			sorted := Sorted(xs)
			iqr := IQRSorted(sorted)
			for _, c := range []struct {
				p       float64
				rankTol float64
			}{
				{5, 0.02},
				{25, 0.015},
				{50, 0.015},
				{75, 0.015},
				{95, 0.02},
			} {
				got := q.Percentile(c.p)
				if rank := empiricalRank(sorted, got); math.Abs(rank-c.p/100) > c.rankTol {
					t.Errorf("p%g: sketch %v sits at empirical rank %.4f (tol ±%g)", c.p, got, rank, c.rankTol)
				}
			}
			for _, p := range []float64{25, 50, 75} {
				got, want := q.Percentile(p), PercentileSorted(sorted, p)
				if math.Abs(got-want) > 0.02*iqr {
					t.Errorf("p%g: sketch %v vs exact %v (tol %v)", p, got, want, 0.02*iqr)
				}
			}
			if q.Min() != sorted[0] || q.Max() != sorted[len(sorted)-1] {
				t.Error("sketch min/max not exact")
			}
			if q.N() != int64(len(xs)) {
				t.Fatalf("N = %d, want %d", q.N(), len(xs))
			}
		})
	}
}

// TestQuantileSketchMergeMatchesWhole: a merge of per-shard sketches must
// stay within the same tolerances as a single sketch over the whole
// sample.
func TestQuantileSketchMergeMatchesWhole(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for name, xs := range streamCases(r, 16000) {
		t.Run(name, func(t *testing.T) {
			merged := NewQuantileSketch(0)
			for i := 0; i < len(xs); i += 3000 {
				end := i + 3000
				if end > len(xs) {
					end = len(xs)
				}
				shard := NewQuantileSketch(0)
				shard.AddSlice(xs[i:end])
				merged.Merge(shard)
			}
			sorted := Sorted(xs)
			iqr := IQRSorted(sorted)
			for _, p := range []float64{25, 50, 75} {
				got := merged.Percentile(p)
				want := PercentileSorted(sorted, p)
				if math.Abs(got-want) > 0.02*iqr {
					t.Errorf("p%g: merged sketch %v vs exact %v", p, got, want)
				}
			}
			if merged.N() != int64(len(xs)) {
				t.Fatalf("merged N = %d, want %d", merged.N(), len(xs))
			}
		})
	}
}

func TestQuantileSketchEdgeCases(t *testing.T) {
	q := NewQuantileSketch(50)
	if !math.IsNaN(q.Quantile(0.5)) || !math.IsNaN(q.Min()) {
		t.Fatal("empty sketch should report NaN")
	}
	q.Add(4)
	if q.Quantile(0.5) != 4 || q.Quantile(0) != 4 || q.Quantile(1) != 4 {
		t.Fatal("single-value sketch wrong")
	}
	// Constant stream.
	for i := 0; i < 5000; i++ {
		q.Add(4)
	}
	if q.Quantile(0.25) != 4 || q.Quantile(0.99) != 4 {
		t.Fatal("constant stream quantiles wrong")
	}
	// Memory bound: centroid count stays O(compression·log n) after many
	// adds — well under 10x compression at n = 200000.
	r := rand.New(rand.NewSource(5))
	big := NewQuantileSketch(50)
	for i := 0; i < 200000; i++ {
		big.Add(r.NormFloat64())
	}
	big.flush()
	if len(big.centroids) > 10*50 {
		t.Fatalf("sketch grew to %d centroids (compression 50)", len(big.centroids))
	}
}

func TestStreamSummary(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 5 + 2*r.NormFloat64()
	}
	var m Moments
	q := NewQuantileSketch(0)
	m.AddSlice(xs)
	q.AddSlice(xs)
	got := StreamSummary(&m, q)
	want := Summarize(xs)
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatal("exact fields differ")
	}
	if relDiff(got.Mean, want.Mean) > 1e-9 || relDiff(got.StdDev, want.StdDev) > 1e-9 {
		t.Fatal("moment fields differ")
	}
	if math.Abs(got.Median-want.Median) > 0.02*want.IQR {
		t.Fatalf("median %v vs %v", got.Median, want.Median)
	}
}

// TestQuantileSketchAddSortedMatchesExact drives the AddSorted fast
// path with the hot-path block shape (sorted runs of 48, a simulated
// rank's thread count) and holds it to the same rank and value
// tolerances as the buffered Add path.
func TestQuantileSketchAddSortedMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for name, xs := range streamCases(r, 20016) {
		t.Run(name, func(t *testing.T) {
			q := NewQuantileSketch(0)
			for i := 0; i < len(xs); i += 48 {
				q.AddSorted(Sorted(xs[i : i+48]))
			}
			sorted := Sorted(xs)
			iqr := IQRSorted(sorted)
			for _, c := range []struct {
				p       float64
				rankTol float64
			}{
				{5, 0.02}, {25, 0.015}, {50, 0.015}, {75, 0.015}, {95, 0.02},
			} {
				got := q.Percentile(c.p)
				if rank := empiricalRank(sorted, got); math.Abs(rank-c.p/100) > c.rankTol {
					t.Errorf("p%g: sketch %v sits at empirical rank %.4f (tol ±%g)", c.p, got, rank, c.rankTol)
				}
			}
			for _, p := range []float64{25, 50, 75} {
				got, want := q.Percentile(p), PercentileSorted(sorted, p)
				if math.Abs(got-want) > 0.02*iqr {
					t.Errorf("p%g: sketch %v vs exact %v (tol %v)", p, got, want, 0.02*iqr)
				}
			}
			if q.Min() != sorted[0] || q.Max() != sorted[len(sorted)-1] {
				t.Error("sketch min/max not exact")
			}
			if q.N() != int64(len(xs)) {
				t.Fatalf("N = %d, want %d", q.N(), len(xs))
			}
			// The AddSorted-only ingestion path must never allocate the
			// Add buffer — that buffer is what made per-iteration
			// sketches expensive at the 100x geometry.
			if q.buf != nil {
				t.Fatal("AddSorted allocated the Add buffer")
			}
		})
	}
}

// TestQuantileSketchMixedAddAddSorted interleaves scalar Adds with
// sorted-run ingestion and checks the combined sketch against the exact
// distribution — the flush ordering between the two paths must not lose
// or double-count mass.
func TestQuantileSketchMixedAddAddSorted(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	xs := make([]float64, 12000)
	for i := range xs {
		xs[i] = 5 + 2*r.NormFloat64()
	}
	q := NewQuantileSketch(0)
	i := 0
	for i < len(xs) {
		if (i/48)%3 == 0 {
			for j := 0; j < 48; j++ {
				q.Add(xs[i+j])
			}
		} else {
			q.AddSorted(Sorted(xs[i : i+48]))
		}
		i += 48
	}
	if q.N() != int64(len(xs)) {
		t.Fatalf("N = %d, want %d", q.N(), len(xs))
	}
	sorted := Sorted(xs)
	iqr := IQRSorted(sorted)
	for _, p := range []float64{25, 50, 75} {
		got, want := q.Percentile(p), PercentileSorted(sorted, p)
		if math.Abs(got-want) > 0.02*iqr {
			t.Errorf("p%g: sketch %v vs exact %v (tol %v)", p, got, want, 0.02*iqr)
		}
	}
	// Mergeability across ingestion styles.
	q2 := NewQuantileSketch(0)
	q2.AddSorted(sorted)
	q.Merge(q2)
	if q.N() != 2*int64(len(xs)) {
		t.Fatalf("merged N = %d", q.N())
	}
	for _, p := range []float64{25, 50, 75} {
		got, want := q.Percentile(p), PercentileSorted(sorted, p)
		if math.Abs(got-want) > 0.02*iqr {
			t.Errorf("post-merge p%g: %v vs %v", p, got, want)
		}
	}
}

// TestQuantileSketchAddSortedMemoryBound pins the centroid bound for
// AddSorted-fed sketches (the per-iteration sketches at the 100x
// geometry live or die on this).
func TestQuantileSketchAddSortedMemoryBound(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	q := NewQuantileSketch(32)
	block := make([]float64, 48)
	for i := 0; i < 200016/48; i++ {
		for j := range block {
			block[j] = r.NormFloat64()
		}
		q.AddSorted(Sorted(block))
	}
	if len(q.centroids) > 10*32 {
		t.Fatalf("sketch grew to %d centroids (compression 32)", len(q.centroids))
	}
}
