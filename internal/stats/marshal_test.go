package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestMomentsBinaryRoundTrip: an unmarshalled Moments must answer every
// accessor bit-identically and keep accumulating as the original would.
func TestMomentsBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m Moments
	for i := 0; i < 1000; i++ {
		m.Add(rng.NormFloat64()*3 + 10)
	}

	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Moments
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round trip changed state: %+v vs %+v", back, m)
	}

	// Continue accumulating on both sides: still identical.
	for i := 0; i < 100; i++ {
		x := rng.ExpFloat64()
		m.Add(x)
		back.Add(x)
	}
	if back != m {
		t.Fatalf("post-round-trip accumulation diverged: %+v vs %+v", back, m)
	}

	// Deterministic encoding.
	d2, _ := m.MarshalBinary()
	d3, _ := m.MarshalBinary()
	if string(d2) != string(d3) {
		t.Error("MarshalBinary is not deterministic")
	}
}

// TestMomentsBinaryEmpty: the zero accumulator survives the wire too.
func TestMomentsBinaryEmpty(t *testing.T) {
	var m Moments
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Moments
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.N() != 0 || !math.IsNaN(back.Mean()) {
		t.Fatalf("empty round trip: %+v", back)
	}
	back.Add(4) // must initialise min/max like a fresh accumulator
	if back.Min() != 4 || back.Max() != 4 {
		t.Fatalf("empty round trip broke min/max: %v %v", back.Min(), back.Max())
	}
}

// TestSketchBinaryRoundTrip: the decoded sketch answers every quantile
// exactly as the original (post-flush) would, and merging with decoded
// shards equals merging with the originals.
func TestSketchBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := NewQuantileSketch(64)
	for i := 0; i < 5000; i++ {
		q.Add(rng.NormFloat64())
	}

	data, err := q.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back := new(QuantileSketch) // zero value: compression comes off the wire
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.N() != q.N() || back.Min() != q.Min() || back.Max() != q.Max() {
		t.Fatalf("round trip changed counters: n %d/%d min %v/%v max %v/%v",
			back.N(), q.N(), back.Min(), q.Min(), back.Max(), q.Max())
	}
	for _, p := range []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 1} {
		if got, want := back.Quantile(p), q.Quantile(p); got != want {
			t.Fatalf("quantile %g: decoded %v vs original %v", p, got, want)
		}
	}

	// Continue adding on both sides: still identical observables.
	for i := 0; i < 500; i++ {
		x := rng.ExpFloat64()
		q.Add(x)
		back.Add(x)
	}
	if got, want := back.Quantile(0.5), q.Quantile(0.5); got != want {
		t.Fatalf("post-round-trip median diverged: %v vs %v", got, want)
	}
}

// TestSketchBinaryCorrupt: truncation, bad versions and inconsistent
// centroid mass are rejected, not silently accepted.
func TestSketchBinaryCorrupt(t *testing.T) {
	q := NewQuantileSketch(32)
	q.AddSlice([]float64{1, 2, 3, 4, 5})
	data, err := q.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":       {},
		"bad version": append([]byte{99}, data[1:]...),
		"truncated":   data[:len(data)-3],
	}
	for name, b := range cases {
		var back QuantileSketch
		if err := back.UnmarshalBinary(b); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	var m Moments
	if err := m.UnmarshalBinary(data[:2]); err == nil {
		t.Error("truncated Moments: expected error")
	}
	if err := m.UnmarshalBinary(append([]byte{42}, data[1:]...)); err == nil {
		t.Error("bad Moments version: expected error")
	}
}

// TestSketchBinaryMergeEquivalence: merging decoded shard sketches gives
// the same observables as merging the originals — the property the
// fleet's coordinator relies on.
func TestSketchBinaryMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func() *QuantileSketch { return NewQuantileSketch(48) }
	shards := make([]*QuantileSketch, 3)
	for i := range shards {
		shards[i] = mk()
		for j := 0; j < 2000; j++ {
			shards[i].Add(rng.NormFloat64() * float64(i+1))
		}
	}

	direct := mk()
	viaWire := mk()
	for _, s := range shards {
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var dec QuantileSketch
		if err := dec.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		direct.Merge(s)
		viaWire.Merge(&dec)
	}
	for _, p := range []float64{0.25, 0.5, 0.75} {
		if got, want := viaWire.Quantile(p), direct.Quantile(p); got != want {
			t.Fatalf("quantile %g: via wire %v vs direct %v", p, got, want)
		}
	}
}
