// Binary codecs for the streaming accumulators, so shard-level state can
// travel over the fleet's /v1/shard wire and merge on the coordinator.
// Formats are versioned and value-preserving (see internal/wire): an
// unmarshalled accumulator continues exactly where the marshalled one
// stopped.

package stats

import (
	"fmt"

	"earlybird/internal/wire"
)

// Codec version bytes, bumped on any layout change.
const (
	momentsCodecVersion uint8 = 1
	sketchCodecVersion  uint8 = 1
)

// MarshalBinary encodes the accumulator's full state. The encoding is
// deterministic: equal accumulators marshal to equal bytes.
func (m *Moments) MarshalBinary() ([]byte, error) {
	var w wire.Writer
	w.U8(momentsCodecVersion)
	w.I64(m.n)
	w.F64(m.mean)
	w.F64(m.m2)
	w.F64(m.m3)
	w.F64(m.m4)
	w.F64(m.minSeen)
	w.F64(m.maxSeen)
	if m.nonEmpty {
		w.U8(1)
	} else {
		w.U8(0)
	}
	return w.Buf, nil
}

// UnmarshalBinary replaces the accumulator's state with the decoded one.
func (m *Moments) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != momentsCodecVersion {
		return fmt.Errorf("stats: unknown Moments codec version %d", v)
	}
	var dec Moments
	dec.n = r.I64()
	dec.mean = r.F64()
	dec.m2 = r.F64()
	dec.m3 = r.F64()
	dec.m4 = r.F64()
	dec.minSeen = r.F64()
	dec.maxSeen = r.F64()
	dec.nonEmpty = r.U8() != 0
	if err := r.Finish("Moments"); err != nil {
		return err
	}
	*m = dec
	return nil
}

// MarshalBinary encodes the sketch. Buffered values are compressed first
// (a state change Quantile performs anyway), so the encoding holds only
// centroids and the encoded sketch answers every Quantile call exactly as
// the original would have.
func (q *QuantileSketch) MarshalBinary() ([]byte, error) {
	q.flush()
	var w wire.Writer
	w.U8(sketchCodecVersion)
	w.F64(q.compression)
	w.I64(q.n)
	w.F64(q.minSeen)
	w.F64(q.maxSeen)
	w.U32(uint32(len(q.centroids)))
	for _, c := range q.centroids {
		w.F64(c.mean)
		w.I64(c.count)
	}
	return w.Buf, nil
}

// UnmarshalBinary replaces the sketch's state with the decoded one. The
// receiver may be a zero-value sketch: the compression comes off the
// wire.
func (q *QuantileSketch) UnmarshalBinary(data []byte) error {
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != sketchCodecVersion {
		return fmt.Errorf("stats: unknown QuantileSketch codec version %d", v)
	}
	var dec QuantileSketch
	dec.compression = r.F64()
	dec.n = r.I64()
	dec.minSeen = r.F64()
	dec.maxSeen = r.F64()
	nc := r.U32()
	if r.Err() == nil && uint64(nc)*16 > uint64(r.Remaining()) {
		return fmt.Errorf("stats: corrupt centroid count %d (%d bytes left)", nc, r.Remaining())
	}
	if nc > 0 {
		dec.centroids = make([]centroid, nc)
		for i := range dec.centroids {
			dec.centroids[i] = centroid{mean: r.F64(), count: r.I64()}
		}
	}
	if err := r.Finish("QuantileSketch"); err != nil {
		return err
	}
	if dec.compression <= 0 {
		return fmt.Errorf("stats: decoded sketch has non-positive compression %g", dec.compression)
	}
	var total int64
	for _, c := range dec.centroids {
		if c.count <= 0 {
			return fmt.Errorf("stats: decoded sketch has non-positive centroid weight %d", c.count)
		}
		total += c.count
	}
	if total != dec.n {
		return fmt.Errorf("stats: decoded sketch centroid mass %d does not match n %d", total, dec.n)
	}
	*q = dec
	return nil
}
