package stats

import "sort"

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (the input is copied).
func NewECDF(xs []float64) *ECDF {
	return &ECDF{sorted: Sorted(xs)}
}

// At returns F_n(x) = (#samples <= x) / n.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; advance
	// over equal elements so the CDF is right-continuous with <=.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Quantile returns the empirical p-quantile (0..1) with interpolation.
func (e *ECDF) Quantile(p float64) float64 {
	return PercentileSorted(e.sorted, p*100)
}
