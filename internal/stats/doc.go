// Package stats implements the descriptive statistics, histogram and
// distribution machinery used throughout the thread-timing study, in two
// complementary forms.
//
// Exact, materialised: sample moments, percentiles and inter-quartile
// ranges (Figures 4, 6 and 8 of the paper), fixed-width histograms
// (Figures 3, 5, 7 and 9), the empirical CDF, and the standard normal
// distribution functions required by the normality tests in the
// stats/normality subpackage. All functions operate on float64 slices
// and, unless stated otherwise, do not mutate their input.
//
// Streaming: one-pass, constant-memory, mergeable accumulators for
// studies too large to materialise — Moments (first four central moments
// plus min/max, Welford/Pébay updates, exact up to floating-point
// rounding) and QuantileSketch (a t-digest-style percentile estimator
// with a documented rank-error bound). Both merge, so a parallel fill
// keeps one accumulator per worker and combines at the end; these back
// earlybird.StreamStudy and the serve layer's sweep endpoint.
package stats
