package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin-width histogram, matching the presentation used
// by the paper's Figures 3 (10 µs bins), 5/7 (50 µs and 10 µs bins) and
// 9 (1 ms bins).
type Histogram struct {
	// Origin is the left edge of bin 0.
	Origin float64
	// Width is the common bin width (> 0).
	Width float64
	// Counts holds the number of samples per bin.
	Counts []int
	// Total is the number of samples accumulated, including none dropped:
	// samples below Origin are clamped into bin 0 (the study never
	// produces them; the clamp keeps the histogram total).
	Total int
}

// NewHistogram builds a histogram of xs with the given bin width. The
// origin is floor(min/width)*width so bin edges land on multiples of the
// width, mirroring how the paper's figures are binned.
func NewHistogram(xs []float64, width float64) *Histogram {
	if width <= 0 {
		panic("stats: histogram bin width must be positive")
	}
	h := &Histogram{Width: width}
	if len(xs) == 0 {
		return h
	}
	min, max := Min(xs), Max(xs)
	h.Origin = math.Floor(min/width) * width
	nbins := int(math.Floor((max-h.Origin)/width)) + 1
	if nbins < 1 {
		nbins = 1
	}
	h.Counts = make([]int, nbins)
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add accumulates one sample.
func (h *Histogram) Add(x float64) {
	i := int(math.Floor((x - h.Origin) / h.Width))
	if i < 0 {
		i = 0
	}
	for i >= len(h.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[i]++
	h.Total++
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Origin + (float64(i)+0.5)*h.Width
}

// BinLeft returns the left edge of bin i.
func (h *Histogram) BinLeft(i int) float64 {
	return h.Origin + float64(i)*h.Width
}

// ModeBin returns the index and count of the fullest bin (-1 if empty).
func (h *Histogram) ModeBin() (int, int) {
	best, bestCount := -1, 0
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return best, bestCount
}

// Peak returns the center of the fullest bin, i.e. the histogram's modal
// value (NaN when empty). The paper reads application peaks off Figure 3.
func (h *Histogram) Peak() float64 {
	i, _ := h.ModeBin()
	if i < 0 {
		return math.NaN()
	}
	return h.BinCenter(i)
}

// Render draws an ASCII histogram with at most maxRows bins (the densest
// region is preserved; empty leading/trailing bins are trimmed). unit
// scales the axis labels (e.g. 1e-3 to print milliseconds when samples are
// in seconds) and unitName labels them.
func (h *Histogram) Render(maxRows int, unit float64, unitName string) string {
	if h.Total == 0 {
		return "(empty histogram)\n"
	}
	lo, hi := 0, len(h.Counts)
	for lo < hi && h.Counts[lo] == 0 {
		lo++
	}
	for hi > lo && h.Counts[hi-1] == 0 {
		hi--
	}
	stride := 1
	if maxRows > 0 && hi-lo > maxRows {
		stride = (hi - lo + maxRows - 1) / maxRows
	}
	// Merge bins by stride for display.
	type row struct {
		left  float64
		count int
	}
	var rows []row
	for i := lo; i < hi; i += stride {
		c := 0
		for j := i; j < i+stride && j < hi; j++ {
			c += h.Counts[j]
		}
		rows = append(rows, row{left: h.BinLeft(i), count: c})
	}
	maxCount := 0
	for _, r := range rows {
		if r.count > maxCount {
			maxCount = r.count
		}
	}
	var b strings.Builder
	for _, r := range rows {
		barLen := 0
		if maxCount > 0 {
			barLen = r.count * 50 / maxCount
		}
		fmt.Fprintf(&b, "%10.3f %-8s |%-50s| %d\n",
			r.left/unit, unitName, strings.Repeat("#", barLen), r.count)
	}
	return b.String()
}

// CSV renders the histogram as "bin_left,count" lines with the given unit
// scaling, suitable for regenerating the paper's figures in any plotter.
func (h *Histogram) CSV(unit float64) string {
	var b strings.Builder
	b.WriteString("bin_left,count\n")
	for i, c := range h.Counts {
		fmt.Fprintf(&b, "%g,%d\n", h.BinLeft(i)/unit, c)
	}
	return b.String()
}
