package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "mean", Mean(xs), 5, 1e-12)
	approx(t, "variance", Variance(xs), 32.0/7.0, 1e-12)
	approx(t, "stddev", StdDev(xs), math.Sqrt(32.0/7.0), 1e-12)
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty sample should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("variance of singleton should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	approx(t, "min", Min(xs), -9, 0)
	approx(t, "max", Max(xs), 6, 0)
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// NumPy linear method: p50 of [1,2,3,4] = 2.5, p25 = 1.75.
	approx(t, "p50", Percentile(xs, 50), 2.5, 1e-12)
	approx(t, "p25", Percentile(xs, 25), 1.75, 1e-12)
	approx(t, "p75", Percentile(xs, 75), 3.25, 1e-12)
	approx(t, "p0", Percentile(xs, 0), 1, 0)
	approx(t, "p100", Percentile(xs, 100), 4, 0)
}

func TestPercentileSingleton(t *testing.T) {
	approx(t, "p37 of singleton", Percentile([]float64{42}, 37), 42, 0)
}

func TestMedianOddEven(t *testing.T) {
	approx(t, "odd median", Median([]float64{5, 1, 3}), 3, 0)
	approx(t, "even median", Median([]float64{4, 1, 3, 2}), 2.5, 1e-12)
}

func TestIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	approx(t, "iqr", IQR(xs), 1.5, 1e-12)
}

func TestSkewnessSymmetric(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	approx(t, "skew", Skewness(xs), 0, 1e-12)
}

func TestSkewnessSign(t *testing.T) {
	right := []float64{1, 1, 1, 1, 10}
	left := []float64{-10, 1, 1, 1, 1}
	if Skewness(right) <= 0 {
		t.Error("right-tailed sample should have positive skewness")
	}
	if Skewness(left) >= 0 {
		t.Error("left-tailed sample should have negative skewness")
	}
}

func TestKurtosisUniformVsPeaked(t *testing.T) {
	// Uniform-ish data is platykurtic (b2 < 3); data with outliers is
	// leptokurtic (b2 > 3).
	uniform := make([]float64, 1000)
	for i := range uniform {
		uniform[i] = float64(i)
	}
	if k := Kurtosis(uniform); k >= 3 {
		t.Errorf("uniform kurtosis = %v, want < 3", k)
	}
	peaked := make([]float64, 1000)
	peaked[0] = 100
	if k := Kurtosis(peaked); k <= 3 {
		t.Errorf("peaked kurtosis = %v, want > 3", k)
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Sorted(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Sorted mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 {
		t.Errorf("N = %d", s.N)
	}
	approx(t, "mean", s.Mean, 5.5, 1e-12)
	approx(t, "median", s.Median, 5.5, 1e-12)
	approx(t, "iqr", s.IQR, 4.5, 1e-12)
	approx(t, "min", s.Min, 1, 0)
	approx(t, "max", s.Max, 10, 0)
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Magnitudes near MaxFloat64 make even exact quantiles
			// ill-conditioned; timing data lives many orders of magnitude
			// below this cap.
			if !math.IsNaN(x) && math.Abs(x) < 1e300 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(p1), 100)
		b := math.Mod(math.Abs(p2), 100)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
