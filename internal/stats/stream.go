// Streaming accumulators: one-pass, constant-memory counterparts of the
// exact descriptive statistics in desc.go, for studies too large to
// materialise. Moments tracks the first four central moments plus min/max
// (Welford/Pébay updates, exact up to floating-point rounding);
// QuantileSketch is a mergeable t-digest-style percentile estimator with
// documented, bounded error. Both types merge, so a parallel fill can keep
// one accumulator per worker and combine at the end.

package stats

import (
	"math"

	"earlybird/internal/sortx"
)

// Moments is a one-pass, mergeable accumulator of a sample's count, mean,
// central moments M2..M4 and min/max. Its accessors mirror the exact
// functions in desc.go: for the same sample, Mean/Variance/Skewness/
// Kurtosis agree with Mean()/Variance()/Skewness()/Kurtosis() up to
// floating-point rounding (typically within 1e-9 relative error).
// The zero value is an empty accumulator ready for use.
type Moments struct {
	n                int64
	mean, m2, m3, m4 float64
	minSeen, maxSeen float64
	nonEmpty         bool
}

// Add folds one observation into the accumulator (Welford/West update).
func (m *Moments) Add(x float64) {
	if !m.nonEmpty {
		m.minSeen, m.maxSeen = x, x
		m.nonEmpty = true
	} else {
		if x < m.minSeen {
			m.minSeen = x
		}
		if x > m.maxSeen {
			m.maxSeen = x
		}
	}
	n1 := float64(m.n)
	m.n++
	n := float64(m.n)
	delta := x - m.mean
	deltaN := delta / n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	m.mean += deltaN
	m.m4 += term1*deltaN2*(n*n-3*n+3) + 6*deltaN2*m.m2 - 4*deltaN*m.m3
	m.m3 += term1*deltaN*(n-2) - 3*deltaN*m.m2
	m.m2 += term1
}

// AddSlice folds every element of xs into the accumulator.
func (m *Moments) AddSlice(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// Merge folds another accumulator into this one (Pébay's pairwise update);
// o is not modified. Merging is associative up to floating-point rounding,
// so per-worker accumulators may be combined in any order.
func (m *Moments) Merge(o *Moments) {
	if o == nil || o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	if o.minSeen < m.minSeen {
		m.minSeen = o.minSeen
	}
	if o.maxSeen > m.maxSeen {
		m.maxSeen = o.maxSeen
	}
	na, nb := float64(m.n), float64(o.n)
	n := na + nb
	delta := o.mean - m.mean
	d2 := delta * delta
	mean := m.mean + delta*nb/n
	m2 := m.m2 + o.m2 + d2*na*nb/n
	m3 := m.m3 + o.m3 + delta*d2*na*nb*(na-nb)/(n*n) +
		3*delta*(na*o.m2-nb*m.m2)/n
	m4 := m.m4 + o.m4 + d2*d2*na*nb*(na*na-na*nb+nb*nb)/(n*n*n) +
		6*d2*(na*na*o.m2+nb*nb*m.m2)/(n*n) +
		4*delta*(na*o.m3-nb*m.m3)/n
	m.n += o.n
	m.mean, m.m2, m.m3, m.m4 = mean, m2, m3, m4
}

// N returns the number of observations.
func (m *Moments) N() int64 { return m.n }

// Mean returns the arithmetic mean, NaN when empty.
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.mean
}

// Variance returns the unbiased (n-1) sample variance, NaN for n < 2.
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return math.NaN()
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Skewness returns the moment estimator g1 = m3 / m2^(3/2), matching
// Skewness in desc.go.
func (m *Moments) Skewness() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	n := float64(m.n)
	c2 := m.m2 / n
	c3 := m.m3 / n
	return c3 / math.Pow(c2, 1.5)
}

// Kurtosis returns the (non-excess) kurtosis b2 = m4 / m2^2, matching
// Kurtosis in desc.go.
func (m *Moments) Kurtosis() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	n := float64(m.n)
	c2 := m.m2 / n
	c4 := m.m4 / n
	return c4 / (c2 * c2)
}

// Min returns the smallest observation, NaN when empty.
func (m *Moments) Min() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.minSeen
}

// Max returns the largest observation, NaN when empty.
func (m *Moments) Max() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.maxSeen
}

// DefaultSketchCompression is the QuantileSketch compression used when the
// caller passes 0. Error bounds scale as 1/compression (see
// NewQuantileSketch).
const DefaultSketchCompression = 100

// centroid is one weighted cluster of a QuantileSketch.
type centroid struct {
	mean  float64
	count int64
}

// QuantileSketch is a mergeable, bounded-memory quantile estimator in the
// t-digest family: incoming values buffer briefly, then compress into a
// sorted list of weighted centroids whose maximum weight shrinks towards
// the distribution's tails (the classic 4·N·q·(1-q)/δ size bound).
// Memory is O(compression · log n) — the log factor comes from tail
// singletons — a few kilobytes at the default compression for any
// realistic n.
//
// Accuracy is a rank guarantee: the estimated q-quantile corresponds to
// an exact q'-quantile with |q - q'| ≲ 2·q·(1-q)/compression, i.e. about
// 0.5% rank error at the quartiles for the default compression of 100
// (property-tested at ≤1.5% mid-range and ≤2% at p5/p95 in
// stream_test.go). The value error that rank error translates to depends
// on the local density: for the unimodal arrival distributions of this
// study, quartile and median estimates land within ~2% of the sample IQR
// of the exact value; near density gaps (e.g. a percentile falling
// exactly on a laggard-mixture boundary) the value error can be larger
// even though the rank error stays bounded. Min and max are tracked
// exactly. The zero value is not usable; call NewQuantileSketch.
type QuantileSketch struct {
	compression float64
	centroids   []centroid
	scratch     []centroid // reused merge buffer; no allocation per flush
	buf         []float64
	pending     []float64 // concatenated sorted runs awaiting one combined fold
	runEnds     []int     // end offset of each pending run
	mscratch    []float64 // ping-pong buffer for pairwise run merging
	n           int64
	minSeen     float64
	maxSeen     float64
}

// NewQuantileSketch returns an empty sketch; compression <= 0 selects
// DefaultSketchCompression. Larger compressions are more accurate and use
// proportionally more memory (roughly 24 bytes per unit compression).
func NewQuantileSketch(compression float64) *QuantileSketch {
	if compression <= 0 {
		compression = DefaultSketchCompression
	}
	return &QuantileSketch{
		compression: compression,
		minSeen:     math.Inf(1),
		maxSeen:     math.Inf(-1),
	}
}

// N returns the number of values added.
func (q *QuantileSketch) N() int64 { return q.n }

// Min returns the smallest value added (exact), NaN when empty.
func (q *QuantileSketch) Min() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	return q.minSeen
}

// Max returns the largest value added (exact), NaN when empty.
func (q *QuantileSketch) Max() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	return q.maxSeen
}

// Add folds one value into the sketch.
func (q *QuantileSketch) Add(x float64) {
	if x < q.minSeen {
		q.minSeen = x
	}
	if x > q.maxSeen {
		q.maxSeen = x
	}
	q.n++
	if q.buf == nil {
		q.buf = make([]float64, 0, 4*int(q.compression))
	}
	q.buf = append(q.buf, x)
	if len(q.buf) == cap(q.buf) {
		q.flush()
	}
}

// AddSlice folds every element of xs into the sketch.
func (q *QuantileSketch) AddSlice(xs []float64) {
	for _, x := range xs {
		q.Add(x)
	}
}

// AddSorted folds an ascending-sorted run of values into the sketch,
// bypassing the per-value buffer entirely. This is the hot-path
// ingestion used by the streaming accumulators, which sort each
// observation block once anyway (for median extraction) and hand the
// sorted scratch straight down. xs must be sorted ascending; xs is not
// retained. A sketch fed exclusively through AddSorted never allocates
// the Add buffer.
//
// Small runs are not folded immediately: they buffer until roughly
// 8·compression values are pending, then combine pairwise (branchless
// sortx.MergeRuns passes) into one ascending run that merges with the
// centroid list in a single compressing sweep. Folding a run of k
// values costs a pass over all ~centroids+k entries, so batching
// amortises the centroid sweep over several blocks — at the streaming
// accumulators' geometry (48-thread blocks, compression 32, ~150
// steady centroids) it cuts sweep iterations per value by ~2.5x.
func (q *QuantileSketch) AddSorted(xs []float64) {
	if len(xs) == 0 {
		return
	}
	q.flushBuf() // interleaved Add calls must land before this run
	if xs[0] < q.minSeen {
		q.minSeen = xs[0]
	}
	if xs[len(xs)-1] > q.maxSeen {
		q.maxSeen = xs[len(xs)-1]
	}
	q.n += int64(len(xs))
	limit := 8 * int(q.compression)
	if len(xs) >= limit {
		// A run this large amortises its own sweep; fold it directly
		// (pending runs first, to keep ingestion order).
		q.flushPending()
		q.mergeRun(xs)
		return
	}
	if len(q.pending)+len(xs) > limit {
		q.flushPending()
	}
	if q.pending == nil {
		q.pending = make([]float64, 0, limit)
	}
	q.pending = append(q.pending, xs...)
	q.runEnds = append(q.runEnds, len(q.pending))
}

// flushPending combines the buffered sorted runs into one ascending run
// and folds it into the centroid list.
func (q *QuantileSketch) flushPending() {
	switch len(q.runEnds) {
	case 0:
		return
	case 1:
		q.mergeRun(q.pending)
	default:
		n := len(q.pending)
		if cap(q.mscratch) < n {
			q.mscratch = make([]float64, n)
		}
		src, dst := q.pending, q.mscratch[:n]
		ends := q.runEnds
		for m := len(ends); m > 1; src, dst = dst, src {
			w := 0
			for r := 0; r < m; r += 2 {
				start := 0
				if r > 0 {
					start = ends[r-1] // not yet overwritten: w-1 < r-1 for r >= 2
				}
				if r+1 == m {
					copy(dst[start:ends[r]], src[start:ends[r]])
					ends[w] = ends[r]
				} else {
					mid, end := ends[r], ends[r+1]
					sortx.MergeRuns(dst[start:end], src[start:mid], src[mid:end])
					ends[w] = end
				}
				w++
			}
			m = w
		}
		q.mergeRun(src)
	}
	q.pending = q.pending[:0]
	q.runEnds = q.runEnds[:0]
}

// Merge folds another sketch into this one. o's buffered values are
// compressed as a side effect, but its distribution is unchanged; the
// merged sketch keeps both error bounds. Both centroid lists are
// already sorted, so the merge is a single linear pass with inline
// compression — no comparison sort.
func (q *QuantileSketch) Merge(o *QuantileSketch) {
	if o == nil || o.n == 0 {
		return
	}
	o.flush()
	q.flush()
	if o.minSeen < q.minSeen {
		q.minSeen = o.minSeen
	}
	if o.maxSeen > q.maxSeen {
		q.maxSeen = o.maxSeen
	}
	q.n += o.n
	cs, os := q.centroids, o.centroids
	total := float64(q.n)
	merged := q.scratch[:0]
	var cur centroid
	var cum float64
	first := true
	i, j := 0, 0
	for i < len(cs) || j < len(os) {
		var next centroid
		if j >= len(os) || (i < len(cs) && cs[i].mean <= os[j].mean) {
			next = cs[i]
			i++
		} else {
			next = os[j]
			j++
		}
		if first {
			cur, first = next, false
			continue
		}
		sum := cur.count + next.count
		if fits(cum, sum, total, q.compression) {
			cur.mean += float64(next.count) / float64(sum) * (next.mean - cur.mean)
			cur.count = sum
		} else {
			merged = append(merged, cur)
			cum += float64(cur.count)
			cur = next
		}
	}
	if !first {
		merged = append(merged, cur)
	}
	q.scratch = q.centroids[:0]
	q.centroids = merged
}

// flush compresses everything buffered — per-value adds and pending
// sorted runs — into the centroid list, so readers and merges see the
// full distribution.
func (q *QuantileSketch) flush() {
	q.flushBuf()
	q.flushPending()
}

// flushBuf compresses per-value buffered adds into the centroid list.
// The buffer is sorted and merged in a single pass; steady-state
// flushes allocate nothing (the previous centroid array becomes the
// next merge buffer).
func (q *QuantileSketch) flushBuf() {
	if len(q.buf) == 0 {
		return
	}
	sortx.Sort(q.buf)
	q.mergeRun(q.buf)
	q.buf = q.buf[:0]
}

// fits reports whether a cluster of weight sum, preceded by cum mass,
// respects the t-digest size bound 4·N·q·(1-q)/compression. The check
// is the classic limit rewritten multiplication-only:
//
//	sum ≤ 4·total·mid·(1-mid)/compression,  mid = (cum + sum/2)/total
//	⟺ sum·total·compression ≤ 4·(cum+sum/2)·(total-(cum+sum/2))
//
// which drops two divisions from the innermost loop of every merge.
// Weight-1 pairs always fit (the historical max(1, limit) floor).
func fits(cum float64, sum int64, total, compression float64) bool {
	if sum <= 1 {
		return true
	}
	s := float64(sum)
	mid := cum + s/2
	return s*total*compression <= 4*mid*(total-mid)
}

// mergeRun merges an ascending run of raw values with the sorted
// centroid list, applying the weight bound inline: one pass replaces
// the historical merge-then-compress two-pass. q.n must already count
// the run's values.
func (q *QuantileSketch) mergeRun(xs []float64) {
	cs := q.centroids
	total := float64(q.n)
	merged := q.scratch[:0]
	if need := len(cs) + len(xs); cap(merged) < need {
		// need is the no-compression worst case. Seeding the capacity at
		// several times the compression — the steady-state centroid
		// count is Θ(compression·log n) — means each sketch allocates
		// its two swap buffers once and then runs allocation-free,
		// instead of doubling its way up call by call.
		seed := 8 * int(q.compression)
		if 2*need > seed {
			seed = 2 * need
		}
		merged = make([]centroid, 0, seed)
	}
	var cur centroid
	var cum float64 // mass strictly before cur
	first := true
	i, j := 0, 0
	for i < len(cs) || j < len(xs) {
		var next centroid
		if j >= len(xs) || (i < len(cs) && cs[i].mean <= xs[j]) {
			next = cs[i]
			i++
		} else {
			next = centroid{mean: xs[j], count: 1}
			j++
		}
		if first {
			cur, first = next, false
			continue
		}
		sum := cur.count + next.count
		if fits(cum, sum, total, q.compression) {
			// Weighted-mean absorb.
			cur.mean += float64(next.count) / float64(sum) * (next.mean - cur.mean)
			cur.count = sum
		} else {
			merged = append(merged, cur)
			cum += float64(cur.count)
			cur = next
		}
	}
	if !first {
		merged = append(merged, cur)
	}
	q.scratch = q.centroids[:0] // old list becomes the next merge buffer
	q.centroids = merged
}

// Quantile returns the estimated p-quantile for p in [0, 1], interpolating
// between centroid centers and anchored at the exact min/max. NaN when
// empty.
func (q *QuantileSketch) Quantile(p float64) float64 {
	q.flush()
	if q.n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return q.minSeen
	}
	if p >= 1 {
		return q.maxSeen
	}
	cs := q.centroids
	if len(cs) == 1 {
		return cs[0].mean
	}
	target := p * float64(q.n)
	cum := 0.0
	for i, c := range cs {
		center := cum + float64(c.count)/2
		if target <= center {
			if i == 0 {
				frac := target / center
				return q.minSeen + frac*(c.mean-q.minSeen)
			}
			prev := cs[i-1]
			prevCenter := cum - float64(prev.count)/2
			frac := (target - prevCenter) / (center - prevCenter)
			return prev.mean + frac*(c.mean-prev.mean)
		}
		cum += float64(c.count)
	}
	last := cs[len(cs)-1]
	lastCenter := float64(q.n) - float64(last.count)/2
	frac := (target - lastCenter) / (float64(q.n) - lastCenter)
	if frac > 1 {
		frac = 1
	}
	return last.mean + frac*(q.maxSeen-last.mean)
}

// Percentile returns the estimated p-th percentile (0 <= p <= 100),
// mirroring Percentile in desc.go.
func (q *QuantileSketch) Percentile(p float64) float64 { return q.Quantile(p / 100) }

// IQR returns the estimated inter-quartile range.
func (q *QuantileSketch) IQR() float64 { return q.Quantile(0.75) - q.Quantile(0.25) }

// StreamSummary assembles a Summary from streaming accumulators: exact
// N/mean/stddev/min/max/skewness/kurtosis from the moments, estimated
// percentiles from the sketch.
func StreamSummary(m *Moments, q *QuantileSketch) Summary {
	return Summary{
		N:        int(m.N()),
		Mean:     m.Mean(),
		StdDev:   m.StdDev(),
		Min:      m.Min(),
		P5:       q.Percentile(5),
		P25:      q.Percentile(25),
		Median:   q.Percentile(50),
		P75:      q.Percentile(75),
		P95:      q.Percentile(95),
		Max:      m.Max(),
		IQR:      q.IQR(),
		Skewness: m.Skewness(),
		Kurtosis: m.Kurtosis(),
	}
}
