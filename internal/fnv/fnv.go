// Package fnv is the 64-bit FNV-1a folding shared by the engine's spec
// keys, the serve layer's strategy-grid hash and the fleet's rendezvous
// scheduler. One implementation matters here: the fleet routes cells to
// workers by comparing hashes computed on different coordinators, so a
// constant or folding-order mismatch between copies would silently break
// routing stability. Fold incrementally: h := fnv.Offset64, then chain
// U64/F64/Str/Bytes.
package fnv

import "math"

// FNV-1a parameters.
const (
	Offset64 uint64 = 14695981039346656037
	Prime64  uint64 = 1099511628211
)

// U64 folds v into h, least-significant byte first.
func U64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= Prime64
		v >>= 8
	}
	return h
}

// F64 folds a float64's exact bit pattern into h.
func F64(h uint64, f float64) uint64 { return U64(h, math.Float64bits(f)) }

// Str folds s into h, length-prefixed so concatenations cannot collide
// with shifted boundaries.
func Str(h uint64, s string) uint64 {
	h = U64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= Prime64
	}
	return h
}

// Bytes folds b into h, length-prefixed like Str. The wire package's
// sealed payloads checksum with it.
func Bytes(h uint64, b []byte) uint64 {
	h = U64(h, uint64(len(b)))
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= Prime64
	}
	return h
}
