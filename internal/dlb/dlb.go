// Package dlb models dynamic load balancing of thread ownership inside
// the simulated runtime, after the DLB library's two mechanisms: LeWI
// ("lend when idle" — ranks that finish an iteration early lend threads
// to the laggards for the next one) and DROM (dynamic resource ownership
// management — a global reassignment of cores that reacts to measured
// load with a configurable latency).
//
// The cluster fill loop stays work-conserving under rebalancing: a rank
// granted alloc threads instead of its base complement finishes its
// (fixed-size) sample block scaled by base/alloc. Rebalancing decisions
// happen at iteration boundaries from the previous iteration's per-rank
// finish times, and are strictly per-trial: trial t's balancer never
// sees trial u, which is what keeps federated trial sharding exact.
//
// A Spec is the wire/cache-key form of a policy: a comparable value
// struct that joins engine.Key and engine.SpecKey so differently
// balanced runs never share a dataset or result cache entry. The zero
// Spec is the static policy — today's fixed thread layout, bit-identical
// to the pre-DLB fill path.
package dlb

import (
	"fmt"
	"strconv"
	"strings"

	"earlybird/internal/fnv"
)

// Policy names accepted in Spec.Policy, -dlb flags and wire JSON.
const (
	PolicyStatic = "static"
	PolicyLeWI   = "lewi"
	PolicyDROM   = "drom"
)

// Defaults filled in by Resolve for the policies that use them.
const (
	// DefaultLaggardFactor marks a rank as a laggard when its iteration
	// finish time exceeds this multiple of the median finish.
	DefaultLaggardFactor = 1.25
	// DefaultMaxLendFraction bounds how much of its base thread
	// complement an idle rank may lend in one iteration.
	DefaultMaxLendFraction = 0.5
	// DefaultReactionIters is DROM's reaction latency: a reassignment
	// computed from iteration i's measurements takes effect at i+latency.
	DefaultReactionIters = 4
)

// Spec selects and parameterises a rebalancing policy. It is a
// comparable value struct so it can sit inside cache keys; the zero
// value means static (no rebalancing), which keeps pre-DLB cache keys
// and wire payloads meaning exactly what they used to.
type Spec struct {
	// Policy is "static", "lewi" or "drom"; empty means static.
	Policy string `json:"policy,omitempty"`
	// LaggardFactor is LeWI's laggard rule: a rank lags when its finish
	// exceeds LaggardFactor x the median. 0 means DefaultLaggardFactor.
	LaggardFactor float64 `json:"laggard_factor,omitempty"`
	// MaxLendFraction bounds LeWI lending per iteration as a fraction of
	// a rank's base threads. 0 means DefaultMaxLendFraction.
	MaxLendFraction float64 `json:"max_lend_fraction,omitempty"`
	// ReactionIters is DROM's reaction latency in iterations. 0 means
	// DefaultReactionIters.
	ReactionIters int `json:"reaction_iters,omitempty"`
}

// IsStatic reports whether the spec selects the static (no rebalancing)
// policy.
func (s Spec) IsStatic() bool { return s.Policy == "" || s.Policy == PolicyStatic }

// Validate checks the policy name, parameter ranges, and that no
// parameter is set on a policy that does not consume it (which would
// otherwise create distinct cache keys for identical behaviour).
func (s Spec) Validate() error {
	switch s.Policy {
	case "", PolicyStatic:
		if s.LaggardFactor != 0 || s.MaxLendFraction != 0 || s.ReactionIters != 0 {
			return fmt.Errorf("dlb: static policy takes no parameters")
		}
	case PolicyLeWI:
		if s.LaggardFactor != 0 && s.LaggardFactor < 1 {
			return fmt.Errorf("dlb: laggard_factor %g < 1", s.LaggardFactor)
		}
		if s.MaxLendFraction != 0 && (s.MaxLendFraction < 0 || s.MaxLendFraction > 1) {
			return fmt.Errorf("dlb: max_lend_fraction %g outside (0, 1]", s.MaxLendFraction)
		}
		if s.ReactionIters != 0 {
			return fmt.Errorf("dlb: reaction_iters only applies to drom")
		}
	case PolicyDROM:
		if s.ReactionIters < 0 {
			return fmt.Errorf("dlb: reaction_iters %d < 0", s.ReactionIters)
		}
		if s.LaggardFactor != 0 || s.MaxLendFraction != 0 {
			return fmt.Errorf("dlb: laggard_factor/max_lend_fraction only apply to lewi")
		}
	default:
		return fmt.Errorf("dlb: unknown policy %q (want %s)", s.Policy, strings.Join(Policies(), ", "))
	}
	return nil
}

// Resolve validates the spec and returns its canonical form: static
// collapses to the zero Spec, and the other policies get their defaults
// filled in, so equal behaviour always hashes to equal cache keys.
func (s Spec) Resolve() (Spec, error) {
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	switch s.Policy {
	case "", PolicyStatic:
		return Spec{}, nil
	case PolicyLeWI:
		if s.LaggardFactor == 0 {
			s.LaggardFactor = DefaultLaggardFactor
		}
		if s.MaxLendFraction == 0 {
			s.MaxLendFraction = DefaultMaxLendFraction
		}
	case PolicyDROM:
		if s.ReactionIters == 0 {
			s.ReactionIters = DefaultReactionIters
		}
	}
	return s, nil
}

// Name returns the policy name ("static" for the zero spec).
func (s Spec) Name() string {
	if s.Policy == "" {
		return PolicyStatic
	}
	return s.Policy
}

// String renders the spec in the form Parse accepts:
// "static", "lewi:factor=1.25,lend=0.5", "drom:reaction=4".
// Unset parameters are omitted, so the zero-parameter round trip holds.
func (s Spec) String() string {
	var params []string
	if s.LaggardFactor != 0 {
		params = append(params, "factor="+strconv.FormatFloat(s.LaggardFactor, 'g', -1, 64))
	}
	if s.MaxLendFraction != 0 {
		params = append(params, "lend="+strconv.FormatFloat(s.MaxLendFraction, 'g', -1, 64))
	}
	if s.ReactionIters != 0 {
		params = append(params, "reaction="+strconv.Itoa(s.ReactionIters))
	}
	if len(params) == 0 {
		return s.Name()
	}
	return s.Name() + ":" + strings.Join(params, ",")
}

// Parse reads the flag/CLI form of a spec: a policy name optionally
// followed by ":key=value,key=value" parameters — "static",
// "lewi:factor=1.5,lend=0.3", "drom:reaction=2". The result is
// validated but not resolved, so "lewi" stays distinguishable from an
// explicit "lewi:factor=1.25,lend=0.5" until Resolve canonicalises both
// to the same spec.
func Parse(text string) (Spec, error) {
	name, rest, hasParams := strings.Cut(strings.TrimSpace(text), ":")
	s := Spec{Policy: name}
	if name == "" {
		return Spec{}, fmt.Errorf("dlb: empty policy (want %s)", strings.Join(Policies(), ", "))
	}
	if hasParams {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return Spec{}, fmt.Errorf("dlb: malformed parameter %q (want key=value)", kv)
			}
			switch k {
			case "factor":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return Spec{}, fmt.Errorf("dlb: bad factor %q: %v", v, err)
				}
				s.LaggardFactor = f
			case "lend":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return Spec{}, fmt.Errorf("dlb: bad lend %q: %v", v, err)
				}
				s.MaxLendFraction = f
			case "reaction":
				n, err := strconv.Atoi(v)
				if err != nil {
					return Spec{}, fmt.Errorf("dlb: bad reaction %q: %v", v, err)
				}
				s.ReactionIters = n
			default:
				return Spec{}, fmt.Errorf("dlb: unknown parameter %q (want factor, lend, reaction)", k)
			}
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Policies lists the known policy names, static first.
func Policies() []string { return []string{PolicyStatic, PolicyLeWI, PolicyDROM} }

// Hash folds the spec into an FNV-1a chain. The zero spec folds the
// empty canonical form, so hashes of pre-DLB keys are stable only
// within this scheme — all participants (coordinator and fleet workers)
// run the same fold, which is what rendezvous routing requires.
func (s Spec) Hash(h uint64) uint64 {
	h = fnv.Str(h, s.Policy)
	h = fnv.F64(h, s.LaggardFactor)
	h = fnv.F64(h, s.MaxLendFraction)
	h = fnv.U64(h, uint64(uint(s.ReactionIters)))
	return h
}
