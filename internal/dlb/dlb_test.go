package dlb

import (
	"encoding/json"
	"testing"
)

func TestSpecResolveCanonical(t *testing.T) {
	cases := []struct {
		name string
		in   Spec
		want Spec
	}{
		{"zero", Spec{}, Spec{}},
		{"static-name", Spec{Policy: PolicyStatic}, Spec{}},
		{"lewi-defaults", Spec{Policy: PolicyLeWI}, Spec{Policy: PolicyLeWI, LaggardFactor: DefaultLaggardFactor, MaxLendFraction: DefaultMaxLendFraction}},
		{"lewi-explicit-defaults", Spec{Policy: PolicyLeWI, LaggardFactor: 1.25, MaxLendFraction: 0.5}, Spec{Policy: PolicyLeWI, LaggardFactor: 1.25, MaxLendFraction: 0.5}},
		{"drom-defaults", Spec{Policy: PolicyDROM}, Spec{Policy: PolicyDROM, ReactionIters: DefaultReactionIters}},
		{"drom-explicit", Spec{Policy: PolicyDROM, ReactionIters: 2}, Spec{Policy: PolicyDROM, ReactionIters: 2}},
	}
	for _, c := range cases {
		got, err := c.in.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: got %+v want %+v", c.name, got, c.want)
		}
	}
	// Spelled-out defaults and bare policy names must canonicalise to the
	// same comparable value — equal behaviour, equal cache key.
	a, _ := Spec{Policy: PolicyLeWI}.Resolve()
	b, _ := Spec{Policy: PolicyLeWI, LaggardFactor: DefaultLaggardFactor, MaxLendFraction: DefaultMaxLendFraction}.Resolve()
	if a != b || a.Hash(17) != b.Hash(17) {
		t.Fatalf("canonical forms differ: %+v vs %+v", a, b)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	bad := []Spec{
		{Policy: "lewi2"},
		{Policy: PolicyStatic, LaggardFactor: 1.5},
		{Policy: PolicyLeWI, LaggardFactor: 0.5},
		{Policy: PolicyLeWI, MaxLendFraction: 1.5},
		{Policy: PolicyLeWI, MaxLendFraction: -0.1},
		{Policy: PolicyLeWI, ReactionIters: 3},
		{Policy: PolicyDROM, ReactionIters: -1},
		{Policy: PolicyDROM, LaggardFactor: 1.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", s)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		text string
		want Spec
	}{
		{"static", Spec{Policy: PolicyStatic}},
		{"lewi", Spec{Policy: PolicyLeWI}},
		{"lewi:factor=1.5,lend=0.3", Spec{Policy: PolicyLeWI, LaggardFactor: 1.5, MaxLendFraction: 0.3}},
		{"drom", Spec{Policy: PolicyDROM}},
		{"drom:reaction=2", Spec{Policy: PolicyDROM, ReactionIters: 2}},
	}
	for _, c := range cases {
		got, err := Parse(c.text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.text, err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v want %+v", c.text, got, c.want)
		}
		back, err := Parse(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v (err %v)", c.text, got.String(), back, err)
		}
	}
	for _, text := range []string{"", "turbo", "lewi:reaction=1", "lewi:factor=abc", "lewi:factor", "drom:lend=0.5", "lewi:speed=3"} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted", text)
		}
	}
}

func TestSpecJSONZeroIsEmpty(t *testing.T) {
	b, err := json.Marshal(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "{}" {
		t.Fatalf("zero spec marshals to %s, want {}", b)
	}
	var s Spec
	if err := json.Unmarshal([]byte(`{"policy":"lewi","laggard_factor":1.5}`), &s); err != nil {
		t.Fatal(err)
	}
	if (s != Spec{Policy: PolicyLeWI, LaggardFactor: 1.5}) {
		t.Fatalf("decoded %+v", s)
	}
}

func TestSpecHashDistinguishesPolicies(t *testing.T) {
	specs := []Spec{
		{},
		{Policy: PolicyLeWI, LaggardFactor: 1.25, MaxLendFraction: 0.5},
		{Policy: PolicyLeWI, LaggardFactor: 1.5, MaxLendFraction: 0.5},
		{Policy: PolicyDROM, ReactionIters: 4},
		{Policy: PolicyDROM, ReactionIters: 2},
	}
	seen := map[uint64]Spec{}
	for _, s := range specs {
		h := s.Hash(14695981039346656037)
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %+v and %+v", prev, s)
		}
		seen[h] = s
	}
}

func sumInts(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// TestStaticBalancerFixed: the static policy never moves a thread.
func TestStaticBalancerFixed(t *testing.T) {
	b := Spec{}.NewBalancer(4, 48)
	finish := []float64{1, 2, 3, 4}
	for i := 0; i < 5; i++ {
		alloc := b.Alloc(i)
		for r, a := range alloc {
			if a != 48 {
				t.Fatalf("iter %d rank %d alloc %d", i, r, a)
			}
		}
		b.Observe(i, finish)
	}
}

// TestLeWILendsToLaggard: with one clear laggard, idle ranks lend and
// the laggard's allocation grows, while the total is conserved and no
// rank drops below one thread.
func TestLeWILendsToLaggard(t *testing.T) {
	spec, _ := Spec{Policy: PolicyLeWI}.Resolve()
	b := spec.NewBalancer(4, 48)
	finish := []float64{1.0, 1.0, 1.0, 3.0} // rank 3 lags hard
	b.Observe(0, finish)
	alloc := b.Alloc(1)
	if sumInts(alloc) != 4*48 {
		t.Fatalf("total not conserved: %v", alloc)
	}
	if alloc[3] <= 48 {
		t.Fatalf("laggard did not gain threads: %v", alloc)
	}
	for r := 0; r < 3; r++ {
		if alloc[r] >= 48 || alloc[r] < 1 {
			t.Fatalf("lender alloc out of range: %v", alloc)
		}
	}
	// A balanced iteration returns everyone to base.
	b.Observe(1, []float64{1, 1, 1, 1})
	for _, a := range b.Alloc(2) {
		if a != 48 {
			t.Fatalf("balanced finishes should restore base: %v", b.Alloc(2))
		}
	}
}

// TestLeWIAllLaggardsKeepsBase: when every rank exceeds the cut (or
// none does) there is no idle capacity to move.
func TestLeWIAllLaggardsKeepsBase(t *testing.T) {
	spec, _ := Spec{Policy: PolicyLeWI}.Resolve()
	b := spec.NewBalancer(3, 8)
	b.Observe(0, []float64{0, 0, 0}) // degenerate: all-zero finishes
	for _, a := range b.Alloc(1) {
		if a != 8 {
			t.Fatalf("zero finishes must keep base: %v", b.Alloc(1))
		}
	}
}

// TestDROMReactionLatency: a target computed at iteration 0 must not
// take effect before iteration reaction, and must conserve the total.
func TestDROMReactionLatency(t *testing.T) {
	spec, _ := Spec{Policy: PolicyDROM, ReactionIters: 3}.Resolve()
	b := spec.NewBalancer(2, 8)
	b.Observe(0, []float64{1.0, 3.0})
	for i := 1; i < 3; i++ {
		alloc := b.Alloc(i)
		if alloc[0] != 8 || alloc[1] != 8 {
			t.Fatalf("iter %d: reassignment applied early: %v", i, alloc)
		}
		b.Observe(i, []float64{1.0, 3.0})
	}
	alloc := b.Alloc(3)
	if sumInts(alloc) != 16 {
		t.Fatalf("total not conserved: %v", alloc)
	}
	if alloc[1] <= alloc[0] {
		t.Fatalf("loaded rank did not gain: %v", alloc)
	}
	for _, a := range alloc {
		if a < 1 {
			t.Fatalf("rank starved: %v", alloc)
		}
	}
}

// TestBalancerDeterminism: identical finish sequences produce identical
// allocation sequences.
func TestBalancerDeterminism(t *testing.T) {
	for _, policy := range []Spec{{Policy: PolicyLeWI}, {Policy: PolicyDROM}} {
		spec, _ := policy.Resolve()
		a := spec.NewBalancer(6, 12)
		b := spec.NewBalancer(6, 12)
		finish := make([]float64, 6)
		for i := 0; i < 40; i++ {
			for r := range finish {
				finish[r] = 1 + float64((i*7+r*13)%9)/3
			}
			av, bv := a.Alloc(i), b.Alloc(i)
			for r := range av {
				if av[r] != bv[r] {
					t.Fatalf("%s iter %d diverged: %v vs %v", spec.Name(), i, av, bv)
				}
			}
			if sumInts(av) != 6*12 {
				t.Fatalf("%s iter %d total %d", spec.Name(), i, sumInts(av))
			}
			a.Observe(i, finish)
			b.Observe(i, finish)
		}
	}
}

func TestApportion(t *testing.T) {
	got := apportion([]float64{1, 1, 2}, 8, 1)
	if sumInts(got) != 8 {
		t.Fatalf("sum %v", got)
	}
	if got[2] <= got[0] {
		t.Fatalf("heavier slot did not gain: %v", got)
	}
	// Zero weights: even split.
	even := apportion([]float64{0, 0}, 5, 1)
	if sumInts(even) != 5 {
		t.Fatalf("even split sum: %v", even)
	}
}
