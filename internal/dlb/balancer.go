package dlb

import "sort"

// Balancer is one trial's rebalancing state machine. The fill loop asks
// Alloc for the per-rank thread allocation of iteration iter, fills and
// times the iteration, then reports the per-rank finish times through
// Observe. Balancers are strictly single-trial and single-goroutine;
// the fill loop creates one per trial via Spec.NewBalancer.
type Balancer interface {
	// Alloc returns the per-rank thread counts in effect for iteration
	// iter. The returned slice is owned by the balancer and valid until
	// the next Alloc or Observe call; callers must not mutate it.
	Alloc(iter int) []int
	// Observe reports iteration iter's per-rank finish times (seconds,
	// the max over the rank's thread samples) so the balancer can
	// update the allocation of subsequent iterations.
	Observe(iter int, finishSec []float64)
}

// NewBalancer builds a fresh balancer for one trial of ranks x
// threadsPerRank. The spec is resolved first; an invalid spec falls
// back to static, because callers are expected to have validated at
// the API boundary.
func (s Spec) NewBalancer(ranks, threadsPerRank int) Balancer {
	r, err := s.Resolve()
	if err != nil || r.IsStatic() {
		return staticBalancer{alloc: uniform(ranks, threadsPerRank)}
	}
	switch r.Policy {
	case PolicyLeWI:
		return &lewiBalancer{
			base:   threadsPerRank,
			factor: r.LaggardFactor,
			lend:   r.MaxLendFraction,
			alloc:  uniform(ranks, threadsPerRank),
			next:   uniform(ranks, threadsPerRank),
		}
	case PolicyDROM:
		return &dromBalancer{
			base:     threadsPerRank,
			reaction: r.ReactionIters,
			alloc:    uniform(ranks, threadsPerRank),
		}
	}
	return staticBalancer{alloc: uniform(ranks, threadsPerRank)}
}

func uniform(ranks, threads int) []int {
	a := make([]int, ranks)
	for i := range a {
		a[i] = threads
	}
	return a
}

// staticBalancer is the fixed layout: every rank keeps its base
// complement forever.
type staticBalancer struct{ alloc []int }

func (b staticBalancer) Alloc(int) []int        { return b.alloc }
func (b staticBalancer) Observe(int, []float64) {}

// lewiBalancer re-decides lending at every iteration boundary from the
// previous iteration's finishes alone: lenders take their threads back
// implicitly each round (LeWI lends at blocking points, and a borrowed
// core returns when its owner needs it again), so allocation never
// drifts — it is always base plus/minus this round's loans.
type lewiBalancer struct {
	base   int
	factor float64
	lend   float64
	alloc  []int
	next   []int
}

func (b *lewiBalancer) Alloc(int) []int { return b.alloc }

func (b *lewiBalancer) Observe(_ int, finish []float64) {
	n := len(b.alloc)
	for r := 0; r < n; r++ {
		b.next[r] = b.base
	}
	b.alloc, b.next = b.next, b.alloc

	med, maxF := medianMax(finish)
	if maxF <= 0 || med <= 0 {
		return
	}
	cut := b.factor * med
	var laggards []int
	pool := 0
	for r := 0; r < n; r++ {
		if finish[r] > cut {
			laggards = append(laggards, r)
			continue
		}
		// Idle share of the iteration: the fraction of the laggard-bound
		// wall time this rank spent waiting at the barrier.
		idle := (maxF - finish[r]) / maxF
		loan := int(b.lend * float64(b.base) * idle)
		if loan > b.base-1 {
			loan = b.base - 1
		}
		if loan > 0 {
			b.alloc[r] -= loan
			pool += loan
		}
	}
	if pool == 0 || len(laggards) == 0 || len(laggards) == n {
		// Nothing lent, nobody to lend to, or everyone lags (then there
		// is no idle capacity to redistribute): keep the base layout.
		for r := 0; r < n; r++ {
			b.alloc[r] = b.base
		}
		return
	}
	// Split the pool across laggards proportionally to how far each
	// exceeds the median, largest-remainder on the leftovers so the loan
	// count is conserved exactly.
	deficit := make([]float64, len(laggards))
	var sum float64
	for i, r := range laggards {
		deficit[i] = finish[r] - med
		sum += deficit[i]
	}
	granted := apportion(deficit, pool, 0)
	for i, r := range laggards {
		b.alloc[r] += granted[i]
	}
}

// dromBalancer owns the whole machine's cores and reassigns them
// proportionally to measured load, with a reaction latency: a target
// computed from iteration i applies from iteration i+reaction, and no
// new measurement is taken while one is pending, so ownership changes
// at most every reaction iterations.
type dromBalancer struct {
	base     int
	reaction int
	alloc    []int
	pending  []int
	applyAt  int
}

func (b *dromBalancer) Alloc(iter int) []int {
	if b.pending != nil && iter >= b.applyAt {
		b.alloc, b.pending = b.pending, nil
	}
	return b.alloc
}

func (b *dromBalancer) Observe(iter int, finish []float64) {
	if b.pending != nil {
		return
	}
	n := len(b.alloc)
	load := make([]float64, n)
	var sum float64
	for r := 0; r < n; r++ {
		// Work executed this iteration ~ finish time x threads assigned.
		load[r] = finish[r] * float64(b.alloc[r])
		sum += load[r]
	}
	if sum <= 0 {
		return
	}
	b.pending = apportion(load, n*b.base, 1)
	b.applyAt = iter + b.reaction
}

// apportion splits total units across len(weight) slots proportionally
// to weight, giving every slot at least min, using largest-remainder
// rounding (ties broken by slot index) so the result always sums to
// exactly total and is deterministic.
func apportion(weight []float64, total, min int) []int {
	n := len(weight)
	out := make([]int, n)
	var sum float64
	for _, w := range weight {
		sum += w
	}
	spare := total - n*min
	if sum <= 0 || spare < 0 {
		// Degenerate: spread evenly.
		for i := range out {
			out[i] = total / n
		}
		for i := 0; i < total%n; i++ {
			out[i]++
		}
		return out
	}
	type frac struct {
		idx int
		rem float64
	}
	fr := make([]frac, n)
	used := 0
	for i, w := range weight {
		exact := float64(spare) * w / sum
		whole := int(exact)
		out[i] = min + whole
		used += whole
		fr[i] = frac{i, exact - float64(whole)}
	}
	sort.SliceStable(fr, func(a, b int) bool { return fr[a].rem > fr[b].rem })
	for i := 0; i < spare-used; i++ {
		out[fr[i%n].idx]++
	}
	return out
}

// medianMax returns the median and maximum of xs without mutating it.
func medianMax(xs []float64) (med, max float64) {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n == 0 {
		return 0, 0
	}
	if n%2 == 1 {
		med = tmp[n/2]
	} else {
		med = 0.5 * (tmp[n/2-1] + tmp[n/2])
	}
	return med, tmp[n-1]
}
