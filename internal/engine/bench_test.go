package engine

import (
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/network"
)

// benchSpecs is the acceptance workload: the three paper apps at two
// geometries each, all distinct (no cache dedup — the speedup measured
// here is pure outer-level concurrency).
func benchSpecs() []Spec {
	geoms := []cluster.Config{
		{Trials: 2, Ranks: 4, Iterations: 40, Threads: 48, Seed: 1},
		{Trials: 2, Ranks: 4, Iterations: 40, Threads: 48, Seed: 2},
	}
	var specs []Spec
	for _, app := range []string{"minife", "minimd", "miniqmc"} {
		for _, g := range geoms {
			specs = append(specs, Spec{App: app, Geometry: g})
		}
	}
	return specs
}

// BenchmarkCampaign runs the six-study campaign through the engine's
// bounded worker pool. Compare against BenchmarkCampaignSerial: on a
// multi-core host the engine overlaps the studies' generation and (serial
// per study) analysis phases and wins.
func BenchmarkCampaign(b *testing.B) {
	specs := benchSpecs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(0) // fresh engine: no cross-iteration cache hits
		if _, err := e.Run(Campaign{Specs: specs}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignSerial is the hand-rolled loop the engine replaces:
// one study at a time, analysis strictly after generation.
func BenchmarkCampaignSerial(b *testing.B) {
	specs := benchSpecs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, sp := range specs {
			study, err := core.NewStudy(core.Options{App: sp.App, Geometry: sp.Geometry})
			if err != nil {
				b.Fatal(err)
			}
			_ = study.Metrics()
			_ = study.Table1()
			_ = study.Feasibility(1<<20, network.OmniPath(), 1e-3)
		}
	}
}
