package engine

import (
	"testing"

	"earlybird/internal/workload"
)

func TestSetMaxDatasetsEvictsLRU(t *testing.T) {
	e := New(2)
	m := workload.DefaultMiniFE()
	g1, g2, g3 := testGeom(1), testGeom(2), testGeom(3)

	if _, _, err := e.Dataset(m, g1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Dataset(m, g2); err != nil {
		t.Fatal(err)
	}
	// Touch g1 so g2 becomes the LRU entry.
	if _, hit, err := e.Dataset(m, g1); err != nil || !hit {
		t.Fatalf("touching g1: hit=%v err=%v", hit, err)
	}

	e.SetMaxDatasets(2)
	if got := e.CachedDatasets(); got != 2 {
		t.Fatalf("cache holds %d datasets under bound 2", got)
	}

	// A third dataset must push out g2 (least recently used), not g1.
	if _, _, err := e.Dataset(m, g3); err != nil {
		t.Fatal(err)
	}
	if got := e.CachedDatasets(); got != 2 {
		t.Errorf("cache holds %d datasets, want 2 after eviction", got)
	}
	if got := e.EvictedDatasets(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if _, hit, err := e.Dataset(m, g1); err != nil || !hit {
		t.Errorf("g1 should have survived eviction: hit=%v err=%v", hit, err)
	}

	// g2 was evicted: requesting it again regenerates.
	before := e.Executions()
	if _, hit, err := e.Dataset(m, g2); err != nil || hit {
		t.Errorf("evicted g2 should regenerate: hit=%v err=%v", hit, err)
	}
	if got := e.Executions(); got != before+1 {
		t.Errorf("executions = %d, want %d after regeneration", got, before+1)
	}
}

func TestSetMaxDatasetsTrimsExisting(t *testing.T) {
	e := New(2)
	m := workload.DefaultMiniFE()
	for seed := uint64(1); seed <= 3; seed++ {
		if _, _, err := e.Dataset(m, testGeom(seed)); err != nil {
			t.Fatal(err)
		}
	}
	e.SetMaxDatasets(1)
	if got := e.CachedDatasets(); got != 1 {
		t.Errorf("cache holds %d datasets, want 1 after SetMaxDatasets(1)", got)
	}
	if got := e.EvictedDatasets(); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
}

func TestRunSpecSharesCacheAndKeys(t *testing.T) {
	e := New(2)
	sp := Spec{App: "minife", Geometry: testGeom(5)}

	r1, err := e.RunSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Error("first RunSpec reported a cache hit")
	}
	r2, err := e.RunSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Error("second RunSpec missed the dataset cache")
	}
	if e.Executions() != 1 {
		t.Errorf("executions = %d, want 1", e.Executions())
	}
	if r1.Assessment.Recommendation != r2.Assessment.Recommendation {
		t.Error("RunSpec results diverged across cache hit")
	}

	// Resolved keys: an explicit spelling of the defaults equals the
	// zero-valued spelling.
	zero, err := (Spec{App: "minife", Geometry: testGeom(5)}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := (Spec{App: "minife", Geometry: testGeom(5), Alpha: 0.05}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if zero.Key() != explicit.Key() {
		t.Error("explicit-default spec key differs from zero-valued spec key")
	}
	other, err := (Spec{App: "minife", Geometry: testGeom(5), Alpha: 0.01}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if zero.Key() == other.Key() {
		t.Error("distinct alphas produced equal keys")
	}

	if _, err := e.RunSpec(Spec{}); err == nil {
		t.Error("empty spec did not error")
	}
}

func TestNestedViewsStayZeroOnColumnarPath(t *testing.T) {
	e := New(2)
	m := workload.DefaultMiniFE()
	if _, _, err := e.Columnar(m, testGeom(9)); err != nil {
		t.Fatal(err)
	}
	if got := e.NestedViews(); got != 0 {
		t.Errorf("nested views = %d after columnar-only access, want 0", got)
	}
	if _, _, err := e.Dataset(m, testGeom(9)); err != nil {
		t.Fatal(err)
	}
	if got := e.NestedViews(); got != 1 {
		t.Errorf("nested views = %d after Dataset access, want 1", got)
	}
}
