package engine

import (
	"errors"
	"fmt"
	"sync"

	"earlybird/internal/analysis"
	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/dlb"
	"earlybird/internal/fnv"
	"earlybird/internal/network"
	"earlybird/internal/stats/normality"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

// Spec describes one study of a campaign: which application (or custom
// model) to run, at which geometry and seed, and with which analysis
// parameters. Zero values fill with the paper's defaults.
type Spec struct {
	// App selects a built-in application model ("minife", "minimd",
	// "miniqmc") when Model and Dataset are nil.
	App string
	// Model overrides App with a custom workload model. Distinct
	// parameterisations must use distinct Name()s: the dataset cache is
	// keyed by (name, geometry, seed).
	Model workload.Model
	// Dataset short-circuits generation with a pre-collected dataset
	// (for example, one read back from threadtime JSON). It bypasses the
	// cache entirely.
	Dataset *trace.Dataset
	// Geometry is the study size; zero value means the paper's
	// 10 x 8 x 200 x 48 with seed 1.
	Geometry cluster.Config
	// Alpha is the normality significance level; zero means 5%.
	Alpha float64
	// LaggardThresholdSec is the laggard rule; zero means 1 ms.
	LaggardThresholdSec float64
	// BytesPerPartition sizes the feasibility evaluation's partitions;
	// zero means 1 MiB.
	BytesPerPartition int
	// Fabric is the interconnect model for the feasibility evaluation;
	// zero value means the paper's Omni-Path parameters.
	Fabric network.Fabric
	// BinTimeoutSec is the binned delivery strategy's flush timeout;
	// zero means 1 ms.
	BinTimeoutSec float64
	// DLB selects the runtime rebalancing policy the dataset is produced
	// under; the zero value is the static (pre-DLB) layout. Part of the
	// dataset cache key and the dedup key: differently balanced runs
	// never share either.
	DLB dlb.Spec
}

// Resolve returns the spec with every zero field replaced by its paper
// default and the model resolved from App. Keys of resolved specs compare
// post-default values, so two requests that spell the same study
// differently (one explicit, one zero-valued) resolve to equal keys. The
// serve layer resolves incoming wire specs once and coalesces on the key.
func (sp Spec) Resolve() (Spec, error) { return sp.fill() }

// fill resolves defaults and the model; it returns the resolved spec so
// dedup keys compare post-default values.
func (sp Spec) fill() (Spec, error) {
	if sp.Model == nil && sp.Dataset == nil {
		if sp.App == "" {
			return sp, errors.New("engine: spec needs App, Model or Dataset")
		}
		m, err := workload.ByName(sp.App)
		if err != nil {
			return sp, fmt.Errorf("engine: %w", err)
		}
		sp.Model = m
	}
	if sp.Model != nil {
		sp.App = sp.Model.Name()
	} else if sp.Dataset != nil {
		sp.App = sp.Dataset.App
	}
	if sp.Dataset == nil && sp.Geometry == (cluster.Config{}) {
		sp.Geometry = cluster.DefaultConfig()
	}
	if sp.Alpha == 0 {
		sp.Alpha = normality.DefaultAlpha
	}
	if sp.LaggardThresholdSec == 0 {
		sp.LaggardThresholdSec = analysis.DefaultLaggardThresholdSec
	}
	if sp.BytesPerPartition == 0 {
		sp.BytesPerPartition = 1 << 20
	}
	if sp.Fabric == (network.Fabric{}) {
		sp.Fabric = network.OmniPath()
	}
	if sp.BinTimeoutSec == 0 {
		sp.BinTimeoutSec = 1e-3
	}
	resolvedDLB, err := sp.DLB.Resolve()
	if err != nil {
		return sp, fmt.Errorf("engine: %w", err)
	}
	sp.DLB = resolvedDLB
	return sp, nil
}

// SpecKey identifies a fully resolved spec for deduplication: two specs
// with equal keys produce identical results, so the campaign executes
// them once and fans the result out, and the serve layer coalesces
// concurrent identical requests onto one execution. The key is an opaque
// comparable value; dataset-backed specs key on the dataset's identity.
type SpecKey struct {
	model               string
	dataset             *trace.Dataset
	geometry            cluster.Config
	alpha               float64
	laggardThresholdSec float64
	bytesPerPartition   int
	fabric              network.Fabric
	binTimeoutSec       float64
	dlb                 dlb.Spec
}

// Key returns the spec's deduplication key. Only meaningful on resolved
// specs (see Resolve): unresolved specs compare raw zero fields against
// filled defaults.
func (sp Spec) Key() SpecKey {
	return SpecKey{
		model:               sp.App,
		dataset:             sp.Dataset,
		geometry:            sp.Geometry,
		alpha:               sp.Alpha,
		laggardThresholdSec: sp.LaggardThresholdSec,
		bytesPerPartition:   sp.BytesPerPartition,
		fabric:              sp.Fabric,
		binTimeoutSec:       sp.BinTimeoutSec,
		dlb:                 sp.DLB,
	}
}

// Hash folds the key into a deterministic 64-bit FNV-1a value, stable
// across processes for specs without a preloaded dataset — the property
// the fleet scheduler relies on to route equal cells to the same worker
// (keeping that worker's dataset cache hot) from any coordinator.
// Dataset-backed keys mix in nothing for the dataset itself: such specs
// never travel over the wire, so their hash only needs to be consistent
// within one process's scheduling decisions.
func (k SpecKey) Hash() uint64 {
	h := fnv.Str(fnv.Offset64, k.model)
	h = fnv.U64(h, uint64(k.geometry.Trials))
	h = fnv.U64(h, uint64(k.geometry.Ranks))
	h = fnv.U64(h, uint64(k.geometry.Iterations))
	h = fnv.U64(h, uint64(k.geometry.Threads))
	h = fnv.U64(h, k.geometry.Seed)
	h = fnv.F64(h, k.alpha)
	h = fnv.F64(h, k.laggardThresholdSec)
	h = fnv.U64(h, uint64(k.bytesPerPartition))
	h = fnv.F64(h, k.fabric.LatencySec)
	h = fnv.F64(h, k.fabric.BandwidthBytesPerSec)
	h = fnv.F64(h, k.fabric.OverheadSec)
	h = fnv.F64(h, k.binTimeoutSec)
	h = k.dlb.Hash(h)
	return h
}

// StoreKey renders the hash as the fixed-width hex token the fleet's
// durable result store uses for file names: content addressing on the
// same routing key the scheduler uses, stable across processes and
// coordinators for wire-expressible specs.
func (k SpecKey) StoreKey() string {
	return fmt.Sprintf("%016x", k.Hash())
}

// Result is the analysed outcome of one campaign spec.
type Result struct {
	// Index is the spec's position in Campaign.Specs.
	Index int
	// Spec is the resolved spec (defaults filled in).
	Spec Spec
	// Study wraps the (possibly shared) dataset with the spec's analysis
	// parameters; nil when Err is set.
	Study *core.Study
	// Metrics, Table1 and Assessment are the Section 4.2 scalars, the
	// Table 1 normality row and the Section 5 feasibility verdict.
	Metrics    analysis.AppMetrics
	Table1     analysis.Table1
	Assessment core.Assessment
	// CacheHit reports whether the dataset was served from the engine's
	// cache rather than generated by this spec's execution.
	CacheHit bool
	// Err is the per-spec failure, if any.
	Err error
}

// Campaign is a batch of study specs plus execution policy.
type Campaign struct {
	// Specs are the studies to run. Identical specs (after defaulting)
	// execute once and share their result.
	Specs []Spec
	// Workers bounds how many studies run concurrently; <= 0 uses the
	// engine's default.
	Workers int
	// Collect, when non-nil, is called once per spec as its result
	// completes — cache-served duplicates included — in completion
	// order. Calls are serialised; Collect must not call back into the
	// campaign's engine.
	Collect func(Result)
}

// Run executes the campaign and returns one result per spec, in spec
// order. Per-spec failures are recorded in Result.Err and joined into
// the returned error; results for the other specs are still valid.
func (e *Engine) Run(c Campaign) ([]Result, error) {
	results := make([]Result, len(c.Specs))

	// Resolve specs and group duplicates onto one execution each.
	type group struct {
		spec    Spec
		indices []int
	}
	groups := map[SpecKey]*group{}
	order := make([]SpecKey, 0, len(c.Specs))
	var collectMu sync.Mutex
	emit := func(r Result) {
		results[r.Index] = r
		if c.Collect != nil {
			c.Collect(r)
		}
	}
	for i, raw := range c.Specs {
		sp, err := raw.fill()
		if err != nil {
			collectMu.Lock()
			emit(Result{Index: i, Spec: raw, Err: err})
			collectMu.Unlock()
			continue
		}
		k := sp.Key()
		g, ok := groups[k]
		if !ok {
			g = &group{spec: sp}
			groups[k] = g
			order = append(order, k)
		}
		g.indices = append(g.indices, i)
	}

	workers := c.Workers
	if workers <= 0 || workers > e.workers {
		workers = e.workers
	}
	if workers > len(order) {
		workers = len(order)
	}

	jobs := make(chan *group)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				e.runGroup(g.spec, g.indices, workers, emit, &collectMu)
			}
		}()
	}
	for _, k := range order {
		jobs <- groups[k]
	}
	close(jobs)
	wg.Wait()

	errs := make([]error, 0, len(results))
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("spec %d (%s): %w", i, results[i].Spec.App, results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// RunSpec resolves and executes one spec synchronously, sharing the
// engine's dataset cache (and its single-flighted generation) with every
// campaign and other RunSpec call on the engine. It is the unit the serve
// layer's request coalescer invokes: one HTTP study request maps to one
// RunSpec. The returned Result carries any per-spec failure in both
// Result.Err and the error return.
func (e *Engine) RunSpec(sp Spec) (Result, error) {
	filled, err := sp.fill()
	if err != nil {
		return Result{Spec: sp, Err: err}, err
	}
	r := e.execute(filled, 1)
	return r, r.Err
}

// execute runs one resolved spec: dataset via the cache (or the spec's
// preloaded dataset), then the analysis pipeline. concurrency is the
// caller's fan-out, passed down as the generation-sizing hint.
func (e *Engine) execute(sp Spec, concurrency int) Result {
	// Preloaded datasets bypass the cache and never count as hits.
	ds, hit, err := sp.Dataset, false, error(nil)
	if ds == nil {
		ds, hit, err = e.dataset(sp.Model, sp.Geometry, sp.DLB, concurrency)
	}
	var r Result
	r.Spec = sp
	if err == nil {
		r.Study, err = core.FromDatasetWith(ds, core.Options{
			Policy: core.PolicySpec{
				DLB:                 sp.DLB,
				Alpha:               sp.Alpha,
				LaggardThresholdSec: sp.LaggardThresholdSec,
			},
		})
	}
	if err != nil {
		r.Err = err
	} else {
		r.CacheHit = hit
		r.Metrics = r.Study.Metrics()
		r.Table1 = r.Study.Table1()
		r.Assessment = r.Study.Feasibility(sp.BytesPerPartition, sp.Fabric, sp.BinTimeoutSec)
	}
	return r
}

// runGroup executes one deduplicated spec and fans the result out to
// every index that requested it. concurrency is the campaign's worker
// count, passed down as the generation-sizing hint.
func (e *Engine) runGroup(sp Spec, indices []int, concurrency int, emit func(Result), mu *sync.Mutex) {
	r := e.execute(sp, concurrency)
	mu.Lock()
	defer mu.Unlock()
	for n, i := range indices {
		ri := r
		ri.Index = i
		// Only the execution itself counts as the miss; duplicate specs
		// in the same campaign are cache-served by construction.
		if n > 0 {
			ri.CacheHit = true
		}
		emit(ri)
	}
}
