// Package engine executes campaigns: many studies fanned out over a
// bounded worker pool, backed by a content-addressed dataset cache keyed
// by (model name, geometry, seed). Cache entries hold the compact
// columnar form (trace.Columnar) with the content fingerprint already
// computed during the fill; the nested Dataset view is built lazily over
// the same storage. Identical study specs are deduplicated to a single
// execution, and distinct specs over the same dataset share one
// generation. Results are deterministic regardless of scheduling
// order because dataset generation is a pure function of (model, seed)
// and the analysis pipeline is pure over the dataset.
//
// This is the batch substrate behind internal/experiments, cmd/repro,
// cmd/analyze and the earlybird.RunCampaign facade — the outer level of
// parallelism over whole studies, above cluster.Run's inner level over
// one study's trials and ranks.
package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"earlybird/internal/cluster"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

// Key is the content address of a generated dataset: the workload model's
// name plus the full geometry including the master seed. Two specs with
// equal keys receive the identical dataset, so custom models must use
// distinct names for distinct parameterisations.
type Key struct {
	Model    string
	Geometry cluster.Config
}

// cacheEntry single-flights one dataset generation: the first goroutine
// to reach the entry runs it, everyone else blocks on the Once and reads
// the shared result. The cache holds the compact columnar form — one
// flat sample column plus a small header, with the fingerprint already
// accumulated during the fill — and builds the nested Dataset view
// lazily, sharing the column's storage, only when a consumer asks for it.
type cacheEntry struct {
	once sync.Once
	col  *trace.Columnar
	err  error

	dsOnce sync.Once
	ds     *trace.Dataset
}

// dataset returns the entry's nested view, building it on first use.
func (e *cacheEntry) dataset() *trace.Dataset {
	e.dsOnce.Do(func() { e.ds = e.col.Dataset() })
	return e.ds
}

// Engine is a dataset cache plus the worker-pool configuration shared by
// the campaigns run on it. The zero value is not usable; call New. An
// Engine is safe for concurrent use and may be shared across campaigns
// so later campaigns reuse earlier datasets.
type Engine struct {
	workers int

	mu    sync.Mutex
	cache map[Key]*cacheEntry

	executions atomic.Int64
	inFlight   atomic.Int64
}

// New returns an engine whose campaigns run at most workers studies
// concurrently; workers <= 0 means one per usable CPU (GOMAXPROCS).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, cache: map[Key]*cacheEntry{}}
}

// Workers returns the campaign concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Executions returns how many dataset generations the engine has actually
// run — cache hits do not count. Tests use this to verify deduplication.
func (e *Engine) Executions() int64 { return e.executions.Load() }

// CachedDatasets returns the number of distinct datasets held.
func (e *Engine) CachedDatasets() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Dataset returns the dataset for (model, geometry), generating it on
// first request and serving every later — or concurrent — request from
// the cache. The second return reports whether this call was served from
// cache without triggering the generation. Callers must not mutate the
// returned dataset.
func (e *Engine) Dataset(model workload.Model, geom cluster.Config) (*trace.Dataset, bool, error) {
	return e.dataset(model, geom, 1)
}

// Columnar is Dataset in the cache's native form: the flat columnar store
// streaming consumers read through cursors, without ever building the
// nested view. Callers must not mutate the returned store.
func (e *Engine) Columnar(model workload.Model, geom cluster.Config) (*trace.Columnar, bool, error) {
	entry, hit, err := e.entry(model, geom, 1)
	if err != nil {
		return nil, hit, err
	}
	return entry.col, hit, nil
}

// Prefetch generates the datasets of several models at one geometry
// concurrently — dataset generation only, no analysis — dividing the
// machine fairly between them. Already-cached datasets cost nothing.
func (e *Engine) Prefetch(models []workload.Model, geom cluster.Config) error {
	concurrent := e.workers
	if concurrent > len(models) {
		concurrent = len(models)
	}
	sem := make(chan struct{}, concurrent)
	var wg sync.WaitGroup
	errs := make([]error, len(models))
	for i, m := range models {
		wg.Add(1)
		go func(i int, m workload.Model) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, _, errs[i] = e.dataset(m, geom, concurrent)
		}(i, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// dataset is Dataset with an expected-concurrency hint from callers that
// know their fan-out up front (campaigns, Prefetch), so every generation
// in a batch gets its fair share of CPUs from the start instead of early
// starters over-allocating.
func (e *Engine) dataset(model workload.Model, geom cluster.Config, hint int) (*trace.Dataset, bool, error) {
	entry, hit, err := e.entry(model, geom, hint)
	if err != nil {
		return nil, hit, err
	}
	return entry.dataset(), hit, nil
}

// entry resolves (model, geometry) to its single-flighted cache entry,
// generating the columnar store on first request.
func (e *Engine) entry(model workload.Model, geom cluster.Config, hint int) (*cacheEntry, bool, error) {
	key := Key{Model: model.Name(), Geometry: geom}
	e.mu.Lock()
	entry, ok := e.cache[key]
	if !ok {
		entry = &cacheEntry{}
		e.cache[key] = entry
	}
	e.mu.Unlock()

	hit := true
	entry.once.Do(func() {
		hit = false
		e.executions.Add(1)
		concurrent := int(e.inFlight.Add(1))
		defer e.inFlight.Add(-1)
		if hint > concurrent {
			concurrent = hint
		}
		entry.col, entry.err = cluster.RunColumnar(model, geom, e.innerWorkers(concurrent))
	})
	return entry, hit, entry.err
}

// innerWorkers divides the CPUs between concurrent generations so a lone
// Dataset call still uses the whole machine while a fan-out of N studies
// does not run N x GOMAXPROCS fill goroutines.
func (e *Engine) innerWorkers(concurrent int) int {
	if concurrent < 1 {
		concurrent = 1
	}
	inner := runtime.GOMAXPROCS(0) / concurrent
	if inner < 1 {
		inner = 1
	}
	return inner
}
