package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/trace"
	"earlybird/internal/workload"
)

// Key is the content address of a generated dataset: the workload model's
// name plus the full geometry including the master seed, plus the
// canonical DLB policy under which the samples were produced — a
// rebalanced run yields different times than a static one, so the two
// must never share a cache entry. Two specs with equal keys receive the
// identical dataset, so custom models must use distinct names for
// distinct parameterisations. DLB must be in canonical (resolved) form;
// the zero Spec is the static policy, keeping pre-DLB keys meaningful.
type Key struct {
	Model    string
	Geometry cluster.Config
	DLB      dlb.Spec
}

// cacheEntry single-flights one dataset generation: the first goroutine
// to reach the entry runs it, everyone else blocks on the Once and reads
// the shared result. The cache holds the compact columnar form — one
// flat sample column plus a small header, with the fingerprint already
// accumulated during the fill — and builds the nested Dataset view
// lazily, sharing the column's storage, only when a consumer asks for it.
type cacheEntry struct {
	once sync.Once
	col  *trace.Columnar
	err  error
	// done flips once the generation has finished; only done entries are
	// eviction candidates (an in-flight entry is about to be read by the
	// goroutines blocked on its Once).
	done atomic.Bool
	// lastUse is the engine's access sequence number at the entry's most
	// recent lookup; the eviction policy removes the smallest. Guarded by
	// the engine mutex.
	lastUse int64

	dsOnce sync.Once
	ds     *trace.Dataset
}

// Engine is a dataset cache plus the worker-pool configuration shared by
// the campaigns run on it. The zero value is not usable; call New. An
// Engine is safe for concurrent use and may be shared across campaigns
// so later campaigns reuse earlier datasets.
type Engine struct {
	workers int

	mu          sync.Mutex
	cache       map[Key]*cacheEntry
	seq         int64
	maxDatasets int
	progress    ProgressFactory

	executions  atomic.Int64
	inFlight    atomic.Int64
	evictions   atomic.Int64
	nestedViews atomic.Int64
}

// ProgressFactory creates the live telemetry attachment for one dataset
// generation: the returned sink observes the fill (nil detaches it) and
// done, when non-nil, is called once the generation finishes — success
// or failure — so trackers can be retired. Cache hits and coalesced
// joiners never invoke the factory: one generation, one tracker.
type ProgressFactory func(model string, geom cluster.Config, policy dlb.Spec) (sink cluster.ProgressSink, done func())

// SetProgress installs the generation telemetry factory (the serve
// layer's registry wiring); nil detaches it. Generations already in
// flight keep the factory they started with.
func (e *Engine) SetProgress(f ProgressFactory) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.progress = f
}

// progressFactory reads the installed factory.
func (e *Engine) progressFactory() ProgressFactory {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.progress
}

// New returns an engine whose campaigns run at most workers studies
// concurrently; workers <= 0 means one per usable CPU (GOMAXPROCS).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, cache: map[Key]*cacheEntry{}}
}

// Workers returns the campaign concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Executions returns how many dataset generations the engine has actually
// run — cache hits do not count. Tests use this to verify deduplication.
func (e *Engine) Executions() int64 { return e.executions.Load() }

// CachedDatasets returns the number of distinct datasets held.
func (e *Engine) CachedDatasets() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// EvictedDatasets returns how many datasets the cache bound has evicted
// over the engine's lifetime.
func (e *Engine) EvictedDatasets() int64 { return e.evictions.Load() }

// NestedViews returns how many dataset generations have had their nested
// [][][][] view built. Consumers that stay on the columnar cursor path
// (streaming analysis, NDJSON sweeps) never trigger the view, so this
// stays at zero for them — tests use it to prove a code path never
// materialised the tensor form.
func (e *Engine) NestedViews() int64 { return e.nestedViews.Load() }

// SetMaxDatasets bounds the dataset cache to at most n completed entries,
// evicting the least recently used when a new generation would exceed the
// bound; n <= 0 removes the bound. In-flight generations are never
// evicted, so the momentary population can exceed n while datasets are
// being produced. Evicted datasets regenerate (and count as executions)
// on their next request.
func (e *Engine) SetMaxDatasets(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.maxDatasets = n
	e.trimLocked()
}

// trimLocked evicts least-recently-used completed entries until the cache
// respects the bound. Callers must hold e.mu.
func (e *Engine) trimLocked() {
	if e.maxDatasets <= 0 {
		return
	}
	for len(e.cache) > e.maxDatasets {
		var victimKey Key
		var victim *cacheEntry
		for k, entry := range e.cache {
			if !entry.done.Load() {
				continue
			}
			if victim == nil || entry.lastUse < victim.lastUse {
				victimKey, victim = k, entry
			}
		}
		if victim == nil {
			return // everything over the bound is still generating
		}
		delete(e.cache, victimKey)
		e.evictions.Add(1)
	}
}

// Dataset returns the dataset for (model, geometry), generating it on
// first request and serving every later — or concurrent — request from
// the cache. The second return reports whether this call was served from
// cache without triggering the generation. Callers must not mutate the
// returned dataset.
func (e *Engine) Dataset(model workload.Model, geom cluster.Config) (*trace.Dataset, bool, error) {
	return e.dataset(model, geom, dlb.Spec{}, 1)
}

// DatasetDLB is Dataset under a rebalancing policy; each distinct
// resolved policy is its own cache entry.
func (e *Engine) DatasetDLB(model workload.Model, geom cluster.Config, policy dlb.Spec) (*trace.Dataset, bool, error) {
	return e.dataset(model, geom, policy, 1)
}

// Columnar is Dataset in the cache's native form: the flat columnar store
// streaming consumers read through cursors, without ever building the
// nested view. Callers must not mutate the returned store.
func (e *Engine) Columnar(model workload.Model, geom cluster.Config) (*trace.Columnar, bool, error) {
	return e.ColumnarDLB(model, geom, dlb.Spec{})
}

// ColumnarDLB is Columnar under a rebalancing policy.
func (e *Engine) ColumnarDLB(model workload.Model, geom cluster.Config, policy dlb.Spec) (*trace.Columnar, bool, error) {
	entry, hit, err := e.entry(model, geom, policy, 1)
	if err != nil {
		return nil, hit, err
	}
	return entry.col, hit, nil
}

// Prefetch generates the datasets of several models at one geometry
// concurrently — dataset generation only, no analysis — dividing the
// machine fairly between them. Already-cached datasets cost nothing.
func (e *Engine) Prefetch(models []workload.Model, geom cluster.Config) error {
	return e.PrefetchDLB(models, geom, dlb.Spec{})
}

// PrefetchDLB is Prefetch under a rebalancing policy.
func (e *Engine) PrefetchDLB(models []workload.Model, geom cluster.Config, policy dlb.Spec) error {
	concurrent := e.workers
	if concurrent > len(models) {
		concurrent = len(models)
	}
	sem := make(chan struct{}, concurrent)
	var wg sync.WaitGroup
	errs := make([]error, len(models))
	for i, m := range models {
		wg.Add(1)
		go func(i int, m workload.Model) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, _, errs[i] = e.dataset(m, geom, policy, concurrent)
		}(i, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// dataset is Dataset with an expected-concurrency hint from callers that
// know their fan-out up front (campaigns, Prefetch), so every generation
// in a batch gets its fair share of CPUs from the start instead of early
// starters over-allocating.
func (e *Engine) dataset(model workload.Model, geom cluster.Config, policy dlb.Spec, hint int) (*trace.Dataset, bool, error) {
	entry, hit, err := e.entry(model, geom, policy, hint)
	if err != nil {
		return nil, hit, err
	}
	entry.dsOnce.Do(func() {
		entry.ds = entry.col.Dataset()
		e.nestedViews.Add(1)
	})
	return entry.ds, hit, nil
}

// entry resolves (model, geometry, policy) to its single-flighted cache
// entry, generating the columnar store on first request. The policy is
// canonicalised before keying so spelled-out defaults and bare policy
// names share an entry.
func (e *Engine) entry(model workload.Model, geom cluster.Config, policy dlb.Spec, hint int) (*cacheEntry, bool, error) {
	policy, err := policy.Resolve()
	if err != nil {
		return nil, false, err
	}
	key := Key{Model: model.Name(), Geometry: geom, DLB: policy}
	e.mu.Lock()
	entry, ok := e.cache[key]
	if !ok {
		entry = &cacheEntry{}
		e.cache[key] = entry
	}
	e.seq++
	entry.lastUse = e.seq
	if !ok {
		e.trimLocked()
	}
	e.mu.Unlock()

	hit := true
	entry.once.Do(func() {
		hit = false
		e.executions.Add(1)
		concurrent := int(e.inFlight.Add(1))
		defer func() {
			e.inFlight.Add(-1)
			entry.done.Store(true)
		}()
		if hint > concurrent {
			concurrent = hint
		}
		var sink cluster.ProgressSink
		if f := e.progressFactory(); f != nil {
			var done func()
			sink, done = f(model.Name(), geom, key.DLB)
			if done != nil {
				defer done()
			}
		}
		entry.col, entry.err = cluster.RunColumnarObserved(model, geom, key.DLB, e.innerWorkers(concurrent), sink)
	})
	return entry, hit, entry.err
}

// innerWorkers divides the CPUs between concurrent generations so a lone
// Dataset call still uses the whole machine while a fan-out of N studies
// does not run N x GOMAXPROCS fill goroutines.
func (e *Engine) innerWorkers(concurrent int) int {
	if concurrent < 1 {
		concurrent = 1
	}
	inner := runtime.GOMAXPROCS(0) / concurrent
	if inner < 1 {
		inner = 1
	}
	return inner
}
