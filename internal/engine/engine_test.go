package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/core"
	"earlybird/internal/rng"
	"earlybird/internal/workload"
)

// testGeom keeps unit runs fast while preserving the 48-thread sets the
// analysis is calibrated for.
func testGeom(seed uint64) cluster.Config {
	return cluster.Config{Trials: 1, Ranks: 2, Iterations: 12, Threads: 48, Seed: seed}
}

// countingModel wraps a workload model and counts fill calls, proving at
// the model layer (independently of Engine.Executions) how many times a
// dataset was actually generated.
type countingModel struct {
	workload.Model
	fills atomic.Int64
}

func (m *countingModel) FillProcessIteration(root *rng.Source, trial, rank, iter int, out []float64) {
	m.fills.Add(1)
	m.Model.FillProcessIteration(root, trial, rank, iter, out)
}

func TestDatasetCacheSingleExecution(t *testing.T) {
	e := New(4)
	m := &countingModel{Model: workload.DefaultMiniFE()}
	geom := testGeom(7)

	first, hit1, err := e.Dataset(m, geom)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Error("first request reported a cache hit")
	}
	second, hit2, err := e.Dataset(m, geom)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Error("second request missed the cache")
	}
	if first != second {
		t.Error("cache returned distinct dataset instances")
	}
	if got := e.Executions(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	fillsAfterTwo := m.fills.Load()

	// A distinct seed is a distinct content address.
	other, hit3, err := e.Dataset(m, testGeom(8))
	if err != nil {
		t.Fatal(err)
	}
	if hit3 {
		t.Error("different seed reported a cache hit")
	}
	if other.Fingerprint() == first.Fingerprint() {
		t.Error("different seeds produced identical datasets")
	}
	if m.fills.Load() <= fillsAfterTwo {
		t.Error("second seed did not reach the model")
	}
	if got := e.Executions(); got != 2 {
		t.Errorf("executions = %d, want 2", got)
	}
}

func TestDatasetCacheConcurrentSingleFlight(t *testing.T) {
	e := New(8)
	m := &countingModel{Model: workload.DefaultMiniMD()}
	geom := testGeom(3)

	var wg sync.WaitGroup
	prints := make([]uint64, 16)
	for i := range prints {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ds, _, err := e.Dataset(m, geom)
			if err != nil {
				t.Error(err)
				return
			}
			prints[i] = ds.Fingerprint()
		}(i)
	}
	wg.Wait()
	if got := e.Executions(); got != 1 {
		t.Errorf("executions = %d, want 1 under concurrent requests", got)
	}
	for i, p := range prints {
		if p != prints[0] {
			t.Fatalf("request %d saw a different dataset", i)
		}
	}
}

func TestCampaignDedupAndByteIdentity(t *testing.T) {
	e := New(4)
	spec := Spec{App: "minife", Geometry: testGeom(5)}
	// Three identical specs plus one sharing the dataset key with a
	// different analysis parameter: one generation total.
	specs := []Spec{spec, spec, spec, {App: "minife", Geometry: testGeom(5), Alpha: 0.01}}
	results, err := e.Run(Campaign{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Executions(); got != 1 {
		t.Errorf("executions = %d, want 1 for deduplicated specs", got)
	}
	base := results[0].Study.Dataset().Fingerprint()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if got := r.Study.Dataset().Fingerprint(); got != base {
			t.Errorf("result %d dataset fingerprint %x != %x", i, got, base)
		}
		if i > 0 && !r.CacheHit {
			t.Errorf("result %d should be cache-served", i)
		}
	}
	if results[3].Table1 == results[0].Table1 {
		t.Error("alpha=0.01 spec produced the same Table1 row as alpha=0.05")
	}

	// A fresh engine over the same specs regenerates byte-identical data:
	// the cache is content-addressed, not run-scoped.
	e2 := New(1)
	again, err := e2.Run(Campaign{Specs: specs[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if got := again[0].Study.Dataset().Fingerprint(); got != base {
		t.Errorf("regenerated dataset fingerprint %x != %x", got, base)
	}
}

func TestCampaignThreeAppsTwoGeometries(t *testing.T) {
	e := New(0)
	apps := []string{"minife", "minimd", "miniqmc"}
	geoms := []cluster.Config{testGeom(1), {Trials: 1, Ranks: 2, Iterations: 8, Threads: 48, Seed: 2}}
	var specs []Spec
	for _, app := range apps {
		for _, g := range geoms {
			specs = append(specs, Spec{App: app, Geometry: g})
		}
	}
	// Append a duplicate of every spec: the campaign must serve the
	// second half entirely from cache.
	specs = append(specs, specs...)

	var streamed atomic.Int64
	results, err := e.Run(Campaign{
		Specs:   specs,
		Collect: func(Result) { streamed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Executions(); got != int64(len(apps)*len(geoms)) {
		t.Errorf("executions = %d, want %d", got, len(apps)*len(geoms))
	}
	if got := streamed.Load(); got != int64(len(specs)) {
		t.Errorf("collector saw %d results, want %d", got, len(specs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if r.Assessment.Recommendation == "" {
			t.Errorf("result %d has no recommendation", i)
		}
		dup := (i + len(specs)/2) % len(specs)
		if r.Metrics != results[dup].Metrics {
			t.Errorf("duplicate specs %d/%d disagree on metrics", i, dup)
		}
	}
	for _, r := range results[len(specs)/2:] {
		if !r.CacheHit {
			t.Errorf("duplicate spec %d was not cache-served", r.Index)
		}
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	specs := []Spec{
		{App: "minife", Geometry: testGeom(11)},
		{App: "minimd", Geometry: testGeom(11)},
		{App: "miniqmc", Geometry: testGeom(11)},
		{App: "minife", Geometry: testGeom(12)},
	}
	serial, err := New(1).Run(Campaign{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := New(8).Run(Campaign{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if serial[i].Metrics != wide[i].Metrics {
			t.Errorf("spec %d: metrics differ between worker counts", i)
		}
		if serial[i].Table1 != wide[i].Table1 {
			t.Errorf("spec %d: Table1 differs between worker counts", i)
		}
		if serial[i].Assessment.Recommendation != wide[i].Assessment.Recommendation {
			t.Errorf("spec %d: recommendation differs between worker counts", i)
		}
		a, b := serial[i].Study.Dataset().Fingerprint(), wide[i].Study.Dataset().Fingerprint()
		if a != b {
			t.Errorf("spec %d: dataset fingerprints differ (%x vs %x)", i, a, b)
		}
	}
}

func TestCampaignPreloadedDatasetAndErrors(t *testing.T) {
	e := New(2)
	ds := cluster.MustRun(workload.DefaultMiniQMC(), testGeom(9))
	results, err := e.Run(Campaign{Specs: []Spec{
		{Dataset: ds},
		{App: "no-such-app"},
		{App: "minife", Geometry: testGeom(9)},
	}})
	if err == nil {
		t.Fatal("campaign with an unknown app returned no error")
	}
	if results[0].Err != nil {
		t.Fatalf("preloaded dataset spec failed: %v", results[0].Err)
	}
	if results[0].Spec.App != "miniqmc" {
		t.Errorf("preloaded spec resolved app %q", results[0].Spec.App)
	}
	if results[0].Assessment.Recommendation != core.RecommendFineGrained {
		t.Errorf("miniqmc recommendation %q", results[0].Assessment.Recommendation)
	}
	if results[1].Err == nil {
		t.Error("unknown app produced no per-spec error")
	}
	if results[2].Err != nil || results[2].Study == nil {
		t.Errorf("valid spec was poisoned by its neighbour: %+v", results[2].Err)
	}
	// The preloaded dataset bypasses the cache: only the minife spec
	// triggered a generation.
	if got := e.Executions(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
}

// TestColumnarSharesCacheWithDataset: the columnar accessor and the
// dataset view must come from one generation, share content, and carry
// the fill-time fingerprint.
func TestColumnarSharesCacheWithDataset(t *testing.T) {
	e := New(2)
	model := &workload.MiniFE{}
	geom := cluster.Config{Trials: 1, Ranks: 2, Iterations: 8, Threads: 8, Seed: 1}

	col, hit, err := e.Columnar(model, geom)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first Columnar call reported a cache hit")
	}
	ds, hit, err := e.Dataset(model, geom)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("Dataset after Columnar should hit the cache")
	}
	if e.Executions() != 1 {
		t.Fatalf("%d executions, want 1", e.Executions())
	}
	if col.Fingerprint() != ds.Fingerprint() {
		t.Fatal("columnar and dataset fingerprints differ")
	}
	// The view shares the column's storage: same backing array.
	if &col.TimesColumn()[0] != &ds.Times[0][0][0][0] {
		t.Fatal("dataset view does not share columnar storage")
	}

	// Repeated Dataset calls return the same lazily built view.
	ds2, _, err := e.Dataset(model, geom)
	if err != nil {
		t.Fatal(err)
	}
	if ds2 != ds {
		t.Fatal("dataset view rebuilt on second call")
	}
}

// TestSpecKeyHash: equal resolved specs hash equally regardless of how
// they were spelled; distinct specs (different app, geometry, alpha or
// seed) hash differently — the property the fleet scheduler needs to
// route equal cells to the same worker.
func TestSpecKeyHash(t *testing.T) {
	resolve := func(sp Spec) SpecKey {
		r, err := sp.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		return r.Key()
	}

	// Two spellings of the same study: explicit paper defaults vs zeros.
	explicit := resolve(Spec{App: "minife", Geometry: cluster.DefaultConfig(), Alpha: 0.05})
	zeroed := resolve(Spec{App: "minife"})
	if explicit.Hash() != zeroed.Hash() {
		t.Error("equal resolved specs hash differently")
	}

	base := resolve(Spec{App: "minife"})
	variants := []Spec{
		{App: "minimd"},
		{App: "minife", Geometry: cluster.SmallConfig()},
		{App: "minife", Alpha: 0.01},
		{App: "minife", Geometry: cluster.Config{Trials: 10, Ranks: 8, Iterations: 200, Threads: 48, Seed: 2}},
		{App: "minife", LaggardThresholdSec: 2e-3},
	}
	seen := map[uint64]string{base.Hash(): "base"}
	for _, v := range variants {
		h := resolve(v).Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %q and %+v", prev, v)
		}
		seen[h] = v.App
	}
}
