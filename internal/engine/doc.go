// Package engine executes campaigns: many studies fanned out over a
// bounded worker pool, backed by a content-addressed dataset cache keyed
// by (model name, geometry, seed). Cache entries hold the compact
// columnar form (trace.Columnar) with the content fingerprint already
// computed during the fill; the nested Dataset view is built lazily over
// the same storage (NestedViews counts how often). Identical study specs
// are deduplicated to a single execution, and distinct specs over the
// same dataset share one generation. Results are deterministic
// regardless of scheduling order because dataset generation is a pure
// function of (model, seed) and the analysis pipeline is pure over the
// dataset.
//
// The cache is bounded on request: SetMaxDatasets installs an LRU
// eviction policy so a long-lived serving process holds at most N
// datasets, regenerating evicted ones on demand. Single specs execute
// synchronously through RunSpec — the unit the serve layer's request
// coalescer collapses identical concurrent HTTP studies onto — with
// resolved specs exposing comparable deduplication keys via Resolve and
// Key.
//
// This is the batch substrate behind internal/experiments, cmd/repro,
// cmd/analyze, the earlybird.RunCampaign facade and the internal/serve
// study service — the outer level of parallelism over whole studies,
// above cluster.Run's inner level over one study's trials and ranks.
package engine
