package engine

import (
	"testing"

	"earlybird/internal/cluster"
	"earlybird/internal/dlb"
	"earlybird/internal/workload"
)

// TestSpecKeyIncludesDLB: differently balanced runs must never share a
// dedup key, a rendezvous hash, or a dataset cache entry.
func TestSpecKeyIncludesDLB(t *testing.T) {
	quick := cluster.SmallConfig()
	static, err := Spec{App: "minife", Geometry: quick}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	lewi, err := Spec{App: "minife", Geometry: quick, DLB: dlb.Spec{Policy: dlb.PolicyLeWI}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if static.Key() == lewi.Key() {
		t.Fatal("static and lewi specs share a dedup key")
	}
	if static.Key().Hash() == lewi.Key().Hash() {
		t.Fatal("static and lewi specs share a rendezvous hash")
	}

	// Bare "lewi" and its spelled-out defaults are the same study.
	lewiExplicit, err := Spec{App: "minife", Geometry: quick, DLB: dlb.Spec{
		Policy: dlb.PolicyLeWI, LaggardFactor: dlb.DefaultLaggardFactor, MaxLendFraction: dlb.DefaultMaxLendFraction,
	}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if lewi.Key() != lewiExplicit.Key() {
		t.Fatal("canonical lewi forms resolve to different keys")
	}

	// "static" spelled out equals the zero policy.
	staticExplicit, err := Spec{App: "minife", Geometry: quick, DLB: dlb.Spec{Policy: dlb.PolicyStatic}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if static.Key() != staticExplicit.Key() {
		t.Fatal("explicit static differs from zero policy")
	}
}

// TestEngineCachesPerPolicy: the dataset cache must treat each policy as
// its own dataset and still deduplicate within one policy.
func TestEngineCachesPerPolicy(t *testing.T) {
	e := New(2)
	model := workload.DefaultMiniFE()
	quick := cluster.SmallConfig()

	a, hit, err := e.ColumnarDLB(model, quick, dlb.Spec{})
	if err != nil || hit {
		t.Fatalf("first static: hit=%v err=%v", hit, err)
	}
	b, hit, err := e.ColumnarDLB(model, quick, dlb.Spec{Policy: dlb.PolicyLeWI})
	if err != nil || hit {
		t.Fatalf("first lewi: hit=%v err=%v", hit, err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("policies shared a dataset")
	}
	if got := e.Executions(); got != 2 {
		t.Fatalf("executions = %d, want 2", got)
	}
	// Same policy, spelled differently: cache hit, no third generation.
	c, hit, err := e.ColumnarDLB(model, quick, dlb.Spec{
		Policy: dlb.PolicyLeWI, LaggardFactor: dlb.DefaultLaggardFactor, MaxLendFraction: dlb.DefaultMaxLendFraction,
	})
	if err != nil || !hit {
		t.Fatalf("canonical lewi re-request: hit=%v err=%v", hit, err)
	}
	if c != b {
		t.Fatal("canonical lewi forms got distinct stores")
	}
	if got := e.Executions(); got != 2 {
		t.Fatalf("executions after re-request = %d, want 2", got)
	}
	// Invalid policies error instead of caching garbage.
	if _, _, err := e.ColumnarDLB(model, quick, dlb.Spec{Policy: "turbo"}); err == nil {
		t.Fatal("invalid policy accepted")
	}
}
