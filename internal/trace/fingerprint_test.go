package trace

import "testing"

func TestFingerprintDiscriminates(t *testing.T) {
	a := NewDataset("app", 1, 2, 3, 4)
	b := NewDataset("app", 1, 2, 3, 4)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical datasets have different fingerprints")
	}

	b.Times[0][1][2][3] = 1e-6
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("sample change not reflected in fingerprint")
	}

	c := NewDataset("other", 1, 2, 3, 4)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("app name not reflected in fingerprint")
	}

	// Same total size, different shape.
	d := NewDataset("app", 1, 2, 4, 3)
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("geometry not reflected in fingerprint")
	}
}

func TestFingerprintStableAcrossCalls(t *testing.T) {
	d := NewDataset("app", 2, 2, 2, 2)
	for i := range d.Times {
		for j := range d.Times[i] {
			for k := range d.Times[i][j] {
				for l := range d.Times[i][j][k] {
					d.Times[i][j][k][l] = float64(i*1000+j*100+k*10+l) * 1e-6
				}
			}
		}
	}
	if d.Fingerprint() != d.Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
}
