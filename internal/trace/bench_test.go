package trace

import (
	"bytes"
	"testing"

	"earlybird/internal/simclock"
)

func benchDataset() *Dataset {
	d := NewDataset("bench", 2, 4, 50, 48)
	v := 0.02
	d.EachProcessIteration(func(_, _, _ int, xs []float64) {
		for i := range xs {
			xs[i] = v
			v += 1e-6
		}
	})
	return d
}

func BenchmarkRecorderEnterExit(b *testing.B) {
	clock := simclock.NewVirtual()
	rec := NewRecorder(clock, 1, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th := i % 48
		rec.Enter(0, th, th)
		rec.Exit(0, th, th)
	}
}

func BenchmarkAllSamples(b *testing.B) {
	d := benchDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(d.AllSamples()) != d.NumSamples() {
			b.Fatal("bad aggregation")
		}
	}
}

func BenchmarkWriteJSON(b *testing.B) {
	d := benchDataset()
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := d.WriteJSON(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkWriteCSV(b *testing.B) {
	d := benchDataset()
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := d.WriteCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkReadCSV(b *testing.B) {
	d := benchDataset()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCSV(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
