package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Dataset holds the compute times of a full study of one application:
// Trials x Ranks x Iterations x Threads, in seconds. With the paper's
// configuration (10 trials, 8 ranks, 200 iterations, 48 threads) this is
// the 768000-sample body analysed in Section 4.
//
// Dataset is the nested, random-access view of the study; the samples
// themselves live in a flat Columnar store (see columnar.go) when the
// dataset was produced by NewDataset or a Sink, with Times indexing
// directly into the shared column. Hand-built or JSON-decoded datasets
// may lack the backing store; Columnar() adopts them on demand.
type Dataset struct {
	App        string `json:"app"`
	Trials     int    `json:"trials"`
	Ranks      int    `json:"ranks"`
	Iterations int    `json:"iterations"`
	Threads    int    `json:"threads"`
	// Times is indexed [trial][rank][iteration][thread].
	Times [][][][]float64 `json:"times"`

	// col is the backing columnar store, when there is one. A sealed
	// store carries the fingerprint accumulated during the fill.
	col *Columnar
}

// NewDataset allocates a zeroed dataset with the given geometry, backed
// by a fresh columnar store.
func NewDataset(app string, trials, ranks, iterations, threads int) *Dataset {
	return newColumnar(app, trials, ranks, iterations, threads).Dataset()
}

// NumSamples returns the total number of thread-arrival samples.
func (d *Dataset) NumSamples() int {
	return d.Trials * d.Ranks * d.Iterations * d.Threads
}

// SetFromRecorder copies one rank's recorder into the dataset.
func (d *Dataset) SetFromRecorder(trial, rank int, rec *Recorder) {
	if rec.Iterations() != d.Iterations || rec.Threads() != d.Threads {
		panic("trace: recorder geometry does not match dataset")
	}
	for i := 0; i < d.Iterations; i++ {
		copy(d.Times[trial][rank][i], rec.IterationSeconds(i))
	}
}

// AllSamples returns every compute time in the dataset — the paper's
// "application level aggregation" (768000 samples at the default
// geometry). The result is a fresh slice the caller may sort or mutate.
func (d *Dataset) AllSamples() []float64 {
	if d.col != nil {
		out := make([]float64, len(d.col.times))
		copy(out, d.col.times)
		return out
	}
	out := make([]float64, 0, d.NumSamples())
	for _, trial := range d.Times {
		for _, rank := range trial {
			for _, iter := range rank {
				out = append(out, iter...)
			}
		}
	}
	return out
}

// IterationSamples returns all samples of one application iteration across
// every trial and rank — "application iteration level aggregation" (3840
// samples at the default geometry).
func (d *Dataset) IterationSamples(iter int) []float64 {
	out := make([]float64, 0, d.Trials*d.Ranks*d.Threads)
	for _, trial := range d.Times {
		for _, rank := range trial {
			out = append(out, rank[iter]...)
		}
	}
	return out
}

// ProcessIteration returns the 48-at-default thread samples of a single
// (trial, rank, iteration) — "process iteration level aggregation".
func (d *Dataset) ProcessIteration(trial, rank, iter int) []float64 {
	return d.Times[trial][rank][iter]
}

// EachProcessIteration calls fn for every (trial, rank, iteration) set in
// deterministic order. The slice passed to fn is the dataset's backing
// storage; fn must not mutate or retain it.
func (d *Dataset) EachProcessIteration(fn func(trial, rank, iter int, xs []float64)) {
	for t := 0; t < d.Trials; t++ {
		for r := 0; r < d.Ranks; r++ {
			for i := 0; i < d.Iterations; i++ {
				fn(t, r, i, d.Times[t][r][i])
			}
		}
	}
}

// NumProcessIterations returns trials x ranks x iterations (16000 at the
// default geometry — the population of Table 1).
func (d *Dataset) NumProcessIterations() int {
	return d.Trials * d.Ranks * d.Iterations
}

// Fingerprint returns a 64-bit FNV-1a content hash over the dataset's app
// name, geometry and the IEEE-754 bits of every sample: each (trial,
// rank) stripe is hashed in (iteration, thread) order and the stripe
// hashes are combined in trial-major order. Two datasets with equal
// fingerprints are byte-identical for analysis purposes; the campaign
// engine uses this to verify cache correctness. For sink-filled datasets
// the value was accumulated incrementally during the fill and this call
// is a cached load.
func (d *Dataset) Fingerprint() uint64 {
	if d.col != nil && d.col.hasFP {
		return d.col.fp
	}
	stripes := make([]uint64, 0, d.Trials*d.Ranks)
	for _, trial := range d.Times {
		for _, rank := range trial {
			h := uint64(fnvOffset64)
			for _, iter := range rank {
				for _, x := range iter {
					h = fnvU64(h, math.Float64bits(x))
				}
			}
			stripes = append(stripes, h)
		}
	}
	return combineFingerprint(d.App, d.Trials, d.Ranks, d.Iterations, d.Threads, stripes)
}

// Columnar returns the dataset's backing columnar store, adopting (and
// copying) the nested Times tensor when the dataset was hand-built or
// JSON-decoded. The store shares storage with Times whenever possible, so
// callers must not mutate the dataset afterwards.
func (d *Dataset) Columnar() *Columnar {
	if d.col != nil {
		return d.col
	}
	c := newColumnar(d.App, d.Trials, d.Ranks, d.Iterations, d.Threads)
	flat := c.times
	for _, trial := range d.Times {
		for _, rank := range trial {
			for _, iter := range rank {
				copy(flat, iter)
				flat = flat[len(iter):]
			}
		}
	}
	d.col = c
	return c
}

// Cursor returns a block-at-a-time cursor over every process iteration in
// deterministic (trial, rank, iteration) order. Blocks are zero-copy
// views into the dataset.
func (d *Dataset) Cursor() *Cursor { return d.CursorRange(0, d.Iterations) }

// CursorRange returns a cursor restricted to iterations in [fromIter,
// toIter).
func (d *Dataset) CursorRange(fromIter, toIter int) *Cursor {
	return newCursor(d.Trials, d.Ranks, d.Iterations, fromIter, toIter, func(t, r, i int) []float64 {
		return d.Times[t][r][i]
	})
}

// WriteJSON writes the dataset as JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// ReadJSON reads a dataset written by WriteJSON and validates its
// geometry.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: decoding dataset: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks that the Times tensor matches the declared geometry.
func (d *Dataset) Validate() error {
	if len(d.Times) != d.Trials {
		return fmt.Errorf("trace: %d trials declared, %d present", d.Trials, len(d.Times))
	}
	for t, trial := range d.Times {
		if len(trial) != d.Ranks {
			return fmt.Errorf("trace: trial %d: %d ranks declared, %d present", t, d.Ranks, len(trial))
		}
		for r, rank := range trial {
			if len(rank) != d.Iterations {
				return fmt.Errorf("trace: trial %d rank %d: %d iterations declared, %d present", t, r, d.Iterations, len(rank))
			}
			for i, iter := range rank {
				if len(iter) != d.Threads {
					return fmt.Errorf("trace: trial %d rank %d iter %d: %d threads declared, %d present", t, r, i, d.Threads, len(iter))
				}
			}
		}
	}
	return nil
}
