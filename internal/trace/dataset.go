package trace

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
)

// Dataset holds the compute times of a full study of one application:
// Trials x Ranks x Iterations x Threads, in seconds. With the paper's
// configuration (10 trials, 8 ranks, 200 iterations, 48 threads) this is
// the 768000-sample body analysed in Section 4.
type Dataset struct {
	App        string `json:"app"`
	Trials     int    `json:"trials"`
	Ranks      int    `json:"ranks"`
	Iterations int    `json:"iterations"`
	Threads    int    `json:"threads"`
	// Times is indexed [trial][rank][iteration][thread].
	Times [][][][]float64 `json:"times"`
}

// NewDataset allocates a zeroed dataset with the given geometry.
func NewDataset(app string, trials, ranks, iterations, threads int) *Dataset {
	if trials < 1 || ranks < 1 || iterations < 1 || threads < 1 {
		panic("trace: dataset geometry must be positive")
	}
	d := &Dataset{App: app, Trials: trials, Ranks: ranks, Iterations: iterations, Threads: threads}
	d.Times = make([][][][]float64, trials)
	flat := make([]float64, trials*ranks*iterations*threads)
	for t := range d.Times {
		d.Times[t] = make([][][]float64, ranks)
		for r := range d.Times[t] {
			d.Times[t][r] = make([][]float64, iterations)
			for i := range d.Times[t][r] {
				d.Times[t][r][i], flat = flat[:threads:threads], flat[threads:]
			}
		}
	}
	return d
}

// NumSamples returns the total number of thread-arrival samples.
func (d *Dataset) NumSamples() int {
	return d.Trials * d.Ranks * d.Iterations * d.Threads
}

// SetFromRecorder copies one rank's recorder into the dataset.
func (d *Dataset) SetFromRecorder(trial, rank int, rec *Recorder) {
	if rec.Iterations() != d.Iterations || rec.Threads() != d.Threads {
		panic("trace: recorder geometry does not match dataset")
	}
	for i := 0; i < d.Iterations; i++ {
		copy(d.Times[trial][rank][i], rec.IterationSeconds(i))
	}
}

// AllSamples returns every compute time in the dataset — the paper's
// "application level aggregation" (768000 samples at the default
// geometry).
func (d *Dataset) AllSamples() []float64 {
	out := make([]float64, 0, d.NumSamples())
	for _, trial := range d.Times {
		for _, rank := range trial {
			for _, iter := range rank {
				out = append(out, iter...)
			}
		}
	}
	return out
}

// IterationSamples returns all samples of one application iteration across
// every trial and rank — "application iteration level aggregation" (3840
// samples at the default geometry).
func (d *Dataset) IterationSamples(iter int) []float64 {
	out := make([]float64, 0, d.Trials*d.Ranks*d.Threads)
	for _, trial := range d.Times {
		for _, rank := range trial {
			out = append(out, rank[iter]...)
		}
	}
	return out
}

// ProcessIteration returns the 48-at-default thread samples of a single
// (trial, rank, iteration) — "process iteration level aggregation".
func (d *Dataset) ProcessIteration(trial, rank, iter int) []float64 {
	return d.Times[trial][rank][iter]
}

// EachProcessIteration calls fn for every (trial, rank, iteration) set in
// deterministic order. The slice passed to fn is the dataset's backing
// storage; fn must not mutate or retain it.
func (d *Dataset) EachProcessIteration(fn func(trial, rank, iter int, xs []float64)) {
	for t := 0; t < d.Trials; t++ {
		for r := 0; r < d.Ranks; r++ {
			for i := 0; i < d.Iterations; i++ {
				fn(t, r, i, d.Times[t][r][i])
			}
		}
	}
}

// NumProcessIterations returns trials x ranks x iterations (16000 at the
// default geometry — the population of Table 1).
func (d *Dataset) NumProcessIterations() int {
	return d.Trials * d.Ranks * d.Iterations
}

// Fingerprint returns a 64-bit FNV-1a hash over the dataset's app name,
// geometry and the IEEE-754 bits of every sample, in deterministic order.
// Two datasets with equal fingerprints are byte-identical for analysis
// purposes; the campaign engine uses this to verify cache correctness.
func (d *Dataset) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(d.App))
	var buf [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeU64(uint64(d.Trials))
	writeU64(uint64(d.Ranks))
	writeU64(uint64(d.Iterations))
	writeU64(uint64(d.Threads))
	for _, trial := range d.Times {
		for _, rank := range trial {
			for _, iter := range rank {
				for _, x := range iter {
					writeU64(math.Float64bits(x))
				}
			}
		}
	}
	return h.Sum64()
}

// WriteCSV writes the dataset in long form:
// app,trial,rank,iteration,thread,compute_seconds.
func (d *Dataset) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "app,trial,rank,iteration,thread,compute_seconds"); err != nil {
		return err
	}
	for t := 0; t < d.Trials; t++ {
		for r := 0; r < d.Ranks; r++ {
			for i := 0; i < d.Iterations; i++ {
				for th := 0; th < d.Threads; th++ {
					if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%g\n",
						d.App, t, r, i, th, d.Times[t][r][i][th]); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// WriteJSON writes the dataset as JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// ReadJSON reads a dataset written by WriteJSON and validates its
// geometry.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: decoding dataset: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks that the Times tensor matches the declared geometry.
func (d *Dataset) Validate() error {
	if len(d.Times) != d.Trials {
		return fmt.Errorf("trace: %d trials declared, %d present", d.Trials, len(d.Times))
	}
	for t, trial := range d.Times {
		if len(trial) != d.Ranks {
			return fmt.Errorf("trace: trial %d: %d ranks declared, %d present", t, d.Ranks, len(trial))
		}
		for r, rank := range trial {
			if len(rank) != d.Iterations {
				return fmt.Errorf("trace: trial %d rank %d: %d iterations declared, %d present", t, r, d.Iterations, len(rank))
			}
			for i, iter := range rank {
				if len(iter) != d.Threads {
					return fmt.Errorf("trace: trial %d rank %d iter %d: %d threads declared, %d present", t, r, i, d.Threads, len(iter))
				}
			}
		}
	}
	return nil
}
