// Package trace implements the paper's instrumentation methodology
// (Section 3.1) and the storage forms a study's samples live in.
//
// Instrumentation: the Recorder collects, per thread and per iteration,
// the monotonic timestamps at which a thread enters and exits a parallel
// compute region, and derives the thread's "compute time" — the elapsed
// nanoseconds between exit and enter. Raw monotonic readings are
// comparable only on the core that produced them (no tsc_reliable on the
// paper's platform); the derived compute time cancels any constant
// per-core offset and is therefore comparable across cores, sockets and
// nodes (experiment E13). See trace.go for the Listing 1 mirror.
//
// Storage: a study's samples form a dense relation over (trial, rank,
// iteration, thread, compute_seconds). The Columnar store keeps the one
// compute-time column flat with the four index columns implicit in the
// row number; Dataset is the nested [][][][] view over the same storage
// for random-access analysis. Data enters through a Sink (independent
// per-stripe writers, zero-copy fills, fingerprint accumulated during
// the fill) and leaves through Cursors (block-at-a-time zero-copy
// iteration) — the bounded-memory path the streaming analysis and the
// serve layer's NDJSON sweeps read. JSON and CSV round-trips live in
// dataset.go and csv.go.
package trace
