package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the dataset in long form —
// app,trial,rank,iteration,thread,compute_seconds — streaming rows from a
// cursor through a buffered writer: memory stays O(1) in the dataset size
// and no intermediate string of the whole table is ever built.
//
// App names containing CSV metacharacters (comma, quote, newline) are
// rejected: the writer emits the name unquoted, so such a name would
// produce a file ReadCSV rejects with a misleading field-count error.
func (d *Dataset) WriteCSV(w io.Writer) error {
	if strings.ContainsAny(d.App, ",\"\n\r") {
		return fmt.Errorf("trace: app name %q contains CSV metacharacters (comma, quote or newline); rename the dataset before exporting", d.App)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("app,trial,rank,iteration,thread,compute_seconds\n"); err != nil {
		return err
	}
	row := make([]byte, 0, 64)
	cur := d.Cursor()
	for cur.Next() {
		b := cur.Block()
		for th, v := range b.Times {
			row = row[:0]
			row = append(row, d.App...)
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(b.Trial), 10)
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(b.Rank), 10)
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(b.Iter), 10)
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(th), 10)
			row = append(row, ',')
			row = strconv.AppendFloat(row, v, 'g', -1, 64)
			row = append(row, '\n')
			if _, err := bw.Write(row); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses the long-form CSV written by WriteCSV back into a
// Dataset. The geometry is inferred from the maximum indices seen; every
// cell must be present exactly once.
func ReadCSV(r io.Reader) (*Dataset, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	if !scanner.Scan() {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	header := strings.TrimSpace(scanner.Text())
	if header != "app,trial,rank,iteration,thread,compute_seconds" {
		return nil, fmt.Errorf("trace: unexpected CSV header %q", header)
	}

	type row struct {
		trial, rank, iter, thread int
		sec                       float64
	}
	var (
		rows    []row
		app     string
		appSeen bool // first data row consumed; "" is a valid app, not a sentinel
		maxT    = -1
		maxR    = -1
		maxI    = -1
		maxTh   = -1
		lineNum = 1
	)
	for scanner.Scan() {
		lineNum++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 6 {
			return nil, fmt.Errorf("trace: line %d: %d fields", lineNum, len(fields))
		}
		if !appSeen {
			app, appSeen = fields[0], true
		} else if fields[0] != app {
			return nil, fmt.Errorf("trace: line %d: mixed apps %q and %q", lineNum, app, fields[0])
		}
		var rw row
		var err error
		if rw.trial, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("trace: line %d: trial: %w", lineNum, err)
		}
		if rw.rank, err = strconv.Atoi(fields[2]); err != nil {
			return nil, fmt.Errorf("trace: line %d: rank: %w", lineNum, err)
		}
		if rw.iter, err = strconv.Atoi(fields[3]); err != nil {
			return nil, fmt.Errorf("trace: line %d: iteration: %w", lineNum, err)
		}
		if rw.thread, err = strconv.Atoi(fields[4]); err != nil {
			return nil, fmt.Errorf("trace: line %d: thread: %w", lineNum, err)
		}
		if rw.sec, err = strconv.ParseFloat(fields[5], 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: compute_seconds: %w", lineNum, err)
		}
		if rw.trial < 0 || rw.rank < 0 || rw.iter < 0 || rw.thread < 0 {
			return nil, fmt.Errorf("trace: line %d: negative index", lineNum)
		}
		rows = append(rows, rw)
		if rw.trial > maxT {
			maxT = rw.trial
		}
		if rw.rank > maxR {
			maxR = rw.rank
		}
		if rw.iter > maxI {
			maxI = rw.iter
		}
		if rw.thread > maxTh {
			maxTh = rw.thread
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: CSV has no data rows")
	}
	d := NewDataset(app, maxT+1, maxR+1, maxI+1, maxTh+1)
	seen := make([]bool, d.NumSamples())
	for _, rw := range rows {
		idx := ((rw.trial*d.Ranks+rw.rank)*d.Iterations+rw.iter)*d.Threads + rw.thread
		if seen[idx] {
			return nil, fmt.Errorf("trace: duplicate cell (%d,%d,%d,%d)", rw.trial, rw.rank, rw.iter, rw.thread)
		}
		seen[idx] = true
		d.Times[rw.trial][rw.rank][rw.iter][rw.thread] = rw.sec
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("trace: missing cell at flat index %d", i)
		}
	}
	return d, nil
}

// SliceIterations returns a new dataset restricted to iterations
// [from, to) — used for phase-wise analysis (MiniMD) and warm-up
// trimming.
func (d *Dataset) SliceIterations(from, to int) (*Dataset, error) {
	if from < 0 || to > d.Iterations || from >= to {
		return nil, fmt.Errorf("trace: iteration slice [%d, %d) outside [0, %d)", from, to, d.Iterations)
	}
	out := NewDataset(d.App, d.Trials, d.Ranks, to-from, d.Threads)
	for t := 0; t < d.Trials; t++ {
		for r := 0; r < d.Ranks; r++ {
			for i := from; i < to; i++ {
				copy(out.Times[t][r][i-from], d.Times[t][r][i])
			}
		}
	}
	return out, nil
}

// MergeTrials concatenates the trials of datasets with identical app and
// per-trial geometry — combining repeated collection campaigns.
func MergeTrials(ds ...*Dataset) (*Dataset, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	first := ds[0]
	total := 0
	for _, d := range ds {
		if d.App != first.App || d.Ranks != first.Ranks ||
			d.Iterations != first.Iterations || d.Threads != first.Threads {
			return nil, fmt.Errorf("trace: geometry/app mismatch merging %q", d.App)
		}
		total += d.Trials
	}
	out := NewDataset(first.App, total, first.Ranks, first.Iterations, first.Threads)
	t := 0
	for _, d := range ds {
		for _, trial := range d.Times {
			for r, rank := range trial {
				for i, iter := range rank {
					copy(out.Times[t][r][i], iter)
				}
			}
			t++
		}
	}
	return out, nil
}
