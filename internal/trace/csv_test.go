package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset("fe", 2, 3, 4, 5)
	v := 0.001
	d.EachProcessIteration(func(_, _, _ int, xs []float64) {
		for i := range xs {
			xs[i] = v
			v += 0.0005
		}
	})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != "fe" || back.Trials != 2 || back.Ranks != 3 || back.Iterations != 4 || back.Threads != 5 {
		t.Fatalf("geometry %+v", back)
	}
	a, b := d.AllSamples(), back.AllSamples()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "x,y\n",
		"short row":    "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0\n",
		"bad number":   "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0,0,0,abc\n",
		"bad index":    "app,trial,rank,iteration,thread,compute_seconds\nfe,x,0,0,0,1\n",
		"negative":     "app,trial,rank,iteration,thread,compute_seconds\nfe,-1,0,0,0,1\n",
		"mixed apps":   "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0,0,0,1\nmd,0,0,0,1,1\n",
		"duplicate":    "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0,0,0,1\nfe,0,0,0,0,2\n",
		"missing cell": "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0,0,1,1\n",
		"no rows":      "app,trial,rank,iteration,thread,compute_seconds\n",
	}
	for name, csv := range cases {
		if _, err := ReadCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	csv := "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0,0,0,0.5\n\n"
	d, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if d.Times[0][0][0][0] != 0.5 {
		t.Fatal("value lost")
	}
}

func TestSliceIterations(t *testing.T) {
	d := NewDataset("x", 1, 1, 6, 2)
	for i := 0; i < 6; i++ {
		d.Times[0][0][i][0] = float64(i)
		d.Times[0][0][i][1] = float64(i) + 0.5
	}
	s, err := d.SliceIterations(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations != 3 || s.Times[0][0][0][0] != 2 || s.Times[0][0][2][1] != 4.5 {
		t.Fatalf("slice wrong: %+v", s.Times[0][0])
	}
	// Slicing copies: mutating the slice must not touch the original.
	s.Times[0][0][0][0] = 99
	if d.Times[0][0][2][0] == 99 {
		t.Fatal("slice aliases original")
	}
	for _, rng := range [][2]int{{-1, 3}, {0, 7}, {3, 3}, {4, 2}} {
		if _, err := d.SliceIterations(rng[0], rng[1]); err == nil {
			t.Errorf("slice [%d,%d) accepted", rng[0], rng[1])
		}
	}
}

func TestMergeTrials(t *testing.T) {
	a := NewDataset("x", 1, 2, 3, 4)
	b := NewDataset("x", 2, 2, 3, 4)
	a.Times[0][1][2][3] = 1.5
	b.Times[1][0][0][0] = 2.5
	m, err := MergeTrials(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Trials != 3 {
		t.Fatalf("trials = %d", m.Trials)
	}
	if m.Times[0][1][2][3] != 1.5 || m.Times[2][0][0][0] != 2.5 {
		t.Fatal("values misplaced")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTrialsErrors(t *testing.T) {
	if _, err := MergeTrials(); err == nil {
		t.Error("empty merge accepted")
	}
	a := NewDataset("x", 1, 2, 3, 4)
	b := NewDataset("y", 1, 2, 3, 4)
	if _, err := MergeTrials(a, b); err == nil {
		t.Error("mixed apps accepted")
	}
	c := NewDataset("x", 1, 2, 3, 5)
	if _, err := MergeTrials(a, c); err == nil {
		t.Error("mixed geometry accepted")
	}
}

// TestCSVRoundTripNonTrivialGeometry exercises the streaming CSV writer at
// a geometry large enough to cross several bufio flushes, with
// full-precision float64 values: the shortest-representation encoding must
// reproduce every sample bit-for-bit, so the content fingerprints agree.
func TestCSVRoundTripNonTrivialGeometry(t *testing.T) {
	const trials, ranks, iters, threads = 3, 5, 17, 7
	d := NewDataset("qmc", trials, ranks, iters, threads)
	x := uint64(0x9e3779b97f4a7c15)
	d.EachProcessIteration(func(_, _, _ int, xs []float64) {
		for i := range xs {
			// splitmix-style values spanning many magnitudes.
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			xs[i] = float64(x%1_000_000_007) * 1.1e-12
		}
	})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	wantLines := trials*ranks*iters*threads + 1
	if got := strings.Count(buf.String(), "\n"); got != wantLines {
		t.Fatalf("CSV has %d lines, want %d", got, wantLines)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != d.Fingerprint() {
		t.Fatal("CSV round trip changed the dataset fingerprint")
	}
}
