package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset("fe", 2, 3, 4, 5)
	v := 0.001
	d.EachProcessIteration(func(_, _, _ int, xs []float64) {
		for i := range xs {
			xs[i] = v
			v += 0.0005
		}
	})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != "fe" || back.Trials != 2 || back.Ranks != 3 || back.Iterations != 4 || back.Threads != 5 {
		t.Fatalf("geometry %+v", back)
	}
	a, b := d.AllSamples(), back.AllSamples()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "x,y\n",
		"short row":    "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0\n",
		"bad number":   "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0,0,0,abc\n",
		"bad index":    "app,trial,rank,iteration,thread,compute_seconds\nfe,x,0,0,0,1\n",
		"negative":     "app,trial,rank,iteration,thread,compute_seconds\nfe,-1,0,0,0,1\n",
		"mixed apps":   "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0,0,0,1\nmd,0,0,0,1,1\n",
		"duplicate":    "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0,0,0,1\nfe,0,0,0,0,2\n",
		"missing cell": "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0,0,1,1\n",
		"no rows":      "app,trial,rank,iteration,thread,compute_seconds\n",
	}
	for name, csv := range cases {
		if _, err := ReadCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestReadCSVEmptyAppNotASentinel is the regression test for the
// empty-app sentinel bug: ReadCSV used app == "" as its "no row seen
// yet" marker, so a CSV whose first data row had an empty app field
// silently accepted a different app on later rows instead of erroring.
func TestReadCSVEmptyAppNotASentinel(t *testing.T) {
	mixed := "app,trial,rank,iteration,thread,compute_seconds\n" +
		",0,0,0,0,1\n" + // empty app on the first row
		"md,0,0,0,1,1\n" // a different app on the second
	if _, err := ReadCSV(strings.NewReader(mixed)); err == nil {
		t.Fatal("mixed apps after an empty first-row app were accepted")
	} else if !strings.Contains(err.Error(), "mixed apps") {
		t.Fatalf("wrong error: %v", err)
	}

	// A consistently empty app is a valid (if odd) dataset, not an error.
	uniform := "app,trial,rank,iteration,thread,compute_seconds\n" +
		",0,0,0,0,1\n" +
		",0,0,0,1,2\n"
	d, err := ReadCSV(strings.NewReader(uniform))
	if err != nil {
		t.Fatal(err)
	}
	if d.App != "" || d.Threads != 2 {
		t.Fatalf("got app %q geometry %+v", d.App, d)
	}
}

// TestWriteCSVRejectsUnescapableApp is the regression test for the
// unescaped-app bug: WriteCSV emitted d.App verbatim, so an app name
// containing a comma or newline produced a corrupt file that ReadCSV
// rejected with a misleading "n fields" error. Such names now fail at
// write time with an error that names the app.
func TestWriteCSVRejectsUnescapableApp(t *testing.T) {
	for _, app := range []string{"fe,md", "fe\nmd", "fe\rmd", `fe"md`} {
		d := NewDataset(app, 1, 1, 1, 2)
		var buf bytes.Buffer
		err := d.WriteCSV(&buf)
		if err == nil {
			t.Errorf("app %q: corrupt CSV written without error", app)
			continue
		}
		if !strings.Contains(err.Error(), "metacharacters") {
			t.Errorf("app %q: wrong error: %v", app, err)
		}
		if buf.Len() != 0 {
			t.Errorf("app %q: partial output written before the rejection", app)
		}
	}

	// Round trip of an app name that is unusual but CSV-safe still works.
	d := NewDataset("fe md+noise:burst", 1, 1, 1, 2)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != d.App {
		t.Fatalf("app %q round-tripped as %q", d.App, back.App)
	}
}

// TestReadCSVEdgeCases is the table the scenario compiler's trace-replay
// import leans on: sparse indices, duplicate cells, a huge single line
// and geometry inference from out-of-order rows.
func TestReadCSVEdgeCases(t *testing.T) {
	const header = "app,trial,rank,iteration,thread,compute_seconds\n"
	t.Run("sparse indices leave holes", func(t *testing.T) {
		// Max thread index 2 implies 3 threads per cell; only one row
		// present — every other cell is a hole.
		csv := header + "fe,0,0,0,2,1\n"
		_, err := ReadCSV(strings.NewReader(csv))
		if err == nil || !strings.Contains(err.Error(), "missing cell") {
			t.Fatalf("sparse CSV accepted: %v", err)
		}
	})
	t.Run("duplicate cell named in error", func(t *testing.T) {
		csv := header + "fe,0,0,0,0,1\nfe,0,0,0,1,1\nfe,0,0,0,1,2\n"
		_, err := ReadCSV(strings.NewReader(csv))
		if err == nil || !strings.Contains(err.Error(), "duplicate cell (0,0,0,1)") {
			t.Fatalf("duplicate not reported: %v", err)
		}
	})
	t.Run("out-of-order rows reconstruct", func(t *testing.T) {
		csv := header +
			"fe,1,0,0,0,4\n" +
			"fe,0,0,0,1,2\n" +
			"fe,1,0,0,1,5\n" +
			"fe,0,0,0,0,1\n"
		d, err := ReadCSV(strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		if d.Trials != 2 || d.Threads != 2 || d.Times[1][0][0][1] != 5 || d.Times[0][0][0][0] != 1 {
			t.Fatalf("reconstruction wrong: %+v", d.Times)
		}
	})
	t.Run("huge line within buffer parses", func(t *testing.T) {
		// One value with ~500 KB of significant-looking digits still fits
		// the scanner's 1 MiB line buffer.
		long := "0." + strings.Repeat("1", 500_000)
		csv := header + "fe,0,0,0,0," + long + "\n"
		if _, err := ReadCSV(strings.NewReader(csv)); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("line over buffer errors", func(t *testing.T) {
		long := "0." + strings.Repeat("1", 2_000_000)
		csv := header + "fe,0,0,0,0," + long + "\n"
		if _, err := ReadCSV(strings.NewReader(csv)); err == nil {
			t.Fatal("2 MB line slid through a 1 MiB scanner buffer")
		}
	})
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	csv := "app,trial,rank,iteration,thread,compute_seconds\nfe,0,0,0,0,0.5\n\n"
	d, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if d.Times[0][0][0][0] != 0.5 {
		t.Fatal("value lost")
	}
}

func TestSliceIterations(t *testing.T) {
	d := NewDataset("x", 1, 1, 6, 2)
	for i := 0; i < 6; i++ {
		d.Times[0][0][i][0] = float64(i)
		d.Times[0][0][i][1] = float64(i) + 0.5
	}
	s, err := d.SliceIterations(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations != 3 || s.Times[0][0][0][0] != 2 || s.Times[0][0][2][1] != 4.5 {
		t.Fatalf("slice wrong: %+v", s.Times[0][0])
	}
	// Slicing copies: mutating the slice must not touch the original.
	s.Times[0][0][0][0] = 99
	if d.Times[0][0][2][0] == 99 {
		t.Fatal("slice aliases original")
	}
	for _, rng := range [][2]int{{-1, 3}, {0, 7}, {3, 3}, {4, 2}} {
		if _, err := d.SliceIterations(rng[0], rng[1]); err == nil {
			t.Errorf("slice [%d,%d) accepted", rng[0], rng[1])
		}
	}
}

func TestMergeTrials(t *testing.T) {
	a := NewDataset("x", 1, 2, 3, 4)
	b := NewDataset("x", 2, 2, 3, 4)
	a.Times[0][1][2][3] = 1.5
	b.Times[1][0][0][0] = 2.5
	m, err := MergeTrials(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Trials != 3 {
		t.Fatalf("trials = %d", m.Trials)
	}
	if m.Times[0][1][2][3] != 1.5 || m.Times[2][0][0][0] != 2.5 {
		t.Fatal("values misplaced")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTrialsErrors(t *testing.T) {
	if _, err := MergeTrials(); err == nil {
		t.Error("empty merge accepted")
	}
	a := NewDataset("x", 1, 2, 3, 4)
	b := NewDataset("y", 1, 2, 3, 4)
	if _, err := MergeTrials(a, b); err == nil {
		t.Error("mixed apps accepted")
	}
	c := NewDataset("x", 1, 2, 3, 5)
	if _, err := MergeTrials(a, c); err == nil {
		t.Error("mixed geometry accepted")
	}
}

// TestCSVRoundTripNonTrivialGeometry exercises the streaming CSV writer at
// a geometry large enough to cross several bufio flushes, with
// full-precision float64 values: the shortest-representation encoding must
// reproduce every sample bit-for-bit, so the content fingerprints agree.
func TestCSVRoundTripNonTrivialGeometry(t *testing.T) {
	const trials, ranks, iters, threads = 3, 5, 17, 7
	d := NewDataset("qmc", trials, ranks, iters, threads)
	x := uint64(0x9e3779b97f4a7c15)
	d.EachProcessIteration(func(_, _, _ int, xs []float64) {
		for i := range xs {
			// splitmix-style values spanning many magnitudes.
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			xs[i] = float64(x%1_000_000_007) * 1.1e-12
		}
	})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	wantLines := trials*ranks*iters*threads + 1
	if got := strings.Count(buf.String(), "\n"); got != wantLines {
		t.Fatalf("CSV has %d lines, want %d", got, wantLines)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != d.Fingerprint() {
		t.Fatal("CSV round trip changed the dataset fingerprint")
	}
}
