package trace

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

// fillPattern writes a recognisable, coordinate-derived value into every
// cell of a dataset.
func fillPattern(d *Dataset) {
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		for th := range xs {
			xs[th] = patternValue(trial, rank, iter, th)
		}
	})
}

func patternValue(trial, rank, iter, th int) float64 {
	return float64(trial)*1e-2 + float64(rank)*1e-4 + float64(iter)*1e-6 + float64(th)*1e-8
}

func TestSinkParallelFillMatchesDataset(t *testing.T) {
	const trials, ranks, iters, threads = 3, 4, 6, 5
	want := NewDataset("app", trials, ranks, iters, threads)
	fillPattern(want)

	sink := NewSink("app", trials, ranks, iters, threads)
	var wg sync.WaitGroup
	for tr := 0; tr < trials; tr++ {
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(tr, r int) {
				defer wg.Done()
				w := sink.Stripe(tr, r)
				for i := 0; i < iters; i++ {
					w.AppendWith(func(out []float64) {
						for th := range out {
							out[th] = patternValue(tr, r, i, th)
						}
					})
				}
			}(tr, r)
		}
	}
	wg.Wait()
	col, err := sink.Seal()
	if err != nil {
		t.Fatal(err)
	}

	got := col.Dataset()
	for tr := 0; tr < trials; tr++ {
		for r := 0; r < ranks; r++ {
			for i := 0; i < iters; i++ {
				for th := 0; th < threads; th++ {
					if got.Times[tr][r][i][th] != want.Times[tr][r][i][th] {
						t.Fatalf("cell (%d,%d,%d,%d) = %v, want %v",
							tr, r, i, th, got.Times[tr][r][i][th], want.Times[tr][r][i][th])
					}
				}
			}
		}
	}

	// The fingerprint accumulated during the fill must equal the one
	// recomputed from scratch over the nested view.
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatal("sealed fingerprint differs from recomputed fingerprint")
	}
	if col.Fingerprint() != want.Fingerprint() {
		t.Fatal("columnar fingerprint differs from dataset fingerprint")
	}
}

func TestSinkSealRejectsIncompleteStripe(t *testing.T) {
	sink := NewSink("app", 1, 2, 3, 2)
	w := sink.Stripe(0, 0)
	for i := 0; i < 3; i++ {
		w.Append([]float64{1, 2})
	}
	// Stripe (0,1) never filled.
	if _, err := sink.Seal(); err == nil {
		t.Fatal("expected incomplete-stripe error")
	}
}

func TestStripeWriterPanicsPastEnd(t *testing.T) {
	sink := NewSink("app", 1, 1, 1, 2)
	w := sink.Stripe(0, 0)
	w.Append([]float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-append")
		}
	}()
	w.Append([]float64{3, 4})
}

func TestCursorVisitsEveryBlockInOrder(t *testing.T) {
	d := NewDataset("app", 2, 3, 4, 2)
	fillPattern(d)
	var wantOrder [][3]int
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		wantOrder = append(wantOrder, [3]int{trial, rank, iter})
	})
	cur := d.Cursor()
	n := 0
	for cur.Next() {
		b := cur.Block()
		if n >= len(wantOrder) {
			t.Fatal("cursor yields more blocks than EachProcessIteration")
		}
		if got := [3]int{b.Trial, b.Rank, b.Iter}; got != wantOrder[n] {
			t.Fatalf("block %d = %v, want %v", n, got, wantOrder[n])
		}
		if b.Times[1] != patternValue(b.Trial, b.Rank, b.Iter, 1) {
			t.Fatalf("block %d has wrong samples", n)
		}
		n++
	}
	if n != len(wantOrder) {
		t.Fatalf("cursor yielded %d blocks, want %d", n, len(wantOrder))
	}
}

func TestCursorRange(t *testing.T) {
	d := NewDataset("app", 2, 2, 10, 2)
	cur := d.CursorRange(3, 7)
	count := 0
	for cur.Next() {
		b := cur.Block()
		if b.Iter < 3 || b.Iter >= 7 {
			t.Fatalf("iteration %d outside [3,7)", b.Iter)
		}
		count++
	}
	if count != 2*2*4 {
		t.Fatalf("cursor yielded %d blocks, want %d", count, 2*2*4)
	}

	// Empty and clamped ranges.
	if d.CursorRange(5, 5).Next() {
		t.Fatal("empty range yielded a block")
	}
	cur = d.CursorRange(-3, 99)
	count = 0
	for cur.Next() {
		count++
	}
	if count != d.NumProcessIterations() {
		t.Fatalf("clamped range yielded %d blocks, want %d", count, d.NumProcessIterations())
	}
}

func TestColumnarCoordRoundTrip(t *testing.T) {
	c := newColumnar("app", 2, 3, 4, 5)
	row := 0
	for tr := 0; tr < 2; tr++ {
		for r := 0; r < 3; r++ {
			for i := 0; i < 4; i++ {
				for th := 0; th < 5; th++ {
					gt, gr, gi, gth := c.Coord(row)
					if gt != tr || gr != r || gi != i || gth != th {
						t.Fatalf("Coord(%d) = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
							row, gt, gr, gi, gth, tr, r, i, th)
					}
					row++
				}
			}
		}
	}
}

func TestDatasetColumnarAdoptsJSONDecoded(t *testing.T) {
	d := NewDataset("app", 2, 2, 3, 2)
	fillPattern(d)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.col != nil {
		t.Fatal("JSON-decoded dataset unexpectedly has a backing store")
	}
	c := back.Columnar()
	if c.NumSamples() != d.NumSamples() {
		t.Fatalf("adopted columnar has %d samples, want %d", c.NumSamples(), d.NumSamples())
	}
	if c.Fingerprint() != d.Fingerprint() {
		t.Fatal("adopted columnar fingerprint differs")
	}
	if back.Columnar() != c {
		t.Fatal("Columnar not cached after adoption")
	}
	// The zero-copy column matches the nested view.
	if got := c.Block(1, 1, 2); got[1] != back.Times[1][1][2][1] {
		t.Fatalf("block view %v does not match nested view %v", got[1], back.Times[1][1][2][1])
	}
}

func TestColumnarTimesColumnSharesStorage(t *testing.T) {
	d := NewDataset("app", 1, 1, 2, 3)
	d.Times[0][0][1][2] = 42e-3
	col := d.Columnar()
	flat := col.TimesColumn()
	if len(flat) != 6 {
		t.Fatalf("column length %d", len(flat))
	}
	if flat[5] != 42e-3 {
		t.Fatalf("flat[5] = %v, want 42e-3 (storage not shared)", flat[5])
	}
	if math.IsNaN(flat[0]) {
		t.Fatal("unexpected NaN")
	}
}
