// Columnar storage for thread-timing studies.
//
// A study's samples form a dense relation over five logical columns —
// trial, rank, iteration, thread, compute_seconds. Because the geometry is
// rectangular, the four index columns are affine functions of the row
// number and never need to be materialised: the Columnar store keeps the
// single compute-time column flat in (trial, rank, iteration, thread)
// order and decodes coordinates on demand. At the paper's geometry this is
// one 768000-element float64 column (6 MiB) with zero pointer overhead;
// the nested Dataset view is a thin index built over the same storage.
//
// Data enters through a Sink: per-(trial, rank) StripeWriters append one
// process iteration at a time, each writer independent of the others so a
// parallel fill needs no locking. Every append folds the new samples into
// the stripe's running FNV-1a hash, so by the time Seal combines the
// stripes the dataset fingerprint has already been paid for — no second
// pass over the data. Data leaves through a Cursor: block-at-a-time
// iteration over process iterations, each block a zero-copy view of the
// column.

package trace

import (
	"fmt"
	"math"
)

// FNV-1a 64-bit parameters, inlined so per-sample hashing avoids the
// hash.Hash interface in the fill hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvU64 folds the eight little-endian bytes of v into h (FNV-1a).
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// fnvString folds the bytes of s into h (FNV-1a).
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// stripeHash returns the FNV-1a hash of one (trial, rank) stripe's
// samples in (iteration, thread) order.
func stripeHash(xs []float64) uint64 {
	h := uint64(fnvOffset64)
	for _, x := range xs {
		h = fnvU64(h, math.Float64bits(x))
	}
	return h
}

// combineFingerprint folds the app name, geometry and per-stripe hashes
// (in trial-major order) into the dataset fingerprint.
func combineFingerprint(app string, trials, ranks, iterations, threads int, stripes []uint64) uint64 {
	h := fnvString(uint64(fnvOffset64), app)
	h = fnvU64(h, uint64(trials))
	h = fnvU64(h, uint64(ranks))
	h = fnvU64(h, uint64(iterations))
	h = fnvU64(h, uint64(threads))
	for _, s := range stripes {
		h = fnvU64(h, s)
	}
	return h
}

// Columnar is the compact, immutable columnar form of a study: the
// geometry header plus the flat compute-time column. It is produced by a
// Sink (or adopted from a Dataset) and read through Cursors or the nested
// Dataset view; the campaign engine caches datasets in this form.
type Columnar struct {
	app        string
	trials     int
	ranks      int
	iterations int
	threads    int
	times      []float64
	fp         uint64
	hasFP      bool
}

func newColumnar(app string, trials, ranks, iterations, threads int) *Columnar {
	if trials < 1 || ranks < 1 || iterations < 1 || threads < 1 {
		panic("trace: columnar geometry must be positive")
	}
	return &Columnar{
		app:        app,
		trials:     trials,
		ranks:      ranks,
		iterations: iterations,
		threads:    threads,
		times:      make([]float64, trials*ranks*iterations*threads),
	}
}

// App returns the application name.
func (c *Columnar) App() string { return c.app }

// Trials returns the trial count.
func (c *Columnar) Trials() int { return c.trials }

// Ranks returns the rank count.
func (c *Columnar) Ranks() int { return c.ranks }

// Iterations returns the iteration count.
func (c *Columnar) Iterations() int { return c.iterations }

// Threads returns the thread count.
func (c *Columnar) Threads() int { return c.threads }

// NumSamples returns the total number of samples.
func (c *Columnar) NumSamples() int { return len(c.times) }

// NumProcessIterations returns trials x ranks x iterations.
func (c *Columnar) NumProcessIterations() int { return c.trials * c.ranks * c.iterations }

// blockOffset returns the flat offset of process iteration (t, r, i).
func (c *Columnar) blockOffset(t, r, i int) int {
	return ((t*c.ranks+r)*c.iterations + i) * c.threads
}

// Block returns the thread samples of one (trial, rank, iteration) as a
// zero-copy view into the column. Callers must not mutate it.
func (c *Columnar) Block(trial, rank, iter int) []float64 {
	if trial < 0 || trial >= c.trials || rank < 0 || rank >= c.ranks || iter < 0 || iter >= c.iterations {
		panic(fmt.Sprintf("trace: block (%d,%d,%d) outside %dx%dx%d", trial, rank, iter, c.trials, c.ranks, c.iterations))
	}
	off := c.blockOffset(trial, rank, iter)
	return c.times[off : off+c.threads : off+c.threads]
}

// TimesColumn returns the full compute-time column in (trial, rank,
// iteration, thread) order, zero-copy. Callers must not mutate it.
func (c *Columnar) TimesColumn() []float64 { return c.times }

// Coord decodes the (trial, rank, iteration, thread) coordinates of one
// row of the column — the four implicit index columns of the relation.
func (c *Columnar) Coord(row int) (trial, rank, iter, thread int) {
	thread = row % c.threads
	row /= c.threads
	iter = row % c.iterations
	row /= c.iterations
	rank = row % c.ranks
	trial = row / c.ranks
	return
}

// Fingerprint returns the dataset fingerprint. For sink-sealed stores the
// value was accumulated incrementally during the fill and this is a cached
// load; otherwise it is computed stripe-wise in one pass.
func (c *Columnar) Fingerprint() uint64 {
	if c.hasFP {
		return c.fp
	}
	stripeLen := c.iterations * c.threads
	stripes := make([]uint64, 0, c.trials*c.ranks)
	for off := 0; off < len(c.times); off += stripeLen {
		stripes = append(stripes, stripeHash(c.times[off:off+stripeLen]))
	}
	return combineFingerprint(c.app, c.trials, c.ranks, c.iterations, c.threads, stripes)
}

// Dataset builds the nested [][][][] view over the columnar storage. The
// view shares the column — no samples are copied — and inherits the
// cached fingerprint. The result must be treated as read-only.
func (c *Columnar) Dataset() *Dataset {
	d := &Dataset{
		App:        c.app,
		Trials:     c.trials,
		Ranks:      c.ranks,
		Iterations: c.iterations,
		Threads:    c.threads,
		col:        c,
	}
	d.Times = make([][][][]float64, c.trials)
	flat := c.times
	for t := range d.Times {
		d.Times[t] = make([][][]float64, c.ranks)
		for r := range d.Times[t] {
			d.Times[t][r] = make([][]float64, c.iterations)
			for i := range d.Times[t][r] {
				d.Times[t][r][i], flat = flat[:c.threads:c.threads], flat[c.threads:]
			}
		}
	}
	return d
}

// Cursor returns a cursor over every process iteration in deterministic
// (trial, rank, iteration) order.
func (c *Columnar) Cursor() *Cursor { return c.CursorRange(0, c.iterations) }

// CursorRange returns a cursor restricted to iterations in [fromIter,
// toIter), for phase-wise analysis.
func (c *Columnar) CursorRange(fromIter, toIter int) *Cursor {
	return newCursor(c.trials, c.ranks, c.iterations, fromIter, toIter, c.Block)
}

// Block is one process iteration yielded by a Cursor: its coordinates plus
// a zero-copy view of the thread samples. The view is only valid until the
// cursor advances; consumers must not mutate or retain it.
type Block struct {
	Trial, Rank, Iter int
	Times             []float64
}

// Cursor iterates a study block-at-a-time in deterministic (trial, rank,
// iteration) order. It is not safe for concurrent use.
type Cursor struct {
	trials, ranks    int
	fromIter, toIter int
	block            func(t, r, i int) []float64
	t, r, i          int
	cur              Block
}

func newCursor(trials, ranks, iterations, fromIter, toIter int, block func(t, r, i int) []float64) *Cursor {
	if fromIter < 0 {
		fromIter = 0
	}
	if toIter > iterations {
		toIter = iterations
	}
	return &Cursor{
		trials:   trials,
		ranks:    ranks,
		fromIter: fromIter,
		toIter:   toIter,
		block:    block,
		t:        0,
		r:        0,
		i:        fromIter - 1,
	}
}

// FromIter returns the inclusive lower iteration bound of the cursor.
func (c *Cursor) FromIter() int { return c.fromIter }

// ToIter returns the exclusive upper iteration bound of the cursor.
func (c *Cursor) ToIter() int { return c.toIter }

// Next advances to the next process iteration; it returns false when the
// cursor is exhausted.
func (c *Cursor) Next() bool {
	if c.fromIter >= c.toIter || c.t >= c.trials {
		return false
	}
	c.i++
	if c.i >= c.toIter {
		c.i = c.fromIter
		c.r++
		if c.r >= c.ranks {
			c.r = 0
			c.t++
			if c.t >= c.trials {
				return false
			}
		}
	}
	c.cur = Block{Trial: c.t, Rank: c.r, Iter: c.i, Times: c.block(c.t, c.r, c.i)}
	return true
}

// Block returns the current block. Only valid after Next returned true.
func (c *Cursor) Block() Block { return c.cur }

// Sink is an append-only columnar writer for one study. Each (trial,
// rank) stripe has an independent StripeWriter, so a parallel fill writes
// without locks; every append folds the samples into the stripe's running
// hash, making the final fingerprint free at Seal time.
type Sink struct {
	col     *Columnar
	stripes []sinkStripe
}

type sinkStripe struct {
	next int
	hash uint64
}

// NewSink returns a sink for the given geometry.
func NewSink(app string, trials, ranks, iterations, threads int) *Sink {
	col := newColumnar(app, trials, ranks, iterations, threads)
	stripes := make([]sinkStripe, trials*ranks)
	for i := range stripes {
		stripes[i].hash = fnvOffset64
	}
	return &Sink{col: col, stripes: stripes}
}

// App returns the application name the sink was created with.
func (s *Sink) App() string { return s.col.app }

// Trials returns the sink's trial count.
func (s *Sink) Trials() int { return s.col.trials }

// Ranks returns the sink's rank count.
func (s *Sink) Ranks() int { return s.col.ranks }

// Iterations returns the sink's iteration count.
func (s *Sink) Iterations() int { return s.col.iterations }

// Threads returns the sink's thread count.
func (s *Sink) Threads() int { return s.col.threads }

// Stripe returns the writer for one (trial, rank) stripe. Distinct
// stripes may be written from distinct goroutines concurrently; a single
// stripe's writer must only be used from one goroutine at a time.
func (s *Sink) Stripe(trial, rank int) *StripeWriter {
	if trial < 0 || trial >= s.col.trials || rank < 0 || rank >= s.col.ranks {
		panic(fmt.Sprintf("trace: stripe (%d,%d) outside %dx%d", trial, rank, s.col.trials, s.col.ranks))
	}
	return &StripeWriter{
		sink:   s,
		stripe: &s.stripes[trial*s.col.ranks+rank],
		base:   s.col.blockOffset(trial, rank, 0),
	}
}

// StripeWriter appends process iterations to one (trial, rank) stripe in
// iteration order.
type StripeWriter struct {
	sink   *Sink
	stripe *sinkStripe
	base   int
}

// Written returns how many iterations have been appended to the stripe.
func (w *StripeWriter) Written() int { return w.stripe.next }

// next reserves the destination view of the next iteration.
func (w *StripeWriter) nextView() []float64 {
	c := w.sink.col
	if w.stripe.next >= c.iterations {
		panic("trace: stripe already complete")
	}
	off := w.base + w.stripe.next*c.threads
	return c.times[off : off+c.threads : off+c.threads]
}

// commit folds the just-written view into the stripe hash and advances.
func (w *StripeWriter) commit(out []float64) {
	h := w.stripe.hash
	for _, x := range out {
		h = fnvU64(h, math.Float64bits(x))
	}
	w.stripe.hash = h
	w.stripe.next++
}

// Append copies one process iteration's thread samples into the stripe.
func (w *StripeWriter) Append(xs []float64) {
	out := w.nextView()
	if len(xs) != len(out) {
		panic(fmt.Sprintf("trace: appending %d samples to a %d-thread stripe", len(xs), len(out)))
	}
	copy(out, xs)
	w.commit(out)
}

// AppendWith hands the next iteration's backing storage to fill — letting
// producers write samples in place with no copy — then commits it. It
// returns the written view so the caller can feed subscribed accumulators
// before moving on; the view must not be mutated afterwards.
func (w *StripeWriter) AppendWith(fill func(out []float64)) []float64 {
	out := w.nextView()
	fill(out)
	w.commit(out)
	return out
}

// Seal verifies that every stripe is complete, combines the per-stripe
// hashes into the dataset fingerprint, and returns the finished store.
// The sink must not be written after Seal.
func (s *Sink) Seal() (*Columnar, error) {
	hashes := make([]uint64, len(s.stripes))
	for i := range s.stripes {
		if s.stripes[i].next != s.col.iterations {
			t, r := i/s.col.ranks, i%s.col.ranks
			return nil, fmt.Errorf("trace: stripe (%d,%d) has %d of %d iterations",
				t, r, s.stripes[i].next, s.col.iterations)
		}
		hashes[i] = s.stripes[i].hash
	}
	s.col.fp = combineFingerprint(s.col.app, s.col.trials, s.col.ranks, s.col.iterations, s.col.threads, hashes)
	s.col.hasFP = true
	return s.col, nil
}
