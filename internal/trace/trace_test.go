package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"earlybird/internal/omp"
	"earlybird/internal/simclock"
)

func TestRecorderComputeTime(t *testing.T) {
	v := simclock.NewVirtual()
	rec := NewRecorder(v, 2, 3)
	rec.Enter(0, 1, 1)
	v.Advance(26300 * time.Microsecond)
	rec.Exit(0, 1, 1)
	if got := rec.ComputeTime(0, 1); got != 26300*time.Microsecond {
		t.Fatalf("compute time = %v", got)
	}
	if rec.Iterations() != 2 || rec.Threads() != 3 {
		t.Fatal("geometry accessors wrong")
	}
}

// E13: the derived compute time must be invariant under per-core clock
// offsets — the paper's justification for using elapsed time instead of
// raw timestamps (Section 3.1).
func TestRecorderCancelsCoreSkew(t *testing.T) {
	v := simclock.NewVirtual()
	offsets := []time.Duration{0, 5 * time.Millisecond, -3 * time.Millisecond, 250 * time.Microsecond}
	skew := simclock.NewSkewed(v, offsets)
	rec := NewRecorder(skew, 1, 4)
	for th := 0; th < 4; th++ {
		rec.Enter(0, th, th)
	}
	v.Advance(10 * time.Millisecond)
	for th := 0; th < 4; th++ {
		rec.Exit(0, th, th)
	}
	for th := 0; th < 4; th++ {
		if got := rec.ComputeTime(0, th); got != 10*time.Millisecond {
			t.Errorf("thread %d: compute time %v, want 10ms (skew leaked)", th, got)
		}
	}
}

func TestRecorderSetComputeTime(t *testing.T) {
	rec := NewRecorder(simclock.NewVirtual(), 1, 2)
	rec.SetComputeTime(0, 0, 24740*time.Microsecond)
	if got := rec.ComputeTime(0, 0); got != 24740*time.Microsecond {
		t.Fatalf("got %v", got)
	}
	xs := rec.IterationSeconds(0)
	if len(xs) != 2 || xs[0] != 0.02474 || xs[1] != 0 {
		t.Fatalf("iteration seconds = %v", xs)
	}
}

func TestRecorderPanicsOutOfRange(t *testing.T) {
	rec := NewRecorder(simclock.NewVirtual(), 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rec.Enter(1, 0, 0)
}

// Full Listing-1 pattern under the omp runtime with a real clock: each
// thread's compute time must be positive and roughly the time its share
// of work took.
func TestRecorderWithOMPListing1(t *testing.T) {
	const threads, iters = 4, 3
	pool := omp.NewPool(threads)
	defer pool.Close()
	clock := simclock.NewReal()
	rec := NewRecorder(clock, iters, threads)
	sink := make([]float64, threads)
	for iter := 0; iter < iters; iter++ {
		i := iter
		pool.Parallel(func(tc *omp.ThreadContext) {
			th := tc.ThreadNum()
			tc.Barrier()
			rec.Enter(i, th, th)
			tc.For(400, omp.Static, 0, func(j int) {
				s := 0.0
				for k := 0; k < 2000; k++ {
					s += float64(k^j) * 1e-9
				}
				sink[th] += s
			})
			rec.Exit(i, th, th)
			tc.Barrier()
		})
	}
	for iter := 0; iter < iters; iter++ {
		for th := 0; th < threads; th++ {
			ct := rec.ComputeTime(iter, th)
			if ct <= 0 {
				t.Errorf("iter %d thread %d: compute time %v not positive", iter, th, ct)
			}
			if ct > 5*time.Second {
				t.Errorf("iter %d thread %d: compute time %v implausibly large", iter, th, ct)
			}
		}
	}
}

func TestDatasetGeometryAndAggregations(t *testing.T) {
	d := NewDataset("minife", 2, 3, 4, 5)
	if d.NumSamples() != 2*3*4*5 {
		t.Fatalf("NumSamples = %d", d.NumSamples())
	}
	if d.NumProcessIterations() != 2*3*4 {
		t.Fatalf("NumProcessIterations = %d", d.NumProcessIterations())
	}
	// Fill with a recognisable pattern.
	val := 0.0
	d.EachProcessIteration(func(trial, rank, iter int, xs []float64) {
		for th := range xs {
			xs[th] = val
			val++
		}
	})
	if got := len(d.AllSamples()); got != d.NumSamples() {
		t.Fatalf("AllSamples length %d", got)
	}
	it := d.IterationSamples(2)
	if len(it) != 2*3*5 {
		t.Fatalf("IterationSamples length %d", len(it))
	}
	pi := d.ProcessIteration(1, 2, 3)
	if len(pi) != 5 {
		t.Fatalf("ProcessIteration length %d", len(pi))
	}
}

func TestDatasetSetFromRecorder(t *testing.T) {
	v := simclock.NewVirtual()
	rec := NewRecorder(v, 2, 3)
	for i := 0; i < 2; i++ {
		for th := 0; th < 3; th++ {
			rec.SetComputeTime(i, th, time.Duration(i*3+th)*time.Millisecond)
		}
	}
	d := NewDataset("x", 1, 1, 2, 3)
	d.SetFromRecorder(0, 0, rec)
	if d.Times[0][0][1][2] != 0.005 {
		t.Fatalf("copied value = %v", d.Times[0][0][1][2])
	}
}

func TestDatasetSetFromRecorderGeometryMismatchPanics(t *testing.T) {
	rec := NewRecorder(simclock.NewVirtual(), 2, 3)
	d := NewDataset("x", 1, 1, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.SetFromRecorder(0, 0, rec)
}

func TestDatasetCSV(t *testing.T) {
	d := NewDataset("md", 1, 1, 1, 2)
	d.Times[0][0][0][0] = 0.024
	d.Times[0][0][0][1] = 0.025
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "app,trial,rank,iteration,thread,compute_seconds" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "md,0,0,0,0,0.024" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	d := NewDataset("qmc", 2, 2, 2, 2)
	d.Times[1][1][1][1] = 0.06091
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != "qmc" || back.Times[1][1][1][1] != 0.06091 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestReadJSONRejectsBadGeometry(t *testing.T) {
	bad := `{"app":"x","trials":2,"ranks":1,"iterations":1,"threads":1,"times":[[[[1.0]]]]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("expected geometry validation error")
	}
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestValidateDeepMismatch(t *testing.T) {
	d := NewDataset("x", 1, 1, 1, 2)
	d.Times[0][0][0] = d.Times[0][0][0][:1] // truncate threads
	if err := d.Validate(); err == nil {
		t.Fatal("expected thread-count mismatch error")
	}
}
