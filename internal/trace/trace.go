// The Recorder mirrors Listing 1 of the paper:
//
//	rec := trace.NewRecorder(clock, iters, nthreads)
//	pool.Parallel(func(tc *omp.ThreadContext) {
//	    t := tc.ThreadNum()
//	    tc.Barrier()
//	    rec.Enter(iter, t, t) // clock_gettime after the barrier
//	    tc.For(n, omp.Static, 0, body) // nowait
//	    rec.Exit(iter, t, t)  // clock_gettime right after own share
//	    tc.Barrier()
//	})

package trace

import (
	"fmt"
	"time"

	"earlybird/internal/simclock"
)

// Recorder collects enter/exit timestamp pairs for a fixed number of
// iterations and threads. Each (iteration, thread) cell is written by
// exactly one thread, so no synchronisation is required beyond the
// region's own barriers — the same property the paper's array-indexed
// instrumentation relies on.
type Recorder struct {
	clock      simclock.Clock
	iterations int
	threads    int
	enter      []time.Duration // [iter*threads + thread]
	exit       []time.Duration
}

// NewRecorder returns a Recorder for the given geometry.
func NewRecorder(clock simclock.Clock, iterations, threads int) *Recorder {
	if iterations < 1 || threads < 1 {
		panic("trace: recorder geometry must be positive")
	}
	return &Recorder{
		clock:      clock,
		iterations: iterations,
		threads:    threads,
		enter:      make([]time.Duration, iterations*threads),
		exit:       make([]time.Duration, iterations*threads),
	}
}

// Iterations returns the number of iterations the recorder holds.
func (r *Recorder) Iterations() int { return r.iterations }

// Threads returns the number of threads the recorder holds.
func (r *Recorder) Threads() int { return r.threads }

func (r *Recorder) idx(iter, thread int) int {
	if iter < 0 || iter >= r.iterations || thread < 0 || thread >= r.threads {
		panic(fmt.Sprintf("trace: index (%d,%d) outside %dx%d", iter, thread, r.iterations, r.threads))
	}
	return iter*r.threads + thread
}

// Enter records the region-entry timestamp for (iter, thread) as observed
// from the given core.
func (r *Recorder) Enter(iter, thread, core int) {
	r.enter[r.idx(iter, thread)] = r.clock.Now(core)
}

// Exit records the region-exit timestamp for (iter, thread) as observed
// from the given core.
func (r *Recorder) Exit(iter, thread, core int) {
	r.exit[r.idx(iter, thread)] = r.clock.Now(core)
}

// SetComputeTime stores a pre-computed elapsed time for (iter, thread),
// used by the calibrated simulation path where no live clock is involved.
func (r *Recorder) SetComputeTime(iter, thread int, d time.Duration) {
	i := r.idx(iter, thread)
	r.enter[i] = 0
	r.exit[i] = d
}

// ComputeTime returns the derived compute time (exit - enter) of
// (iter, thread).
func (r *Recorder) ComputeTime(iter, thread int) time.Duration {
	i := r.idx(iter, thread)
	return r.exit[i] - r.enter[i]
}

// IterationSeconds returns the compute times of all threads of one
// iteration, in seconds.
func (r *Recorder) IterationSeconds(iter int) []float64 {
	out := make([]float64, r.threads)
	for t := 0; t < r.threads; t++ {
		out[t] = r.ComputeTime(iter, t).Seconds()
	}
	return out
}
