package telemetry

import (
	"sort"
	"sync"
	"time"
)

// completedKeep bounds how many finished trackers the registry retains
// for late /v1/progress lookups that race a study's completion.
const completedKeep = 32

// Registry is a server's set of live study trackers plus the lifetime
// fill counters the /metrics endpoint exports. Safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	active    map[string]*Tracker
	completed map[string]*Tracker
	order     []string // completion order, oldest first

	started  int64
	finished int64
	// Folded totals of finished trackers; live totals add the active set.
	blocks  int64
	samples int64
	busyNs  int64
	lends   int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{active: map[string]*Tracker{}, completed: map[string]*Tracker{}}
}

// Register adds a tracker to the active set. A tracker with an already
// active ID replaces the stale entry (the previous study with that
// identity is being re-run, e.g. after a cache eviction).
func (r *Registry) Register(t *Tracker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active[t.ID()] = t
	r.started++
}

// Finish marks the tracker done, folds its counters into the lifetime
// totals, and moves it from the active set to the completed ring.
func (r *Registry) Finish(t *Tracker) {
	t.Finish()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active[t.ID()] == t {
		delete(r.active, t.ID())
	}
	r.finished++
	r.blocks += t.blocks.Load()
	r.samples += t.samples.Load()
	r.busyNs += t.busyNs.Load()
	r.lends += t.lends.Load()
	if _, ok := r.completed[t.ID()]; !ok {
		r.order = append(r.order, t.ID())
	}
	r.completed[t.ID()] = t
	for len(r.order) > completedKeep {
		delete(r.completed, r.order[0])
		r.order = r.order[1:]
	}
}

// Get resolves a progress ID against the active set first, then the
// completed ring (whose trackers answer with their frozen final state).
func (r *Registry) Get(id string) (*Tracker, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.active[id]; ok {
		return t, true
	}
	t, ok := r.completed[id]
	return t, ok
}

// Active snapshots every in-flight study, sorted by ID for stable
// output.
func (r *Registry) Active() []Progress {
	r.mu.Lock()
	trackers := make([]*Tracker, 0, len(r.active))
	for _, t := range r.active {
		trackers = append(trackers, t)
	}
	r.mu.Unlock()
	sort.Slice(trackers, func(i, j int) bool { return trackers[i].ID() < trackers[j].ID() })
	out := make([]Progress, len(trackers))
	for i, t := range trackers {
		out[i] = t.Snapshot()
	}
	return out
}

// ActiveCount returns the number of in-flight studies.
func (r *Registry) ActiveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// Efficiency is the live aggregate parallel efficiency across the
// active studies: total useful fill time over total workersxwall time,
// so a large study weighs more than a tiny one. ok is false when no
// study is in flight — there is no live signal, and adaptive admission
// must admit.
func (r *Registry) Efficiency() (eff float64, ok bool) {
	r.mu.Lock()
	trackers := make([]*Tracker, 0, len(r.active))
	for _, t := range r.active {
		trackers = append(trackers, t)
	}
	r.mu.Unlock()
	if len(trackers) == 0 {
		return 0, false
	}
	var busy, wall time.Duration
	for _, t := range trackers {
		b, w := t.busyAndWall()
		busy += b
		wall += w
	}
	if wall <= 0 {
		return 0, false
	}
	return clamp01(busy.Seconds() / wall.Seconds()), true
}

// MinETA returns the smallest positive ETA among active studies — the
// Retry-After hint adaptive admission sheds with. ok is false when no
// active study has a known ETA.
func (r *Registry) MinETA() (eta time.Duration, ok bool) {
	for _, p := range r.Active() {
		if p.ETASec <= 0 {
			continue
		}
		d := time.Duration(p.ETASec * float64(time.Second))
		if !ok || d < eta {
			eta, ok = d, true
		}
	}
	return eta, ok
}

// Totals is the registry's lifetime counter snapshot for /metrics:
// folded finished-tracker counts plus the live active set.
type Totals struct {
	StudiesStarted  int64
	StudiesFinished int64
	ActiveStudies   int
	Blocks          int64
	Samples         int64
	BusySeconds     float64
	LendEvents      int64
}

// Totals snapshots the lifetime counters.
func (r *Registry) Totals() Totals {
	r.mu.Lock()
	defer r.mu.Unlock()
	tt := Totals{
		StudiesStarted:  r.started,
		StudiesFinished: r.finished,
		ActiveStudies:   len(r.active),
		Blocks:          r.blocks,
		Samples:         r.samples,
		BusySeconds:     time.Duration(r.busyNs).Seconds(),
		LendEvents:      r.lends,
	}
	for _, t := range r.active {
		tt.Blocks += t.blocks.Load()
		tt.Samples += t.samples.Load()
		tt.BusySeconds += time.Duration(t.busyNs.Load()).Seconds()
		tt.LendEvents += t.lends.Load()
	}
	return tt
}
