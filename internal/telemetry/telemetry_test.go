package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic estimator
// tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testInfo(trials, ranks, iters, workers int) StudyInfo {
	return StudyInfo{
		ID: "test", App: "minife",
		Trials: trials, Ranks: ranks, Iterations: iters, Threads: 1,
		Workers: workers,
	}
}

// TestEWMAConvergesToConstantRate feeds a perfectly constant fill rate
// and checks the EWMA estimate converges to the true rate — the
// estimator is unbiased on the signal it is designed for.
func TestEWMAConvergesToConstantRate(t *testing.T) {
	const (
		rate = 200.0 // blocks per second
		step = 50 * time.Millisecond
	)
	clk := newFakeClock()
	tr := NewWithClock(testInfo(1000, 100, 100, 4), clk.now)

	blocksPerStep := int(rate * step.Seconds())
	// Run 10 tau of simulated time: far past the EWMA's memory.
	steps := int((10 * ewmaTau) / step)
	var p Progress
	for i := 0; i < steps; i++ {
		clk.advance(step)
		for b := 0; b < blocksPerStep; b++ {
			tr.ObserveFill(10, time.Millisecond)
		}
		p = tr.Snapshot()
	}
	if rel := math.Abs(p.RateBlocksPerSec-rate) / rate; rel > 0.01 {
		t.Fatalf("EWMA rate %.3f blocks/s, want within 1%% of %.1f", p.RateBlocksPerSec, rate)
	}
	// ETA should agree with remaining/rate to the same tolerance.
	remaining := float64(p.BlocksTotal - p.BlocksDone)
	if remaining > 0 {
		want := remaining / rate
		if rel := math.Abs(p.ETASec-want) / want; rel > 0.02 {
			t.Fatalf("ETA %.3fs, want ~%.3fs", p.ETASec, want)
		}
	}
}

// TestEstimatorProperties drives random fill schedules (bursty rates,
// stalls, jittered snapshot cadence) through the estimator and asserts
// the invariants the ISSUE pins: ETA is never negative, efficiency
// stays in [0, 1], and trial progress is monotone.
func TestEstimatorProperties(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clk := newFakeClock()
		trials, ranks, iters := 1+rng.Intn(20), 1+rng.Intn(16), 1+rng.Intn(50)
		workers := 1 + rng.Intn(8)
		tr := NewWithClock(testInfo(trials, ranks, iters, workers), clk.now)
		total := int64(trials) * int64(ranks) * int64(iters)

		var fed int64
		lastTrials := 0
		var lastBlocks int64
		for fed < total {
			// Random burst: possibly a stall (zero blocks), then advance a
			// jittered interval and snapshot.
			burst := int64(rng.Intn(50))
			if burst > total-fed {
				burst = total - fed
			}
			for b := int64(0); b < burst; b++ {
				busy := time.Duration(rng.Intn(int(5 * time.Millisecond)))
				tr.ObserveFill(1+rng.Intn(64), busy)
			}
			fed += burst
			if rng.Intn(4) == 0 {
				tr.ObserveLend(rng.Intn(workers))
			}
			clk.advance(time.Duration(1+rng.Intn(int(300*time.Millisecond))) + time.Millisecond)

			p := tr.Snapshot()
			if p.ETASec < 0 {
				t.Fatalf("seed %d: negative ETA %.3f", seed, p.ETASec)
			}
			if p.Efficiency < 0 || p.Efficiency > 1 {
				t.Fatalf("seed %d: efficiency %.3f out of [0,1]", seed, p.Efficiency)
			}
			if p.TrialsDone < lastTrials {
				t.Fatalf("seed %d: trials_done went backwards %d -> %d", seed, lastTrials, p.TrialsDone)
			}
			if p.TrialsDone > p.TrialsTotal {
				t.Fatalf("seed %d: trials_done %d > total %d", seed, p.TrialsDone, p.TrialsTotal)
			}
			if p.BlocksDone < lastBlocks {
				t.Fatalf("seed %d: blocks_done went backwards %d -> %d", seed, lastBlocks, p.BlocksDone)
			}
			lastTrials, lastBlocks = p.TrialsDone, p.BlocksDone
		}

		tr.Finish()
		p := tr.Snapshot()
		if !p.Done {
			t.Fatalf("seed %d: snapshot after Finish not done", seed)
		}
		if p.ETASec != 0 {
			t.Fatalf("seed %d: finished study has ETA %.3f, want 0", seed, p.ETASec)
		}
		if p.TrialsDone != trials || p.BlocksDone != total {
			t.Fatalf("seed %d: final progress %d/%d trials, %d/%d blocks",
				seed, p.TrialsDone, trials, p.BlocksDone, total)
		}
	}
}

// TestFinishFreezesElapsed pins that a finished tracker's elapsed clock
// (and therefore its efficiency) stops advancing.
func TestFinishFreezesElapsed(t *testing.T) {
	clk := newFakeClock()
	tr := NewWithClock(testInfo(2, 2, 2, 1), clk.now)
	clk.advance(time.Second)
	tr.ObserveFill(8, 500*time.Millisecond)
	tr.Finish()
	frozen := tr.Snapshot()
	clk.advance(time.Hour)
	later := tr.Snapshot()
	if later.ElapsedSec != frozen.ElapsedSec {
		t.Fatalf("elapsed advanced after Finish: %.3f -> %.3f", frozen.ElapsedSec, later.ElapsedSec)
	}
	if later.Efficiency != frozen.Efficiency {
		t.Fatalf("efficiency changed after Finish: %.3f -> %.3f", frozen.Efficiency, later.Efficiency)
	}
	if want := 0.5; math.Abs(later.Efficiency-want) > 1e-9 {
		t.Fatalf("efficiency %.3f, want %.3f", later.Efficiency, want)
	}
}

// TestRegistryAggregation exercises the registry: live efficiency
// weighting, lifetime totals folding, MinETA and the completed ring.
func TestRegistryAggregation(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Efficiency(); ok {
		t.Fatal("empty registry reported a live efficiency signal")
	}
	if _, ok := r.MinETA(); ok {
		t.Fatal("empty registry reported a MinETA")
	}

	clk := newFakeClock()
	big := NewWithClock(StudyInfo{ID: "big", App: "a", Trials: 10, Ranks: 10, Iterations: 10, Workers: 4}, clk.now)
	small := NewWithClock(StudyInfo{ID: "small", App: "b", Trials: 1, Ranks: 1, Iterations: 10, Workers: 1}, clk.now)
	r.Register(big)
	r.Register(small)
	clk.advance(10 * time.Second)
	// big: 20s busy over 4 workers x 10s = 0.5; small: 1s over 1x10s = 0.1.
	big.ObserveFill(100, 20*time.Second)
	small.ObserveFill(10, time.Second)
	eff, ok := r.Efficiency()
	if !ok {
		t.Fatal("no live signal with two active studies")
	}
	// Aggregate is (20+1)/(40+10) = 0.42, not the 0.3 mean of ratios.
	if want := 21.0 / 50.0; math.Abs(eff-want) > 1e-9 {
		t.Fatalf("aggregate efficiency %.4f, want %.4f", eff, want)
	}

	// Advance so both get a known rate, then MinETA picks the smaller.
	big.Snapshot()
	small.Snapshot()
	clk.advance(time.Second)
	big.ObserveFill(1, 0)
	small.ObserveFill(1, 0)
	big.Snapshot()
	small.Snapshot()
	if eta, ok := r.MinETA(); !ok || eta <= 0 {
		t.Fatalf("MinETA = %v, %v; want a positive ETA", eta, ok)
	}

	r.Finish(small)
	if got := r.ActiveCount(); got != 1 {
		t.Fatalf("ActiveCount = %d after finishing one of two", got)
	}
	if _, ok := r.Get("small"); !ok {
		t.Fatal("finished tracker fell out of the completed ring immediately")
	}
	r.Finish(big)
	tot := r.Totals()
	if tot.StudiesStarted != 2 || tot.StudiesFinished != 2 || tot.ActiveStudies != 0 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.Blocks != 4 || tot.Samples != 112 {
		t.Fatalf("blocks/samples = %d/%d, want 4/112", tot.Blocks, tot.Samples)
	}
	if want := 21.0; math.Abs(tot.BusySeconds-want) > 1e-9 {
		t.Fatalf("busy seconds %.3f, want %.3f", tot.BusySeconds, want)
	}

	// The completed ring is bounded: old entries fall out.
	for i := 0; i < completedKeep+5; i++ {
		tr := NewWithClock(StudyInfo{ID: string(rune('A'+i%26)) + string(rune('a'+i/26)), Workers: 1}, clk.now)
		r.Register(tr)
		r.Finish(tr)
	}
	if _, ok := r.Get("big"); ok {
		t.Fatal("oldest completed tracker survived past the ring bound")
	}
}

// TestHistogram pins cumulative bucket semantics and the sum.
func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, 0.05} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	want := []int64{1, 3, 4, 5}
	for i, c := range snap.Cumulative {
		if c != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, c, want[i], snap.Cumulative)
		}
	}
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if math.Abs(snap.Sum-5.605) > 1e-9 {
		t.Fatalf("sum = %v, want 5.605", snap.Sum)
	}
	// Boundary value lands in its own bucket (le is inclusive).
	h2 := NewHistogram([]float64{1})
	h2.Observe(1)
	if got := h2.Snapshot().Cumulative[0]; got != 1 {
		t.Fatalf("observation at the bound fell into the +Inf bucket (%d)", got)
	}
}

// TestPromWriter pins the exposition text for each family shape.
func TestPromWriter(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("c_total", "A counter.", 3)
	p.Gauge("g", "A gauge.", 0.5, "k", `v"quoted\`)
	h := NewHistogram([]float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(2)
	p.HistogramVec("lat_seconds", "Latency.")
	p.HistogramSample("lat_seconds", h.Snapshot(), "path", "/x")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# HELP c_total A counter.\n# TYPE c_total counter\nc_total 3\n",
		"# TYPE g gauge\n" + `g{k="v\"quoted\\"} 0.5` + "\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{path="/x",le="0.1"} 1`,
		`lat_seconds_bucket{path="/x",le="1"} 1`,
		`lat_seconds_bucket{path="/x",le="+Inf"} 2`,
		`lat_seconds_sum{path="/x"} 2.05`,
		`lat_seconds_count{path="/x"} 2`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("exposition missing %q:\n%s", want, got)
		}
	}
}
