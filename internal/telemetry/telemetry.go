// Package telemetry tracks application live performance *during*
// execution — the TALP-module shape applied to earlybird studies. A
// Tracker follows one in-flight study (blocks and samples produced,
// useful fill time, DLB lend events) and derives live figures from the
// raw counters on demand: fill rate (time-decayed EWMA), ETA, and
// current parallel efficiency (useful-fill-time / workers x wall-time).
// A Registry aggregates the server's trackers for the /v1/progress
// stream, the /metrics endpoint and the adaptive admission watermark.
//
// The feed side is deliberately minimal: a Tracker only ever receives
// counts and durations (cluster.ProgressSink), never sample values or
// slices, so attaching one to a study is provably free of result-path
// side effects — there is no API through which it could perturb the
// data plane. The no-perturbation test in internal/cluster pins the
// dataset fingerprints with and without an attached tracker.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ewmaTau is the time constant of the fill-rate EWMA: an interval dt
// contributes with weight 1-exp(-dt/tau), so on a constant-rate fill the
// estimate converges to the true rate with ~2s memory, while a stall or
// a DLB reallocation shows up within a couple of snapshots.
const ewmaTau = 2 * time.Second

// StudyInfo identifies the study a Tracker follows: its progress ID,
// application name, geometry and the worker count its parallel
// efficiency is measured against.
type StudyInfo struct {
	// ID is the study's progress identity (the serve layer derives it
	// from the resolved spec, so concurrent identical requests share one
	// tracker).
	ID string
	// App is the application model's name.
	App string
	// Trials, Ranks, Iterations, Threads are the study geometry.
	Trials, Ranks, Iterations, Threads int
	// Workers is the fill concurrency the efficiency denominator uses:
	// efficiency = busy / (Workers x wall). <= 0 means 1.
	Workers int
}

// Tracker follows one study's live progress. The feed methods
// (ObserveFill, ObserveLend) are called from concurrent fill workers and
// touch only atomics; Snapshot may be called at any rate from any
// goroutine. Create with New (or NewWithClock for tests).
type Tracker struct {
	info StudyInfo
	now  func() time.Time

	start time.Time

	blocks  atomic.Int64
	samples atomic.Int64
	busyNs  atomic.Int64
	lends   atomic.Int64
	done    atomic.Bool

	// mu guards the EWMA state and the finish time; both are
	// snapshot-side only, never touched by the fill workers.
	mu         sync.Mutex
	ewmaRate   float64 // blocks per second
	rateKnown  bool
	lastBlocks int64
	lastTime   time.Time
	finish     time.Time
}

// New returns a tracker started now.
func New(info StudyInfo) *Tracker { return NewWithClock(info, time.Now) }

// NewWithClock is New with an injectable clock, so estimator tests can
// drive deterministic schedules.
func NewWithClock(info StudyInfo, now func() time.Time) *Tracker {
	if info.Workers <= 0 {
		info.Workers = 1
	}
	t := &Tracker{info: info, now: now}
	t.start = now()
	t.lastTime = t.start
	return t
}

// ID returns the tracker's progress identity.
func (t *Tracker) ID() string { return t.info.ID }

// Info returns the study identity the tracker was created with.
func (t *Tracker) Info() StudyInfo { return t.info }

// ObserveFill implements cluster.ProgressSink: one produced sample block
// of n samples that took busy of one worker's time.
func (t *Tracker) ObserveFill(n int, busy time.Duration) {
	t.blocks.Add(1)
	t.samples.Add(int64(n))
	t.busyNs.Add(int64(busy))
}

// ObserveLend implements cluster.ProgressSink: a DLB iteration boundary
// at which n ranks ran on a lent (non-base) thread allocation.
func (t *Tracker) ObserveLend(n int) { t.lends.Add(int64(n)) }

// Finish marks the study complete, freezing the elapsed clock.
func (t *Tracker) Finish() {
	t.mu.Lock()
	if t.finish.IsZero() {
		t.finish = t.now()
	}
	t.mu.Unlock()
	t.done.Store(true)
}

// Done reports whether Finish has been called.
func (t *Tracker) Done() bool { return t.done.Load() }

// totalBlocks returns the study's full block count.
func (t *Tracker) totalBlocks() int64 {
	return int64(t.info.Trials) * int64(t.info.Ranks) * int64(t.info.Iterations)
}

// Progress is one live snapshot of a study — a /v1/progress NDJSON line.
type Progress struct {
	ID  string `json:"id"`
	App string `json:"app"`
	// Done reports the study finished; the snapshot is then final.
	Done bool `json:"done"`
	// TrialsDone is the completed trials-worth of blocks
	// (BlocksDone / blocks-per-trial): monotone in fill progress even
	// though stripe-parallel workers finish blocks out of trial order.
	TrialsDone  int   `json:"trials_done"`
	TrialsTotal int   `json:"trials_total"`
	BlocksDone  int64 `json:"blocks_done"`
	BlocksTotal int64 `json:"blocks_total"`
	Samples     int64 `json:"samples"`
	// ElapsedSec is wall time since the tracker started (frozen at
	// Finish).
	ElapsedSec float64 `json:"elapsed_sec"`
	// RateBlocksPerSec is the EWMA fill rate; 0 until the first
	// inter-snapshot interval has elapsed.
	RateBlocksPerSec float64 `json:"rate_blocks_per_sec"`
	// ETASec estimates remaining wall time from the EWMA rate; always
	// >= 0, and 0 while the rate is still unknown or the study is done.
	ETASec float64 `json:"eta_sec"`
	// Efficiency is the current parallel efficiency:
	// useful-fill-time / (workers x wall-time), clamped to [0, 1].
	Efficiency float64 `json:"efficiency"`
	// LendEvents counts DLB iteration boundaries observed on a lent
	// allocation (0 under the static policy).
	LendEvents int64 `json:"lend_events"`
}

// Snapshot derives the current Progress and advances the rate EWMA.
func (t *Tracker) Snapshot() Progress {
	blocks := t.blocks.Load()
	busy := time.Duration(t.busyNs.Load())
	total := t.totalBlocks()

	t.mu.Lock()
	now := t.now()
	end := now
	if !t.finish.IsZero() {
		end = t.finish
	}
	if dt := now.Sub(t.lastTime); dt > 0 {
		inst := float64(blocks-t.lastBlocks) / dt.Seconds()
		if !t.rateKnown {
			t.ewmaRate = inst
			t.rateKnown = true
		} else {
			w := 1 - math.Exp(-dt.Seconds()/ewmaTau.Seconds())
			t.ewmaRate += w * (inst - t.ewmaRate)
		}
		t.lastBlocks = blocks
		t.lastTime = now
	}
	rate := t.ewmaRate
	t.mu.Unlock()

	elapsed := end.Sub(t.start)
	p := Progress{
		ID:               t.info.ID,
		App:              t.info.App,
		Done:             t.done.Load(),
		TrialsTotal:      t.info.Trials,
		BlocksDone:       blocks,
		BlocksTotal:      total,
		Samples:          t.samples.Load(),
		ElapsedSec:       elapsed.Seconds(),
		RateBlocksPerSec: rate,
		LendEvents:       t.lends.Load(),
	}
	if perTrial := int64(t.info.Ranks) * int64(t.info.Iterations); perTrial > 0 {
		p.TrialsDone = int(blocks / perTrial)
	}
	if remaining := total - blocks; remaining > 0 && rate > 0 && !p.Done {
		p.ETASec = float64(remaining) / rate
	}
	if elapsed > 0 {
		p.Efficiency = clamp01(busy.Seconds() / (float64(t.info.Workers) * elapsed.Seconds()))
	}
	return p
}

// busyAndWall returns the raw efficiency numerator and denominator —
// the registry aggregates these across trackers rather than averaging
// per-study ratios, so a large study weighs more than a tiny one.
func (t *Tracker) busyAndWall() (busy, wall time.Duration) {
	t.mu.Lock()
	end := t.now()
	if !t.finish.IsZero() {
		end = t.finish
	}
	t.mu.Unlock()
	wall = end.Sub(t.start) * time.Duration(t.info.Workers)
	return time.Duration(t.busyNs.Load()), wall
}

func clamp01(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
