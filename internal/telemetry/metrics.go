// Prometheus text-format primitives: an atomic fixed-bucket histogram
// and a renderer for the exposition format (version 0.0.4), so the
// /metrics endpoint needs no client library dependency.

package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// DefaultLatencyBuckets spans 1 ms to ~16 s in powers of four — wide
// enough for both cache-hit microsecond answers (first bucket) and
// HugeGeometry streaming fills.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384}
}

// Histogram is a cumulative fixed-bucket histogram with atomic
// observation, sufficient for the Prometheus histogram type. Create
// with NewHistogram; Observe is safe for concurrent use.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf follows
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (an +Inf bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough view for rendering: bucket
// counts are cumulative, as the exposition format requires.
type HistogramSnapshot struct {
	Bounds     []float64 // upper bounds, ascending; +Inf implied after
	Cumulative []int64   // len(Bounds)+1, last is the +Inf (= Count) bucket
	Sum        float64
	Count      int64
}

// Snapshot folds the per-bucket counts into cumulative form.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.counts)),
		Sum:        math.Float64frombits(h.sumBits.Load()),
	}
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		snap.Cumulative[i] = run
	}
	// Count from the buckets themselves so the rendered +Inf bucket
	// always equals the rendered _count, even mid-observation.
	snap.Count = run
	return snap
}

// PromWriter renders Prometheus exposition text. Each metric family is
// written once via Counter/Gauge/Histogram; label pairs are passed as
// alternating name, value strings.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// header emits the HELP/TYPE preamble.
func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// labelString renders {k="v",...} from alternating pairs; empty for no
// labels.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", labels[i], escapeLabel(labels[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter writes one counter family with a single sample.
func (p *PromWriter) Counter(name, help string, v float64, labels ...string) {
	p.header(name, help, "counter")
	p.Sample(name, v, labels...)
}

// Gauge writes one gauge family with a single sample.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	p.header(name, help, "gauge")
	p.Sample(name, v, labels...)
}

// CounterVec writes one counter family header; follow with Sample calls
// for each label combination.
func (p *PromWriter) CounterVec(name, help string) { p.header(name, help, "counter") }

// GaugeVec writes one gauge family header; follow with Sample calls.
func (p *PromWriter) GaugeVec(name, help string) { p.header(name, help, "gauge") }

// Sample writes one sample line of an already-headed family.
func (p *PromWriter) Sample(name string, v float64, labels ...string) {
	p.printf("%s%s %s\n", name, labelString(labels), formatValue(v))
}

// HistogramVec writes one histogram family header; follow with
// HistogramSample calls for each label combination.
func (p *PromWriter) HistogramVec(name, help string) { p.header(name, help, "histogram") }

// HistogramSample writes one labelled histogram: cumulative buckets,
// sum and count.
func (p *PromWriter) HistogramSample(name string, snap HistogramSnapshot, labels ...string) {
	for i, bound := range snap.Bounds {
		p.printf("%s_bucket%s %d\n", name,
			labelString(append(append([]string{}, labels...), "le", formatValue(bound))),
			snap.Cumulative[i])
	}
	p.printf("%s_bucket%s %d\n", name,
		labelString(append(append([]string{}, labels...), "le", "+Inf")),
		snap.Cumulative[len(snap.Cumulative)-1])
	p.printf("%s_sum%s %s\n", name, labelString(labels), formatValue(snap.Sum))
	p.printf("%s_count%s %d\n", name, labelString(labels), snap.Count)
}
