package rng

// Fast scalar and batch drawing paths.
//
// The embedded *rand.Rand reaches its PCG generator through the
// rand.Source interface, so every draw pays an interface call (and the
// ziggurat's table lookups cannot inline across it). The methods below
// shadow the embedded ones with versions that call the concrete
// (*rand.PCG).Uint64 directly — bit-identical sequences (see
// ziggurat.go and TestFastPathMatchesRand) at roughly half the per-draw
// cost — and the Fill* helpers amortize the method dispatch over a
// whole iteration block.
//
// Bit-identity contract: every Fill* helper consumes the underlying
// PCG stream in exactly the order, and combines draws with exactly the
// floating-point expression tree, of the scalar loop it replaces. The
// workload golden fingerprints (internal/cluster) and the element-wise
// batch-vs-scalar property tests pin this.

// Uint64 returns the next raw PCG output. Shadows (*rand.Rand).Uint64
// with a devirtualized, bit-identical version.
func (s *Source) Uint64() uint64 { return s.pcg.Uint64() }

// Float64 returns a uniform draw in [0, 1). Shadows
// (*rand.Rand).Float64 with a devirtualized, bit-identical version.
func (s *Source) Float64() float64 { return float64pcg(s.pcg) }

// NormFloat64 returns a standard normal draw. Shadows
// (*rand.Rand).NormFloat64 with a devirtualized, bit-identical version.
func (s *Source) NormFloat64() float64 { return normFloat64pcg(s.pcg) }

// ExpFloat64 returns a unit-mean exponential draw. Shadows
// (*rand.Rand).ExpFloat64 with a devirtualized, bit-identical version.
func (s *Source) ExpFloat64() float64 { return expFloat64pcg(s.pcg) }

// Float64Batch fills out with len(out) consecutive Float64 draws.
func (s *Source) Float64Batch(out []float64) {
	p := s.pcg
	for i := range out {
		out[i] = float64pcg(p)
	}
}

// NormFloat64Batch fills out with len(out) consecutive NormFloat64
// draws.
func (s *Source) NormFloat64Batch(out []float64) {
	p := s.pcg
	for i := range out {
		out[i] = normFloat64pcg(p)
	}
}

// ExpFloat64Batch fills out with len(out) consecutive ExpFloat64 draws.
func (s *Source) ExpFloat64Batch(out []float64) {
	p := s.pcg
	for i := range out {
		out[i] = expFloat64pcg(p)
	}
}

// FillNormal sets out[i] = Normal(mu, sigma) for every element —
// element-wise identical to the scalar loop.
func (s *Source) FillNormal(out []float64, mu, sigma float64) {
	p := s.pcg
	for i := range out {
		out[i] = mu + sigma*normFloat64pcg(p)
	}
}

// FillUniform sets out[i] = Uniform(lo, hi) for every element.
func (s *Source) FillUniform(out []float64, lo, hi float64) {
	p := s.pcg
	w := hi - lo
	for i := range out {
		out[i] = lo + w*float64pcg(p)
	}
}

// AddUniform sets out[i] = base + Uniform(lo, hi) for every element —
// the MiniMD phase-one block shape.
func (s *Source) AddUniform(out []float64, base, lo, hi float64) {
	p := s.pcg
	w := hi - lo
	for i := range out {
		out[i] = base + (lo + w*float64pcg(p))
	}
}

// FillNormalMinusExp sets
//
//	out[i] = base - Exp(expMean) + Normal(mu, sigma)
//
// for every element — the MiniFE block shape (left-skewed early
// arrivals). Draw order per element: one exponential, then one normal.
func (s *Source) FillNormalMinusExp(out []float64, base, expMean, mu, sigma float64) {
	p := s.pcg
	for i := range out {
		e := expMean * expFloat64pcg(p)
		n := mu + sigma*normFloat64pcg(p)
		out[i] = base - e + n
	}
}

// FillNormalStragglers sets out[i] = base + Normal(mu, sigma), then with
// probability prob (checked only when prob > 0, consuming one uniform
// per element) adds Exp(expMean) — the MiniMD phase-two block shape.
func (s *Source) FillNormalStragglers(out []float64, base, mu, sigma, prob, expMean float64) {
	p := s.pcg
	for i := range out {
		v := base + (mu + sigma*normFloat64pcg(p))
		if prob > 0 && float64pcg(p) < prob {
			v += expMean * expFloat64pcg(p)
		}
		out[i] = v
	}
}

// FillNormalExpTail sets
//
//	out[i] = center + Normal(mu, sigma) + Exp(tailMean) - tailMean
//
// for every element — the MiniQMC block shape (mean-compensated
// exponential right tail). Draw order per element: one normal, then
// one exponential.
func (s *Source) FillNormalExpTail(out []float64, center, mu, sigma, tailMean float64) {
	p := s.pcg
	for i := range out {
		n := mu + sigma*normFloat64pcg(p)
		e := tailMean * expFloat64pcg(p)
		out[i] = center + n + e - tailMean
	}
}
