package rng

import (
	"math/rand/v2"
	"testing"
)

// TestFastPathMatchesRand pins that the devirtualized shadow methods
// (batch.go) produce bit-identical sequences to the embedded
// (*rand.Rand) methods they shadow, for every draw kind, including the
// ziggurat fallback branches (exercised by sheer draw count).
func TestFastPathMatchesRand(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		fast := New(seed)
		ref := rand.New(rand.NewPCG(seed, mix(seed, 0xda7a)))
		const draws = 200000
		for i := 0; i < draws; i++ {
			switch i % 4 {
			case 0:
				if got, want := fast.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 %v != rand %v", seed, i, got, want)
				}
			case 1:
				if got, want := fast.NormFloat64(), ref.NormFloat64(); got != want {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != rand %v", seed, i, got, want)
				}
			case 2:
				if got, want := fast.ExpFloat64(), ref.ExpFloat64(); got != want {
					t.Fatalf("seed %d draw %d: ExpFloat64 %v != rand %v", seed, i, got, want)
				}
			default:
				if got, want := fast.Uint64(), ref.Uint64(); got != want {
					t.Fatalf("seed %d draw %d: Uint64 %#x != rand %#x", seed, i, got, want)
				}
			}
		}
	}
}

// TestFastPathRawGolden pins absolute values so a stdlib algorithm
// change (or a vendoring mistake in ziggurat.go) cannot slide both
// sides of TestFastPathMatchesRand at once.
func TestFastPathRawGolden(t *testing.T) {
	s := New(9)
	wantF := []float64{0.8310065721382254, 0.9348056585043738, 0.08205413549805696}
	for i, want := range wantF {
		if got := s.Float64(); got != want {
			t.Fatalf("Float64 draw %d: got %v want %v", i, got, want)
		}
	}
	wantN := []float64{1.1710198740555033, 1.7250796547026936, -1.4782195856102276}
	for i, want := range wantN {
		if got := s.NormFloat64(); got != want {
			t.Fatalf("NormFloat64 draw %d: got %v want %v", i, got, want)
		}
	}
	wantE := []float64{1.7404683408835582, 0.5147139399564213, 0.5416088288938633}
	for i, want := range wantE {
		if got := s.ExpFloat64(); got != want {
			t.Fatalf("ExpFloat64 draw %d: got %v want %v", i, got, want)
		}
	}
	if got := s.Uint64(); got != 0x99ae715c040c9fcf {
		t.Fatalf("Uint64 draw 0: got %#x", got)
	}
	if got := s.Uint64(); got != 0x7b270985ee64c67c {
		t.Fatalf("Uint64 draw 1: got %#x", got)
	}
}

// TestBatchEqualsScalar is the batch-RNG property test: every batch
// primitive and fused fill must equal the scalar loop it replaces,
// element-wise and bit-exact, consuming the stream identically (checked
// by comparing a post-batch draw too).
func TestBatchEqualsScalar(t *testing.T) {
	const n = 257 // odd, > any unroll width
	type variant struct {
		name   string
		batch  func(s *Source, out []float64)
		scalar func(s *Source, out []float64)
	}
	variants := []variant{
		{
			"Float64Batch",
			func(s *Source, out []float64) { s.Float64Batch(out) },
			func(s *Source, out []float64) {
				for i := range out {
					out[i] = s.Float64()
				}
			},
		},
		{
			"NormFloat64Batch",
			func(s *Source, out []float64) { s.NormFloat64Batch(out) },
			func(s *Source, out []float64) {
				for i := range out {
					out[i] = s.NormFloat64()
				}
			},
		},
		{
			"ExpFloat64Batch",
			func(s *Source, out []float64) { s.ExpFloat64Batch(out) },
			func(s *Source, out []float64) {
				for i := range out {
					out[i] = s.ExpFloat64()
				}
			},
		},
		{
			"FillNormal",
			func(s *Source, out []float64) { s.FillNormal(out, 26.3e-3, 0.1e-3) },
			func(s *Source, out []float64) {
				for i := range out {
					out[i] = s.Normal(26.3e-3, 0.1e-3)
				}
			},
		},
		{
			"FillUniform",
			func(s *Source, out []float64) { s.FillUniform(out, -0.5, 2.25) },
			func(s *Source, out []float64) {
				for i := range out {
					out[i] = s.Uniform(-0.5, 2.25)
				}
			},
		},
		{
			"AddUniform",
			func(s *Source, out []float64) { s.AddUniform(out, 25.5e-3, -0.9e-3, 0.9e-3) },
			func(s *Source, out []float64) {
				for i := range out {
					out[i] = 25.5e-3 + s.Uniform(-0.9e-3, 0.9e-3)
				}
			},
		},
		{
			"FillNormalMinusExp",
			func(s *Source, out []float64) { s.FillNormalMinusExp(out, 26.3e-3, 0.15e-3, 0, 0.015e-3) },
			func(s *Source, out []float64) {
				for i := range out {
					out[i] = 26.3e-3 - s.Exp(0.15e-3) + s.Normal(0, 0.015e-3)
				}
			},
		},
		{
			"FillNormalStragglers",
			func(s *Source, out []float64) { s.FillNormalStragglers(out, 24.74e-3, 0, 0.1e-3, 0.35, 0.35e-3) },
			func(s *Source, out []float64) {
				for i := range out {
					out[i] = 24.74e-3 + s.Normal(0, 0.1e-3)
					if s.Bernoulli(0.35) {
						out[i] += s.Exp(0.35e-3)
					}
				}
			},
		},
		{
			"FillNormalStragglersZeroProb",
			func(s *Source, out []float64) { s.FillNormalStragglers(out, 24.74e-3, 0, 0.1e-3, 0, 0.35e-3) },
			func(s *Source, out []float64) {
				for i := range out {
					out[i] = 24.74e-3 + s.Normal(0, 0.1e-3)
				}
			},
		},
		{
			"FillNormalExpTail",
			func(s *Source, out []float64) { s.FillNormalExpTail(out, 60.0e-3, 0, 6.05e-3, 1.8e-3) },
			func(s *Source, out []float64) {
				for i := range out {
					out[i] = 60.0e-3 + s.Normal(0, 6.05e-3) + s.Exp(1.8e-3) - 1.8e-3
				}
			},
		},
	}
	for _, v := range variants {
		for seed := uint64(1); seed <= 20; seed++ {
			sb, ss := New(seed), New(seed)
			got, want := make([]float64, n), make([]float64, n)
			v.batch(sb, got)
			v.scalar(ss, want)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s seed %d elem %d: batch %v != scalar %v", v.name, seed, i, got[i], want[i])
				}
			}
			// The stream positions must agree afterwards too.
			if g, w := sb.Uint64(), ss.Uint64(); g != w {
				t.Fatalf("%s seed %d: stream diverged after batch (%#x != %#x)", v.name, seed, g, w)
			}
		}
	}
}

func BenchmarkScalarNormal(b *testing.B) {
	s := New(1)
	var sink float64
	for b.Loop() {
		sink += s.Normal(0, 1)
	}
	_ = sink
}

func BenchmarkFillNormal(b *testing.B) {
	s := New(1)
	out := make([]float64, 48)
	b.ResetTimer()
	for b.Loop() {
		s.FillNormal(out, 0, 1)
	}
}
