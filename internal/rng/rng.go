// Package rng provides deterministic, hierarchically splittable random
// number streams for the simulation substrate.
//
// Reproducing the paper's study requires that every (trial, rank, iteration,
// thread) tuple observes an independent but fully reproducible random stream,
// regardless of the order in which the simulation visits the tuples and of
// how many OS threads execute it. Streams are derived by hashing a path of
// integer components into a seed with SplitMix64 and feeding the result into
// a PCG generator from math/rand/v2.
package rng

import (
	"math/rand/v2"
)

// splitMix64 advances the SplitMix64 state and returns the next output.
// SplitMix64 is the seed-expansion function recommended by the xoshiro
// authors; it is bijective and passes BigCrush, which makes it a good
// path-component mixer.
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// mix folds a component into a seed so that distinct paths yield
// decorrelated seeds.
func mix(seed, component uint64) uint64 {
	_, a := splitMix64(seed ^ (component + 0x9e3779b97f4a7c15))
	_, b := splitMix64(a)
	return b
}

// Source is a deterministic random stream. It embeds *rand.Rand so all
// math/rand/v2 drawing methods are available, and remembers its seed path
// so child streams can be derived.
type Source struct {
	*rand.Rand
	pcg  *rand.PCG
	seed uint64
}

// New returns the root stream for a study with the given seed.
func New(seed uint64) *Source {
	pcg := rand.NewPCG(seed, mix(seed, 0xda7a))
	return &Source{Rand: rand.New(pcg), pcg: pcg, seed: seed}
}

// Child derives an independent stream identified by the given path
// components (for example trial, rank, iteration, thread). Deriving the
// same path twice yields an identical stream; sibling paths yield
// decorrelated streams.
func (s *Source) Child(path ...uint64) *Source {
	seed := s.childSeed(path)
	pcg := rand.NewPCG(seed, mix(seed, 0xc41d))
	return &Source{Rand: rand.New(pcg), pcg: pcg, seed: seed}
}

// ChildInto re-seeds dst in place to the exact stream Child(path...)
// would return — same values, no allocation. dst must come from New or
// Child (or a prior ChildInto target) and must not be aliased by a still
// live stream; the hot fill paths use this with pooled scratch sources
// to derive the millions of per-iteration streams of a large study
// without a generator allocation per derivation.
func (s *Source) ChildInto(dst *Source, path ...uint64) *Source {
	seed := s.childSeed(path)
	dst.pcg.Seed(seed, mix(seed, 0xc41d))
	dst.seed = seed
	return dst
}

// childSeed folds path into this stream's seed.
func (s *Source) childSeed(path []uint64) uint64 {
	seed := s.seed
	for _, p := range path {
		seed = mix(seed, p)
	}
	return seed
}
