package rng

import "testing"

func BenchmarkChildDerivation(b *testing.B) {
	root := New(1)
	for i := 0; i < b.N; i++ {
		root.Child(uint64(i), uint64(i%8), uint64(i%200))
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Normal(26.3e-3, 0.18e-3)
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Exp(2.3e-3)
	}
}

func BenchmarkPoisson(b *testing.B) {
	s := New(1)
	b.Run("small-lambda", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Poisson(3)
		}
	})
	b.Run("large-lambda", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Poisson(250)
		}
	})
}
