package rng

import (
	"math"
	"testing"
)

// The golden sequences below were captured from the pre-PR-7
// implementations of Pareto (u == 0 retry spin) and TruncNormal
// (1024-iteration rejection cap). The edge-handling rewrite must keep
// every non-pathological draw bit-identical: Pareto consumes exactly
// the same uniforms for u != 0, and TruncNormal's rejection path (any
// interval holding >= 1/16 probability mass) consumes exactly the same
// normals.

func TestParetoSequencePinned(t *testing.T) {
	want := map[uint64][]float64{
		1: {3.1544481096905477, 4.4415543805681965, 3.266795617757458, 4.408900261183727, 5.329570212496986, 3.381925503370268},
		2: {3.1637367211583984, 5.417616780896, 3.3064385004122285, 3.4751746739577647, 3.2238837533536384, 3.315484540189978},
		3: {4.789150916533719, 3.8869042068860016, 4.780986614536274, 4.259895170730028, 6.450882136139227, 3.7101707381831113},
	}
	for seed, seq := range want {
		s := New(seed)
		for i, w := range seq {
			if got := s.Pareto(3, 2.5); got != w {
				t.Fatalf("seed %d draw %d: got %v want %v", seed, i, got, w)
			}
		}
	}
}

// TestParetoZeroUniform drives the u == 0 clamp directly through the
// shared transform: the draw must be finite and huge, not +Inf and not
// a spin.
func TestParetoZeroUniform(t *testing.T) {
	// xm / (2^-53)^(1/alpha) with xm=3, alpha=2.5.
	want := 3 / math.Pow(0x1p-53, 1/2.5)
	if math.IsInf(want, 0) || want < 3 {
		t.Fatalf("clamp transform broken: %v", want)
	}
}

func TestTruncNormalSequencePinned(t *testing.T) {
	// Wide interval [7, 14] around N(10, 2): 91% acceptance mass, so
	// the rejection path runs and must replay the historical draws.
	want := map[uint64][]float64{
		1: {11.003560369312181, 10.617071856796406, 7.679941708636731, 7.723257255176527, 9.494492859573889, 13.094163854377875},
		2: {7.563236373129522, 13.171186445856295, 7.253877661122765, 10.150357052889913, 13.913102393239264, 11.259589850727357},
		3: {12.470795387497429, 8.793123100762182, 8.788469184419618, 10.712248613483535, 8.96162341407799, 10.397637435903011},
	}
	for seed, seq := range want {
		s := New(seed)
		for i, w := range seq {
			if got := s.TruncNormal(10, 2, 7, 14); got != w {
				t.Fatalf("seed %d draw %d: got %v want %v", seed, i, got, w)
			}
		}
	}
}

// TestTruncNormalThinInterval exercises the inverse-transform path that
// replaced the 1024-iteration rejection cap. The historical
// implementation returned exactly 2.5 (the clamp) for seed 7's second
// draw after exhausting the cap; the direct transform must instead land
// strictly inside the interval for every draw, deterministically.
func TestTruncNormalThinInterval(t *testing.T) {
	s := New(7)
	var got []float64
	for i := 0; i < 4; i++ {
		x := s.TruncNormal(0, 1, 2.5, 2.6)
		if x < 2.5 || x > 2.6 {
			t.Fatalf("draw %d out of [2.5, 2.6]: %v", i, x)
		}
		got = append(got, x)
	}
	// Deterministic: a fresh stream replays the same values.
	s2 := New(7)
	for i, w := range got {
		if x := s2.TruncNormal(0, 1, 2.5, 2.6); x != w {
			t.Fatalf("draw %d not deterministic: %v vs %v", i, x, w)
		}
	}
	// One uniform per draw: after 4 draws the stream position is
	// exactly 4 uniforms in.
	ref := New(7)
	for i := 0; i < 4; i++ {
		ref.Float64()
	}
	if g, w := s2.Uint64(), ref.Uint64(); g != w {
		t.Fatalf("thin-interval draw consumed more than one uniform (%#x != %#x)", g, w)
	}
}

// TestTruncNormalThinIntervalDistribution checks the inverse transform
// against the conditional CDF: the median of the draws must sit near
// the interval's conditional median, not at the boundary clamp.
func TestTruncNormalThinIntervalDistribution(t *testing.T) {
	s := New(42)
	const n = 4096
	lo, hi := 2.5, 2.6
	below := 0
	// Conditional median: Phi^-1((Phi(lo)+Phi(hi))/2).
	// Compute via the same transform the implementation uses, at u=0.5.
	mid := s.TruncNormal(0, 1, lo, hi) // warm draw, discarded value-wise
	_ = mid
	for i := 0; i < n; i++ {
		x := s.TruncNormal(0, 1, lo, hi)
		if x < lo || x > hi {
			t.Fatalf("draw out of range: %v", x)
		}
		if x == lo || x == hi {
			t.Fatalf("boundary clamp fired on a regular draw: %v", x)
		}
		if x < 2.548 { // conditional median is ~2.548 for N(0,1) on [2.5,2.6]
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("thin-interval draws misdistributed: %v below conditional median", frac)
	}
}

func TestLogNormalSequencePinned(t *testing.T) {
	want := []float64{0.7807093858319276, 0.6193515497336621, 0.6436014943833875, 0.5116965351127137}
	s := New(5)
	for i, w := range want {
		if got := s.LogNormal(0, 0.5); got != w {
			t.Fatalf("draw %d: got %v want %v", i, got, w)
		}
	}
}
