package rng

import "math"

// Poisson draws from a Poisson distribution with the given mean lambda.
// Knuth's multiplication method is used for small lambda; for large lambda
// the normal approximation with continuity correction keeps the draw O(1).
func (s *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	k := int(math.Round(s.Normal(lambda, math.Sqrt(lambda))))
	if k < 0 {
		return 0
	}
	return k
}
