package rng

import "math"

// Normal draws from N(mu, sigma). sigma must be non-negative.
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.NormFloat64()
}

// TruncNormal draws from N(mu, sigma) truncated to [lo, hi] by rejection.
// The interval must have positive probability mass; for the workload models
// in this repository the interval always covers the mean, so rejection
// terminates quickly.
func (s *Source) TruncNormal(mu, sigma, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 1024; i++ {
		x := s.Normal(mu, sigma)
		if x >= lo && x <= hi {
			return x
		}
	}
	// Pathological parameterisation: clamp to the nearest bound so the
	// simulation remains total rather than spinning forever.
	x := s.Normal(mu, sigma)
	return math.Min(math.Max(x, lo), hi)
}

// Exp draws from an exponential distribution with the given mean
// (scale parameter, not rate).
func (s *Source) Exp(mean float64) float64 {
	return mean * s.ExpFloat64()
}

// LogNormal draws X such that ln X ~ N(mu, sigma).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto draws from a Pareto distribution with the given minimum xm and
// shape alpha. Heavy-tailed; used for high-magnitude laggard models.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Uniform draws from [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}
