package rng

import (
	"math"

	"earlybird/internal/stats"
)

// Normal draws from N(mu, sigma). sigma must be non-negative.
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.NormFloat64()
}

// truncNormalRejectionMass is the minimum acceptance probability for
// which TruncNormal uses rejection sampling. Above it, rejection needs
// at most 1/mass = 16 expected draws and terminates almost surely (no
// iteration cap required); below it, a single-draw inverse transform
// replaces what used to be a 1024-iteration spin ending in a clamp.
const truncNormalRejectionMass = 1.0 / 16

// TruncNormal draws from N(mu, sigma) truncated to [lo, hi].
//
// When the interval holds at least truncNormalRejectionMass of the
// normal's probability mass — every workload parameterisation in this
// repository does — it uses uncapped rejection sampling, consuming the
// underlying stream exactly as the historical implementation did (the
// sequence-pinning tests in dist_test.go hold it to that). Thin
// intervals instead draw one uniform and invert the truncated CDF
// directly, replacing the former bounded-rejection spin whose cap
// produced a hard clamp to the interval boundary.
func (s *Source) TruncNormal(mu, sigma, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	if !(sigma > 0) {
		// Degenerate spread: the distribution is a point mass at mu.
		// Consume one normal draw like the historical first rejection
		// attempt, then clamp.
		x := s.Normal(mu, sigma)
		return math.Min(math.Max(x, lo), hi)
	}
	plo := stats.NormalCDF((lo - mu) / sigma)
	phi := stats.NormalCDF((hi - mu) / sigma)
	if phi-plo >= truncNormalRejectionMass {
		for {
			x := s.Normal(mu, sigma)
			if x >= lo && x <= hi {
				return x
			}
		}
	}
	// Thin interval: direct inverse transform through the truncated
	// CDF. One uniform draw, exact distribution, no spin; the clamp
	// only guards quantile round-off at the interval edges.
	u := s.Float64()
	x := mu + sigma*stats.NormalQuantile(plo+u*(phi-plo))
	return math.Min(math.Max(x, lo), hi)
}

// Exp draws from an exponential distribution with the given mean
// (scale parameter, not rate).
func (s *Source) Exp(mean float64) float64 {
	return mean * s.ExpFloat64()
}

// LogNormal draws X such that ln X ~ N(mu, sigma).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto draws from a Pareto distribution with the given minimum xm and
// shape alpha. Heavy-tailed; used for high-magnitude laggard models.
//
// Exactly one uniform is consumed per draw: the measure-zero u == 0
// case (one draw in 2^53) is clamped to the smallest positive Float64
// value instead of retrying, so the draw count per call is fixed and
// the sequence is unchanged for every u != 0.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	if u == 0 {
		u = 0x1p-53
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Uniform draws from [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}
