package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChildDeterminism(t *testing.T) {
	a := New(42).Child(1, 2, 3)
	b := New(42).Child(1, 2, 3)
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: %v != %v", i, x, y)
		}
	}
}

func TestChildIndependenceAcrossSiblings(t *testing.T) {
	a := New(42).Child(7, 0)
	b := New(42).Child(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams collided on %d of 1000 draws", same)
	}
}

func TestChildPathOrderMatters(t *testing.T) {
	a := New(9).Child(1, 2)
	b := New(9).Child(2, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("path order should produce different streams")
	}
}

func TestNestedChildEquivalence(t *testing.T) {
	// Child(a).Child(b) must equal Child(a, b): paths compose.
	a := New(5).Child(3).Child(4)
	b := New(5).Child(3, 4)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("nested derivation diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("distinct seeds produced the same first draw")
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for SplitMix64 seeded with 0 (from the public
	// domain reference implementation by Sebastiano Vigna).
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	state := uint64(0)
	for i, w := range want {
		var out uint64
		state, out = splitMix64(state)
		if out != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, out, w)
		}
	}
}

func moments(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return
}

func TestNormalMoments(t *testing.T) {
	s := New(7)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = s.Normal(10, 3)
	}
	mean, v := moments(xs)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(v)-3) > 0.05 {
		t.Errorf("sd = %v, want ~3", math.Sqrt(v))
	}
}

func TestExpMoments(t *testing.T) {
	s := New(8)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = s.Exp(2.5)
	}
	mean, _ := moments(xs)
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("mean = %v, want ~2.5", mean)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		x := s.TruncNormal(0, 1, -0.5, 2)
		if x < -0.5 || x > 2 {
			t.Fatalf("draw %v outside [-0.5, 2]", x)
		}
	}
}

func TestTruncNormalSwappedBounds(t *testing.T) {
	s := New(10)
	x := s.TruncNormal(0, 1, 2, -0.5) // reversed bounds are normalised
	if x < -0.5 || x > 2 {
		t.Fatalf("draw %v outside [-0.5, 2]", x)
	}
}

func TestParetoMinimum(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		if x := s.Pareto(3, 2); x < 3 {
			t.Fatalf("pareto draw %v below xm=3", x)
		}
	}
}

func TestParetoMeanFiniteShape(t *testing.T) {
	// For alpha > 1, E[X] = alpha*xm/(alpha-1). alpha=3, xm=1 -> 1.5.
	s := New(12)
	sum := 0.0
	n := 500000
	for i := 0; i < n; i++ {
		sum += s.Pareto(1, 3)
	}
	if mean := sum / float64(n); math.Abs(mean-1.5) > 0.03 {
		t.Errorf("pareto mean = %v, want ~1.5", mean)
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(13)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.224) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if math.Abs(rate-0.224) > 0.01 {
		t.Errorf("bernoulli rate = %v, want ~0.224", rate)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(14)
	for i := 0; i < 10000; i++ {
		x := s.Uniform(5, 6)
		if x < 5 || x >= 6 {
			t.Fatalf("uniform draw %v outside [5,6)", x)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(15)
	for i := 0; i < 10000; i++ {
		if x := s.LogNormal(0, 1); x <= 0 {
			t.Fatalf("lognormal draw %v not positive", x)
		}
	}
}

func TestChildDeterminismProperty(t *testing.T) {
	f := func(seed uint64, path []uint64) bool {
		if len(path) > 16 {
			path = path[:16]
		}
		a := New(seed).Child(path...)
		b := New(seed).Child(path...)
		return a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixSensitivityProperty(t *testing.T) {
	// Changing any single path component changes the first draw.
	f := func(seed uint64, a, b uint64) bool {
		if a == b {
			return true
		}
		return New(seed).Child(a).Uint64() != New(seed).Child(b).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestChildIntoMatchesChild pins ChildInto's load-bearing contract: the
// re-seeded stream must be draw-for-draw identical to the freshly
// allocated Child stream — every workload model's reproducibility rides
// on this equivalence.
func TestChildIntoMatchesChild(t *testing.T) {
	root := New(42)
	scratch := New(0)
	paths := [][]uint64{
		{},
		{0},
		{1 << 20, 3, 7},
		{2 << 20, 0, 0, 199},
		{4 << 20, 9, 7, 5},
	}
	for _, path := range paths {
		fresh := root.Child(path...)
		reseeded := root.ChildInto(scratch, path...)
		if reseeded != scratch {
			t.Fatal("ChildInto did not return its destination")
		}
		for i := 0; i < 64; i++ {
			if a, b := fresh.Uint64(), reseeded.Uint64(); a != b {
				t.Fatalf("path %v draw %d: Child %x vs ChildInto %x", path, i, a, b)
			}
		}
		// Interleave distribution draws too: NormFloat64/ExpFloat64 must
		// consume the source identically.
		fresh, reseeded = root.Child(path...), root.ChildInto(scratch, path...)
		for i := 0; i < 16; i++ {
			if a, b := fresh.NormFloat64(), reseeded.NormFloat64(); a != b {
				t.Fatalf("path %v normal draw %d: %v vs %v", path, i, a, b)
			}
			if a, b := fresh.ExpFloat64(), reseeded.ExpFloat64(); a != b {
				t.Fatalf("path %v exp draw %d: %v vs %v", path, i, a, b)
			}
		}
		// Re-deriving the same path after use restarts the stream.
		first := root.ChildInto(scratch, path...).Uint64()
		again := root.ChildInto(scratch, path...).Uint64()
		if first != again {
			t.Fatalf("path %v: re-derivation did not restart the stream", path)
		}
	}

	// Children of a re-seeded stream must match children of the original.
	a := root.Child(5, 6).Child(7).Uint64()
	b := root.ChildInto(scratch, 5, 6).Child(7).Uint64()
	if a != b {
		t.Fatalf("grandchild mismatch: %x vs %x", a, b)
	}
}
