package cluster

import (
	"sync"
	"testing"

	"earlybird/internal/dlb"
	"earlybird/internal/workload"
)

// preRefactorFingerprints are the paper-geometry (DefaultConfig) and
// quick-geometry (SmallConfig) dataset fingerprints captured on the fill
// loop as it existed before the DLB refactor. dlb.Static must keep
// reproducing these bits forever: the static policy IS the pre-DLB
// runtime, and every cached dataset, golden file and federated shard
// merge in the repo assumes so.
var preRefactorFingerprints = map[string]map[string]uint64{
	"minife":  {"paper": 0x800a9ce87bb6229d, "quick": 0xfc481341e00ecfd4},
	"minimd":  {"paper": 0xebef027d460e0046, "quick": 0x55b2b0827d1eb4b0},
	"miniqmc": {"paper": 0x0e3f33b0dcde8fc7, "quick": 0x4f36a53f7ae53b52},
}

// TestDLBStaticGoldenFingerprint: the static policy (zero spec and
// explicit "static" alike) is bit-identical to the pre-refactor fill at
// the paper's geometry.
func TestDLBStaticGoldenFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("paper geometry fill in -short mode")
	}
	for app, want := range preRefactorFingerprints {
		model, err := workload.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		for name, cfg := range map[string]Config{"paper": DefaultConfig(), "quick": SmallConfig()} {
			for _, policy := range []dlb.Spec{{}, {Policy: dlb.PolicyStatic}} {
				col, err := RunColumnarDLB(model, cfg, policy, 0)
				if err != nil {
					t.Fatal(err)
				}
				if got := col.Fingerprint(); got != want[name] {
					t.Errorf("%s %s policy %q: fingerprint %#016x, want pre-refactor %#016x",
						app, name, policy.String(), got, want[name])
				}
			}
		}
	}
}

// TestDLBPolicyChangesBits: a rebalancing policy must actually produce
// different sample data (otherwise it could share cache entries), and
// each policy must be deterministic across runs and worker counts.
func TestDLBPolicyChangesBits(t *testing.T) {
	model := workload.DefaultMiniFE()
	cfg := SmallConfig()
	static, err := RunColumnarDLB(model, cfg, dlb.Spec{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []dlb.Spec{{Policy: dlb.PolicyLeWI}, {Policy: dlb.PolicyDROM}} {
		a, err := RunColumnarDLB(model, cfg, policy, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() == static.Fingerprint() {
			t.Errorf("%s produced the static bits; rebalancing had no effect", policy.Name())
		}
		b, err := RunColumnarDLB(model, cfg, policy, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s is not deterministic across worker counts: %#x vs %#x",
				policy.Name(), a.Fingerprint(), b.Fingerprint())
		}
	}
}

// TestDLBRejectsInvalidPolicy: an invalid spec is an error, not a
// silent fallback.
func TestDLBRejectsInvalidPolicy(t *testing.T) {
	if _, err := RunColumnarDLB(workload.DefaultMiniFE(), SmallConfig(), dlb.Spec{Policy: "turbo"}, 0); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

// blockCounter records every observed (trial, rank, iter) coordinate.
// One instance per fill worker (no locking needed), merged afterwards.
type blockCounter struct {
	threads int
	seen    map[[3]int]int
	bad     int
}

func (c *blockCounter) ObserveBlock(trial, rank, iter int, times []float64) {
	if len(times) != c.threads {
		c.bad++
	}
	c.seen[[3]int{trial, rank, iter}]++
}

// TestLeWIStreamDeliversEveryBlockOnce: under LeWI rebalancing,
// RunStream must hand every (trial, rank, iteration) block to exactly
// one observer exactly once — the rebalancing path must not drop,
// duplicate or resize blocks. Run with -race this also exercises the
// trial-major path's goroutine safety.
func TestLeWIStreamDeliversEveryBlockOnce(t *testing.T) {
	cfg := SmallConfig()
	var mu sync.Mutex
	var counters []*blockCounter
	obs, err := RunStreamDLB(workload.DefaultMiniMD(), cfg, dlb.Spec{Policy: dlb.PolicyLeWI}, 4, nil, func() BlockObserver {
		c := &blockCounter{threads: cfg.Threads, seen: map[[3]int]int{}}
		mu.Lock()
		counters = append(counters, c)
		mu.Unlock()
		return c
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) == 0 {
		t.Fatal("no observers created")
	}
	merged := map[[3]int]int{}
	for _, c := range counters {
		if c.bad != 0 {
			t.Fatalf("%d blocks had the wrong thread count", c.bad)
		}
		for k, n := range c.seen {
			merged[k] += n
		}
	}
	want := cfg.Trials * cfg.Ranks * cfg.Iterations
	if len(merged) != want {
		t.Fatalf("observed %d distinct blocks, want %d", len(merged), want)
	}
	for k, n := range merged {
		if n != 1 {
			t.Fatalf("block %v delivered %d times", k, n)
		}
	}
}

// TestDLBStreamMatchesColumnar: the streaming (sink-less) balanced path
// must time blocks identically to the columnar one — the scaling
// happens before observation in both.
func TestDLBStreamMatchesColumnar(t *testing.T) {
	cfg := Config{Trials: 2, Ranks: 3, Iterations: 20, Threads: 16, Seed: 7}
	model := workload.DefaultMiniQMC()
	policy := dlb.Spec{Policy: dlb.PolicyDROM, ReactionIters: 2}

	col, err := RunColumnarDLB(model, cfg, policy, 0)
	if err != nil {
		t.Fatal(err)
	}
	type sums struct{ total float64 }
	var mu sync.Mutex
	var all []*sums
	_, err = RunStreamDLB(model, cfg, policy, 2, nil, func() BlockObserver {
		s := &sums{}
		mu.Lock()
		all = append(all, s)
		mu.Unlock()
		return observerFunc(func(trial, rank, iter int, times []float64) {
			for _, x := range times {
				s.total += x
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var streamed float64
	for _, s := range all {
		streamed += s.total
	}
	var direct float64
	cur := col.Cursor()
	for cur.Next() {
		for _, x := range cur.Block().Times {
			direct += x
		}
	}
	if diff := streamed - direct; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("streamed sum %v != columnar sum %v", streamed, direct)
	}
}

type observerFunc func(trial, rank, iter int, times []float64)

func (f observerFunc) ObserveBlock(trial, rank, iter int, times []float64) {
	f(trial, rank, iter, times)
}
